/**
 * @file
 * Walkthrough of the four attach/detach semantics (Section IV of
 * the paper): the Fig 3 event script classified under Basic,
 * Outermost, FCFS and EW-Conscious, followed by the Fig 4
 * multi-threaded EW-Conscious example.
 *
 * Build & run:  ./build/examples/semantics_tour
 */

#include <cstdio>
#include <vector>

#include "semantics/attach_semantics.hh"

using namespace terp;
using namespace terp::semantics;

namespace {

struct Event
{
    const char *label;
    char kind; // 'a'ttach, 'd'etach, 'x' access
};

const std::vector<Event> fig3 = {
    {"attach()", 'a'}, {"a = 1", 'x'},    {"detach()", 'd'},
    {"a = 1", 'x'},    {"attach()", 'a'}, {"attach()  [nested]", 'a'},
    {"a = 1", 'x'},    {"detach()", 'd'}, {"detach()", 'd'},
};

} // namespace

int
main()
{
    std::printf("=== Fig 3: one event script, four semantics ===\n\n");
    std::printf("%-22s", "event");
    for (auto k : {SemanticsKind::Basic, SemanticsKind::Outermost,
                   SemanticsKind::Fcfs, SemanticsKind::EwConscious})
        std::printf(" %-13s", semanticsName(k));
    std::printf("\n");

    std::vector<std::unique_ptr<AttachSemantics>> sems;
    for (auto k : {SemanticsKind::Basic, SemanticsKind::Outermost,
                   SemanticsKind::Fcfs, SemanticsKind::EwConscious})
        sems.push_back(AttachSemantics::make(k, usToCycles(1000)));

    Cycles t = 0;
    for (const Event &e : fig3) {
        t += 10;
        std::printf("%-22s", e.label);
        for (auto &sem : sems) {
            Verdict v;
            switch (e.kind) {
              case 'a':
                v = sem->onAttach(0, 1, t);
                break;
              case 'd':
                v = sem->onDetach(0, 1, t);
                break;
              default:
                v = sem->onAccess(0, 1, t);
            }
            std::printf(" %-13s", verdictName(v));
        }
        std::printf("\n");
    }

    std::printf("\nBasic poisons after the nested attach; Outermost "
                "silences inner pairs (unbounded\nwindows); FCFS "
                "re-attaches on access; EW-Conscious lowers to "
                "thread permissions.\n");

    std::printf("\n=== Fig 4: EW-Conscious with three threads ===\n\n");
    EwConsciousSemantics ew(0); // span condition always met
    struct Step
    {
        const char *label;
        unsigned tid;
        char kind;
        pm::Mode mode;
        bool write;
    };
    const std::vector<Step> fig4 = {
        {"T1 attach(R)", 1, 'a', pm::Mode::Read, false},
        {"T1 ld A", 1, 'x', pm::Mode::Read, false},
        {"T1 st B", 1, 'x', pm::Mode::Read, true},
        {"T2 attach(RW)", 2, 'a', pm::Mode::ReadWrite, false},
        {"T2 st B", 2, 'x', pm::Mode::ReadWrite, true},
        {"T1 detach()", 1, 'd', pm::Mode::Read, false},
        {"T1 ld C", 1, 'x', pm::Mode::Read, false},
        {"T2 detach()", 2, 'd', pm::Mode::ReadWrite, false},
        {"T2 st C", 2, 'x', pm::Mode::ReadWrite, true},
        {"T3 ld A", 3, 'x', pm::Mode::Read, false},
    };
    Cycles t2 = 0;
    for (const Step &s : fig4) {
        t2 += 10;
        Verdict v;
        switch (s.kind) {
          case 'a':
            v = ew.onAttach(s.tid, 1, t2, s.mode);
            break;
          case 'd':
            v = ew.onDetach(s.tid, 1, t2);
            break;
          default:
            v = ew.onAccess(s.tid, 1, t2, s.write);
        }
        std::printf("%-16s -> %-10s (PMO %s, %zu thread(s) hold "
                    "permission)\n",
                    s.label, verdictName(v),
                    ew.mapped(1) ? "mapped" : "unmapped",
                    ew.permHolders(1));
    }

    std::printf("\nThe process-level exposure window spans T1's "
                "attach to T2's detach, while each\nthread's "
                "exposure window (TEW) covers only its own "
                "permission span.\n");
    return 0;
}
