/**
 * @file
 * Crash consistency for PMOs: a bank-transfer workload updates two
 * accounts inside undo-log transactions; power fails mid-transaction;
 * recovery rolls the incomplete transfer back so the PMO reopens in
 * a consistent state — the PMO property TERP protection builds on.
 *
 * Build & run:  ./build/examples/crash_recovery
 */

#include <cstdio>

#include "common/rng.hh"
#include "pm/persist.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

using namespace terp;
using namespace terp::pm;

namespace {

constexpr std::uint64_t nAccounts = 8;

Oid
accountOid(PmoId pmo, unsigned i)
{
    return Oid(pmo, 0x1000 + 64ULL * i);
}

std::uint64_t
totalBalance(PersistController &ctl, PmoId pmo)
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < nAccounts; ++i)
        sum += ctl.load(accountOid(pmo, i));
    return sum;
}

} // namespace

int
main()
{
    sim::Machine mach;
    sim::ThreadContext &tc = mach.spawnThread();
    pm::PmoManager pmos;
    PmoId bank = pmos.create("bank", 1 * MiB).id();

    PersistController ctl;
    UndoLog log(ctl, bank, 0x10000);

    // Initial state: 1000 in every account, made durable.
    for (unsigned i = 0; i < nAccounts; ++i)
        ctl.persistentStore(tc, accountOid(bank, i), 1000);
    ctl.sfence(tc);
    std::printf("initial total balance: %llu\n",
                (unsigned long long)totalBalance(ctl, bank));

    // Run transfers; the 8th one is interrupted by a power failure
    // between the debit and the credit.
    Rng rng(99);
    for (int t = 0; t < 12; ++t) {
        unsigned from = static_cast<unsigned>(rng.nextBelow(nAccounts));
        unsigned to = static_cast<unsigned>(rng.nextBelow(nAccounts));
        if (from == to)
            to = (to + 1) % nAccounts;
        std::uint64_t amount = 10 + rng.nextBelow(90);

        log.begin(tc);
        log.write(tc, accountOid(bank, from),
                  ctl.load(accountOid(bank, from)) - amount);
        if (t == 7) {
            // A cache eviction writes the debited line back before
            // the credit happens — exactly the torn state undo
            // logging exists for — and then power fails.
            ctl.clwb(tc, accountOid(bank, from));
            ctl.sfence(tc);
            std::printf("\n*** power failure mid-transfer #%d "
                        "(debited %llu from account %u and the line "
                        "was evicted; credit to %u never happened) "
                        "***\n",
                        t, (unsigned long long)amount, from, to);
            ctl.crash();
            std::printf("volatile total right after the crash "
                        "image reload: %llu\n",
                        (unsigned long long)totalBalance(ctl, bank));
            log.recover(tc);
            std::printf("after undo-log recovery      : %llu  "
                        "(the half-done transfer was rolled back)\n",
                        (unsigned long long)totalBalance(ctl, bank));
            continue;
        }
        log.write(tc, accountOid(bank, to),
                  ctl.load(accountOid(bank, to)) + amount);
        log.commit(tc);
    }

    std::printf("\nfinal total balance: %llu (invariant: %llu)\n",
                (unsigned long long)totalBalance(ctl, bank),
                (unsigned long long)(1000 * nAccounts));
    std::printf("flushes issued: %llu, fences: %llu, simulated "
                "time: %.1f us\n",
                (unsigned long long)ctl.clwbCount(),
                (unsigned long long)ctl.fenceCount(),
                cyclesToUs(tc.now()));
    return totalBalance(ctl, bank) == 1000 * nAccounts ? 0 : 1;
}
