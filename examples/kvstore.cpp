/**
 * @file
 * A persistent key-value store protected by TERP — the WHISPER
 * hashmap workload run under every scheme, with a side-by-side
 * comparison of performance overhead and exposure metrics.
 *
 * Build & run:  ./build/examples/kvstore [sections]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;

int
main(int argc, char **argv)
{
    WhisperParams p;
    p.sections = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;

    std::printf("persistent hash-map KV store, %llu transaction "
                "batches, 1 GB PMO\n\n",
                (unsigned long long)p.sections);

    RunResult base =
        runWhisper("hashmap", core::RuntimeConfig::unprotected(), p);
    std::printf("%-14s %10s %9s %9s %9s %8s %8s\n", "scheme",
                "time(ms)", "overhead", "EWavg,us", "TEW,us",
                "ER%", "TER%");
    std::printf("%-14s %10.2f %9s %9s %9s %8s %8s\n", "unprotected",
                cyclesToUs(base.totalCycles) / 1000.0, "-", "-", "-",
                "-", "-");

    struct SchemeDef
    {
        const char *name;
        core::RuntimeConfig cfg;
    };
    for (const SchemeDef &s :
         {SchemeDef{"MM (MERR)", core::RuntimeConfig::mm()},
          SchemeDef{"TM", core::RuntimeConfig::tm()},
          SchemeDef{"TT (TERP)", core::RuntimeConfig::tt()}}) {
        RunResult r = runWhisper("hashmap", s.cfg, p);
        std::printf("%-14s %10.2f %8.1f%% %9.1f %9.2f %8.1f %8.1f\n",
                    s.name, cyclesToUs(r.totalCycles) / 1000.0,
                    100.0 * overheadVsBase(r, base),
                    r.exposure.ewAvgUs, r.exposure.tewAvgUs,
                    100.0 * r.exposure.er, 100.0 * r.exposure.ter);
    }

    std::printf("\nTERP keeps the PMO exposed to each thread <2us "
                "at a time for a few percent overhead;\nMERR pays "
                "full system calls for far coarser windows.\n");
    return 0;
}
