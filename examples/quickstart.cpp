/**
 * @file
 * Quickstart: create a PMO, protect it with TERP (the TT scheme),
 * run a small access pattern, and inspect the protection metrics.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

using namespace terp;

namespace {

/** A tiny job: 200 transactions of a few PMO accesses each. */
class MiniJob : public sim::Job
{
  public:
    MiniJob(core::Runtime &rt_, pm::PmoId pmo_) : rt(rt_), pmo(pmo_) {}

    bool
    step(sim::ThreadContext &tc) override
    {
        // Non-persistent work between transactions.
        tc.work(8 * cyclesPerUs);

        // The region a TERP compiler would bracket with CONDAT/CONDDT.
        rt.regionBegin(tc, pmo, pm::Mode::ReadWrite);
        for (int i = 0; i < 6; ++i) {
            pm::Oid rec(pmo, 4096 + (txn * 61 + i) % 1000 * 64);
            rt.access(tc, rec, /*write=*/i % 2 == 0);
        }
        rt.regionEnd(tc, pmo);

        return ++txn < 200;
    }

  private:
    core::Runtime &rt;
    pm::PmoId pmo;
    std::uint64_t txn = 0;
};

} // namespace

int
main()
{
    // 1. A simulated machine and a persistent memory object.
    sim::Machine machine;
    pm::PmoManager pmos;
    pm::Pmo &pmo = pmos.create("quickstart.data", 64 * MiB);

    // 2. A TERP runtime: EW target 40 us, TEW target 2 us, with
    //    conditional instructions and window combining (scheme TT).
    core::Runtime rt(machine, pmos, core::RuntimeConfig::tt());

    // 3. Run a workload under protection.
    MiniJob job(rt, pmo.id());
    machine.spawnThread();
    std::vector<sim::Job *> jobs{&job};
    machine.run(jobs, [&](Cycles now) { rt.onSweep(now); });
    rt.finalize();

    // 4. Inspect what the protection did.
    core::OverheadReport rep = rt.report();
    auto m = rt.exposure().metricsFor(pmo.id(), machine.maxClock(), 1);

    std::printf("quickstart: TERP (TT) protected run\n");
    std::printf("  simulated time      : %.1f us\n",
                cyclesToUs(machine.maxClock()));
    std::printf("  attach syscalls     : %llu\n",
                (unsigned long long)rep.attachSyscalls);
    std::printf("  detach syscalls     : %llu\n",
                (unsigned long long)rep.detachSyscalls);
    std::printf("  conditional ops     : %llu (%.1f%% silent)\n",
                (unsigned long long)rep.condOps,
                100.0 * rep.silentFraction);
    std::printf("  exposure window avg : %.1f us (target 40)\n",
                m.ewAvgUs);
    std::printf("  thread EW avg       : %.2f us (target 2)\n",
                m.tewAvgUs);
    std::printf("  exposure rate       : %.1f%%\n", 100.0 * m.er);
    std::printf("  thread exposure rate: %.1f%%\n", 100.0 * m.ter);
    return 0;
}
