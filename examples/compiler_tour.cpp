/**
 * @file
 * Tour of the TERP compiler pipeline: build a small program with
 * PMO accesses in branches and loops, run the Algorithm-1 insertion
 * pass, show the instrumented IR, verify it, and execute it on the
 * simulated machine under full TERP protection.
 *
 * Build & run:  ./build/examples/compiler_tour
 */

#include <cstdio>

#include "compiler/builder.hh"
#include "compiler/dot.hh"
#include "compiler/interp.hh"
#include "compiler/pass.hh"
#include "compiler/verifier.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "semantics/poset.hh"
#include "sim/machine.hh"

using namespace terp;
using namespace terp::compiler;

int
main()
{
    // ---- build a program ------------------------------------------
    pm::PmoManager pmos;
    pm::PmoId ledger = pmos.create("ledger", 4 * MiB).id();
    pm::PmoId index = pmos.create("index", 1 * MiB).id();

    Module mod;
    FunctionBuilder b(mod, "post_entries", 1);
    b.forLoop(64, [&](Reg i) {
        Reg amount = b.mul(i, b.constant(3));
        // Credit entries go to even slots, debits to odd ones.
        Reg even = b.cmpEq(b.arith(Op::Rem, i, b.constant(2)),
                           b.constant(0));
        b.ifThenElse(
            even,
            [&]() {
                Reg slot = b.add(b.pmoBase(ledger, 0),
                                 b.mul(i, b.constant(64)));
                b.store(slot, amount);
            },
            [&]() {
                Reg slot = b.add(b.pmoBase(ledger, 4096),
                                 b.mul(i, b.constant(64)));
                b.store(slot, amount);
            });
        // Update the index summary.
        Reg sum_slot = b.pmoBase(index, 0);
        Reg old = b.load(sum_slot);
        b.store(sum_slot, b.add(old, amount));
        b.compute(50); // unrelated bookkeeping
    });
    b.ret();
    std::uint32_t entry = b.finish();

    std::printf("=== IR before the TERP pass ===\n%s\n",
                mod.dump().c_str());

    // ---- run Algorithm 1 -------------------------------------------
    PassConfig cfg; // 40us EW threshold, 2us TEW threshold
    PassResult res = runInsertionPass(mod, cfg);
    std::printf("=== pass result ===\n");
    std::printf("WFG regions: %zu, CONDAT inserted: %llu, CONDDT "
                "inserted: %llu (grouped %llu, per-block %llu)\n",
                res.regions.size(),
                (unsigned long long)res.condAttach,
                (unsigned long long)res.condDetach,
                (unsigned long long)res.grouped,
                (unsigned long long)res.perBlock);
    for (const WfgRegion &r : res.regions) {
        std::printf("  region: header bb%u exit bb%d blocks %u "
                    "pmo-mask 0x%llx LET %llu cycles\n",
                    r.header, r.exit == noBlock ? -1 : (int)r.exit,
                    r.blockCount, (unsigned long long)r.pmoMask,
                    (unsigned long long)r.let);
    }

    PmoFacts facts = PmoFacts::analyze(mod);
    VerifyResult v = verifyModule(mod, facts, true);
    std::printf("strict verifier: %s\n\n", v.ok ? "OK" : "FAILED");

    std::printf("=== IR after the TERP pass ===\n%s\n",
                mod.dump().c_str());

    // ---- execute under TT protection --------------------------------
    sim::Machine mach;
    core::Runtime rt(mach, pmos, core::RuntimeConfig::tt());
    pm::MemImage img;
    Interpreter interp(mod, rt, mach, img, entry);
    mach.spawnThread();
    std::vector<sim::Job *> jobs{&interp};
    mach.run(jobs, [&](Cycles now) { rt.onSweep(now); });
    rt.finalize();

    core::OverheadReport rep = rt.report();
    std::printf("=== execution under TT ===\n");
    std::printf("instructions: %llu, time %.1f us, faults %llu\n",
                (unsigned long long)interp.instructionsExecuted(),
                cyclesToUs(mach.maxClock()),
                (unsigned long long)interp.faultCount());
    std::printf("attach syscalls %llu, cond ops %llu (%.1f%% "
                "silent)\n",
                (unsigned long long)rep.attachSyscalls,
                (unsigned long long)rep.condOps,
                100.0 * rep.silentFraction);
    std::printf("index sum stored in PM: %llu\n\n",
                (unsigned long long)img.peek(pm::Oid(index, 0).raw));

    // ---- Fig 5-style CFG rendering -----------------------------------
    std::printf("=== instrumented CFG (Graphviz; shaded = PMO "
                "accesses, clusters = WFG regions) ===\n%s\n",
                cfgToDot(mod.function(entry), entry, facts,
                         res.regions)
                    .c_str());

    // ---- the TERP poset ----------------------------------------------
    semantics::Poset poset = semantics::makeCanonicalTerpPoset();
    std::printf("=== canonical TERP poset (Hasse diagram, dot) ===\n"
                "%s",
                poset.toDot().c_str());
    return 0;
}
