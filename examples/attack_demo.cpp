/**
 * @file
 * Data-only attack demo (Fig 12 of the paper): a vulnerable FTP-like
 * server whose gadgets an attacker chains to increment every node of
 * a persistent linked list — run Unprotected, under MERR (MM) and
 * under TERP (TT).
 *
 * Build & run:  ./build/examples/attack_demo
 */

#include <cstdio>

#include "security/dop.hh"

using namespace terp;

int
main()
{
    std::printf("Fig 12 data-only attack: corrupt a PMO-resident "
                "linked list (64 nodes)\n\n");
    std::printf("%-34s %10s %10s %8s  %s\n", "scheme", "corrupted",
                "faults", "rounds", "goal achieved");

    for (const auto &cfg :
         {core::RuntimeConfig::unprotected(),
          core::RuntimeConfig::mm(), core::RuntimeConfig::tt()}) {
        security::DopResult r = security::runFtpAttack(cfg);
        std::printf("%-34s %6llu/%-3llu %10llu %8llu  %s\n",
                    r.scheme.c_str(),
                    (unsigned long long)r.nodesCorrupted,
                    (unsigned long long)r.listLength,
                    (unsigned long long)r.accessFaults,
                    (unsigned long long)r.roundsExecuted,
                    r.attackGoalAchieved ? "YES" : "no");
    }

    std::printf("\nUnprotected: the chained dereference/addition "
                "gadgets corrupt every node.\n");
    std::printf("MM: corruption stops once re-randomization "
                "invalidates the leaked addresses.\n");
    std::printf("TT: every gadget executes outside a thread exposure "
                "window and is denied.\n");
    return 0;
}
