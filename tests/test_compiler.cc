/**
 * @file
 * Unit tests for the compiler substrate: IR structure, builder,
 * CFG analysis (dominators, post-dominators, loops, regions) and the
 * LET estimator.
 */

#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "compiler/builder.hh"
#include "compiler/ir.hh"
#include "compiler/pmo_analysis.hh"

using namespace terp;
using namespace terp::compiler;

namespace {

/** Analysis over a function with no PMO facts. */
Analysis
analyze(const Function &f)
{
    return Analysis(f, std::vector<std::uint64_t>(f.blockCount(), 0));
}

} // namespace

// ------------------------------------------------------------ builder

TEST(Builder, StraightLineFunction)
{
    Module m;
    FunctionBuilder b(m, "f", 2);
    Reg s = b.add(b.param(0), b.param(1));
    b.ret(s);
    b.finish();
    const Function &f = m.function(0);
    EXPECT_EQ(f.blockCount(), 1u);
    EXPECT_TRUE(f.block(0).terminated());
    EXPECT_EQ(f.successors(0).size(), 0u);
}

TEST(Builder, IfThenElseShape)
{
    Module m;
    FunctionBuilder b(m, "f", 1);
    Reg c = b.cmpLt(b.param(0), b.constant(10));
    b.ifThenElse(
        c, [&]() { b.compute(3); }, [&]() { b.compute(5); });
    b.ret();
    b.finish();
    const Function &f = m.function(0);
    // entry, then, else, join.
    EXPECT_EQ(f.blockCount(), 4u);
    EXPECT_EQ(f.successors(0).size(), 2u);
}

TEST(Builder, ForLoopRecordsTripCount)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.forLoop(17, [&](Reg) { b.compute(2); });
    b.ret();
    b.finish();
    const Function &f = m.function(0);
    ASSERT_EQ(f.loopBound.size(), 1u);
    EXPECT_EQ(f.loopBound.begin()->second, 17u);
}

TEST(Builder, UnknownBoundLoopOmitsMetadata)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.forLoop(9, [&](Reg) { b.compute(1); }, /*known_bound=*/false);
    b.ret();
    b.finish();
    EXPECT_TRUE(m.function(0).loopBound.empty());
}

TEST(Builder, EmitAfterTerminatorPanics)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.ret();
    EXPECT_THROW(b.constant(1), std::logic_error);
}

TEST(Builder, DumpContainsStructure)
{
    Module m;
    FunctionBuilder b(m, "myfunc", 0);
    b.condAttach(3);
    b.store(b.pmoBase(3, 64), b.constant(1));
    b.condDetach(3);
    b.ret();
    b.finish();
    std::string d = m.dump();
    EXPECT_NE(d.find("@myfunc"), std::string::npos);
    EXPECT_NE(d.find("condat"), std::string::npos);
    EXPECT_NE(d.find("pmo3"), std::string::npos);
}

TEST(Ir, ValidateCatchesUnterminatedBlock)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.compute(1); // no terminator
    EXPECT_THROW(b.finish(), std::logic_error);
}

// ----------------------------------------------------------- dominators

TEST(Analysis, DiamondDominators)
{
    Module m;
    FunctionBuilder b(m, "f", 1);
    b.ifThenElse(
        b.param(0), [&]() { b.compute(1); },
        [&]() { b.compute(1); });
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(0));

    BlockId entry = 0, then_b = 1, else_b = 2, join = 3;
    EXPECT_TRUE(an.dominates(entry, join));
    EXPECT_FALSE(an.dominates(then_b, join));
    EXPECT_TRUE(an.postdominates(join, entry));
    EXPECT_FALSE(an.postdominates(then_b, entry));
    EXPECT_EQ(an.idom(join), entry);
    EXPECT_EQ(an.ipdom(entry), join);
    EXPECT_EQ(an.idom(then_b), entry);
    EXPECT_EQ(an.ipdom(then_b), join);
    EXPECT_EQ(an.idom(entry), noBlock);
}

TEST(Analysis, NearestCommonDominatorOfBranches)
{
    Module m;
    FunctionBuilder b(m, "f", 1);
    b.ifThenElse(
        b.param(0), [&]() { b.compute(1); },
        [&]() { b.compute(1); });
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(0));
    EXPECT_EQ(an.nearestCommonDominator({1, 2}), 0u);
    EXPECT_EQ(an.nearestCommonPostdominator({1, 2}), 3u);
    EXPECT_EQ(an.nearestCommonDominator({1}), 1u);
}

TEST(Analysis, LoopDetection)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.forLoop(10, [&](Reg) { b.compute(2); });
    b.ret();
    b.finish();
    const Function &f = m.function(0);
    Analysis an = analyze(f);

    unsigned headers = 0;
    for (BlockId bb = 0; bb < f.blockCount(); ++bb)
        if (an.isLoopHeader(bb))
            ++headers;
    EXPECT_EQ(headers, 1u);
}

TEST(Analysis, TripCountFallsBackTo1000)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.forLoop(10, [&](Reg) { b.compute(2); }, false);
    b.ret();
    b.finish();
    const Function &f = m.function(0);
    Analysis an = analyze(f);
    for (BlockId bb = 0; bb < f.blockCount(); ++bb) {
        if (an.isLoopHeader(bb))
            EXPECT_EQ(an.tripCount(bb), assumedLoopTrips);
    }
}

TEST(Analysis, UnreachableBlocksExcluded)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    BlockId dead = b.newBlock("dead");
    b.ret();
    b.setBlock(dead);
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(0));
    EXPECT_TRUE(an.reachable(0));
    EXPECT_FALSE(an.reachable(dead));
}

// ------------------------------------------------------------------ LET

TEST(Let, StraightLineSumsInstructionCosts)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.compute(10); // 10 x 1-cycle arithmetic
    b.ret();       // 1 cycle
    b.finish();
    Analysis an = analyze(m.function(0));
    EXPECT_EQ(an.blockLet(0), 11u);
    EXPECT_EQ(an.letBetween(0, noBlock), 11u);
}

TEST(Let, MemoryOpsAreConservativelyNvm)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    Reg p = b.dramBase(0);
    b.load(p);
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(0));
    // drambase(1) + load(nvm) + ret(1)
    EXPECT_EQ(an.blockLet(0), 2 + latency::nvm);
}

TEST(Let, BranchTakesLongestPath)
{
    Module m;
    FunctionBuilder b(m, "f", 1);
    b.ifThenElse(
        b.param(0), [&]() { b.compute(5); },
        [&]() { b.compute(50); });
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(0));
    Cycles let = an.letBetween(0, noBlock);
    // Must reflect the 50-instruction arm, not the 5-instruction one.
    EXPECT_GE(let, 50u);
    EXPECT_LT(let, 70u);
}

TEST(Let, KnownLoopMultipliesByTripCount)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.forLoop(10, [&](Reg) { b.compute(20); });
    b.ret();
    b.finish();
    const Function &f = m.function(0);
    Analysis an = analyze(f);
    Cycles let = an.letBetween(0, noBlock);
    EXPECT_GE(let, 10 * 20u);
    EXPECT_LE(let, 10 * 40u + 20);
}

TEST(Let, UnknownLoopAssumes1000Trips)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.forLoop(10, [&](Reg) { b.compute(20); }, false);
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(0));
    EXPECT_GE(an.letBetween(0, noBlock), 1000 * 20u);
}

TEST(Let, NestedLoopsMultiply)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.forLoop(10, [&](Reg) {
        b.forLoop(10, [&](Reg) { b.compute(5); });
    });
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(0));
    Cycles let = an.letBetween(0, noBlock);
    EXPECT_GE(let, 100 * 5u);
}

TEST(Let, CalleeCostsPropagate)
{
    Module m;
    std::uint32_t leaf_idx;
    {
        FunctionBuilder leaf(m, "leaf", 0);
        leaf.compute(500);
        leaf.ret();
        leaf_idx = leaf.finish();
    }
    FunctionBuilder b(m, "caller", 0);
    b.call(leaf_idx);
    b.ret();
    b.finish();

    std::map<std::uint32_t, Cycles> lets;
    {
        Analysis leaf_an(m.function(leaf_idx),
                         std::vector<std::uint64_t>(
                             m.function(leaf_idx).blockCount(), 0));
        lets[leaf_idx] = leaf_an.letBetween(0, noBlock);
    }
    Analysis an(m.function(1),
                std::vector<std::uint64_t>(
                    m.function(1).blockCount(), 0),
                lets);
    EXPECT_GE(an.letBetween(0, noBlock), 500u);
}

// --------------------------------------------------------------- regions

TEST(Regions, LoopFormsARegion)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.compute(2);
    b.forLoop(10, [&](Reg) { b.compute(3); });
    b.ret();
    b.finish();
    const Function &f = m.function(0);
    Analysis an = analyze(f);
    for (BlockId bb = 0; bb < f.blockCount(); ++bb) {
        if (!an.isLoopHeader(bb))
            continue;
        auto blocks = an.regionBlocks(bb);
        // Header + body (+latch merged into body block).
        EXPECT_GE(blocks.size(), 2u);
        EXPECT_EQ(an.regionLet(bb), an.letBetween(bb, an.ipdom(bb)));
    }
}

TEST(Regions, RegionHasCallDetection)
{
    Module m;
    std::uint32_t leaf;
    {
        FunctionBuilder lb(m, "leaf", 0);
        lb.ret();
        leaf = lb.finish();
    }
    FunctionBuilder b(m, "f", 0);
    b.call(leaf);
    b.ret();
    b.finish();
    Analysis an = analyze(m.function(1));
    EXPECT_TRUE(an.regionHasCall(0));
}

// ------------------------------------------------------ pointer analysis

TEST(PmoAnalysis, BasePointerAndArithmetic)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    Reg base = b.pmoBase(3, 0);
    Reg off = b.constant(64);
    Reg addr = b.add(base, off);
    b.load(addr);
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    EXPECT_EQ(facts.regMask(0, base), pmoBit(3));
    EXPECT_EQ(facts.regMask(0, off), 0u);
    EXPECT_EQ(facts.regMask(0, addr), pmoBit(3));
    EXPECT_EQ(facts.blockMask(0, 0), pmoBit(3));
}

TEST(PmoAnalysis, LoadedPointersStayInPool)
{
    // Values loaded from PMO p may point into p (no inter-PMO
    // pointers assumption).
    Module m;
    FunctionBuilder b(m, "f", 0);
    Reg head = b.load(b.pmoBase(4, 0));
    b.load(head); // chase the pointer
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    EXPECT_EQ(facts.regMask(0, head), pmoBit(4));
}

TEST(PmoAnalysis, DramPointersAreClean)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    Reg d = b.dramBase(0x100);
    Reg v = b.load(d);
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    EXPECT_EQ(facts.regMask(0, d), 0u);
    EXPECT_EQ(facts.regMask(0, v), 0u);
    EXPECT_EQ(facts.blockMask(0, 0), 0u);
}

TEST(PmoAnalysis, FlowsThroughCallsAndReturns)
{
    Module m;
    std::uint32_t callee_idx;
    {
        FunctionBuilder cb(m, "callee", 1);
        // Returns its pointer argument advanced by 8.
        cb.ret(cb.add(cb.param(0), cb.constant(8)));
        callee_idx = cb.finish();
    }
    FunctionBuilder b(m, "caller", 0);
    Reg p = b.pmoBase(5, 0);
    Reg q = b.call(callee_idx, {p});
    b.store(q, b.constant(1));
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    EXPECT_EQ(facts.regMask(1, q), pmoBit(5));
    // The callee's parameter and return also carry the mask.
    EXPECT_EQ(facts.regMask(callee_idx, 0), pmoBit(5));
}

TEST(PmoAnalysis, MultiplePoolsUnion)
{
    Module m;
    FunctionBuilder b(m, "f", 1);
    Reg a = b.pmoBase(1, 0);
    Reg c = b.pmoBase(2, 0);
    // A select-like merge through arithmetic.
    Reg sel = b.add(a, b.mul(c, b.param(0)));
    b.load(sel);
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    EXPECT_EQ(facts.regMask(0, sel), pmoBit(1) | pmoBit(2));
}
