/**
 * @file
 * Tests for runtime-level crash/recovery: Runtime::crash clearing the
 * volatile protection state, Runtime::recover replaying undo logs and
 * handing the recovery mapping to the EW-conscious sweeper, the
 * regression for the sweeper ignoring idle manually-inserted PMOs,
 * and smoke coverage of the crash-point enumeration harness behind
 * tools/terp-crash.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/crash.hh"
#include "check/fuzzer.hh"
#include "core/runtime.hh"
#include "pm/persist.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"
#include "trace/trace_buffer.hh"

using namespace terp;

namespace {

constexpr std::uint64_t logOff = 1ULL << 32;
constexpr Cycles ewTarget = 5 * cyclesPerUs;

struct Fixture
{
    sim::Machine mach;
    pm::PmoManager pmos;
    core::RuntimeConfig cfg;
    pm::PersistDomain dom;
    std::unique_ptr<core::Runtime> rt;

    explicit Fixture(const std::string &scheme)
        : cfg(check::schemeConfig(scheme, ewTarget).withTrace())
    {
        pmos.create("crash-test", 64 * KiB);
        rt = std::make_unique<core::Runtime>(mach, pmos, cfg);
        rt->attachPersistence(&dom);
        dom.openLog(1, logOff);
        mach.spawnThread();
    }

    /** Fire the sweeper on its grid until past @p until. */
    void
    sweepUntil(Cycles until)
    {
        Cycles hook = mach.config().hookPeriod;
        for (Cycles t = hook; t <= until + hook; t += hook)
            rt->onSweep(t);
    }
};

/** Open a transaction with one logged+applied write, don't commit. */
void
openDanglingTxn(Fixture &f, sim::ThreadContext &tc)
{
    pm::UndoLog *log = f.dom.findLog(1);
    log->begin(tc);
    f.rt->access(tc, pm::Oid(1, 0x100), /*write=*/true);
    log->write(tc, pm::Oid(1, 0x100), 77);
}

} // namespace

TEST(RuntimeCrash, ClearsVolatileProtectionState)
{
    Fixture f("mm");
    sim::ThreadContext &tc = f.mach.thread(0);
    f.rt->manualBegin(tc, 1, pm::Mode::ReadWrite);
    openDanglingTxn(f, tc);
    ASSERT_TRUE(f.rt->mapped(1));

    f.rt->crash(f.mach.maxClock());
    EXPECT_FALSE(f.rt->mapped(1));
    EXPECT_TRUE(f.dom.findLog(1)->recoveryPending());

    // The failure and its kernel-side unmap made it into the trace.
    auto events = f.rt->traceSink()->merged();
    EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                            [](const trace::Event &e) {
                                return e.kind == trace::EventKind::Crash;
                            }));
}

TEST(RuntimeCrash, RecoverRollsBackOnlyPendingLogs)
{
    Fixture f("tm");
    f.pmos.create("clean-neighbour", 64 * KiB);
    f.dom.openLog(2, logOff);
    sim::ThreadContext &tc = f.mach.thread(0);

    // PMO 2: a committed transaction — clean log, nothing to do.
    pm::UndoLog *clean = f.dom.findLog(2);
    f.rt->regionBegin(tc, 2, pm::Mode::ReadWrite);
    clean->begin(tc);
    f.rt->access(tc, pm::Oid(2, 0x200), /*write=*/true);
    clean->write(tc, pm::Oid(2, 0x200), 55);
    clean->commit(tc);
    f.rt->regionEnd(tc, 2);

    // PMO 1: in-flight at the failure.
    f.rt->regionBegin(tc, 1, pm::Mode::ReadWrite);
    openDanglingTxn(f, tc);

    Cycles at = f.mach.maxClock();
    f.rt->crash(at);
    EXPECT_EQ(f.rt->recover(tc), 1u) << "only PMO 1 was pending";

    const pm::PersistController &ctl = f.dom.controller();
    EXPECT_EQ(ctl.persistedLoad(pm::Oid(1, 0x100)), 0u)
        << "in-flight write must be rolled back";
    EXPECT_EQ(ctl.persistedLoad(pm::Oid(2, 0x200)), 55u)
        << "committed neighbour must survive untouched";

    auto events = f.rt->traceSink()->merged();
    EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                            [](const trace::Event &e) {
                                return e.kind ==
                                           trace::EventKind::Recover &&
                                       e.pmo == 1;
                            }));
}

TEST(RuntimeCrash, SweeperDetachesIdleRecoveredPmoUnderManualInsertion)
{
    // Regression: the MERR-path sweeper used to full-detach idle
    // expired PMOs only under automatic insertion. Under manual
    // insertion the mapping crash recovery leaves behind (idle by
    // construction — the manual span died with the process) was
    // re-randomized forever instead of closed, so the recovered PMO
    // stayed exposed past every window target.
    Fixture f("mm");
    sim::ThreadContext &tc = f.mach.thread(0);
    f.rt->manualBegin(tc, 1, pm::Mode::ReadWrite);
    openDanglingTxn(f, tc);

    f.rt->crash(f.mach.maxClock());
    ASSERT_EQ(f.rt->recover(tc), 1u);
    ASSERT_TRUE(f.rt->mapped(1))
        << "recovery hands the mapping to the sweeper, not unmaps";

    f.sweepUntil(tc.now() + f.cfg.ewTarget + f.mach.config().hookPeriod);
    EXPECT_FALSE(f.rt->mapped(1))
        << "idle recovered PMO must close within one window target";
}

TEST(RuntimeCrash, RecoveredImageAcceptsNewTransactions)
{
    Fixture f("tt");
    sim::ThreadContext &tc = f.mach.thread(0);
    f.rt->regionBegin(tc, 1, pm::Mode::ReadWrite);
    openDanglingTxn(f, tc);

    f.rt->crash(f.mach.maxClock());
    ASSERT_EQ(f.rt->recover(tc), 1u);
    f.sweepUntil(tc.now() + f.cfg.ewTarget + f.mach.config().hookPeriod);

    pm::UndoLog *log = f.dom.findLog(1);
    f.rt->regionBegin(tc, 1, pm::Mode::ReadWrite);
    log->begin(tc);
    f.rt->access(tc, pm::Oid(1, 0x300), /*write=*/true);
    log->write(tc, pm::Oid(1, 0x300), 123);
    log->commit(tc);
    f.rt->regionEnd(tc, 1);
    EXPECT_EQ(f.dom.controller().persistedLoad(pm::Oid(1, 0x300)),
              123u);
}

// ------------------------------------------- enumeration harness

TEST(CrashEnumeration, BankWorkloadIsAtomicEverywhere)
{
    check::CrashOptions opt;
    opt.scheme = "mm";
    opt.workload = "bank";
    opt.txns = 2;
    check::CrashResult r = check::enumerateCrashPoints(opt);
    EXPECT_GT(r.boundaries, 0u);
    EXPECT_EQ(r.pointsRun, r.boundaries);
    for (const check::CrashViolation &v : r.violations)
        ADD_FAILURE() << "point " << v.point << ": " << v.detail;
}

TEST(CrashEnumeration, ScheduleWorkloadIsAtomicEverywhere)
{
    check::CrashOptions opt;
    opt.scheme = "tt";
    opt.workload = "schedule";
    opt.seed = 1;
    opt.events = 24;
    check::CrashResult r = check::enumerateCrashPoints(opt);
    EXPECT_EQ(r.pointsRun, r.boundaries);
    for (const check::CrashViolation &v : r.violations)
        ADD_FAILURE() << "point " << v.point << ": " << v.detail;
}

TEST(CrashEnumeration, RejectsUnknownWorkload)
{
    check::CrashOptions opt;
    opt.workload = "nonesuch";
    EXPECT_THROW(check::enumerateCrashPoints(opt),
                 std::invalid_argument);
}

TEST(CrashEnumeration, JsonSummaryRoundTrip)
{
    check::CrashOptions opt;
    opt.scheme = "tm";
    opt.workload = "bank";
    opt.txns = 1;
    check::CrashResult r = check::enumerateCrashPoints(opt);
    std::string js = check::crashResultJson(opt, r);
    EXPECT_NE(js.find("\"scheme\":\"tm\""), std::string::npos);
    EXPECT_NE(js.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(js.find("\"violations\":[]"), std::string::npos);
}
