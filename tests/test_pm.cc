/**
 * @file
 * Unit tests for src/pm: ObjectIDs, the embedded page-table subtree,
 * PMOs, the pool allocator and the PMO manager.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "pm/mem_image.hh"
#include "pm/oid.hh"
#include "pm/page_table.hh"
#include "pm/palloc.hh"
#include "pm/pmo_manager.hh"

using namespace terp;
using namespace terp::pm;

// --------------------------------------------------------------- oid

TEST(Oid, PacksPoolAndOffset)
{
    Oid o(5, 0x123456);
    EXPECT_EQ(o.pool(), 5u);
    EXPECT_EQ(o.offset(), 0x123456u);
    EXPECT_FALSE(o.isNull());
    EXPECT_TRUE(nullOid.isNull());
}

TEST(Oid, PlusStaysInPool)
{
    Oid o(3, 100);
    Oid p = o.plus(28);
    EXPECT_EQ(p.pool(), 3u);
    EXPECT_EQ(p.offset(), 128u);
}

TEST(Oid, RawRoundTrip)
{
    Oid o(7, 0xdeadbeef);
    Oid r = Oid::fromRaw(o.raw);
    EXPECT_EQ(r, o);
}

TEST(Oid, HashUsableInContainers)
{
    std::unordered_map<Oid, int> m;
    m[Oid(1, 2)] = 3;
    EXPECT_EQ(m.at(Oid(1, 2)), 3);
}

// --------------------------------------------------------- mem image

TEST(MemImage, PeekPokeDefaultZero)
{
    MemImage img;
    EXPECT_EQ(img.peek(0x40), 0u);
    img.poke(0x40, 99);
    EXPECT_EQ(img.peek(0x40), 99u);
    EXPECT_EQ(img.wordCount(), 1u);
}

TEST(MemImage, PmoPointerDiscrimination)
{
    EXPECT_TRUE(MemImage::isPmoPointer(Oid(1, 0).raw));
    EXPECT_FALSE(MemImage::isPmoPointer(0x1000));
}

// --------------------------------------------------------- page table

TEST(EmbeddedSubtree, OnePageNeedsOnePte)
{
    EmbeddedSubtree t(pageSize);
    EXPECT_EQ(t.subtreePteCount(), 1u);
}

TEST(EmbeddedSubtree, LinearConventionalCostVsConstantEmbedded)
{
    EmbeddedSubtree small(1 * MiB);
    EmbeddedSubtree big(1 * GiB);
    // Conventional attach cost grows ~linearly with size...
    EXPECT_GT(big.conventionalAttachPtes(),
              900 * small.conventionalAttachPtes());
    // ...while the embedded attach is always a single PTE install.
    EXPECT_EQ(EmbeddedSubtree::embeddedAttachPtes, 1u);
}

TEST(EmbeddedSubtree, PteCountMatchesGeometry)
{
    // 2 MB = 512 leaf PTEs + 1 L2 entry.
    EmbeddedSubtree t(2 * MiB);
    EXPECT_EQ(t.subtreePteCount(), 512u + 1u);
    EXPECT_EQ(t.rootLevel(), 2u);
}

class SubtreeSizeTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SubtreeSizeTest, LeafCountCoversSize)
{
    std::uint64_t size = GetParam();
    EmbeddedSubtree t(size);
    std::uint64_t leaves = (size + pageSize - 1) / pageSize;
    EXPECT_GE(t.subtreePteCount(), leaves);
    // Interior overhead is < 1% for multi-megabyte PMOs.
    EXPECT_LE(t.subtreePteCount(), leaves + leaves / 100 + 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubtreeSizeTest,
                         ::testing::Values(4 * KiB, 64 * KiB, 1 * MiB,
                                           16 * MiB, 1 * GiB));

// ----------------------------------------------------------- allocator

TEST(PoolAllocator, AllocatesAlignedDistinctBlocks)
{
    PoolAllocator a(1, 1 * MiB);
    Oid x = a.pmalloc(100);
    Oid y = a.pmalloc(100);
    ASSERT_FALSE(x.isNull());
    ASSERT_FALSE(y.isNull());
    EXPECT_NE(x, y);
    EXPECT_EQ(x.offset() % 16, 0u);
    EXPECT_GE(y.offset(), x.offset() + 112); // aligned size
    EXPECT_EQ(a.liveBlocks(), 2u);
}

TEST(PoolAllocator, FreeAndReuse)
{
    PoolAllocator a(1, 4 * KiB);
    Oid x = a.pmalloc(128);
    a.pfree(x);
    EXPECT_EQ(a.liveBytes(), 0u);
    Oid y = a.pmalloc(128);
    EXPECT_EQ(y.offset(), x.offset()); // first fit reuses the hole
}

TEST(PoolAllocator, CoalescesNeighbours)
{
    PoolAllocator a(1, 4 * KiB);
    Oid x = a.pmalloc(512);
    Oid y = a.pmalloc(512);
    Oid z = a.pmalloc(512);
    a.pfree(x);
    a.pfree(z);
    a.pfree(y); // middle free must merge with both neighbours
    // The whole span is again allocatable as one block.
    Oid big = a.pmalloc(1536);
    EXPECT_FALSE(big.isNull());
    EXPECT_EQ(big.offset(), x.offset());
}

TEST(PoolAllocator, ExhaustionReturnsNull)
{
    PoolAllocator a(1, 1 * KiB);
    Oid x = a.pmalloc(2 * KiB);
    EXPECT_TRUE(x.isNull());
}

TEST(PoolAllocator, DoubleFreePanics)
{
    PoolAllocator a(1, 4 * KiB);
    Oid x = a.pmalloc(64);
    a.pfree(x);
    EXPECT_THROW(a.pfree(x), std::logic_error);
}

TEST(PoolAllocator, WrongPoolPanics)
{
    PoolAllocator a(1, 4 * KiB);
    EXPECT_THROW(a.pfree(Oid(2, 64)), std::logic_error);
}

TEST(PoolAllocator, BlockSizeQuery)
{
    PoolAllocator a(1, 4 * KiB);
    Oid x = a.pmalloc(100);
    EXPECT_EQ(a.blockSize(x), 112u); // 16-byte aligned
    a.pfree(x);
    EXPECT_EQ(a.blockSize(x), 0u);
}

TEST(PoolAllocator, ReservePrefixExcludesLayoutRegion)
{
    PoolAllocator a(1, 1 * MiB);
    a.reservePrefix(64 * KiB);
    for (int i = 0; i < 100; ++i) {
        Oid x = a.pmalloc(256);
        ASSERT_FALSE(x.isNull());
        EXPECT_GE(x.offset(), 64 * KiB);
    }
}

class AllocatorPropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AllocatorPropertyTest, RandomAllocFreeNeverOverlaps)
{
    Rng rng(GetParam());
    PoolAllocator a(1, 256 * KiB);
    std::map<std::uint64_t, std::uint64_t> live; // offset -> end
    std::vector<Oid> handles;

    for (int step = 0; step < 2000; ++step) {
        if (handles.empty() || rng.nextBool(0.6)) {
            std::uint64_t size = rng.nextRange(1, 700);
            Oid o = a.pmalloc(size);
            if (o.isNull())
                continue;
            std::uint64_t lo = o.offset();
            std::uint64_t hi = lo + a.blockSize(o);
            // No overlap with any live block.
            auto next = live.lower_bound(lo);
            if (next != live.end())
                ASSERT_GE(next->first, hi);
            if (next != live.begin()) {
                auto prev = std::prev(next);
                ASSERT_LE(prev->second, lo);
            }
            live[lo] = hi;
            handles.push_back(o);
        } else {
            std::size_t i = rng.nextBelow(handles.size());
            a.pfree(handles[i]);
            live.erase(handles[i].offset());
            handles.erase(handles.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }
    }
    // Accounting is consistent.
    EXPECT_EQ(a.liveBlocks(), handles.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42, 97));

// ------------------------------------------------------------ manager

TEST(PmoManager, CreateOpenClose)
{
    PmoManager m;
    Pmo &p = m.create("data", 1 * MiB);
    EXPECT_EQ(p.name(), "data");
    EXPECT_EQ(p.size(), 1 * MiB);
    EXPECT_TRUE(m.exists(p.id()));

    Pmo *o = m.open("data", Mode::ReadWrite);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->id(), p.id());

    m.close(p);
    EXPECT_EQ(m.open("data", Mode::Read), nullptr);
}

TEST(PmoManager, OpenChecksPermissions)
{
    PmoManager m;
    m.create("ro", 1 * MiB, Mode::Read);
    EXPECT_NE(m.open("ro", Mode::Read), nullptr);
    EXPECT_EQ(m.open("ro", Mode::ReadWrite), nullptr);
}

TEST(PmoManager, DuplicateNameRejected)
{
    PmoManager m;
    m.create("x", 1 * MiB);
    EXPECT_THROW(m.create("x", 1 * MiB), std::logic_error);
}

TEST(PmoManager, MappingLandsInAlignedArenaSlot)
{
    PmoManager m(123);
    Pmo &p = m.create("x", 8 * MiB);
    MapChange ch = m.mapRandomized(p);
    EXPECT_GE(ch.newBase, PmoManager::arenaBase);
    EXPECT_LT(ch.newBase + p.size(),
              PmoManager::arenaBase + PmoManager::arenaSize);
    EXPECT_EQ(ch.newBase % PmoManager::slotAlign, 0u);
    EXPECT_TRUE(p.attached());
}

TEST(PmoManager, RerandomizeMovesTheBase)
{
    PmoManager m(5);
    Pmo &p = m.create("x", 4 * MiB);
    m.mapRandomized(p);
    std::uint64_t base1 = p.vaddrBase();
    MapChange ch = m.rerandomize(p);
    EXPECT_EQ(ch.oldBase, base1);
    EXPECT_NE(p.vaddrBase(), base1);
    EXPECT_EQ(p.physBase(), m.pmo(p.id()).physBase());
    EXPECT_EQ(p.mapCount, 2u);
}

TEST(PmoManager, AttachedPmosNeverOverlap)
{
    PmoManager m(9);
    for (int i = 0; i < 16; ++i) {
        Pmo &p = m.create("p" + std::to_string(i), 16 * MiB);
        m.mapRandomized(p);
    }
    for (unsigned i = 1; i <= 16; ++i) {
        for (unsigned j = i + 1; j <= 16; ++j) {
            const Pmo &a = m.pmo(i);
            const Pmo &b = m.pmo(j);
            bool disjoint =
                a.vaddrBase() + a.size() <= b.vaddrBase() ||
                b.vaddrBase() + b.size() <= a.vaddrBase();
            EXPECT_TRUE(disjoint) << i << " vs " << j;
        }
    }
}

TEST(PmoManager, OidDirectTranslation)
{
    PmoManager m;
    Pmo &p = m.create("x", 1 * MiB);
    m.mapRandomized(p);
    Oid o(p.id(), 0x480);
    EXPECT_EQ(m.oidDirect(o), p.vaddrBase() + 0x480);
    sim::MemAccess a = m.accessFor(o, true);
    EXPECT_EQ(a.vaddr, p.vaddrBase() + 0x480);
    EXPECT_EQ(a.paddr, p.physBase() + 0x480);
    EXPECT_TRUE(a.write);
    EXPECT_EQ(a.kind, sim::MemKind::Nvm);
}

TEST(PmoManager, OidDirectOnDetachedPanics)
{
    PmoManager m;
    Pmo &p = m.create("x", 1 * MiB);
    EXPECT_THROW(m.oidDirect(Oid(p.id(), 0)), std::logic_error);
}

TEST(PmoManager, FindByVaddrResolvesOnlyAttached)
{
    PmoManager m(77);
    Pmo &p = m.create("x", 1 * MiB);
    EXPECT_EQ(m.findByVaddr(PmoManager::arenaBase), nullptr);
    m.mapRandomized(p);
    EXPECT_EQ(m.findByVaddr(p.vaddrBase() + 100), &p);
    std::uint64_t stale = p.vaddrBase();
    m.rerandomize(p);
    EXPECT_EQ(m.findByVaddr(stale), nullptr);
}

TEST(PmoManager, EntropyMatchesPaperAssumption)
{
    // 1 TB arena / 4 MB slots = 2^18 placements (Table V).
    EXPECT_EQ(PmoManager::arenaSize / PmoManager::slotAlign,
              1ULL << PmoManager::entropyBits);
    EXPECT_EQ(PmoManager::entropyBits, 18u);
}

TEST(PmoManager, PlacementIsUniformish)
{
    PmoManager m(31337);
    Pmo &p = m.create("x", 4 * MiB);
    std::uint64_t lo = 0, n = 2000;
    for (std::uint64_t i = 0; i < n; ++i) {
        m.mapRandomized(p);
        if (p.vaddrBase() - PmoManager::arenaBase <
            PmoManager::arenaSize / 2) {
            ++lo;
        }
        m.unmap(p);
    }
    EXPECT_NEAR(lo / double(n), 0.5, 0.05);
}

TEST(Pmo, BoundsCheckedAddressing)
{
    PmoManager m;
    Pmo &p = m.create("x", 1 * MiB);
    m.mapRandomized(p);
    EXPECT_NO_THROW(p.vaddrOf(1 * MiB - 1));
    EXPECT_THROW(p.vaddrOf(1 * MiB), std::logic_error);
}
