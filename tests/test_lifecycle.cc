/**
 * @file
 * PMO lifecycle across process runs: persistence of data and
 * namespace between simulated executions (the defining property of
 * persistent memory objects), plus the Fig 5-style CFG dot export.
 */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "compiler/dot.hh"
#include "compiler/pass.hh"
#include "core/runtime.hh"
#include "pm/mem_image.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

using namespace terp;

TEST(Lifecycle, DataSurvivesProcessRestart)
{
    // "Persistent memory": the manager (namespace + physical
    // storage) and the image (contents) outlive each process run;
    // machines and runtimes do not.
    pm::PmoManager pmos(11);
    pm::MemImage image;
    pm::PmoId id;

    { // ---- run 1: create the PMO and write data -----------------
        sim::Machine mach;
        core::Runtime rt(mach, pmos, core::RuntimeConfig::tt());
        sim::ThreadContext &tc = mach.spawnThread();

        pm::Pmo &p = pmos.create("app.state", 4 * MiB);
        id = p.id();
        rt.regionBegin(tc, id, pm::Mode::ReadWrite);
        for (int i = 0; i < 16; ++i) {
            pm::Oid o(id, 0x100 + 64ULL * i);
            rt.access(tc, o, true);
            image.poke(o.raw, 7000 + i);
        }
        rt.regionEnd(tc, id);
        rt.finalize();
        pmos.resetMappings(); // process exit unmaps everything
    }

    EXPECT_FALSE(pmos.pmo(id).attached());

    { // ---- run 2: reopen by name and read the data back ----------
        sim::Machine mach;
        core::Runtime rt(mach, pmos, core::RuntimeConfig::tt());
        sim::ThreadContext &tc = mach.spawnThread();

        pm::Pmo *p = pmos.open("app.state", pm::Mode::Read);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->id(), id);

        rt.regionBegin(tc, id, pm::Mode::Read);
        for (int i = 0; i < 16; ++i) {
            pm::Oid o(id, 0x100 + 64ULL * i);
            EXPECT_EQ(rt.tryAccess(tc, o, false),
                      core::AccessOutcome::Ok);
            EXPECT_EQ(image.peek(o.raw), 7000ULL + i);
        }
        rt.regionEnd(tc, id);
        rt.finalize();
    }
}

TEST(Lifecycle, FreshRunGetsFreshRandomizedPlacement)
{
    pm::PmoManager pmos(13);
    pm::Pmo &p = pmos.create("x", 4 * MiB);
    pmos.mapRandomized(p);
    std::uint64_t base1 = p.vaddrBase();
    pmos.resetMappings();
    pmos.mapRandomized(p);
    EXPECT_NE(p.vaddrBase(), base1); // new run, new location
    EXPECT_EQ(p.mapCount, 2u);
}

TEST(Lifecycle, AllocatorStateSpansRuns)
{
    pm::PmoManager pmos(17);
    pm::Pmo &p = pmos.create("heap", 1 * MiB);
    pm::Oid a = pmos.allocator(p.id()).pmalloc(256);
    pmos.resetMappings();
    // A new run must not hand out the same block again.
    pm::Oid b = pmos.allocator(p.id()).pmalloc(256);
    EXPECT_NE(a, b);
    pmos.allocator(p.id()).pfree(a);
    pmos.allocator(p.id()).pfree(b);
}

// ------------------------------------------------------- dot export

TEST(Dot, RendersShadedBlocksAndRegions)
{
    using namespace compiler;
    Module m;
    FunctionBuilder b(m, "viz", 1);
    b.ifThenElse(
        b.param(0),
        [&]() { b.store(b.pmoBase(1, 0), b.constant(1)); },
        [&]() { b.compute(3); });
    b.ret();
    b.finish();

    PassResult pr = runInsertionPass(m, PassConfig{});
    PmoFacts facts = PmoFacts::analyze(m);
    std::string dot = cfgToDot(m.function(0), 0, facts, pr.regions);

    EXPECT_NE(dot.find("digraph \"viz\""), std::string::npos);
    EXPECT_NE(dot.find("fillcolor=gray80"), std::string::npos);
    EXPECT_NE(dot.find("cond op"), std::string::npos);
    EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, MarksBackEdges)
{
    using namespace compiler;
    Module m;
    FunctionBuilder b(m, "loopy", 0);
    b.forLoop(4, [&](Reg) { b.compute(2); });
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    std::string dot = cfgToDot(m.function(0), 0, facts);
    EXPECT_NE(dot.find("style=dashed, constraint=false"),
              std::string::npos);
}
