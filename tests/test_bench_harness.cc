/**
 * @file
 * Tests for the parallel benchmark harness (bench/harness.*):
 *
 *  - the golden invariant behind every figure harness: running the
 *    reduced Fig 11 matrix at --jobs=8 produces byte-identical
 *    stdout (and therefore identical simulated-cycle results) to
 *    --jobs=1, where --jobs=1 is the original serial code path;
 *  - --jobs flag extraction and the simulation tally;
 *  - ParallelRunner ordering, exception propagation, and a seeded
 *    differential-fuzz pass so the runtime structures the optimized
 *    benches exercise stay pinned to the Section-IV oracle.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "check/fuzzer.hh"
#include "harness.hh"

using namespace terp;

namespace {

/** Run @p fn with stdout captured to a string (fd-level, so C stdio
 *  from the figure harnesses is included). */
template <typename Fn>
std::string
captureStdout(Fn &&fn)
{
    std::fflush(stdout);
    char path[] = "/tmp/terp_bench_capture_XXXXXX";
    int tmp = mkstemp(path);
    EXPECT_GE(tmp, 0);
    int saved = dup(STDOUT_FILENO);
    EXPECT_GE(saved, 0);
    dup2(tmp, STDOUT_FILENO);
    close(tmp);
    fn();
    std::fflush(stdout);
    dup2(saved, STDOUT_FILENO);
    close(saved);

    std::ifstream in(path, std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    std::remove(path);
    return body.str();
}

std::string
runFig11(const char *jobsFlag)
{
    return captureStdout([&] {
        // Reduced matrix: tiny scale, 2 simulated threads.
        std::vector<std::string> args = {"fig11", "0.05", "2",
                                         jobsFlag};
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        bench::run_fig11(static_cast<int>(args.size()), argv.data());
    });
}

TEST(BenchHarness, Fig11ParallelMatchesSerialByteForByte)
{
    const std::string serial = runFig11("--jobs=1");
    const std::string parallel = runFig11("--jobs=8");
    // Sanity: the run actually produced the figure.
    EXPECT_NE(serial.find("=== Fig 11"), std::string::npos);
    EXPECT_NE(serial.find("avg total overhead"), std::string::npos);
    EXPECT_EQ(serial, parallel);
}

TEST(BenchHarness, JobsArgStripsFlagAndClamps)
{
    std::vector<std::string> args = {"prog", "0.5", "--jobs=7", "4"};
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    int argc = static_cast<int>(argv.size());
    EXPECT_EQ(bench::jobsArg(argc, argv.data()), 7u);
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[1], "0.5");
    EXPECT_STREQ(argv[2], "4");

    std::vector<std::string> none = {"prog", "--jobs=0"};
    std::vector<char *> nargv;
    for (std::string &a : none)
        nargv.push_back(a.data());
    int nargc = static_cast<int>(nargv.size());
    EXPECT_EQ(bench::jobsArg(nargc, nargv.data()), 1u);
    EXPECT_EQ(nargc, 1);
}

TEST(BenchHarness, TallyCountsSimulations)
{
    const bench::SimTally before = bench::tallySnapshot();
    bench::noteSim(123);
    bench::noteSim(77);
    const bench::SimTally after = bench::tallySnapshot();
    EXPECT_EQ(after.sims - before.sims, 2u);
    EXPECT_EQ(after.simCycles - before.simCycles, 200u);
}

TEST(BenchHarness, RunnerExecutesEveryTaskIntoItsSlot)
{
    const std::size_t n = 100;
    std::vector<int> out(n, 0);
    bench::ParallelRunner pool(8);
    for (std::size_t i = 0; i < n; ++i)
        pool.add([&out, i] { out[i] = static_cast<int>(i) + 1; });
    pool.run();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 1);
}

TEST(BenchHarness, RunnerSerialRunsInOrder)
{
    std::vector<int> order;
    bench::ParallelRunner pool(1);
    for (int i = 0; i < 5; ++i)
        pool.add([&order, i] { order.push_back(i); });
    pool.run();
    ASSERT_EQ(order.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(BenchHarness, RunnerRethrowsTaskException)
{
    bench::ParallelRunner pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.add([&ran] { ran.fetch_add(1); });
    pool.add([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.run(), std::runtime_error);
}

// Enabling metrics must not perturb the simulation: recording never
// charges simulated cycles and never prints, so every number the
// fig11/table4 print phases consume — cycle totals, per-charge
// breakdowns, exposure statistics, silent fractions — is identical
// with the registry on or off. Byte-identical figure output follows,
// since the tables are pure functions of these results.
TEST(BenchHarness, MetricsOnOffLeavesSpecRunIdentical)
{
    workloads::SpecParams p;
    p.threads = 2;
    p.scale = 0.05;
    const core::RuntimeConfig on = core::RuntimeConfig::tt();
    const workloads::RunResult a =
        workloads::runSpec("mcf", on, p);
    const workloads::RunResult b =
        workloads::runSpec("mcf", on.withoutMetrics(), p);
    ASSERT_EQ(b.metrics, nullptr);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.report.total, b.report.total);
    EXPECT_EQ(a.report.work, b.report.work);
    EXPECT_EQ(a.report.attach, b.report.attach);
    EXPECT_EQ(a.report.detach, b.report.detach);
    EXPECT_EQ(a.report.rand, b.report.rand);
    EXPECT_EQ(a.report.cond, b.report.cond);
    EXPECT_EQ(a.report.other, b.report.other);
    EXPECT_EQ(a.report.silentFraction, b.report.silentFraction);
    EXPECT_EQ(a.exposure.ewCount, b.exposure.ewCount);
    EXPECT_EQ(a.exposure.ewMaxUs, b.exposure.ewMaxUs);
    EXPECT_EQ(a.exposure.er, b.exposure.er);
    EXPECT_EQ(a.exposure.ter, b.exposure.ter);
}

TEST(BenchHarness, MetricsOnOffLeavesWhisperRunIdentical)
{
    workloads::WhisperParams p;
    p.sections = 30;
    for (const core::RuntimeConfig &cfg :
         {core::RuntimeConfig::mm(), core::RuntimeConfig::tt()}) {
        const workloads::RunResult a =
            workloads::runWhisper("hashmap", cfg, p);
        const workloads::RunResult b = workloads::runWhisper(
            "hashmap", cfg.withoutMetrics(), p);
        EXPECT_EQ(a.totalCycles, b.totalCycles);
        EXPECT_EQ(a.report.total, b.report.total);
        EXPECT_EQ(a.report.silentFraction, b.report.silentFraction);
        EXPECT_EQ(a.exposure.ewAvgUs, b.exposure.ewAvgUs);
        EXPECT_EQ(a.exposure.tewAvgUs, b.exposure.tewAvgUs);
    }
}

// The hot-path work behind the benches (interpreter dispatch, cache
// indexing, runtime counters) must not change protection semantics:
// replay a seeded schedule matrix against the Section-IV oracle.
TEST(BenchHarness, SeededFuzzAgainstOptimizedRuntime)
{
    check::FuzzOptions opt;
    opt.seeds = 6;
    opt.firstSeed = 20260805;
    opt.gen.events = 40;
    opt.gen.threads = 3;
    opt.gen.pmos = 2;
    opt.gen.ewTarget = usToCycles(5.0);
    check::FuzzResult res = check::fuzz(opt);
    EXPECT_GT(res.executed, 0u);
    for (const check::Divergence &d : res.divergences)
        ADD_FAILURE() << "divergence: scheme=" << d.scheme
                      << " seed=" << d.seed;
    EXPECT_TRUE(res.ok());
}

} // namespace
