/**
 * @file
 * Tests for the crash-consistency substrate: persistence ordering
 * (store -> CLWB -> SFENCE), crash/recovery behaviour, the undo-log
 * transaction protocol, the watch-register alternative hardware
 * design, and a property test crashing transactions at random points
 * and requiring atomicity after recovery.
 */

#include <gtest/gtest.h>

#include <map>

#include "arch/watch_regs.hh"
#include "common/rng.hh"
#include "pm/persist.hh"
#include "sim/thread.hh"

using namespace terp;
using namespace terp::pm;

namespace {

sim::ThreadContext
makeTc()
{
    return sim::ThreadContext(0, 0);
}

} // namespace

// ------------------------------------------------ persist controller

// ------------------------------------------------------- LineTable

namespace {

/** Collect a LineTable's words into a map for order-free compare. */
std::map<std::uint64_t, std::uint64_t>
wordsOf(const LineTable &t)
{
    std::map<std::uint64_t, std::uint64_t> out;
    t.forEachWord([&](std::uint64_t addr, std::uint64_t val) {
        out[addr] = val;
    });
    return out;
}

} // namespace

TEST(LineTable, UpsertDedupesAddrsAndCountsLines)
{
    LineTable t;
    EXPECT_EQ(t.size(), 0u);
    t.upsert(lineKeyOf(0x100), 0x100, 1);
    t.upsert(lineKeyOf(0x108), 0x108, 2); // same line
    t.upsert(lineKeyOf(0x100), 0x100, 3); // overwrite, last wins
    t.upsert(lineKeyOf(0x200), 0x200, 4); // second line
    EXPECT_EQ(t.size(), 2u);
    auto w = wordsOf(t);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0x100], 3u);
    EXPECT_EQ(w[0x108], 2u);
    EXPECT_EQ(w[0x200], 4u);
}

TEST(LineTable, FullLinePlusSpillSlots)
{
    // 8 aligned words fill the inline slots; further distinct addrs
    // (unaligned keys) must spill without losing anything.
    LineTable t;
    const std::uint64_t line = 0x1000;
    for (unsigned i = 0; i < 8; ++i)
        t.upsert(line, line + 8 * i, i);
    t.upsert(line, line + 1, 100); // spill
    t.upsert(line, line + 2, 101); // spill
    t.upsert(line, line + 1, 102); // overwrite inside spill
    EXPECT_EQ(t.size(), 1u);
    auto w = wordsOf(t);
    ASSERT_EQ(w.size(), 10u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(w[line + 8 * i], i);
    EXPECT_EQ(w[line + 1], 102u);
    EXPECT_EQ(w[line + 2], 101u);
}

TEST(LineTable, MoveLineTransfersAndRepoints)
{
    LineTable src, dst;
    // Three lines; move the middle one so the swap-pop removal must
    // repoint the index entry of the last bucket.
    src.upsert(0x000, 0x000, 1);
    src.upsert(0x040, 0x040, 2);
    src.upsert(0x040, 0x048, 3);
    src.upsert(0x080, 0x080, 4);
    src.moveLine(0x040, dst);
    EXPECT_EQ(src.size(), 2u);
    EXPECT_EQ(dst.size(), 1u);
    auto s = wordsOf(src);
    EXPECT_EQ(s.count(0x040), 0u);
    EXPECT_EQ(s.at(0x000), 1u);
    EXPECT_EQ(s.at(0x080), 4u);
    auto d = wordsOf(dst);
    EXPECT_EQ(d.at(0x040), 2u);
    EXPECT_EQ(d.at(0x048), 3u);

    // Moving a line absent from the table is a no-op.
    src.moveLine(0x040, dst);
    EXPECT_EQ(src.size(), 2u);
    EXPECT_EQ(dst.size(), 1u);

    // The moved-from line can be repopulated cleanly.
    src.upsert(0x040, 0x040, 9);
    EXPECT_EQ(src.size(), 3u);
    EXPECT_EQ(wordsOf(src).at(0x040), 9u);
}

TEST(LineTable, GrowthAndTombstoneChurnStayConsistent)
{
    // Enough lines to force several index growths, then churn
    // (move-out = tombstone, re-insert) to exercise slot reuse and
    // the tombstone-dropping rehash.
    LineTable t, sink;
    const unsigned n = 500;
    for (unsigned i = 0; i < n; ++i)
        t.upsert(i * 64, i * 64, i);
    EXPECT_EQ(t.size(), n);
    for (unsigned i = 0; i < n; i += 2)
        t.moveLine(i * 64, sink);
    EXPECT_EQ(t.size(), n / 2);
    EXPECT_EQ(sink.size(), n / 2);
    for (unsigned i = 0; i < n; i += 2)
        t.upsert(i * 64, i * 64, i + 1000);
    EXPECT_EQ(t.size(), n);
    auto w = wordsOf(t);
    ASSERT_EQ(w.size(), n);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(w[i * 64], i % 2 ? i : i + 1000) << "line " << i;

    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(wordsOf(t).empty());
    t.upsert(0x40, 0x40, 7); // usable after clear
    EXPECT_EQ(t.size(), 1u);
}

TEST(Persist, StoreVisibleButNotDurable)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100);
    ctl.store(a, 42);
    EXPECT_EQ(ctl.load(a), 42u);
    EXPECT_EQ(ctl.persistedLoad(a), 0u);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 0u); // lost with power
    (void)tc;
}

TEST(Persist, ClwbAloneIsNotDurable)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100);
    ctl.store(a, 42);
    ctl.clwb(tc, a);
    // Write-back issued but not fenced: a crash may still lose it.
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 0u);
}

TEST(Persist, ClwbPlusFenceIsDurable)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100);
    ctl.store(a, 42);
    ctl.clwb(tc, a);
    ctl.sfence(tc);
    EXPECT_EQ(ctl.persistedLoad(a), 42u);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 42u); // survived
}

TEST(Persist, ClwbCoversWholeLine)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100), b(1, 0x108); // same 64-byte line
    ctl.store(a, 1);
    ctl.store(b, 2);
    ctl.clwb(tc, a); // one CLWB drains both words
    ctl.sfence(tc);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 1u);
    EXPECT_EQ(ctl.load(b), 2u);
}

TEST(Persist, LinesAreIndependent)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100), b(1, 0x200); // different lines
    ctl.store(a, 1);
    ctl.store(b, 2);
    ctl.clwb(tc, a);
    ctl.sfence(tc);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 1u);
    EXPECT_EQ(ctl.load(b), 0u); // never written back
}

TEST(Persist, FenceCostScalesWithPendingLines)
{
    PersistController ctl;
    auto tc = makeTc();
    for (int i = 0; i < 8; ++i) {
        Oid o(1, 0x1000 + 64ULL * i);
        ctl.store(o, i);
        ctl.clwb(tc, o);
    }
    Cycles before = tc.now();
    ctl.sfence(tc);
    EXPECT_GE(tc.now() - before,
              8 * PersistController::drainCostPerLine);
}

// ------------------------------------------------------- undo log

TEST(UndoLog, CommittedTransactionSurvivesCrash)
{
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    Oid x(1, 0x100), y(1, 0x200);
    ctl.persistentStore(tc, x, 10);
    ctl.persistentStore(tc, y, 20);
    ctl.sfence(tc);

    log.begin(tc);
    log.write(tc, x, 11);
    log.write(tc, y, 21);
    log.commit(tc);

    ctl.crash();
    log.recover(tc);
    EXPECT_EQ(ctl.load(x), 11u);
    EXPECT_EQ(ctl.load(y), 21u);
}

TEST(UndoLog, UncommittedTransactionRollsBack)
{
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    Oid x(1, 0x100), y(1, 0x200);
    ctl.persistentStore(tc, x, 10);
    ctl.persistentStore(tc, y, 20);
    ctl.sfence(tc);

    log.begin(tc);
    log.write(tc, x, 11);
    log.write(tc, y, 21);
    // Crash before commit.
    ctl.crash();
    log.recover(tc);
    EXPECT_EQ(ctl.load(x), 10u);
    EXPECT_EQ(ctl.load(y), 20u);
}

TEST(UndoLog, NestedBeginPanics)
{
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    log.begin(tc);
    EXPECT_THROW(log.begin(tc), std::logic_error);
}

TEST(UndoLog, DuplicateWritesDedupeAndChargeOnce)
{
    // A transaction that stores repeatedly to one location needs one
    // undo record — the oldest value — not one per store. The repeat
    // writes must also cost nothing: the first write already paid for
    // the log entry's persist (both entry words share one line).
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    Oid x(1, 0x100);
    ctl.persistentStore(tc, x, 10);
    ctl.sfence(tc);

    constexpr Cycles unit = PersistController::clwbCost +
                            PersistController::drainCostPerLine;
    log.begin(tc);
    Cycles t0 = tc.now();
    log.write(tc, x, 11);
    EXPECT_EQ(tc.now() - t0, 2 * PersistController::clwbCost +
                                 PersistController::drainCostPerLine +
                                 unit);
    t0 = tc.now();
    log.write(tc, x, 12);
    log.write(tc, x, 13);
    EXPECT_EQ(tc.now() - t0, 0u) << "duplicate writes must be free";
    log.commit(tc);
    EXPECT_EQ(ctl.persistedLoad(x), 13u);

    // Crash mid-transaction: recovery examines ONE durable entry and
    // rolls back to the pre-transaction value, not an intermediate.
    log.begin(tc);
    log.write(tc, x, 21);
    log.write(tc, x, 22);
    ctl.crash();
    EXPECT_EQ(log.recover(tc), 1u);
    EXPECT_EQ(ctl.load(x), 13u);
}

TEST(UndoLog, RecoverIsIdempotentAndChargesOnce)
{
    // A crash can land between commit's data-flush fence and the
    // durable header clear; the header then still marks the
    // transaction in-flight and recovery rolls it back. A second
    // recover() pass (e.g. a crash during recovery itself) must find
    // a clean log and charge nothing — no double-applied rollback.
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    Oid x(1, 0x100);
    ctl.persistentStore(tc, x, 5);
    ctl.sfence(tc);

    log.begin(tc);
    log.write(tc, x, 6);
    ctl.crash();
    EXPECT_TRUE(log.recoveryPending());
    EXPECT_EQ(log.recover(tc), 1u);
    EXPECT_EQ(ctl.persistedLoad(x), 5u);
    EXPECT_FALSE(log.recoveryPending());

    Cycles t0 = tc.now();
    EXPECT_EQ(log.recover(tc), 0u);
    EXPECT_EQ(tc.now() - t0, 0u);
    EXPECT_EQ(ctl.persistedLoad(x), 5u);
}

TEST(UndoLog, TransactionsAtomicAtEveryPersistBoundary)
{
    // Exhaustive fault injection: a baseline run of a fixed 4-txn
    // workload counts its persist boundaries B, then the workload is
    // re-run B times with the fault plan armed at every n in 1..B.
    // After each modeled power failure the durable image must equal
    // the image after exactly the commits that returned, and a fresh
    // transaction must still commit durably.
    struct Workload
    {
        PersistController ctl;
        UndoLog log{ctl, 1, 0x10000};
        std::map<std::uint64_t, std::uint64_t> committed;

        void
        run(sim::ThreadContext &tc)
        {
            for (unsigned t = 1; t <= 4; ++t) {
                std::vector<std::pair<Oid, std::uint64_t>> writes;
                for (unsigned w = 0; w <= t % 3; ++w) {
                    writes.push_back({Oid(1, 0x100 + 64ULL *
                                                     ((t + w) % 5)),
                                      100ULL * t + w});
                }
                if (t == 2) // a duplicate store, exercising dedupe
                    writes.push_back({writes.front().first, 299});
                log.begin(tc);
                for (const auto &[o, v] : writes)
                    log.write(tc, o, v);
                log.commit(tc);
                for (const auto &[o, v] : writes)
                    committed[o.raw] = v;
            }
        }
    };

    auto tcBase = makeTc();
    std::uint64_t bounds = 0;
    {
        Workload base;
        base.run(tcBase);
        bounds = base.ctl.boundaryCount();
        ASSERT_GT(bounds, 0u);
    }

    for (std::uint64_t n = 1; n <= bounds; ++n) {
        Workload w;
        auto tc = makeTc();
        w.ctl.armFault(n);
        bool crashed = false;
        try {
            w.run(tc);
        } catch (const PowerFailure &pf) {
            crashed = true;
            EXPECT_EQ(pf.boundary, n);
        }
        ASSERT_TRUE(crashed) << "fault " << n << " never fired";
        w.log.recover(tc);

        // All-or-nothing: exactly the committed prefix is durable.
        for (const auto &[raw, v] : w.committed) {
            EXPECT_EQ(w.ctl.load(Oid::fromRaw(raw)), v)
                << "boundary " << n << " oid 0x" << std::hex << raw;
        }
        for (unsigned c = 0; c < 5; ++c) {
            Oid o(1, 0x100 + 64ULL * c);
            if (!w.committed.count(o.raw)) {
                EXPECT_EQ(w.ctl.load(o), 0u)
                    << "boundary " << n << " leaked cell " << c;
            }
        }

        // Liveness: the recovered log accepts a new transaction.
        w.log.begin(tc);
        w.log.write(tc, Oid(1, 0x400), 999);
        w.log.commit(tc);
        EXPECT_EQ(w.ctl.persistedLoad(Oid(1, 0x400)), 999u);
    }
}

TEST(Persist, FaultPlanFiresBeforeTheArmedBoundary)
{
    // "Crash before boundary n": the n-th boundary's effect must not
    // be visible. Boundary 1 of a fresh controller is the store
    // itself — arming it loses even the volatile value.
    PersistController ctl;
    Oid a(1, 0x100);
    ctl.armFault(1);
    EXPECT_THROW(ctl.store(a, 42), PowerFailure);
    EXPECT_FALSE(ctl.faultArmed()) << "plans are one-shot";
    EXPECT_EQ(ctl.load(a), 0u);
    EXPECT_EQ(ctl.boundaryCount(), 1u);
    ctl.store(a, 43); // disarmed: the substrate keeps working
    EXPECT_EQ(ctl.load(a), 43u);
}

class UndoLogCrashPointTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UndoLogCrashPointTest, TransactionsAreAtomicAtAnyCrashPoint)
{
    // Run a sequence of transactions, crash after a random number of
    // transactional writes, recover, and require that every cell
    // reflects a prefix of COMMITTED transactions only (all-or-
    // nothing per transaction).
    Rng rng(GetParam());
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);

    constexpr int nCells = 8;
    std::vector<std::uint64_t> committed(nCells, 0);
    for (int c = 0; c < nCells; ++c) {
        ctl.persistentStore(tc, Oid(1, 0x100 + 64ULL * c), 0);
    }
    ctl.sfence(tc);

    std::uint64_t ops_until_crash = 1 + rng.nextBelow(40);
    bool crashed = false;
    for (int txn = 1; txn <= 10 && !crashed; ++txn) {
        log.begin(tc);
        std::vector<std::uint64_t> staged = committed;
        unsigned writes = 1 + static_cast<unsigned>(rng.nextBelow(4));
        for (unsigned w = 0; w < writes; ++w) {
            int cell = static_cast<int>(rng.nextBelow(nCells));
            staged[cell] = static_cast<std::uint64_t>(txn) * 100 + w;
            log.write(tc, Oid(1, 0x100 + 64ULL * cell),
                      staged[cell]);
            if (--ops_until_crash == 0) {
                ctl.crash();
                crashed = true;
                break;
            }
        }
        if (!crashed) {
            log.commit(tc);
            committed = staged;
        }
    }

    if (crashed) {
        log.recover(tc);
        for (int c = 0; c < nCells; ++c) {
            EXPECT_EQ(ctl.load(Oid(1, 0x100 + 64ULL * c)),
                      committed[c])
                << "cell " << c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoLogCrashPointTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// -------------------------------------------------- watch registers

TEST(WatchRegs, EquivalentToConditionalInstructions)
{
    // The same call pattern through the watch-register front end and
    // through direct CONDAT/CONDDT must produce identical case
    // sequences and identical syscall decisions.
    arch::CircularBuffer cb_instr, cb_watch;
    arch::WatchRegisterFile wrf;
    const std::uint64_t attach_pc = 0x400100, detach_pc = 0x400200;
    ASSERT_TRUE(wrf.watchAttach(attach_pc, 1, pm::Mode::ReadWrite));
    ASSERT_TRUE(wrf.watchDetach(detach_pc, 1));

    Cycles t = 0;
    for (int i = 0; i < 50; ++i) {
        t += 500;
        arch::CondAttachCase ai = cb_instr.condAttach(1, t);
        arch::InterceptResult aw =
            wrf.onFetch(attach_pc, cb_watch, t, 40000);
        ASSERT_TRUE(aw.intercepted);
        EXPECT_EQ(ai, aw.attachCase.value());
        EXPECT_EQ(aw.performCall,
                  ai == arch::CondAttachCase::FirstAttach);

        t += 500;
        arch::CondDetachCase di = cb_instr.condDetach(1, t, 40000);
        arch::InterceptResult dw =
            wrf.onFetch(detach_pc, cb_watch, t, 40000);
        ASSERT_TRUE(dw.intercepted);
        EXPECT_EQ(di, dw.detachCase.value());
        EXPECT_EQ(dw.performCall,
                  di == arch::CondDetachCase::FullDetach);
    }
    EXPECT_EQ(cb_instr.stats().silentFraction(),
              cb_watch.stats().silentFraction());
}

TEST(WatchRegs, UnwatchedPcPassesThrough)
{
    arch::CircularBuffer cb;
    arch::WatchRegisterFile wrf;
    wrf.watchAttach(0x400100, 1, pm::Mode::ReadWrite);
    arch::InterceptResult r = wrf.onFetch(0x999999, cb, 0, 1000);
    EXPECT_FALSE(r.intercepted);
}

TEST(WatchRegs, CapacityBounded)
{
    arch::WatchRegisterFile wrf;
    for (unsigned i = 0; i < arch::WatchRegisterFile::capacity; ++i)
        EXPECT_TRUE(wrf.watchAttach(0x1000 + i, 1 + i % 3,
                                    pm::Mode::Read));
    EXPECT_FALSE(wrf.watchAttach(0x9999, 1, pm::Mode::Read));
    wrf.unwatch(0x1000);
    EXPECT_TRUE(wrf.watchDetach(0x9999, 1));
}
