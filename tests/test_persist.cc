/**
 * @file
 * Tests for the crash-consistency substrate: persistence ordering
 * (store -> CLWB -> SFENCE), crash/recovery behaviour, the undo-log
 * transaction protocol, the watch-register alternative hardware
 * design, and a property test crashing transactions at random points
 * and requiring atomicity after recovery.
 */

#include <gtest/gtest.h>

#include "arch/watch_regs.hh"
#include "common/rng.hh"
#include "pm/persist.hh"
#include "sim/thread.hh"

using namespace terp;
using namespace terp::pm;

namespace {

sim::ThreadContext
makeTc()
{
    return sim::ThreadContext(0, 0);
}

} // namespace

// ------------------------------------------------ persist controller

TEST(Persist, StoreVisibleButNotDurable)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100);
    ctl.store(a, 42);
    EXPECT_EQ(ctl.load(a), 42u);
    EXPECT_EQ(ctl.persistedLoad(a), 0u);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 0u); // lost with power
    (void)tc;
}

TEST(Persist, ClwbAloneIsNotDurable)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100);
    ctl.store(a, 42);
    ctl.clwb(tc, a);
    // Write-back issued but not fenced: a crash may still lose it.
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 0u);
}

TEST(Persist, ClwbPlusFenceIsDurable)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100);
    ctl.store(a, 42);
    ctl.clwb(tc, a);
    ctl.sfence(tc);
    EXPECT_EQ(ctl.persistedLoad(a), 42u);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 42u); // survived
}

TEST(Persist, ClwbCoversWholeLine)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100), b(1, 0x108); // same 64-byte line
    ctl.store(a, 1);
    ctl.store(b, 2);
    ctl.clwb(tc, a); // one CLWB drains both words
    ctl.sfence(tc);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 1u);
    EXPECT_EQ(ctl.load(b), 2u);
}

TEST(Persist, LinesAreIndependent)
{
    PersistController ctl;
    auto tc = makeTc();
    Oid a(1, 0x100), b(1, 0x200); // different lines
    ctl.store(a, 1);
    ctl.store(b, 2);
    ctl.clwb(tc, a);
    ctl.sfence(tc);
    ctl.crash();
    EXPECT_EQ(ctl.load(a), 1u);
    EXPECT_EQ(ctl.load(b), 0u); // never written back
}

TEST(Persist, FenceCostScalesWithPendingLines)
{
    PersistController ctl;
    auto tc = makeTc();
    for (int i = 0; i < 8; ++i) {
        Oid o(1, 0x1000 + 64ULL * i);
        ctl.store(o, i);
        ctl.clwb(tc, o);
    }
    Cycles before = tc.now();
    ctl.sfence(tc);
    EXPECT_GE(tc.now() - before,
              8 * PersistController::drainCostPerLine);
}

// ------------------------------------------------------- undo log

TEST(UndoLog, CommittedTransactionSurvivesCrash)
{
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    Oid x(1, 0x100), y(1, 0x200);
    ctl.persistentStore(tc, x, 10);
    ctl.persistentStore(tc, y, 20);
    ctl.sfence(tc);

    log.begin(tc);
    log.write(tc, x, 11);
    log.write(tc, y, 21);
    log.commit(tc);

    ctl.crash();
    log.recover(tc);
    EXPECT_EQ(ctl.load(x), 11u);
    EXPECT_EQ(ctl.load(y), 21u);
}

TEST(UndoLog, UncommittedTransactionRollsBack)
{
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    Oid x(1, 0x100), y(1, 0x200);
    ctl.persistentStore(tc, x, 10);
    ctl.persistentStore(tc, y, 20);
    ctl.sfence(tc);

    log.begin(tc);
    log.write(tc, x, 11);
    log.write(tc, y, 21);
    // Crash before commit.
    ctl.crash();
    log.recover(tc);
    EXPECT_EQ(ctl.load(x), 10u);
    EXPECT_EQ(ctl.load(y), 20u);
}

TEST(UndoLog, NestedBeginPanics)
{
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);
    log.begin(tc);
    EXPECT_THROW(log.begin(tc), std::logic_error);
}

class UndoLogCrashPointTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UndoLogCrashPointTest, TransactionsAreAtomicAtAnyCrashPoint)
{
    // Run a sequence of transactions, crash after a random number of
    // transactional writes, recover, and require that every cell
    // reflects a prefix of COMMITTED transactions only (all-or-
    // nothing per transaction).
    Rng rng(GetParam());
    PersistController ctl;
    auto tc = makeTc();
    UndoLog log(ctl, 1, 0x10000);

    constexpr int nCells = 8;
    std::vector<std::uint64_t> committed(nCells, 0);
    for (int c = 0; c < nCells; ++c) {
        ctl.persistentStore(tc, Oid(1, 0x100 + 64ULL * c), 0);
    }
    ctl.sfence(tc);

    std::uint64_t ops_until_crash = 1 + rng.nextBelow(40);
    bool crashed = false;
    for (int txn = 1; txn <= 10 && !crashed; ++txn) {
        log.begin(tc);
        std::vector<std::uint64_t> staged = committed;
        unsigned writes = 1 + static_cast<unsigned>(rng.nextBelow(4));
        for (unsigned w = 0; w < writes; ++w) {
            int cell = static_cast<int>(rng.nextBelow(nCells));
            staged[cell] = static_cast<std::uint64_t>(txn) * 100 + w;
            log.write(tc, Oid(1, 0x100 + 64ULL * cell),
                      staged[cell]);
            if (--ops_until_crash == 0) {
                ctl.crash();
                crashed = true;
                break;
            }
        }
        if (!crashed) {
            log.commit(tc);
            committed = staged;
        }
    }

    if (crashed) {
        log.recover(tc);
        for (int c = 0; c < nCells; ++c) {
            EXPECT_EQ(ctl.load(Oid(1, 0x100 + 64ULL * c)),
                      committed[c])
                << "cell " << c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoLogCrashPointTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// -------------------------------------------------- watch registers

TEST(WatchRegs, EquivalentToConditionalInstructions)
{
    // The same call pattern through the watch-register front end and
    // through direct CONDAT/CONDDT must produce identical case
    // sequences and identical syscall decisions.
    arch::CircularBuffer cb_instr, cb_watch;
    arch::WatchRegisterFile wrf;
    const std::uint64_t attach_pc = 0x400100, detach_pc = 0x400200;
    ASSERT_TRUE(wrf.watchAttach(attach_pc, 1, pm::Mode::ReadWrite));
    ASSERT_TRUE(wrf.watchDetach(detach_pc, 1));

    Cycles t = 0;
    for (int i = 0; i < 50; ++i) {
        t += 500;
        arch::CondAttachCase ai = cb_instr.condAttach(1, t);
        arch::InterceptResult aw =
            wrf.onFetch(attach_pc, cb_watch, t, 40000);
        ASSERT_TRUE(aw.intercepted);
        EXPECT_EQ(ai, aw.attachCase.value());
        EXPECT_EQ(aw.performCall,
                  ai == arch::CondAttachCase::FirstAttach);

        t += 500;
        arch::CondDetachCase di = cb_instr.condDetach(1, t, 40000);
        arch::InterceptResult dw =
            wrf.onFetch(detach_pc, cb_watch, t, 40000);
        ASSERT_TRUE(dw.intercepted);
        EXPECT_EQ(di, dw.detachCase.value());
        EXPECT_EQ(dw.performCall,
                  di == arch::CondDetachCase::FullDetach);
    }
    EXPECT_EQ(cb_instr.stats().silentFraction(),
              cb_watch.stats().silentFraction());
}

TEST(WatchRegs, UnwatchedPcPassesThrough)
{
    arch::CircularBuffer cb;
    arch::WatchRegisterFile wrf;
    wrf.watchAttach(0x400100, 1, pm::Mode::ReadWrite);
    arch::InterceptResult r = wrf.onFetch(0x999999, cb, 0, 1000);
    EXPECT_FALSE(r.intercepted);
}

TEST(WatchRegs, CapacityBounded)
{
    arch::WatchRegisterFile wrf;
    for (unsigned i = 0; i < arch::WatchRegisterFile::capacity; ++i)
        EXPECT_TRUE(wrf.watchAttach(0x1000 + i, 1 + i % 3,
                                    pm::Mode::Read));
    EXPECT_FALSE(wrf.watchAttach(0x9999, 1, pm::Mode::Read));
    wrf.unwatch(0x1000);
    EXPECT_TRUE(wrf.watchDetach(0x9999, 1));
}
