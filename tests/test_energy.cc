/**
 * @file
 * Energy-harvesting regime tests: the capacitor model, the harvest
 * harness's per-cycle oracle across every protected scheme, and the
 * repeated-cycle crash/recover edges the single-crash enumerator
 * never reaches — TxManager transactions power-failed on every
 * commit boundary of a long-lived world, brown-outs during recovery,
 * double crashes without an intervening recover, and crashes that
 * land on blocked waiters.
 */

#include <gtest/gtest.h>

#include "arch/circular_buffer.hh"
#include "check/fuzzer.hh"
#include "core/domain.hh"
#include "check/recovery_oracle.hh"
#include "energy/capacitor.hh"
#include "energy/harvest.hh"
#include "pm/persist.hh"
#include "pm/tx_manager.hh"

using namespace terp;

namespace {

constexpr std::uint64_t kLogOff = 1ULL << 32;
constexpr std::uint64_t kPmoBytes = 64 * KiB;

check::CrashWorld
makeWorld(const std::string &scheme, unsigned pmos, unsigned threads)
{
    return check::CrashWorld(
        check::schemeConfig(scheme, usToCycles(5)).withTrace(1u << 22),
        pmos, threads, kPmoBytes, kLogOff);
}

/**
 * Settle oracle flights after a crash: checkDurable() verified the
 * transaction is not torn, so the durable image of its keys says
 * which side of the durable point the crash landed on.
 */
void
resolveFlights(check::CrashWorld &w, check::Ledger &led)
{
    const pm::PersistController &ctl = w.dom.controller();
    for (auto it = led.flight.begin(); it != led.flight.end();) {
        const check::TxFlight &fl = it->second;
        bool allNew = fl.ambiguous && !fl.keys.empty();
        for (std::uint64_t raw : fl.keys) {
            if (ctl.persistedLoad(pm::Oid::fromRaw(raw)) !=
                fl.newv.at(raw)) {
                allNew = false;
                break;
            }
        }
        if (allNew) {
            for (const auto &[raw, v] : fl.newv)
                led.image[raw] = v;
            ++led.done;
        }
        it = led.flight.erase(it);
    }
    led.inFlight.clear();
}

/** Post-crash recovery plus the full invariants + liveness probe. */
void
recoverAndCheck(check::CrashWorld &w, check::Ledger &led,
                std::uint64_t probeTag)
{
    sim::ThreadContext &tc = w.mach.thread(0);
    w.rt->recover(tc);
    std::vector<std::string> v;
    check::checkLogsRetired(w, v);
    check::drainIdleWindows(w, "recovery", v);
    resolveFlights(w, led);
    check::checkDurable(w, led, v);
    Cycles drained = w.nextHook - w.hookPeriod;
    if (tc.now() < drained)
        tc.syncTo(drained, sim::Charge::Other);
    check::runTxn(w, led, tc, 1,
                  {{pm::Oid(1, kPmoBytes - 8), 0xabc00000 + probeTag}});
    check::checkDurable(w, led, v);
    check::drainIdleWindows(w, "the probe transaction", v);
    for (const std::string &m : v)
        ADD_FAILURE() << m;
}

} // namespace

// ------------------------------------------------------- capacitor

TEST(Capacitor, RunwayMatchesDrainToFailure)
{
    energy::CapacitorConfig cfg;
    cfg.capacityUnits = 500;
    cfg.harvestPerKcycle = 2;
    cfg.drainPerKcycle = 10;
    cfg.failThresholdUnits = 100;
    energy::Capacitor cap(cfg);

    Cycles runway = cap.runway();
    ASSERT_GT(runway, Cycles(0));
    // The full runway is powered; one more cycle crosses the
    // threshold.
    EXPECT_EQ(cap.drain(runway), runway);
    EXPECT_FALSE(cap.failed());
    EXPECT_EQ(cap.runway(), Cycles(0));
    EXPECT_LT(cap.drain(1), Cycles(2));
    EXPECT_TRUE(cap.failed());
    EXPECT_LE(cap.storedUnits(), cfg.failThresholdUnits);

    Cycles off = cap.rechargeCycles();
    EXPECT_GT(off, Cycles(0));
    cap.recharge();
    EXPECT_FALSE(cap.failed());
    EXPECT_EQ(cap.storedUnits(), cfg.capacityUnits);
}

TEST(Capacitor, PoweredPrefixOnOverdrain)
{
    energy::CapacitorConfig cfg;
    cfg.capacityUnits = 200;
    cfg.harvestPerKcycle = 0;
    cfg.harvestPerKcycle = 1;
    cfg.drainPerKcycle = 11;
    cfg.failThresholdUnits = 100;
    energy::Capacitor cap(cfg);
    Cycles runway = cap.runway();
    Cycles powered = cap.drain(runway + 5000);
    EXPECT_TRUE(cap.failed());
    EXPECT_GT(powered, runway);        // partial last step still runs
    EXPECT_LT(powered, runway + 5000); // but not the whole interval
}

TEST(Capacitor, HarvesterKeepingUpNeverFails)
{
    energy::CapacitorConfig cfg;
    cfg.capacityUnits = 300;
    cfg.harvestPerKcycle = 10;
    cfg.drainPerKcycle = 10;
    energy::Capacitor cap(cfg);
    EXPECT_EQ(cap.runway(), ~Cycles(0));
    EXPECT_EQ(cap.drain(1000000), Cycles(1000000));
    EXPECT_FALSE(cap.failed());
}

TEST(Capacitor, PolicyThresholds)
{
    energy::CapacitorConfig cfg;
    cfg.capacityUnits = 1000;
    cfg.harvestPerKcycle = 0;
    cfg.harvestPerKcycle = 2;
    cfg.drainPerKcycle = 12;
    cfg.failThresholdUnits = 100;
    cfg.watermarkUnits = 400;
    cfg.sweepReserveUnits = 300;
    energy::Capacitor cap(cfg);
    EXPECT_FALSE(cap.belowWatermark());
    EXPECT_FALSE(cap.belowSweepReserve());
    // Drain to just under the watermark but above the reserve.
    while (!cap.belowWatermark())
        cap.drain(1000);
    EXPECT_TRUE(cap.belowWatermark());
    EXPECT_FALSE(cap.failed());
    while (!cap.belowSweepReserve())
        cap.drain(1000);
    EXPECT_TRUE(cap.belowSweepReserve());
}

// ------------------------------------------------- harvest harness

TEST(Harvest, ThousandCycleOracleEveryScheme)
{
    // The tentpole acceptance run: 1000 consecutive power cycles per
    // scheme with the crash-enumeration invariants (atomicity ledger,
    // probe-transaction liveness, exposure hygiene) checked at every
    // cycle and the full-timeline trace audit at a stride (the audit
    // replays the whole trace, so per-cycle auditing would be
    // quadratic in run length).
    for (const std::string &scheme : check::allSchemes()) {
        energy::HarvestOptions opt;
        opt.scheme = scheme;
        opt.workload = "bank";
        opt.powerCycles = 1000;
        opt.cap.capacityUnits = 800;
        opt.auditEvery = 200;
        opt.traceCapacity = 1u << 22;
        energy::HarvestResult res = energy::runHarvest(opt);
        EXPECT_EQ(res.powerCycles, 1000u) << scheme;
        EXPECT_GT(res.committed, 0u) << scheme;
        for (const std::string &v : res.violations)
            ADD_FAILURE() << scheme << ": " << v;
    }
}

TEST(Harvest, TxmixOracleUnderPowerFail)
{
    // Nested TxManager transactions across two PMOs with power
    // failures landing inside commit sequences (undo and redo kinds,
    // voluntary aborts mixed in), repeated for hundreds of cycles in
    // one world.
    energy::HarvestOptions opt;
    opt.scheme = "tt";
    opt.workload = "txmix";
    opt.powerCycles = 300;
    opt.cap.capacityUnits = 700;
    opt.auditEvery = 100;
    opt.traceCapacity = 1u << 22;
    energy::HarvestResult res = energy::runHarvest(opt);
    EXPECT_EQ(res.powerCycles, 300u);
    EXPECT_GT(res.committed, 0u);
    EXPECT_GT(res.interrupted, 0u);
    for (const std::string &v : res.violations)
        ADD_FAILURE() << v;
}

TEST(Harvest, Deterministic)
{
    energy::HarvestOptions opt;
    opt.scheme = "tt";
    opt.powerCycles = 50;
    opt.cap.capacityUnits = 600;
    energy::HarvestResult a = energy::runHarvest(opt);
    energy::HarvestResult b = energy::runHarvest(opt);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.interrupted, b.interrupted);
    EXPECT_EQ(a.simCycles, b.simCycles);
    EXPECT_EQ(a.offCycles, b.offCycles);
    EXPECT_EQ(a.checkpoints, b.checkpoints);
    EXPECT_EQ(a.sweepsSkipped, b.sweepsSkipped);
}

TEST(Harvest, CheckpointWatermarkFires)
{
    energy::HarvestOptions opt;
    opt.scheme = "tt";
    opt.powerCycles = 50;
    opt.cap.capacityUnits = 800;
    opt.cap.watermarkUnits = 700; // low-energy region is most of it
    energy::HarvestResult res = energy::runHarvest(opt);
    EXPECT_GT(res.checkpoints, 0u);
    EXPECT_TRUE(res.ok()) << res.violations.front();
}

TEST(Harvest, SweeperBudgetGatesTicks)
{
    energy::HarvestOptions opt;
    opt.scheme = "tt";
    opt.powerCycles = 50;
    opt.cap.capacityUnits = 800;
    opt.cap.sweepReserveUnits = 750; // almost no budget for sweeping
    energy::HarvestResult starved = energy::runHarvest(opt);
    EXPECT_GT(starved.sweepsSkipped, 0u);
    EXPECT_TRUE(starved.ok()) << starved.violations.front();

    opt.cap.sweepReserveUnits = 0; // unlimited budget
    energy::HarvestResult fed = energy::runHarvest(opt);
    EXPECT_EQ(fed.sweepsSkipped, 0u);
    EXPECT_GT(fed.sweepsRun, 0u);
    EXPECT_TRUE(fed.ok()) << fed.violations.front();
}

// ------------------------- repeated-cycle crash/recover edge cases

/**
 * A TxManager transaction power-failed at *every* persist boundary
 * of its begin/write/commit sequence — including every boundary of
 * the commit's durable point — in one long-lived world, recovering
 * and re-checking the full oracle after each. The single-crash
 * enumerator (test_crash) rebuilds a fresh world per crash point;
 * this runs the same sweep against accumulated state.
 */
class TxPowerFail : public ::testing::TestWithParam<pm::TxKind>
{
};

TEST_P(TxPowerFail, MidCommitEveryBoundary)
{
    const pm::TxKind kind = GetParam();
    check::CrashWorld w = makeWorld("tt", 2, 1);
    pm::PersistController &ctl = w.dom.controller();
    pm::TxManager &txm = *w.rt->tx();
    sim::ThreadContext &tc = w.mach.thread(0);
    check::Ledger led;
    const pm::Oid a(1, 0x100), b(2, 0x100);
    std::uint64_t round = 0;

    auto txn = [&]() {
        std::uint64_t va = 0x1000 + round, vb = 0x2000 + round;
        std::vector<std::pair<pm::Oid, std::uint64_t>> writes = {
            {a, va}, {b, vb}};
        check::armFlight(led, 0, kind == pm::TxKind::Redo, writes);
        check::protOpen(w, tc, 1);
        check::protOpen(w, tc, 2);
        ASSERT_TRUE(txm.begin(tc, 0, {1, 2}, kind));
        w.rt->access(tc, a, /*write=*/true);
        txm.write(tc, 0, a, va);
        w.rt->access(tc, b, /*write=*/true);
        txm.write(tc, 0, b, vb);
        bool ok = txm.commit(tc, 0);
        check::protClose(w, tc, 2);
        check::protClose(w, tc, 1);
        check::settleFlight(led, 0, ok);
        EXPECT_TRUE(ok);
        w.advanceSweeps(tc.now());
    };

    // Baseline: one uninterrupted transaction counts the boundaries.
    std::uint64_t b0 = ctl.boundaryCount();
    txn();
    if (HasFatalFailure())
        return;
    const std::uint64_t boundaries = ctl.boundaryCount() - b0;
    ASSERT_GT(boundaries, 0u);

    for (std::uint64_t nth = 1; nth <= boundaries; ++nth) {
        ++round;
        ctl.armFault(ctl.boundaryCount() + nth);
        bool failed = false;
        try {
            txn();
        } catch (const pm::PowerFailure &) {
            failed = true;
            w.rt->crash(w.mach.maxClock());
            recoverAndCheck(w, led, round);
        }
        if (HasFatalFailure())
            return;
        if (!failed) {
            // The boundary landed past this round's transaction
            // (possible when recovery shifted the count); a plan must
            // never be left armed for a later, unrelated operation.
            if (ctl.faultArmed())
                ctl.disarmFault();
        }
        ASSERT_FALSE(ctl.faultArmed()) << "nth=" << nth;
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, TxPowerFail,
                         ::testing::Values(pm::TxKind::Undo,
                                           pm::TxKind::Redo),
                         [](const auto &info) {
                             return std::string(
                                 pm::txKindName(info.param));
                         });

TEST(RepeatedCycles, DoubleCrashWithoutRecoverIsWellDefined)
{
    // A capacitor brown-out during the off/recovery window means
    // crash() can run again before recover() ever did. Defined
    // behavior: the second crash is a no-op on the already-volatile
    // state (nothing mapped, no open windows, no open transactions),
    // and recovery afterwards behaves exactly as after one crash.
    check::CrashWorld w = makeWorld("tt", 2, 1);
    pm::PersistController &ctl = w.dom.controller();
    sim::ThreadContext &tc = w.mach.thread(0);
    check::Ledger led;

    // Leave an undo transaction durably in flight.
    check::runTxn(w, led, tc, 1, {{pm::Oid(1, 0x40), 0x11}});
    ctl.armFault(ctl.boundaryCount() + 6);
    led.inFlight.clear();
    try {
        check::runTxn(w, led, tc, 1, {{pm::Oid(1, 0x40), 0x22},
                                      {pm::Oid(1, 0x80), 0x33}});
        FAIL() << "armed fault never fired";
    } catch (const pm::PowerFailure &) {
    }

    Cycles at = w.mach.maxClock();
    w.rt->crash(at);
    w.rt->crash(at);      // brown-out: again, same instant
    w.rt->crash(at + 64); // and later, still without recovery
    EXPECT_FALSE(w.rt->mapped(1));
    EXPECT_FALSE(w.rt->mapped(2));
    EXPECT_FALSE(w.rt->tx()->anyActive());

    recoverAndCheck(w, led, 0xdc);
}

TEST(RepeatedCycles, BrownOutDuringRecovery)
{
    // Power fails again while recovery is mid-rollback: the partially
    // recovered world crashes and the next recovery attempt must
    // complete the rollback (the undo walk is idempotent).
    check::CrashWorld w = makeWorld("tt", 2, 1);
    pm::PersistController &ctl = w.dom.controller();
    sim::ThreadContext &tc = w.mach.thread(0);
    check::Ledger led;

    check::runTxn(w, led, tc, 1, {{pm::Oid(1, 0x40), 0x51}});

    // Walk the fault point forward until the crash lands with the
    // undo header durably published — i.e. recovery has real
    // rollback work to brown-out in the middle of.
    bool pending = false;
    for (std::uint64_t nth = 1; nth <= 64 && !pending; ++nth) {
        ctl.armFault(ctl.boundaryCount() + nth);
        led.inFlight.clear();
        try {
            check::runTxn(w, led, tc, 1,
                          {{pm::Oid(1, 0x40), 0x5200 + nth},
                           {pm::Oid(1, 0x80), 0x5300 + nth}});
            if (ctl.faultArmed())
                ctl.disarmFault();
        } catch (const pm::PowerFailure &) {
            w.rt->crash(w.mach.maxClock());
            pending = w.dom.findLog(1)->recoveryPending();
            if (!pending)
                recoverAndCheck(w, led, 0xb00 + nth);
        }
        if (HasFatalFailure())
            return;
    }
    ASSERT_TRUE(pending);

    // Fail at the first persist boundary inside the recovery pass.
    ctl.armFault(ctl.boundaryCount() + 1);
    bool interrupted = false;
    try {
        w.rt->recover(tc);
    } catch (const pm::PowerFailure &) {
        interrupted = true;
        w.rt->crash(w.mach.maxClock());
    }
    EXPECT_TRUE(interrupted);

    recoverAndCheck(w, led, 0xb0);
}

TEST(RepeatedCycles, RecoverMorePendingLogsThanCbEntries)
{
    // A power failure can strand more in-flight transactions than
    // the 32-entry circular buffer holds (one undo log per PMO).
    // Recovery replays them in one burst with no sweep ticks in
    // between, so every replayed PMO is still delayed-resident when
    // the next one attaches; the replay that found the buffer full
    // used to panic ("circular buffer full"). Recovery must instead
    // resolve a delayed-detach victim, exactly as the sweep would.
    const unsigned kPmos = arch::CircularBuffer::capacity + 8;
    check::CrashWorld w = makeWorld("tt", kPmos, 1);
    pm::PersistController &ctl = w.dom.controller();
    sim::ThreadContext &tc = w.mach.thread(0);

    for (pm::PmoId p = 1; p <= kPmos; ++p) {
        pm::UndoLog *log = w.dom.findLog(p);
        ASSERT_NE(log, nullptr);
        log->begin(tc);
        log->write(tc, pm::Oid(p, 0x40), 0x7000 + p);
    }
    w.rt->crash(w.mach.maxClock());
    for (pm::PmoId p = 1; p <= kPmos; ++p)
        ASSERT_TRUE(w.dom.findLog(p)->recoveryPending()) << p;

    unsigned recovered = 0;
    EXPECT_NO_THROW(recovered = w.rt->recover(tc));
    EXPECT_EQ(recovered, kPmos);

    std::vector<std::string> v;
    check::checkLogsRetired(w, v);
    check::drainIdleWindows(w, "mass recovery", v);
    for (const std::string &m : v)
        ADD_FAILURE() << m;
    // Every stranded transaction rolled back: the writes never
    // became durable.
    for (pm::PmoId p = 1; p <= kPmos; ++p)
        EXPECT_EQ(ctl.persistedLoad(pm::Oid(p, 0x40)), 0u) << p;
}

TEST(RepeatedCycles, UndoAndRedoPendingOnSamePmo)
{
    // Independent undo and redo transactions against one PMO can
    // both be durably in flight at the same power failure. Recovery
    // walks undo logs first, then redo logs; the undo replay leaves
    // the PMO mapped (its recovery window closes through the normal
    // delayed-detach path), and the redo replay used to re-attach it
    // unconditionally — a double process-open of the same exposure
    // window. The second replay must reuse the already-open window.
    for (const char *scheme : {"tt", "tm"}) {
        SCOPED_TRACE(scheme);
        check::CrashWorld w = makeWorld(scheme, 1, 1);
        pm::PersistController &ctl = w.dom.controller();
        sim::ThreadContext &tc = w.mach.thread(0);
        pm::RedoLog &redo = w.dom.openRedoLog(1, 1ULL << 33);
        std::uint64_t expect80 = 0;

        // Walk a fault point across the redo commit until the crash
        // lands past its durable point while the (uncommitted) undo
        // transaction is also pending.
        bool both = false;
        std::uint64_t nth = 0;
        while (!both && ++nth <= 64) {
            pm::UndoLog *undo = w.dom.findLog(1);
            undo->begin(tc);
            undo->write(tc, pm::Oid(1, 0x40), 0x9100 + nth);
            ctl.armFault(ctl.boundaryCount() + nth);
            bool failed = false;
            try {
                redo.begin(tc);
                redo.write(tc, pm::Oid(1, 0x80), 0x9200 + nth);
                redo.commit(tc);
                expect80 = 0x9200 + nth;
                if (ctl.faultArmed())
                    ctl.disarmFault();
            } catch (const pm::PowerFailure &) {
                failed = true;
            }
            w.rt->crash(w.mach.maxClock());
            bool undoPending = w.dom.findLog(1)->recoveryPending();
            bool redoPending = redo.recoveryPending();
            EXPECT_EQ(undoPending, failed) << "nth=" << nth;
            if (redoPending)
                expect80 = 0x9200 + nth;
            both = undoPending && redoPending;
            if (!both) {
                w.rt->recover(tc);
                std::vector<std::string> v;
                check::checkLogsRetired(w, v);
                check::drainIdleWindows(w, "the scan cycle", v);
                for (const std::string &m : v)
                    ADD_FAILURE() << m << " (nth=" << nth << ")";
            }
        }
        ASSERT_TRUE(both) << "no boundary left both logs pending";

        EXPECT_NO_THROW(w.rt->recover(tc));
        // Undo rolled back, redo rolled forward — on one window.
        EXPECT_EQ(ctl.persistedLoad(pm::Oid(1, 0x40)), 0u);
        EXPECT_EQ(ctl.persistedLoad(pm::Oid(1, 0x80)), expect80);
        std::vector<std::string> v;
        check::checkLogsRetired(w, v);
        check::drainIdleWindows(w, "dual-log recovery", v);
        for (const std::string &m : v)
            ADD_FAILURE() << m;
    }
}

TEST(DomainCycles, ShardDomainPowerCyclesRealignSweepCursor)
{
    // Power cycling through the shard-domain layer: crash() drops
    // the volatile stack, recover(resumeAt) replays pending logs and
    // skips the sweep cursor over the outage — the sweep timer is
    // hardware and the hardware was off, so dark-period boundaries
    // must not fire as a catch-up burst at power-on.
    const Cycles ewTarget = usToCycles(5);
    core::DomainConfig dc;
    dc.runtime = core::RuntimeConfig::tt(ewTarget);
    dc.machine.cores = 1;
    dc.persistence = true;
    core::ShardDomain dom(dc);
    pm::Pmo &p = dom.pmos().create("cycled", 64 * KiB);
    dom.machine().spawnThread();
    sim::ThreadContext &tc = dom.machine().thread(0);
    pm::UndoLog &log = dom.persistence()->openLog(p.id(), kLogOff);
    const pm::PersistController &ctl =
        dom.persistence()->controller();
    const Cycles period = dc.machine.hookPeriod;
    const Cycles dark = 400 * period;
    const pm::Oid key(p.id(), 0x40);
    std::uint64_t committed = 0;

    for (std::uint64_t cycle = 1; cycle <= 200; ++cycle) {
        ASSERT_EQ(dom.runtime().regionBegin(tc, p.id(),
                                            pm::Mode::ReadWrite),
                  core::GuardResult::Ok);
        log.begin(tc);
        log.write(tc, key, cycle);
        if (cycle % 2 == 0) {
            log.commit(tc);
            committed = cycle;
            dom.runtime().regionEnd(tc, p.id());
        }
        dom.sweepTo(tc.now());

        // Power fails — mid-transaction on odd cycles.
        const Cycles at = dom.machine().maxClock();
        dom.crash(at);
        EXPECT_FALSE(dom.runtime().mapped(p.id()));

        const Cycles resume = at + dark;
        const unsigned n = dom.recover(tc, resume);
        EXPECT_EQ(n, cycle % 2 == 0 ? 0u : 1u) << cycle;
        // In-flight rolled back, committed kept.
        EXPECT_EQ(ctl.persistedLoad(key), committed) << cycle;
        // The cursor realigned to the first boundary after the
        // outage, not to a dark-period catch-up backlog.
        EXPECT_EQ(dom.nextSweepTick(), (resume / period + 1) * period)
            << cycle;

        // The scheme's normal idle path closes the recovery window.
        dom.sweepTo(resume + ewTarget + 16 * period);
        EXPECT_FALSE(dom.runtime().mapped(p.id())) << cycle;
    }
    dom.finalize();
}

TEST(RepeatedCycles, CrashWakesBlockedWaiter)
{
    // Basic semantics: thread 1 blocks on thread 0's exclusive
    // attach; the power failure dissolves the process the waiter was
    // waiting on, so the waiter must be woken and its retry must
    // succeed against the post-recovery world.
    check::CrashWorld w = makeWorld("basic", 1, 2);
    sim::ThreadContext &t0 = w.mach.thread(0);
    sim::ThreadContext &t1 = w.mach.thread(1);

    ASSERT_EQ(w.rt->regionBegin(t0, 1, pm::Mode::ReadWrite),
              core::GuardResult::Ok);
    ASSERT_EQ(w.rt->regionBegin(t1, 1, pm::Mode::ReadWrite),
              core::GuardResult::Blocked);
    ASSERT_TRUE(t1.blocked());

    w.rt->crash(w.mach.maxClock());
    EXPECT_FALSE(t1.blocked());
    EXPECT_FALSE(w.rt->mapped(1));
    w.rt->recover(t0);

    // Both threads can enter again post-recovery.
    ASSERT_EQ(w.rt->regionBegin(t1, 1, pm::Mode::ReadWrite),
              core::GuardResult::Ok);
    w.rt->regionEnd(t1, 1);
    std::vector<std::string> v;
    check::drainIdleWindows(w, "the retried region", v);
    for (const std::string &m : v)
        ADD_FAILURE() << m;
}

TEST(Harvest, DarkPeriodsBlameEnergyNotTheSweeper)
{
    energy::HarvestOptions opt;
    opt.scheme = "tt";
    opt.workload = "bank";
    opt.powerCycles = 12;
    opt.cap.capacityUnits = 600; // tight: gates sweeper ticks
    energy::HarvestResult res = energy::runHarvest(opt);
    ASSERT_TRUE(res.ok()) << res.violations.front();
    ASSERT_GT(res.sweepsSkipped, 0u);

    // Spans the gated-off sweeper could not close are EnergyDark;
    // recovery-reopened windows carry their own cause. Both must
    // show up across 12 power cycles with a starved capacitor.
    using semantics::BlameCause;
    auto total = [&](BlameCause c) {
        return res.blame[static_cast<unsigned>(c)];
    };
    EXPECT_GT(total(BlameCause::EnergyDark), 0u);
    EXPECT_GT(total(BlameCause::RecoveryReopen), 0u);

    // And the tiling invariant holds end-to-end: all causes sum to
    // the tracker's total EW cycles (count * avg, exactly —
    // metricsAll averages per PMO, so recompute from the summaries
    // is not available here; compare against ER * time instead is
    // lossy. The per-window assert already enforces exactness; here
    // just sanity-check blame is the dominant share of exposure).
    Cycles sum = 0;
    for (unsigned c = 0; c < semantics::numBlameCauses; ++c)
        sum += res.blame[c];
    EXPECT_GT(sum, 0u);
}
