/**
 * @file
 * Integration tests for the workload surrogates: WHISPER, SPEC and
 * the allocation-lifetime study, across protection schemes.
 */

#include <gtest/gtest.h>

#include "compiler/verifier.hh"
#include "workloads/alloc.hh"
#include "workloads/spec.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;

namespace {

core::RuntimeConfig
cfgByName(const std::string &s)
{
    if (s == "unprotected")
        return core::RuntimeConfig::unprotected();
    if (s == "mm")
        return core::RuntimeConfig::mm();
    if (s == "tm")
        return core::RuntimeConfig::tm();
    return core::RuntimeConfig::tt();
}

} // namespace

// ------------------------------------------------------------ whisper

TEST(Whisper, SixWorkloadsRegistered)
{
    EXPECT_EQ(whisperNames().size(), 6u);
}

using WhisperCase = std::tuple<std::string, std::string>;

class WhisperSchemeTest
    : public ::testing::TestWithParam<WhisperCase>
{
};

TEST_P(WhisperSchemeTest, RunsCleanlyWithSaneMetrics)
{
    auto [name, scheme] = GetParam();
    WhisperParams p;
    p.sections = 60;
    RunResult r = runWhisper(name, cfgByName(scheme), p);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_EQ(r.report.total, r.totalCycles);
    if (scheme == "mm") {
        EXPECT_GT(r.report.attachSyscalls, 0u);
        EXPECT_EQ(r.report.attachSyscalls, r.report.detachSyscalls);
        // Manual windows respect (roughly) the 40 us EW target.
        EXPECT_LT(r.exposure.ewMaxUs, 45.0);
        EXPECT_GT(r.exposure.er, 0.02);
        EXPECT_LT(r.exposure.er, 0.9);
    }
    if (scheme == "tt") {
        EXPECT_GT(r.report.silentFraction, 0.7);
        EXPECT_NEAR(r.exposure.ewAvgUs, 40.0, 4.0);
        EXPECT_LT(r.exposure.tewAvgUs, 2.0); // TEW target met
        EXPECT_LT(r.exposure.ter, r.exposure.er);
    }
    if (scheme == "unprotected") {
        EXPECT_EQ(r.report.attachSyscalls, 0u);
        EXPECT_EQ(r.report.condOps, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WhisperSchemeTest,
    ::testing::Combine(
        ::testing::Values("echo", "ycsb", "tpcc", "ctree", "hashmap",
                          "redis"),
        ::testing::Values("unprotected", "mm", "tm", "tt")),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::get<1>(info.param);
    });

TEST(Whisper, DeterministicForFixedSeed)
{
    WhisperParams p;
    p.sections = 40;
    RunResult a = runWhisper("ycsb", core::RuntimeConfig::tt(), p);
    RunResult b = runWhisper("ycsb", core::RuntimeConfig::tt(), p);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.report.attachSyscalls, b.report.attachSyscalls);
}

TEST(Whisper, ProtectionCostsTime)
{
    WhisperParams p;
    p.sections = 60;
    RunResult base =
        runWhisper("hashmap", core::RuntimeConfig::unprotected(), p);
    RunResult tm = runWhisper("hashmap", core::RuntimeConfig::tm(), p);
    RunResult tt = runWhisper("hashmap", core::RuntimeConfig::tt(), p);
    EXPECT_GT(overheadVsBase(tm, base), overheadVsBase(tt, base));
    EXPECT_GT(overheadVsBase(tt, base), 0.0);
    EXPECT_LT(overheadVsBase(tt, base), 0.4);
}

TEST(Whisper, LargerEwTargetLowersOverhead)
{
    WhisperParams p;
    p.sections = 80;
    RunResult base =
        runWhisper("ycsb", core::RuntimeConfig::unprotected(), p);
    RunResult tt40 = runWhisper(
        "ycsb", core::RuntimeConfig::tt(usToCycles(40)), p);
    RunResult tt160 = runWhisper(
        "ycsb", core::RuntimeConfig::tt(usToCycles(160)), p);
    EXPECT_LT(overheadVsBase(tt160, base),
              overheadVsBase(tt40, base));
}

TEST(Whisper, UnknownNamePanics)
{
    EXPECT_THROW(runWhisper("nosuch", core::RuntimeConfig::tt()),
                 std::logic_error);
}

// --------------------------------------------------------------- spec

TEST(Spec, PmoCountsMatchTableFour)
{
    EXPECT_EQ(specPmoCount("mcf"), 4u);
    EXPECT_EQ(specPmoCount("lbm"), 2u);
    EXPECT_EQ(specPmoCount("imagick"), 3u);
    EXPECT_EQ(specPmoCount("nab"), 3u);
    EXPECT_EQ(specPmoCount("xz"), 6u);
}

class SpecBuildTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecBuildTest, InstrumentedKernelVerifiesStrictly)
{
    pm::PmoManager pmos(7);
    SpecParams sp;
    sp.scale = 0.25;
    SpecProgram prog =
        buildSpec(GetParam(), pmos, compiler::PassConfig{}, sp);
    EXPECT_EQ(prog.pmos.size(), specPmoCount(GetParam()));
    EXPECT_GT(prog.passResult.condAttach, 0u);
    auto facts = compiler::PmoFacts::analyze(prog.module);
    auto v = compiler::verifyModule(prog.module, facts, true);
    EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors[0]);
    // Every PMO is a real heap object > 128 KB (the paper's rule).
    for (pm::PmoId id : prog.pmos)
        EXPECT_GT(pmos.pmo(id).size(), 128 * KiB);
}

INSTANTIATE_TEST_SUITE_P(Kernels, SpecBuildTest,
                         ::testing::Values("mcf", "lbm", "imagick",
                                           "nab", "xz"));

using SpecCase = std::tuple<std::string, std::string>;

class SpecSchemeTest : public ::testing::TestWithParam<SpecCase>
{
};

TEST_P(SpecSchemeTest, RunsCleanlyUnderScheme)
{
    auto [name, scheme] = GetParam();
    SpecParams p;
    p.scale = 0.12;
    RunResult r = runSpec(name, cfgByName(scheme), p);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_EQ(r.pmoCount, specPmoCount(name));
    if (scheme == "tt") {
        EXPECT_GT(r.report.silentFraction, 0.8);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpecSchemeTest,
    ::testing::Combine(
        ::testing::Values("mcf", "lbm", "imagick", "nab", "xz"),
        ::testing::Values("unprotected", "mm", "tm", "tt")),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::get<1>(info.param);
    });

class SpecThreadsTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SpecThreadsTest, MultiThreadedTtScalesAndStaysSafe)
{
    SpecParams p;
    p.scale = 0.12;
    p.threads = GetParam();
    RunResult r = runSpec("lbm", core::RuntimeConfig::tt(), p);
    EXPECT_GT(r.totalCycles, 0u);
    // More threads never increase total runtime for a fixed job.
    if (GetParam() > 1) {
        SpecParams p1 = p;
        p1.threads = 1;
        RunResult r1 = runSpec("lbm", core::RuntimeConfig::tt(), p1);
        EXPECT_LT(r.totalCycles, r1.totalCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, SpecThreadsTest,
                         ::testing::Values(1u, 2u, 4u));

TEST(Spec, BasicSemanticsSerializesThreads)
{
    SpecParams p;
    p.scale = 0.12;
    p.threads = 4;
    RunResult base = runSpec("lbm", core::RuntimeConfig::unprotected(),
                             p);
    RunResult basic =
        runSpec("lbm", core::RuntimeConfig::basicSemantics(), p);
    RunResult tt = runSpec("lbm", core::RuntimeConfig::tt(), p);
    double basic_ovh = overheadVsBase(basic, base);
    double tt_ovh = overheadVsBase(tt, base);
    EXPECT_GT(basic_ovh, 5 * tt_ovh); // the Fig 11 blowup
}

TEST(Spec, DeterministicForFixedSeed)
{
    SpecParams p;
    p.scale = 0.12;
    RunResult a = runSpec("xz", core::RuntimeConfig::tt(), p);
    RunResult b = runSpec("xz", core::RuntimeConfig::tt(), p);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
}

TEST(Spec, UnknownNamePanics)
{
    EXPECT_THROW(specPmoCount("nosuch"), std::logic_error);
}

// -------------------------------------------------------------- alloc

TEST(Alloc, ThirteenProfiles)
{
    EXPECT_EQ(allocProfiles().size(), 13u);
}

TEST(Alloc, DeadTimesArePositiveAndRecorded)
{
    auto samples = runAllocWorkload(allocProfiles()[0], 200, 1);
    EXPECT_EQ(samples.size(), 200u);
    for (double d : samples)
        EXPECT_GT(d, 0.0);
}

TEST(Alloc, PooledDistributionMatchesFig8Shape)
{
    auto pooled = runAllAllocWorkloads(150, 3);
    ASSERT_GT(pooled.size(), 1000u);
    std::uint64_t below2 = 0;
    for (double d : pooled)
        if (d < 2.0)
            ++below2;
    double frac = below2 / double(pooled.size());
    // Fig 8: ~95% of dead times are >= 2 us.
    EXPECT_LT(frac, 0.12);
    EXPECT_GT(frac, 0.005); // but a short tail exists
}

class AllocProfileTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AllocProfileTest, EachProfileProducesSamples)
{
    const AllocProfile &p = allocProfiles()[GetParam()];
    auto samples = runAllocWorkload(p, 100, 7);
    EXPECT_EQ(samples.size(), 100u);
    double sum = 0;
    for (double d : samples)
        sum += d;
    EXPECT_GT(sum / 100.0, 0.5); // mean dead time at least 0.5 us
}

INSTANTIATE_TEST_SUITE_P(Profiles, AllocProfileTest,
                         ::testing::Range(0, 13));
