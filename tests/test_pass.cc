/**
 * @file
 * Tests for the Algorithm-1 insertion pass, the protection verifier
 * and the IR interpreter — including a property test that runs the
 * pass over randomly generated structured programs and requires the
 * strict verifier to accept every result.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "compiler/interp.hh"
#include "compiler/pass.hh"
#include "compiler/verifier.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

using namespace terp;
using namespace terp::compiler;

namespace {

/** Count instructions of one opcode across a module. */
std::uint64_t
countOps(const Module &m, Op op)
{
    std::uint64_t n = 0;
    for (const Function &f : m.functions)
        for (const BasicBlock &bb : f.blocks)
            for (const Instr &in : bb.instrs)
                if (in.op == op)
                    ++n;
    return n;
}

bool
verifiesStrict(const Module &m)
{
    PmoFacts facts = PmoFacts::analyze(m);
    return verifyModule(m, facts, true).ok;
}

} // namespace

// ------------------------------------------------------------ verifier

TEST(Verifier, AcceptsWellFormedPairs)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.condAttach(1);
    b.store(b.pmoBase(1, 0), b.constant(5));
    b.condDetach(1);
    b.ret();
    b.finish();
    EXPECT_TRUE(verifiesStrict(m));
}

TEST(Verifier, RejectsUnprotectedAccess)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.store(b.pmoBase(1, 0), b.constant(5));
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    VerifyResult r = verifyModule(m, facts, true);
    EXPECT_FALSE(r.ok);
    ASSERT_FALSE(r.errors.empty());
    EXPECT_NE(r.errors[0].find("unprotected access"),
              std::string::npos);
}

TEST(Verifier, RejectsDetachWithoutAttach)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.condDetach(1);
    b.ret();
    b.finish();
    EXPECT_FALSE(verifiesStrict(m));
}

TEST(Verifier, RejectsOpenPairAtReturn)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.condAttach(1);
    b.ret();
    b.finish();
    EXPECT_FALSE(verifiesStrict(m));
}

TEST(Verifier, RejectsSameThreadOverlapInStrictMode)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.condAttach(1);
    b.condAttach(1);
    b.condDetach(1);
    b.condDetach(1);
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    EXPECT_FALSE(verifyModule(m, facts, true).ok);
    // Tolerant mode (function composability) accepts nesting.
    EXPECT_TRUE(verifyModule(m, facts, false).ok);
}

TEST(Verifier, RejectsInconsistentJoinStates)
{
    // Attach on one branch only: the join sees conflicting states.
    Module m;
    FunctionBuilder b(m, "f", 1);
    b.ifThenElse(
        b.param(0), [&]() { b.condAttach(1); }, [&]() {});
    b.condDetach(1);
    b.ret();
    b.finish();
    EXPECT_FALSE(verifiesStrict(m));
}

TEST(Verifier, PmoFilterScopesTheCheck)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.store(b.pmoBase(2, 0), b.constant(1)); // unprotected pmo2
    b.ret();
    b.finish();
    PmoFacts facts = PmoFacts::analyze(m);
    // Checking only pmo 1 ignores the pmo-2 violation.
    EXPECT_TRUE(
        verifyProtection(m.function(0), 0, facts, true, pmoBit(1)).ok);
    EXPECT_FALSE(
        verifyProtection(m.function(0), 0, facts, true, pmoBit(2)).ok);
}

// ---------------------------------------------------------------- pass

TEST(Pass, StraightLineGetsOnePair)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.compute(10);
    Reg p = b.pmoBase(1, 0);
    b.store(p, b.constant(1));
    b.store(b.add(p, b.constant(64)), b.constant(2));
    b.compute(10);
    b.ret();
    b.finish();

    PassResult r = runInsertionPass(m, PassConfig{});
    EXPECT_EQ(r.condAttach, 1u);
    EXPECT_EQ(r.condDetach, 1u);
    EXPECT_TRUE(verifiesStrict(m));
}

TEST(Pass, LoopBodyGetsPerIterationPair)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    // Unknown trip count -> LET assumes 1000 iterations, far beyond
    // the TEW threshold, so pairs live inside the body.
    b.forLoop(
        50,
        [&](Reg i) {
            Reg addr =
                b.add(b.pmoBase(1, 0), b.mul(i, b.constant(64)));
            b.store(addr, i);
        },
        false);
    b.ret();
    b.finish();

    runInsertionPass(m, PassConfig{});
    EXPECT_TRUE(verifiesStrict(m));
    // The pair must be in the loop body (executed per iteration),
    // not hoisted above the header.
    const Function &f = m.function(0);
    bool attach_in_body = false;
    PmoFacts facts = PmoFacts::analyze(m);
    Analysis an(f, facts.blockMasks(0));
    for (BlockId bb = 0; bb < f.blockCount(); ++bb) {
        for (const Instr &in : f.block(bb).instrs) {
            if (in.op == Op::CondAttach) {
                // Some loop header must dominate the attach block.
                for (BlockId h = 0; h < f.blockCount(); ++h) {
                    if (an.isLoopHeader(h) && an.dominates(h, bb))
                        attach_in_body = true;
                }
            }
        }
    }
    EXPECT_TRUE(attach_in_body);
}

TEST(Pass, MultiplePmosGetIndependentPairs)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.store(b.pmoBase(1, 0), b.constant(1));
    b.compute(5);
    b.store(b.pmoBase(2, 0), b.constant(2));
    b.ret();
    b.finish();

    PassResult r = runInsertionPass(m, PassConfig{});
    EXPECT_EQ(r.condAttach, 2u);
    EXPECT_EQ(r.condDetach, 2u);
    EXPECT_TRUE(verifiesStrict(m));
}

TEST(Pass, CallsActAsPairBarriers)
{
    Module m;
    std::uint32_t leaf;
    {
        FunctionBuilder lb(m, "leaf", 0);
        lb.store(lb.pmoBase(1, 128), lb.constant(9));
        lb.ret();
        leaf = lb.finish();
    }
    FunctionBuilder b(m, "f", 0);
    b.store(b.pmoBase(1, 0), b.constant(1));
    b.call(leaf);
    b.store(b.pmoBase(1, 64), b.constant(2));
    b.ret();
    b.finish();

    PassResult r = runInsertionPass(m, PassConfig{});
    // Both caller segments and the callee get their own pairs, so
    // pairs never dynamically nest across the call.
    EXPECT_GE(r.condAttach, 3u);
    EXPECT_TRUE(verifiesStrict(m));
}

TEST(Pass, BranchyAccessesVerify)
{
    Module m;
    FunctionBuilder b(m, "f", 1);
    b.ifThenElse(
        b.param(0),
        [&]() { b.store(b.pmoBase(1, 0), b.constant(1)); },
        [&]() { b.store(b.pmoBase(1, 64), b.constant(2)); });
    b.ret();
    b.finish();

    runInsertionPass(m, PassConfig{});
    EXPECT_TRUE(verifiesStrict(m));
}

TEST(Pass, EntranceExitModeWithZeroTew)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.compute(4);
    b.store(b.pmoBase(1, 0), b.constant(1));
    b.compute(4);
    b.ret();
    b.finish();

    PassConfig cfg;
    cfg.tewLetThreshold = 0; // Algorithm 1 line 15
    PassResult r = runInsertionPass(m, cfg);
    EXPECT_GE(r.condAttach, 1u);
    EXPECT_TRUE(verifiesStrict(m));
}

TEST(Pass, ReportsWfgRegions)
{
    Module m;
    FunctionBuilder b(m, "f", 0);
    b.store(b.pmoBase(1, 0), b.constant(1));
    b.ret();
    b.finish();
    PassResult r = runInsertionPass(m, PassConfig{});
    ASSERT_EQ(r.regions.size(), 1u);
    EXPECT_EQ(r.regions[0].pmoMask, pmoBit(1));
    EXPECT_GT(r.regions[0].let, 0u);
}

// ------------------------------------------ property: random programs

namespace {

/** Generate a random structured program with PMO accesses. */
void
genBody(FunctionBuilder &b, Rng &rng, int depth)
{
    int stmts = 1 + static_cast<int>(rng.nextBelow(4));
    for (int i = 0; i < stmts; ++i) {
        switch (rng.nextBelow(depth > 2 ? 3 : 5)) {
          case 0:
            b.compute(1 + rng.nextBelow(20));
            break;
          case 1: { // PMO access burst
            pm::PmoId p = 1 + static_cast<pm::PmoId>(rng.nextBelow(3));
            Reg base = b.pmoBase(p, 0);
            unsigned n = 1 + static_cast<unsigned>(rng.nextBelow(3));
            for (unsigned k = 0; k < n; ++k) {
                Reg addr = b.add(
                    base, b.constant(static_cast<std::int64_t>(
                              64 * rng.nextBelow(64))));
                if (rng.nextBool(0.5))
                    b.load(addr);
                else
                    b.store(addr, b.constant(1));
            }
            break;
          }
          case 2: { // DRAM access
            b.load(b.dramBase(
                static_cast<std::int64_t>(8 * rng.nextBelow(100))));
            break;
          }
          case 3: { // if/else
            Reg c = b.cmpLt(b.constant(0),
                            b.constant(static_cast<std::int64_t>(
                                rng.nextBelow(2))));
            if (rng.nextBool(0.5)) {
                b.ifThenElse(
                    c, [&]() { genBody(b, rng, depth + 1); },
                    [&]() { genBody(b, rng, depth + 1); });
            } else {
                b.ifThenElse(c,
                             [&]() { genBody(b, rng, depth + 1); });
            }
            break;
          }
          default: { // loop (sometimes unknown-bound)
            bool known = rng.nextBool(0.7);
            b.forLoop(
                1 + rng.nextBelow(8),
                [&](Reg) { genBody(b, rng, depth + 1); }, known);
            break;
          }
        }
    }
}

Module
genProgram(std::uint64_t seed)
{
    Rng rng(seed);
    Module m;
    FunctionBuilder b(m, "random", 0);
    genBody(b, rng, 0);
    b.ret();
    b.finish();
    return m;
}

} // namespace

class PassPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PassPropertyTest, RandomProgramsVerifyAfterInsertion)
{
    Module m = genProgram(GetParam());
    PassResult r = runInsertionPass(m, PassConfig{});
    PmoFacts facts = PmoFacts::analyze(m);
    VerifyResult v = verifyModule(m, facts, true);
    EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors[0]);
    EXPECT_EQ(r.condAttach, countOps(m, Op::CondAttach));
    EXPECT_EQ(r.condDetach, countOps(m, Op::CondDetach));
    EXPECT_EQ(r.condAttach, r.condDetach);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

// --------------------------------------------------------- interpreter

namespace {

struct InterpRig
{
    sim::Machine mach;
    pm::PmoManager pmos;
    pm::PmoId pmo;
    std::unique_ptr<core::Runtime> rt;
    MemoryImage img;

    explicit InterpRig(
        const core::RuntimeConfig &cfg =
            core::RuntimeConfig::unprotected())
        : pmos(3)
    {
        pmo = pmos.create("interp", 4 * MiB).id();
        rt = std::make_unique<core::Runtime>(mach, pmos, cfg);
    }

    std::uint64_t
    run(const Module &m, std::uint32_t entry,
        std::vector<std::uint64_t> args = {})
    {
        Interpreter in(m, *rt, mach, img, entry, std::move(args));
        mach.spawnThread();
        std::vector<sim::Job *> jobs{&in};
        mach.run(jobs, [&](Cycles now) { rt->onSweep(now); });
        rt->finalize();
        return in.result();
    }
};

} // namespace

TEST(Interp, ArithmeticAndControlFlow)
{
    Module m;
    FunctionBuilder b(m, "sum", 1);
    // sum 0..n-1 via a loop with a memory accumulator.
    Reg acc = b.dramBase(0x40);
    b.store(acc, b.constant(0));
    b.forLoop(10, [&](Reg i) {
        Reg cur = b.load(acc);
        b.store(acc, b.add(cur, i));
    });
    b.ret(b.load(acc));
    b.finish();

    InterpRig rig;
    EXPECT_EQ(rig.run(m, 0), 45u);
}

TEST(Interp, BranchesPickCorrectArm)
{
    Module m;
    FunctionBuilder b(m, "max", 2);
    Reg out = b.dramBase(0x80);
    Reg c = b.cmpLt(b.param(0), b.param(1));
    b.ifThenElse(
        c, [&]() { b.store(out, b.param(1)); },
        [&]() { b.store(out, b.param(0)); });
    b.ret(b.load(out));
    b.finish();

    InterpRig rig;
    EXPECT_EQ(rig.run(m, 0, {3, 9}), 9u);
    InterpRig rig2;
    EXPECT_EQ(rig2.run(m, 0, {12, 9}), 12u);
}

TEST(Interp, CallsPassArgsAndReturnValues)
{
    Module m;
    std::uint32_t sq;
    {
        FunctionBuilder f(m, "sq", 1);
        f.ret(f.mul(f.param(0), f.param(0)));
        sq = f.finish();
    }
    FunctionBuilder b(m, "main", 0);
    Reg r = b.call(sq, {b.constant(7)});
    b.ret(r);
    b.finish();

    InterpRig rig;
    EXPECT_EQ(rig.run(m, 1), 49u);
}

TEST(Interp, PmoMemoryIsPersistentAcrossRuns)
{
    Module writer;
    {
        FunctionBuilder b(writer, "w", 0);
        b.condAttach(1);
        b.store(b.pmoBase(1, 256), b.constant(1234));
        b.condDetach(1);
        b.ret();
        b.finish();
    }
    Module reader;
    {
        FunctionBuilder b(reader, "r", 0);
        b.condAttach(1);
        Reg v = b.load(b.pmoBase(1, 256));
        b.condDetach(1);
        b.ret(v);
        b.finish();
    }

    InterpRig rig(core::RuntimeConfig::tt());
    rig.run(writer, 0);
    // Second "run" reuses the same image: data survived. Stepped
    // manually on a fresh thread (the first one already finished).
    Interpreter in(reader, *rig.rt, rig.mach, rig.img, 0);
    sim::ThreadContext &tc = rig.mach.spawnThread();
    while (in.step(tc)) {
    }
    EXPECT_EQ(in.result(), 1234u);
}

TEST(Interp, InstrumentedProgramRunsUnderTtWithoutFaults)
{
    Module m;
    FunctionBuilder b(m, "k", 0);
    b.forLoop(100, [&](Reg i) {
        Reg addr = b.add(b.pmoBase(1, 0), b.mul(i, b.constant(64)));
        b.store(addr, i);
        Reg v = b.load(addr);
        b.store(b.dramBase(0x10), v);
    });
    b.ret();
    b.finish();
    runInsertionPass(m, PassConfig{});

    InterpRig rig(core::RuntimeConfig::tt());
    Interpreter in(m, *rig.rt, rig.mach, rig.img, 0);
    rig.mach.spawnThread();
    std::vector<sim::Job *> jobs{&in};
    rig.mach.run(jobs,
                 [&](Cycles now) { rig.rt->onSweep(now); });
    EXPECT_EQ(in.faultCount(), 0u);
    // The stored values really landed in PMO storage.
    EXPECT_EQ(rig.img.peek(pm::Oid(rig.pmo, 99 * 64).raw), 99u);
}

TEST(Interp, UnprotectedAccessToPmoFaultsWhenTrapped)
{
    Module m;
    FunctionBuilder b(m, "bad", 0);
    // No condAttach: under TT this access has no permission.
    b.store(b.pmoBase(1, 0), b.constant(1));
    b.ret();
    b.finish();

    InterpRig rig(core::RuntimeConfig::tt());
    Interpreter in(m, *rig.rt, rig.mach, rig.img, 0);
    in.trapFaults = true;
    rig.mach.spawnThread();
    std::vector<sim::Job *> jobs{&in};
    rig.mach.run(jobs);
    EXPECT_EQ(in.faultCount(), 1u);
    EXPECT_EQ(rig.img.peek(pm::Oid(rig.pmo, 0).raw), 0u); // blocked
}

TEST(Interp, DivisionByZeroYieldsZero)
{
    Module m;
    FunctionBuilder b(m, "d", 2);
    b.ret(b.arith(Op::Div, b.param(0), b.param(1)));
    b.finish();
    InterpRig rig;
    EXPECT_EQ(rig.run(m, 0, {10, 0}), 0u);
}

TEST(Interp, ChargesSimulatedTime)
{
    Module m;
    FunctionBuilder b(m, "t", 0);
    b.compute(1000);
    b.ret();
    b.finish();
    InterpRig rig;
    rig.run(m, 0);
    // ~1001 instructions at CPI 0.5.
    EXPECT_NEAR(
        static_cast<double>(rig.mach.thread(0).now()), 500.0, 30.0);
}
