/**
 * @file
 * Unit tests for src/arch: MPK thread domains, the MERR permission
 * matrix and the TERP circular buffer (CONDAT/CONDDT cases 1-6,
 * sweep behaviour, hardware cost).
 */

#include <gtest/gtest.h>

#include "arch/circular_buffer.hh"
#include "arch/mpk.hh"
#include "arch/perm_matrix.hh"

using namespace terp;
using namespace terp::arch;

// ----------------------------------------------------------------- mpk

TEST(Mpk, GrantRevokeAllows)
{
    ThreadDomains d;
    EXPECT_FALSE(d.allows(0, 1, false));
    d.grant(0, 1, pm::Mode::Read);
    EXPECT_TRUE(d.allows(0, 1, false));
    EXPECT_FALSE(d.allows(0, 1, true)); // read-only
    d.grant(0, 1, pm::Mode::ReadWrite);
    EXPECT_TRUE(d.allows(0, 1, true));
    d.revoke(0, 1);
    EXPECT_FALSE(d.allows(0, 1, false));
}

TEST(Mpk, PermissionsArePerThreadPerPmo)
{
    ThreadDomains d;
    d.grant(0, 1, pm::Mode::ReadWrite);
    EXPECT_FALSE(d.allows(1, 1, false)); // other thread
    EXPECT_FALSE(d.allows(0, 2, false)); // other PMO
    EXPECT_TRUE(d.holds(0, 1));
    EXPECT_FALSE(d.holds(1, 1));
}

TEST(Mpk, HolderCountAndRevokeAll)
{
    ThreadDomains d;
    d.grant(0, 1, pm::Mode::Read);
    d.grant(1, 1, pm::Mode::ReadWrite);
    d.grant(2, 2, pm::Mode::Read);
    EXPECT_EQ(d.holderCount(1), 2u);
    EXPECT_EQ(d.holderCount(2), 1u);
    d.revokeAll(1);
    EXPECT_EQ(d.holderCount(1), 0u);
    EXPECT_EQ(d.holderCount(2), 1u);
}

// --------------------------------------------------------- perm matrix

TEST(PermMatrix, CheckCoversRangeAndRights)
{
    PermissionMatrix m;
    m.add(1, 0x10000, 0x1000, pm::Mode::Read);
    MatrixHit h = m.check(0x10800, false);
    EXPECT_TRUE(h.present);
    EXPECT_TRUE(h.permitted);
    EXPECT_EQ(h.pmo, 1u);
    h = m.check(0x10800, true);
    EXPECT_TRUE(h.present);
    EXPECT_FALSE(h.permitted); // write to read-only
    h = m.check(0x20000, false);
    EXPECT_FALSE(h.present); // outside every entry
}

TEST(PermMatrix, RemoveAndRebase)
{
    PermissionMatrix m;
    m.add(1, 0x10000, 0x1000, pm::Mode::ReadWrite);
    m.rebase(1, 0x50000);
    EXPECT_FALSE(m.check(0x10100, false).present);
    EXPECT_TRUE(m.check(0x50100, true).permitted);
    m.remove(1);
    EXPECT_FALSE(m.check(0x50100, false).present);
    EXPECT_EQ(m.entryCount(), 0u);
}

TEST(PermMatrix, GuardsDoubleAddAndMissingRemove)
{
    PermissionMatrix m;
    m.add(1, 0, 64, pm::Mode::Read);
    EXPECT_THROW(m.add(1, 100, 64, pm::Mode::Read),
                 std::logic_error);
    EXPECT_THROW(m.remove(9), std::logic_error);
    EXPECT_THROW(m.rebase(9, 0), std::logic_error);
}

// ------------------------------------------------------ circular buffer

TEST(CircularBuffer, Case1FirstAttachAllocates)
{
    CircularBuffer cb;
    EXPECT_EQ(cb.condAttach(1, 100), CondAttachCase::FirstAttach);
    EXPECT_TRUE(cb.resident(1));
    EXPECT_EQ(cb.counter(1), 1u);
    EXPECT_FALSE(cb.delayed(1));
    EXPECT_EQ(cb.timestamp(1), 100u);
}

TEST(CircularBuffer, Case2SubsequentAttachIncrements)
{
    CircularBuffer cb;
    cb.condAttach(1, 100);
    EXPECT_EQ(cb.condAttach(1, 200),
              CondAttachCase::SubsequentAttach);
    EXPECT_EQ(cb.counter(1), 2u);
    // The window timestamp is NOT refreshed.
    EXPECT_EQ(cb.timestamp(1), 100u);
}

TEST(CircularBuffer, Case4PartialDetach)
{
    CircularBuffer cb;
    cb.condAttach(1, 0);
    cb.condAttach(1, 10);
    EXPECT_EQ(cb.condDetach(1, 20, 1000),
              CondDetachCase::PartialDetach);
    EXPECT_EQ(cb.counter(1), 1u);
    EXPECT_TRUE(cb.resident(1));
}

TEST(CircularBuffer, Case6DelayedDetachThenCase3SilentAttach)
{
    CircularBuffer cb;
    cb.condAttach(1, 0);
    // Last thread leaves before the EW target: delay the detach.
    EXPECT_EQ(cb.condDetach(1, 100, 1000),
              CondDetachCase::DelayedDetach);
    EXPECT_TRUE(cb.resident(1));
    EXPECT_TRUE(cb.delayed(1));
    EXPECT_EQ(cb.counter(1), 0u);
    // Re-attach while delayed: a detach+attach syscall pair elided.
    EXPECT_EQ(cb.condAttach(1, 200), CondAttachCase::SilentAttach);
    EXPECT_FALSE(cb.delayed(1));
    EXPECT_EQ(cb.counter(1), 1u);
}

TEST(CircularBuffer, Case5FullDetachWhenWindowExpired)
{
    CircularBuffer cb;
    cb.condAttach(1, 0);
    EXPECT_EQ(cb.condDetach(1, 2000, 1000),
              CondDetachCase::FullDetach);
    EXPECT_FALSE(cb.resident(1));
}

TEST(CircularBuffer, SweepDetachesIdleExpiredEntries)
{
    CircularBuffer cb;
    cb.condAttach(1, 0);
    cb.condDetach(1, 10, 1000); // delayed (DD=1, Ctr=0)
    auto actions = cb.sweep(500, 1000);
    EXPECT_TRUE(actions.empty()); // window not expired yet
    actions = cb.sweep(1100, 1000);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].pmo, 1u);
    EXPECT_TRUE(actions[0].detach);
    EXPECT_FALSE(cb.resident(1));
}

TEST(CircularBuffer, SweepRandomizesBusyExpiredEntries)
{
    CircularBuffer cb;
    cb.condAttach(1, 0); // thread stays inside the region
    auto actions = cb.sweep(1100, 1000);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_FALSE(actions[0].detach); // randomize, keep attached
    EXPECT_TRUE(cb.resident(1));
    // The window restarted: nothing to do for a while.
    EXPECT_EQ(cb.timestamp(1), 1100u);
    EXPECT_TRUE(cb.sweep(1500, 1000).empty());
}

TEST(CircularBuffer, PaperExampleFigure7)
{
    // Fig 7(a): current time 15, max EW 10. PMO1 (ts=3, Ctr=0, DD=1)
    // is detached; PMO2 (ts=5, Ctr=3) is randomized; PMO3 (ts=12)
    // and PMO4 (ts=15) are left alone.
    CircularBuffer cb;
    cb.condAttach(1, 3);
    cb.condDetach(1, 4, 10); // delayed
    cb.condAttach(2, 5);
    cb.condAttach(2, 5);
    cb.condAttach(2, 5);
    cb.condAttach(3, 12);
    cb.condAttach(4, 15);
    auto actions = cb.sweep(15, 10);
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[0].pmo, 1u);
    EXPECT_TRUE(actions[0].detach);
    EXPECT_EQ(actions[1].pmo, 2u);
    EXPECT_FALSE(actions[1].detach);
    EXPECT_TRUE(cb.resident(3));
    EXPECT_TRUE(cb.resident(4));
}

TEST(CircularBuffer, SilentFractionCountsElisions)
{
    CircularBuffer cb;
    cb.condAttach(1, 0);              // case 1 (real)
    for (int i = 0; i < 9; ++i) {
        cb.condDetach(1, 10, 100000); // case 6 (silent)
        cb.condAttach(1, 20);         // case 3 (silent)
    }
    cb.condDetach(1, 200000, 100000); // case 5 (real)
    const auto &st = cb.stats();
    EXPECT_EQ(st.case1, 1u);
    EXPECT_EQ(st.case3, 9u);
    EXPECT_EQ(st.case6, 9u);
    EXPECT_EQ(st.case5, 1u);
    EXPECT_NEAR(st.silentFraction(), 18.0 / 20.0, 1e-9);
}

TEST(CircularBuffer, HardwareCostMatchesPaper)
{
    EXPECT_EQ(CircularBuffer::capacity, 32u);
    EXPECT_EQ(CircularBuffer::entryBits, 34u);
    // ~140 bytes of on-chip state (paper: 140 bytes, 0.006% of die).
    EXPECT_GE(CircularBuffer::storageBytes, 136u);
    EXPECT_LE(CircularBuffer::storageBytes, 144u);
}

TEST(CircularBuffer, CapacityOverflowPanics)
{
    CircularBuffer cb;
    for (pm::PmoId p = 1; p <= CircularBuffer::capacity; ++p)
        cb.condAttach(p, 0);
    EXPECT_THROW(cb.condAttach(99, 0), std::logic_error);
}

TEST(CircularBuffer, DetachOfUnknownPmoPanics)
{
    CircularBuffer cb;
    EXPECT_THROW(cb.condDetach(7, 0, 10), std::logic_error);
}

TEST(CircularBuffer, EvictRemovesEntry)
{
    CircularBuffer cb;
    cb.condAttach(1, 0);
    cb.evict(1);
    EXPECT_FALSE(cb.resident(1));
    EXPECT_EQ(cb.liveEntries(), 0u);
}

class CbThreadCountTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CbThreadCountTest, CounterTracksConcurrentThreads)
{
    unsigned n = GetParam();
    CircularBuffer cb;
    cb.condAttach(1, 0);
    for (unsigned i = 1; i < n; ++i)
        cb.condAttach(1, i);
    EXPECT_EQ(cb.counter(1), n);
    // All but the last detach are partial.
    for (unsigned i = 0; i + 1 < n; ++i) {
        EXPECT_EQ(cb.condDetach(1, 100 + i, 1000000),
                  CondDetachCase::PartialDetach);
    }
    EXPECT_EQ(cb.condDetach(1, 200, 1000000),
              CondDetachCase::DelayedDetach);
}

INSTANTIATE_TEST_SUITE_P(Threads, CbThreadCountTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));
