/**
 * @file
 * Unit tests for src/sim: cache, TLB, thread contexts and the
 * machine scheduler.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/machine.hh"
#include "sim/thread.hh"
#include "sim/tlb.hh"

using namespace terp;
using namespace terp::sim;

// -------------------------------------------------------------- cache

TEST(Cache, MissThenHit)
{
    Cache c(4 * KiB, 4);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1020)); // same 64B line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictsOldest)
{
    // Direct construct a tiny cache: 2 sets x 2 ways of 64B lines.
    Cache c(256, 2);
    ASSERT_EQ(c.sets(), 2u);
    // Three distinct lines mapping to set 0: line addrs 0, 2, 4.
    EXPECT_FALSE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64));
    EXPECT_FALSE(c.access(4 * 64)); // evicts line 0
    EXPECT_FALSE(c.access(0 * 64)); // line 0 gone
    EXPECT_TRUE(c.access(4 * 64));  // line 4 retained
}

TEST(Cache, LruRefreshOnHit)
{
    Cache c(256, 2);
    c.access(0 * 64);
    c.access(2 * 64);
    c.access(0 * 64);       // refresh line 0
    c.access(4 * 64);       // evicts line 2, not line 0
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64));
}

TEST(Cache, InvalidateAll)
{
    Cache c(4 * KiB, 4);
    c.access(0x0);
    c.access(0x40);
    c.invalidateAll();
    EXPECT_FALSE(c.access(0x0));
    EXPECT_FALSE(c.access(0x40));
}

TEST(Cache, InvalidateRangeIsSelective)
{
    Cache c(64 * KiB, 8);
    c.access(0x1000);
    c.access(0x8000);
    c.invalidateRange(0x0, 0x4000);
    EXPECT_FALSE(c.access(0x1000)); // invalidated
    EXPECT_TRUE(c.access(0x8000));  // untouched
}

TEST(Cache, InvalidationClearsMruHint)
{
    // The SoA fast path caches the last-hit (line, way). Both
    // invalidation entry points must drop that hint (or the hint's
    // isValid re-check must catch it): after invalidating the hinted
    // line, the very next access to it must miss.
    Cache c(64 * KiB, 8);
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x1000)); // hint now points at 0x1000
    c.invalidateRange(0x1000, 0x1040);
    EXPECT_FALSE(c.access(0x1000))
        << "stale MRU hint produced a hit on an invalidated line";

    c.access(0x2000);
    EXPECT_TRUE(c.access(0x2000));
    c.invalidateAll();
    EXPECT_FALSE(c.access(0x2000))
        << "stale MRU hint survived invalidateAll";

    // An empty-range invalidation takes the early return; the hint
    // is still required to be consistent afterwards.
    c.access(0x3000);
    c.invalidateRange(0x5000, 0x5000); // hi <= lo: no-op
    EXPECT_TRUE(c.access(0x3000));
}

TEST(Cache, RejectsBadGeometry)
{
    // 3 sets is not a power of two.
    EXPECT_THROW(Cache(3 * 64 * 2, 2), std::logic_error);
}

struct CacheGeometry
{
    std::uint64_t size;
    unsigned ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<CacheGeometry>
{
};

TEST_P(CacheGeometryTest, FillsToCapacityWithoutConflict)
{
    auto [size, ways] = GetParam();
    Cache c(size, ways);
    const std::uint64_t lines = size / lineSize;
    // Sequential fill touches each line once: all misses.
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_FALSE(c.access(i * lineSize));
    // Re-touch: all hits (LRU never evicted within capacity).
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * lineSize));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(CacheGeometry{4 * KiB, 2},
                      CacheGeometry{32 * KiB, 8},
                      CacheGeometry{1 * MiB, 16},
                      CacheGeometry{64 * KiB, 1}));

// ---------------------------------------------------------------- tlb

TEST(Tlb, MissCostsWalkThenHitsL1)
{
    TlbHierarchy t;
    TlbResult r = t.lookup(0x10000);
    EXPECT_EQ(r.where, TlbResult::Where::Walk);
    EXPECT_EQ(r.cycles, latency::tlbL2 + latency::tlbMiss);
    r = t.lookup(0x10008); // same page
    EXPECT_EQ(r.where, TlbResult::Where::L1);
    EXPECT_EQ(t.walkCount(), 1u);
}

TEST(Tlb, L2CatchesL1Evictions)
{
    TlbHierarchy t;
    // Fill well past the 64-entry L1 but within the 1536-entry L2.
    for (std::uint64_t p = 0; p < 512; ++p)
        t.lookup(p * pageSize);
    // The first page fell out of L1 but should be in L2.
    TlbResult r = t.lookup(0);
    EXPECT_EQ(r.where, TlbResult::Where::L2);
}

TEST(Tlb, ShootdownRangeForcesRewalk)
{
    TlbHierarchy t;
    t.lookup(0x4000);
    t.lookup(0x400000);
    t.shootdownRange(0x0, 0x10000);
    EXPECT_EQ(t.lookup(0x4000).where, TlbResult::Where::Walk);
    EXPECT_EQ(t.lookup(0x400000).where, TlbResult::Where::L1);
}

TEST(Tlb, ShootdownAll)
{
    TlbHierarchy t;
    t.lookup(0x4000);
    t.shootdownAll();
    EXPECT_EQ(t.lookup(0x4000).where, TlbResult::Where::Walk);
}

// ------------------------------------------------------------- thread

TEST(Thread, ChargeAccumulatesPerCategory)
{
    ThreadContext tc(0, 0);
    tc.work(100);
    tc.charge(Charge::Attach, 50);
    tc.charge(Charge::Cond, 7);
    EXPECT_EQ(tc.now(), 157u);
    EXPECT_EQ(tc.charged(Charge::Work), 100u);
    EXPECT_EQ(tc.charged(Charge::Attach), 50u);
    EXPECT_EQ(tc.overheadTotal(), 57u);
}

TEST(Thread, SyncToOnlyMovesForward)
{
    ThreadContext tc(0, 0);
    tc.work(100);
    tc.syncTo(150, Charge::Rand);
    EXPECT_EQ(tc.now(), 150u);
    EXPECT_EQ(tc.charged(Charge::Rand), 50u);
    tc.syncTo(120, Charge::Rand); // no-op: in the past
    EXPECT_EQ(tc.now(), 150u);
}

TEST(Thread, BlockUnblock)
{
    ThreadContext tc(3, 1);
    EXPECT_FALSE(tc.blocked());
    tc.blockOn(77);
    EXPECT_TRUE(tc.blocked());
    EXPECT_EQ(tc.blockToken(), 77u);
    EXPECT_THROW(tc.blockOn(78), std::logic_error); // double block
    tc.unblock();
    EXPECT_FALSE(tc.blocked());
}

// ------------------------------------------------------------ machine

namespace {

/** Job performing fixed work per step for a given number of steps. */
class WorkJob : public Job
{
  public:
    WorkJob(Cycles per_step, int steps) : per(per_step), left(steps) {}

    bool
    step(ThreadContext &tc) override
    {
        tc.work(per);
        return --left > 0;
    }

    Cycles per;
    int left;
};

} // namespace

TEST(Machine, ExecuteHonoursCpiWithCarry)
{
    Machine m;
    ThreadContext &tc = m.spawnThread();
    m.execute(tc, 1); // 0.5 cycles: carried, not lost
    m.execute(tc, 1);
    EXPECT_EQ(tc.now(), 1u);
    m.execute(tc, 100);
    EXPECT_EQ(tc.now(), 51u);
}

TEST(Machine, ColdNvmAccessCostsFullLatency)
{
    Machine m;
    ThreadContext &tc = m.spawnThread();
    MemAccess a{0x100000, 0x200000, false, MemKind::Nvm};
    Cycles c = m.access(tc, a);
    // walk (4+30) + L1 miss (1) + L2 miss (8) + NVM (360)
    EXPECT_EQ(c, latency::tlbL2 + latency::tlbMiss + latency::l1Hit +
                     latency::l2Hit + latency::nvm);
    // Hot access: L1 TLB + L1 hit = 1 cycle.
    c = m.access(tc, a);
    EXPECT_EQ(c, latency::l1Hit);
}

TEST(Machine, DramCheaperThanNvm)
{
    Machine m;
    ThreadContext &tc = m.spawnThread();
    Cycles dram = m.access(
        tc, MemAccess{0x1000, 0x1000, false, MemKind::Dram});
    Cycles nvm = m.access(
        tc, MemAccess{0x900000, 0x900000, false, MemKind::Nvm});
    EXPECT_EQ(nvm - dram, latency::nvm - latency::dram);
}

TEST(Machine, SchedulerPicksMinClockThread)
{
    Machine m;
    m.spawnThread();
    m.spawnThread();
    WorkJob fast(10, 100);
    WorkJob slow(1000, 100);
    std::vector<Job *> jobs{&slow, &fast};
    m.run(jobs);
    // Both ran to completion; total times reflect their work.
    EXPECT_EQ(m.thread(0).now(), 100u * 1000u);
    EXPECT_EQ(m.thread(1).now(), 100u * 10u);
    EXPECT_EQ(m.maxClock(), 100u * 1000u);
}

TEST(Machine, HookFiresAtPeriodBoundaries)
{
    MachineConfig cfg;
    cfg.hookPeriod = 100;
    Machine m(cfg);
    m.spawnThread();
    WorkJob job(250, 4); // 1000 cycles of work
    std::vector<Cycles> fired;
    std::vector<Job *> jobs{&job};
    m.run(jobs, [&](Cycles t) { fired.push_back(t); });
    ASSERT_GE(fired.size(), 7u);
    EXPECT_EQ(fired[0], 100u);
    EXPECT_EQ(fired[1], 200u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_EQ(fired[i] - fired[i - 1], 100u);
}

TEST(Machine, WakeReleasesBlockedThread)
{
    Machine m;
    ThreadContext &a = m.spawnThread();
    a.blockOn(5);
    m.wake(5, 1234);
    EXPECT_FALSE(a.blocked());
    EXPECT_EQ(a.now(), 1234u);
}

TEST(Machine, AllBlockedIsDeadlockPanic)
{
    Machine m;
    ThreadContext &a = m.spawnThread();

    class BlockJob : public Job
    {
      public:
        bool
        step(ThreadContext &tc) override
        {
            tc.blockOn(1);
            return true;
        }
    } job;

    (void)a;
    std::vector<Job *> jobs{&job};
    EXPECT_THROW(m.run(jobs), std::logic_error);
}

TEST(Machine, SuspendAllChargesEveryLiveThread)
{
    Machine m;
    m.spawnThread();
    m.spawnThread();
    m.thread(0).work(10);
    m.suspendAllUntil(500, Charge::Rand);
    EXPECT_EQ(m.thread(0).now(), 500u);
    EXPECT_EQ(m.thread(1).now(), 500u);
    EXPECT_EQ(m.thread(0).charged(Charge::Rand), 490u);
}

TEST(Machine, ShootdownRangeAffectsAllCores)
{
    Machine m;
    ThreadContext &t0 = m.spawnThread(); // core 0
    ThreadContext &t1 = m.spawnThread(); // core 1
    MemAccess a{0x40000, 0x40000, false, MemKind::Dram};
    m.access(t0, a);
    m.access(t1, a);
    m.shootdownRange(0x40000, 0x41000);
    // Both cores must re-walk.
    std::uint64_t walks_before = m.totalWalks();
    m.access(t0, a);
    m.access(t1, a);
    EXPECT_EQ(m.totalWalks(), walks_before + 2);
}
