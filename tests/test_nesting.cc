/**
 * @file
 * Function-composability tests: dynamically nested attach/detach
 * pairs (a callee with its own pairs running inside a caller's open
 * pair) must lower to silent operations under TERP, keep permissions
 * open until the outermost detach, and never corrupt the exposure
 * accounting — the paper's "allows nesting" property. Also covers
 * the DeadTimeAnalysis helper.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "security/dead_time.hh"
#include "sim/machine.hh"

using namespace terp;
using namespace terp::core;

namespace {

struct Rig
{
    sim::Machine mach;
    pm::PmoManager pmos;
    pm::PmoId pmo;
    std::unique_ptr<Runtime> rt;
    sim::ThreadContext *tc;

    explicit Rig(const RuntimeConfig &cfg) : pmos(5)
    {
        pmo = pmos.create("nest", 4 * MiB).id();
        rt = std::make_unique<Runtime>(mach, pmos, cfg);
        tc = &mach.spawnThread();
    }
};

} // namespace

TEST(Nesting, InnerPairsAreSilentUnderTt)
{
    Rig r(RuntimeConfig::tt());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite); // outer
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite); // callee
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), true),
              AccessOutcome::Ok);
    r.rt->regionEnd(*r.tc, r.pmo); // callee returns
    // Permission must still be open (the caller's pair is).
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), true),
              AccessOutcome::Ok);
    r.rt->regionEnd(*r.tc, r.pmo); // outer closes
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), true),
              AccessOutcome::NoThreadPerm);

    // Only one real attach; the nested pair cost two conditional
    // instructions and nothing else.
    OverheadReport rep = r.rt->report();
    EXPECT_EQ(rep.attachSyscalls, 1u);
    EXPECT_EQ(rep.condOps, 4u);
    EXPECT_EQ(r.rt->counters().get("nested_regions"), 1u);
}

TEST(Nesting, DeepNestsUnwindCorrectly)
{
    Rig r(RuntimeConfig::tt());
    for (int i = 0; i < 5; ++i)
        r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    for (int i = 0; i < 4; ++i) {
        r.rt->regionEnd(*r.tc, r.pmo);
        EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 64), false),
                  AccessOutcome::Ok)
            << "depth " << 4 - i;
    }
    r.rt->regionEnd(*r.tc, r.pmo);
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 64), false),
              AccessOutcome::NoThreadPerm);
    r.rt->finalize();
    // Exactly one thread exposure window despite five pairs.
    auto m = r.rt->exposure().metricsFor(r.pmo, r.tc->now() + 1, 1);
    EXPECT_EQ(m.tewCount, 1u);
}

TEST(Nesting, WorksUnderTmToo)
{
    Rig r(RuntimeConfig::tm());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    Cycles after_outer = r.tc->now();
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite); // nested
    // The nested call still traps (cheap) but performs no mapping.
    EXPECT_EQ(r.tc->now() - after_outer, latency::permSyscall);
    r.rt->regionEnd(*r.tc, r.pmo);
    EXPECT_TRUE(r.rt->mapped(r.pmo));
    r.rt->regionEnd(*r.tc, r.pmo);
    EXPECT_EQ(r.rt->report().attachSyscalls, 1u);
}

TEST(Nesting, UnbalancedEndPanics)
{
    Rig r(RuntimeConfig::tt());
    EXPECT_THROW(r.rt->regionEnd(*r.tc, r.pmo), std::logic_error);
}

TEST(Nesting, IndependentPmosDoNotNest)
{
    Rig r(RuntimeConfig::tt());
    pm::PmoId other = r.pmos.create("other", 1 * MiB).id();
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.rt->regionBegin(*r.tc, other, pm::Mode::ReadWrite);
    EXPECT_EQ(r.rt->counters().get("nested_regions"), 0u);
    r.rt->regionEnd(*r.tc, other);
    r.rt->regionEnd(*r.tc, r.pmo);
}

// ------------------------------------------------ dead-time analysis

TEST(DeadTime, SurfaceReductionAndRecommendation)
{
    security::DeadTimeAnalysis a;
    // 5% of objects die within 1us, 45% just above 2us, 50% at 9us.
    for (int i = 0; i < 5; ++i)
        a.add(0.8);
    for (int i = 0; i < 45; ++i)
        a.add(2.5);
    for (int i = 0; i < 50; ++i)
        a.add(9.0);
    EXPECT_NEAR(a.surfaceReduction(2.0), 0.95, 1e-9);
    EXPECT_NEAR(a.surfaceReduction(4.0), 0.50, 1e-9);
    // The largest TEW achieving >= 95% reduction is 2us, the
    // paper's pick; for 50% it is 8us (last bound under 9us).
    EXPECT_DOUBLE_EQ(a.recommendTew(0.95), 2.0);
    EXPECT_DOUBLE_EQ(a.recommendTew(0.50), 8.0);
    EXPECT_EQ(a.sampleCount(), 100u);
}

TEST(DeadTime, EmptyAnalysisIsSafe)
{
    security::DeadTimeAnalysis a;
    EXPECT_DOUBLE_EQ(a.surfaceReduction(2.0), 0.0);
    EXPECT_DOUBLE_EQ(a.recommendTew(0.95), 0.0);
}
