/**
 * @file
 * Tests for the security analysis: the Table V attack model, the
 * Table VI gadget census and the Fig 12 data-only attack simulation.
 */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "security/attack_model.hh"
#include "security/dop.hh"
#include "security/gadget.hh"

using namespace terp;
using namespace terp::security;

// -------------------------------------------------------- attack model

TEST(AttackModel, MerrNumbersMatchTableFive)
{
    // MERR, 40us EW, 1GB PMO (18-bit entropy), 1us per attack.
    AttackScenario s;
    s.attackTimeUs = 1.0;
    EXPECT_NEAR(successProbabilityPercent(s), 0.015, 0.002);
    s.attackTimeUs = 0.1;
    EXPECT_NEAR(successProbabilityPercent(s), 0.15, 0.02);
}

TEST(AttackModel, TerpNumbersMatchTableFive)
{
    // TERP: the malicious thread holds permission only ~3.4% of the
    // window (WHISPER thread exposure rate).
    AttackScenario s;
    s.accessibleFraction = 0.034;
    s.attackTimeUs = 1.0;
    EXPECT_NEAR(successProbabilityPercent(s), 0.0005, 0.0002);
    s.attackTimeUs = 0.1;
    EXPECT_NEAR(successProbabilityPercent(s), 0.005, 0.002);
}

TEST(AttackModel, TerpIsAboutThirtyTimesStronger)
{
    AttackScenario merr;
    AttackScenario terp;
    terp.accessibleFraction = 0.034;
    double ratio = successProbabilityPercent(merr) /
                   successProbabilityPercent(terp);
    EXPECT_NEAR(ratio, 1.0 / 0.034, 1.0);
}

TEST(AttackModel, ProbabilityCapsAtCertainty)
{
    AttackScenario s;
    s.entropyBits = 2; // only 4 slots
    s.ewUs = 1000;
    s.attackTimeUs = 0.001;
    EXPECT_DOUBLE_EQ(successProbabilityPercent(s), 100.0);
}

TEST(AttackModel, MonteCarloAgreesWithClosedForm)
{
    // Shrink the entropy so the rates are measurable.
    AttackScenario s;
    s.entropyBits = 10;
    s.ewUs = 40;
    s.attackTimeUs = 1.0; // 40 probes of 1024 slots: ~3.8%
    Rng rng(2022);
    double analytic = successProbabilityPercent(s);
    double measured = monteCarloSuccessPercent(s, 20000, rng);
    EXPECT_NEAR(measured, analytic, analytic * 0.15);
}

TEST(AttackModel, MonteCarloShowsTerpAdvantage)
{
    AttackScenario merr, terp;
    merr.entropyBits = terp.entropyBits = 8;
    terp.accessibleFraction = 0.05;
    Rng rng(7);
    double m = monteCarloSuccessPercent(merr, 5000, rng);
    double t = monteCarloSuccessPercent(terp, 5000, rng);
    EXPECT_GT(m, 4 * t);
}

TEST(AttackModel, ExpectedWindowsToBreach)
{
    AttackScenario s; // 0.01526% per window
    double w = expectedWindowsToBreach(s);
    EXPECT_NEAR(w, 6553.6, 10.0); // 2^18/40
}

// ------------------------------------------------------------- gadgets

TEST(Gadget, CensusClassifiesByPairState)
{
    compiler::Module m;
    compiler::FunctionBuilder b(m, "f", 0);
    // One gadget outside any pair.
    b.load(b.dramBase(0));
    // One gadget inside a cond pair only.
    b.condAttach(1);
    b.store(b.pmoBase(1, 0), b.constant(1));
    b.condDetach(1);
    // One gadget inside a manual window only.
    b.manualAttach(1);
    b.load(b.dramBase(8));
    b.manualDetach(1);
    b.ret();
    b.finish();

    GadgetCensus c = analyzeGadgets(m);
    EXPECT_EQ(c.totalGadgets, 3u);
    EXPECT_EQ(c.terpExposed, 1u);
    EXPECT_EQ(c.merrExposed, 1u);
    EXPECT_NEAR(c.terpDisarmRate(), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(c.merrDisarmRate(), 2.0 / 3.0, 1e-9);
}

TEST(Gadget, CoarseManualWindowsExposeMore)
{
    // MERR-style coarse window around everything vs tight TERP
    // pairs around the single PMO access.
    compiler::Module m;
    compiler::FunctionBuilder b(m, "f", 0);
    b.manualAttach(1);
    for (int i = 0; i < 9; ++i)
        b.load(b.dramBase(8 * i)); // 9 gadgets, MERR-exposed
    b.condAttach(1);
    b.store(b.pmoBase(1, 0), b.constant(1));
    b.condDetach(1);
    b.manualDetach(1);
    b.ret();
    b.finish();

    GadgetCensus c = analyzeGadgets(m);
    EXPECT_EQ(c.totalGadgets, 10u);
    EXPECT_EQ(c.merrExposed, 10u); // everything inside the window
    EXPECT_EQ(c.terpExposed, 1u);  // only the bracketed access
    EXPECT_GT(c.terpDisarmRate(), c.merrDisarmRate());
}

TEST(Gadget, TimeWeightedRatesFollowExposure)
{
    // Table VI: TERP disarms ~1-TER of gadget time; MERR keeps ER.
    EXPECT_NEAR(terpTimeWeightedDisarmRate(0.034), 0.966, 1e-9);
    EXPECT_NEAR(merrTimeWeightedKeptRate(0.245), 0.245, 1e-9);
}

// ---------------------------------------------------------------- dop

TEST(Dop, UnprotectedAttackAchievesGoal)
{
    DopResult r =
        runFtpAttack(core::RuntimeConfig::unprotected(), 24);
    EXPECT_TRUE(r.attackGoalAchieved);
    EXPECT_EQ(r.nodesCorrupted, 24u);
    EXPECT_EQ(r.accessFaults, 0u);
}

TEST(Dop, MerrStopsAttackAtFirstRandomization)
{
    DopResult r = runFtpAttack(core::RuntimeConfig::mm(), 64);
    EXPECT_FALSE(r.attackGoalAchieved);
    EXPECT_GT(r.nodesCorrupted, 0u);    // early rounds land
    EXPECT_LT(r.nodesCorrupted, 40u);   // then addresses go stale
    EXPECT_GT(r.accessFaults, 0u);
    EXPECT_GE(r.randomizations, 1u);
}

TEST(Dop, TerpBlocksEveryGadgetAccess)
{
    DopResult r = runFtpAttack(core::RuntimeConfig::tt(), 64);
    EXPECT_EQ(r.nodesCorrupted, 0u);
    EXPECT_FALSE(r.attackGoalAchieved);
    // Two denied accesses per addition round, one per move round.
    EXPECT_GE(r.accessFaults, r.listLength);
}

TEST(Dop, VictimStillWorksUnderTerp)
{
    // The legitimate accesses (via ObjectIDs, inside inserted pairs)
    // never fault: all faults come from the attacker's raw pointers.
    DopResult tt = runFtpAttack(core::RuntimeConfig::tt(), 16);
    DopResult un =
        runFtpAttack(core::RuntimeConfig::unprotected(), 16);
    EXPECT_EQ(tt.roundsExecuted, un.roundsExecuted);
}

class DopEwTest : public ::testing::TestWithParam<double>
{
};

TEST_P(DopEwTest, SmallerWindowsStopMerrEarlier)
{
    double ew = GetParam();
    DopResult r =
        runFtpAttack(core::RuntimeConfig::mm(usToCycles(ew)), 64);
    // Corruption is bounded by what fits in the first window.
    double round_us = r.totalUs / double(r.roundsExecuted);
    double max_nodes = ew / round_us / 2.0 + 2.0;
    EXPECT_LE(double(r.nodesCorrupted), max_nodes + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Windows, DopEwTest,
                         ::testing::Values(20.0, 40.0, 80.0));
