/**
 * @file
 * Tests for the bench history sink (bench/history.jsonl): the record
 * must stay valid JSON under a comma-decimal process locale (the
 * %.2f locale bug), string fields must be escaped, the v2 schema
 * carries the per-tool metric label, and gitRev() is cached and
 * falls back cleanly outside a git checkout.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "history.hh"

using namespace terp;

namespace {

/** Read the whole file; empty string if unreadable. */
std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** A scratch path under the build tree; removed on destruction. */
struct TmpFile
{
    std::string path;

    explicit TmpFile(const char *name)
        : path(std::string("history_test_") + name + ".jsonl")
    {
        std::remove(path.c_str());
    }
    ~TmpFile() { std::remove(path.c_str()); }
};

/**
 * Switch to a locale whose decimal separator is ','. Returns false
 * (test skips) when the container has no such locale installed.
 */
bool
commaLocale()
{
    for (const char *name :
         {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR", "nl_NL"}) {
        if (std::setlocale(LC_ALL, name)) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
            if (std::string(buf) == "1,5")
                return true;
        }
    }
    std::setlocale(LC_ALL, "C");
    return false;
}

struct LocaleGuard
{
    ~LocaleGuard() { std::setlocale(LC_ALL, "C"); }
};

} // namespace

TEST(History, RecordIsV2WithMetricLabel)
{
    TmpFile tmp("v2");
    bench::HistoryRecord rec;
    rec.tool = "terp-serve";
    rec.metric = "req_per_s";
    rec.simsPerS = 1234.567; // rounds to 1234.57
    rec.p99EwCycles = 42;
    rec.p99LatencyCycles = 7;
    ASSERT_TRUE(bench::appendHistory(tmp.path, rec));

    std::string line = slurp(tmp.path);
    EXPECT_NE(line.find("\"v\": 2"), std::string::npos) << line;
    EXPECT_NE(line.find("\"tool\": \"terp-serve\""),
              std::string::npos);
    EXPECT_NE(line.find("\"metric\": \"req_per_s\""),
              std::string::npos);
    EXPECT_NE(line.find("\"sims_per_s\": 1234.57"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"p99_ew_cycles\": 42"), std::string::npos);
}

TEST(History, AppendsDoNotRewrite)
{
    TmpFile tmp("append");
    bench::HistoryRecord rec;
    rec.tool = "terp-bench";
    ASSERT_TRUE(bench::appendHistory(tmp.path, rec));
    ASSERT_TRUE(bench::appendHistory(tmp.path, rec));
    std::string all = slurp(tmp.path);
    std::size_t lines = 0;
    for (char c : all)
        lines += c == '\n';
    EXPECT_EQ(lines, 2u);
}

TEST(History, EscapesStringsIntoValidJson)
{
    TmpFile tmp("escape");
    bench::HistoryRecord rec;
    rec.tool = "evil\"tool\\with\nnewline";
    rec.metric = "ctl\x01";
    ASSERT_TRUE(bench::appendHistory(tmp.path, rec));
    std::string line = slurp(tmp.path);
    EXPECT_NE(line.find("evil\\\"tool\\\\with\\nnewline"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("ctl\\u0001"), std::string::npos) << line;
    // No raw control characters survive inside the line.
    for (char c : line) {
        if (c != '\n') {
            EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
        }
    }
}

TEST(History, ThroughputStaysDotDecimalUnderCommaLocale)
{
    // Regression: %.2f follows the process locale, so a comma-
    // decimal locale used to emit `"sims_per_s": 1234,57` —
    // invalid JSON that silently corrupted the history log.
    LocaleGuard guard;
    if (!commaLocale())
        GTEST_SKIP() << "no comma-decimal locale installed";

    TmpFile tmp("locale");
    bench::HistoryRecord rec;
    rec.tool = "terp-bench";
    rec.simsPerS = 98765.432; // rounds to 98765.43
    ASSERT_TRUE(bench::appendHistory(tmp.path, rec));

    std::string line = slurp(tmp.path);
    EXPECT_NE(line.find("\"sims_per_s\": 98765.43"),
              std::string::npos)
        << line;
    EXPECT_EQ(line.find("98765,43"), std::string::npos) << line;
}

TEST(History, NonFiniteThroughputRendersAsZero)
{
    TmpFile tmp("nan");
    bench::HistoryRecord rec;
    rec.tool = "terp-bench";
    rec.simsPerS = 0.0 / 0.0; // NaN: "not measured"
    ASSERT_TRUE(bench::appendHistory(tmp.path, rec));
    EXPECT_NE(slurp(tmp.path).find("\"sims_per_s\": 0.00"),
              std::string::npos);
}

TEST(History, GitRevIsCachedAndSane)
{
    std::string first = bench::gitRev();
    EXPECT_FALSE(first.empty());
    // "unknown" fallback or a short hex revision — never raw popen
    // noise with trailing newlines.
    EXPECT_EQ(first.find('\n'), std::string::npos);
    if (first != "unknown") {
        for (char c : first)
            EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)))
                << first;
    }
    EXPECT_EQ(bench::gitRev(), first) << "per-process cache";
}

TEST(History, UnwritablePathReportsFailure)
{
    bench::HistoryRecord rec;
    rec.tool = "terp-bench";
    EXPECT_FALSE(
        bench::appendHistory("/nonexistent-dir/history.jsonl", rec));
}
