/**
 * @file
 * Unit tests for src/metrics: the empty-sample conventions, registry
 * registration and kind checking, histogram quantile error bounds
 * against an exact sort, snapshot monotonicity, merge commutativity,
 * the JSON/Prometheus exporters, and the end-to-end cross-check that
 * the metrics-derived EW/TEW statistics agree cycle-for-cycle with
 * semantics::EwTracker via the trace auditor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "metrics/export.hh"
#include "metrics/json.hh"
#include "metrics/metric.hh"
#include "metrics/registry.hh"
#include "metrics/sampler.hh"
#include "trace/audit.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::metrics;

// --------------------------------------------- empty-sample conventions

TEST(Summary, EmptyConventions)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Summary, EmptyAfterReset)
{
    Summary s;
    s.add(7);
    s.reset();
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(LogHistogram, EmptyConventions)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Gauge, EmptyConventions)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_DOUBLE_EQ(g.hwm(), 0.0);
}

// -------------------------------------------------------- basic values

TEST(Summary, TracksCountSumMinMax)
{
    Summary s;
    for (std::uint64_t v : {5u, 2u, 9u, 2u})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_EQ(s.sum(), 18u);
    EXPECT_EQ(s.min(), 2u);
    EXPECT_EQ(s.max(), 9u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
}

TEST(Summary, MergeMatchesCombinedAdds)
{
    Summary a, b, both;
    for (std::uint64_t v : {1u, 100u, 7u}) {
        a.add(v);
        both.add(v);
    }
    for (std::uint64_t v : {3u, 0u}) {
        b.add(v);
        both.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
}

TEST(Gauge, HighWaterMarkSurvivesDrops)
{
    Gauge g;
    g.set(3);
    g.set(11);
    g.set(2);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
    EXPECT_DOUBLE_EQ(g.hwm(), 11.0);
}

TEST(LogHistogram, SmallValuesAreExact)
{
    LogHistogram h;
    for (std::uint64_t v = 0; v < 32; ++v)
        h.record(v);
    // Values below 2^subBits land in unit buckets: every quantile is
    // exact.
    EXPECT_EQ(h.quantile(0.5), 15u);
    EXPECT_EQ(h.quantile(1.0), 31u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 31u);
}

TEST(LogHistogram, ExactStatsOnLargeValues)
{
    LogHistogram h;
    std::uint64_t big = 0xdeadbeefcafeULL;
    h.record(big);
    h.record(3);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), big + 3);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), big);
    // quantile(1) clamps to the exact max even though the bucket is
    // coarse up there.
    EXPECT_EQ(h.quantile(1.0), big);
}

// ------------------------------------------------- quantile error bound

TEST(LogHistogram, QuantileErrorBoundedVsExactSort)
{
    Rng rng(42);
    for (unsigned trial = 0; trial < 4; ++trial) {
        LogHistogram h;
        std::vector<std::uint64_t> vals;
        const std::size_t n = 1000;
        for (std::size_t i = 0; i < n; ++i) {
            // Mix of magnitudes: exercises unit buckets, middle
            // octaves, and large values.
            std::uint64_t v;
            switch (rng.nextBelow(3)) {
              case 0: v = rng.nextBelow(32); break;
              case 1: v = rng.nextBelow(100000); break;
              default: v = rng.next() >> rng.nextBelow(32); break;
            }
            vals.push_back(v);
            h.record(v);
        }
        std::sort(vals.begin(), vals.end());
        for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
            // Same rank convention as LogHistogram::quantile.
            std::uint64_t rank = static_cast<std::uint64_t>(
                q * static_cast<double>(n) + 0.9999999);
            rank = std::max<std::uint64_t>(
                1, std::min<std::uint64_t>(rank, n));
            const std::uint64_t exact = vals[rank - 1];
            const std::uint64_t got = h.quantile(q);
            // The bucket upper bound overshoots by at most one
            // sub-bucket width: 2^-subBits relative (1/32), plus one
            // for integer rounding. Compare via subtraction — for
            // samples near 2^64, exact + exact/32 would wrap.
            ASSERT_GE(got, exact) << "q=" << q;
            EXPECT_LE(got - exact, exact / 32 + 1) << "q=" << q;
        }
    }
}

TEST(LogHistogram, MergeIsExactOnStats)
{
    Rng rng(7);
    LogHistogram a, b, both;
    for (unsigned i = 0; i < 500; ++i) {
        std::uint64_t v = rng.next() >> rng.nextBelow(40);
        (i % 2 ? a : b).record(v);
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    for (double q : {0.25, 0.5, 0.75, 0.95})
        EXPECT_EQ(a.quantile(q), both.quantile(q));
}

// ------------------------------------------------------------- registry

TEST(Registry, GetOrCreateReturnsSameInstrument)
{
    Registry r;
    Counter &c1 = r.counter("a.b");
    c1.inc(3);
    Counter &c2 = r.counter("a.b");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(c2.value(), 3u);
    EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, KindClashPanics)
{
    Registry r;
    r.counter("x");
    EXPECT_THROW(r.gauge("x"), std::logic_error);
    EXPECT_THROW(r.histogram("x"), std::logic_error);
}

TEST(Registry, FindIsNullOnAbsentOrWrongKind)
{
    Registry r;
    r.counter("c");
    EXPECT_NE(r.findCounter("c"), nullptr);
    EXPECT_EQ(r.findCounter("nope"), nullptr);
    EXPECT_EQ(r.findGauge("c"), nullptr);
    EXPECT_EQ(r.findHistogram("c"), nullptr);
}

TEST(Registry, LabeledKeepsKeysSorted)
{
    std::string n = labeled("exposure.ew_cycles", "pmo", "3");
    EXPECT_EQ(n, "exposure.ew_cycles{pmo=\"3\"}");
    n = labeled(n, "scheme", "tt");
    EXPECT_EQ(n, "exposure.ew_cycles{pmo=\"3\",scheme=\"tt\"}");
    // Inserting a key that sorts first lands first.
    n = labeled(n, "app", "echo");
    EXPECT_EQ(n,
              "exposure.ew_cycles{app=\"echo\",pmo=\"3\","
              "scheme=\"tt\"}");
    EXPECT_EQ(baseName(n), "exposure.ew_cycles");
    auto ls = nameLabels(n);
    EXPECT_EQ(ls.size(), 3u);
    EXPECT_EQ(ls["pmo"], "3");
    EXPECT_EQ(ls["scheme"], "tt");
}

TEST(Registry, SnapshotSeriesIsMonotonic)
{
    Registry r;
    Counter &c = r.counter("n");
    Gauge &g = r.gauge("level");
    c.inc(5);
    g.set(2);
    r.snapshot(100);
    c.inc(5);
    g.set(1);
    r.snapshot(200);
    c.inc(1);
    r.snapshot(300);

    const auto &rows = r.series();
    ASSERT_EQ(rows.size(), 3u);
    double prevCounter = -1;
    Cycles prevAt = 0;
    for (const auto &row : rows) {
        EXPECT_GT(row.at, prevAt);
        prevAt = row.at;
        for (const auto &[name, v] : row.values) {
            if (name == "n") {
                EXPECT_GE(v, prevCounter); // counters never regress
                prevCounter = v;
            }
        }
    }
    EXPECT_DOUBLE_EQ(prevCounter, 11.0);
}

TEST(Sampler, OneSnapshotPerPeriodWithCatchUp)
{
    Registry r;
    r.counter("c").inc();
    Sampler s(r, 100);
    s.tick(50); // before the first boundary
    EXPECT_EQ(s.samples(), 0u);
    s.tick(100);
    EXPECT_EQ(s.samples(), 1u);
    s.tick(150); // same period
    EXPECT_EQ(s.samples(), 1u);
    s.tick(730); // long gap: one catch-up, not five
    EXPECT_EQ(s.samples(), 2u);
    s.tick(800); // next boundary resumes after the gap
    EXPECT_EQ(s.samples(), 3u);
    EXPECT_EQ(r.series().size(), 3u);
}

TEST(Registry, MergeIsCommutative)
{
    auto build = [](std::uint64_t k, const char *scheme) {
        Registry r;
        r.setLabel("scheme", scheme);
        r.counter("ops").inc(10 * k);
        r.gauge("occ").set(static_cast<double>(k));
        r.histogram("lat").record(100 * k);
        r.summary("s").add(k);
        return r;
    };
    Registry a = build(1, "tt");
    Registry b = build(2, "mm");

    Registry ab, ba;
    ab.merge(a, nullptr, {"scheme"});
    ab.merge(b, nullptr, {"scheme"});
    ba.merge(b, nullptr, {"scheme"});
    ba.merge(a, nullptr, {"scheme"});
    EXPECT_EQ(toJson(ab), toJson(ba));

    // Injected labels keep the two schemes distinct.
    EXPECT_NE(ab.findCounter("ops{scheme=\"tt\"}"), nullptr);
    EXPECT_NE(ab.findCounter("ops{scheme=\"mm\"}"), nullptr);
    EXPECT_EQ(ab.findCounter("ops"), nullptr);
}

TEST(Registry, MergeKeepFilterDropsNames)
{
    Registry src, dst;
    src.counter("keep.me").inc();
    src.counter("drop.me").inc();
    dst.merge(src, [](const std::string &n) {
        return n.rfind("keep.", 0) == 0;
    });
    EXPECT_NE(dst.findCounter("keep.me"), nullptr);
    EXPECT_EQ(dst.findCounter("drop.me"), nullptr);
}

// ------------------------------------------------------------ exporters

TEST(Export, JsonRoundTripsThroughParser)
{
    Registry r;
    r.setLabel("scheme", "tt");
    r.counter("runtime.ops").inc(12345678901234ULL);
    r.gauge("cb.occupancy").set(7);
    r.summary("s.windows").add(10);
    r.histogram("h.lat").record(500);
    r.histogram("h.lat").record(1500);
    r.snapshot(42);

    std::string error;
    auto doc = parseJson(toJson(r), error);
    ASSERT_NE(doc, nullptr) << error;

    const JsonValue *counters = doc->get("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *ops = counters->get("runtime.ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->asU64(), 12345678901234ULL); // exact via raw text

    const JsonValue *labels = doc->get("labels");
    ASSERT_NE(labels, nullptr);
    EXPECT_EQ(labels->get("scheme")->str, "tt");

    const JsonValue *h = doc->get("histograms")->get("h.lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->get("count")->asU64(), 2u);
    EXPECT_EQ(h->get("sum")->asU64(), 2000u);
    EXPECT_EQ(h->get("min")->asU64(), 500u);
    EXPECT_EQ(h->get("max")->asU64(), 1500u);

    const JsonValue *series = doc->get("series");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->array.size(), 1u);
    EXPECT_EQ(series->array[0].get("at")->asU64(), 42u);
}

TEST(Export, JsonParserRejectsMalformedInput)
{
    std::string error;
    EXPECT_EQ(parseJson("{\"a\": }", error), nullptr);
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(parseJson("{} trailing", error), nullptr);
    EXPECT_EQ(parseJson("", error), nullptr);
    EXPECT_NE(parseJson("{\"a\": [1, 2.5, \"x\", null, true]}",
                        error),
              nullptr);
    EXPECT_TRUE(error.empty());
}

TEST(Export, PrometheusFormat)
{
    Registry r;
    r.setLabel("scheme", "tt");
    r.counter("runtime.attach_syscalls").inc(3);
    r.gauge("cb.occupancy").set(4);
    r.histogram(labeled("exposure.ew_cycles", "pmo", "all"))
        .record(88000);

    std::string prom = toPrometheus(r);
    EXPECT_NE(prom.find("# TYPE terp_runtime_attach_syscalls "
                        "counter\n"),
              std::string::npos);
    EXPECT_NE(
        prom.find("terp_runtime_attach_syscalls{scheme=\"tt\"} 3\n"),
        std::string::npos);
    EXPECT_NE(prom.find("terp_cb_occupancy_hwm{scheme=\"tt\"} 4\n"),
              std::string::npos);
    // Histogram: name labels merge with registry labels, quantile
    // series plus exact _count/_sum/_max.
    EXPECT_NE(prom.find("terp_exposure_ew_cycles_count{pmo=\"all\","
                        "scheme=\"tt\"} 1\n"),
              std::string::npos);
    EXPECT_NE(prom.find("quantile=\"0.5\""), std::string::npos);
}

// --------------------------------------- end-to-end EwTracker agreement

/**
 * The acceptance check of the metrics subsystem: on a real WHISPER
 * run, the exposure histograms published through the registry must
 * agree with the trace auditor's independent replay — which the
 * audit itself verifies cycle-for-cycle against semantics::EwTracker
 * — on the exact count/sum/min/max of every window population, and
 * the silent fraction must be reproducible from the published
 * integer counters bit-for-bit.
 */
TEST(MetricsEndToEnd, AgreesWithEwTrackerOnWhisperRun)
{
    workloads::WhisperParams p;
    p.sections = 80;
    workloads::RunResult r = workloads::runWhisper(
        "hashmap", core::RuntimeConfig::tt().withTrace(), p);

    ASSERT_NE(r.metrics, nullptr)
        << "metrics disabled (TERP_METRICS set?)";
    ASSERT_NE(r.traceAudit, nullptr);
    ASSERT_TRUE(r.traceAudit->ok) << r.traceAudit->summary();

    const struct
    {
        const char *base;
        const std::map<std::uint64_t, trace::WindowTally> &want;
    } sides[] = {
        {"exposure.ew_cycles", r.traceAudit->ew},
        {"exposure.tew_cycles", r.traceAudit->tew},
    };
    for (const auto &side : sides) {
        ASSERT_FALSE(side.want.empty());
        Summary all;
        for (const auto &[pmo, tally] : side.want) {
            const LogHistogram *h = r.metrics->findHistogram(
                labeled(side.base, "pmo", std::to_string(pmo)));
            ASSERT_NE(h, nullptr) << side.base << " pmo " << pmo;
            EXPECT_EQ(h->count(), tally.count()) << side.base;
            EXPECT_EQ(h->sum(), tally.sum()) << side.base;
            EXPECT_EQ(h->min(), tally.min()) << side.base;
            EXPECT_EQ(h->max(), tally.max()) << side.base;
            all.merge(tally);
        }
        const LogHistogram *h = r.metrics->findHistogram(
            labeled(side.base, "pmo", "all"));
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->count(), all.count());
        EXPECT_EQ(h->sum(), all.sum());
        EXPECT_EQ(h->min(), all.min());
        EXPECT_EQ(h->max(), all.max());
    }

    const Counter *silent =
        r.metrics->findCounter("runtime.silent_ops");
    const Counter *full = r.metrics->findCounter("runtime.full_ops");
    ASSERT_NE(silent, nullptr);
    ASSERT_NE(full, nullptr);
    const std::uint64_t s = silent->value(), f = full->value();
    ASSERT_GT(s + f, 0u);
    EXPECT_EQ(static_cast<double>(s) / static_cast<double>(s + f),
              r.report.silentFraction);

    // Registry labels identify the run.
    EXPECT_EQ(r.metrics->labels().at("scheme"), "tt");
    EXPECT_EQ(r.metrics->labels().at("workload"), "hashmap");
}

TEST(MetricsEndToEnd, DisabledConfigYieldsNoRegistry)
{
    workloads::WhisperParams p;
    p.sections = 5;
    workloads::RunResult r = workloads::runWhisper(
        "echo", core::RuntimeConfig::tt().withoutMetrics(), p);
    EXPECT_EQ(r.metrics, nullptr);
}

TEST(MetricsEndToEnd, SamplerProducesTimeSeries)
{
    workloads::WhisperParams p;
    p.sections = 40;
    workloads::RunResult r = workloads::runWhisper(
        "echo",
        core::RuntimeConfig::tt().withMetricsSampling(10 *
                                                      cyclesPerUs),
        p);
    ASSERT_NE(r.metrics, nullptr);
    EXPECT_GT(r.metrics->series().size(), 2u);
    Cycles prev = 0;
    for (const auto &row : r.metrics->series()) {
        EXPECT_GT(row.at, prev);
        prev = row.at;
    }
}

// ------------------------------ Prometheus label-value escaping

namespace {

/**
 * Parse one exposition line's label set back out, undoing the
 * quoted-string escapes (\\, \", \n). Returns key -> value.
 */
std::map<std::string, std::string>
parsePromLabels(const std::string &line)
{
    std::map<std::string, std::string> out;
    std::size_t open = line.find('{');
    if (open == std::string::npos)
        return out;
    std::size_t i = open + 1;
    while (i < line.size() && line[i] != '}') {
        std::size_t eq = line.find('=', i);
        std::string key = line.substr(i, eq - i);
        EXPECT_EQ(line[eq + 1], '"');
        std::string val;
        std::size_t j = eq + 2;
        for (; j < line.size() && line[j] != '"'; ++j) {
            if (line[j] == '\\' && j + 1 < line.size()) {
                char n = line[++j];
                val += n == 'n' ? '\n' : n;
            } else {
                val += line[j];
            }
        }
        out[key] = val;
        i = j + 1;
        if (i < line.size() && line[i] == ',')
            ++i;
    }
    return out;
}

} // namespace

TEST(PromExport, HostileLabelValuesRoundTrip)
{
    metrics::Registry reg;
    // A tenant name with every character the exposition format's
    // quoted strings require escaping for: backslash, double quote,
    // newline (plus a comma and braces, which need none but must
    // not confuse the line structure).
    std::string hostile = "ev\\il\"te,na}nt\nx{";
    reg.counter(metrics::labeled("serve.shed", "tenant", hostile))
        .inc(7);
    std::string text = metrics::toPrometheus(reg);

    // The exposition must stay line-structured: exactly one # TYPE
    // line and one sample line — the newline in the value must not
    // produce a third.
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string l; std::getline(is, l);)
        lines.push_back(l);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "# TYPE terp_serve_shed counter");

    auto ls = parsePromLabels(lines[1]);
    ASSERT_EQ(ls.count("tenant"), 1u);
    EXPECT_EQ(ls["tenant"], hostile);
    EXPECT_EQ(lines[1].substr(lines[1].rfind(' ') + 1), "7");
}
