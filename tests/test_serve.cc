/**
 * @file
 * Tests for the terp-serve subsystem (src/serve) and its enabling
 * refactor (core::ShardDomain): load-generator determinism,
 * host-worker-count invariance of the fleet result, cycle-identity
 * of a 1-shard domain with the hand-assembled batch Runtime,
 * session lifecycle balance, slow-client window-holds vs the
 * sweeper under each semantics configuration, bounded-queue
 * backpressure, cross-shard metrics-merge commutativity, and the
 * exposure-SLO counters.
 */

#include <gtest/gtest.h>

#include "core/domain.hh"
#include "metrics/export.hh"
#include "semantics/ew_tracker.hh"
#include "serve/loadgen.hh"
#include "serve/report.hh"
#include "serve/server.hh"

using namespace terp;

namespace {

/** Small fleet the multi-worker tests share. */
serve::ServeConfig
tinyConfig()
{
    serve::ServeConfig cfg = serve::ServeConfig::quick();
    cfg.sessions = 60;
    cfg.requestsPerSession = 6;
    cfg.seed = 7;
    return cfg;
}

} // namespace

// ------------------------------------------------------------ loadgen

TEST(ServeLoadGen, DeterministicPerSeed)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::LoadGen a(cfg), b(cfg);
    ASSERT_EQ(a.totalRequests(), b.totalRequests());
    ASSERT_EQ(a.horizon(), b.horizon());
    for (unsigned k = 0; k < cfg.shards; ++k) {
        const auto &sa = a.shardStream(k);
        const auto &sb = b.shardStream(k);
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i].arrival, sb[i].arrival);
            EXPECT_EQ(sa[i].session, sb[i].session);
            EXPECT_EQ(sa[i].seq, sb[i].seq);
            EXPECT_EQ(sa[i].globalPmo, sb[i].globalPmo);
            EXPECT_EQ(sa[i].ops, sb[i].ops);
            EXPECT_EQ(sa[i].slow, sb[i].slow);
            EXPECT_EQ(sa[i].salt, sb[i].salt);
        }
    }
}

TEST(ServeLoadGen, SeedChangesTheStream)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::LoadGen a(cfg);
    cfg.seed = cfg.seed + 1;
    serve::LoadGen b(cfg);
    bool differs = a.horizon() != b.horizon();
    for (unsigned k = 0; !differs && k < cfg.shards; ++k) {
        const auto &sa = a.shardStream(k);
        const auto &sb = b.shardStream(k);
        if (sa.size() != sb.size()) {
            differs = true;
            break;
        }
        for (std::size_t i = 0; i < sa.size(); ++i)
            if (sa[i].arrival != sb[i].arrival ||
                sa[i].globalPmo != sb[i].globalPmo) {
                differs = true;
                break;
            }
    }
    EXPECT_TRUE(differs);
}

TEST(ServeLoadGen, PartitionsByTenantAndSortsByArrival)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::LoadGen g(cfg);
    std::uint64_t total = 0;
    for (unsigned k = 0; k < cfg.shards; ++k) {
        const auto &s = g.shardStream(k);
        total += s.size();
        for (std::size_t i = 0; i < s.size(); ++i) {
            EXPECT_EQ(s[i].globalPmo % cfg.shards, k);
            EXPECT_LT(s[i].globalPmo, cfg.totalPmos());
            if (i > 0) {
                EXPECT_LE(s[i - 1].arrival, s[i].arrival);
            }
        }
    }
    EXPECT_EQ(total, g.totalRequests());
    EXPECT_EQ(total,
              std::uint64_t(cfg.sessions) * cfg.requestsPerSession);
}

// ------------------------------------------- worker-count invariance

TEST(ServeFleet, ResultIndependentOfHostWorkers)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::FleetResult r1 = serve::runFleet(cfg, 1);
    serve::FleetResult r4 = serve::runFleet(cfg, 4);

    // The golden contract: byte-identical posture report.
    EXPECT_EQ(serve::postureReport(r1), serve::postureReport(r4));

    // And the underlying aggregates, not just their rendering.
    ASSERT_EQ(r1.shards.size(), r4.shards.size());
    for (std::size_t k = 0; k < r1.shards.size(); ++k) {
        EXPECT_EQ(r1.shards[k].completed, r4.shards[k].completed);
        EXPECT_EQ(r1.shards[k].shed, r4.shards[k].shed);
        EXPECT_EQ(r1.shards[k].endClock, r4.shards[k].endClock);
    }
    ASSERT_TRUE(r1.fleet && r4.fleet);
    EXPECT_EQ(metrics::toJson(*r1.fleet), metrics::toJson(*r4.fleet));
}

// -------------------------------------- 1-shard vs batch cycle parity

namespace {

/** A fixed little batch program: regions + strided accesses. */
class BatchJob : public sim::Job
{
  public:
    BatchJob(core::Runtime &rt, pm::PmoId pmo, unsigned steps)
        : rt(rt), pmo(pmo), left(steps)
    {
    }

    bool
    step(sim::ThreadContext &tc) override
    {
        if (left == 0)
            return false;
        --left;
        rt.regionBegin(tc, pmo, pm::Mode::ReadWrite);
        rt.accessRange(tc, pm::Oid(pmo, (left * 4096) % (1 * MiB)),
                       256, (left & 1) != 0);
        rt.regionEnd(tc, pmo);
        tc.work(5 * cyclesPerUs);
        return true;
    }

  private:
    core::Runtime &rt;
    pm::PmoId pmo;
    unsigned left;
};

} // namespace

TEST(ShardDomain, OneShardCycleIdenticalToBatchRuntime)
{
    constexpr unsigned kThreads = 3;
    constexpr unsigned kSteps = 40;

    // Batch assembly, exactly as the workloads do it.
    sim::MachineConfig mc;
    mc.cores = kThreads;
    sim::Machine mach(mc);
    pm::PmoManager pmos(1234);
    core::Runtime rt(mach, pmos, core::RuntimeConfig::tt());
    std::vector<std::unique_ptr<BatchJob>> batchJobs;
    std::vector<sim::Job *> batchPtrs;
    for (unsigned t = 0; t < kThreads; ++t) {
        pm::Pmo &p = pmos.create("b" + std::to_string(t), 1 * MiB);
        mach.spawnThread();
        batchJobs.push_back(
            std::make_unique<BatchJob>(rt, p.id(), kSteps));
        batchPtrs.push_back(batchJobs.back().get());
    }
    mach.run(batchPtrs, [&](Cycles now) { rt.onSweep(now); });
    rt.finalize();

    // Same program through a 1-shard domain.
    core::DomainConfig dc;
    dc.runtime = core::RuntimeConfig::tt();
    dc.machine = mc;
    dc.placementSeed = 1234;
    core::ShardDomain dom(dc);
    std::vector<std::unique_ptr<BatchJob>> domJobs;
    std::vector<sim::Job *> domPtrs;
    for (unsigned t = 0; t < kThreads; ++t) {
        pm::Pmo &p =
            dom.pmos().create("b" + std::to_string(t), 1 * MiB);
        dom.machine().spawnThread();
        domJobs.push_back(std::make_unique<BatchJob>(
            dom.runtime(), p.id(), kSteps));
        domPtrs.push_back(domJobs.back().get());
    }
    dom.runJobs(domPtrs);
    dom.finalize();

    // Cycle-exact agreement, category by category and thread by
    // thread — the refactor must not change batch behavior at all.
    core::OverheadReport a = rt.report();
    core::OverheadReport b = dom.runtime().report();
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.work, b.work);
    EXPECT_EQ(a.attach, b.attach);
    EXPECT_EQ(a.detach, b.detach);
    EXPECT_EQ(a.rand, b.rand);
    EXPECT_EQ(a.cond, b.cond);
    EXPECT_EQ(a.other, b.other);
    EXPECT_EQ(a.attachSyscalls, b.attachSyscalls);
    EXPECT_EQ(a.detachSyscalls, b.detachSyscalls);
    EXPECT_EQ(a.randomizations, b.randomizations);
    EXPECT_EQ(a.condOps, b.condOps);
    EXPECT_EQ(mach.maxClock(), dom.machine().maxClock());
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(mach.thread(t).now(),
                  dom.machine().thread(t).now());

    // Exposure statistics agree too.
    const Cycles total = mach.maxClock();
    auto ea = rt.exposure().metricsAll(total, kThreads);
    auto eb = dom.runtime().exposure().metricsAll(total, kThreads);
    EXPECT_EQ(ea.ewCount, eb.ewCount);
    EXPECT_EQ(ea.tewCount, eb.tewCount);
}

// -------------------------------------------------- session lifecycle

TEST(ServeFleet, LifecycleBalancedAndEverythingDetached)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::FleetResult res = serve::runFleet(cfg, 2);

    std::uint64_t arrived = 0, completed = 0, shed = 0;
    for (const auto &s : res.shards) {
        arrived += s.arrived;
        completed += s.completed;
        shed += s.shed;
    }
    // No request is lost or double-counted: everything generated
    // arrives at some shard, and everything that arrived either
    // completed or was observably shed.
    EXPECT_EQ(arrived, res.generated);
    EXPECT_EQ(completed + shed, arrived);
    EXPECT_GT(completed, 0u);

    // Attach/detach balance: the fleet aggregate performed exactly
    // as many real detaches as real attaches (every window that
    // opened was closed by regionEnd, the sweeper, or the drain).
    ASSERT_TRUE(res.fleet);
    const metrics::Counter *at =
        res.fleet->findCounter("runtime.attach_syscalls");
    const metrics::Counter *dt =
        res.fleet->findCounter("runtime.detach_syscalls");
    ASSERT_TRUE(at && dt);
    EXPECT_GT(at->value(), 0u);
    EXPECT_EQ(at->value(), dt->value());
}

// ----------------------------- slow clients vs sweeper, per semantics

namespace {

/** Slow-heavy fleet: every session holds windows past the target. */
serve::ServeConfig
slowConfig(const core::RuntimeConfig &rc)
{
    serve::ServeConfig cfg;
    cfg.shards = 1;
    cfg.workersPerShard = 2;
    cfg.pmosPerShard = 4;
    cfg.sessions = 12;
    cfg.requestsPerSession = 3;
    cfg.slowFraction = 1.0;
    cfg.slowHold = 3 * target::defaultEw;
    cfg.seed = 11;
    cfg.runtime = rc;
    return cfg;
}

} // namespace

TEST(ServeSlowClients, SweeperBoundsEwUnderEveryScheme)
{
    const core::RuntimeConfig schemes[] = {
        core::RuntimeConfig::tt(),
        core::RuntimeConfig::ttNoCombining(),
        core::RuntimeConfig::tm(),
        core::RuntimeConfig::mm(),
        core::RuntimeConfig::basicSemantics(),
    };
    for (const auto &rc : schemes) {
        serve::ServeConfig cfg = slowConfig(rc);
        serve::FleetResult res = serve::runFleet(cfg, 1);
        SCOPED_TRACE(core::schemeTag(rc));

        ASSERT_EQ(res.shards.size(), 1u);
        EXPECT_GT(res.shards[0].completed, 0u);

        // The sweeper (hardware CB or software timer) must keep
        // every *process* exposure window near the target even
        // though every client holds its region 3x past it: no EW
        // SLO violations at 2x the target.
        ASSERT_TRUE(res.fleet);
        const metrics::Counter *ew = res.fleet->findCounter(
            "exposure.slo_violations{win=\"ew\"}");
        EXPECT_EQ(ew ? ew->value() : 0, 0u)
            << "sweeper let an exposure window outlive 2x target";

        // Schemes with per-thread permissions (EW-conscious) see
        // the holds as TEW SLO violations — the slow-client signal
        // the posture report is for.
        if (rc.threadPerms) {
            const metrics::Counter *tew = res.fleet->findCounter(
                "exposure.slo_violations{win=\"tew\"}");
            ASSERT_TRUE(tew);
            EXPECT_GT(tew->value(), 0u);
            EXPECT_GE(tew->value(), res.shards[0].slowCompleted);
        }
    }
}

// ------------------------------------------------------- backpressure

TEST(ServeBackpressure, TinyQueueShedsObservablyNeverSilently)
{
    serve::ServeConfig cfg = tinyConfig();
    cfg.queueCapacity = 1;
    cfg.workersPerShard = 1;
    serve::FleetResult res = serve::runFleet(cfg, 2);

    std::uint64_t completed = 0, shed = 0;
    for (const auto &s : res.shards) {
        completed += s.completed;
        shed += s.shed;
    }
    EXPECT_GT(shed, 0u) << "a 1-deep queue under this load must shed";
    EXPECT_GT(completed, 0u);
    EXPECT_EQ(completed + shed, res.generated);

    // The shed count is published, so operators can alert on it.
    ASSERT_TRUE(res.fleet);
    const metrics::Counter *c =
        res.fleet->findCounter("serve.requests_shed");
    ASSERT_TRUE(c);
    EXPECT_EQ(c->value(), shed);
}

// ------------------------------------------------- merge commutativity

TEST(ServeFleet, CrossShardMergeIsCommutative)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::FleetResult res = serve::runFleet(cfg, 2);
    ASSERT_GE(res.shardMetrics.size(), 2u);
    ASSERT_TRUE(res.shardMetrics[0] && res.shardMetrics[1]);

    auto keep = [](const std::string &) { return true; };
    metrics::Registry fwd, rev;
    for (std::size_t k = 0; k < res.shardMetrics.size(); ++k)
        fwd.merge(*res.shardMetrics[k], keep);
    for (std::size_t k = res.shardMetrics.size(); k-- > 0;)
        rev.merge(*res.shardMetrics[k], keep);
    EXPECT_EQ(metrics::toJson(fwd), metrics::toJson(rev));
}

// ------------------------------------------------------- exposure SLO

TEST(EwTrackerSlo, CountsWindowsPastThreshold)
{
    metrics::Registry reg;
    semantics::EwTracker t;
    t.enableMetrics(&reg);
    t.setSlo(100, 50);

    t.processOpen(0, 0);
    t.processClose(0, 100); // len 100: not > threshold, no violation
    t.processOpen(0, 200);
    t.processClose(0, 301); // len 101: violation
    t.threadOpen(0, 0, 0);
    t.threadClose(0, 0, 50); // len 50: ok
    t.threadOpen(1, 0, 0);
    t.threadClose(1, 0, 200); // len 200: violation
    t.threadOpen(2, 0, 10);
    t.threadClose(2, 0, 80); // len 70: violation

    EXPECT_EQ(t.sloEwViolations(), 1u);
    EXPECT_EQ(t.sloTewViolations(), 2u);
    const metrics::Counter *ew =
        reg.findCounter("exposure.slo_violations{win=\"ew\"}");
    const metrics::Counter *tew =
        reg.findCounter("exposure.slo_violations{win=\"tew\"}");
    ASSERT_TRUE(ew && tew);
    EXPECT_EQ(ew->value(), 1u);
    EXPECT_EQ(tew->value(), 2u);
}

TEST(EwTrackerSlo, OffByDefault)
{
    metrics::Registry reg;
    semantics::EwTracker t;
    t.enableMetrics(&reg);
    t.processOpen(0, 0);
    t.processClose(0, 1000000);
    EXPECT_EQ(t.sloEwViolations(), 0u);
    // The counter is never even created, so batch-run exports are
    // byte-identical to pre-SLO builds.
    EXPECT_EQ(reg.findCounter("exposure.slo_violations{win=\"ew\"}"),
              nullptr);
}

// ------------------------------------------------------------- report

TEST(ServeReport, DeterministicAndCoversShards)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::FleetResult res = serve::runFleet(cfg, 2);
    std::string rep = serve::postureReport(res);
    EXPECT_NE(rep.find("terp-serve posture report"), std::string::npos);
    EXPECT_NE(rep.find("fleet: slo-violations"), std::string::npos);
    for (unsigned k = 0; k < cfg.shards; ++k)
        EXPECT_NE(rep.find("shard " + std::to_string(k) + ":"),
                  std::string::npos);
    // No host-dependent content: rendering twice is identical.
    EXPECT_EQ(rep, serve::postureReport(res));
}


// ------------------------------------------------------------ txns

TEST(ServeTxn, DurableTransactionsPerRequestAreObservable)
{
    serve::ServeConfig cfg = tinyConfig();
    cfg.txnWrites = 3;
    cfg.persistence = true;
    serve::FleetResult a = serve::runFleet(cfg, 1);
    ASSERT_NE(a.fleet, nullptr);
    const metrics::Counter *commits =
        a.fleet->findCounter("pm.txn_commits");
    ASSERT_NE(commits, nullptr) << "no pm.txn_commits counter";
    EXPECT_GT(commits->value(), 0u)
        << "every completed request ends in a durable commit";

    // The worker-count invariance contract holds with the
    // transactional tail enabled too.
    serve::FleetResult b = serve::runFleet(cfg, 3);
    EXPECT_EQ(serve::postureReport(a), serve::postureReport(b));
}

TEST(ServeTxn, OffByDefault)
{
    serve::ServeConfig cfg = tinyConfig();
    ASSERT_EQ(cfg.txnWrites, 0u);
    serve::FleetResult res = serve::runFleet(cfg, 1);
    ASSERT_NE(res.fleet, nullptr);
    const metrics::Counter *begins =
        res.fleet->findCounter("pm.txn_begins");
    EXPECT_TRUE(begins == nullptr || begins->value() == 0u);
}

// ----------------------------- exposure provenance + burn alerting

TEST(ServeBlame, AttributionIsChargeFreeAndTenantLabeled)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::FleetResult off = serve::runFleet(cfg, 1);
    cfg.tenantEwBudget = 0.05;
    serve::FleetResult on = serve::runFleet(cfg, 2);

    // Budgets/burn alerting must never perturb the simulation: the
    // posture report is byte-identical with them on or off (and
    // independent of host workers, as everywhere).
    EXPECT_EQ(serve::postureReport(off), serve::postureReport(on));

    // Per-tenant blame counters carry the serve-only causes: the
    // slow-client scenario and the bounded queue are both active in
    // the quick config, so both causes must have cycles somewhere.
    ASSERT_TRUE(on.fleet);
    std::uint64_t queueWait = 0, slowHold = 0, appHold = 0;
    for (const auto &[name, e] : on.fleet->entries()) {
        if (metrics::baseName(name) != "exposure.blame_total" ||
            e.kind != metrics::Kind::Counter)
            continue;
        auto ls = metrics::nameLabels(name);
        if (!ls.count("tenant"))
            continue;
        if (ls["cause"] == "queue_wait")
            queueWait += e.counter.value();
        else if (ls["cause"] == "slow_client_hold")
            slowHold += e.counter.value();
        else if (ls["cause"] == "app_hold")
            appHold += e.counter.value();
    }
    EXPECT_GT(queueWait, 0u);
    EXPECT_GT(slowHold, 0u);
    EXPECT_GT(appHold, 0u);

    // Burn gauges exist per tenant and window, and the quick
    // config's deliberately tight budget pushes peak burn past 1.0
    // for at least the hottest tenant.
    double peak = 0;
    unsigned gauges = 0;
    for (const auto &[name, e] : on.fleet->entries()) {
        if (metrics::baseName(name) != "serve.slo_burn" ||
            e.kind != metrics::Kind::Gauge)
            continue;
        ++gauges;
        peak = std::max(peak, e.gauge.hwm());
    }
    EXPECT_EQ(gauges, 2 * cfg.totalPmos());
    EXPECT_GT(peak, 1.0);

    // The advisory shed hook fired (counted, nothing actually shed:
    // the completed counts already matched via the report above).
    const metrics::Counter *advised =
        on.fleet->findCounter("serve.shed_advised");
    ASSERT_NE(advised, nullptr);
    EXPECT_GT(advised->value(), 0u);

    // Budgets off: no burn gauges, no advisory counter.
    ASSERT_TRUE(off.fleet);
    for (const auto &[name, e] : off.fleet->entries())
        EXPECT_NE(metrics::baseName(name), "serve.slo_burn");
    EXPECT_EQ(off.fleet->findCounter("serve.shed_advised"), nullptr);
}

TEST(ServeBlame, BlameSumsMatchEwSumsPerShard)
{
    serve::ServeConfig cfg = tinyConfig();
    serve::FleetResult res = serve::runFleet(cfg, 1);
    // Bit-exact tiling, observed end-to-end: per shard, total blame
    // across all causes equals the EW summary's total cycles.
    ASSERT_TRUE(res.fleet);
    for (const auto &sm : res.shardMetrics) {
        ASSERT_TRUE(sm);
        const metrics::LogHistogram *ew =
            sm->findHistogram("exposure.ew_cycles{pmo=\"all\"}");
        ASSERT_NE(ew, nullptr);
        std::uint64_t blame = 0;
        for (const auto &[name, e] : sm->entries()) {
            if (metrics::baseName(name) != "exposure.blame_total" ||
                e.kind != metrics::Kind::Counter)
                continue;
            if (metrics::nameLabels(name).count("tenant"))
                continue; // tenant rows double the cause rows
            blame += e.counter.value();
        }
        EXPECT_EQ(blame, ew->sum());
    }
}
