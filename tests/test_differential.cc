/**
 * @file
 * Differential tests:
 *
 *  1. The production TT runtime against the EW-Conscious semantics
 *     specification model: random multi-thread attach/detach/access
 *     traces must agree on mapped state and access decisions.
 *
 *  2. Program-semantics preservation: a random program produces the
 *     same results (return value and memory image) whether it runs
 *     uninstrumented on an unprotected runtime or pass-instrumented
 *     under full TERP — protection must never change what a correct
 *     program computes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "compiler/interp.hh"
#include "compiler/pass.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "semantics/attach_semantics.hh"
#include "sim/machine.hh"

using namespace terp;

// ------------------------------------------------ runtime vs model

namespace {

/** Drive the runtime and the spec model with one trace. */
class DifferentialDriver
{
  public:
    explicit DifferentialDriver(std::uint64_t seed)
        : rng(seed), pmos(seed),
          // Huge EW target so neither side closes windows on time —
          // we compare the construct semantics, not the sweeps.
          model(usToCycles(1e9)),
          cfg(core::RuntimeConfig::tt(usToCycles(1e9)))
    {
        for (int i = 0; i < 3; ++i)
            pmos.create("pmo" + std::to_string(i), 1 * MiB);
        rt = std::make_unique<core::Runtime>(mach, pmos, cfg);
        for (int t = 0; t < 4; ++t)
            mach.spawnThread();
    }

    void
    step()
    {
        unsigned tid = static_cast<unsigned>(rng.nextBelow(4));
        auto pmo = static_cast<pm::PmoId>(1 + rng.nextBelow(3));
        sim::ThreadContext &tc = mach.thread(tid);
        tc.work(10);

        switch (rng.nextBelow(3)) {
          case 0: { // attach
            if (open.count({tid, pmo}))
                break; // both sides forbid same-thread overlap
            semantics::Verdict v =
                model.onAttach(tid, pmo, tc.now());
            rt->regionBegin(tc, pmo, pm::Mode::ReadWrite);
            open.insert({tid, pmo});
            EXPECT_NE(v, semantics::Verdict::Invalid);
            break;
          }
          case 1: { // detach
            if (!open.count({tid, pmo}))
                break;
            model.onDetach(tid, pmo, tc.now());
            rt->regionEnd(tc, pmo);
            open.erase({tid, pmo});
            break;
          }
          default: { // access
            semantics::Verdict v =
                model.onAccess(tid, pmo, tc.now(), true);
            core::AccessOutcome o =
                rt->tryAccess(tc, pm::Oid(pmo, 64), true);
            if (v == semantics::Verdict::Valid) {
                EXPECT_EQ(o, core::AccessOutcome::Ok)
                    << "tid " << tid << " pmo " << pmo;
            } else {
                EXPECT_NE(o, core::AccessOutcome::Ok)
                    << "tid " << tid << " pmo " << pmo;
            }
            break;
          }
        }

        // Mapped state must agree at every step.
        EXPECT_EQ(model.mapped(pmo), rt->mapped(pmo))
            << "pmo " << pmo;
    }

    Rng rng;
    sim::Machine mach;
    pm::PmoManager pmos;
    semantics::EwConsciousSemantics model;
    core::RuntimeConfig cfg;
    std::unique_ptr<core::Runtime> rt;
    std::set<std::pair<unsigned, pm::PmoId>> open;
};

} // namespace

class RuntimeVsModelTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RuntimeVsModelTest, RandomTracesAgree)
{
    DifferentialDriver d(GetParam());
    for (int i = 0; i < 1500; ++i)
        d.step();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeVsModelTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------- protection preserves programs

namespace {

/** A random but deterministic program computing over PM and DRAM. */
compiler::Module
genComputation(std::uint64_t seed)
{
    using namespace compiler;
    Rng rng(seed);
    Module m;
    FunctionBuilder b(m, "compute", 0);

    // Accumulator in DRAM; data spread over two PMOs.
    Reg acc = b.dramBase(0x20);
    b.store(acc, b.constant(0));

    unsigned loops = 2 + static_cast<unsigned>(rng.nextBelow(3));
    for (unsigned l = 0; l < loops; ++l) {
        auto pmo = static_cast<pm::PmoId>(1 + rng.nextBelow(2));
        std::uint64_t stride = 8 * (1 + rng.nextBelow(16));
        b.forLoop(8 + rng.nextBelow(24), [&](Reg i) {
            Reg addr =
                b.add(b.pmoBase(pmo, 0),
                      b.mul(i, b.constant(
                                   static_cast<std::int64_t>(stride))));
            Reg v = b.load(addr);
            Reg nv = b.add(v, b.add(i, b.constant(
                                           static_cast<std::int64_t>(
                                               l + 1))));
            b.ifThenElse(
                b.cmpLt(nv, b.constant(1000000)),
                [&]() { b.store(addr, nv); },
                [&]() { b.store(addr, b.constant(0)); });
            b.store(acc, b.add(b.load(acc), nv));
        });
    }
    b.ret(b.load(acc));
    b.finish();
    return m;
}

struct ProgramRun
{
    std::uint64_t result;
    std::uint64_t pmoChecksum;
};

ProgramRun
runProgram(compiler::Module &m, const core::RuntimeConfig &cfg,
           std::uint64_t seed)
{
    sim::Machine mach;
    pm::PmoManager pmos(seed);
    pm::PmoId a = pmos.create("a", 1 * MiB).id();
    pm::PmoId bb = pmos.create("b", 1 * MiB).id();
    core::Runtime rt(mach, pmos, cfg);
    pm::MemImage img;

    // Deterministic initial PM content.
    Rng content(seed ^ 0x1111);
    for (int i = 0; i < 256; ++i) {
        img.poke(pm::Oid(a, 8ULL * i).raw, content.nextBelow(100));
        img.poke(pm::Oid(bb, 8ULL * i).raw, content.nextBelow(100));
    }

    compiler::Interpreter in(m, rt, mach, img, 0);
    mach.spawnThread();
    std::vector<sim::Job *> jobs{&in};
    mach.run(jobs, [&](Cycles now) { rt.onSweep(now); });
    rt.finalize();

    ProgramRun r;
    r.result = in.result();
    r.pmoChecksum = 0;
    for (int i = 0; i < 256; ++i) {
        r.pmoChecksum =
            r.pmoChecksum * 31 + img.peek(pm::Oid(a, 8ULL * i).raw);
        r.pmoChecksum =
            r.pmoChecksum * 31 + img.peek(pm::Oid(bb, 8ULL * i).raw);
    }
    return r;
}

} // namespace

class ProtectionPreservesSemanticsTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ProtectionPreservesSemanticsTest,
       InstrumentedTtMatchesUnprotected)
{
    std::uint64_t seed = GetParam();

    compiler::Module plain = genComputation(seed);
    ProgramRun base =
        runProgram(plain, core::RuntimeConfig::unprotected(), seed);

    compiler::Module prot = genComputation(seed);
    compiler::runInsertionPass(prot, compiler::PassConfig{});
    for (const auto &cfg :
         {core::RuntimeConfig::tt(), core::RuntimeConfig::tm(),
          core::RuntimeConfig::ttNoCombining()}) {
        ProgramRun r = runProgram(prot, cfg, seed);
        EXPECT_EQ(r.result, base.result) << cfg.describe();
        EXPECT_EQ(r.pmoChecksum, base.pmoChecksum) << cfg.describe();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtectionPreservesSemanticsTest,
                         ::testing::Range<std::uint64_t>(1, 11));
