/**
 * @file
 * Unit tests for src/common: units, logging, RNG, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/units.hh"

using namespace terp;

// ------------------------------------------------------------- units

TEST(Units, CycleConversionsRoundTrip)
{
    EXPECT_EQ(usToCycles(1.0), cyclesPerUs);
    EXPECT_EQ(usToCycles(40.0), 40 * cyclesPerUs);
    EXPECT_DOUBLE_EQ(cyclesToUs(2200), 1.0);
    EXPECT_NEAR(cyclesToNs(22), 10.0, 1e-9);
}

TEST(Units, TableTwoLatenciesMatchThePaper)
{
    EXPECT_EQ(latency::dram, 120u);
    EXPECT_EQ(latency::nvm, 360u);
    EXPECT_EQ(latency::attachSyscall, 4422u);
    EXPECT_EQ(latency::detachSyscall, 3058u);
    EXPECT_EQ(latency::randomize, 3718u);
    EXPECT_EQ(latency::tlbInvalidate, 550u);
    EXPECT_EQ(latency::silentCond, 27u);
    EXPECT_EQ(latency::permMatrix, 1u);
    EXPECT_EQ(latency::tlbMiss, 30u);
}

TEST(Units, DefaultProtectionTargets)
{
    EXPECT_EQ(target::defaultEw, usToCycles(40.0));
    EXPECT_EQ(target::defaultTew, usToCycles(2.0));
}

// ----------------------------------------------------------- logging

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(TERP_PANIC("boom"), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(TERP_FATAL("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(TERP_ASSERT(1 + 1 == 2));
    EXPECT_THROW(TERP_ASSERT(1 + 1 == 3, "math broke"),
                 std::logic_error);
}

// --------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (r.nextBool(0.3))
            ++hits;
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Rng, JitterBounds)
{
    Rng r(15);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.jitter(1000, 0.25);
        EXPECT_GE(v, 750u);
        EXPECT_LE(v, 1250u);
    }
}

TEST(Rng, JitterZeroSpreadIsIdentity)
{
    Rng r(17);
    EXPECT_EQ(r.jitter(123, 0.0), 123u);
    EXPECT_EQ(r.jitter(0, 0.5), 0u);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng a(21);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Zipf, StaysInRangeAndSkews)
{
    ZipfGenerator z(1000, 0.99, 3);
    std::uint64_t low = 0, total = 30000;
    for (std::uint64_t i = 0; i < total; ++i) {
        std::uint64_t v = z.next();
        EXPECT_LT(v, 1000u);
        if (v < 10)
            ++low;
    }
    // With theta=0.99 the 1% hottest items draw far more than 1%.
    EXPECT_GT(low, total / 10);
}

TEST(Zipf, ZeroThetaIsNearUniform)
{
    ZipfGenerator z(100, 0.0, 5);
    std::uint64_t low = 0, total = 50000;
    for (std::uint64_t i = 0; i < total; ++i)
        if (z.next() < 10)
            ++low;
    EXPECT_NEAR(low / double(total), 0.10, 0.02);
}

// ------------------------------------------------------------- stats

TEST(Summary, TracksMinMaxMeanCount)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0u);
    s.add(10);
    s.add(30);
    s.add(20);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.min(), 10u);
    EXPECT_EQ(s.max(), 30u);
    EXPECT_DOUBLE_EQ(s.mean(), 20.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketPlacement)
{
    Histogram h({1.0, 2.0, 4.0});
    h.add(0.5); // bucket 0 (<=1)
    h.add(1.0); // bucket 0 (inclusive upper bound)
    h.add(1.5); // bucket 1
    h.add(4.0); // bucket 2
    h.add(9.0); // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 1u); // overflow bucket
    EXPECT_EQ(h.totalCount(), 5u);
}

TEST(Histogram, FractionsAndPercentiles)
{
    Histogram h({10.0, 100.0});
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.10);
    EXPECT_NEAR(h.fractionAbove(50.0), 0.5, 1e-9);
    EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(95.0), 95.0, 1.0);
}

TEST(Histogram, Log2BucketsCoverRange)
{
    Histogram h = Histogram::log2Buckets(0.5, 1024.0);
    // 0.5, 1, 2, ..., 1024 -> 12 bounds.
    EXPECT_EQ(h.bounds().size(), 12u);
    EXPECT_DOUBLE_EQ(h.bounds().front(), 0.5);
    EXPECT_DOUBLE_EQ(h.bounds().back(), 1024.0);
}

TEST(Histogram, RejectsNonAscendingBounds)
{
    EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
}

TEST(CounterSet, IncrementAndQuery)
{
    CounterSet c;
    EXPECT_EQ(c.get("x"), 0u);
    c.inc("x");
    c.inc("x", 4);
    c.inc("y", 2);
    EXPECT_EQ(c.get("x"), 5u);
    EXPECT_EQ(c.get("y"), 2u);
    EXPECT_EQ(c.all().size(), 2u);
    c.reset();
    EXPECT_EQ(c.get("x"), 0u);
}
