/**
 * @file
 * Unit tests for src/semantics: permission sets/groups, the TERP
 * poset, exposure-window tracking, the four attach/detach semantics
 * (including the Fig 3 and Fig 4 walkthroughs) and the temporal
 * protection theorem.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "semantics/attach_semantics.hh"
#include "semantics/ew_tracker.hh"
#include "semantics/permission.hh"
#include "semantics/poset.hh"
#include "semantics/theorem.hh"

using namespace terp;
using namespace terp::semantics;

// -------------------------------------------------------- permissions

TEST(Rights, SubsetAndSetOps)
{
    EXPECT_TRUE(Rights::r().subsetOf(Rights::rw()));
    EXPECT_FALSE(Rights::rw().subsetOf(Rights::r()));
    EXPECT_TRUE(Rights::none().subsetOf(Rights::r()));
    EXPECT_EQ(Rights::rw().intersect(Rights::r()), Rights::r());
    EXPECT_EQ(Rights::r().unionWith(Rights(2)), Rights::rw());
    EXPECT_TRUE(Rights::rw().has(Right::Write));
    EXPECT_FALSE(Rights::r().has(Right::Write));
}

TEST(PermissionSet, SubsetIsPointwise)
{
    PermissionSet p, q;
    p.set(1, Rights::r());
    q.set(1, Rights::rw());
    q.set(2, Rights::r());
    EXPECT_TRUE(p.subsetOf(q));
    EXPECT_FALSE(q.subsetOf(p));
}

TEST(PermissionSet, IntersectDropsEmptyEntries)
{
    PermissionSet p, q;
    p.set(1, Rights::r());
    p.set(2, Rights::rw());
    q.set(2, Rights::r());
    PermissionSet i = p.intersect(q);
    EXPECT_EQ(i.objectCount(), 1u);
    EXPECT_EQ(i.rightsOn(2), Rights::r());
}

TEST(PermissionGroup, WellFormedRequiresSharedSubset)
{
    PermissionSet shared;
    shared.set(1, Rights::r());

    PermissionGroup g("readers", shared);
    PermissionSet rich;
    rich.set(1, Rights::rw());
    g.addAgent(100, rich);
    EXPECT_TRUE(g.wellFormed());

    PermissionSet poor; // no rights on object 1
    g.addAgent(101, poor);
    EXPECT_FALSE(g.wellFormed());
}

// -------------------------------------------------------------- poset

TEST(Poset, OrderAndTransitivity)
{
    Poset p;
    p.order("a", "b");
    p.order("b", "c");
    EXPECT_TRUE(p.leq("a", "c")); // transitive closure
    EXPECT_TRUE(p.leq("a", "a")); // reflexive
    EXPECT_FALSE(p.leq("c", "a"));
}

TEST(Poset, AntisymmetryViolationRejected)
{
    Poset p;
    EXPECT_TRUE(p.order("x", "y"));
    EXPECT_FALSE(p.order("y", "x"));
    // The failed order left the relation unchanged.
    EXPECT_TRUE(p.leq("x", "y"));
    EXPECT_FALSE(p.leq("y", "x"));
}

TEST(Poset, IncomparableElements)
{
    Poset p;
    p.order("t1", "proc");
    p.order("t2", "proc");
    EXPECT_FALSE(p.comparable("t1", "t2"));
    EXPECT_TRUE(p.comparable("t1", "proc"));
}

TEST(Poset, MinimalAndMaximal)
{
    Poset p;
    p.order("t1", "proc");
    p.order("t2", "proc");
    p.order("proc", "user");
    auto mins = p.minimal();
    auto maxs = p.maximal();
    EXPECT_EQ(mins.size(), 2u);
    ASSERT_EQ(maxs.size(), 1u);
    EXPECT_EQ(maxs[0], "user");
}

TEST(Poset, HasseEdgesAreCovers)
{
    Poset p;
    p.order("a", "b");
    p.order("b", "c");
    p.order("a", "c"); // implied; must NOT appear as a Hasse edge
    auto edges = p.hasseEdges();
    EXPECT_EQ(edges.size(), 2u);
    for (const auto &[lo, hi] : edges)
        EXPECT_FALSE(lo == "a" && hi == "c");
}

TEST(Poset, MeetOfChainAndDiamond)
{
    Poset p;
    p.order("bot", "l");
    p.order("bot", "r");
    p.order("l", "top");
    p.order("r", "top");
    EXPECT_EQ(p.meet("l", "r"), "bot");
    EXPECT_EQ(p.meet("l", "top"), "l");
}

TEST(Poset, CanonicalTerpPosetShape)
{
    Poset p = makeCanonicalTerpPoset();
    EXPECT_TRUE(
        p.leq("thread-permission-control", "user-level-acl"));
    EXPECT_EQ(p.minimal().size(), 1u);
    EXPECT_EQ(p.maximal().size(), 1u);
    std::string dot = p.toDot();
    EXPECT_NE(dot.find("thread-permission-control"),
              std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

// --------------------------------------------------------- ew tracker

TEST(EwTracker, ProcessWindowsAndRates)
{
    EwTracker t;
    t.processOpen(1, 1000);
    t.processClose(1, 3000);
    t.processOpen(1, 5000);
    t.processClose(1, 6000);
    auto m = t.metricsFor(1, 10000, 1);
    EXPECT_EQ(m.ewCount, 2u);
    EXPECT_NEAR(m.ewAvgUs, cyclesToUs(1500), 1e-9);
    EXPECT_NEAR(m.ewMaxUs, cyclesToUs(2000), 1e-9);
    EXPECT_NEAR(m.er, 0.3, 1e-9);
}

TEST(EwTracker, ThreadWindows)
{
    EwTracker t;
    t.processOpen(1, 0);
    t.threadOpen(0, 1, 100);
    t.threadClose(0, 1, 300);
    t.threadOpen(1, 1, 200);
    t.threadClose(1, 1, 600);
    t.processClose(1, 1000);
    auto m = t.metricsFor(1, 1000, 2);
    EXPECT_EQ(m.tewCount, 2u);
    EXPECT_NEAR(m.tewAvgUs, cyclesToUs(300), 1e-9);
    EXPECT_NEAR(m.ter, 600.0 / (1000.0 * 2), 1e-9);
}

TEST(EwTracker, FinalizeClosesOpenWindows)
{
    EwTracker t;
    t.processOpen(1, 100);
    t.threadOpen(0, 1, 200);
    t.finalize(1100);
    auto m = t.metricsFor(1, 1100, 1);
    EXPECT_EQ(m.ewCount, 1u);
    EXPECT_EQ(m.tewCount, 1u);
    EXPECT_NEAR(m.ewMaxUs, cyclesToUs(1000), 1e-9);
}

TEST(EwTracker, GuardsAgainstMisuse)
{
    EwTracker t;
    EXPECT_THROW(t.processClose(1, 5), std::logic_error);
    t.processOpen(1, 0);
    EXPECT_THROW(t.processOpen(1, 1), std::logic_error);
    EXPECT_THROW(t.threadClose(0, 1, 2), std::logic_error);
}

TEST(EwTracker, MetricsAllAveragesOverPmos)
{
    EwTracker t;
    t.processOpen(1, 0);
    t.processClose(1, 1000);
    t.processOpen(2, 0);
    t.processClose(2, 3000);
    auto m = t.metricsAll(10000, 1);
    EXPECT_NEAR(m.er, (0.1 + 0.3) / 2, 1e-9);
    EXPECT_NEAR(m.ewMaxUs, cyclesToUs(3000), 1e-9);
}

// ------------------------------------ exposure provenance (blame)

TEST(EwTrackerBlame, SegmentsTileWindowBitExact)
{
    EwTracker t;
    t.setBlameTarget(100);
    t.processOpen(1, 100);
    t.threadOpen(0, 1, 100);
    t.threadClose(0, 1, 150);
    // Held [100,150) -> AppHold. Idle [150,300) splits at the
    // deadline 100+100=200: AppHold to the deadline, SweeperLag
    // past it. 100 + 100 == the 200-cycle window, bit-exactly.
    t.processClose(1, 300);
    EXPECT_EQ(t.blameTotal(1, BlameCause::AppHold), 100u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::SweeperLag), 100u);
    Cycles sum = 0;
    for (unsigned c = 0; c < numBlameCauses; ++c)
        sum += t.blameTotal(1, static_cast<BlameCause>(c));
    EXPECT_EQ(sum, 200u);
}

TEST(EwTrackerBlame, ZeroTargetDisablesDeadlineSplit)
{
    EwTracker t; // blameTarget defaults to 0
    t.processOpen(1, 0);
    t.processClose(1, 5000);
    EXPECT_EQ(t.blameTotal(1, BlameCause::AppHold), 5000u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::SweeperLag), 0u);
}

TEST(EwTrackerBlame, HoldCauseOverridesHeldSpans)
{
    EwTracker t;
    t.setBlameTarget(1000);
    t.processOpen(1, 0);
    t.threadOpen(0, 1, 0);
    t.setHoldCause(1, BlameCause::SlowClientHold, 200);
    t.clearHoldCause(1, 600);
    t.threadClose(0, 1, 700);
    t.processClose(1, 800);
    EXPECT_EQ(t.blameTotal(1, BlameCause::SlowClientHold), 400u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::AppHold), 400u);
}

TEST(EwTrackerBlame, EnergyDarkBeatsQueueWaitBeatsDeadline)
{
    EwTracker t;
    t.setBlameTarget(100);
    t.processOpen(1, 0);
    // Idle from the start; queued work from 300; dark from 600.
    // Priority per span: dark > idle override > deadline split.
    t.setIdleCause(1, BlameCause::QueueWait, 300);
    t.setEnergyDark(true, 600);
    t.setEnergyDark(false, 900);
    t.processClose(1, 1000);
    // [0,100) AppHold (pre-deadline), [100,300) SweeperLag,
    // [300,600) QueueWait, [600,900) EnergyDark, [900,1000)
    // QueueWait again (override still installed).
    EXPECT_EQ(t.blameTotal(1, BlameCause::AppHold), 100u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::SweeperLag), 200u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::QueueWait), 400u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::EnergyDark), 300u);
}

TEST(EwTrackerBlame, RecoveryReopenIsTheIdleBase)
{
    EwTracker t;
    t.setBlameTarget(100);
    t.setRecoveryActive(true);
    t.processOpen(1, 0);
    t.setRecoveryActive(false);
    t.processClose(1, 300);
    // The recovery pass reopened the window; nobody held it. Up to
    // the deadline that's RecoveryReopen, past it SweeperLag.
    EXPECT_EQ(t.blameTotal(1, BlameCause::RecoveryReopen), 100u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::SweeperLag), 200u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::AppHold), 0u);
}

TEST(EwTrackerBlame, ExternalHoldCountsAsHeld)
{
    EwTracker t;
    t.setBlameTarget(100);
    t.processOpen(1, 0);
    t.setExternalHold(1, true, 0);
    t.setExternalHold(1, false, 500);
    t.processClose(1, 600);
    // Held (manual span) [0,500) -> AppHold; idle [500,600) is all
    // past the deadline -> SweeperLag.
    EXPECT_EQ(t.blameTotal(1, BlameCause::AppHold), 500u);
    EXPECT_EQ(t.blameTotal(1, BlameCause::SweeperLag), 100u);
}

TEST(EwTrackerBlame, SegmentHookSeesTruncatedSegments)
{
    EwTracker t;
    t.setBlameTarget(100);
    std::vector<std::pair<Cycles, BlameCause>> got;
    t.setSegmentHook([&](pm::PmoId, Cycles end, BlameCause c) {
        got.push_back({end, c});
    });
    t.processOpen(1, 0);
    t.threadOpen(0, 1, 0);
    // The thread's clock ran ahead of the sweeper's close time: the
    // flush extends to 500, but the close at 400 must truncate.
    t.threadClose(0, 1, 500);
    t.processClose(1, 400);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].first, 400u);
    EXPECT_EQ(got[0].second, BlameCause::AppHold);
    EXPECT_EQ(t.blameTotal(1, BlameCause::AppHold), 400u);
}

TEST(EwTrackerBlame, CloseHookReportsWindowLength)
{
    EwTracker t;
    std::vector<std::pair<Cycles, Cycles>> closes;
    t.setCloseHook([&](pm::PmoId, Cycles at, Cycles len) {
        closes.push_back({at, len});
    });
    t.processOpen(1, 100);
    t.processClose(1, 350);
    t.processOpen(1, 400);
    t.finalize(1000);
    ASSERT_EQ(closes.size(), 2u);
    EXPECT_EQ(closes[0], (std::pair<Cycles, Cycles>{350, 250}));
    EXPECT_EQ(closes[1], (std::pair<Cycles, Cycles>{1000, 600}));
}

TEST(EwTrackerBlame, TenantLabeledCounters)
{
    metrics::Registry reg;
    EwTracker t;
    t.enableMetrics(&reg);
    t.setTenant(1, "acme");
    t.processOpen(1, 0);
    t.processClose(1, 700);
    const metrics::Counter *c = reg.findCounter(
        "exposure.blame_total{cause=\"app_hold\",tenant=\"acme\"}");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 700u);
}

TEST(EwTrackerBlame, SloViolationsCountOncePerClosedWindow)
{
    // The crash/recover shape at the tracker level: a long window
    // closed by the crash counts one EW SLO violation; the window
    // the recovery pass reopens is a *new* window and only counts
    // if it exceeds the SLO on its own. No double counting of the
    // pre-crash span.
    EwTracker t;
    t.setSlo(500, 0);
    t.processOpen(1, 0);
    t.processClose(1, 1000); // crash close: violation #1
    EXPECT_EQ(t.sloEwViolations(), 1u);
    t.resetTransientCauses();
    t.setRecoveryActive(true);
    t.processOpen(1, 1000); // recovery reopen
    t.setRecoveryActive(false);
    t.processClose(1, 1200); // 200 < 500: no new violation
    EXPECT_EQ(t.sloEwViolations(), 1u);
    t.processOpen(1, 2000);
    t.processClose(1, 2800); // 800 > 500: its own violation
    EXPECT_EQ(t.sloEwViolations(), 2u);
}

// --------------------------------------- the four semantics (Fig 3)

namespace {

/** The Fig 3 event script: attach, access, detach, access, attach,
 *  attach (nested), access, detach, detach. All on thread 0. */
enum class Ev { At, De, Ac };
const std::vector<Ev> fig3Script = {Ev::At, Ev::Ac, Ev::De, Ev::Ac,
                                    Ev::At, Ev::At, Ev::Ac, Ev::De,
                                    Ev::De};

std::vector<Verdict>
runScript(AttachSemantics &sem, const std::vector<Ev> &script,
          unsigned tid = 0)
{
    std::vector<Verdict> out;
    Cycles t = 0;
    for (Ev e : script) {
        t += 10;
        switch (e) {
          case Ev::At:
            out.push_back(sem.onAttach(tid, 1, t));
            break;
          case Ev::De:
            out.push_back(sem.onDetach(tid, 1, t));
            break;
          case Ev::Ac:
            out.push_back(sem.onAccess(tid, 1, t));
            break;
        }
    }
    return out;
}

} // namespace

TEST(Fig3, BasicSemanticsPoisonsAfterDoubleAttach)
{
    BasicSemantics sem;
    auto v = runScript(sem, fig3Script);
    std::vector<Verdict> expect = {
        Verdict::Performed, Verdict::Valid,   Verdict::Performed,
        Verdict::Invalid,   Verdict::Performed, Verdict::Invalid,
        Verdict::Undefined, Verdict::Undefined, Verdict::Undefined};
    EXPECT_EQ(v, expect);
}

TEST(Fig3, OutermostSilencesInnerPairs)
{
    OutermostSemantics sem;
    auto v = runScript(sem, fig3Script);
    std::vector<Verdict> expect = {
        Verdict::Performed, Verdict::Valid,  Verdict::Performed,
        Verdict::SegFault,  Verdict::Performed, Verdict::Silent,
        Verdict::Valid,     Verdict::Silent, Verdict::Performed};
    EXPECT_EQ(v, expect);
}

TEST(Fig3, FcfsReattachesOnAccessAfterEarlyDetach)
{
    FcfsSemantics sem;
    auto v = runScript(sem, fig3Script);
    std::vector<Verdict> expect = {
        Verdict::Performed, Verdict::Valid,  Verdict::Performed,
        Verdict::SegFault,  Verdict::Performed, Verdict::Silent,
        Verdict::Valid,     Verdict::Performed, Verdict::Silent};
    EXPECT_EQ(v, expect);

    // The hallmark FCFS case: access between the performed detach
    // and the outermost detach triggers an automatic re-attach.
    FcfsSemantics sem2;
    EXPECT_EQ(sem2.onAttach(0, 1, 0), Verdict::Performed);
    EXPECT_EQ(sem2.onAttach(0, 1, 1), Verdict::Silent);
    EXPECT_EQ(sem2.onDetach(0, 1, 2), Verdict::Performed);
    EXPECT_EQ(sem2.onAccess(0, 1, 3), Verdict::Reattach);
    EXPECT_EQ(sem2.onDetach(0, 1, 4), Verdict::Performed);
}

TEST(Fig3, EwConsciousLowersAndRejectsSameThreadOverlap)
{
    // Large L: detaches lower to permission revokes.
    EwConsciousSemantics sem(usToCycles(1000.0));
    EXPECT_EQ(sem.onAttach(0, 1, 10), Verdict::Performed);
    EXPECT_EQ(sem.onAccess(0, 1, 20), Verdict::Valid);
    EXPECT_EQ(sem.onDetach(0, 1, 30), Verdict::Silent);
    EXPECT_TRUE(sem.mapped(1)); // window combining: stays mapped
    // Without permission the access is denied (not a segfault).
    EXPECT_EQ(sem.onAccess(0, 1, 40), Verdict::Invalid);
    EXPECT_EQ(sem.onAttach(0, 1, 50), Verdict::Silent);
    // Same-thread overlapping pair is invalid (Section IV-C).
    EXPECT_EQ(sem.onAttach(0, 1, 60), Verdict::Invalid);
}

TEST(Fig3, EwConsciousRealDetachNeedsSpanAndNoHolders)
{
    EwConsciousSemantics sem(100);
    sem.onAttach(0, 1, 0);
    sem.onAttach(1, 1, 10);
    // Span exceeded but thread 1 still holds: lowered.
    EXPECT_EQ(sem.onDetach(0, 1, 500), Verdict::Silent);
    EXPECT_TRUE(sem.mapped(1));
    // Last holder leaves after the span: real detach.
    EXPECT_EQ(sem.onDetach(1, 1, 600), Verdict::Performed);
    EXPECT_FALSE(sem.mapped(1));
    EXPECT_EQ(sem.onAccess(0, 1, 700), Verdict::SegFault);
}

TEST(Fig4, EwConsciousThreeThreadWalkthrough)
{
    EwConsciousSemantics sem(0); // span condition always met
    // Thread 1 attaches read-only; PMO was unmapped -> performed.
    EXPECT_EQ(sem.onAttach(1, 1, 0, pm::Mode::Read),
              Verdict::Performed);
    // ld A permitted; st B denied (insufficient thread permission).
    EXPECT_EQ(sem.onAccess(1, 1, 1, false), Verdict::Valid);
    EXPECT_EQ(sem.onAccess(1, 1, 2, true), Verdict::Invalid);
    // Thread 2 attaches read-write -> lowered; st B permitted.
    EXPECT_EQ(sem.onAttach(2, 1, 3, pm::Mode::ReadWrite),
              Verdict::Silent);
    EXPECT_EQ(sem.onAccess(2, 1, 4, true), Verdict::Valid);
    // Thread 1 detach: removes its permission, no real detach
    // (thread 2 can still access).
    EXPECT_EQ(sem.onDetach(1, 1, 5), Verdict::Silent);
    EXPECT_TRUE(sem.mapped(1));
    // Thread 1's subsequent ld C is denied.
    EXPECT_EQ(sem.onAccess(1, 1, 6, false), Verdict::Invalid);
    // Thread 2 detach: real detach; st C segfaults.
    EXPECT_EQ(sem.onDetach(2, 1, 7), Verdict::Performed);
    EXPECT_EQ(sem.onAccess(2, 1, 8, true), Verdict::SegFault);
    // Thread 3 never attached: all accesses invalid.
    EXPECT_EQ(sem.onAccess(3, 1, 9, false), Verdict::SegFault);
}

TEST(Semantics, FactoryProducesRequestedKind)
{
    for (auto k :
         {SemanticsKind::Basic, SemanticsKind::Outermost,
          SemanticsKind::Fcfs, SemanticsKind::EwConscious}) {
        auto sem = AttachSemantics::make(k);
        EXPECT_EQ(sem->kind(), k);
    }
}

// Property: under every semantics, a well-formed single-threaded
// nest of attach..detach pairs never yields Invalid/Undefined, and
// the PMO ends unmapped (after enough detaches, for EW with L=0).
class WellFormedNestTest
    : public ::testing::TestWithParam<SemanticsKind>
{
};

TEST_P(WellFormedNestTest, NestedPairsBehaveUnderAllButBasic)
{
    auto sem = AttachSemantics::make(GetParam(), 0);
    Rng rng(99);
    int depth = 0;
    Cycles t = 0;
    for (int i = 0; i < 500; ++i) {
        t += 10;
        bool open = depth == 0 || (depth < 3 && rng.nextBool(0.5));
        // Basic and EW-conscious forbid same-thread overlap.
        if (GetParam() == SemanticsKind::Basic ||
            GetParam() == SemanticsKind::EwConscious) {
            open = depth == 0;
        }
        if (open) {
            Verdict v = sem->onAttach(0, 1, t);
            EXPECT_NE(v, Verdict::Invalid);
            EXPECT_NE(v, Verdict::Undefined);
            ++depth;
        } else {
            Verdict v = sem->onDetach(0, 1, t);
            EXPECT_NE(v, Verdict::Invalid);
            EXPECT_NE(v, Verdict::Undefined);
            --depth;
        }
        if (depth > 0) {
            Verdict av = sem->onAccess(0, 1, t + 1);
            // FCFS may auto-reattach after its early real detach.
            EXPECT_TRUE(av == Verdict::Valid ||
                        av == Verdict::Reattach);
        }
    }
    while (depth-- > 0)
        sem->onDetach(0, 1, t += 10);
    EXPECT_FALSE(sem->mapped(1));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WellFormedNestTest,
    ::testing::Values(SemanticsKind::Basic, SemanticsKind::Outermost,
                      SemanticsKind::Fcfs,
                      SemanticsKind::EwConscious));

// ------------------------------------------------------------ theorem

TEST(Theorem, ShortMovingWindowsPreventAttack)
{
    std::vector<StationaryWindow> h = {
        {0, 50, 0xA000}, {100, 160, 0xB000}, {200, 240, 0xC000}};
    EXPECT_EQ(maxStationaryExposure(h), 60u);
    EXPECT_TRUE(attackPrevented(h, 61));
    EXPECT_FALSE(attackPrevented(h, 60));
}

TEST(Theorem, StationaryWindowsCoalesce)
{
    // The region did not move between windows: probing progress
    // carries over, so the spans add up.
    std::vector<StationaryWindow> h = {
        {0, 50, 0xA000}, {100, 160, 0xA000}, {200, 240, 0xB000}};
    EXPECT_EQ(maxStationaryExposure(h), 110u);
    EXPECT_FALSE(attackPrevented(h, 100));
    EXPECT_TRUE(attackPrevented(h, 111));
}

TEST(Theorem, EmptyHistoryIsSafe)
{
    EXPECT_TRUE(attackPrevented({}, 1));
}
