/**
 * @file
 * Fused-vs-unfused differential tests and sweeper-generation scan
 * accounting.
 *
 * Superinstruction fusion (TERP_FUSE) is a pure dispatch-count
 * optimization: fused handlers replay their constituents' bodies
 * verbatim and charge the identical Table-2 cycle sum, so every
 * observable — simulated cycles, overhead report, exposure metrics —
 * must be bit-identical with fusion on and off. These tests pin that
 * equivalence on the SPEC surrogates and on the differential fuzzer,
 * and separately assert that fusion actually fires (the equivalence
 * test would pass vacuously if decode never emitted a fused op).
 *
 * The sweeper-generation tests pin the O(active) property: an idle
 * fleet tick visits only mapped PMOs (host.sweep_pmo_scans counts
 * per-PMO deadline checks), not the whole map table.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/fuzzer.hh"
#include "compiler/interp.hh"
#include "core/runtime.hh"
#include "metrics/registry.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"
#include "workloads/spec.hh"

using namespace terp;

namespace {

/** Scoped TERP_FUSE override; restores the prior value on exit. */
class FuseEnv
{
  public:
    explicit FuseEnv(bool on)
    {
        const char *prev = std::getenv("TERP_FUSE");
        had = prev != nullptr;
        if (had)
            saved = prev;
        setenv("TERP_FUSE", on ? "1" : "0", 1);
    }
    ~FuseEnv()
    {
        if (had)
            setenv("TERP_FUSE", saved.c_str(), 1);
        else
            unsetenv("TERP_FUSE");
    }

  private:
    bool had = false;
    std::string saved;
};

/** Everything a run can observe, flattened for exact comparison. */
struct Observables
{
    Cycles total = 0;
    Cycles work = 0, attach = 0, detach = 0, rand = 0, cond = 0,
           other = 0;
    std::uint64_t attachSys = 0, detachSys = 0, randomizations = 0;
    double ewAvgUs = 0, ewMaxUs = 0, er = 0;
    std::uint64_t ewCount = 0, tewCount = 0;

    bool
    operator==(const Observables &o) const
    {
        return total == o.total && work == o.work &&
               attach == o.attach && detach == o.detach &&
               rand == o.rand && cond == o.cond && other == o.other &&
               attachSys == o.attachSys && detachSys == o.detachSys &&
               randomizations == o.randomizations &&
               ewAvgUs == o.ewAvgUs && ewMaxUs == o.ewMaxUs &&
               er == o.er && ewCount == o.ewCount &&
               tewCount == o.tewCount;
    }
};

Observables
runOne(const std::string &kernel, bool fuse)
{
    FuseEnv env(fuse);
    workloads::SpecParams p;
    p.threads = 2;
    p.scale = 0.05;
    workloads::RunResult r = workloads::runSpec(
        kernel, core::RuntimeConfig::tt(usToCycles(40)), p);
    Observables o;
    o.total = r.totalCycles;
    o.work = r.report.work;
    o.attach = r.report.attach;
    o.detach = r.report.detach;
    o.rand = r.report.rand;
    o.cond = r.report.cond;
    o.other = r.report.other;
    o.attachSys = r.report.attachSyscalls;
    o.detachSys = r.report.detachSyscalls;
    o.randomizations = r.report.randomizations;
    o.ewAvgUs = r.exposure.ewAvgUs;
    o.ewMaxUs = r.exposure.ewMaxUs;
    o.er = r.exposure.er;
    o.ewCount = r.exposure.ewCount;
    o.tewCount = r.exposure.tewCount;
    return o;
}

} // namespace

// ------------------------------------------------ fused == unfused

TEST(FusionDifferential, SpecKernelsBitIdenticalAcrossModes)
{
    for (const std::string &kernel : workloads::specNames()) {
        Observables off = runOne(kernel, false);
        Observables on = runOne(kernel, true);
        EXPECT_TRUE(off == on)
            << kernel << ": fused run diverged from unfused "
            << "(total " << off.total << " vs " << on.total << ")";
    }
}

TEST(FusionDifferential, FusionActuallyFires)
{
    // Guard against the equivalence test passing vacuously: with
    // TERP_FUSE_STATS on, a fused run must report peephole fused
    // dispatches, and an unfused run must report none. Kind 0
    // (addrun) predates peephole fusion and executes in both modes,
    // so only kinds 1.. are compared.
    setenv("TERP_FUSE_STATS", "1", 1);
    for (bool fuse : {true, false}) {
        FuseEnv env(fuse);
        workloads::SpecParams p;
        p.scale = 0.05;
        workloads::RunResult r = workloads::runSpec(
            "mcf", core::RuntimeConfig::tt(usToCycles(40)), p);
        ASSERT_TRUE(r.metrics);
        std::uint64_t peephole = 0;
        for (unsigned k = 1; k < compiler::Interpreter::kFusionKinds;
             ++k) {
            const metrics::Counter *c = r.metrics->findCounter(
                metrics::labeled("interp.fused_dispatches", "kind",
                                 compiler::Interpreter::fusionKindName(
                                     k)));
            peephole += c ? c->value() : 0;
        }
        if (fuse) {
            EXPECT_GT(peephole, 0u)
                << "fused run dispatched no peephole superinstruction";
            const metrics::Counter *s =
                r.metrics->findCounter("interp.fusion_candidates");
            ASSERT_NE(s, nullptr);
            EXPECT_GT(s->value(), 0u);
        } else {
            EXPECT_EQ(peephole, 0u)
                << "unfused run dispatched a fused superinstruction";
        }
    }
    unsetenv("TERP_FUSE_STATS");
}

TEST(FusionDifferential, FuzzMatrixCleanUnderBothModes)
{
    for (bool fuse : {false, true}) {
        FuseEnv env(fuse);
        check::FuzzOptions opt;
        opt.seeds = 8;
        opt.shrink = false;
        check::FuzzResult res = check::fuzz(opt);
        for (const check::Divergence &d : res.divergences) {
            std::string detail;
            for (const std::string &c : d.complaints)
                detail += "  " + c + "\n";
            ADD_FAILURE()
                << "TERP_FUSE=" << fuse << " " << d.scheme << " seed "
                << d.seed << " diverged:\n"
                << detail;
        }
    }
}

// ------------------------------------------ sweeper generations

namespace {

struct FleetRig
{
    sim::Machine mach;
    pm::PmoManager pmos;
    std::vector<pm::PmoId> ids;
    std::unique_ptr<core::Runtime> rt;
    sim::ThreadContext *tc;

    // MM takes the MERR software-timer sweep path (TT's default
    // routes through the circular buffer, which is already O(queue)).
    explicit FleetRig(unsigned n) : pmos(7)
    {
        for (unsigned i = 0; i < n; ++i)
            ids.push_back(
                pmos.create("p" + std::to_string(i), 64 * KiB).id());
        rt = std::make_unique<core::Runtime>(
            mach, pmos, core::RuntimeConfig::mm(usToCycles(40)));
        mach.spawnThread();
        tc = &mach.thread(0);
    }

    std::uint64_t
    scans() const
    {
        const metrics::Counter *c =
            rt->metricsRegistry()->findCounter("host.sweep_pmo_scans");
        return c ? c->value() : 0;
    }
};

} // namespace

TEST(SweeperGenerations, IdleFleetTickVisitsNothing)
{
    FleetRig r(1000);
    std::uint64_t before = r.scans();
    for (int i = 0; i < 5; ++i)
        r.rt->onSweep(usToCycles(10 * (i + 1)));
    EXPECT_EQ(r.scans() - before, 0u)
        << "a tick with no mapped PMOs must scan no map state";
}

TEST(SweeperGenerations, TickScansOnlyMappedPmos)
{
    FleetRig r(1000);
    r.rt->manualBegin(*r.tc, r.ids[123], pm::Mode::ReadWrite);
    std::uint64_t before = r.scans();
    r.rt->onSweep(usToCycles(10));
    EXPECT_EQ(r.scans() - before, 1u)
        << "one mapped PMO in a 1000-PMO fleet must cost one scan";

    r.rt->manualBegin(*r.tc, r.ids[777], pm::Mode::ReadWrite);
    before = r.scans();
    r.rt->onSweep(usToCycles(20));
    EXPECT_EQ(r.scans() - before, 2u);

    r.rt->manualEnd(*r.tc, r.ids[123]);
    r.rt->manualEnd(*r.tc, r.ids[777]);
    before = r.scans();
    r.rt->onSweep(usToCycles(30));
    EXPECT_EQ(r.scans() - before, 0u)
        << "detached PMOs must drop back out of the scan set";
}

TEST(SweeperGenerations, DeadlineCacheStillFiresSweeps)
{
    // The scanGen/sweepDeadline cache must not suppress an actual
    // overstay: after the EW target passes, the sweeper still acts
    // (here: re-randomizes a window its holder overstayed), and the
    // randomization bumps the generation so the next scan re-derives
    // the deadline rather than reusing the stale one.
    FleetRig r(8);
    r.rt->manualBegin(*r.tc, r.ids[0], pm::Mode::ReadWrite);
    std::uint64_t base = r.pmos.pmo(r.ids[0]).vaddrBase();
    r.tc->work(usToCycles(60)); // overstay the 40us target
    r.rt->onSweep(usToCycles(50));
    EXPECT_TRUE(r.rt->mapped(r.ids[0]));
    EXPECT_NE(r.pmos.pmo(r.ids[0]).vaddrBase(), base);

    // A second tick before the refreshed deadline must do nothing.
    base = r.pmos.pmo(r.ids[0]).vaddrBase();
    r.rt->onSweep(usToCycles(55));
    EXPECT_EQ(r.pmos.pmo(r.ids[0]).vaddrBase(), base);
    r.rt->manualEnd(*r.tc, r.ids[0]);
}
