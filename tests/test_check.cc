/**
 * @file
 * Tests for the differential fuzz harness (src/check) and regression
 * tests for the runtime bugs it flushed out:
 *   1. RegionGuard ran regionEnd after a blocked (never entered)
 *      begin under the basic-blocking ablation;
 *   2. accessRange ignored the start offset when counting touched
 *      cache lines;
 *   3. TM reported silentFraction == 0 despite eliding mapping
 *      syscalls (and nested lowered calls missed perm_syscalls);
 *   4. the post-run sweeper drain charged an already-finished
 *      thread for the delayed detach;
 *   5. a lowered attach with a broader mode than the mapping's did
 *      not widen the process permission (Fig 4's attach(RW) after
 *      attach(R)).
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/differ.hh"
#include "check/fuzzer.hh"
#include "check/oracle.hh"
#include "check/schedule.hh"
#include "check/shrink.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

using namespace terp;

namespace {

struct Rig
{
    sim::Machine mach;
    pm::PmoManager pmos;
    pm::PmoId pmo;
    std::unique_ptr<core::Runtime> rt;

    explicit Rig(const core::RuntimeConfig &cfg, unsigned threads = 1)
        : pmos(7)
    {
        pmo = pmos.create("test", 64 * KiB).id();
        rt = std::make_unique<core::Runtime>(mach, pmos, cfg);
        for (unsigned i = 0; i < threads; ++i)
            mach.spawnThread();
    }
};

} // namespace

// ------------------------------------------------ satellite regressions

TEST(CheckRegression, RegionGuardSkipsEndWhenBlocked)
{
    Rig r(core::RuntimeConfig::basicSemantics(), 2);
    sim::ThreadContext &t0 = r.mach.thread(0);
    sim::ThreadContext &t1 = r.mach.thread(1);

    ASSERT_EQ(r.rt->regionBegin(t0, r.pmo, pm::Mode::ReadWrite),
              core::GuardResult::Ok);
    {
        core::RegionGuard g(*r.rt, t1, r.pmo, pm::Mode::ReadWrite);
        EXPECT_FALSE(g.entered());
        // Destructor must not run regionEnd for the never-entered
        // region (it used to, tripping the non-owner assertion).
    }
    EXPECT_TRUE(t1.blocked());
    r.rt->regionEnd(t0, r.pmo);
    EXPECT_FALSE(t1.blocked());
}

TEST(CheckRegression, AccessRangeCountsOverlappedLines)
{
    Rig r(core::RuntimeConfig::tm());
    sim::ThreadContext &t0 = r.mach.thread(0);
    r.rt->regionBegin(t0, r.pmo, pm::Mode::ReadWrite);

    // The only Other charge per access is the 1-cycle permission
    // matrix check, so the Other delta counts touched lines exactly.
    Cycles o0 = t0.charged(sim::Charge::Other);
    r.rt->accessRange(t0, pm::Oid(r.pmo, 32), 64, true);
    EXPECT_EQ(t0.charged(sim::Charge::Other) - o0, 2u)
        << "64B starting mid-line spans two cache lines";

    o0 = t0.charged(sim::Charge::Other);
    r.rt->accessRange(t0, pm::Oid(r.pmo, 64), 64, true);
    EXPECT_EQ(t0.charged(sim::Charge::Other) - o0, 1u);

    o0 = t0.charged(sim::Charge::Other);
    r.rt->accessRange(t0, pm::Oid(r.pmo, 63), 2, false);
    EXPECT_EQ(t0.charged(sim::Charge::Other) - o0, 2u)
        << "2B straddling a line boundary touches both lines";

    r.rt->regionEnd(t0, r.pmo);
}

TEST(CheckRegression, TmReportsNonzeroSilentFraction)
{
    Rig r(core::RuntimeConfig::tm());
    sim::ThreadContext &t0 = r.mach.thread(0);

    r.rt->regionBegin(t0, r.pmo, pm::Mode::ReadWrite); // real attach
    r.rt->regionBegin(t0, r.pmo, pm::Mode::ReadWrite); // nested
    r.rt->regionEnd(t0, r.pmo);                        // nested
    r.rt->regionEnd(t0, r.pmo); // outermost, EW young -> delayed

    // 3 lowered kernel calls (nested begin/end + delayed outer end)
    // against 1 real attach syscall.
    EXPECT_DOUBLE_EQ(r.rt->report().silentFraction, 0.75);
}

TEST(CheckRegression, DrainSweepChargesNoFinishedThread)
{
    Rig r(core::RuntimeConfig::tm());
    sim::ThreadContext &t0 = r.mach.thread(0);

    r.rt->regionBegin(t0, r.pmo, pm::Mode::ReadWrite);
    r.rt->regionEnd(t0, r.pmo); // EW young -> delayed detach
    ASSERT_TRUE(r.rt->mapped(r.pmo));

    Cycles clk = t0.now();
    t0.done = true;
    r.rt->onSweep(t0.now() + r.rt->config().ewTarget + 1);

    EXPECT_FALSE(r.rt->mapped(r.pmo));
    EXPECT_EQ(t0.now(), clk)
        << "post-run drain must not bill a finished thread";
}

TEST(CheckRegression, LoweredAttachWidensProcessPermission)
{
    Rig r(core::RuntimeConfig::tm(), 2);
    sim::ThreadContext &t0 = r.mach.thread(0);
    sim::ThreadContext &t1 = r.mach.thread(1);

    r.rt->regionBegin(t0, r.pmo, pm::Mode::Read);      // maps R
    r.rt->regionBegin(t1, r.pmo, pm::Mode::ReadWrite); // lowered
    // Fig 4: T2's store after attach(RW) must be legal even though
    // the mapping was created by T1's attach(R).
    EXPECT_EQ(r.rt->tryAccess(t1, pm::Oid(r.pmo, 0), true),
              core::AccessOutcome::Ok);
    EXPECT_EQ(r.rt->tryAccess(t0, pm::Oid(r.pmo, 0), true),
              core::AccessOutcome::NoThreadPerm);
    r.rt->regionEnd(t1, r.pmo);
    r.rt->regionEnd(t0, r.pmo);
}

// ------------------------------------------------------- harness itself

TEST(CheckHarness, GenerationIsDeterministic)
{
    check::GenParams p;
    core::RuntimeConfig cfg = check::schemeConfig("tt", p.ewTarget);
    check::Schedule a = check::generate(42, cfg, p);
    check::Schedule b = check::generate(42, cfg, p);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i)
        EXPECT_EQ(check::describeOp(a.ops[i]),
                  check::describeOp(b.ops[i]));
    check::Schedule c = check::generate(43, cfg, p);
    bool same = a.ops.size() == c.ops.size();
    for (std::size_t i = 0; same && i < a.ops.size(); ++i)
        same = check::describeOp(a.ops[i]) ==
               check::describeOp(c.ops[i]);
    EXPECT_FALSE(same) << "different seeds must differ";
}

TEST(CheckHarness, EverySchemeHasAConfig)
{
    for (const std::string &name : check::allSchemes()) {
        core::RuntimeConfig cfg =
            check::schemeConfig(name, 5 * cyclesPerUs);
        EXPECT_EQ(cfg.ewTarget, 5 * cyclesPerUs) << name;
    }
    EXPECT_THROW(check::schemeConfig("bogus", 1),
                 std::invalid_argument);
}

TEST(CheckHarness, OracleMapsSchemesToSpecModels)
{
    // tt/tm -> EW-conscious, ttnc -> outermost, mm/basic -> basic:
    // indirectly visible through a single clean replay per scheme.
    check::GenParams p;
    p.events = 30;
    for (const std::string &name : check::allSchemes()) {
        core::RuntimeConfig cfg =
            check::schemeConfig(name, p.ewTarget);
        check::Schedule s = check::generate(7, cfg, p);
        check::DiffResult d = check::runSchedule(s, cfg);
        EXPECT_TRUE(d.ok) << name << ": " << (d.complaints.empty()
                                                  ? ""
                                                  : d.complaints[0]);
    }
}

TEST(CheckHarness, ShrinkReturnsCleanScheduleUnchanged)
{
    check::GenParams p;
    p.events = 20;
    core::RuntimeConfig cfg = check::schemeConfig("tm", p.ewTarget);
    check::Schedule s = check::generate(3, cfg, p);
    ASSERT_TRUE(check::runSchedule(s, cfg).ok);
    check::Schedule m = check::shrink(s, cfg);
    EXPECT_EQ(m.ops.size(), s.ops.size());
}

// --------------------------------------------- differential regression

TEST(CheckDifferential, TwoHundredSeedsPerSchemeStayClean)
{
    check::FuzzOptions opt;
    opt.seeds = 200;
    opt.shrink = true;

    check::FuzzResult res = check::fuzz(opt);
    EXPECT_EQ(res.executed, 1000u);
    for (const check::Divergence &d : res.divergences) {
        std::string detail;
        for (const std::string &c : d.complaints)
            detail += "  " + c + "\n";
        ADD_FAILURE() << d.scheme << " seed " << d.seed
                      << " diverged:\n"
                      << detail << d.reproducer;
    }
}
