/**
 * @file
 * Tests for the src/trace subsystem: ring-buffer wrap/drop
 * semantics, the no-op guarantee when tracing is disabled, the event
 * taxonomy emitted by the runtime, sweeper-path event ordering, event
 * ordering under the multi-threaded SPEC surrogate, and the timeline
 * auditor's differential check against EwTracker across every scheme
 * and both attach-semantics styles.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"
#include "trace/audit.hh"
#include "trace/export.hh"
#include "workloads/spec.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::core;
using trace::Event;
using trace::EventKind;

namespace {

struct Rig
{
    sim::Machine mach;
    pm::PmoManager pmos;
    pm::PmoId pmo;
    std::unique_ptr<Runtime> rt;
    sim::ThreadContext *tc;

    explicit Rig(const RuntimeConfig &cfg, unsigned threads = 1)
        : pmos(7)
    {
        pmo = pmos.create("test", 8 * MiB).id();
        rt = std::make_unique<Runtime>(mach, pmos, cfg);
        for (unsigned i = 0; i < threads; ++i)
            mach.spawnThread();
        tc = &mach.thread(0);
    }

    std::vector<Event> events() const { return rt->traceSink()->merged(); }

    std::vector<Event>
    eventsOfKind(EventKind k) const
    {
        std::vector<Event> out;
        for (const Event &e : events())
            if (e.kind == k)
                out.push_back(e);
        return out;
    }
};

std::uint64_t
countKind(const std::vector<Event> &es, EventKind k)
{
    return static_cast<std::uint64_t>(
        std::count_if(es.begin(), es.end(),
                      [&](const Event &e) { return e.kind == k; }));
}

/** First event of the given kind, or nullptr. */
const Event *
firstOf(const std::vector<Event> &es, EventKind k)
{
    for (const Event &e : es)
        if (e.kind == k)
            return &e;
    return nullptr;
}

} // namespace

// ------------------------------------------------------- ring buffer

TEST(TraceBuffer, RetainsEverythingBelowCapacity)
{
    trace::TraceBuffer b(8);
    for (std::uint64_t i = 0; i < 5; ++i) {
        Event e;
        e.seq = i;
        b.push(e);
    }
    EXPECT_EQ(b.written(), 5u);
    EXPECT_EQ(b.dropped(), 0u);
    EXPECT_EQ(b.size(), 5u);
    std::vector<Event> es = b.events();
    ASSERT_EQ(es.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(es[i].seq, i);
}

TEST(TraceBuffer, WrapOverwritesOldestAndCountsDrops)
{
    trace::TraceBuffer b(4);
    for (std::uint64_t i = 0; i < 11; ++i) {
        Event e;
        e.seq = i;
        b.push(e);
    }
    EXPECT_EQ(b.written(), 11u);
    EXPECT_EQ(b.dropped(), 7u);
    EXPECT_EQ(b.size(), 4u);
    std::vector<Event> es = b.events();
    ASSERT_EQ(es.size(), 4u);
    // The newest four survive, oldest first.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(es[i].seq, 7 + i);
}

TEST(TraceSink, MergesAcrossThreadsInEmissionOrder)
{
    trace::TraceSink s(16);
    s.emit(0, EventKind::RegionBegin, 10, 1);
    s.emit(1, EventKind::RegionBegin, 5, 2);
    s.emit(0, EventKind::RegionEnd, 20, 1);
    s.emitKernel(EventKind::PmoMap, 3, 0xabc);
    std::vector<Event> es = s.merged();
    ASSERT_EQ(es.size(), 4u);
    for (std::size_t i = 0; i < es.size(); ++i)
        EXPECT_EQ(es[i].seq, i);
    // Kernel events are stamped with the latest time seen.
    EXPECT_EQ(es[3].tid, trace::TraceSink::kernelTid);
    EXPECT_EQ(es[3].ts, 20u);
    EXPECT_TRUE(s.complete());
}

TEST(TraceSink, DropAccountingAggregates)
{
    trace::TraceSink s(2);
    for (int i = 0; i < 5; ++i)
        s.emit(0, EventKind::SweepTick, static_cast<Cycles>(i));
    EXPECT_EQ(s.totalEmitted(), 5u);
    EXPECT_EQ(s.totalDropped(), 3u);
    EXPECT_FALSE(s.complete());
}

// ------------------------------------------- disabled = true no-op

TEST(TraceSwitch, DisabledAllocatesNoSink)
{
    Rig r(RuntimeConfig::tt());
    EXPECT_EQ(r.rt->traceSink(), nullptr);
}

TEST(TraceSwitch, TracingNeverPerturbsCycleTotals)
{
    // The acceptance bar for the whole subsystem: enabling tracing
    // must not move a single simulated cycle.
    for (const auto &cfg :
         {RuntimeConfig::mm(), RuntimeConfig::tm(),
          RuntimeConfig::tt()}) {
        workloads::WhisperParams p;
        p.sections = 40;
        workloads::RunResult off =
            workloads::runWhisper("hashmap", cfg, p);
        workloads::RunResult on =
            workloads::runWhisper("hashmap", cfg.withTrace(), p);
        EXPECT_EQ(off.totalCycles, on.totalCycles);
        EXPECT_EQ(off.report.total, on.report.total);
        EXPECT_EQ(off.report.attachSyscalls, on.report.attachSyscalls);
        EXPECT_EQ(off.report.randomizations, on.report.randomizations);
    }
}

// ------------------------------------------------- event taxonomy

TEST(TraceEvents, TtRegionEmitsAttachGrantRevoke)
{
    Rig r(RuntimeConfig::tt().withTrace());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.rt->access(*r.tc, pm::Oid(r.pmo, 64), true);
    r.rt->regionEnd(*r.tc, r.pmo);

    std::vector<Event> es = r.events();
    EXPECT_EQ(countKind(es, EventKind::RegionBegin), 1u);
    EXPECT_EQ(countKind(es, EventKind::RegionEnd), 1u);
    EXPECT_EQ(countKind(es, EventKind::RealAttach), 1u);
    EXPECT_EQ(countKind(es, EventKind::ThreadGrant), 1u);
    EXPECT_EQ(countKind(es, EventKind::ThreadRevoke), 1u);
    EXPECT_EQ(countKind(es, EventKind::PmoMap), 1u);
    // EW target not reached: the detach is deferred, not real.
    EXPECT_EQ(countKind(es, EventKind::RealDetach), 0u);
    const Event *sd = firstOf(es, EventKind::SilentDetach);
    ASSERT_NE(sd, nullptr);
    EXPECT_EQ(sd->arg, trace::silent::delayed);

    // A second region on the still-resident PMO combines silently.
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    std::vector<Event> es2 = r.events();
    const Event *sa = firstOf(es2, EventKind::SilentAttach);
    ASSERT_NE(sa, nullptr);
    EXPECT_EQ(sa->arg, trace::silent::combined);
}

TEST(TraceEvents, AccessFaultEmitted)
{
    Rig r(RuntimeConfig::tt().withTrace());
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), false),
              AccessOutcome::NoMapping);
    std::vector<Event> es = r.eventsOfKind(EventKind::AccessFault);
    ASSERT_EQ(es.size(), 1u);
    EXPECT_EQ(es[0].pmo, r.pmo);
    EXPECT_EQ(es[0].arg, static_cast<std::uint64_t>(
                             AccessOutcome::NoMapping));
}

TEST(TraceEvents, ManualBookendsTraced)
{
    Rig r(RuntimeConfig::mm().withTrace());
    r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.rt->manualEnd(*r.tc, r.pmo);
    std::vector<Event> es = r.events();
    EXPECT_EQ(countKind(es, EventKind::RegionBegin), 1u);
    EXPECT_EQ(countKind(es, EventKind::RealAttach), 1u);
    EXPECT_EQ(countKind(es, EventKind::RealDetach), 1u);
    EXPECT_EQ(countKind(es, EventKind::RegionEnd), 1u);
}

// ---------------------------------------------------- sweeper path

TEST(TraceSweeper, ForcedRandomizeWhileHeldThenDelayedDetach)
{
    // TM scheme, tiny EW target: end the region before the target so
    // the detach is deferred, then drive onSweep past the target and
    // expect the sweeper to apply the delayed detach.
    RuntimeConfig cfg = RuntimeConfig::tm(usToCycles(5));
    Rig r(cfg.withTrace());

    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.rt->regionEnd(*r.tc, r.pmo); // before target: deferred
    EXPECT_TRUE(r.rt->mapped(r.pmo));

    Cycles past = r.tc->now() + usToCycles(50);
    r.rt->onSweep(past);
    EXPECT_FALSE(r.rt->mapped(r.pmo));

    std::vector<Event> es = r.events();
    const Event *dd = firstOf(es, EventKind::DelayedDetach);
    const Event *rd = firstOf(es, EventKind::RealDetach);
    const Event *sd = firstOf(es, EventKind::SilentDetach);
    ASSERT_NE(dd, nullptr);
    ASSERT_NE(rd, nullptr);
    ASSERT_NE(sd, nullptr);
    // Order: the deferred (silent) detach at region end, then the
    // sweeper's delayed-detach application, then the real detach.
    EXPECT_LT(sd->seq, dd->seq);
    EXPECT_LT(dd->seq, rd->seq);
    EXPECT_EQ(dd->ts, past);
    EXPECT_EQ(countKind(es, EventKind::Randomize), 0u);

    // The audit must agree with the tracker even on forced paths.
    r.rt->finalize();
    trace::AuditReport a = trace::auditTimeline(
        *r.rt->traceSink(), r.mach.maxClock(), r.rt->exposure());
    EXPECT_TRUE(a.ok) << a.summary();
}

TEST(TraceSweeper, HeldPmoIsRandomizedInPlace)
{
    // A thread still inside the region when the target elapses: the
    // sweeper must re-randomize in place, not detach.
    RuntimeConfig cfg = RuntimeConfig::tm(usToCycles(5));
    Rig r(cfg.withTrace());

    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    Cycles past = r.tc->now() + usToCycles(50);
    r.rt->onSweep(past);
    EXPECT_TRUE(r.rt->mapped(r.pmo));

    std::vector<Event> es = r.events();
    const Event *rz = firstOf(es, EventKind::Randomize);
    ASSERT_NE(rz, nullptr);
    EXPECT_EQ(rz->ts, past);
    EXPECT_EQ(countKind(es, EventKind::DelayedDetach), 0u);
    EXPECT_EQ(countKind(es, EventKind::RealDetach), 0u);
    // The kernel track recorded the move.
    EXPECT_EQ(countKind(es, EventKind::PmoRemap), 1u);

    r.rt->regionEnd(*r.tc, r.pmo);
    r.rt->finalize();
    trace::AuditReport a = trace::auditTimeline(
        *r.rt->traceSink(), r.mach.maxClock(), r.rt->exposure());
    EXPECT_TRUE(a.ok) << a.summary();
}

TEST(TraceSweeper, TtSweepEventsOnSweeperTrack)
{
    // Full TT run: sweep ticks appear on the sweeper pseudo-track
    // and every forced action still audits clean.
    workloads::WhisperParams p;
    p.sections = 80;
    workloads::RunResult r = workloads::runWhisper(
        "ctree", RuntimeConfig::tt(usToCycles(10)).withTrace(), p);
    ASSERT_NE(r.trace, nullptr);
    std::vector<Event> es = r.trace->merged();
    EXPECT_GT(countKind(es, EventKind::SweepTick), 0u);
    for (const Event &e : es) {
        if (e.kind == EventKind::SweepTick)
            EXPECT_EQ(e.tid, trace::TraceSink::sweeperTid);
    }
    ASSERT_NE(r.traceAudit, nullptr);
    EXPECT_TRUE(r.traceAudit->ok) << r.traceAudit->summary();
}

// ------------------------------------- ordering under 4-thread SPEC

TEST(TraceOrdering, FourThreadSpecSurrogate)
{
    workloads::SpecParams p;
    p.threads = 4;
    p.scale = 0.25;
    workloads::RunResult r = workloads::runSpec(
        "mcf", RuntimeConfig::tt().withTrace(), p);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_TRUE(r.trace->complete());

    std::vector<Event> es = r.trace->merged();
    ASSERT_FALSE(es.empty());

    // seq is a strictly increasing total order.
    for (std::size_t i = 1; i < es.size(); ++i)
        EXPECT_LT(es[i - 1].seq, es[i].seq);

    // Per real thread, virtual time never goes backwards.
    std::map<std::uint32_t, Cycles> lastTs;
    std::map<std::uint32_t, std::uint64_t> perTid;
    for (const Event &e : es) {
        if (e.tid >= 4)
            continue;
        auto it = lastTs.find(e.tid);
        if (it != lastTs.end())
            EXPECT_GE(e.ts, it->second) << "tid " << e.tid;
        lastTs[e.tid] = e.ts;
        ++perTid[e.tid];
    }
    EXPECT_EQ(perTid.size(), 4u); // every thread emitted something

    // Regions balance per (thread, PMO).
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::int64_t>
        depth;
    for (const Event &e : es) {
        std::int64_t &d = depth[{e.tid, e.pmo}];
        if (e.kind == EventKind::RegionBegin)
            ++d;
        if (e.kind == EventKind::RegionEnd) {
            --d;
            EXPECT_GE(d, 0);
        }
    }
    for (const auto &[key, d] : depth)
        EXPECT_EQ(d, 0) << "tid " << key.first << " pmo "
                        << key.second;

    // Every thread got start/finish markers.
    EXPECT_EQ(countKind(es, EventKind::ThreadStart), 4u);
    EXPECT_EQ(countKind(es, EventKind::ThreadFinish), 4u);

    ASSERT_NE(r.traceAudit, nullptr);
    EXPECT_TRUE(r.traceAudit->ok) << r.traceAudit->summary();
}

// ------------------------- auditor vs EwTracker, all schemes

namespace {

void
expectAuditOk(const workloads::RunResult &r, const std::string &what)
{
    ASSERT_NE(r.trace, nullptr) << what;
    ASSERT_NE(r.traceAudit, nullptr) << what;
    EXPECT_TRUE(r.trace->complete()) << what;
    EXPECT_TRUE(r.traceAudit->ok)
        << what << ": " << r.traceAudit->summary();
}

} // namespace

TEST(TraceAudit, DifferentialWhisperAllSchemes)
{
    struct SchemeDef
    {
        const char *name;
        RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"unprotected", RuntimeConfig::unprotected()},
        {"mm", RuntimeConfig::mm()},
        {"tm", RuntimeConfig::tm()},
        {"tt", RuntimeConfig::tt()},
        {"tt-nocb", RuntimeConfig::ttNoCombining()},
        {"basic", RuntimeConfig::basicSemantics()},
    };
    workloads::WhisperParams p;
    p.sections = 60;
    for (const char *w : {"echo", "hashmap"}) {
        for (const SchemeDef &s : schemes) {
            workloads::RunResult r =
                workloads::runWhisper(w, s.cfg.withTrace(), p);
            expectAuditOk(r, std::string(w) + "/" + s.name);
        }
    }
}

TEST(TraceAudit, DifferentialSpecBothInsertionStyles)
{
    // Manual (MM) vs automatic (TM/TT) attach semantics on the
    // multi-PMO surrogates. MM manual sections don't refcount across
    // threads, so it runs single-threaded as in bench/table4_spec.
    for (const char *w : {"mcf", "xz"}) {
        for (const auto &cfg :
             {RuntimeConfig::mm(), RuntimeConfig::tm(),
              RuntimeConfig::tt()}) {
            workloads::SpecParams p;
            p.threads = cfg.scheme == Scheme::MM ? 1 : 4;
            p.scale = 0.2;
            workloads::RunResult r =
                workloads::runSpec(w, cfg.withTrace(), p);
            expectAuditOk(r, std::string(w) + "/" +
                                 schemeName(cfg.scheme));
        }
    }
}

TEST(TraceAudit, TamperedStreamIsCaught)
{
    Rig r(RuntimeConfig::tm(usToCycles(5)).withTrace());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.tc->work(usToCycles(10)); // exceed the EW target
    r.rt->regionEnd(*r.tc, r.pmo); // past target: real detach
    // Keep running after the detach so the missing-detach replay
    // cannot be papered over by the end-of-run closure.
    r.tc->work(usToCycles(10));
    r.rt->finalize();

    std::vector<Event> es = r.events();
    trace::AuditReport good = trace::auditEvents(
        es, true, r.mach.maxClock(), r.rt->exposure());
    EXPECT_TRUE(good.ok) << good.summary();

    // Drop the real detach: the recomputed EW must now disagree.
    std::vector<Event> tampered;
    bool dropped = false;
    for (const Event &e : es) {
        if (!dropped && e.kind == EventKind::RealDetach) {
            dropped = true;
            continue;
        }
        tampered.push_back(e);
    }
    ASSERT_TRUE(dropped);
    trace::AuditReport bad = trace::auditEvents(
        tampered, true, r.mach.maxClock(), r.rt->exposure());
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.mismatches.empty());

    // An incomplete (wrapped) trace must refuse to vouch.
    trace::AuditReport inc = trace::auditEvents(
        es, false, r.mach.maxClock(), r.rt->exposure());
    EXPECT_FALSE(inc.ok);
    EXPECT_FALSE(inc.complete);
}

// ------------------------------------------------------- exporters

TEST(TraceExport, ChromeJsonAndJsonlWellFormed)
{
    workloads::WhisperParams p;
    p.sections = 30;
    workloads::RunResult r = workloads::runWhisper(
        "echo", RuntimeConfig::tt().withTrace(), p);
    ASSERT_NE(r.trace, nullptr);

    std::ostringstream chrome;
    trace::writeChromeTrace(*r.trace, chrome, "echo tt");
    std::string cj = chrome.str();
    EXPECT_NE(cj.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(cj.find("process_name"), std::string::npos);
    EXPECT_NE(cj.find("real_attach"), std::string::npos);
    EXPECT_NE(cj.find("\"cat\":\"pmo\""), std::string::npos);
    EXPECT_NE(cj.find("\"cat\":\"region\""), std::string::npos);
    // Balanced braces/brackets is a cheap well-formedness proxy.
    EXPECT_EQ(std::count(cj.begin(), cj.end(), '{'),
              std::count(cj.begin(), cj.end(), '}'));
    EXPECT_EQ(std::count(cj.begin(), cj.end(), '['),
              std::count(cj.begin(), cj.end(), ']'));

    std::ostringstream jsonl;
    trace::writeJsonl(*r.trace, jsonl);
    std::string lj = jsonl.str();
    std::uint64_t lines = static_cast<std::uint64_t>(
        std::count(lj.begin(), lj.end(), '\n'));
    EXPECT_EQ(lines, r.trace->totalEmitted());
    EXPECT_NE(lj.find("\"kind\":\"thread_grant\""),
              std::string::npos);
}
