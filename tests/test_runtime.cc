/**
 * @file
 * Integration tests for the protection runtime (src/core): scheme
 * behaviours, window combining, sweeping, randomization, access
 * checking and overhead accounting.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

using namespace terp;
using namespace terp::core;

namespace {

struct Rig
{
    sim::Machine mach;
    pm::PmoManager pmos;
    pm::PmoId pmo;
    std::unique_ptr<Runtime> rt;
    sim::ThreadContext *tc;

    explicit Rig(const RuntimeConfig &cfg, unsigned threads = 1)
        : pmos(7)
    {
        pmo = pmos.create("test", 8 * MiB).id();
        rt = std::make_unique<Runtime>(mach, pmos, cfg);
        for (unsigned i = 0; i < threads; ++i)
            mach.spawnThread();
        tc = &mach.thread(0);
    }
};

} // namespace

// ------------------------------------------------------- unprotected

TEST(RuntimeUnprotected, AutoMapsAndNeverCharges)
{
    Rig r(RuntimeConfig::unprotected());
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 64), true),
              AccessOutcome::Ok);
    EXPECT_TRUE(r.rt->mapped(r.pmo));
    OverheadReport rep = r.rt->report();
    EXPECT_EQ(rep.attachSyscalls, 0u);
    EXPECT_EQ(rep.attach, 0u);
    EXPECT_EQ(rep.other, 0u); // no permission-matrix charge
}

TEST(RuntimeUnprotected, MarkersAreNoOps)
{
    Rig r(RuntimeConfig::unprotected());
    r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    EXPECT_EQ(r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite),
              GuardResult::Ok);
    r.rt->regionEnd(*r.tc, r.pmo);
    r.rt->manualEnd(*r.tc, r.pmo);
    EXPECT_EQ(r.tc->now(), 0u);
}

// ----------------------------------------------------------------- MM

TEST(RuntimeMm, ManualLifecycleChargesSyscalls)
{
    Rig r(RuntimeConfig::mm());
    r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    EXPECT_TRUE(r.rt->mapped(r.pmo));
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), true),
              AccessOutcome::Ok);
    r.rt->manualEnd(*r.tc, r.pmo);
    EXPECT_FALSE(r.rt->mapped(r.pmo));

    OverheadReport rep = r.rt->report();
    EXPECT_EQ(rep.attachSyscalls, 1u);
    EXPECT_EQ(rep.detachSyscalls, 1u);
    EXPECT_EQ(rep.attach, latency::attachSyscall);
    EXPECT_EQ(rep.detach,
              latency::detachSyscall + latency::tlbInvalidate);
    // MERR randomizes placement at attach.
    EXPECT_EQ(rep.rand, latency::randomize);
}

TEST(RuntimeMm, AccessOutsideWindowSegfaults)
{
    Rig r(RuntimeConfig::mm());
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), false),
              AccessOutcome::NoMapping);
}

TEST(RuntimeMm, NestedManualAttachPanics)
{
    Rig r(RuntimeConfig::mm());
    r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    EXPECT_THROW(
        r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite),
        std::logic_error);
}

TEST(RuntimeMm, RegionMarkersIgnored)
{
    Rig r(RuntimeConfig::mm());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.rt->regionEnd(*r.tc, r.pmo);
    EXPECT_EQ(r.tc->now(), 0u);
}

TEST(RuntimeMm, SweepRerandomizesLongWindows)
{
    Rig r(RuntimeConfig::mm(usToCycles(40)));
    r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    std::uint64_t base = r.pmos.pmo(r.pmo).vaddrBase();
    r.tc->work(usToCycles(60)); // overstay the window
    r.rt->onSweep(usToCycles(50));
    EXPECT_TRUE(r.rt->mapped(r.pmo));
    EXPECT_NE(r.pmos.pmo(r.pmo).vaddrBase(), base);
    EXPECT_GT(r.rt->report().rand, latency::randomize);
    r.rt->manualEnd(*r.tc, r.pmo);
}

TEST(RuntimeMm, ExposureWindowsRecorded)
{
    Rig r(RuntimeConfig::mm());
    r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.tc->work(usToCycles(10));
    r.rt->manualEnd(*r.tc, r.pmo);
    r.tc->work(usToCycles(30));
    r.rt->finalize();
    auto m = r.rt->exposure().metricsFor(r.pmo, r.tc->now(), 1);
    EXPECT_EQ(m.ewCount, 1u);
    EXPECT_NEAR(m.ewAvgUs, 10.0, 3.0); // + syscall time inside
}

// ----------------------------------------------------------------- TT

TEST(RuntimeTt, WindowCombiningElidesSyscalls)
{
    Rig r(RuntimeConfig::tt());
    for (int i = 0; i < 10; ++i) {
        r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
        r.rt->access(*r.tc, pm::Oid(r.pmo, 128), true);
        r.rt->regionEnd(*r.tc, r.pmo);
        r.tc->work(usToCycles(1));
    }
    OverheadReport rep = r.rt->report();
    EXPECT_EQ(rep.attachSyscalls, 1u); // only the first was real
    EXPECT_EQ(rep.detachSyscalls, 0u); // all delayed
    EXPECT_EQ(rep.condOps, 20u);
    EXPECT_GT(rep.silentFraction, 0.9);
    EXPECT_TRUE(r.rt->mapped(r.pmo)); // still combined
}

TEST(RuntimeTt, ThreadPermissionEnforced)
{
    Rig r(RuntimeConfig::tt(), 2);
    sim::ThreadContext &t1 = r.mach.thread(1);
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    // Thread 0 holds permission; thread 1 does not.
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), true),
              AccessOutcome::Ok);
    EXPECT_EQ(r.rt->tryAccess(t1, pm::Oid(r.pmo, 0), false),
              AccessOutcome::NoThreadPerm);
    r.rt->regionEnd(*r.tc, r.pmo);
    // After region end thread 0 loses permission too (PMO still
    // mapped thanks to the delayed detach).
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), false),
              AccessOutcome::NoThreadPerm);
}

TEST(RuntimeTt, ReadOnlyGrantRejectsWrites)
{
    Rig r(RuntimeConfig::tt());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::Read);
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), false),
              AccessOutcome::Ok);
    // The process-wide matrix entry was installed read-only, so the
    // write is denied at the matrix before the MPK check.
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), true),
              AccessOutcome::NoProcessPerm);
    r.rt->regionEnd(*r.tc, r.pmo);
}

TEST(RuntimeTt, SweepDetachesAfterWindowTarget)
{
    Rig r(RuntimeConfig::tt(usToCycles(40)));
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.rt->regionEnd(*r.tc, r.pmo); // delayed detach
    EXPECT_TRUE(r.rt->mapped(r.pmo));
    r.tc->work(usToCycles(60));
    r.rt->onSweep(usToCycles(41));
    EXPECT_FALSE(r.rt->mapped(r.pmo));
    EXPECT_EQ(r.rt->report().detachSyscalls, 1u);
}

TEST(RuntimeTt, SweepRandomizesBusyWindows)
{
    Rig r(RuntimeConfig::tt(usToCycles(40)));
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    std::uint64_t base = r.pmos.pmo(r.pmo).vaddrBase();
    r.tc->work(usToCycles(60)); // still inside the region
    r.rt->onSweep(usToCycles(41));
    EXPECT_TRUE(r.rt->mapped(r.pmo));
    EXPECT_NE(r.pmos.pmo(r.pmo).vaddrBase(), base);
    // Permission matrix was rebased: accesses still work.
    EXPECT_EQ(r.rt->tryAccess(*r.tc, pm::Oid(r.pmo, 0), true),
              AccessOutcome::Ok);
    r.rt->regionEnd(*r.tc, r.pmo);
}

TEST(RuntimeTt, ExposureMetricsTrackWindowsAndTews)
{
    Rig r(RuntimeConfig::tt(usToCycles(40)));
    for (int i = 0; i < 3; ++i) {
        r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
        r.tc->work(usToCycles(2));
        r.rt->regionEnd(*r.tc, r.pmo);
        r.tc->work(usToCycles(5));
    }
    r.rt->finalize();
    auto m = r.rt->exposure().metricsFor(r.pmo, r.tc->now(), 1);
    EXPECT_EQ(m.tewCount, 3u);
    EXPECT_NEAR(m.tewAvgUs, 2.0, 0.2);
    EXPECT_EQ(m.ewCount, 1u); // one combined window
}

// ----------------------------------------------------------------- TM

TEST(RuntimeTm, EveryRegionOpTrapsToKernel)
{
    Rig r(RuntimeConfig::tm());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite); // real
    r.rt->regionEnd(*r.tc, r.pmo); // lowered, still a syscall
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite); // lowered
    r.rt->regionEnd(*r.tc, r.pmo);
    OverheadReport rep = r.rt->report();
    EXPECT_EQ(rep.attachSyscalls, 1u);
    EXPECT_EQ(rep.condOps, 0u); // no conditional instructions
    // Lowered ops charged as kernel permission toggles.
    EXPECT_EQ(rep.attach,
              latency::attachSyscall + latency::permSyscall);
    EXPECT_EQ(rep.detach, 2 * latency::permSyscall);
    EXPECT_TRUE(r.rt->mapped(r.pmo)); // software window combining
}

TEST(RuntimeTm, RealDetachAfterSpanExceeded)
{
    Rig r(RuntimeConfig::tm(usToCycles(40)));
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.tc->work(usToCycles(50));
    r.rt->regionEnd(*r.tc, r.pmo);
    EXPECT_FALSE(r.rt->mapped(r.pmo));
    EXPECT_EQ(r.rt->report().detachSyscalls, 1u);
}

// ------------------------------------------------- basic (ablation)

TEST(RuntimeBasic, SecondThreadBlocksUntilDetach)
{
    Rig r(RuntimeConfig::basicSemantics(), 2);
    sim::ThreadContext &t0 = *r.tc;
    sim::ThreadContext &t1 = r.mach.thread(1);

    EXPECT_EQ(r.rt->regionBegin(t0, r.pmo, pm::Mode::ReadWrite),
              GuardResult::Ok);
    EXPECT_EQ(r.rt->regionBegin(t1, r.pmo, pm::Mode::ReadWrite),
              GuardResult::Blocked);
    EXPECT_TRUE(t1.blocked());

    t0.work(usToCycles(3));
    r.rt->regionEnd(t0, r.pmo);
    EXPECT_FALSE(t1.blocked());
    EXPECT_GE(t1.now(), t0.now()); // woken at the detach time
    EXPECT_EQ(r.rt->regionBegin(t1, r.pmo, pm::Mode::ReadWrite),
              GuardResult::Ok);
    r.rt->regionEnd(t1, r.pmo);
}

// ------------------------------------------------------ vaddr access

TEST(RuntimeVaddr, StaleAddressFaultsAfterRandomize)
{
    Rig r(RuntimeConfig::tt(usToCycles(40)));
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    std::uint64_t leaked = r.pmos.pmo(r.pmo).vaddrBase() + 256;
    EXPECT_EQ(r.rt->tryAccessVaddr(*r.tc, leaked, true),
              AccessOutcome::Ok);
    // Randomization invalidates the leaked address.
    r.tc->work(usToCycles(60));
    r.rt->onSweep(usToCycles(41));
    EXPECT_EQ(r.rt->tryAccessVaddr(*r.tc, leaked, true),
              AccessOutcome::NoMapping);
    r.rt->regionEnd(*r.tc, r.pmo);
}

TEST(RuntimeVaddr, ThreadPermissionAppliesToRawPointers)
{
    Rig r(RuntimeConfig::tt(), 2);
    sim::ThreadContext &t1 = r.mach.thread(1);
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    std::uint64_t addr = r.pmos.pmo(r.pmo).vaddrBase();
    EXPECT_EQ(r.rt->tryAccessVaddr(t1, addr, true),
              AccessOutcome::NoThreadPerm);
    r.rt->regionEnd(*r.tc, r.pmo);
}

// --------------------------------------------------------- reporting

TEST(RuntimeReport, TotalsAreConsistent)
{
    Rig r(RuntimeConfig::tt());
    r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
    r.rt->accessRange(*r.tc, pm::Oid(r.pmo, 0), 256, true);
    r.rt->regionEnd(*r.tc, r.pmo);
    OverheadReport rep = r.rt->report();
    EXPECT_EQ(rep.total, r.tc->now());
    EXPECT_EQ(rep.total, rep.work + rep.attach + rep.detach +
                             rep.rand + rep.cond + rep.other);
    // 256 bytes = 4 line accesses, each with a 1-cycle matrix check.
    EXPECT_EQ(rep.other, 4u);
}

TEST(RuntimeReport, AccessRangeTouchesEveryLine)
{
    Rig r(RuntimeConfig::unprotected());
    Cycles before = r.tc->now();
    r.rt->accessRange(*r.tc, pm::Oid(r.pmo, 0), 8 * lineSize, false);
    // 8 cold NVM lines: each costs > latency::nvm.
    EXPECT_GT(r.tc->now() - before, 8 * latency::nvm);
}

// Parameterized scheme sanity: a simple guarded access pattern works
// under every scheme without faults.
class SchemeSmokeTest
    : public ::testing::TestWithParam<int>
{
  public:
    static RuntimeConfig
    cfgFor(int i)
    {
        switch (i) {
          case 0: return RuntimeConfig::unprotected();
          case 1: return RuntimeConfig::mm();
          case 2: return RuntimeConfig::tm();
          case 3: return RuntimeConfig::tt();
          case 4: return RuntimeConfig::ttNoCombining();
          default: return RuntimeConfig::basicSemantics();
        }
    }
};

TEST_P(SchemeSmokeTest, GuardedAccessesNeverFault)
{
    Rig r(SchemeSmokeTest::cfgFor(GetParam()));
    for (int i = 0; i < 20; ++i) {
        r.rt->manualBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
        r.rt->regionBegin(*r.tc, r.pmo, pm::Mode::ReadWrite);
        EXPECT_EQ(r.rt->tryAccess(*r.tc,
                                  pm::Oid(r.pmo, 64 * (i % 10)),
                                  i % 2 == 0),
                  AccessOutcome::Ok);
        r.rt->regionEnd(*r.tc, r.pmo);
        r.rt->manualEnd(*r.tc, r.pmo);
        r.tc->work(usToCycles(1));
        r.rt->onSweep(r.tc->now());
    }
    r.rt->finalize();
    EXPECT_GT(r.tc->now(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSmokeTest,
                         ::testing::Range(0, 6));
