/**
 * @file
 * Tests for the transactional PM API (pm::TxManager): PMDK-style
 * nesting (flattening, abort poisoning, outermost-only durable
 * points), per-PMO locking with deadlock-free non-blocking
 * acquisition, the redo-log variant (read-your-writes, roll-forward
 * recovery), crash-point sweeps over nested and two-thread
 * transactional workloads, recovery racing a still-armed fault plan,
 * and the differential fuzzer's transaction schedules.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/crash.hh"
#include "check/fuzzer.hh"
#include "core/runtime.hh"
#include "pm/persist.hh"
#include "pm/pmo_manager.hh"
#include "pm/tx_manager.hh"
#include "sim/machine.hh"

using namespace terp;

namespace {

constexpr Cycles ewTarget = 5 * cyclesPerUs;

struct Fixture
{
    sim::Machine mach;
    pm::PmoManager pmos;
    core::RuntimeConfig cfg;
    pm::PersistDomain dom;
    std::unique_ptr<core::Runtime> rt;

    explicit Fixture(const std::string &scheme = "tm")
        : cfg(check::schemeConfig(scheme, ewTarget).withTrace())
    {
        pmos.create("txn-a", 64 * KiB);
        pmos.create("txn-b", 64 * KiB);
        rt = std::make_unique<core::Runtime>(mach, pmos, cfg);
        rt->attachPersistence(&dom);
        mach.spawnThread();
        mach.spawnThread();
    }

    pm::TxManager &txm() { return *rt->tx(); }
    const pm::PersistController &ctl() { return dom.controller(); }
};

const pm::Oid A(1, 0x100);
const pm::Oid B(1, 0x180);
const pm::Oid C(2, 0x100); // second PMO

} // namespace

// ---------------------------------------------------------- nesting

TEST(TxNesting, OnlyOutermostCommitIsDurable)
{
    Fixture f;
    sim::ThreadContext &tc = f.mach.thread(0);
    pm::TxManager &tx = f.txm();

    ASSERT_TRUE(tx.begin(tc, 0, {1}));
    EXPECT_EQ(tx.depth(0), 1u);
    EXPECT_TRUE(tx.write(tc, 0, A, 11));
    ASSERT_TRUE(tx.begin(tc, 0, {1})); // nested level
    EXPECT_EQ(tx.depth(0), 2u);
    EXPECT_TRUE(tx.write(tc, 0, B, 22));

    EXPECT_TRUE(tx.commit(tc, 0)); // inner: unwind only
    EXPECT_EQ(tx.depth(0), 1u);
    EXPECT_EQ(f.ctl().persistedLoad(A), 0u)
        << "inner commit must not be a durable point";
    EXPECT_EQ(tx.durableCommits(), 0u);

    EXPECT_TRUE(tx.commit(tc, 0)); // outermost: durable
    EXPECT_EQ(tx.status(0), pm::TxStatus::None);
    EXPECT_EQ(tx.lockOwner(1), -1);
    EXPECT_EQ(f.ctl().persistedLoad(A), 11u);
    EXPECT_EQ(f.ctl().persistedLoad(B), 22u);
    EXPECT_EQ(tx.durableCommits(), 1u);
    EXPECT_EQ(tx.nestedBegins(), 1u);
}

TEST(TxNesting, InnerAbortPoisonsTheWholeTransaction)
{
    Fixture f;
    sim::ThreadContext &tc = f.mach.thread(0);
    pm::TxManager &tx = f.txm();

    ASSERT_TRUE(tx.begin(tc, 0, {1}));
    ASSERT_TRUE(tx.write(tc, 0, A, 10));
    ASSERT_TRUE(tx.commit(tc, 0)); // A = 10 committed

    ASSERT_TRUE(tx.begin(tc, 0, {1}));
    EXPECT_TRUE(tx.write(tc, 0, A, 99));
    ASSERT_TRUE(tx.begin(tc, 0, {1}));
    tx.abort(tc, 0); // inner abort: immediate full rollback
    EXPECT_EQ(tx.status(0), pm::TxStatus::Aborted);
    EXPECT_EQ(f.ctl().load(A), 10u)
        << "undo abort restores the pre-transaction value";

    EXPECT_FALSE(tx.write(tc, 0, A, 77)) << "poisoned: writes no-op";
    EXPECT_FALSE(tx.begin(tc, 0, {1}))
        << "PMDK: TX_BEGIN after abort does not run its body";
    EXPECT_FALSE(tx.commit(tc, 0)); // inner unwind reports failure
    EXPECT_EQ(tx.lockOwner(1), 0) << "locks held to the outermost end";
    EXPECT_FALSE(tx.commit(tc, 0)); // outermost: no durable point
    EXPECT_EQ(tx.lockOwner(1), -1);
    EXPECT_EQ(f.ctl().persistedLoad(A), 10u);
    EXPECT_EQ(tx.abortedCommits(), 1u);
}

TEST(TxNesting, AbortAfterPartialWritesRestoresOldestValue)
{
    Fixture f;
    sim::ThreadContext &tc = f.mach.thread(0);
    pm::TxManager &tx = f.txm();

    ASSERT_TRUE(tx.begin(tc, 0, {1}));
    ASSERT_TRUE(tx.write(tc, 0, A, 5));
    ASSERT_TRUE(tx.commit(tc, 0));

    // Two writes to the same word: the undo log dedupes, keeping the
    // *oldest* logged value, so the abort lands on 5, not 6.
    ASSERT_TRUE(tx.begin(tc, 0, {1}));
    ASSERT_TRUE(tx.write(tc, 0, A, 6));
    ASSERT_TRUE(tx.write(tc, 0, A, 7));
    EXPECT_EQ(f.ctl().load(A), 7u);
    tx.abort(tc, 0);
    EXPECT_EQ(f.ctl().load(A), 5u);
    EXPECT_FALSE(tx.commit(tc, 0));
    EXPECT_EQ(f.ctl().persistedLoad(A), 5u);
}

// --------------------------------------------------------- redo log

TEST(TxRedo, ReadYourWritesWithoutTouchingTheImage)
{
    Fixture f;
    sim::ThreadContext &tc = f.mach.thread(0);
    pm::TxManager &tx = f.txm();

    ASSERT_TRUE(tx.begin(tc, 0, {1}, pm::TxKind::Redo));
    EXPECT_EQ(tx.kind(0), pm::TxKind::Redo);
    ASSERT_TRUE(tx.write(tc, 0, A, 42));
    EXPECT_EQ(f.ctl().load(A), 0u)
        << "redo buffers: data untouched until commit";
    EXPECT_EQ(tx.read(0, A), 42u) << "reads see the buffered write";
    ASSERT_TRUE(tx.commit(tc, 0));
    EXPECT_EQ(f.ctl().load(A), 42u);
    EXPECT_EQ(f.ctl().persistedLoad(A), 42u);
}

TEST(TxRedo, CrashInCommitRecoversAllOldOrAllNew)
{
    // Baseline: bracket the outermost redo commit's boundary window.
    std::uint64_t b0, b1;
    {
        Fixture f;
        sim::ThreadContext &tc = f.mach.thread(0);
        pm::TxManager &tx = f.txm();
        ASSERT_TRUE(tx.begin(tc, 0, {1}, pm::TxKind::Redo));
        ASSERT_TRUE(tx.write(tc, 0, A, 1));
        ASSERT_TRUE(tx.write(tc, 0, B, 2));
        b0 = f.ctl().boundaryCount();
        ASSERT_TRUE(tx.commit(tc, 0));
        b1 = f.ctl().boundaryCount();
        ASSERT_GT(b1, b0);
    }

    bool sawNew = false, sawOld = false;
    for (std::uint64_t n = b0 + 1; n <= b1; ++n) {
        Fixture f;
        sim::ThreadContext &tc = f.mach.thread(0);
        pm::TxManager &tx = f.txm();
        ASSERT_TRUE(tx.begin(tc, 0, {1}, pm::TxKind::Redo));
        ASSERT_TRUE(tx.write(tc, 0, A, 1));
        ASSERT_TRUE(tx.write(tc, 0, B, 2));
        f.dom.controller().armFault(n);
        EXPECT_THROW(tx.commit(tc, 0), pm::PowerFailure);

        Cycles at = f.mach.maxClock();
        f.rt->crash(at);
        sim::ThreadContext &rtc = f.mach.thread(0);
        if (rtc.now() < at)
            rtc.syncTo(at, sim::Charge::Other);
        (void)f.rt->recover(rtc);

        std::uint64_t a = f.ctl().persistedLoad(A);
        std::uint64_t b = f.ctl().persistedLoad(B);
        bool allOld = a == 0 && b == 0;
        bool allNew = a == 1 && b == 2;
        EXPECT_TRUE(allOld || allNew)
            << "torn redo commit at boundary " << n << ": A=" << a
            << " B=" << b;
        sawOld |= allOld;
        sawNew |= allNew;
    }
    EXPECT_TRUE(sawOld) << "no crash point before the durable record";
    EXPECT_TRUE(sawNew) << "no crash point rolled forward";
}

// ---------------------------------------------------------- locking

TEST(TxLocks, ConflictIsBusyDisjointProceeds)
{
    Fixture f;
    sim::ThreadContext &t0 = f.mach.thread(0);
    sim::ThreadContext &t1 = f.mach.thread(1);
    pm::TxManager &tx = f.txm();

    ASSERT_TRUE(tx.begin(t0, 0, {1}));
    EXPECT_FALSE(tx.begin(t1, 1, {1, 2}))
        << "conflict on PMO 1 fails with nothing acquired";
    EXPECT_EQ(tx.lockOwner(2), -1)
        << "all-or-nothing: the free PMO must not be taken";
    EXPECT_EQ(tx.busyRejections(), 1u);

    ASSERT_TRUE(tx.begin(t1, 1, {2})) << "disjoint set proceeds";
    EXPECT_TRUE(tx.write(t0, 0, A, 7));
    EXPECT_TRUE(tx.write(t1, 1, C, 8));
    EXPECT_TRUE(tx.commit(t0, 0));
    EXPECT_TRUE(tx.commit(t1, 1));
    EXPECT_EQ(f.ctl().persistedLoad(A), 7u);
    EXPECT_EQ(f.ctl().persistedLoad(C), 8u);
}

TEST(TxLocks, NestedBeginGrowsTheLockSetCrossPmo)
{
    Fixture f;
    sim::ThreadContext &t0 = f.mach.thread(0);
    sim::ThreadContext &t1 = f.mach.thread(1);
    pm::TxManager &tx = f.txm();

    ASSERT_TRUE(tx.begin(t0, 0, {1}));
    ASSERT_TRUE(tx.begin(t0, 0, {2})) << "nested begin adds PMO 2";
    EXPECT_TRUE(tx.holdsLock(0, 2));
    EXPECT_FALSE(tx.begin(t1, 1, {2})) << "now held against t1";
    // One anchored log records the cross-PMO write-set.
    EXPECT_TRUE(tx.write(t0, 0, A, 3));
    EXPECT_TRUE(tx.write(t0, 0, C, 4));
    EXPECT_TRUE(tx.commit(t0, 0));
    EXPECT_TRUE(tx.commit(t0, 0));
    EXPECT_EQ(f.ctl().persistedLoad(A), 3u);
    EXPECT_EQ(f.ctl().persistedLoad(C), 4u);
    EXPECT_EQ(tx.lockOwner(2), -1);
}

// ------------------------------------------------- crash + recovery

TEST(TxCrash, RecoverRacesArmedFaultAtNestedCommitBoundaries)
{
    // Baseline: bracket the outermost commit of a *nested* undo
    // transaction (the commit that retires the flattened write-set).
    std::uint64_t b0, b1;
    {
        Fixture f;
        sim::ThreadContext &tc = f.mach.thread(0);
        pm::TxManager &tx = f.txm();
        ASSERT_TRUE(tx.begin(tc, 0, {1, 2}));
        ASSERT_TRUE(tx.write(tc, 0, A, 1));
        ASSERT_TRUE(tx.begin(tc, 0, {2}));
        ASSERT_TRUE(tx.write(tc, 0, C, 2));
        ASSERT_TRUE(tx.commit(tc, 0));
        b0 = f.ctl().boundaryCount();
        ASSERT_TRUE(tx.commit(tc, 0));
        b1 = f.ctl().boundaryCount();
        ASSERT_GT(b1, b0);
    }

    bool sawLogHeader = false;
    for (std::uint64_t n = b0 + 1; n <= b1; ++n) {
        Fixture f;
        sim::ThreadContext &tc = f.mach.thread(0);
        pm::TxManager &tx = f.txm();
        ASSERT_TRUE(tx.begin(tc, 0, {1, 2}));
        ASSERT_TRUE(tx.write(tc, 0, A, 1));
        ASSERT_TRUE(tx.begin(tc, 0, {2}));
        ASSERT_TRUE(tx.write(tc, 0, C, 2));
        ASSERT_TRUE(tx.commit(tc, 0));

        f.dom.controller().armFault(n);
        pm::PersistBoundary kind = pm::PersistBoundary::Store;
        try {
            tx.commit(tc, 0);
            FAIL() << "armed fault never fired at boundary " << n;
        } catch (const pm::PowerFailure &pf) {
            kind = pf.kind;
        }
        sawLogHeader |= kind == pm::PersistBoundary::LogHeader;

        Cycles at = f.mach.maxClock();
        f.rt->crash(at);
        sim::ThreadContext &rtc = f.mach.thread(0);
        if (rtc.now() < at)
            rtc.syncTo(at, sim::Charge::Other);

        // Race: a second fault is already armed when recover() runs,
        // so recovery itself may be interrupted at its first persist
        // boundary. It must then be re-runnable (the rollback is
        // idempotent) and still land on all-old.
        f.dom.controller().armFault(
            f.dom.controller().boundaryCount() + 1);
        try {
            (void)f.rt->recover(rtc);
            f.dom.controller().disarmFault(); // recovery had no work
        } catch (const pm::PowerFailure &) {
            f.rt->crash(f.mach.maxClock());
            (void)f.rt->recover(rtc);
        }

        EXPECT_EQ(f.ctl().persistedLoad(A), 0u)
            << "in-flight commit at boundary " << n
            << " must roll back fully";
        EXPECT_EQ(f.ctl().persistedLoad(C), 0u);
        pm::UndoLog *log = f.dom.findLog(1);
        ASSERT_NE(log, nullptr);
        EXPECT_FALSE(log->recoveryPending());

        // Liveness: the manager accepts a fresh transaction.
        ASSERT_TRUE(tx.begin(rtc, 0, {1}));
        ASSERT_TRUE(tx.write(rtc, 0, A, 9));
        ASSERT_TRUE(tx.commit(rtc, 0));
        EXPECT_EQ(f.ctl().persistedLoad(A), 9u);
    }
    EXPECT_TRUE(sawLogHeader)
        << "the sweep never hit the commit's LogHeader boundary";
}

TEST(TxCrash, NestedWorkloadSurvivesEveryCrashPoint)
{
    check::CrashOptions opt;
    opt.scheme = "tm";
    opt.workload = "txnest";
    opt.txns = 4;
    check::CrashResult res = check::enumerateCrashPoints(opt);
    EXPECT_GT(res.boundaries, 0u);
    EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                  ? ""
                                  : res.violations.front().detail);
}

TEST(TxCrash, TwoThreadDisjointPmoWorkloadSurvivesEveryCrashPoint)
{
    check::CrashOptions opt;
    opt.scheme = "tt";
    opt.workload = "txpair";
    opt.txns = 4;
    check::CrashResult res = check::enumerateCrashPoints(opt);
    EXPECT_GT(res.boundaries, 0u);
    EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                  ? ""
                                  : res.violations.front().detail);
}

// ------------------------------------------------------- fuzz smoke

TEST(TxFuzz, SeededSchedulesMatchTheSpecOracle)
{
    check::FuzzOptions opt;
    opt.seeds = 4;
    opt.shrink = false;
    opt.gen.txnOps = true;
    opt.gen.persistOps = true;
    check::FuzzResult res = check::fuzz(opt);
    EXPECT_GT(res.executed, 0u);
    std::string first;
    if (!res.divergences.empty() &&
        !res.divergences.front().complaints.empty())
        first = res.divergences.front().complaints.front();
    EXPECT_TRUE(res.ok())
        << res.divergences.size() << " divergence(s): " << first;
}
