/**
 * @file
 * Microbenchmarks (google-benchmark) for the compiler substrate:
 * CFG analysis, the Algorithm-1 insertion pass, the verifier and
 * interpreter throughput.
 */

#include <benchmark/benchmark.h>

#include "compiler/analysis.hh"
#include "compiler/builder.hh"
#include "compiler/interp.hh"
#include "compiler/pass.hh"
#include "compiler/verifier.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

using namespace terp;
using namespace terp::compiler;

namespace {

/** A moderately branchy kernel with PMO accesses. */
Module
makeKernel(unsigned loops)
{
    Module m;
    FunctionBuilder b(m, "kern", 0);
    for (unsigned l = 0; l < loops; ++l) {
        b.forLoop(16, [&](Reg i) {
            Reg addr = b.add(b.pmoBase(1 + (l % 3), 0),
                             b.mul(i, b.constant(64)));
            Reg v = b.load(addr);
            b.ifThenElse(b.cmpLt(v, b.constant(100)),
                         [&]() { b.store(addr, b.add(v, i)); });
        });
        b.compute(20);
    }
    b.ret();
    b.finish();
    return m;
}

} // namespace

static void
BM_CfgAnalysis(benchmark::State &state)
{
    Module m = makeKernel(static_cast<unsigned>(state.range(0)));
    PmoFacts facts = PmoFacts::analyze(m);
    for (auto _ : state) {
        Analysis an(m.function(0), facts.blockMasks(0));
        benchmark::DoNotOptimize(an.letBetween(0, noBlock));
    }
}
BENCHMARK(BM_CfgAnalysis)->Arg(4)->Arg(16);

static void
BM_PointerAnalysis(benchmark::State &state)
{
    Module m = makeKernel(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(PmoFacts::analyze(m));
    }
}
BENCHMARK(BM_PointerAnalysis)->Arg(4)->Arg(16);

static void
BM_InsertionPass(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Module m = makeKernel(static_cast<unsigned>(state.range(0)));
        state.ResumeTiming();
        benchmark::DoNotOptimize(
            runInsertionPass(m, PassConfig{}));
    }
}
BENCHMARK(BM_InsertionPass)->Arg(4)->Arg(16);

static void
BM_Verifier(benchmark::State &state)
{
    Module m = makeKernel(8);
    runInsertionPass(m, PassConfig{});
    PmoFacts facts = PmoFacts::analyze(m);
    for (auto _ : state) {
        benchmark::DoNotOptimize(verifyModule(m, facts, true));
    }
}
BENCHMARK(BM_Verifier);

static void
BM_InterpreterThroughput(benchmark::State &state)
{
    Module m;
    FunctionBuilder b(m, "loop", 0);
    b.forLoop(1000, [&](Reg i) {
        Reg a = b.add(i, i);
        Reg c = b.mul(a, i);
        b.store(b.dramBase(0x100), c);
    });
    b.ret();
    b.finish();

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        sim::Machine mach;
        pm::PmoManager pmos;
        core::Runtime rt(mach, pmos,
                         core::RuntimeConfig::unprotected());
        pm::MemImage img;
        Interpreter in(m, rt, mach, img, 0);
        sim::ThreadContext &tc = mach.spawnThread();
        while (in.step(tc)) {
        }
        instrs += in.instructionsExecuted();
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

BENCHMARK_MAIN();
