#include "harness.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

namespace terp {
namespace bench {

unsigned
jobsArg(int &argc, char **argv)
{
    unsigned jobs = 1;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--jobs=", 0) == 0) {
            long v = std::atol(a.c_str() + 7);
            jobs = v > 1 ? static_cast<unsigned>(v) : 1;
        } else {
            argv[w++] = argv[i];
        }
    }
    argc = w;
    return jobs;
}

namespace {
std::atomic<std::uint64_t> tallySims{0};
std::atomic<std::uint64_t> tallyCycles{0};
} // namespace

SimTally
tallySnapshot()
{
    SimTally t;
    t.sims = tallySims.load(std::memory_order_relaxed);
    t.simCycles = tallyCycles.load(std::memory_order_relaxed);
    return t;
}

void
noteSim(std::uint64_t cycles)
{
    tallySims.fetch_add(1, std::memory_order_relaxed);
    tallyCycles.fetch_add(cycles, std::memory_order_relaxed);
}

metrics::Registry &
globalMetrics()
{
    static metrics::Registry reg;
    return reg;
}

namespace {

std::mutex &
globalMetricsLock()
{
    static std::mutex m;
    return m;
}

// Per-PMO series are dropped from the aggregate — PMO ids are only
// meaningful within one run — keeping the pmo="all" rollups.
bool
keepInAggregate(const std::string &name)
{
    return name.find("{pmo=\"") == std::string::npos ||
           name.find("{pmo=\"all\"") != std::string::npos;
}

} // namespace

void
noteRunMetrics(const workloads::RunResult &r)
{
    if (!r.metrics)
        return;
    std::lock_guard<std::mutex> g(globalMetricsLock());
    globalMetrics().merge(*r.metrics, keepInAggregate, {"scheme"});
}

workloads::RunResult
runWhisperCounted(const std::string &name,
                  const core::RuntimeConfig &cfg,
                  const workloads::WhisperParams &params)
{
    workloads::RunResult r = workloads::runWhisper(name, cfg, params);
    noteSim(r.totalCycles);
    noteRunMetrics(r);
    return r;
}

workloads::RunResult
runSpecCounted(const std::string &name,
               const core::RuntimeConfig &cfg,
               const workloads::SpecParams &params)
{
    workloads::RunResult r = workloads::runSpec(name, cfg, params);
    noteSim(r.totalCycles);
    noteRunMetrics(r);
    return r;
}

void
ParallelRunner::add(std::function<void()> fn)
{
    tasks.push_back(std::move(fn));
}

void
ParallelRunner::run()
{
    if (nJobs <= 1 || tasks.size() <= 1) {
        for (auto &t : tasks)
            t();
        tasks.clear();
        return;
    }

    // Work queue: each worker claims the next unclaimed index. Task
    // results land in pre-indexed slots owned by the caller, so the
    // claim order cannot influence what gets printed later.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errLock;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size() ||
                failed.load(std::memory_order_relaxed))
                return;
            try {
                tasks[i]();
            } catch (...) {
                std::lock_guard<std::mutex> g(errLock);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(nJobs, tasks.size()));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    tasks.clear();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace bench
} // namespace terp
