/**
 * @file
 * Fig 10 — single-thread multi-PMO SPEC execution-time overheads:
 * MM(40us), TM(2us TEW, all system calls) and TT at 40/80/160us EW
 * targets, with the Attach/Detach/Rand/Cond/Other breakdown.
 *
 * Usage: fig10_spec_overhead [scale] [--jobs=N]
 */

#include <cstdio>
#include <iterator>

#include "bench_util.hh"
#include "harness.hh"
#include "workloads/spec.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
terp::bench::run_fig10(int argc, char **argv)
{
    unsigned jobs = bench::jobsArg(argc, argv);
    SpecParams p;
    p.scale = bench::argOr(argc, argv, 1, 1.0);

    std::printf("=== Fig 10: SPEC single-thread overheads vs "
                "unprotected ===\n\n");
    printBreakdownHeader("prog");

    struct SchemeDef
    {
        const char *name;
        core::RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"MM(40us)", core::RuntimeConfig::mm(usToCycles(40))},
        {"TM(2us)", core::RuntimeConfig::tm(usToCycles(40))},
        {"TT(40us)", core::RuntimeConfig::tt(usToCycles(40))},
        {"TT(80us)", core::RuntimeConfig::tt(usToCycles(80))},
        {"TT(160us)", core::RuntimeConfig::tt(usToCycles(160))},
    };
    const std::size_t ns = std::size(schemes);
    const std::vector<std::string> &names = specNames();

    std::vector<RunResult> base(names.size());
    std::vector<RunResult> cells(names.size() * ns);
    ParallelRunner pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.add([&, i] {
            base[i] = runSpecCounted(
                names[i], core::RuntimeConfig::unprotected(), p);
        });
        for (std::size_t j = 0; j < ns; ++j) {
            pool.add([&, i, j] {
                cells[i * ns + j] =
                    runSpecCounted(names[i], schemes[j].cfg, p);
            });
        }
    }
    pool.run();

    std::vector<double> avg_total(ns, 0.0);
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = 0; j < ns; ++j) {
            Breakdown d = breakdown(cells[i * ns + j], base[i]);
            printBreakdownRow(names[i], schemes[j].name, d);
            avg_total[j] += d.total;
        }
        std::printf("\n");
    }

    std::printf("--- averages over the five kernels ---\n");
    for (std::size_t j = 0; j < ns; ++j) {
        std::printf("%-10s avg total overhead: %6.1f%%\n",
                    schemes[j].name,
                    100.0 * avg_total[j] /
                        static_cast<double>(names.size()));
    }
    std::printf("\npaper: MM ~156%%, TM >300%%, TT 14.8%% at 40us "
                "falling to 7.6%% at 160us; lbm highest among TT "
                "(two PMOs active throughout).\n");
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_fig10(argc, argv);
}
#endif
