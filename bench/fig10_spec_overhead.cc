/**
 * @file
 * Fig 10 — single-thread multi-PMO SPEC execution-time overheads:
 * MM(40us), TM(2us TEW, all system calls) and TT at 40/80/160us EW
 * targets, with the Attach/Detach/Rand/Cond/Other breakdown.
 *
 * Usage: fig10_spec_overhead [scale]
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
main(int argc, char **argv)
{
    SpecParams p;
    p.scale = bench::argOr(argc, argv, 1, 1.0);

    std::printf("=== Fig 10: SPEC single-thread overheads vs "
                "unprotected ===\n\n");
    printBreakdownHeader("prog");

    struct SchemeDef
    {
        const char *name;
        core::RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"MM(40us)", core::RuntimeConfig::mm(usToCycles(40))},
        {"TM(2us)", core::RuntimeConfig::tm(usToCycles(40))},
        {"TT(40us)", core::RuntimeConfig::tt(usToCycles(40))},
        {"TT(80us)", core::RuntimeConfig::tt(usToCycles(80))},
        {"TT(160us)", core::RuntimeConfig::tt(usToCycles(160))},
    };

    double avg_total[5] = {};
    for (const std::string &name : specNames()) {
        RunResult base =
            runSpec(name, core::RuntimeConfig::unprotected(), p);
        int si = 0;
        for (const SchemeDef &s : schemes) {
            RunResult r = runSpec(name, s.cfg, p);
            Breakdown d = breakdown(r, base);
            printBreakdownRow(name, s.name, d);
            avg_total[si++] += d.total;
        }
        std::printf("\n");
    }

    std::printf("--- averages over the five kernels ---\n");
    int si = 0;
    for (const SchemeDef &s : schemes) {
        std::printf("%-10s avg total overhead: %6.1f%%\n", s.name,
                    100.0 * avg_total[si++] / 5.0);
    }
    std::printf("\npaper: MM ~156%%, TM >300%%, TT 14.8%% at 40us "
                "falling to 7.6%% at 160us; lbm highest among TT "
                "(two PMOs active throughout).\n");
    return 0;
}
