#include "history.hh"

#include <cstdio>

namespace terp {
namespace bench {

std::string
gitRev()
{
    std::string rev = "unknown";
    if (FILE *p = popen("git rev-parse --short HEAD 2>/dev/null",
                        "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof(buf), p)) {
            rev = buf;
            while (!rev.empty() &&
                   (rev.back() == '\n' || rev.back() == '\r'))
                rev.pop_back();
        }
        pclose(p);
        if (rev.empty())
            rev = "unknown";
    }
    return rev;
}

bool
appendHistory(const std::string &path, const HistoryRecord &rec)
{
    FILE *f = std::fopen(path.c_str(), "a");
    if (!f)
        return false;
    std::fprintf(f,
                 "{\"v\": 1, \"git_rev\": \"%s\", \"tool\": \"%s\", "
                 "\"sims_per_s\": %.2f, \"p99_ew_cycles\": %llu, "
                 "\"p99_latency_cycles\": %llu}\n",
                 gitRev().c_str(), rec.tool.c_str(), rec.simsPerS,
                 static_cast<unsigned long long>(rec.p99EwCycles),
                 static_cast<unsigned long long>(rec.p99LatencyCycles));
    std::fclose(f);
    return true;
}

} // namespace bench
} // namespace terp
