#include "history.hh"

#include <cmath>
#include <cstdio>

namespace terp {
namespace bench {

std::string
gitRev()
{
    // One popen per process: tools append at most a handful of
    // records but may be invoked in tight CI loops, and the
    // revision cannot change under a running process anyway.
    static const std::string cached = [] {
        std::string rev = "unknown";
        if (FILE *p = popen("git rev-parse --short HEAD 2>/dev/null",
                            "r")) {
            char buf[64] = {};
            if (std::fgets(buf, sizeof(buf), p)) {
                rev = buf;
                while (!rev.empty() &&
                       (rev.back() == '\n' || rev.back() == '\r'))
                    rev.pop_back();
            }
            // Outside a git checkout the command prints nothing and
            // exits nonzero; fall back cleanly either way.
            if (pclose(p) != 0 || rev.empty())
                rev = "unknown";
        }
        return rev;
    }();
    return cached;
}

namespace {

/** Backslash-escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Fixed two-decimal rendering, locale-independent: printf("%.2f")
 * uses the process locale's decimal separator, and a comma-decimal
 * locale (de_DE, fr_FR, ...) would make the record invalid JSON.
 * Non-finite inputs render as 0.00 — zeros already mean "not
 * measured" in this schema.
 */
std::string
fixed2(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    long long cents = std::llround(v * 100.0);
    bool neg = cents < 0;
    if (neg)
        cents = -cents;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%lld.%02lld", neg ? "-" : "",
                  cents / 100, cents % 100);
    return buf;
}

} // namespace

bool
appendHistory(const std::string &path, const HistoryRecord &rec)
{
    FILE *f = std::fopen(path.c_str(), "a");
    if (!f)
        return false;
    int n = std::fprintf(
        f,
        "{\"v\": 2, \"git_rev\": \"%s\", \"tool\": \"%s\", "
        "\"metric\": \"%s\", \"sims_per_s\": %s, "
        "\"p99_ew_cycles\": %llu, \"p99_latency_cycles\": %llu}\n",
        jsonEscape(gitRev()).c_str(), jsonEscape(rec.tool).c_str(),
        jsonEscape(rec.metric).c_str(), fixed2(rec.simsPerS).c_str(),
        static_cast<unsigned long long>(rec.p99EwCycles),
        static_cast<unsigned long long>(rec.p99LatencyCycles));
    bool ok = n > 0;
    if (std::fclose(f) != 0)
        ok = false;
    return ok;
}

} // namespace bench
} // namespace terp
