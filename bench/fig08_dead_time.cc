/**
 * @file
 * Fig 8 — distribution of heap-object dead times (time from the last
 * write to an object until its deallocation), pooled over the
 * SPEC-like and Heap-Layers-like allocation workloads.
 *
 * The paper uses this distribution to pick the 2 us TEW target: in
 * 95% of cases the dead time is 2 us or larger, so a 2 us TEW
 * removes ~95% of the data-only attack surface.
 *
 * Usage: fig08_dead_time [objects_per_profile] [--jobs=N]
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"
#include "harness.hh"
#include "security/dead_time.hh"
#include "workloads/alloc.hh"

using namespace terp;

int
terp::bench::run_fig08(int argc, char **argv)
{
    // The dead-time figure is a single pooled computation; --jobs is
    // accepted for interface uniformity but there is nothing to fan
    // out.
    (void)bench::jobsArg(argc, argv);
    auto objects = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 400));

    std::printf("=== Fig 8: distribution of heap-object dead times "
                "(last write -> free) ===\n");
    std::printf("workloads: %zu profiles x %llu objects\n\n",
                workloads::allocProfiles().size(),
                (unsigned long long)objects);

    auto pooled = workloads::runAllAllocWorkloads(objects, 1234);

    security::DeadTimeAnalysis analysis;
    analysis.addAll(pooled);
    const Histogram &h = analysis.histogram();

    std::printf("%-16s %10s %8s\n", "dead time (us)", "count",
                "percent");
    double lo = 0.0;
    for (std::size_t i = 0; i < h.bucketCount(); ++i) {
        char label[32];
        if (i < h.bounds().size()) {
            std::snprintf(label, sizeof(label), "%g - %g", lo,
                          h.bounds()[i]);
            lo = h.bounds()[i];
        } else {
            std::snprintf(label, sizeof(label), "> %g", lo);
        }
        std::printf("%-16s %10llu %7.1f%%\n", label,
                    (unsigned long long)h.bucket(i),
                    100.0 * h.fraction(i));
    }

    double above2 = analysis.surfaceReduction(2.0);
    std::printf("\nsamples           : %llu\n",
                (unsigned long long)analysis.sampleCount());
    std::printf("median dead time  : %.1f us\n", analysis.medianUs());
    std::printf("dead time >= 2 us : %.1f%%  (paper: ~95%%)\n",
                100.0 * above2);
    std::printf("=> a 2 us TEW target removes ~%.0f%% of the "
                "data-only attack surface\n",
                100.0 * above2);
    std::printf("recommended TEW for 95%% coverage: %.1f us "
                "(paper picks 2 us)\n",
                analysis.recommendTew(0.95));
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_fig08(argc, argv);
}
#endif
