/**
 * @file
 * Parallel work-queue runner for the table/figure regeneration
 * harnesses.
 *
 * Every cell of a figure (one workload under one scheme) is an
 * independent Machine + Runtime simulation with no shared mutable
 * state, so the harnesses split into two phases:
 *
 *  1. compute — every simulation is enqueued on a ParallelRunner and
 *     writes its RunResult into a pre-indexed slot; a --jobs=N pool
 *     of std::threads drains the queue in arbitrary order;
 *  2. print — the original serial loops run unchanged, reading the
 *     slots.
 *
 * Because each simulation is internally seeded and deterministic and
 * the print phase is untouched, stdout is byte-identical to the old
 * serial harnesses for every value of N (the golden test in
 * tests/test_bench_harness.cc holds this invariant down).
 *
 * The counted wrappers additionally feed a process-wide tally of
 * simulations and simulated cycles, which tools/terp-bench reads to
 * compute sims/sec and to detect simulated-cycle drift against the
 * checked-in golden summaries.
 */

#ifndef TERP_BENCH_HARNESS_HH
#define TERP_BENCH_HARNESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/registry.hh"
#include "workloads/spec.hh"
#include "workloads/whisper.hh"

namespace terp {
namespace bench {

// Entry points of the figure/table harnesses. Each .cc also builds
// as a standalone executable with its own main() unless
// TERP_BENCH_NO_MAIN is defined (the terp_bench_suite library sets
// it so tools/terp-bench can drive the whole suite in-process).
int run_fig08(int argc, char **argv);
int run_fig09(int argc, char **argv);
int run_fig10(int argc, char **argv);
int run_fig11(int argc, char **argv);
int run_table3(int argc, char **argv);
int run_table4(int argc, char **argv);
int run_table5(int argc, char **argv);
int run_table6(int argc, char **argv);
int run_ablation(int argc, char **argv);

/**
 * Extract an optional `--jobs=N` flag, removing it from argv so the
 * positional argOr() parsing is unaffected (same contract as
 * traceDirArg). Returns N clamped to at least 1; default 1.
 */
unsigned jobsArg(int &argc, char **argv);

/** Snapshot of the process-wide simulation tally. */
struct SimTally
{
    std::uint64_t sims = 0;      //!< simulations completed
    std::uint64_t simCycles = 0; //!< simulated cycles, summed
};

/** Read the current tally (monotonic; never reset). */
SimTally tallySnapshot();

/** Record one completed simulation of @p cycles simulated cycles. */
void noteSim(std::uint64_t cycles);

/**
 * The process-wide metrics aggregate: every counted run's registry
 * is merged in (commutatively, under a lock) with the `scheme` label
 * baked into each name so runs of different schemes stay distinct.
 * Per-PMO exposure histograms are dropped at the merge — PMO ids are
 * only meaningful within one run — keeping the pmo="all" rollups.
 * Empty when metrics are disabled (TERP_METRICS=off).
 */
metrics::Registry &globalMetrics();

/** Merge one run's registry into globalMetrics(). */
void noteRunMetrics(const workloads::RunResult &r);

/** runWhisper, recorded in the tally. */
workloads::RunResult
runWhisperCounted(const std::string &name,
                  const core::RuntimeConfig &cfg,
                  const workloads::WhisperParams &params);

/** runSpec, recorded in the tally. */
workloads::RunResult
runSpecCounted(const std::string &name,
               const core::RuntimeConfig &cfg,
               const workloads::SpecParams &params);

/**
 * Queue of independent tasks drained by a fixed-size thread pool.
 *
 * Tasks must not touch shared mutable state except their own result
 * slot. run() blocks until every task finished; a task that throws
 * stops the queue and run() rethrows the first exception after the
 * pool joined.
 */
class ParallelRunner
{
  public:
    /** @param jobs Worker threads; 1 (or 0) runs inline, in order. */
    explicit ParallelRunner(unsigned jobs) : nJobs(jobs) {}

    /** Enqueue one task. Only valid before run(). */
    void add(std::function<void()> fn);

    /** Execute every queued task; returns when all completed. */
    void run();

  private:
    unsigned nJobs;
    std::vector<std::function<void()>> tasks;
};

} // namespace bench
} // namespace terp

#endif // TERP_BENCH_HARNESS_HH
