/**
 * @file
 * Fig 9 — WHISPER execution-time overheads over unprotected runs:
 * MM(40us), TM(40us) and TT at 40/80/160us EW targets (TEW 2us),
 * broken into Attach / Detach / Rand / Cond / Other components.
 *
 * Usage: fig09_whisper_overhead [sections] [--trace=DIR]
 *
 * With --trace=DIR, every protected run also records an event trace
 * and drops DIR/<prog>-<scheme>.json for Perfetto. Tracing charges
 * no cycles, so the printed numbers are identical either way.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
main(int argc, char **argv)
{
    std::string traceDir = bench::traceDirArg(argc, argv);
    WhisperParams p;
    p.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 400));

    std::printf("=== Fig 9: WHISPER overheads vs unprotected "
                "(TEW 2us) ===\n\n");
    printBreakdownHeader("prog");

    struct SchemeDef
    {
        const char *name;
        const char *slug; // filesystem-friendly, for --trace output
        core::RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"MM(40us)", "mm40", core::RuntimeConfig::mm(usToCycles(40))},
        {"TM(40us)", "tm40", core::RuntimeConfig::tm(usToCycles(40))},
        {"TT(40us)", "tt40", core::RuntimeConfig::tt(usToCycles(40))},
        {"TT(80us)", "tt80", core::RuntimeConfig::tt(usToCycles(80))},
        {"TT(160us)", "tt160",
         core::RuntimeConfig::tt(usToCycles(160))},
    };

    double avg_total[5] = {};
    for (const std::string &name : whisperNames()) {
        RunResult base =
            runWhisper(name, core::RuntimeConfig::unprotected(), p);
        int si = 0;
        for (const SchemeDef &s : schemes) {
            core::RuntimeConfig cfg =
                traceDir.empty() ? s.cfg : s.cfg.withTrace();
            RunResult r = runWhisper(name, cfg, p);
            dumpTrace(r, traceDir, name + "-" + s.slug);
            Breakdown d = breakdown(r, base);
            printBreakdownRow(name, s.name, d);
            avg_total[si++] += d.total;
        }
        std::printf("\n");
    }

    std::printf("--- averages over the six workloads ---\n");
    int si = 0;
    for (const SchemeDef &s : schemes) {
        std::printf("%-10s avg total overhead: %5.1f%%\n", s.name,
                    100.0 * avg_total[si++] / 6.0);
    }
    std::printf("\npaper: MM(40us) ~20%%, TM(40us) ~30%% (1.5x MM), "
                "TT(40us) ~6%%, decreasing with larger EW targets.\n");
    return 0;
}
