/**
 * @file
 * Fig 9 — WHISPER execution-time overheads over unprotected runs:
 * MM(40us), TM(40us) and TT at 40/80/160us EW targets (TEW 2us),
 * broken into Attach / Detach / Rand / Cond / Other components.
 *
 * Usage: fig09_whisper_overhead [sections]
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
main(int argc, char **argv)
{
    WhisperParams p;
    p.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 400));

    std::printf("=== Fig 9: WHISPER overheads vs unprotected "
                "(TEW 2us) ===\n\n");
    printBreakdownHeader("prog");

    struct SchemeDef
    {
        const char *name;
        core::RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"MM(40us)", core::RuntimeConfig::mm(usToCycles(40))},
        {"TM(40us)", core::RuntimeConfig::tm(usToCycles(40))},
        {"TT(40us)", core::RuntimeConfig::tt(usToCycles(40))},
        {"TT(80us)", core::RuntimeConfig::tt(usToCycles(80))},
        {"TT(160us)", core::RuntimeConfig::tt(usToCycles(160))},
    };

    double avg_total[5] = {};
    for (const std::string &name : whisperNames()) {
        RunResult base =
            runWhisper(name, core::RuntimeConfig::unprotected(), p);
        int si = 0;
        for (const SchemeDef &s : schemes) {
            RunResult r = runWhisper(name, s.cfg, p);
            Breakdown d = breakdown(r, base);
            printBreakdownRow(name, s.name, d);
            avg_total[si++] += d.total;
        }
        std::printf("\n");
    }

    std::printf("--- averages over the six workloads ---\n");
    int si = 0;
    for (const SchemeDef &s : schemes) {
        std::printf("%-10s avg total overhead: %5.1f%%\n", s.name,
                    100.0 * avg_total[si++] / 6.0);
    }
    std::printf("\npaper: MM(40us) ~20%%, TM(40us) ~30%% (1.5x MM), "
                "TT(40us) ~6%%, decreasing with larger EW targets.\n");
    return 0;
}
