/**
 * @file
 * Fig 9 — WHISPER execution-time overheads over unprotected runs:
 * MM(40us), TM(40us) and TT at 40/80/160us EW targets (TEW 2us),
 * broken into Attach / Detach / Rand / Cond / Other components.
 *
 * Usage: fig09_whisper_overhead [sections] [--trace=DIR] [--jobs=N]
 *
 * With --trace=DIR, every protected run also records an event trace
 * and drops DIR/<prog>-<scheme>.json for Perfetto. Tracing charges
 * no cycles, so the printed numbers are identical either way.
 */

#include <cstdio>
#include <iterator>

#include "bench_util.hh"
#include "harness.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
terp::bench::run_fig09(int argc, char **argv)
{
    std::string traceDir = bench::traceDirArg(argc, argv);
    unsigned jobs = bench::jobsArg(argc, argv);
    WhisperParams p;
    p.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 400));

    std::printf("=== Fig 9: WHISPER overheads vs unprotected "
                "(TEW 2us) ===\n\n");
    printBreakdownHeader("prog");

    struct SchemeDef
    {
        const char *name;
        const char *slug; // filesystem-friendly, for --trace output
        core::RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"MM(40us)", "mm40", core::RuntimeConfig::mm(usToCycles(40))},
        {"TM(40us)", "tm40", core::RuntimeConfig::tm(usToCycles(40))},
        {"TT(40us)", "tt40", core::RuntimeConfig::tt(usToCycles(40))},
        {"TT(80us)", "tt80", core::RuntimeConfig::tt(usToCycles(80))},
        {"TT(160us)", "tt160",
         core::RuntimeConfig::tt(usToCycles(160))},
    };
    const std::size_t ns = std::size(schemes);
    const std::vector<std::string> &names = whisperNames();

    std::vector<RunResult> base(names.size());
    std::vector<RunResult> cells(names.size() * ns);
    ParallelRunner pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.add([&, i] {
            base[i] = runWhisperCounted(
                names[i], core::RuntimeConfig::unprotected(), p);
        });
        for (std::size_t j = 0; j < ns; ++j) {
            pool.add([&, i, j] {
                core::RuntimeConfig cfg = traceDir.empty()
                                              ? schemes[j].cfg
                                              : schemes[j].cfg.withTrace();
                cells[i * ns + j] = runWhisperCounted(names[i], cfg, p);
            });
        }
    }
    pool.run();

    std::vector<double> avg_total(ns, 0.0);
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = 0; j < ns; ++j) {
            const RunResult &r = cells[i * ns + j];
            dumpTrace(r, traceDir,
                      names[i] + "-" + schemes[j].slug);
            Breakdown d = breakdown(r, base[i]);
            printBreakdownRow(names[i], schemes[j].name, d);
            avg_total[j] += d.total;
        }
        std::printf("\n");
    }

    std::printf("--- averages over the six workloads ---\n");
    for (std::size_t j = 0; j < ns; ++j) {
        std::printf("%-10s avg total overhead: %5.1f%%\n",
                    schemes[j].name,
                    100.0 * avg_total[j] /
                        static_cast<double>(names.size()));
    }
    std::printf("\npaper: MM(40us) ~20%%, TM(40us) ~30%% (1.5x MM), "
                "TT(40us) ~6%%, decreasing with larger EW targets.\n");
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_fig09(argc, argv);
}
#endif
