/**
 * @file
 * Table VI — data-only gadget analysis across attack scenarios:
 * how many read/write gadgets TERP disarms versus MERR, both as a
 * static census over the instrumented SPEC kernels and as the
 * time-weighted rates derived from measured exposure (TERP disarms
 * 1-TER of gadget time; MERR leaves ER exposed), plus the Fig 12
 * data-only attack outcome per scheme.
 *
 * Usage: table6_gadgets [sections] [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness.hh"
#include "security/dop.hh"
#include "security/gadget.hh"
#include "workloads/spec.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::security;

int
terp::bench::run_table6(int argc, char **argv)
{
    unsigned jobs = bench::jobsArg(argc, argv);
    workloads::WhisperParams wp;
    wp.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 200));
    workloads::SpecParams sp;
    sp.scale = bench::argOr(argc, argv, 2, 0.5);

    const std::vector<std::string> &wNames =
        workloads::whisperNames();
    const std::vector<std::string> &sNames = workloads::specNames();

    // Compute phase: the static census, the 2x11 measured runs and
    // the three DOP attack runs are all independent.
    std::vector<GadgetCensus> census(sNames.size());
    std::vector<workloads::RunResult> wTt(wNames.size());
    std::vector<workloads::RunResult> wMm(wNames.size());
    std::vector<workloads::RunResult> sTt(sNames.size());
    std::vector<workloads::RunResult> sMm(sNames.size());
    const core::RuntimeConfig dopCfgs[] = {
        core::RuntimeConfig::unprotected(), core::RuntimeConfig::mm(),
        core::RuntimeConfig::tt()};
    DopResult dop[3];

    bench::ParallelRunner pool(jobs);
    for (std::size_t i = 0; i < sNames.size(); ++i) {
        pool.add([&, i] {
            pm::PmoManager pmos(7);
            auto prog = workloads::buildSpec(
                sNames[i], pmos, compiler::PassConfig{}, sp);
            census[i] = analyzeGadgets(prog.module);
        });
        pool.add([&, i] {
            sTt[i] = bench::runSpecCounted(
                sNames[i], core::RuntimeConfig::tt(), sp);
        });
        pool.add([&, i] {
            sMm[i] = bench::runSpecCounted(
                sNames[i], core::RuntimeConfig::mm(), sp);
        });
    }
    for (std::size_t i = 0; i < wNames.size(); ++i) {
        pool.add([&, i] {
            wTt[i] = bench::runWhisperCounted(
                wNames[i], core::RuntimeConfig::tt(), wp);
        });
        pool.add([&, i] {
            wMm[i] = bench::runWhisperCounted(
                wNames[i], core::RuntimeConfig::mm(), wp);
        });
    }
    for (std::size_t k = 0; k < 3; ++k)
        pool.add([&, k] { dop[k] = runFtpAttack(dopCfgs[k]); });
    pool.run();

    std::printf("=== Table VI: gadget disarm analysis ===\n\n");

    // ---- static census over instrumented SPEC kernels ------------
    // The kernels are access-dominated, so most static gadget SITES
    // sit inside a pair; the security claim is temporal (the pair is
    // open only a sliver of the time), which the time-weighted rates
    // below capture -- they are what the paper's 96.6%/89.98% mean.
    std::printf("--- static census (instrumented SPEC kernels) ---\n");
    std::printf("%-8s %8s %12s %12s\n", "prog", "gadgets",
                "TERP-disarm%", "MERR-disarm%");
    for (std::size_t i = 0; i < sNames.size(); ++i) {
        const GadgetCensus &c = census[i];
        std::printf("%-8s %8llu %11.1f%% %11.1f%%\n",
                    sNames[i].c_str(),
                    (unsigned long long)c.totalGadgets,
                    100 * c.terpDisarmRate(),
                    100 * c.merrDisarmRate());
    }

    // ---- time-weighted rates from measured exposure ---------------
    std::printf("\n--- time-weighted disarm rates (measured) ---\n");
    double w_ter = 0, w_er = 0;
    for (std::size_t i = 0; i < wNames.size(); ++i) {
        w_ter += wTt[i].exposure.ter;
        w_er += wMm[i].exposure.er;
    }
    w_ter /= static_cast<double>(wNames.size());
    w_er /= static_cast<double>(wNames.size());
    std::printf("WHISPER: TERP disarms %.1f%% of gadget time "
                "(paper 96.6%%); MERR keeps %.1f%% exposed "
                "(paper 24.5%%)\n",
                100 * terpTimeWeightedDisarmRate(w_ter),
                100 * merrTimeWeightedKeptRate(w_er));

    double s_ter = 0, s_er = 0;
    for (std::size_t i = 0; i < sNames.size(); ++i) {
        s_ter += sTt[i].exposure.ter;
        s_er += sMm[i].exposure.er;
    }
    s_ter /= static_cast<double>(sNames.size());
    s_er /= static_cast<double>(sNames.size());
    std::printf("SPEC   : TERP disarms %.1f%% of gadget time "
                "(paper 89.98%%); MERR keeps %.1f%% exposed "
                "(paper 27.2%%)\n",
                100 * terpTimeWeightedDisarmRate(s_ter),
                100 * merrTimeWeightedKeptRate(s_er));

    // ---- the Fig 12 attack as the "gadgets within a pair" case ----
    std::printf("\n--- Fig 12 data-only attack outcome ---\n");
    std::printf("%-14s %12s %10s %8s\n", "scheme", "corrupted",
                "faults", "rand");
    for (std::size_t k = 0; k < 3; ++k) {
        const DopResult &r = dop[k];
        std::printf("%-14s %6llu/%-5llu %10llu %8llu\n",
                    core::schemeName(dopCfgs[k].scheme),
                    (unsigned long long)r.nodesCorrupted,
                    (unsigned long long)r.listLength,
                    (unsigned long long)r.accessFaults,
                    (unsigned long long)r.randomizations);
    }
    std::printf("\ninteractive data-only attacks are impossible "
                "within an EW (network RTT >> 40us); non-interactive "
                "probing finds the PMO with ~0.01%% probability per "
                "window.\n");
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_table6(argc, argv);
}
#endif
