/**
 * @file
 * Table VI — data-only gadget analysis across attack scenarios:
 * how many read/write gadgets TERP disarms versus MERR, both as a
 * static census over the instrumented SPEC kernels and as the
 * time-weighted rates derived from measured exposure (TERP disarms
 * 1-TER of gadget time; MERR leaves ER exposed), plus the Fig 12
 * data-only attack outcome per scheme.
 *
 * Usage: table6_gadgets [sections] [scale]
 */

#include <cstdio>

#include "bench_util.hh"
#include "security/dop.hh"
#include "security/gadget.hh"
#include "workloads/spec.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::security;

int
main(int argc, char **argv)
{
    workloads::WhisperParams wp;
    wp.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 200));
    workloads::SpecParams sp;
    sp.scale = bench::argOr(argc, argv, 2, 0.5);

    std::printf("=== Table VI: gadget disarm analysis ===\n\n");

    // ---- static census over instrumented SPEC kernels ------------
    // The kernels are access-dominated, so most static gadget SITES
    // sit inside a pair; the security claim is temporal (the pair is
    // open only a sliver of the time), which the time-weighted rates
    // below capture -- they are what the paper's 96.6%/89.98% mean.
    std::printf("--- static census (instrumented SPEC kernels) ---\n");
    std::printf("%-8s %8s %12s %12s\n", "prog", "gadgets",
                "TERP-disarm%", "MERR-disarm%");
    for (const std::string &name : workloads::specNames()) {
        pm::PmoManager pmos(7);
        auto prog = workloads::buildSpec(
            name, pmos, compiler::PassConfig{}, sp);
        GadgetCensus c = analyzeGadgets(prog.module);
        std::printf("%-8s %8llu %11.1f%% %11.1f%%\n", name.c_str(),
                    (unsigned long long)c.totalGadgets,
                    100 * c.terpDisarmRate(),
                    100 * c.merrDisarmRate());
    }

    // ---- time-weighted rates from measured exposure ---------------
    std::printf("\n--- time-weighted disarm rates (measured) ---\n");
    double w_ter = 0, w_er = 0;
    for (const std::string &name : workloads::whisperNames()) {
        auto tt = workloads::runWhisper(
            name, core::RuntimeConfig::tt(), wp);
        auto mm = workloads::runWhisper(
            name, core::RuntimeConfig::mm(), wp);
        w_ter += tt.exposure.ter;
        w_er += mm.exposure.er;
    }
    w_ter /= 6.0;
    w_er /= 6.0;
    std::printf("WHISPER: TERP disarms %.1f%% of gadget time "
                "(paper 96.6%%); MERR keeps %.1f%% exposed "
                "(paper 24.5%%)\n",
                100 * terpTimeWeightedDisarmRate(w_ter),
                100 * merrTimeWeightedKeptRate(w_er));

    double s_ter = 0, s_er = 0;
    for (const std::string &name : workloads::specNames()) {
        auto tt = workloads::runSpec(name,
                                     core::RuntimeConfig::tt(), sp);
        auto mm = workloads::runSpec(name,
                                     core::RuntimeConfig::mm(), sp);
        s_ter += tt.exposure.ter;
        s_er += mm.exposure.er;
    }
    s_ter /= 5.0;
    s_er /= 5.0;
    std::printf("SPEC   : TERP disarms %.1f%% of gadget time "
                "(paper 89.98%%); MERR keeps %.1f%% exposed "
                "(paper 27.2%%)\n",
                100 * terpTimeWeightedDisarmRate(s_ter),
                100 * merrTimeWeightedKeptRate(s_er));

    // ---- the Fig 12 attack as the "gadgets within a pair" case ----
    std::printf("\n--- Fig 12 data-only attack outcome ---\n");
    std::printf("%-14s %12s %10s %8s\n", "scheme", "corrupted",
                "faults", "rand");
    for (const auto &cfg :
         {core::RuntimeConfig::unprotected(),
          core::RuntimeConfig::mm(), core::RuntimeConfig::tt()}) {
        DopResult r = runFtpAttack(cfg);
        std::printf("%-14s %6llu/%-5llu %10llu %8llu\n",
                    core::schemeName(cfg.scheme),
                    (unsigned long long)r.nodesCorrupted,
                    (unsigned long long)r.listLength,
                    (unsigned long long)r.accessFaults,
                    (unsigned long long)r.randomizations);
    }
    std::printf("\ninteractive data-only attacks are impossible "
                "within an EW (network RTT >> 40us); non-interactive "
                "probing finds the PMO with ~0.01%% probability per "
                "window.\n");
    return 0;
}
