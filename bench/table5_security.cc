/**
 * @file
 * Table V — quantitative attack-success comparison between MERR
 * (40us EW) and TERP (40us EW, 2us TEW) for a 1 GB PMO (18-bit
 * placement entropy): per-window success probability for each attack
 * class and attack time, from the closed-form model; validated by a
 * Monte-Carlo probing simulation at reduced entropy, and fed with
 * the thread exposure rate measured from the WHISPER TT runs.
 *
 * Usage: table5_security [sections] [--jobs=N]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness.hh"
#include "security/attack_model.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::security;

int
terp::bench::run_table5(int argc, char **argv)
{
    unsigned jobs = bench::jobsArg(argc, argv);
    workloads::WhisperParams wp;
    wp.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 200));

    // Measure the fraction of an exposure window during which a
    // compromised thread actually holds permission under TERP.
    // The paper uses the measured thread exposure rate directly as
    // the fraction of a window the attacker can use (3.4% there).
    const std::vector<std::string> &names = workloads::whisperNames();
    std::vector<workloads::RunResult> ttRuns(names.size());
    bench::ParallelRunner pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.add([&, i] {
            ttRuns[i] = bench::runWhisperCounted(
                names[i], core::RuntimeConfig::tt(), wp);
        });
    }
    pool.run();

    double ter_sum = 0;
    for (const workloads::RunResult &r : ttRuns)
        ter_sum += r.exposure.ter;
    double accessible = ter_sum / static_cast<double>(names.size());

    std::printf("=== Table V: attack success probability per "
                "exposure window, 1 GB PMO ===\n");
    std::printf("measured WHISPER TT thread exposure rate: %.3f "
                "(paper: 0.034)\n\n",
                accessible);

    const char *attacks[] = {"Stack buffer overflow",
                             "Heap overflow", "Format string",
                             "Integer overflow"};
    std::printf("%-24s | %-27s | %-27s\n", "",
                "MERR (40us EW)", "TERP (40us EW, 2us TEW)");
    std::printf("%-24s | %8s %8s %8s | %8s %8s %8s\n",
                "Each attack time", "x us", "1us", "0.1us", "x us",
                "1us", "0.1us");

    AttackScenario merr;
    AttackScenario terp;
    terp.accessibleFraction = accessible;

    for (const char *atk : attacks) {
        merr.attackTimeUs = 1.0;
        terp.attackTimeUs = 1.0;
        double m1 = successProbabilityPercent(merr);
        double t1 = successProbabilityPercent(terp);
        merr.attackTimeUs = 0.1;
        terp.attackTimeUs = 0.1;
        double m01 = successProbabilityPercent(merr);
        double t01 = successProbabilityPercent(terp);
        std::printf(
            "%-24s | %6.4f/x %8.4f %8.3f | %7.5f/x %8.5f %8.4f\n",
            atk, m1, m1, m01, t1, t1, t01);
    }

    merr.attackTimeUs = 1.0;
    terp.attackTimeUs = 1.0;
    double ratio = successProbabilityPercent(merr) /
                   successProbabilityPercent(terp);
    std::printf("\nTERP success probability is %.0fx smaller than "
                "MERR (paper: ~30x).\n",
                ratio);
    std::printf("paper row: MERR 0.015/x%% | TERP 0.0005/x%%\n\n");

    // Monte-Carlo validation at reduced entropy (10 bits) so the
    // rates are measurable in reasonable time. The Rng is seeded, so
    // this stays deterministic and runs serially in the print phase.
    std::printf("--- Monte-Carlo validation (entropy reduced to "
                "2^10 slots, 40us EW) ---\n");
    Rng rng(424242);
    for (double frac : {1.0, accessible}) {
        AttackScenario s;
        s.entropyBits = 10;
        s.accessibleFraction = frac;
        double analytic = successProbabilityPercent(s);
        double measured = monteCarloSuccessPercent(s, 40000, rng);
        std::printf("accessible=%4.1f%% : analytic %.3f%%  "
                    "measured %.3f%%\n",
                    100 * frac, analytic, measured);
    }
    std::printf("\nexpected windows to breach at full entropy: MERR "
                "%.0f, TERP %.0f\n",
                expectedWindowsToBreach(merr),
                expectedWindowsToBreach(terp));
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_table5(argc, argv);
}
#endif
