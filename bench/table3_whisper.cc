/**
 * @file
 * Table III — WHISPER results with a 40 us EW target and 2 us TEW
 * target: MERR (MM) exposure windows and exposure rate versus TERP
 * (TT) silent fraction, exposure window, exposure rate, thread
 * exposure window and thread exposure rate.
 *
 * Usage: table3_whisper [sections] [--jobs=N]
 */

#include <cstdio>

#include "arch/circular_buffer.hh"
#include "bench_util.hh"
#include "harness.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
terp::bench::run_table3(int argc, char **argv)
{
    unsigned jobs = bench::jobsArg(argc, argv);
    WhisperParams p;
    p.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 400));

    const std::vector<std::string> &names = whisperNames();
    std::vector<RunResult> mmRuns(names.size());
    std::vector<RunResult> ttRuns(names.size());
    ParallelRunner pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.add([&, i] {
            mmRuns[i] = runWhisperCounted(
                names[i], core::RuntimeConfig::mm(), p);
        });
        pool.add([&, i] {
            ttRuns[i] = runWhisperCounted(
                names[i], core::RuntimeConfig::tt(), p);
        });
    }
    pool.run();

    std::printf("=== Table III: WHISPER results, target EW 40us, "
                "TEW 2us ===\n");
    std::printf("(hardware: 32-entry circular buffer, %u bytes "
                "on-chip state)\n\n",
                arch::CircularBuffer::storageBytes);
    std::printf("%-8s | %-18s %6s || %6s | %-18s %6s %6s %6s\n",
                "Prog.", "MERR(MM) EW us", "ER%", "Silent",
                "TERP(TT) EW us", "ER%", "TEW", "TER%");
    std::printf("%-8s | %-18s %6s || %6s | %-18s %6s %6s %6s\n", "",
                "avg/max", "", "%", "avg/max", "", "(us)", "");

    double sum_mm_ew = 0, sum_mm_er = 0, max_mm_ew = 0;
    double sum_sil = 0, sum_tt_ew = 0, sum_tt_er = 0;
    double sum_tew = 0, sum_ter = 0, max_tt_ew = 0;
    unsigned n = 0;

    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const RunResult &mm = mmRuns[i];
        const RunResult &tt = ttRuns[i];
        char mmew[32], ttew[32];
        std::snprintf(mmew, sizeof(mmew), "%.1f/%.1f",
                      mm.exposure.ewAvgUs, mm.exposure.ewMaxUs);
        std::snprintf(ttew, sizeof(ttew), "%.1f/%.1f",
                      tt.exposure.ewAvgUs, tt.exposure.ewMaxUs);
        std::printf(
            "%-8s | %-18s %6.1f || %6.1f | %-18s %6.1f %6.2f %6.1f\n",
            name.c_str(), mmew, 100 * mm.exposure.er,
            100 * tt.report.silentFraction, ttew,
            100 * tt.exposure.er, tt.exposure.tewAvgUs,
            100 * tt.exposure.ter);

        sum_mm_ew += mm.exposure.ewAvgUs;
        max_mm_ew = std::max(max_mm_ew, mm.exposure.ewMaxUs);
        sum_mm_er += mm.exposure.er;
        sum_sil += tt.report.silentFraction;
        sum_tt_ew += tt.exposure.ewAvgUs;
        max_tt_ew = std::max(max_tt_ew, tt.exposure.ewMaxUs);
        sum_tt_er += tt.exposure.er;
        sum_tew += tt.exposure.tewAvgUs;
        sum_ter += tt.exposure.ter;
        ++n;
    }

    char mmavg[32], ttavg[32];
    std::snprintf(mmavg, sizeof(mmavg), "%.1f/%.1f", sum_mm_ew / n,
                  max_mm_ew);
    std::snprintf(ttavg, sizeof(ttavg), "%.1f/%.1f", sum_tt_ew / n,
                  max_tt_ew);
    std::printf(
        "%-8s | %-18s %6.1f || %6.1f | %-18s %6.1f %6.2f %6.1f\n",
        "Avg.", mmavg, 100 * sum_mm_er / n, 100 * sum_sil / n, ttavg,
        100 * sum_tt_er / n, sum_tew / n, 100 * sum_ter / n);

    std::printf("\npaper Avg.: MM EW 14.5/34.3 ER 24.5%% | silent "
                "88.8%% | TT EW 39.4/40.0 ER 53.2%% TEW 1.2us TER "
                "3.4%%\n");
    std::printf("shape checks: TT EW pinned at the target while MM "
                "EW varies; TEW < 2us; TER << ER.\n");
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_table3(argc, argv);
}
#endif
