/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 */

#ifndef TERP_BENCH_BENCH_UTIL_HH
#define TERP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/runtime.hh"
#include "trace/export.hh"
#include "workloads/whisper.hh"

namespace terp {
namespace bench {

/** Percent string helper. */
inline std::string
pct(double fraction, int prec = 1)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, 100.0 * fraction);
    return buf;
}

/** Overhead of a run vs its baseline, as a fraction. */
inline double
overhead(const workloads::RunResult &r,
         const workloads::RunResult &base)
{
    return workloads::overheadVsBase(r, base);
}

/** Per-category overhead fractions of base time (stacked bars). */
struct Breakdown
{
    double attach, detach, rand, cond, other, total;
};

inline Breakdown
breakdown(const workloads::RunResult &r,
          const workloads::RunResult &base)
{
    // Components are charged across all threads, so normalize them
    // by the baseline's total CPU time (= wall clock for one
    // thread); the total stays wall-clock overhead.
    double b = static_cast<double>(
        base.report.work > 0 ? base.report.work : base.totalCycles);
    Breakdown d;
    d.attach = static_cast<double>(r.report.attach) / b;
    d.detach = static_cast<double>(r.report.detach) / b;
    d.rand = static_cast<double>(r.report.rand) / b;
    d.cond = static_cast<double>(r.report.cond) / b;
    // "Other" absorbs permission-matrix checks plus residual work
    // inflation (TLB refills after shootdowns etc.).
    d.total = overhead(r, base);
    double accounted = d.attach + d.detach + d.rand + d.cond;
    d.other = d.total > accounted ? d.total - accounted : 0.0;
    return d;
}

inline void
printBreakdownHeader(const char *first_col)
{
    std::printf("%-10s %-12s %8s %8s %8s %8s %8s %9s\n", first_col,
                "scheme", "Attach%", "Detach%", "Rand%", "Cond%",
                "Other%", "Total%");
}

inline void
printBreakdownRow(const std::string &name, const std::string &scheme,
                  const Breakdown &d)
{
    std::printf("%-10s %-12s %8.1f %8.1f %8.1f %8.1f %8.1f %9.1f\n",
                name.c_str(), scheme.c_str(), 100 * d.attach,
                100 * d.detach, 100 * d.rand, 100 * d.cond,
                100 * d.other, 100 * d.total);
}

/** Parse an optional numeric CLI override (argv[i] or fallback). */
inline double
argOr(int argc, char **argv, int i, double fallback)
{
    if (argc > i)
        return std::atof(argv[i]);
    return fallback;
}

/**
 * Extract an optional `--trace=DIR` flag, removing it from argv so
 * positional argOr() parsing is unaffected. Returns the directory
 * (empty when the flag is absent). When set, harnesses should run
 * with cfg.withTrace() and drop one Chrome-trace JSON per run into
 * DIR via dumpTrace().
 */
inline std::string
traceDirArg(int &argc, char **argv)
{
    std::string dir;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--trace=", 0) == 0)
            dir = a.substr(8);
        else
            argv[w++] = argv[i];
    }
    argc = w;
    return dir;
}

/** Write one run's Chrome trace as DIR/LABEL.json (if traced). */
inline void
dumpTrace(const workloads::RunResult &r, const std::string &dir,
          const std::string &label)
{
    if (dir.empty() || !r.trace)
        return;
    std::string path = dir + "/" + label + ".json";
    if (!trace::writeChromeTraceFile(*r.trace, path, label))
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
    if (r.traceAudit && !r.traceAudit->ok)
        std::fprintf(stderr, "warning: %s: %s\n", label.c_str(),
                     r.traceAudit->summary().c_str());
}

} // namespace bench
} // namespace terp

#endif // TERP_BENCH_BENCH_UTIL_HH
