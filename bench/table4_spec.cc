/**
 * @file
 * Table IV — SPEC surrogate results on a 40 us EW target (metrics
 * averaged over all PMOs): per-app PMO count, MERR (MM) exposure
 * windows and rate, TERP (TT) silent fraction, exposure window,
 * exposure rate, TEW and TER.
 *
 * Usage: table4_spec [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness.hh"
#include "workloads/spec.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
terp::bench::run_table4(int argc, char **argv)
{
    unsigned jobs = bench::jobsArg(argc, argv);
    SpecParams p;
    p.scale = bench::argOr(argc, argv, 1, 1.0);

    const std::vector<std::string> &names = specNames();
    std::vector<RunResult> mmRuns(names.size());
    std::vector<RunResult> ttRuns(names.size());
    ParallelRunner pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.add([&, i] {
            mmRuns[i] =
                runSpecCounted(names[i], core::RuntimeConfig::mm(), p);
        });
        pool.add([&, i] {
            ttRuns[i] =
                runSpecCounted(names[i], core::RuntimeConfig::tt(), p);
        });
    }
    pool.run();

    std::printf("=== Table IV: SPEC results on 40us EW "
                "(avg over all PMOs) ===\n\n");
    std::printf(
        "%-8s %5s | %-16s %6s || %6s | %-14s %6s %6s %6s\n", "Prog.",
        "#PMO", "MM EW us avg/max", "ER%", "Silent", "TT EW avg us",
        "ER%", "TEW", "TER%");

    double s_pmo = 0, s_mm_ew = 0, s_mm_er = 0, s_sil = 0;
    double s_tt_ew = 0, s_tt_er = 0, s_tew = 0, s_ter = 0;
    unsigned n = 0;

    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const RunResult &mm = mmRuns[i];
        const RunResult &tt = ttRuns[i];
        char mmew[32];
        std::snprintf(mmew, sizeof(mmew), "%.1f/%.1f",
                      mm.exposure.ewAvgUs, mm.exposure.ewMaxUs);
        std::printf("%-8s %5u | %-16s %6.1f || %6.1f | %-14.1f "
                    "%6.1f %6.2f %6.1f\n",
                    name.c_str(), specPmoCount(name), mmew,
                    100 * mm.exposure.er,
                    100 * tt.report.silentFraction,
                    tt.exposure.ewAvgUs, 100 * tt.exposure.er,
                    tt.exposure.tewAvgUs, 100 * tt.exposure.ter);
        s_pmo += specPmoCount(name);
        s_mm_ew += mm.exposure.ewAvgUs;
        s_mm_er += mm.exposure.er;
        s_sil += tt.report.silentFraction;
        s_tt_ew += tt.exposure.ewAvgUs;
        s_tt_er += tt.exposure.er;
        s_tew += tt.exposure.tewAvgUs;
        s_ter += tt.exposure.ter;
        ++n;
    }

    std::printf("%-8s %5.1f | %13.1f avg %6.1f || %6.1f | %-14.1f "
                "%6.1f %6.2f %6.1f\n",
                "Avg.", s_pmo / n, s_mm_ew / n, 100 * s_mm_er / n,
                100 * s_sil / n, s_tt_ew / n, 100 * s_tt_er / n,
                s_tew / n, 100 * s_ter / n);

    std::printf("\npaper Avg.: 3.6 PMOs | MM EW 4.4/25.4 ER 27.2%% | "
                "silent 96.8%% | TT EW 39.7 ER 38.1%% TEW 1.02us TER "
                "10.0%%\n");
    std::printf("shape checks: ~97%% of calls silent; TT EW pinned "
                "at the target; higher PMO count => lower ER (xz "
                "lowest).\n");
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_table4(argc, argv);
}
#endif
