/**
 * @file
 * Ablation studies for TERP's design parameters, beyond the paper's
 * headline configurations:
 *
 *  1. EW-target sweep: the security/performance trade-off curve —
 *     per-window attack success probability (Table V model) against
 *     TT overhead, for EW targets from 10us to 320us.
 *  2. Sweep-granularity sensitivity: how the hardware timer period
 *     affects how far windows overshoot the EW target.
 *  3. TEW-insertion-granularity ablation: the compiler's TEW
 *     threshold vs the measured thread exposure and cond overhead.
 *
 * Usage: ablation_sweep [sections] [--jobs=N]
 */

#include <cstdio>
#include <iterator>

#include "bench_util.hh"
#include "harness.hh"
#include "security/attack_model.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
terp::bench::run_ablation(int argc, char **argv)
{
    unsigned jobs = bench::jobsArg(argc, argv);
    WhisperParams p;
    p.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 250));

    const double ewTargets[] = {10.0, 20.0, 40.0, 80.0, 160.0, 320.0};
    const double sweepPeriods[] = {0.5, 1.0, 2.0, 4.0, 8.0};
    const double tewTargets[] = {0.5, 1.0, 2.0, 4.0, 8.0};

    // Compute phase: three bases and every sweep point.
    RunResult base, hbase, tbase;
    std::vector<RunResult> ewRuns(std::size(ewTargets));
    std::vector<RunResult> perRuns(std::size(sweepPeriods));
    std::vector<RunResult> tewRuns(std::size(tewTargets));
    ParallelRunner pool(jobs);
    pool.add([&] {
        base = runWhisperCounted(
            "ycsb", core::RuntimeConfig::unprotected(), p);
    });
    for (std::size_t i = 0; i < std::size(ewTargets); ++i) {
        pool.add([&, i] {
            ewRuns[i] = runWhisperCounted(
                "ycsb",
                core::RuntimeConfig::tt(usToCycles(ewTargets[i])), p);
        });
    }
    pool.add([&] {
        hbase = runWhisperCounted(
            "hashmap", core::RuntimeConfig::unprotected(), p);
    });
    for (std::size_t i = 0; i < std::size(sweepPeriods); ++i) {
        pool.add([&, i] {
            WhisperParams sp = p;
            sp.sweepPeriod = usToCycles(sweepPeriods[i]);
            perRuns[i] = runWhisperCounted(
                "hashmap", core::RuntimeConfig::tt(), sp);
        });
    }
    pool.add([&] {
        tbase = runWhisperCounted(
            "tpcc", core::RuntimeConfig::unprotected(), p);
    });
    for (std::size_t i = 0; i < std::size(tewTargets); ++i) {
        pool.add([&, i] {
            tewRuns[i] = runWhisperCounted(
                "tpcc",
                core::RuntimeConfig::tt(usToCycles(40),
                                        usToCycles(tewTargets[i])),
                p);
        });
    }
    pool.run();

    // ---- 1. EW target sweep ----------------------------------------
    std::printf("=== Ablation 1: EW target sweep (ycsb) — security "
                "vs overhead ===\n");
    std::printf("%-8s %10s %10s %12s %16s\n", "EW(us)", "overhead",
                "EWavg(us)", "ER%", "P(success)/win");
    for (std::size_t i = 0; i < std::size(ewTargets); ++i) {
        const double ew = ewTargets[i];
        const RunResult &r = ewRuns[i];
        security::AttackScenario s;
        s.ewUs = ew;
        s.accessibleFraction = r.exposure.ter;
        std::printf("%-8.0f %9.1f%% %10.1f %11.1f%% %15.5f%%\n", ew,
                    100 * overheadVsBase(r, base), r.exposure.ewAvgUs,
                    100 * r.exposure.er,
                    security::successProbabilityPercent(s));
    }
    std::printf("=> larger windows cost less but linearly enlarge "
                "the probe budget per placement.\n\n");

    // ---- 2. sweep period sensitivity ---------------------------------
    std::printf("=== Ablation 2: hardware sweep period vs window "
                "overshoot (hashmap, 40us EW) ===\n");
    std::printf("%-12s %12s %12s %10s\n", "period(us)", "EWavg(us)",
                "EWmax(us)", "overhead");
    for (std::size_t i = 0; i < std::size(sweepPeriods); ++i) {
        const RunResult &r = perRuns[i];
        std::printf("%-12.1f %12.1f %12.1f %9.1f%%\n",
                    sweepPeriods[i], r.exposure.ewAvgUs,
                    r.exposure.ewMaxUs,
                    100 * overheadVsBase(r, hbase));
    }
    std::printf("=> windows close at most ~1 sweep period + one "
                "region past the 40us deadline; a coarser timer "
                "trades overshoot for fewer sweeps.\n\n");

    // ---- 3. TEW threshold ablation -----------------------------------
    std::printf("=== Ablation 3: TEW target vs thread exposure "
                "(tpcc, 40us EW) ===\n");
    std::printf("%-10s %10s %10s %10s\n", "TEW(us)", "TEWavg",
                "TER%", "overhead");
    for (std::size_t i = 0; i < std::size(tewTargets); ++i) {
        const RunResult &r = tewRuns[i];
        std::printf("%-10.1f %10.2f %9.1f%% %9.1f%%\n", tewTargets[i],
                    r.exposure.tewAvgUs, 100 * r.exposure.ter,
                    100 * overheadVsBase(r, tbase));
    }
    std::printf("=> the TEW target does not change the runtime cost "
                "structure (the permission toggles are 27-cycle\n"
                "   instructions either way); it bounds how long a "
                "compromised thread can act, cf. Fig 8's 2us pick.\n");
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_ablation(argc, argv);
}
#endif
