/**
 * @file
 * Ablation studies for TERP's design parameters, beyond the paper's
 * headline configurations:
 *
 *  1. EW-target sweep: the security/performance trade-off curve —
 *     per-window attack success probability (Table V model) against
 *     TT overhead, for EW targets from 10us to 320us.
 *  2. Sweep-granularity sensitivity: how the hardware timer period
 *     affects how far windows overshoot the EW target.
 *  3. TEW-insertion-granularity ablation: the compiler's TEW
 *     threshold vs the measured thread exposure and cond overhead.
 *
 * Usage: ablation_sweep [sections]
 */

#include <cstdio>

#include "bench_util.hh"
#include "security/attack_model.hh"
#include "workloads/whisper.hh"

using namespace terp;
using namespace terp::workloads;

int
main(int argc, char **argv)
{
    WhisperParams p;
    p.sections = static_cast<std::uint64_t>(
        bench::argOr(argc, argv, 1, 250));

    // ---- 1. EW target sweep ----------------------------------------
    std::printf("=== Ablation 1: EW target sweep (ycsb) — security "
                "vs overhead ===\n");
    std::printf("%-8s %10s %10s %12s %16s\n", "EW(us)", "overhead",
                "EWavg(us)", "ER%", "P(success)/win");
    RunResult base =
        runWhisper("ycsb", core::RuntimeConfig::unprotected(), p);
    for (double ew : {10.0, 20.0, 40.0, 80.0, 160.0, 320.0}) {
        RunResult r = runWhisper(
            "ycsb", core::RuntimeConfig::tt(usToCycles(ew)), p);
        security::AttackScenario s;
        s.ewUs = ew;
        s.accessibleFraction = r.exposure.ter;
        std::printf("%-8.0f %9.1f%% %10.1f %11.1f%% %15.5f%%\n", ew,
                    100 * overheadVsBase(r, base), r.exposure.ewAvgUs,
                    100 * r.exposure.er,
                    security::successProbabilityPercent(s));
    }
    std::printf("=> larger windows cost less but linearly enlarge "
                "the probe budget per placement.\n\n");

    // ---- 2. sweep period sensitivity ---------------------------------
    std::printf("=== Ablation 2: hardware sweep period vs window "
                "overshoot (hashmap, 40us EW) ===\n");
    std::printf("%-12s %12s %12s %10s\n", "period(us)", "EWavg(us)",
                "EWmax(us)", "overhead");
    RunResult hbase =
        runWhisper("hashmap", core::RuntimeConfig::unprotected(), p);
    for (double period : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        WhisperParams sp = p;
        sp.sweepPeriod = usToCycles(period);
        RunResult r =
            runWhisper("hashmap", core::RuntimeConfig::tt(), sp);
        std::printf("%-12.1f %12.1f %12.1f %9.1f%%\n", period,
                    r.exposure.ewAvgUs, r.exposure.ewMaxUs,
                    100 * overheadVsBase(r, hbase));
    }
    std::printf("=> windows close at most ~1 sweep period + one "
                "region past the 40us deadline; a coarser timer "
                "trades overshoot for fewer sweeps.\n\n");

    // ---- 3. TEW threshold ablation -----------------------------------
    std::printf("=== Ablation 3: TEW target vs thread exposure "
                "(tpcc, 40us EW) ===\n");
    std::printf("%-10s %10s %10s %10s\n", "TEW(us)", "TEWavg",
                "TER%", "overhead");
    RunResult tbase =
        runWhisper("tpcc", core::RuntimeConfig::unprotected(), p);
    for (double tew : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        RunResult r = runWhisper(
            "tpcc",
            core::RuntimeConfig::tt(usToCycles(40),
                                    usToCycles(tew)),
            p);
        std::printf("%-10.1f %10.2f %9.1f%% %9.1f%%\n", tew,
                    r.exposure.tewAvgUs, 100 * r.exposure.ter,
                    100 * overheadVsBase(r, tbase));
    }
    std::printf("=> the TEW target does not change the runtime cost "
                "structure (the permission toggles are 27-cycle\n"
                "   instructions either way); it bounds how long a "
                "compromised thread can act, cf. Fig 8's 2us pick.\n");
    return 0;
}
