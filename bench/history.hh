/**
 * @file
 * Append-only benchmark history (bench/history.jsonl).
 *
 * Every terp-bench / terp-serve invocation given --history appends
 * one JSON line — `{git rev, tool, sims/s, p99 EW, p99 latency}` —
 * so throughput and exposure-tail regressions are visible across
 * commits without re-running old revisions. Append-only by design:
 * the file is a log, never rewritten, and concurrent appenders are
 * safe because each record is a single short O_APPEND write.
 *
 * Best-of-N convention: when a tool is run with --repeat=N it still
 * appends exactly ONE record, computed from the fastest pass
 * (minimum wall clock, per-pass simulated work). Simulated work is
 * deterministic, so passes differ only by host noise; taking the
 * minimum reports the machine's capability rather than its load,
 * which keeps records comparable across commits measured at
 * different background-load levels. Records never state N — a
 * best-of-3 and a single run are intentionally the same schema.
 */

#ifndef TERP_BENCH_HISTORY_HH
#define TERP_BENCH_HISTORY_HH

#include <cstdint>
#include <string>

namespace terp {
namespace bench {

/** Short git revision of the working tree, or "unknown". */
std::string gitRev();

/** One history record; zeros mean "not measured by this tool". */
struct HistoryRecord
{
    std::string tool;            //!< "terp-bench" / "terp-serve"
    /**
     * What `sims_per_s` actually measures for this tool —
     * "sims_per_s" (terp-bench: simulations per host second) or
     * "req_per_s" (terp-serve: completed requests per host second).
     * The JSON key name predates terp-serve and is kept for v1
     * consumers; the label disambiguates (schema v2).
     */
    std::string metric = "sims_per_s";
    double simsPerS = 0.0;       //!< host throughput (see metric)
    std::uint64_t p99EwCycles = 0;
    std::uint64_t p99LatencyCycles = 0;
};

/**
 * Append @p rec (plus the current git revision and the record
 * schema version) as one line of JSON to @p path. The rendering is
 * locale-independent (a comma-decimal process locale must not
 * produce invalid JSON) and string fields are escaped. Returns
 * false if the file cannot be opened, written, or closed.
 */
bool appendHistory(const std::string &path, const HistoryRecord &rec);

} // namespace bench
} // namespace terp

#endif // TERP_BENCH_HISTORY_HH
