/**
 * @file
 * Fig 11 — 4-thread SPEC results across EW targets, with the
 * benefits breakdown: Basic semantics (threads serialize on a
 * process-wide attach), TM (every conditional op a system call),
 * "+Cond" (conditional instructions without the circular buffer) and
 * "+CB" (full TT with window combining).
 *
 * Usage: fig11_spec_mt [scale] [threads]
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
main(int argc, char **argv)
{
    SpecParams p;
    p.scale = bench::argOr(argc, argv, 1, 0.5);
    p.threads =
        static_cast<unsigned>(bench::argOr(argc, argv, 2, 4));

    std::printf("=== Fig 11: %u-thread SPEC overheads vs "
                "unprotected ===\n\n",
                p.threads);

    struct SchemeDef
    {
        const char *name;
        core::RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"Basic", core::RuntimeConfig::basicSemantics()},
        {"TM(2us)", core::RuntimeConfig::tm()},
        {"+Cond", core::RuntimeConfig::ttNoCombining()},
        {"+CB(40us)", core::RuntimeConfig::tt(usToCycles(40))},
        {"+CB(80us)", core::RuntimeConfig::tt(usToCycles(80))},
        {"+CB(160us)", core::RuntimeConfig::tt(usToCycles(160))},
    };

    printBreakdownHeader("prog");
    double avg_total[6] = {};
    for (const std::string &name : specNames()) {
        RunResult base =
            runSpec(name, core::RuntimeConfig::unprotected(), p);
        int si = 0;
        for (const SchemeDef &s : schemes) {
            RunResult r = runSpec(name, s.cfg, p);
            Breakdown d = breakdown(r, base);
            printBreakdownRow(name, s.name, d);
            avg_total[si++] += d.total;
        }
        std::printf("\n");
    }

    std::printf("--- averages over the five kernels ---\n");
    int si = 0;
    for (const SchemeDef &s : schemes) {
        std::printf("%-11s avg total overhead: %7.1f%%\n", s.name,
                    100.0 * avg_total[si++] / 5.0);
    }
    std::printf("\npaper: Basic semantics ~800-1000%% (one thread "
                "attaches at a time), +Cond and TM in the hundreds "
                "of percent, +CB (full TERP) at or below ~15%%, "
                "falling with larger EW targets.\n");
    return 0;
}
