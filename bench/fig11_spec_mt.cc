/**
 * @file
 * Fig 11 — 4-thread SPEC results across EW targets, with the
 * benefits breakdown: Basic semantics (threads serialize on a
 * process-wide attach), TM (every conditional op a system call),
 * "+Cond" (conditional instructions without the circular buffer) and
 * "+CB" (full TT with window combining).
 *
 * Usage: fig11_spec_mt [scale] [threads] [--jobs=N]
 */

#include <cstdio>
#include <iterator>

#include "bench_util.hh"
#include "harness.hh"
#include "workloads/spec.hh"

using namespace terp;
using namespace terp::workloads;
using namespace terp::bench;

int
terp::bench::run_fig11(int argc, char **argv)
{
    unsigned jobs = bench::jobsArg(argc, argv);
    SpecParams p;
    p.scale = bench::argOr(argc, argv, 1, 0.5);
    p.threads =
        static_cast<unsigned>(bench::argOr(argc, argv, 2, 4));

    std::printf("=== Fig 11: %u-thread SPEC overheads vs "
                "unprotected ===\n\n",
                p.threads);

    struct SchemeDef
    {
        const char *name;
        core::RuntimeConfig cfg;
    };
    const SchemeDef schemes[] = {
        {"Basic", core::RuntimeConfig::basicSemantics()},
        {"TM(2us)", core::RuntimeConfig::tm()},
        {"+Cond", core::RuntimeConfig::ttNoCombining()},
        {"+CB(40us)", core::RuntimeConfig::tt(usToCycles(40))},
        {"+CB(80us)", core::RuntimeConfig::tt(usToCycles(80))},
        {"+CB(160us)", core::RuntimeConfig::tt(usToCycles(160))},
    };
    const std::size_t ns = std::size(schemes);
    const std::vector<std::string> &names = specNames();

    // Compute phase: every cell is an independent simulation.
    std::vector<RunResult> base(names.size());
    std::vector<RunResult> cells(names.size() * ns);
    ParallelRunner pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.add([&, i] {
            base[i] = runSpecCounted(
                names[i], core::RuntimeConfig::unprotected(), p);
        });
        for (std::size_t j = 0; j < ns; ++j) {
            pool.add([&, i, j] {
                cells[i * ns + j] =
                    runSpecCounted(names[i], schemes[j].cfg, p);
            });
        }
    }
    pool.run();

    // Print phase: the original serial loops, reading the slots.
    printBreakdownHeader("prog");
    std::vector<double> avg_total(ns, 0.0);
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = 0; j < ns; ++j) {
            Breakdown d = breakdown(cells[i * ns + j], base[i]);
            printBreakdownRow(names[i], schemes[j].name, d);
            avg_total[j] += d.total;
        }
        std::printf("\n");
    }

    std::printf("--- averages over the five kernels ---\n");
    for (std::size_t j = 0; j < ns; ++j) {
        std::printf("%-11s avg total overhead: %7.1f%%\n",
                    schemes[j].name,
                    100.0 * avg_total[j] /
                        static_cast<double>(names.size()));
    }
    std::printf("\npaper: Basic semantics ~800-1000%% (one thread "
                "attaches at a time), +Cond and TM in the hundreds "
                "of percent, +CB (full TERP) at or below ~15%%, "
                "falling with larger EW targets.\n");
    return 0;
}

#ifndef TERP_BENCH_NO_MAIN
int
main(int argc, char **argv)
{
    return terp::bench::run_fig11(argc, argv);
}
#endif
