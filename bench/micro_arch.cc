/**
 * @file
 * Microbenchmarks (google-benchmark) for the architecture
 * components: circular-buffer CONDAT/CONDDT decision logic, the
 * sweep, permission-matrix checks, MPK domain updates, and the cache
 * / TLB models. These measure host-side simulation throughput, which
 * bounds how fast the whole evaluation runs.
 */

#include <benchmark/benchmark.h>

#include "arch/circular_buffer.hh"
#include "arch/mpk.hh"
#include "arch/perm_matrix.hh"
#include "common/rng.hh"
#include "sim/cache.hh"
#include "sim/tlb.hh"

using namespace terp;

static void
BM_CondAttachDetachPair(benchmark::State &state)
{
    arch::CircularBuffer cb;
    Cycles t = 0;
    for (auto _ : state) {
        cb.condAttach(1, t);
        benchmark::DoNotOptimize(
            cb.condDetach(1, t + 10, 1000000));
        t += 20;
    }
}
BENCHMARK(BM_CondAttachDetachPair);

static void
BM_CircularBufferSweep(benchmark::State &state)
{
    arch::CircularBuffer cb;
    const auto pmos = static_cast<unsigned>(state.range(0));
    for (unsigned p = 1; p <= pmos; ++p)
        cb.condAttach(p, 0);
    Cycles t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cb.sweep(t, 1u << 30));
        t += 1000;
    }
}
BENCHMARK(BM_CircularBufferSweep)->Arg(1)->Arg(8)->Arg(32);

static void
BM_PermMatrixCheck(benchmark::State &state)
{
    arch::PermissionMatrix m;
    const auto entries = static_cast<unsigned>(state.range(0));
    for (unsigned i = 1; i <= entries; ++i)
        m.add(i, i * 0x100000, 0x10000, pm::Mode::ReadWrite);
    Rng rng(1);
    for (auto _ : state) {
        std::uint64_t a =
            (1 + rng.nextBelow(entries)) * 0x100000 + 64;
        benchmark::DoNotOptimize(m.check(a, false));
    }
}
BENCHMARK(BM_PermMatrixCheck)->Arg(1)->Arg(2)->Arg(6);

static void
BM_MpkGrantRevoke(benchmark::State &state)
{
    arch::ThreadDomains d;
    for (auto _ : state) {
        d.grant(0, 1, pm::Mode::ReadWrite);
        benchmark::DoNotOptimize(d.allows(0, 1, true));
        d.revoke(0, 1);
    }
}
BENCHMARK(BM_MpkGrantRevoke);

static void
BM_CacheAccess(benchmark::State &state)
{
    sim::Cache c(32 * KiB, 8);
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(rng.nextBelow(1 * MiB)));
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_TlbLookup(benchmark::State &state)
{
    sim::TlbHierarchy t;
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            t.lookup(rng.nextBelow(64 * MiB)));
    }
}
BENCHMARK(BM_TlbLookup);

BENCHMARK_MAIN();
