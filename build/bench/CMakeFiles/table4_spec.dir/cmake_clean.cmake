file(REMOVE_RECURSE
  "CMakeFiles/table4_spec.dir/table4_spec.cc.o"
  "CMakeFiles/table4_spec.dir/table4_spec.cc.o.d"
  "table4_spec"
  "table4_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
