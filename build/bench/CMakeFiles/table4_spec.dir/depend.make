# Empty dependencies file for table4_spec.
# This may be replaced when dependencies are built.
