# Empty compiler generated dependencies file for fig10_spec_overhead.
# This may be replaced when dependencies are built.
