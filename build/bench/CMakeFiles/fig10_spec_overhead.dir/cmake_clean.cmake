file(REMOVE_RECURSE
  "CMakeFiles/fig10_spec_overhead.dir/fig10_spec_overhead.cc.o"
  "CMakeFiles/fig10_spec_overhead.dir/fig10_spec_overhead.cc.o.d"
  "fig10_spec_overhead"
  "fig10_spec_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_spec_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
