# Empty dependencies file for table6_gadgets.
# This may be replaced when dependencies are built.
