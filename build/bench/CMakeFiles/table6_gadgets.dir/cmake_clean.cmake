file(REMOVE_RECURSE
  "CMakeFiles/table6_gadgets.dir/table6_gadgets.cc.o"
  "CMakeFiles/table6_gadgets.dir/table6_gadgets.cc.o.d"
  "table6_gadgets"
  "table6_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
