
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table6_gadgets.cc" "bench/CMakeFiles/table6_gadgets.dir/table6_gadgets.cc.o" "gcc" "bench/CMakeFiles/table6_gadgets.dir/table6_gadgets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/terp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/terp_security.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/terp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/terp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/terp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/terp_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/terp_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/terp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
