# Empty compiler generated dependencies file for table3_whisper.
# This may be replaced when dependencies are built.
