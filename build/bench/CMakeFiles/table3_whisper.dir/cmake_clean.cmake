file(REMOVE_RECURSE
  "CMakeFiles/table3_whisper.dir/table3_whisper.cc.o"
  "CMakeFiles/table3_whisper.dir/table3_whisper.cc.o.d"
  "table3_whisper"
  "table3_whisper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_whisper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
