# Empty dependencies file for micro_arch.
# This may be replaced when dependencies are built.
