file(REMOVE_RECURSE
  "CMakeFiles/micro_arch.dir/micro_arch.cc.o"
  "CMakeFiles/micro_arch.dir/micro_arch.cc.o.d"
  "micro_arch"
  "micro_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
