file(REMOVE_RECURSE
  "CMakeFiles/table5_security.dir/table5_security.cc.o"
  "CMakeFiles/table5_security.dir/table5_security.cc.o.d"
  "table5_security"
  "table5_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
