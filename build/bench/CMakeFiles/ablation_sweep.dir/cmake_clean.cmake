file(REMOVE_RECURSE
  "CMakeFiles/ablation_sweep.dir/ablation_sweep.cc.o"
  "CMakeFiles/ablation_sweep.dir/ablation_sweep.cc.o.d"
  "ablation_sweep"
  "ablation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
