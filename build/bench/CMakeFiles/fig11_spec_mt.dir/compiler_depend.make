# Empty compiler generated dependencies file for fig11_spec_mt.
# This may be replaced when dependencies are built.
