file(REMOVE_RECURSE
  "CMakeFiles/fig11_spec_mt.dir/fig11_spec_mt.cc.o"
  "CMakeFiles/fig11_spec_mt.dir/fig11_spec_mt.cc.o.d"
  "fig11_spec_mt"
  "fig11_spec_mt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_spec_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
