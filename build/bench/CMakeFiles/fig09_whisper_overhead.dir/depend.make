# Empty dependencies file for fig09_whisper_overhead.
# This may be replaced when dependencies are built.
