# Empty dependencies file for fig08_dead_time.
# This may be replaced when dependencies are built.
