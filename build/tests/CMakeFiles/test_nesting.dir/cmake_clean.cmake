file(REMOVE_RECURSE
  "CMakeFiles/test_nesting.dir/test_nesting.cc.o"
  "CMakeFiles/test_nesting.dir/test_nesting.cc.o.d"
  "test_nesting"
  "test_nesting.pdb"
  "test_nesting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
