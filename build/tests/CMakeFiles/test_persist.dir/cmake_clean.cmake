file(REMOVE_RECURSE
  "CMakeFiles/test_persist.dir/test_persist.cc.o"
  "CMakeFiles/test_persist.dir/test_persist.cc.o.d"
  "test_persist"
  "test_persist.pdb"
  "test_persist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
