file(REMOVE_RECURSE
  "CMakeFiles/test_pass.dir/test_pass.cc.o"
  "CMakeFiles/test_pass.dir/test_pass.cc.o.d"
  "test_pass"
  "test_pass.pdb"
  "test_pass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
