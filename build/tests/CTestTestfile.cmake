# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pm[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_pass[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_persist[1]_include.cmake")
include("/root/repo/build/tests/test_nesting[1]_include.cmake")
include("/root/repo/build/tests/test_lifecycle[1]_include.cmake")
