# Empty compiler generated dependencies file for terp_sim.
# This may be replaced when dependencies are built.
