file(REMOVE_RECURSE
  "CMakeFiles/terp_sim.dir/cache.cc.o"
  "CMakeFiles/terp_sim.dir/cache.cc.o.d"
  "CMakeFiles/terp_sim.dir/machine.cc.o"
  "CMakeFiles/terp_sim.dir/machine.cc.o.d"
  "CMakeFiles/terp_sim.dir/thread.cc.o"
  "CMakeFiles/terp_sim.dir/thread.cc.o.d"
  "CMakeFiles/terp_sim.dir/tlb.cc.o"
  "CMakeFiles/terp_sim.dir/tlb.cc.o.d"
  "libterp_sim.a"
  "libterp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
