
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/terp_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/terp_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/terp_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/terp_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/thread.cc" "src/sim/CMakeFiles/terp_sim.dir/thread.cc.o" "gcc" "src/sim/CMakeFiles/terp_sim.dir/thread.cc.o.d"
  "/root/repo/src/sim/tlb.cc" "src/sim/CMakeFiles/terp_sim.dir/tlb.cc.o" "gcc" "src/sim/CMakeFiles/terp_sim.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/terp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
