file(REMOVE_RECURSE
  "libterp_sim.a"
)
