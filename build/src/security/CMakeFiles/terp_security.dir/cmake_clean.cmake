file(REMOVE_RECURSE
  "CMakeFiles/terp_security.dir/attack_model.cc.o"
  "CMakeFiles/terp_security.dir/attack_model.cc.o.d"
  "CMakeFiles/terp_security.dir/dead_time.cc.o"
  "CMakeFiles/terp_security.dir/dead_time.cc.o.d"
  "CMakeFiles/terp_security.dir/dop.cc.o"
  "CMakeFiles/terp_security.dir/dop.cc.o.d"
  "CMakeFiles/terp_security.dir/gadget.cc.o"
  "CMakeFiles/terp_security.dir/gadget.cc.o.d"
  "libterp_security.a"
  "libterp_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
