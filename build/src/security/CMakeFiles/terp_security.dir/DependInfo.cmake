
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/attack_model.cc" "src/security/CMakeFiles/terp_security.dir/attack_model.cc.o" "gcc" "src/security/CMakeFiles/terp_security.dir/attack_model.cc.o.d"
  "/root/repo/src/security/dead_time.cc" "src/security/CMakeFiles/terp_security.dir/dead_time.cc.o" "gcc" "src/security/CMakeFiles/terp_security.dir/dead_time.cc.o.d"
  "/root/repo/src/security/dop.cc" "src/security/CMakeFiles/terp_security.dir/dop.cc.o" "gcc" "src/security/CMakeFiles/terp_security.dir/dop.cc.o.d"
  "/root/repo/src/security/gadget.cc" "src/security/CMakeFiles/terp_security.dir/gadget.cc.o" "gcc" "src/security/CMakeFiles/terp_security.dir/gadget.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/terp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/terp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/terp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/terp_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/terp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/terp_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
