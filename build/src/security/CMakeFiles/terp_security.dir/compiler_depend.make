# Empty compiler generated dependencies file for terp_security.
# This may be replaced when dependencies are built.
