file(REMOVE_RECURSE
  "libterp_security.a"
)
