# Empty dependencies file for terp_workloads.
# This may be replaced when dependencies are built.
