file(REMOVE_RECURSE
  "libterp_workloads.a"
)
