file(REMOVE_RECURSE
  "CMakeFiles/terp_workloads.dir/alloc.cc.o"
  "CMakeFiles/terp_workloads.dir/alloc.cc.o.d"
  "CMakeFiles/terp_workloads.dir/spec.cc.o"
  "CMakeFiles/terp_workloads.dir/spec.cc.o.d"
  "CMakeFiles/terp_workloads.dir/whisper.cc.o"
  "CMakeFiles/terp_workloads.dir/whisper.cc.o.d"
  "libterp_workloads.a"
  "libterp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
