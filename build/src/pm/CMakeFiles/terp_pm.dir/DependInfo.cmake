
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/page_table.cc" "src/pm/CMakeFiles/terp_pm.dir/page_table.cc.o" "gcc" "src/pm/CMakeFiles/terp_pm.dir/page_table.cc.o.d"
  "/root/repo/src/pm/palloc.cc" "src/pm/CMakeFiles/terp_pm.dir/palloc.cc.o" "gcc" "src/pm/CMakeFiles/terp_pm.dir/palloc.cc.o.d"
  "/root/repo/src/pm/persist.cc" "src/pm/CMakeFiles/terp_pm.dir/persist.cc.o" "gcc" "src/pm/CMakeFiles/terp_pm.dir/persist.cc.o.d"
  "/root/repo/src/pm/pmo.cc" "src/pm/CMakeFiles/terp_pm.dir/pmo.cc.o" "gcc" "src/pm/CMakeFiles/terp_pm.dir/pmo.cc.o.d"
  "/root/repo/src/pm/pmo_manager.cc" "src/pm/CMakeFiles/terp_pm.dir/pmo_manager.cc.o" "gcc" "src/pm/CMakeFiles/terp_pm.dir/pmo_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/terp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
