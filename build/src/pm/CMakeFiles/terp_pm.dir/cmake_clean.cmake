file(REMOVE_RECURSE
  "CMakeFiles/terp_pm.dir/page_table.cc.o"
  "CMakeFiles/terp_pm.dir/page_table.cc.o.d"
  "CMakeFiles/terp_pm.dir/palloc.cc.o"
  "CMakeFiles/terp_pm.dir/palloc.cc.o.d"
  "CMakeFiles/terp_pm.dir/persist.cc.o"
  "CMakeFiles/terp_pm.dir/persist.cc.o.d"
  "CMakeFiles/terp_pm.dir/pmo.cc.o"
  "CMakeFiles/terp_pm.dir/pmo.cc.o.d"
  "CMakeFiles/terp_pm.dir/pmo_manager.cc.o"
  "CMakeFiles/terp_pm.dir/pmo_manager.cc.o.d"
  "libterp_pm.a"
  "libterp_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
