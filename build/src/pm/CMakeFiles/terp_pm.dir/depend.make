# Empty dependencies file for terp_pm.
# This may be replaced when dependencies are built.
