file(REMOVE_RECURSE
  "libterp_pm.a"
)
