
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/circular_buffer.cc" "src/arch/CMakeFiles/terp_arch.dir/circular_buffer.cc.o" "gcc" "src/arch/CMakeFiles/terp_arch.dir/circular_buffer.cc.o.d"
  "/root/repo/src/arch/mpk.cc" "src/arch/CMakeFiles/terp_arch.dir/mpk.cc.o" "gcc" "src/arch/CMakeFiles/terp_arch.dir/mpk.cc.o.d"
  "/root/repo/src/arch/perm_matrix.cc" "src/arch/CMakeFiles/terp_arch.dir/perm_matrix.cc.o" "gcc" "src/arch/CMakeFiles/terp_arch.dir/perm_matrix.cc.o.d"
  "/root/repo/src/arch/watch_regs.cc" "src/arch/CMakeFiles/terp_arch.dir/watch_regs.cc.o" "gcc" "src/arch/CMakeFiles/terp_arch.dir/watch_regs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/terp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/terp_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
