file(REMOVE_RECURSE
  "CMakeFiles/terp_arch.dir/circular_buffer.cc.o"
  "CMakeFiles/terp_arch.dir/circular_buffer.cc.o.d"
  "CMakeFiles/terp_arch.dir/mpk.cc.o"
  "CMakeFiles/terp_arch.dir/mpk.cc.o.d"
  "CMakeFiles/terp_arch.dir/perm_matrix.cc.o"
  "CMakeFiles/terp_arch.dir/perm_matrix.cc.o.d"
  "CMakeFiles/terp_arch.dir/watch_regs.cc.o"
  "CMakeFiles/terp_arch.dir/watch_regs.cc.o.d"
  "libterp_arch.a"
  "libterp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
