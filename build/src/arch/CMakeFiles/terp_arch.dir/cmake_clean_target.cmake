file(REMOVE_RECURSE
  "libterp_arch.a"
)
