# Empty compiler generated dependencies file for terp_arch.
# This may be replaced when dependencies are built.
