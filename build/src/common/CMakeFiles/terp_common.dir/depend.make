# Empty dependencies file for terp_common.
# This may be replaced when dependencies are built.
