# Empty compiler generated dependencies file for terp_common.
# This may be replaced when dependencies are built.
