file(REMOVE_RECURSE
  "libterp_common.a"
)
