file(REMOVE_RECURSE
  "CMakeFiles/terp_common.dir/logging.cc.o"
  "CMakeFiles/terp_common.dir/logging.cc.o.d"
  "CMakeFiles/terp_common.dir/rng.cc.o"
  "CMakeFiles/terp_common.dir/rng.cc.o.d"
  "CMakeFiles/terp_common.dir/stats.cc.o"
  "CMakeFiles/terp_common.dir/stats.cc.o.d"
  "libterp_common.a"
  "libterp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
