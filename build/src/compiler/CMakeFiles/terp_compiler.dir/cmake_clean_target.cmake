file(REMOVE_RECURSE
  "libterp_compiler.a"
)
