file(REMOVE_RECURSE
  "CMakeFiles/terp_compiler.dir/analysis.cc.o"
  "CMakeFiles/terp_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/terp_compiler.dir/builder.cc.o"
  "CMakeFiles/terp_compiler.dir/builder.cc.o.d"
  "CMakeFiles/terp_compiler.dir/dot.cc.o"
  "CMakeFiles/terp_compiler.dir/dot.cc.o.d"
  "CMakeFiles/terp_compiler.dir/interp.cc.o"
  "CMakeFiles/terp_compiler.dir/interp.cc.o.d"
  "CMakeFiles/terp_compiler.dir/ir.cc.o"
  "CMakeFiles/terp_compiler.dir/ir.cc.o.d"
  "CMakeFiles/terp_compiler.dir/pass.cc.o"
  "CMakeFiles/terp_compiler.dir/pass.cc.o.d"
  "CMakeFiles/terp_compiler.dir/pmo_analysis.cc.o"
  "CMakeFiles/terp_compiler.dir/pmo_analysis.cc.o.d"
  "CMakeFiles/terp_compiler.dir/verifier.cc.o"
  "CMakeFiles/terp_compiler.dir/verifier.cc.o.d"
  "libterp_compiler.a"
  "libterp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
