# Empty dependencies file for terp_compiler.
# This may be replaced when dependencies are built.
