
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/terp_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/builder.cc" "src/compiler/CMakeFiles/terp_compiler.dir/builder.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/builder.cc.o.d"
  "/root/repo/src/compiler/dot.cc" "src/compiler/CMakeFiles/terp_compiler.dir/dot.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/dot.cc.o.d"
  "/root/repo/src/compiler/interp.cc" "src/compiler/CMakeFiles/terp_compiler.dir/interp.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/interp.cc.o.d"
  "/root/repo/src/compiler/ir.cc" "src/compiler/CMakeFiles/terp_compiler.dir/ir.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/ir.cc.o.d"
  "/root/repo/src/compiler/pass.cc" "src/compiler/CMakeFiles/terp_compiler.dir/pass.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/pass.cc.o.d"
  "/root/repo/src/compiler/pmo_analysis.cc" "src/compiler/CMakeFiles/terp_compiler.dir/pmo_analysis.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/pmo_analysis.cc.o.d"
  "/root/repo/src/compiler/verifier.cc" "src/compiler/CMakeFiles/terp_compiler.dir/verifier.cc.o" "gcc" "src/compiler/CMakeFiles/terp_compiler.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/terp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/terp_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/terp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/terp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/terp_semantics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
