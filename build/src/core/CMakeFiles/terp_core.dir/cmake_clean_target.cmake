file(REMOVE_RECURSE
  "libterp_core.a"
)
