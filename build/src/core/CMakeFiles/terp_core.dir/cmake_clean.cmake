file(REMOVE_RECURSE
  "CMakeFiles/terp_core.dir/config.cc.o"
  "CMakeFiles/terp_core.dir/config.cc.o.d"
  "CMakeFiles/terp_core.dir/runtime.cc.o"
  "CMakeFiles/terp_core.dir/runtime.cc.o.d"
  "libterp_core.a"
  "libterp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
