# Empty dependencies file for terp_core.
# This may be replaced when dependencies are built.
