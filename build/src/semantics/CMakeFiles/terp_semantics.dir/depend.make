# Empty dependencies file for terp_semantics.
# This may be replaced when dependencies are built.
