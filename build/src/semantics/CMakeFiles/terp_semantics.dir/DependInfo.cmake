
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/attach_semantics.cc" "src/semantics/CMakeFiles/terp_semantics.dir/attach_semantics.cc.o" "gcc" "src/semantics/CMakeFiles/terp_semantics.dir/attach_semantics.cc.o.d"
  "/root/repo/src/semantics/ew_tracker.cc" "src/semantics/CMakeFiles/terp_semantics.dir/ew_tracker.cc.o" "gcc" "src/semantics/CMakeFiles/terp_semantics.dir/ew_tracker.cc.o.d"
  "/root/repo/src/semantics/permission.cc" "src/semantics/CMakeFiles/terp_semantics.dir/permission.cc.o" "gcc" "src/semantics/CMakeFiles/terp_semantics.dir/permission.cc.o.d"
  "/root/repo/src/semantics/poset.cc" "src/semantics/CMakeFiles/terp_semantics.dir/poset.cc.o" "gcc" "src/semantics/CMakeFiles/terp_semantics.dir/poset.cc.o.d"
  "/root/repo/src/semantics/theorem.cc" "src/semantics/CMakeFiles/terp_semantics.dir/theorem.cc.o" "gcc" "src/semantics/CMakeFiles/terp_semantics.dir/theorem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/terp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/terp_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
