file(REMOVE_RECURSE
  "CMakeFiles/terp_semantics.dir/attach_semantics.cc.o"
  "CMakeFiles/terp_semantics.dir/attach_semantics.cc.o.d"
  "CMakeFiles/terp_semantics.dir/ew_tracker.cc.o"
  "CMakeFiles/terp_semantics.dir/ew_tracker.cc.o.d"
  "CMakeFiles/terp_semantics.dir/permission.cc.o"
  "CMakeFiles/terp_semantics.dir/permission.cc.o.d"
  "CMakeFiles/terp_semantics.dir/poset.cc.o"
  "CMakeFiles/terp_semantics.dir/poset.cc.o.d"
  "CMakeFiles/terp_semantics.dir/theorem.cc.o"
  "CMakeFiles/terp_semantics.dir/theorem.cc.o.d"
  "libterp_semantics.a"
  "libterp_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terp_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
