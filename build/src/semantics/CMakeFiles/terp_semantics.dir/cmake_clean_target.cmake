file(REMOVE_RECURSE
  "libterp_semantics.a"
)
