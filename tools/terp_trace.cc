/**
 * @file
 * terp-trace — dump an event trace for any workload/scheme
 * combination, audit it, and export it for Perfetto.
 *
 * Usage:
 *   terp-trace <workload> <scheme> [options]
 *   terp-trace list
 *
 * Workloads: the six WHISPER surrogates (echo ycsb tpcc ctree
 * hashmap redis) and the five SPEC surrogates (mcf lbm imagick nab
 * xz). Schemes: unprotected mm tm tt ttnc basic.
 *
 * Options:
 *   --out FILE      Chrome-trace JSON output (default terp-trace.json)
 *   --jsonl FILE    also write JSONL (one event per line)
 *   --threads N     SPEC thread count (default 1)
 *   --sections N    WHISPER transactions (default 200)
 *   --scale F       SPEC iteration scale (default 1.0)
 *   --ew US         EW target in microseconds (default 40)
 *   --tew US        TEW target in microseconds (default 2)
 *   --capacity N    per-thread ring capacity in events (default 64Ki)
 *
 * Exit status is nonzero if the timeline auditor finds any
 * divergence between the trace replay and the runtime's EwTracker.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "trace/export.hh"
#include "workloads/spec.hh"
#include "workloads/whisper.hh"

using namespace terp;

namespace {

bool
contains(const std::vector<std::string> &v, const std::string &s)
{
    return std::find(v.begin(), v.end(), s) != v.end();
}

core::RuntimeConfig
schemeConfig(const std::string &scheme, Cycles ew, Cycles tew)
{
    if (scheme == "unprotected")
        return core::RuntimeConfig::unprotected();
    if (scheme == "mm")
        return core::RuntimeConfig::mm(ew);
    if (scheme == "tm")
        return core::RuntimeConfig::tm(ew, tew);
    if (scheme == "tt")
        return core::RuntimeConfig::tt(ew, tew);
    if (scheme == "ttnc")
        return core::RuntimeConfig::ttNoCombining(ew, tew);
    if (scheme == "basic")
        return core::RuntimeConfig::basicSemantics(ew);
    std::fprintf(stderr, "unknown scheme '%s' (try: unprotected mm "
                         "tm tt ttnc basic)\n",
                 scheme.c_str());
    std::exit(2);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: terp-trace <workload> <scheme> [--out FILE] "
                 "[--jsonl FILE]\n"
                 "                  [--threads N] [--sections N] "
                 "[--scale F]\n"
                 "                  [--ew US] [--tew US] "
                 "[--capacity N]\n"
                 "       terp-trace list\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    if (std::string(argv[1]) == "list") {
        std::printf("WHISPER workloads:");
        for (const std::string &n : workloads::whisperNames())
            std::printf(" %s", n.c_str());
        std::printf("\nSPEC surrogates:  ");
        for (const std::string &n : workloads::specNames())
            std::printf(" %s", n.c_str());
        std::printf("\nschemes:           unprotected mm tm tt ttnc "
                    "basic\n");
        return 0;
    }
    if (argc < 3)
        return usage();

    std::string workload = argv[1];
    std::string scheme = argv[2];
    std::string out = "terp-trace.json";
    std::string jsonl;
    unsigned threads = 1;
    std::uint64_t sections = 200;
    double scale = 1.0;
    double ewUs = 40.0, tewUs = 2.0;
    std::size_t capacity = trace::TraceSink::defaultCapacity;

    for (int i = 3; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--out")
            out = val();
        else if (a == "--jsonl")
            jsonl = val();
        else if (a == "--threads")
            threads = static_cast<unsigned>(std::atoi(val()));
        else if (a == "--sections")
            sections = static_cast<std::uint64_t>(std::atoll(val()));
        else if (a == "--scale")
            scale = std::atof(val());
        else if (a == "--ew")
            ewUs = std::atof(val());
        else if (a == "--tew")
            tewUs = std::atof(val());
        else if (a == "--capacity")
            capacity = static_cast<std::size_t>(std::atoll(val()));
        else
            return usage();
    }

    core::RuntimeConfig cfg =
        schemeConfig(scheme, usToCycles(ewUs), usToCycles(tewUs));
    cfg.traceEnabled = true;
    cfg.traceCapacity = capacity;

    workloads::RunResult r;
    if (contains(workloads::whisperNames(), workload)) {
        workloads::WhisperParams p;
        p.sections = sections;
        r = workloads::runWhisper(workload, cfg, p);
    } else if (contains(workloads::specNames(), workload)) {
        workloads::SpecParams p;
        p.threads = threads;
        p.scale = scale;
        r = workloads::runSpec(workload, cfg, p);
    } else {
        std::fprintf(stderr, "unknown workload '%s' (terp-trace list "
                             "shows the options)\n",
                     workload.c_str());
        return 2;
    }

    std::printf("%s under %s: %llu cycles (%.1f us)\n",
                workload.c_str(), cfg.describe().c_str(),
                static_cast<unsigned long long>(r.totalCycles),
                cyclesToUs(r.totalCycles));
    std::printf("events: %llu emitted, %llu dropped (ring capacity "
                "%zu/thread)\n",
                static_cast<unsigned long long>(
                    r.trace->totalEmitted()),
                static_cast<unsigned long long>(
                    r.trace->totalDropped()),
                r.trace->perThreadCapacity());

    std::map<std::string, std::uint64_t> byKind;
    for (const trace::Event &e : r.trace->merged())
        ++byKind[trace::eventKindName(e.kind)];
    for (const auto &[kind, n] : byKind) {
        std::printf("  %-16s %llu\n", kind.c_str(),
                    static_cast<unsigned long long>(n));
    }

    if (!trace::writeChromeTraceFile(*r.trace, out,
                                     workload + " " + scheme)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s (open with https://ui.perfetto.dev)\n",
                out.c_str());
    if (!jsonl.empty()) {
        if (!trace::writeJsonlFile(*r.trace, jsonl)) {
            std::fprintf(stderr, "cannot write %s\n", jsonl.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonl.c_str());
    }

    std::printf("%s\n", r.traceAudit->summary().c_str());
    for (const std::string &m : r.traceAudit->mismatches)
        std::printf("  mismatch: %s\n", m.c_str());
    return r.traceAudit->ok ? 0 : 1;
}
