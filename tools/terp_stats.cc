/**
 * @file
 * terp-stats — the security-posture reporter: turns a metrics
 * registry (live from a run, or loaded back from a JSON export) into
 * a one-page report of the numbers the paper's evaluation cares
 * about — exposure-window percentiles, silent-operation fractions,
 * sweeper and circular-buffer activity, persistence-substrate work.
 *
 * Usage:
 *   terp-stats run <workload> <scheme> [--sections=N] [--seed=N]
 *   terp-stats --from=FILE
 *   terp-stats --diff A B
 *
 * Sources:
 *   run <workload> <scheme>  simulate one WHISPER workload (echo,
 *                            ycsb, tpcc, ctree, hashmap, redis) under
 *                            a scheme tag (unprotected, mm, tm, tt,
 *                            ttnc, basic) with tracing enabled, then
 *                            cross-check the metrics-derived EW/TEW
 *                            statistics cycle-for-cycle against the
 *                            trace auditor's independent replay and
 *                            the runtime's silent fraction (exit 1 on
 *                            any disagreement)
 *   --from=FILE              load a metrics JSON export — either a
 *                            bare registry document or a
 *                            BENCH_terp.json with a "metrics" member
 *   --diff A B               compare two metrics files; print every
 *                            changed value and exit 1 on differences
 *
 * Outputs (with run or --from):
 *   (default)                the one-page report
 *   --json                   re-emit the registry as JSON
 *   --prom                   emit the Prometheus text format
 *   --golden=FILE            compare against a checked-in golden
 *                            (exit 1 on drift); host.* metrics are
 *                            excluded — they are wall-clock noise
 *   --write-golden=FILE      write the golden
 *
 * Exit status: 0 on success, 1 on cross-check failure, golden drift
 * or (for --diff) any difference, 2 on usage/IO errors.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/export.hh"
#include "metrics/json.hh"
#include "metrics/registry.hh"
#include "trace/audit.hh"
#include "workloads/whisper.hh"

using namespace terp;

namespace {

// ------------------------------------------------------- flat document

/** The per-name statistics of a summary or histogram export. */
struct DistStat
{
    std::uint64_t count = 0, sum = 0, min = 0, max = 0;
    std::uint64_t p50 = 0, p90 = 0, p99 = 0;
    double mean = 0.0;
    bool hasQuantiles = false;
};

/**
 * A metrics registry flattened to plain maps — the common shape the
 * report, golden and diff code works on whether the numbers came
 * from a live Registry or a JSON file.
 */
struct Doc
{
    std::map<std::string, std::string> labels;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::pair<double, double>> gauges;
    std::map<std::string, DistStat> dists; //!< summaries + histograms
};

std::uint64_t
memberU64(const metrics::JsonValue &obj, const char *key)
{
    const metrics::JsonValue *v = obj.get(key);
    return v ? v->asU64() : 0;
}

bool
docFromJson(const metrics::JsonValue &root, Doc &doc,
            std::string &error)
{
    // A BENCH_terp.json wraps the registry in a "metrics" member; a
    // bare export is the registry document itself.
    const metrics::JsonValue *reg = root.get("metrics");
    if (!reg)
        reg = &root;
    if (!reg->isObject()) {
        error = "no metrics object found";
        return false;
    }

    if (const metrics::JsonValue *ls = reg->get("labels"))
        for (const auto &[k, v] : ls->object)
            doc.labels[k] = v.str;
    if (const metrics::JsonValue *cs = reg->get("counters"))
        for (const auto &[k, v] : cs->object)
            doc.counters[k] = v.asU64();
    if (const metrics::JsonValue *gs = reg->get("gauges")) {
        for (const auto &[k, v] : gs->object) {
            const metrics::JsonValue *val = v.get("value");
            const metrics::JsonValue *hwm = v.get("hwm");
            doc.gauges[k] = {val ? val->number : 0.0,
                             hwm ? hwm->number : 0.0};
        }
    }
    for (const char *section : {"summaries", "histograms"}) {
        const metrics::JsonValue *ss = reg->get(section);
        if (!ss)
            continue;
        for (const auto &[k, v] : ss->object) {
            DistStat d;
            d.count = memberU64(v, "count");
            d.sum = memberU64(v, "sum");
            d.min = memberU64(v, "min");
            d.max = memberU64(v, "max");
            if (const metrics::JsonValue *m = v.get("mean"))
                d.mean = m->number;
            if (v.get("p50")) {
                d.hasQuantiles = true;
                d.p50 = memberU64(v, "p50");
                d.p90 = memberU64(v, "p90");
                d.p99 = memberU64(v, "p99");
            }
            doc.dists[k] = d;
        }
    }
    return true;
}

/** Flatten a live registry through its own JSON export (one parser
 * path for both sources; also exercises the round-trip). */
bool
docFromRegistry(const metrics::Registry &reg, Doc &doc,
                std::string &error)
{
    std::unique_ptr<metrics::JsonValue> root =
        metrics::parseJson(metrics::toJson(reg), error);
    if (!root)
        return false;
    return docFromJson(*root, doc, error);
}

bool
readFile(const std::string &path, std::string &out,
         std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
docFromFile(const std::string &path, Doc &doc, std::string &error)
{
    std::string text;
    if (!readFile(path, text, error))
        return false;
    std::unique_ptr<metrics::JsonValue> root =
        metrics::parseJson(text, error);
    if (!root) {
        error = path + ": " + error;
        return false;
    }
    return docFromJson(*root, doc, error);
}

// ------------------------------------------------------------- report

bool
isHostMetric(const std::string &name)
{
    return metrics::baseName(name).rfind("host.", 0) == 0;
}

/**
 * Blame-attribution series (exposure.blame_*). Kept out of the
 * default golden so the posture golden stays byte-identical whether
 * or not a consumer looks at provenance; they get their own report
 * (--blame), golden and diff section instead.
 */
bool
isBlameMetric(const std::string &name)
{
    return metrics::baseName(name).rfind("exposure.blame", 0) == 0;
}

/** The `{...}` label suffix of @p name ("" when unlabeled). */
std::string
labelSuffix(const std::string &name)
{
    std::string::size_type b = name.find('{');
    return b == std::string::npos ? "" : name.substr(b);
}

double
cyclesUs(std::uint64_t c)
{
    return cyclesToUs(c);
}

void
printReport(const Doc &doc)
{
    std::printf("=== terp-stats: security-posture report ===\n");
    if (!doc.labels.empty()) {
        std::printf("labels:");
        for (const auto &[k, v] : doc.labels)
            std::printf(" %s=%s", k.c_str(), v.c_str());
        std::printf("\n");
    }

    // Exposure-window percentiles: the pmo="all" rollups (per-PMO
    // series are shown by `terp-stats run` cross-checks, not here).
    bool header = false;
    for (const auto &[name, d] : doc.dists) {
        std::string base = metrics::baseName(name);
        if (base != "exposure.ew_cycles" &&
            base != "exposure.tew_cycles")
            continue;
        auto ls = metrics::nameLabels(name);
        auto pmo = ls.find("pmo");
        if (pmo != ls.end() && pmo->second != "all")
            continue;
        if (!header) {
            std::printf("\nexposure windows (us):\n");
            std::printf("  %-44s %8s %8s %8s %8s %8s %8s\n", "",
                        "count", "mean", "p50", "p90", "p99", "max");
            header = true;
        }
        std::printf(
            "  %-44s %8llu %8.2f %8.2f %8.2f %8.2f %8.2f\n",
            name.c_str(), (unsigned long long)d.count,
            cyclesUs(static_cast<std::uint64_t>(d.mean + 0.5)),
            cyclesUs(d.p50), cyclesUs(d.p90), cyclesUs(d.p99),
            cyclesUs(d.max));
    }

    // Silent-vs-real split per label group (Table 3). The aggregate
    // keeps runs of different schemes distinct via injected labels;
    // a single-run registry has one unlabeled group.
    header = false;
    for (const auto &[name, silent] : doc.counters) {
        if (metrics::baseName(name) != "runtime.silent_ops")
            continue;
        std::string suffix = labelSuffix(name);
        auto full = doc.counters.find("runtime.full_ops" + suffix);
        std::uint64_t f =
            full == doc.counters.end() ? 0 : full->second;
        if (!header) {
            std::printf("\nsilent vs real operations:\n");
            header = true;
        }
        double frac = silent + f > 0
                          ? static_cast<double>(silent) /
                                static_cast<double>(silent + f)
                          : 0.0;
        std::printf("  %-24s silent=%llu full=%llu silent%%=%.2f\n",
                    suffix.empty() ? "(all)" : suffix.c_str(),
                    (unsigned long long)silent,
                    (unsigned long long)f, 100 * frac);
    }

    // Remaining counters, grouped under their subsystem prefix.
    const struct
    {
        const char *title;
        const char *prefix;
    } kGroups[] = {
        {"sweeper", "sweeper."},
        {"circular buffer", "cb."},
        {"runtime", "runtime."},
        {"persistence", "pm."},
        {"interpreter", "interp."},
        {"simulator", "sim."},
    };
    for (const auto &g : kGroups) {
        header = false;
        for (const auto &[name, v] : doc.counters) {
            std::string base = metrics::baseName(name);
            if (base.rfind(g.prefix, 0) != 0 ||
                base == "runtime.silent_ops" ||
                base == "runtime.full_ops")
                continue;
            if (!header) {
                std::printf("\n%s:\n", g.title);
                header = true;
            }
            std::printf("  %-44s %llu\n", name.c_str(),
                        (unsigned long long)v);
        }
        for (const auto &[name, v] : doc.gauges) {
            if (metrics::baseName(name).rfind(g.prefix, 0) != 0)
                continue;
            if (!header) {
                std::printf("\n%s:\n", g.title);
                header = true;
            }
            std::printf("  %-44s %g (hwm %g)\n", name.c_str(),
                        v.first, v.second);
        }
    }

    // Host-side profiling (never part of goldens or diffs).
    bool hostHeader = false;
    for (const auto &[name, d] : doc.dists) {
        if (!isHostMetric(name))
            continue;
        if (!hostHeader) {
            std::printf("\nhost profiling:\n");
            hostHeader = true;
        }
        std::printf("  %-44s count=%llu p50=%lluns p99=%lluns\n",
                    name.c_str(), (unsigned long long)d.count,
                    (unsigned long long)d.p50,
                    (unsigned long long)d.p99);
    }
}

// ------------------------------------------------------- blame report

/** @p name with its `cause` label removed (the blame group key). */
std::string
withoutCause(const std::string &name)
{
    std::map<std::string, std::string> ls =
        metrics::nameLabels(name);
    ls.erase("cause");
    std::string out = metrics::baseName(name);
    if (ls.empty())
        return out;
    out += "{";
    bool first = true;
    for (const auto &[k, v] : ls) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + v + "\"";
    }
    return out + "}";
}

/**
 * The one-page blame report: every `exposure.blame_total` counter
 * (sorted name order, i.e. sorted cause order within each group)
 * with its share of the group's blamed cycles, then the per-cause
 * segment-length histograms. The exact same text doubles as the
 * blame golden (--blame --golden=FILE): it is built purely from
 * deterministic simulated-cycle quantities.
 */
std::string
blameText(const Doc &doc)
{
    std::ostringstream os;
    char buf[160];
    os << "=== terp-stats: exposure blame report ===\n";

    // Group totals: blamed cycles per (labels minus cause), so the
    // share column reads "of this scheme's total exposure".
    std::map<std::string, std::uint64_t> groupTotal;
    for (const auto &[name, v] : doc.counters)
        if (metrics::baseName(name) == "exposure.blame_total")
            groupTotal[withoutCause(name)] += v;

    bool header = false;
    for (const auto &[name, v] : doc.counters) {
        if (metrics::baseName(name) != "exposure.blame_total")
            continue;
        if (!header) {
            os << "\nblame totals (us):\n";
            std::snprintf(buf, sizeof(buf), "  %-64s %12s %7s\n", "",
                          "us", "share");
            os << buf;
            header = true;
        }
        std::uint64_t total = groupTotal[withoutCause(name)];
        double share =
            total ? 100.0 * static_cast<double>(v) /
                        static_cast<double>(total)
                  : 0.0;
        std::snprintf(buf, sizeof(buf), "  %-64s %12.2f %6.1f%%\n",
                      name.c_str(), cyclesUs(v), share);
        os << buf;
    }
    if (!header)
        os << "\nno blame attribution recorded\n";

    header = false;
    for (const auto &[name, d] : doc.dists) {
        if (metrics::baseName(name) != "exposure.blame_cycles")
            continue;
        if (!header) {
            os << "\nblame segments (us):\n";
            std::snprintf(buf, sizeof(buf),
                          "  %-64s %8s %8s %8s %8s\n", "", "count",
                          "mean", "p99", "max");
            os << buf;
            header = true;
        }
        std::snprintf(
            buf, sizeof(buf), "  %-64s %8llu %8.2f %8.2f %8.2f\n",
            name.c_str(), (unsigned long long)d.count,
            cyclesUs(static_cast<std::uint64_t>(d.mean + 0.5)),
            cyclesUs(d.p99), cyclesUs(d.max));
        os << buf;
    }
    return os.str();
}

// ------------------------------------------------------------- golden

/**
 * Golden format, one metric per line (host.* excluded):
 *   C <name> <value>                    counters
 *   G <name> <value %.6g>               gauges
 *   H <name> <count> <sum> <min> <max>  summaries/histograms
 * Only exact (deterministic) quantities plus %.6g-rounded gauges, so
 * the file is stable across hosts and --jobs values.
 */
std::string
goldenText(const Doc &doc)
{
    std::ostringstream os;
    os << "# terp-stats golden: C name v | G name v | "
          "H name count sum min max\n";
    char buf[64];
    for (const auto &[name, v] : doc.counters)
        if (!isHostMetric(name) && !isBlameMetric(name))
            os << "C " << name << " " << v << "\n";
    for (const auto &[name, v] : doc.gauges) {
        if (isHostMetric(name) || isBlameMetric(name))
            continue;
        std::snprintf(buf, sizeof(buf), "%.6g", v.first);
        os << "G " << name << " " << buf << "\n";
    }
    for (const auto &[name, d] : doc.dists) {
        if (isHostMetric(name) || isBlameMetric(name))
            continue;
        os << "H " << name << " " << d.count << " " << d.sum << " "
           << d.min << " " << d.max << "\n";
    }
    return os.str();
}

int
checkGolden(const std::string &got, const std::string &path)
{
    std::string want, error;
    if (!readFile(path, want, error)) {
        std::fprintf(stderr, "terp-stats: %s\n", error.c_str());
        return 2;
    }
    if (got == want) {
        std::fprintf(stderr, "terp-stats: metrics match golden %s\n",
                     path.c_str());
        return 0;
    }
    // Report the first differing lines for a usable CI message.
    std::istringstream a(want), b(got);
    std::string la, lb;
    unsigned lineNo = 0, shown = 0;
    for (;;) {
        bool ha = static_cast<bool>(std::getline(a, la));
        bool hb = static_cast<bool>(std::getline(b, lb));
        if (!ha && !hb)
            break;
        ++lineNo;
        if (ha && hb && la == lb)
            continue;
        std::fprintf(stderr,
                     "terp-stats: DRIFT at line %u:\n  golden: %s\n"
                     "  actual: %s\n",
                     lineNo, ha ? la.c_str() : "<eof>",
                     hb ? lb.c_str() : "<eof>");
        if (++shown >= 5) {
            std::fprintf(stderr, "terp-stats: (more drift elided)\n");
            break;
        }
    }
    return 1;
}

// --------------------------------------------------------------- diff

int
diffDocs(const Doc &a, const Doc &b)
{
    unsigned changes = 0;
    auto note = [&](const std::string &name, const std::string &va,
                    const std::string &vb) {
        std::printf("%-44s %s -> %s\n", name.c_str(), va.c_str(),
                    vb.c_str());
        ++changes;
    };
    auto u64s = [](std::uint64_t v) { return std::to_string(v); };

    for (const auto &[name, v] : a.counters) {
        if (isHostMetric(name) || isBlameMetric(name))
            continue;
        auto it = b.counters.find(name);
        if (it == b.counters.end())
            note(name, u64s(v), "(absent)");
        else if (it->second != v)
            note(name, u64s(v), u64s(it->second));
    }
    for (const auto &[name, v] : b.counters)
        if (!isHostMetric(name) && !isBlameMetric(name) &&
            !a.counters.count(name))
            note(name, "(absent)", u64s(v));

    for (const auto &[name, v] : a.gauges) {
        if (isHostMetric(name))
            continue;
        auto it = b.gauges.find(name);
        char va[64], vb[64];
        std::snprintf(va, sizeof(va), "%.6g", v.first);
        if (it == b.gauges.end()) {
            note(name, va, "(absent)");
            continue;
        }
        std::snprintf(vb, sizeof(vb), "%.6g", it->second.first);
        if (std::strcmp(va, vb) != 0)
            note(name, va, vb);
    }
    for (const auto &[name, v] : b.gauges) {
        if (!isHostMetric(name) && !a.gauges.count(name)) {
            char vb[64];
            std::snprintf(vb, sizeof(vb), "%.6g", v.first);
            note(name, "(absent)", vb);
        }
    }

    auto distStr = [&](const DistStat &d) {
        return "count=" + u64s(d.count) + " sum=" + u64s(d.sum) +
               " min=" + u64s(d.min) + " max=" + u64s(d.max);
    };
    for (const auto &[name, d] : a.dists) {
        if (isHostMetric(name) || isBlameMetric(name))
            continue;
        auto it = b.dists.find(name);
        if (it == b.dists.end()) {
            note(name, distStr(d), "(absent)");
        } else if (it->second.count != d.count ||
                   it->second.sum != d.sum ||
                   it->second.min != d.min ||
                   it->second.max != d.max) {
            note(name, distStr(d), distStr(it->second));
        }
    }
    for (const auto &[name, d] : b.dists)
        if (!isHostMetric(name) && !isBlameMetric(name) &&
            !a.dists.count(name))
            note(name, "(absent)", distStr(d));

    // Blame attribution last, under its own header, in sorted name
    // order (= sorted cause order within each label group) so two
    // diffs of the same pair are always formatted identically.
    bool blameHeader = false;
    auto noteBlame = [&](const std::string &name,
                         const std::string &va,
                         const std::string &vb) {
        if (!blameHeader) {
            std::printf("blame attribution:\n");
            blameHeader = true;
        }
        std::printf("  %-44s %s -> %s\n", name.c_str(), va.c_str(),
                    vb.c_str());
        ++changes;
    };
    for (const auto &[name, v] : a.counters) {
        if (!isBlameMetric(name))
            continue;
        auto it = b.counters.find(name);
        if (it == b.counters.end())
            noteBlame(name, u64s(v), "(absent)");
        else if (it->second != v)
            noteBlame(name, u64s(v), u64s(it->second));
    }
    for (const auto &[name, v] : b.counters)
        if (isBlameMetric(name) && !a.counters.count(name))
            noteBlame(name, "(absent)", u64s(v));
    for (const auto &[name, d] : a.dists) {
        if (!isBlameMetric(name))
            continue;
        auto it = b.dists.find(name);
        if (it == b.dists.end()) {
            noteBlame(name, distStr(d), "(absent)");
        } else if (it->second.count != d.count ||
                   it->second.sum != d.sum ||
                   it->second.min != d.min ||
                   it->second.max != d.max) {
            noteBlame(name, distStr(d), distStr(it->second));
        }
    }
    for (const auto &[name, d] : b.dists)
        if (isBlameMetric(name) && !a.dists.count(name))
            noteBlame(name, "(absent)", distStr(d));

    if (changes == 0) {
        std::printf("no differences\n");
        return 0;
    }
    std::printf("%u metric(s) differ\n", changes);
    return 1;
}

// ---------------------------------------------------------- run mode

bool
schemeConfig(const std::string &tag, core::RuntimeConfig &cfg)
{
    if (tag == "unprotected")
        cfg = core::RuntimeConfig::unprotected();
    else if (tag == "mm")
        cfg = core::RuntimeConfig::mm();
    else if (tag == "tm")
        cfg = core::RuntimeConfig::tm();
    else if (tag == "tt")
        cfg = core::RuntimeConfig::tt();
    else if (tag == "ttnc")
        cfg = core::RuntimeConfig::ttNoCombining();
    else if (tag == "basic")
        cfg = core::RuntimeConfig::basicSemantics();
    else
        return false;
    return true;
}

/**
 * Cross-check the three observability paths on a finished run: the
 * metrics histograms must agree cycle-for-cycle (count, sum, min,
 * max) with the trace auditor's independent replay for every PMO,
 * and the silent fraction recomputed from the published integer
 * counters must reproduce the runtime report's double bit-for-bit.
 */
unsigned
crossCheck(const workloads::RunResult &r)
{
    unsigned failures = 0;
    auto fail = [&](const std::string &what) {
        std::fprintf(stderr, "terp-stats: CROSS-CHECK FAILED: %s\n",
                     what.c_str());
        ++failures;
    };

    if (!r.traceAudit || !r.trace) {
        fail("no trace audit available");
        return failures;
    }
    if (!r.traceAudit->ok)
        fail("trace audit: " + r.traceAudit->summary());

    const struct
    {
        const char *base;
        const std::map<std::uint64_t, trace::WindowTally> &want;
    } kSides[] = {
        {"exposure.ew_cycles", r.traceAudit->ew},
        {"exposure.tew_cycles", r.traceAudit->tew},
    };
    for (const auto &side : kSides) {
        metrics::Summary all;
        for (const auto &[pmo, tally] : side.want) {
            std::string name = metrics::labeled(
                side.base, "pmo", std::to_string(pmo));
            const metrics::LogHistogram *h =
                r.metrics->findHistogram(name);
            if (!h) {
                if (tally.count() > 0)
                    fail(name + ": histogram missing");
                continue;
            }
            if (h->count() != tally.count() ||
                h->sum() != tally.sum() ||
                h->min() != tally.min() ||
                h->max() != tally.max()) {
                std::ostringstream os;
                os << name << ": metrics count/sum/min/max "
                   << h->count() << "/" << h->sum() << "/"
                   << h->min() << "/" << h->max()
                   << " != audit " << tally.count() << "/"
                   << tally.sum() << "/" << tally.min() << "/"
                   << tally.max();
                fail(os.str());
            }
            all.merge(tally);
        }
        std::string allName =
            metrics::labeled(side.base, "pmo", "all");
        const metrics::LogHistogram *h =
            r.metrics->findHistogram(allName);
        if (!h) {
            if (all.count() > 0)
                fail(allName + ": histogram missing");
        } else if (h->count() != all.count() ||
                   h->sum() != all.sum() || h->min() != all.min() ||
                   h->max() != all.max()) {
            fail(allName + ": rollup disagrees with per-PMO merge");
        }
    }

    const metrics::Counter *silent =
        r.metrics->findCounter("runtime.silent_ops");
    const metrics::Counter *full =
        r.metrics->findCounter("runtime.full_ops");
    if (!silent || !full) {
        fail("runtime.silent_ops / runtime.full_ops missing");
    } else {
        std::uint64_t s = silent->value(), f = full->value();
        double frac = s + f > 0 ? static_cast<double>(s) /
                                      static_cast<double>(s + f)
                                : 0.0;
        if (frac != r.report.silentFraction) {
            std::ostringstream os;
            os << "silent fraction from counters " << frac
               << " != report " << r.report.silentFraction;
            fail(os.str());
        }
    }

    if (failures == 0) {
        std::fprintf(stderr,
                     "terp-stats: cross-check OK (%zu EW + %zu TEW "
                     "window sets, silent fraction exact)\n",
                     r.traceAudit->ew.size(),
                     r.traceAudit->tew.size());
    }
    return failures;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: terp-stats run <workload> <scheme> [--sections=N]"
        " [--seed=N]\n"
        "       terp-stats --from=FILE\n"
        "       terp-stats --diff A B\n"
        "options: [--json] [--prom] [--blame] [--golden=FILE]"
        " [--write-golden=FILE]\n"
        "  --blame: print the exposure blame report instead of the\n"
        "           posture report; --golden/--write-golden then\n"
        "           apply to the blame report text\n"
        "workloads: echo ycsb tpcc ctree hashmap redis\n"
        "schemes: unprotected mm tm tt ttnc basic\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string fromPath, goldenPath, writeGoldenPath;
    std::vector<std::string> diffPaths, positional;
    bool emitJson = false, emitProm = false, blame = false;
    std::uint64_t sections = 400, seed = 1234;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--from=", 0) == 0) {
            fromPath = a.substr(7);
        } else if (a == "--diff") {
            if (i + 2 >= argc)
                return usage();
            diffPaths = {argv[i + 1], argv[i + 2]};
            i += 2;
        } else if (a.rfind("--golden=", 0) == 0) {
            goldenPath = a.substr(9);
        } else if (a.rfind("--write-golden=", 0) == 0) {
            writeGoldenPath = a.substr(15);
        } else if (a.rfind("--sections=", 0) == 0) {
            sections = std::strtoull(a.c_str() + 11, nullptr, 10);
        } else if (a.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(a.c_str() + 7, nullptr, 10);
        } else if (a == "--json") {
            emitJson = true;
        } else if (a == "--prom") {
            emitProm = true;
        } else if (a == "--blame") {
            blame = true;
        } else if (a == "--help" || a == "-h") {
            return usage();
        } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return usage();
        } else {
            positional.push_back(a);
        }
    }

    if (!diffPaths.empty()) {
        Doc a, b;
        std::string error;
        if (!docFromFile(diffPaths[0], a, error) ||
            !docFromFile(diffPaths[1], b, error)) {
            std::fprintf(stderr, "terp-stats: %s\n", error.c_str());
            return 2;
        }
        return diffDocs(a, b);
    }

    Doc doc;
    std::string error;
    std::shared_ptr<metrics::Registry> liveReg;
    unsigned failures = 0;

    if (!fromPath.empty()) {
        if (!positional.empty())
            return usage();
        if (!docFromFile(fromPath, doc, error)) {
            std::fprintf(stderr, "terp-stats: %s\n", error.c_str());
            return 2;
        }
    } else if (positional.size() == 3 && positional[0] == "run") {
        const std::string &workload = positional[1];
        core::RuntimeConfig cfg;
        if (!schemeConfig(positional[2], cfg)) {
            std::fprintf(stderr, "unknown scheme '%s'\n",
                         positional[2].c_str());
            return usage();
        }
        bool known = false;
        for (const std::string &n : workloads::whisperNames())
            known = known || n == workload;
        if (!known) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         workload.c_str());
            return usage();
        }
        workloads::WhisperParams p;
        p.sections = sections;
        p.seed = seed;
        std::fprintf(stderr, "terp-stats: running %s under %s ...\n",
                     workload.c_str(), positional[2].c_str());
        workloads::RunResult r =
            workloads::runWhisper(workload, cfg.withTrace(), p);
        if (!r.metrics) {
            std::fprintf(stderr,
                         "terp-stats: metrics are disabled "
                         "(TERP_METRICS=off?)\n");
            return 2;
        }
        liveReg = r.metrics;
        failures = crossCheck(r);
        if (!docFromRegistry(*liveReg, doc, error)) {
            std::fprintf(stderr, "terp-stats: %s\n", error.c_str());
            return 2;
        }
    } else {
        return usage();
    }

    if (emitJson) {
        if (liveReg) {
            std::printf("%s\n", metrics::toJson(*liveReg).c_str());
        } else {
            std::string text;
            if (!readFile(fromPath, text, error)) {
                std::fprintf(stderr, "terp-stats: %s\n",
                             error.c_str());
                return 2;
            }
            std::fputs(text.c_str(), stdout);
        }
    } else if (emitProm && liveReg) {
        std::fputs(metrics::toPrometheus(*liveReg).c_str(), stdout);
    } else if (emitProm) {
        std::fprintf(stderr, "terp-stats: --prom needs a live run "
                             "(quantile bucket detail is not in the "
                             "JSON export)\n");
        return 2;
    } else if (blame) {
        std::fputs(blameText(doc).c_str(), stdout);
    } else {
        printReport(doc);
    }

    // With --blame the golden is the blame report text itself; the
    // default golden keeps blame metrics excluded either way.
    std::string golden = blame ? blameText(doc) : goldenText(doc);
    if (!writeGoldenPath.empty()) {
        std::ofstream out(writeGoldenPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "terp-stats: cannot write %s\n",
                         writeGoldenPath.c_str());
            return 2;
        }
        out << golden;
        std::fprintf(stderr, "terp-stats: wrote golden %s\n",
                     writeGoldenPath.c_str());
    }
    if (!goldenPath.empty()) {
        int rc = checkGolden(golden, goldenPath);
        if (rc != 0)
            return rc;
    }
    return failures > 0 ? 1 : 0;
}
