/**
 * @file
 * terp-harvest — race-to-expiry intermittent-power driver.
 *
 * Runs the energy-harvesting harness (src/energy/harvest.hh) over a
 * matrix of capacitor sizes x schemes: each cell executes thousands
 * of consecutive power-fail / recharge / recover cycles off a
 * capacitor charged per simulated cycle, with the crash-enumeration
 * oracle's invariants checked at every cycle. The table shows how
 * the exposure-window cost of intermittent power scales with storage
 * size — smaller capacitors mean more recovery re-attaches and more
 * sweeper ticks gated by the backup-energy reserve, so EW/TEW climb
 * as capacity shrinks. Overhead columns are relative to the largest
 * capacitor in the list (the closest cell to steady power).
 *
 * Usage:
 *   terp-harvest [options]
 *
 * Options:
 *   --scheme S        all (default) or one of: mm tm tt ttnc basic
 *   --workload W      bank (default) or txmix
 *   --caps LIST       comma-separated capacitor sizes in energy
 *                     units (default 600,1000,2000,4000)
 *   --cycles N        power cycles per cell (default 200)
 *   --seed N          workload seed (default 0)
 *   --ew US           EW target in microseconds (default 5)
 *   --audit N         trace-audit stride in power cycles (default
 *                     25; 0 disables)
 *   --json            one JSON object per cell on stdout
 *   --golden=FILE     fail (exit 1) if the deterministic per-cell
 *                     summary differs from FILE
 *   --write-golden=FILE  write the per-cell summary to FILE
 *   --history=PATH    append one throughput record (metric label
 *                     cycles_per_s) to the benchmark history
 *
 * Exit status: 0 when every cell passed its oracle, 1 on any
 * violation or golden drift, 2 on usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzzer.hh"
#include "energy/harvest.hh"
#include "history.hh"

using namespace terp;

namespace {

struct CellResult
{
    std::string scheme;
    std::uint64_t capUnits = 0;
    energy::HarvestResult res;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: terp-harvest [--scheme all|mm|tm|tt|ttnc|basic]\n"
        "                    [--workload bank|txmix] [--caps LIST]\n"
        "                    [--cycles N] [--seed N] [--ew US]\n"
        "                    [--audit N] [--json] [--golden=FILE]\n"
        "                    [--write-golden=FILE] [--history=PATH]\n");
    return 2;
}

std::vector<std::uint64_t>
parseCaps(const std::string &list)
{
    std::vector<std::uint64_t> caps;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        caps.push_back(std::strtoull(
            list.substr(pos, comma - pos).c_str(), nullptr, 0));
        pos = comma + 1;
    }
    return caps;
}

std::string
cellJson(const std::string &workload, const CellResult &c)
{
    const energy::HarvestResult &r = c.res;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"scheme\": \"%s\", \"workload\": \"%s\", "
        "\"cap_units\": %llu, \"power_cycles\": %u, "
        "\"committed\": %llu, \"interrupted\": %llu, "
        "\"aborted\": %llu, \"checkpoints\": %llu, "
        "\"sweeps_run\": %llu, \"sweeps_skipped\": %llu, "
        "\"recovered_logs\": %llu, \"sim_cycles\": %llu, "
        "\"off_cycles\": %llu, \"ew_avg_us\": %.3f, "
        "\"ew_max_us\": %.3f, \"tew_avg_us\": %.3f, "
        "\"violations\": %zu}",
        c.scheme.c_str(), workload.c_str(),
        (unsigned long long)c.capUnits, r.powerCycles,
        (unsigned long long)r.committed,
        (unsigned long long)r.interrupted,
        (unsigned long long)r.aborted,
        (unsigned long long)r.checkpoints,
        (unsigned long long)r.sweepsRun,
        (unsigned long long)r.sweepsSkipped,
        (unsigned long long)r.recoveredLogs,
        (unsigned long long)r.simCycles,
        (unsigned long long)r.offCycles, r.exposure.ewAvgUs,
        r.exposure.ewMaxUs, r.exposure.tewAvgUs,
        r.violations.size());
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scheme = "all";
    std::string workload = "bank";
    std::string capsArg = "600,1000,2000,4000";
    unsigned cycles = 200;
    std::uint64_t seed = 0;
    double ewUs = 5.0;
    unsigned audit = 25;
    bool json = false;
    std::string goldenPath, writeGoldenPath, historyPath;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::string inl;
        std::size_t eq = a.find('=');
        if (eq != std::string::npos) {
            inl = a.substr(eq + 1);
            a = a.substr(0, eq);
        }
        auto val = [&]() -> std::string {
            if (!inl.empty())
                return inl;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--scheme") {
            scheme = val();
        } else if (a == "--workload") {
            workload = val();
        } else if (a == "--caps") {
            capsArg = val();
        } else if (a == "--cycles") {
            cycles = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--seed") {
            seed = std::strtoull(val().c_str(), nullptr, 0);
        } else if (a == "--ew") {
            ewUs = std::strtod(val().c_str(), nullptr);
        } else if (a == "--audit") {
            audit = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--json") {
            json = true;
        } else if (a == "--golden") {
            goldenPath = val();
        } else if (a == "--write-golden") {
            writeGoldenPath = val();
        } else if (a == "--history") {
            historyPath = val();
        } else if (a == "--help" || a == "-h") {
            return usage();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return usage();
        }
    }

    std::vector<std::uint64_t> caps = parseCaps(capsArg);
    if (caps.empty() || cycles == 0)
        return usage();
    std::vector<std::string> schemes =
        scheme == "all" ? check::allSchemes()
                        : std::vector<std::string>{scheme};

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<CellResult> cells;
    bool anyViolation = false;
    std::uint64_t totalPowerCycles = 0;
    double worstEwMaxUs = 0;

    for (const std::string &sc : schemes) {
        for (std::uint64_t cap : caps) {
            energy::HarvestOptions opt;
            opt.scheme = sc;
            opt.workload = workload;
            opt.seed = seed;
            opt.powerCycles = cycles;
            opt.ewTarget = usToCycles(ewUs);
            opt.cap.capacityUnits = cap;
            opt.auditEvery = audit;
            CellResult cell;
            cell.scheme = sc;
            cell.capUnits = cap;
            try {
                cell.res = energy::runHarvest(opt);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "terp-harvest: %s %llu: %s\n",
                             sc.c_str(), (unsigned long long)cap,
                             e.what());
                return 2;
            }
            totalPowerCycles += cell.res.powerCycles;
            if (cell.res.exposure.ewMaxUs > worstEwMaxUs)
                worstEwMaxUs = cell.res.exposure.ewMaxUs;
            if (!cell.res.ok()) {
                anyViolation = true;
                for (const std::string &v : cell.res.violations)
                    std::fprintf(stderr,
                                 "terp-harvest: %s cap=%llu: %s\n",
                                 sc.c_str(), (unsigned long long)cap,
                                 v.c_str());
            }
            cells.push_back(std::move(cell));
        }
    }
    const double wallS = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    if (json) {
        for (const CellResult &c : cells)
            std::printf("%s\n", cellJson(workload, c).c_str());
    } else {
        std::printf("terp-harvest: %s workload, %u power cycles per "
                    "cell, EW target %.1fus\n",
                    workload.c_str(), cycles, ewUs);
        std::printf("%-6s %8s %9s %9s %6s %6s %8s %8s %9s %8s\n",
                    "scheme", "cap", "commit", "interrupt", "ckpt",
                    "swskip", "ew_avg", "ew_ovh", "tew_avg",
                    "ew_max");
        for (const std::string &sc : schemes) {
            // Baseline: the largest capacitor of this scheme's rows
            // (closest to steady power).
            double baseEw = 0;
            std::uint64_t baseCap = 0;
            for (const CellResult &c : cells) {
                if (c.scheme == sc && c.capUnits > baseCap) {
                    baseCap = c.capUnits;
                    baseEw = c.res.exposure.ewAvgUs;
                }
            }
            for (const CellResult &c : cells) {
                if (c.scheme != sc)
                    continue;
                double ovh =
                    baseEw > 0 ? (c.res.exposure.ewAvgUs / baseEw -
                                  1.0) * 100.0
                               : 0.0;
                std::printf("%-6s %8llu %9llu %9llu %6llu %6llu "
                            "%7.2fu %+7.1f%% %8.2fu %7.2fu\n",
                            c.scheme.c_str(),
                            (unsigned long long)c.capUnits,
                            (unsigned long long)c.res.committed,
                            (unsigned long long)c.res.interrupted,
                            (unsigned long long)c.res.checkpoints,
                            (unsigned long long)c.res.sweepsSkipped,
                            c.res.exposure.ewAvgUs, ovh,
                            c.res.exposure.tewAvgUs,
                            c.res.exposure.ewMaxUs);
            }
        }
        std::printf("terp-harvest: %llu power cycles total, %.2fs "
                    "wall (%.0f cycles/s)\n",
                    (unsigned long long)totalPowerCycles, wallS,
                    wallS > 0 ? totalPowerCycles / wallS : 0.0);
    }

    if (!historyPath.empty()) {
        bench::HistoryRecord rec;
        rec.tool = "terp-harvest";
        rec.metric = "cycles_per_s";
        rec.simsPerS =
            wallS > 0 ? totalPowerCycles / wallS : 0.0;
        rec.p99EwCycles =
            static_cast<std::uint64_t>(usToCycles(worstEwMaxUs));
        if (!bench::appendHistory(historyPath, rec)) {
            std::fprintf(stderr, "terp-harvest: cannot append %s\n",
                         historyPath.c_str());
            return 2;
        }
        std::fprintf(stderr, "terp-harvest: appended history %s\n",
                     historyPath.c_str());
    }

    // ---- golden summary (simulated work only; no wall clock) ------
    if (!writeGoldenPath.empty()) {
        FILE *f = std::fopen(writeGoldenPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "terp-harvest: cannot write %s\n",
                         writeGoldenPath.c_str());
            return 2;
        }
        std::fprintf(f,
                     "# terp-harvest golden summary: <scheme> "
                     "<workload> <cap> <power_cycles> <committed> "
                     "<interrupted> <sim_cycles>\n");
        for (const CellResult &c : cells)
            std::fprintf(f, "%s %s %llu %u %llu %llu %llu\n",
                         c.scheme.c_str(), workload.c_str(),
                         (unsigned long long)c.capUnits,
                         c.res.powerCycles,
                         (unsigned long long)c.res.committed,
                         (unsigned long long)c.res.interrupted,
                         (unsigned long long)c.res.simCycles);
        std::fclose(f);
        std::fprintf(stderr, "terp-harvest: wrote golden %s\n",
                     writeGoldenPath.c_str());
    }

    if (!goldenPath.empty()) {
        FILE *f = std::fopen(goldenPath.c_str(), "r");
        if (!f) {
            std::fprintf(stderr,
                         "terp-harvest: cannot read golden %s\n",
                         goldenPath.c_str());
            return 2;
        }
        bool drift = false;
        std::size_t seen = 0;
        char line[256];
        while (std::fgets(line, sizeof(line), f)) {
            if (line[0] == '#' || line[0] == '\n')
                continue;
            char sc[64], wl[64];
            unsigned long long cap = 0, pc = 0, com = 0, intr = 0,
                               sim = 0;
            if (std::sscanf(line, "%63s %63s %llu %llu %llu %llu %llu",
                            sc, wl, &cap, &pc, &com, &intr,
                            &sim) != 7)
                continue;
            ++seen;
            const CellResult *match = nullptr;
            for (const CellResult &c : cells)
                if (c.scheme == sc && workload == wl &&
                    c.capUnits == cap)
                    match = &c;
            if (!match) {
                std::fprintf(stderr,
                             "terp-harvest: golden names unknown "
                             "cell '%s %s %llu'\n",
                             sc, wl, cap);
                drift = true;
            } else if (match->res.powerCycles != pc ||
                       match->res.committed != com ||
                       match->res.interrupted != intr ||
                       match->res.simCycles != sim) {
                std::fprintf(
                    stderr,
                    "terp-harvest: DRIFT in %s %llu: cycles "
                    "%llu -> %u, committed %llu -> %llu, "
                    "interrupted %llu -> %llu, sim_cycles "
                    "%llu -> %llu\n",
                    sc, cap, pc, match->res.powerCycles, com,
                    (unsigned long long)match->res.committed, intr,
                    (unsigned long long)match->res.interrupted, sim,
                    (unsigned long long)match->res.simCycles);
                drift = true;
            }
        }
        std::fclose(f);
        if (seen != cells.size()) {
            std::fprintf(stderr,
                         "terp-harvest: golden covers %zu of %zu "
                         "cells\n",
                         seen, cells.size());
            drift = true;
        }
        if (drift)
            return 1;
        std::fprintf(stderr,
                     "terp-harvest: simulated cycles match golden\n");
    }
    return anyViolation ? 1 : 0;
}
