/**
 * @file
 * terp-bench — runs the whole table/figure suite in-process and
 * emits a machine-readable performance summary (BENCH_terp.json):
 * per-figure wall-clock, simulation counts, simulated cycles and
 * sims/sec, plus host thread count and the git revision.
 *
 * The figure harnesses print their tables to stdout; terp-bench
 * redirects stdout to /dev/null while each figure runs (progress
 * goes to stderr, the JSON to a file), so the tool measures the
 * simulation work, not terminal I/O.
 *
 * Simulated-cycle totals are deterministic per figure, so they
 * double as a regression oracle: --golden compares them against a
 * checked-in summary and fails on any drift, catching accidental
 * semantic changes from performance work.
 *
 * Usage:
 *   terp-bench [--quick] [--jobs=N] [--repeat=N] [--out=FILE]
 *              [--golden=FILE] [--write-golden=FILE]
 *              [--metrics-prom=FILE] [--history=FILE]
 *
 * Options:
 *   --quick            reduced workload sizes (CI smoke run)
 *   --jobs=N           worker threads per figure (default 1)
 *   --repeat=N         run the suite N times and report best-of-N
 *                      wall clock (one JSON record / history line);
 *                      simulated work must be identical across
 *                      passes — a mismatch is reported as drift
 *   --out=FILE         JSON output path (default BENCH_terp.json)
 *   --golden=FILE      fail (exit 1) if per-figure sims or simulated
 *                      cycles differ from FILE
 *   --write-golden=FILE  write the per-figure summary to FILE
 *   --metrics-prom=FILE  also export the aggregated metrics registry
 *                      in Prometheus text format
 *   --history=FILE     append {git rev, sims/s, p99 EW} to the
 *                      append-only bench history (JSON lines)
 *
 * The JSON summary ends with a "metrics" section: the process-wide
 * registry every run merged into (bench::globalMetrics()), giving
 * the suite's security-posture aggregate — exposure-window
 * percentiles, silent-operation fractions, sweeper activity — next
 * to the performance numbers. tools/terp-stats reads it back.
 *
 * Exit status: 0 on success, 1 on golden drift, 2 on usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "harness.hh"
#include "history.hh"
#include "metrics/export.hh"

using namespace terp;

namespace {

struct FigSpec
{
    const char *name;
    int (*fn)(int, char **);
    // Positional args for --quick; full runs use the defaults.
    std::vector<std::string> quickArgs;
};

const FigSpec kFigures[] = {
    {"fig08", bench::run_fig08, {"50"}},
    {"fig09", bench::run_fig09, {"40"}},
    {"fig10", bench::run_fig10, {"0.1"}},
    {"fig11", bench::run_fig11, {"0.1"}},
    {"table3", bench::run_table3, {"40"}},
    {"table4", bench::run_table4, {"0.1"}},
    {"table5", bench::run_table5, {"40"}},
    {"table6", bench::run_table6, {"40", "0.1"}},
    {"ablation", bench::run_ablation, {"40"}},
};

struct FigResult
{
    std::string name;
    double wallS = 0;
    std::uint64_t sims = 0;
    std::uint64_t simCycles = 0;
};

/**
 * Largest p99 across the aggregate's pmo="all" EW histograms (the
 * merge bakes scheme labels into the names, so there is one per
 * scheme; the worst tail is the regression-relevant one).
 */
std::uint64_t
aggregateEwP99()
{
    std::uint64_t worst = 0;
    for (const auto &[name, entry] :
         bench::globalMetrics().entries()) {
        if (entry.kind != metrics::Kind::Histogram || !entry.hist)
            continue;
        if (name.rfind("exposure.ew_cycles{", 0) != 0 ||
            name.find("pmo=\"all\"") == std::string::npos)
            continue;
        std::uint64_t p = entry.hist->quantile(0.99);
        if (p > worst)
            worst = p;
    }
    return worst;
}

/** Run @p fn with stdout pointed at /dev/null, restoring it after. */
int
runSilenced(int (*fn)(int, char **), int argc, char **argv)
{
    std::fflush(stdout);
    int saved = dup(STDOUT_FILENO);
    int devnull = open("/dev/null", O_WRONLY);
    if (saved < 0 || devnull < 0) {
        // Can't redirect; run loudly rather than not at all.
        if (saved >= 0)
            close(saved);
        if (devnull >= 0)
            close(devnull);
        return fn(argc, argv);
    }
    dup2(devnull, STDOUT_FILENO);
    close(devnull);
    int rc = fn(argc, argv);
    std::fflush(stdout);
    dup2(saved, STDOUT_FILENO);
    close(saved);
    return rc;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: terp-bench [--quick] [--jobs=N] [--repeat=N]"
                 " [--out=FILE] [--golden=FILE]\n"
                 "                  [--write-golden=FILE]"
                 " [--metrics-prom=FILE] [--history=FILE]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    unsigned jobs = 1;
    unsigned repeat = 1;
    std::string outPath = "BENCH_terp.json";
    std::string goldenPath;
    std::string writeGoldenPath;
    std::string promPath;
    std::string historyPath;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick") {
            quick = true;
        } else if (a.rfind("--jobs=", 0) == 0) {
            long v = std::atol(a.c_str() + 7);
            jobs = v > 1 ? static_cast<unsigned>(v) : 1;
        } else if (a.rfind("--repeat=", 0) == 0) {
            long v = std::atol(a.c_str() + 9);
            repeat = v > 1 ? static_cast<unsigned>(v) : 1;
        } else if (a.rfind("--out=", 0) == 0) {
            outPath = a.substr(6);
        } else if (a.rfind("--golden=", 0) == 0) {
            goldenPath = a.substr(9);
        } else if (a.rfind("--write-golden=", 0) == 0) {
            writeGoldenPath = a.substr(15);
        } else if (a.rfind("--metrics-prom=", 0) == 0) {
            promPath = a.substr(15);
        } else if (a.rfind("--history=", 0) == 0) {
            historyPath = a.substr(10);
        } else if (a == "--help" || a == "-h") {
            return usage();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return usage();
        }
    }

    const std::string jobsFlag = "--jobs=" + std::to_string(jobs);
    std::vector<FigResult> results;
    // Best-of-N convention (see bench/history.hh): wall-clock fields
    // are the minimum over passes, simulated work the (identical)
    // per-pass amount, so a single record summarizes N passes without
    // inflating throughput by host noise in either direction.
    double bestPassS = 0;
    std::uint64_t passSims = 0;
    bool repeatDrift = false;

    for (unsigned pass = 0; pass < repeat; ++pass) {
        const auto passStart = std::chrono::steady_clock::now();
        const bench::SimTally passBefore = bench::tallySnapshot();
        if (repeat > 1)
            std::fprintf(stderr, "terp-bench: pass %u/%u\n", pass + 1,
                         repeat);

        for (std::size_t fi = 0;
             fi < sizeof(kFigures) / sizeof(kFigures[0]); ++fi) {
            const FigSpec &fig = kFigures[fi];
            // Rebuild a mutable argv per figure: name, positionals,
            // jobs.
            std::vector<std::string> args;
            args.push_back(fig.name);
            if (quick)
                for (const std::string &a : fig.quickArgs)
                    args.push_back(a);
            args.push_back(jobsFlag);
            std::vector<char *> cargv;
            for (std::string &a : args)
                cargv.push_back(a.data());
            cargv.push_back(nullptr);

            std::fprintf(stderr, "terp-bench: %-8s ...", fig.name);
            const bench::SimTally before = bench::tallySnapshot();
            const auto t0 = std::chrono::steady_clock::now();
            runSilenced(fig.fn, static_cast<int>(args.size()),
                        cargv.data());
            const auto t1 = std::chrono::steady_clock::now();
            const bench::SimTally after = bench::tallySnapshot();

            FigResult r;
            r.name = fig.name;
            r.wallS = std::chrono::duration<double>(t1 - t0).count();
            r.sims = after.sims - before.sims;
            r.simCycles = after.simCycles - before.simCycles;
            if (pass == 0) {
                results.push_back(r);
            } else {
                FigResult &best = results[fi];
                if (r.sims != best.sims ||
                    r.simCycles != best.simCycles) {
                    std::fprintf(stderr,
                                 "terp-bench: DRIFT across passes in "
                                 "%s\n",
                                 fig.name);
                    repeatDrift = true;
                }
                if (r.wallS < best.wallS)
                    best.wallS = r.wallS;
            }
            std::fprintf(stderr, " %6.2fs  %3llu sims  %llu cycles\n",
                         r.wallS, (unsigned long long)r.sims,
                         (unsigned long long)r.simCycles);
        }

        const double passS =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - passStart)
                .count();
        const bench::SimTally passAfter = bench::tallySnapshot();
        if (pass == 0) {
            bestPassS = passS;
            passSims = passAfter.sims - passBefore.sims;
        } else if (passS < bestPassS) {
            bestPassS = passS;
        }
    }
    const double totalS = bestPassS;
    bench::SimTally total = bench::tallySnapshot();
    total.sims = passSims;
    if (repeatDrift)
        std::fprintf(stderr,
                     "terp-bench: WARNING: simulated work drifted "
                     "across repeat passes; results suspect\n");
    // Note: the metrics registry accumulates across passes (counters
    // end up N x a single pass; quantile sketches just see N copies
    // of the same samples). History/JSON throughput uses per-pass
    // sims over best-of-N wall, so repeat does not skew it.

    // ---- JSON summary --------------------------------------------
    if (FILE *f = std::fopen(outPath.c_str(), "w")) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"git_rev\": \"%s\",\n",
                     bench::gitRev().c_str());
        std::fprintf(f, "  \"host_threads\": %u,\n",
                     std::thread::hardware_concurrency());
        std::fprintf(f, "  \"jobs\": %u,\n", jobs);
        std::fprintf(f, "  \"quick\": %s,\n",
                     quick ? "true" : "false");
        std::fprintf(f, "  \"repeat\": %u,\n", repeat);
        std::fprintf(f, "  \"total_wall_s\": %.3f,\n", totalS);
        std::fprintf(f, "  \"total_sims\": %llu,\n",
                     (unsigned long long)total.sims);
        std::fprintf(f, "  \"total_sims_per_s\": %.2f,\n",
                     totalS > 0 ? total.sims / totalS : 0.0);
        std::fprintf(f, "  \"figures\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const FigResult &r = results[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"wall_s\": %.3f, "
                         "\"sims\": %llu, \"sim_cycles\": %llu, "
                         "\"sims_per_s\": %.2f}%s\n",
                         r.name.c_str(), r.wallS,
                         (unsigned long long)r.sims,
                         (unsigned long long)r.simCycles,
                         r.wallS > 0 ? r.sims / r.wallS : 0.0,
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"metrics\": %s\n",
                     metrics::toJson(bench::globalMetrics(), "  ")
                         .c_str());
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::fprintf(stderr, "terp-bench: wrote %s (%.2fs total)\n",
                     outPath.c_str(), totalS);
    } else {
        std::fprintf(stderr, "terp-bench: cannot write %s\n",
                     outPath.c_str());
        return 2;
    }

    if (!historyPath.empty()) {
        bench::HistoryRecord rec;
        rec.tool = "terp-bench";
        rec.metric = "sims_per_s";
        rec.simsPerS = totalS > 0 ? total.sims / totalS : 0.0;
        rec.p99EwCycles = aggregateEwP99();
        if (!bench::appendHistory(historyPath, rec)) {
            std::fprintf(stderr, "terp-bench: cannot append %s\n",
                         historyPath.c_str());
            return 2;
        }
        std::fprintf(stderr, "terp-bench: appended history %s\n",
                     historyPath.c_str());
    }

    if (!promPath.empty()) {
        FILE *f = std::fopen(promPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "terp-bench: cannot write %s\n",
                         promPath.c_str());
            return 2;
        }
        std::string prom =
            metrics::toPrometheus(bench::globalMetrics());
        std::fwrite(prom.data(), 1, prom.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "terp-bench: wrote %s\n",
                     promPath.c_str());
    }

    // ---- golden summary (simulated work only; no wall-clock) ------
    if (!writeGoldenPath.empty()) {
        FILE *f = std::fopen(writeGoldenPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "terp-bench: cannot write %s\n",
                         writeGoldenPath.c_str());
            return 2;
        }
        std::fprintf(f, "# terp-bench golden summary: "
                        "<figure> <sims> <sim_cycles>\n");
        for (const FigResult &r : results)
            std::fprintf(f, "%s %llu %llu\n", r.name.c_str(),
                         (unsigned long long)r.sims,
                         (unsigned long long)r.simCycles);
        std::fclose(f);
        std::fprintf(stderr, "terp-bench: wrote golden %s\n",
                     writeGoldenPath.c_str());
    }

    if (!goldenPath.empty()) {
        FILE *f = std::fopen(goldenPath.c_str(), "r");
        if (!f) {
            std::fprintf(stderr, "terp-bench: cannot read golden %s\n",
                         goldenPath.c_str());
            return 2;
        }
        bool drift = false;
        std::size_t seen = 0;
        char line[256];
        while (std::fgets(line, sizeof(line), f)) {
            if (line[0] == '#' || line[0] == '\n')
                continue;
            char name[64];
            unsigned long long sims = 0, cycles = 0;
            if (std::sscanf(line, "%63s %llu %llu", name, &sims,
                            &cycles) != 3)
                continue;
            ++seen;
            const FigResult *match = nullptr;
            for (const FigResult &r : results)
                if (r.name == name)
                    match = &r;
            if (!match) {
                std::fprintf(stderr,
                             "terp-bench: golden names unknown "
                             "figure '%s'\n",
                             name);
                drift = true;
            } else if (match->sims != sims ||
                       match->simCycles != cycles) {
                std::fprintf(
                    stderr,
                    "terp-bench: DRIFT in %s: sims %llu -> %llu, "
                    "sim_cycles %llu -> %llu\n",
                    name, sims, (unsigned long long)match->sims,
                    cycles, (unsigned long long)match->simCycles);
                drift = true;
            }
        }
        std::fclose(f);
        if (seen != results.size()) {
            std::fprintf(stderr,
                         "terp-bench: golden covers %zu of %zu "
                         "figures\n",
                         seen, results.size());
            drift = true;
        }
        if (drift)
            return 1;
        std::fprintf(stderr,
                     "terp-bench: simulated cycles match golden\n");
    }
    return 0;
}
