/**
 * @file
 * terp-serve — a long-lived multi-tenant PMO server simulation.
 *
 * Owns a fleet of tenant PMOs partitioned into shards (one isolated
 * runtime domain each: circular buffer, sweeper, exposure tracker,
 * placement RNG) and serves an open-loop stream of
 * attach/access/detach transactions from simulated client sessions:
 * Zipfian tenant popularity, bursty on/off arrivals, a configurable
 * fraction of slow clients that hold their attach windows past the
 * sweeper horizon. Prints the fleet's exposure/latency posture —
 * EW/TEW tails, SLO violations, request latency percentiles, queue
 * depth and shed counts, per shard and fleet-wide.
 *
 * Determinism contract (held down by tests and the CI golden):
 * for a fixed --seed and --shards, the posture report is
 * byte-identical for any --workers=N — host threads only decide
 * when a shard's epoch executes, never what it computes.
 *
 * Usage:
 *   terp-serve [--quick] [--seed=S] [--shards=K] [--workers=N]
 *              [--sessions=C] [--requests=R] [--scheme=NAME]
 *              [--slow=FRAC] [--queue-cap=Q] [--out=FILE]
 *              [--golden=FILE] [--write-golden=FILE]
 *              [--metrics-prom=FILE] [--history=FILE] [--quiet]
 *
 * Options:
 *   --quick              small CI configuration (2 shards, 200
 *                        sessions) — the serve golden's config
 *   --seed=S             master seed (default 1)
 *   --shards=K           runtime domains (default 2)
 *   --workers=N          host worker threads (default 1)
 *   --sessions=C         client sessions (default 200)
 *   --requests=R         requests per session (default 16)
 *   --scheme=NAME        tt | tm | mm | ttnc | basic | unprotected
 *                        (default tt)
 *   --slow=FRAC          slow-client fraction (default 0.02)
 *   --ew-budget=F        per-tenant exposure budget (fraction of
 *                        wall-clock a tenant PMO may sit exposed)
 *                        for SLO burn-rate alerting; publishes
 *                        serve.slo_burn{tenant,win} gauges and the
 *                        serve.shed_advised advisory counter
 *                        (default 0 = off)
 *   --txn-writes=N       end every request with one durable
 *                        TxManager transaction of N writes on its
 *                        tenant PMO (enables persistence; default 0
 *                        = no transactions)
 *   --queue-cap=Q        bounded per-shard queue (default 64)
 *   --out=FILE           JSON results (default SERVE_terp.json)
 *   --golden=FILE        fail (exit 1) if the report differs
 *   --write-golden=FILE  write the report to FILE
 *   --metrics-prom=FILE  fleet metrics, Prometheus text format
 *   --history=FILE       append {git rev, req/s, p99 EW, p99
 *                        latency} to the bench history (JSON lines)
 *   --quiet              suppress the report on stdout
 *
 * Exit status: 0 on success, 1 on golden drift, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "history.hh"
#include "metrics/export.hh"
#include "serve/report.hh"
#include "serve/server.hh"

using namespace terp;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: terp-serve [--quick] [--seed=S] [--shards=K]"
        " [--workers=N]\n"
        "                  [--sessions=C] [--requests=R]"
        " [--scheme=NAME] [--slow=FRAC]\n"
        "                  [--ew-budget=F]\n"
        "                  [--txn-writes=N]\n"
        "                  [--queue-cap=Q] [--out=FILE]"
        " [--golden=FILE]\n"
        "                  [--write-golden=FILE]"
        " [--metrics-prom=FILE]\n"
        "                  [--history=FILE] [--quiet]\n");
    return 2;
}

bool
applyScheme(serve::ServeConfig &cfg, const std::string &name)
{
    if (name == "tt")
        cfg.runtime = core::RuntimeConfig::tt();
    else if (name == "tm")
        cfg.runtime = core::RuntimeConfig::tm();
    else if (name == "mm")
        cfg.runtime = core::RuntimeConfig::mm();
    else if (name == "ttnc")
        cfg.runtime = core::RuntimeConfig::ttNoCombining();
    else if (name == "basic")
        cfg.runtime = core::RuntimeConfig::basicSemantics();
    else if (name == "unprotected")
        cfg.runtime = core::RuntimeConfig::unprotected();
    else
        return false;
    return true;
}

std::uint64_t
fleetP99(const serve::FleetResult &res, const char *name)
{
    if (!res.fleet)
        return 0;
    const metrics::LogHistogram *h = res.fleet->findHistogram(name);
    return h && h->summary().count() ? h->quantile(0.99) : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeConfig cfg;
    unsigned workers = 1;
    bool quiet = false;
    std::string outPath = "SERVE_terp.json";
    std::string goldenPath, writeGoldenPath, promPath, historyPath;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick") {
            cfg = serve::ServeConfig::quick();
        } else if (a.rfind("--seed=", 0) == 0) {
            cfg.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
        } else if (a.rfind("--shards=", 0) == 0) {
            long v = std::atol(a.c_str() + 9);
            if (v < 1)
                return usage();
            cfg.shards = static_cast<unsigned>(v);
        } else if (a.rfind("--workers=", 0) == 0) {
            long v = std::atol(a.c_str() + 10);
            workers = v > 1 ? static_cast<unsigned>(v) : 1;
        } else if (a.rfind("--sessions=", 0) == 0) {
            cfg.sessions =
                static_cast<unsigned>(std::atol(a.c_str() + 11));
        } else if (a.rfind("--requests=", 0) == 0) {
            cfg.requestsPerSession =
                static_cast<unsigned>(std::atol(a.c_str() + 11));
        } else if (a.rfind("--scheme=", 0) == 0) {
            if (!applyScheme(cfg, a.substr(9))) {
                std::fprintf(stderr, "unknown scheme '%s'\n",
                             a.c_str() + 9);
                return usage();
            }
        } else if (a.rfind("--slow=", 0) == 0) {
            cfg.slowFraction = std::atof(a.c_str() + 7);
        } else if (a.rfind("--ew-budget=", 0) == 0) {
            cfg.tenantEwBudget = std::atof(a.c_str() + 12);
            if (cfg.tenantEwBudget < 0)
                return usage();
        } else if (a.rfind("--txn-writes=", 0) == 0) {
            cfg.txnWrites =
                static_cast<unsigned>(std::atol(a.c_str() + 13));
            if (cfg.txnWrites > 0)
                cfg.persistence = true;
        } else if (a.rfind("--queue-cap=", 0) == 0) {
            long v = std::atol(a.c_str() + 12);
            if (v < 1)
                return usage();
            cfg.queueCapacity = static_cast<unsigned>(v);
        } else if (a.rfind("--out=", 0) == 0) {
            outPath = a.substr(6);
        } else if (a.rfind("--golden=", 0) == 0) {
            goldenPath = a.substr(9);
        } else if (a.rfind("--write-golden=", 0) == 0) {
            writeGoldenPath = a.substr(15);
        } else if (a.rfind("--metrics-prom=", 0) == 0) {
            promPath = a.substr(15);
        } else if (a.rfind("--history=", 0) == 0) {
            historyPath = a.substr(10);
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--help" || a == "-h") {
            return usage();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return usage();
        }
    }

    std::fprintf(stderr,
                 "terp-serve: %u shard(s), %u session(s), %u host "
                 "worker(s), seed %llu\n",
                 cfg.shards, cfg.sessions, workers,
                 static_cast<unsigned long long>(cfg.seed));

    serve::FleetResult res = serve::runFleet(cfg, workers);
    std::string report = serve::postureReport(res);
    if (!quiet)
        std::fputs(report.c_str(), stdout);
    std::fprintf(stderr, "terp-serve: done in %.2fs\n",
                 res.wallSeconds);

    if (!outPath.empty()) {
        std::ofstream f(outPath);
        if (!f) {
            std::fprintf(stderr, "terp-serve: cannot write %s\n",
                         outPath.c_str());
            return 2;
        }
        f << serve::toJson(res, workers);
        std::fprintf(stderr, "terp-serve: wrote %s\n",
                     outPath.c_str());
    }

    if (!promPath.empty()) {
        if (!res.fleet) {
            std::fprintf(stderr,
                         "terp-serve: metrics disabled, no %s\n",
                         promPath.c_str());
            return 2;
        }
        std::ofstream f(promPath);
        if (!f) {
            std::fprintf(stderr, "terp-serve: cannot write %s\n",
                         promPath.c_str());
            return 2;
        }
        f << metrics::toPrometheus(*res.fleet);
        std::fprintf(stderr, "terp-serve: wrote %s\n",
                     promPath.c_str());
    }

    if (!historyPath.empty()) {
        bench::HistoryRecord rec;
        rec.tool = "terp-serve";
        rec.metric = "req_per_s"; // completed requests, not sims
        std::uint64_t done = 0;
        for (const auto &s : res.shards)
            done += s.completed;
        rec.simsPerS =
            res.wallSeconds > 0 ? done / res.wallSeconds : 0.0;
        rec.p99EwCycles =
            fleetP99(res, "exposure.ew_cycles{pmo=\"all\"}");
        rec.p99LatencyCycles =
            fleetP99(res, "serve.request_latency_cycles");
        if (!bench::appendHistory(historyPath, rec)) {
            std::fprintf(stderr, "terp-serve: cannot append %s\n",
                         historyPath.c_str());
            return 2;
        }
        std::fprintf(stderr, "terp-serve: appended history %s\n",
                     historyPath.c_str());
    }

    if (!writeGoldenPath.empty()) {
        std::ofstream f(writeGoldenPath);
        if (!f) {
            std::fprintf(stderr, "terp-serve: cannot write %s\n",
                         writeGoldenPath.c_str());
            return 2;
        }
        f << report;
        std::fprintf(stderr, "terp-serve: wrote golden %s\n",
                     writeGoldenPath.c_str());
    }

    if (!goldenPath.empty()) {
        std::ifstream f(goldenPath);
        if (!f) {
            std::fprintf(stderr, "terp-serve: cannot read golden %s\n",
                         goldenPath.c_str());
            return 2;
        }
        std::ostringstream want;
        want << f.rdbuf();
        if (want.str() != report) {
            std::fprintf(stderr,
                         "terp-serve: DRIFT: report differs from "
                         "golden %s\n",
                         goldenPath.c_str());
            return 1;
        }
        std::fprintf(stderr, "terp-serve: report matches golden\n");
    }
    return 0;
}
