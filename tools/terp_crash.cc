/**
 * @file
 * terp-crash — crash-point fault injection and recovery validation.
 *
 * For each selected workload x scheme cell the driver runs an
 * uninterrupted baseline to count persist-boundary events, then
 * re-runs the workload once per boundary with the controller's fault
 * plan armed to crash there, recovers, and asserts the atomicity /
 * liveness / exposure-hygiene oracle (see src/check/crash.hh).
 *
 * Usage:
 *   terp-crash [options]
 *
 * Options:
 *   --scheme S      all (default) or one of: mm tm tt ttnc basic
 *   --workload W    all (default) or one of: bank hashmap txnest
 *                   txpair schedule
 *   --seed N        first seed (default 0)
 *   --seeds N       seeds per cell (default 1; schedule workloads
 *                   generate a fresh schedule per seed)
 *   --txns N        bank transfers / hashmap inserts (default 12)
 *   --events N      schedule length in ops (default 40)
 *   --ew US         EW target in microseconds (default 5)
 *   --json          one JSON summary object per cell on stdout
 *
 * Exit status: 0 when every crash point recovered cleanly, 1 on any
 * violation, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/crash.hh"
#include "check/fuzzer.hh"

using namespace terp;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: terp-crash [--scheme all|mm|tm|tt|ttnc|basic]\n"
        "                  [--workload all|bank|hashmap|txnest|\n"
        "                   txpair|schedule]\n"
        "                  [--seed N] [--seeds N] [--txns N]\n"
        "                  [--events N] [--ew US] [--json]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    check::CrashOptions opt;
    std::string scheme = "all";
    std::string workload = "all";
    unsigned seeds = 1;
    double ewUs = 5.0;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::string inl;
        std::size_t eq = a.find('=');
        if (eq != std::string::npos) {
            inl = a.substr(eq + 1);
            a = a.substr(0, eq);
        }
        auto val = [&]() -> std::string {
            if (!inl.empty())
                return inl;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--scheme") {
            scheme = val();
        } else if (a == "--workload") {
            workload = val();
        } else if (a == "--seed") {
            opt.seed = std::strtoull(val().c_str(), nullptr, 0);
        } else if (a == "--seeds") {
            seeds = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--txns") {
            opt.txns = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--events") {
            opt.events = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--ew") {
            ewUs = std::strtod(val().c_str(), nullptr);
        } else if (a == "--json") {
            json = true;
        } else if (a == "--help" || a == "-h") {
            return usage();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return usage();
        }
    }

    opt.ewTarget = usToCycles(ewUs);
    std::vector<std::string> schemes =
        scheme == "all" ? check::allSchemes()
                        : std::vector<std::string>{scheme};
    std::vector<std::string> workloads =
        workload == "all"
            ? std::vector<std::string>{"bank", "hashmap", "txnest",
                                     "txpair", "schedule"}
            : std::vector<std::string>{workload};

    std::uint64_t firstSeed = opt.seed;
    bool anyViolation = false;
    for (const std::string &wl : workloads) {
        for (const std::string &sc : schemes) {
            for (unsigned s = 0; s < seeds; ++s) {
                check::CrashOptions cell = opt;
                cell.scheme = sc;
                cell.workload = wl;
                cell.seed = firstSeed + s;
                check::CrashResult res;
                try {
                    res = check::enumerateCrashPoints(cell);
                } catch (const std::exception &e) {
                    std::fprintf(stderr, "terp-crash: %s\n",
                                 e.what());
                    return 2;
                }
                if (json) {
                    std::printf(
                        "%s\n",
                        check::crashResultJson(cell, res).c_str());
                } else {
                    std::printf(
                        "terp-crash: %-8s %-8s seed=%llu  "
                        "%llu crash points, %zu violation(s)\n",
                        wl.c_str(), sc.c_str(),
                        static_cast<unsigned long long>(cell.seed),
                        static_cast<unsigned long long>(
                            res.pointsRun),
                        res.violations.size());
                }
                if (!res.ok()) {
                    anyViolation = true;
                    std::size_t cap = 8;
                    for (const check::CrashViolation &cv :
                         res.violations) {
                        if (cap-- == 0) {
                            std::fprintf(stderr, "  ...\n");
                            break;
                        }
                        std::fprintf(
                            stderr,
                            "  point %llu (before %s): %s\n",
                            static_cast<unsigned long long>(
                                cv.point),
                            pm::persistBoundaryName(cv.kind),
                            cv.detail.c_str());
                    }
                }
            }
        }
    }
    return anyViolation ? 1 : 0;
}
