/**
 * @file
 * terp-fuzz — differential fuzzing of the protection runtime
 * against the Section-IV specification semantics.
 *
 * Generates seed-deterministic multi-threaded schedules of
 * region/manual begin-end pairs, accesses and sweeper ticks, replays
 * each against core::Runtime and the spec oracle in lockstep, and
 * reports any divergence with a shrunken schedule plus a paste-ready
 * C++ reproducer.
 *
 * Usage:
 *   terp-fuzz [options]
 *
 * Options:
 *   --scheme S      all (default) or one of: mm tm tt ttnc basic
 *   --seeds N       seeds per scheme (default 64)
 *   --first-seed N  first seed (default 0; replay a report with
 *                   --first-seed <seed> --seeds 1)
 *   --events N      events per schedule (default 40)
 *   --threads N     threads per schedule (default 3)
 *   --pmos N        PMOs per schedule (default 2)
 *   --ew US         EW target in microseconds (default 5; floor 5)
 *   --crash         mix undo-log transactions and crash/recover
 *                   steps into the schedules
 *   --txn           mix TxManager transactions into the schedules:
 *                   nested begin/commit, aborts, cross-thread lock
 *                   conflicts, undo and redo variants, checked in
 *                   lockstep against the transaction spec oracle
 *   --shrink        minimize divergent schedules (greedy deletion)
 *   --no-shrink     report the raw divergent schedule
 *
 * Exit status: 0 when every schedule is divergence-free, 1 on any
 * divergence, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/fuzzer.hh"

using namespace terp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: terp-fuzz [--scheme all|mm|tm|tt|ttnc|basic]"
                 " [--seeds N]\n"
                 "                 [--first-seed N] [--events N] "
                 "[--threads N] [--pmos N]\n"
                 "                 [--ew US] [--crash] [--txn] "
                 "[--shrink|--no-shrink]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    check::FuzzOptions opt;
    opt.shrink = true;
    std::string scheme = "all";
    double ewUs = 5.0;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        // Accept both "--flag value" and "--flag=value".
        std::string inl;
        std::size_t eq = a.find('=');
        if (eq != std::string::npos) {
            inl = a.substr(eq + 1);
            a = a.substr(0, eq);
        }
        auto val = [&]() -> std::string {
            if (!inl.empty())
                return inl;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--scheme") {
            scheme = val();
        } else if (a == "--seeds") {
            opt.seeds = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--first-seed") {
            opt.firstSeed = std::strtoull(val().c_str(), nullptr, 0);
        } else if (a == "--events") {
            opt.gen.events = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--threads") {
            opt.gen.threads = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--pmos") {
            opt.gen.pmos = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 0));
        } else if (a == "--ew") {
            ewUs = std::strtod(val().c_str(), nullptr);
        } else if (a == "--crash") {
            opt.gen.persistOps = true;
        } else if (a == "--txn") {
            opt.gen.txnOps = true;
        } else if (a == "--shrink") {
            opt.shrink = true;
        } else if (a == "--no-shrink") {
            opt.shrink = false;
        } else if (a == "--help" || a == "-h") {
            return usage();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return usage();
        }
    }

    opt.gen.ewTarget = usToCycles(ewUs);
    if (scheme != "all")
        opt.schemes.push_back(scheme);

    check::FuzzResult res;
    try {
        res = check::fuzz(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "terp-fuzz: %s\n", e.what());
        return 2;
    }

    if (res.ok()) {
        std::printf("terp-fuzz: %u schedules replayed, no "
                    "divergence\n",
                    res.executed);
        return 0;
    }

    std::printf("terp-fuzz: %zu divergence(s) in %u schedules\n\n",
                res.divergences.size(), res.executed);
    for (const check::Divergence &d : res.divergences) {
        std::printf("== scheme=%s seed=%llu (%zu events after "
                    "shrinking) ==\n",
                    d.scheme.c_str(),
                    static_cast<unsigned long long>(d.seed),
                    d.shrunk.ops.size());
        for (const std::string &c : d.complaints)
            std::printf("  %s\n", c.c_str());
        std::printf("--- schedule ---\n");
        for (std::size_t i = 0; i < d.shrunk.ops.size(); ++i)
            std::printf("  %2zu: %s\n", i,
                        check::describeOp(d.shrunk.ops[i]).c_str());
        std::printf("--- reproducer ---\n%s\n",
                    d.reproducer.c_str());
    }
    return 1;
}
