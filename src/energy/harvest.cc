#include "energy/harvest.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "check/fuzzer.hh"
#include "check/recovery_oracle.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/registry.hh"
#include "pm/tx_manager.hh"
#include "trace/audit.hh"

namespace terp {
namespace energy {

namespace {

constexpr std::uint64_t logOff = 1ULL << 32;
constexpr std::uint64_t pmoBytes = 64 * KiB;

/** Account i of the bank workload's transfer ledger. */
pm::Oid
acct(unsigned i)
{
    return pm::Oid(1, 0x1000 + 64ULL * i);
}

/**
 * One harvest run. Owns the world, the capacitor, and the oracle
 * ledger for the whole multi-cycle lifetime — unlike the crash-point
 * enumerator, nothing here is rebuilt between crashes, which is the
 * point: state that survives a crash()/recover() pair incorrectly
 * compounds instead of hiding behind a fresh world.
 */
struct Harness
{
    const HarvestOptions &opt;
    HarvestResult res;
    check::CrashWorld w;
    Capacitor cap;
    check::Ledger led;
    Rng rng;
    bool txmix;

    /** Machine time already charged to the capacitor. */
    Cycles energyClock = 0;
    /** Last completed transaction's cost, for race-to-expiry arming. */
    Cycles estCycles = 0;
    std::uint64_t estBoundaries = 0;

    bool inited = false;
    std::uint64_t attempts = 0; //!< txn attempts; the scratch value
    std::uint64_t lastDurableScratch = 0;
    bool scratchPending = false;
    const pm::Oid scratchOid{1, 0x600};

    std::shared_ptr<metrics::Registry> reg;
    metrics::Counter *cPowerCycles = nullptr;
    metrics::Counter *cCheckpoints = nullptr;
    metrics::Counter *cInterrupted = nullptr;
    metrics::Gauge *gStored = nullptr;
    metrics::LogHistogram *hOff = nullptr;
    metrics::LogHistogram *hRecoveryEw = nullptr;

    explicit Harness(const HarvestOptions &o)
        : opt(o),
          w(check::schemeConfig(o.scheme, o.ewTarget)
                .withTrace(o.traceCapacity),
            o.workload == "txmix" ? 2u : 1u, /*threads=*/1u, pmoBytes,
            logOff),
          cap(o.cap), rng(0x9e3779b97f4a7c15ULL ^ o.seed),
          txmix(o.workload == "txmix")
    {
        TERP_ASSERT(o.workload == "bank" || o.workload == "txmix",
                    "harvest: unknown workload ", o.workload);
        // Sweeper energy budgeting: a tick the backup reserve cannot
        // afford is skipped — the hook grid advances, windows stay
        // open, and the exposure cost shows up in the EW metrics.
        // Blame attribution rides the gate: while ticks are being
        // skipped for energy the sweeper *couldn't* act, so idle
        // exposure is EnergyDark, not SweeperLag. setEnergyDark
        // dedupes repeated states, so toggling per tick is free.
        w.sweepGate = [this](Cycles t) {
            if (cap.belowSweepReserve()) {
                ++res.sweepsSkipped;
                w.rt->exposureMut().setEnergyDark(true, t);
                return false;
            }
            ++res.sweepsRun;
            w.rt->exposureMut().setEnergyDark(false, t);
            return true;
        };
        reg = w.rt->metricsRegistry();
        if (reg) {
            cPowerCycles = &reg->counter("energy.power_cycles");
            cCheckpoints = &reg->counter("energy.checkpoints");
            cInterrupted = &reg->counter("energy.txns_interrupted");
            gStored = &reg->gauge("energy.stored_units");
            hOff = &reg->histogram("energy.off_cycles");
            hRecoveryEw =
                &reg->histogram("energy.recovery_ew_cycles");
        }
    }

    /** Charge the capacitor for machine time not yet accounted. */
    void
    settleEnergy()
    {
        Cycles now = w.mach.maxClock();
        if (now > energyClock) {
            cap.drain(now - energyClock);
            energyClock = now;
        }
    }

    void
    addViolation(const std::string &msg)
    {
        if (res.violations.size() < opt.maxViolations) {
            std::ostringstream os;
            os << "cycle " << res.powerCycles << ": " << msg;
            res.violations.push_back(os.str());
        } else if (res.violations.size() == opt.maxViolations) {
            res.violations.push_back("... further violations "
                                     "suppressed");
        }
    }

    std::vector<std::pair<pm::Oid, std::uint64_t>>
    nextBankWrites()
    {
        const pm::Oid seq(1, 0x800);
        const pm::PersistController &ctl = w.dom.controller();
        if (!inited) {
            std::vector<std::pair<pm::Oid, std::uint64_t>> init;
            for (unsigned i = 0; i < 8; ++i)
                init.push_back({acct(i), 1000});
            init.push_back({seq, 1});
            return init;
        }
        auto a = static_cast<unsigned>(rng.nextBelow(8));
        auto b = static_cast<unsigned>(rng.nextBelow(7));
        if (b >= a)
            ++b;
        std::uint64_t amt = 1 + rng.nextBelow(200);
        // Two's-complement arithmetic keeps the sum invariant even
        // through a (harmless) negative balance.
        std::uint64_t newA = ctl.load(acct(a)) - amt;
        std::uint64_t newB = ctl.load(acct(b)) + amt;
        return {{acct(a), newA},
                {acct(b), newB},
                {seq, ctl.load(seq) + 1}};
    }

    /**
     * One nested TxManager transfer across two PMOs, txnest-style:
     * alternating undo/redo kinds, ~20% inner aborts poisoning the
     * outer commit. The oracle flight stays armed if a power failure
     * unwinds the transaction; resolveFlights() settles it after
     * recovery.
     */
    void
    runTxmixTxn(sim::ThreadContext &tc)
    {
        pm::TxManager &txm = *w.rt->tx();
        const pm::PersistController &ctl = w.dom.controller();
        const pm::Oid acctA(1, 0x1000), acctB(2, 0x1000),
            seq(1, 0x800);
        bool init = !inited;
        bool redo = !init && rng.nextBelow(2) == 1;
        bool doAbort = !init && rng.nextBelow(100) < 20;
        std::uint64_t amt = 1 + rng.nextBelow(200);
        std::uint64_t newA = init ? 1000 : ctl.load(acctA) - amt;
        std::uint64_t newB = init ? 1000 : ctl.load(acctB) + amt;
        std::uint64_t s = ctl.load(seq) + 1;
        std::vector<std::pair<pm::Oid, std::uint64_t>> writes = {
            {acctA, newA}, {acctB, newB}, {seq, s}};

        check::armFlight(led, 0, redo && !doAbort, writes);
        check::protOpen(w, tc, 1);
        check::protOpen(w, tc, 2);
        txm.begin(tc, 0, {1, 2},
                  redo ? pm::TxKind::Redo : pm::TxKind::Undo);
        w.rt->access(tc, acctA, /*write=*/true);
        txm.write(tc, 0, acctA, newA);
        txm.begin(tc, 0, {2}); // nested level: locks already held
        w.rt->access(tc, acctB, /*write=*/true);
        txm.write(tc, 0, acctB, newB);
        txm.write(tc, 0, seq, s);
        if (doAbort)
            txm.abort(tc, 0);
        txm.commit(tc, 0); // inner: unwind only
        bool ok = txm.commit(tc, 0); // outermost: the durable point
        check::protClose(w, tc, 2);
        check::protClose(w, tc, 1);
        check::settleFlight(led, 0, ok);
        if (ok) {
            ++res.committed;
            if (init)
                inited = true;
        } else {
            ++res.aborted;
        }
        w.advanceSweeps(tc.now());
    }

    /**
     * One transaction under the energy regime: checkpoint below the
     * watermark, arm the race-to-expiry fault when the runway no
     * longer covers a transaction, run it, and charge the capacitor.
     * Returns false when the power failed mid-transaction.
     */
    bool
    runOneTxn(sim::ThreadContext &tc)
    {
        pm::PersistController &ctl = w.dom.controller();

        bool armed = false;
        try {
            // Checkpoint policy: below the watermark, fence pending
            // write-backs (the unfenced scratch update) while the
            // energy still covers the flush.
            if (scratchPending && cap.belowWatermark()) {
                ctl.sfence(tc);
                scratchPending = false;
                ++res.checkpoints;
                if (cCheckpoints)
                    cCheckpoints->inc();
            }

            // Race to expiry: when the runway no longer covers a
            // transaction (cost estimated from the last completed
            // one), the power will fail mid-transaction — plant the
            // modeled failure at the boundary the energy runs out
            // at, scaled by the boundary density of a transaction.
            if (estCycles > 0 && estBoundaries > 0) {
                Cycles runway = cap.runway();
                if (runway < estCycles) {
                    std::uint64_t frac =
                        (estBoundaries * runway) / estCycles;
                    std::uint64_t off =
                        std::min(frac, estBoundaries - 1);
                    ctl.armFault(ctl.boundaryCount() + 1 + off);
                    armed = true;
                }
            }

            Cycles c0 = w.mach.maxClock();
            std::uint64_t b0 = ctl.boundaryCount();
            ++attempts;
            if (txmix) {
                runTxmixTxn(tc);
            } else {
                bool wasInit = !inited;
                check::runTxn(w, led, tc, 1, nextBankWrites());
                if (wasInit)
                    inited = true;
                ++res.committed;
            }
            // Unfenced scratch update: store + clwb but no fence —
            // durable at the next fence, wherever that lands. The
            // checkpoint watermark exists to bound how much of this
            // a power failure can lose.
            ctl.persistentStore(tc, scratchOid, attempts);
            scratchPending = true;

            settleEnergy();
            estCycles = w.mach.maxClock() - c0;
            estBoundaries = ctl.boundaryCount() - b0;
        } catch (const pm::PowerFailure &) {
            ++res.interrupted;
            if (cInterrupted)
                cInterrupted->inc();
            settleEnergy();
            return false;
        }
        if (armed) {
            // The estimate overshot — the transaction fit after all.
            // A stale plan must never survive into the crash or the
            // recovery path.
            ctl.disarmFault();
        }
        return true;
    }

    /**
     * Settle oracle flights left open by a mid-transaction power
     * failure: the durable image tells which side of the durable
     * point the crash landed on (checkDurable() already verified it
     * is not torn).
     */
    void
    resolveFlights()
    {
        const pm::PersistController &ctl = w.dom.controller();
        for (auto it = led.flight.begin(); it != led.flight.end();) {
            const check::TxFlight &fl = it->second;
            bool allNew = fl.ambiguous && !fl.keys.empty();
            for (std::uint64_t raw : fl.keys) {
                if (ctl.persistedLoad(pm::Oid::fromRaw(raw)) !=
                    fl.newv.at(raw)) {
                    allNew = false;
                    break;
                }
            }
            if (allNew) {
                for (const auto &[raw, v] : fl.newv)
                    led.image[raw] = v;
                ++led.done;
            }
            it = led.flight.erase(it);
        }
        led.inFlight.clear();
    }

    void
    checkWorkloadInvariant(std::vector<std::string> &v)
    {
        const pm::PersistController &ctl = w.dom.controller();
        if (txmix) {
            std::uint64_t sum =
                ctl.persistedLoad(pm::Oid(1, 0x1000)) +
                ctl.persistedLoad(pm::Oid(2, 0x1000));
            if (sum != 0 && sum != 2000) {
                std::ostringstream os;
                os << "txmix: recovered cross-PMO balances sum to "
                   << sum << ", expected 2000 (or 0 pre-init)";
                v.push_back(os.str());
            }
            return;
        }
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < 8; ++i)
            sum += ctl.persistedLoad(acct(i));
        if (sum != 0 && sum != 8 * 1000) {
            std::ostringstream os;
            os << "bank: recovered balances sum to " << sum
               << ", expected 8000 (or 0 pre-init)";
            v.push_back(os.str());
        }
    }

    /**
     * The unfenced scratch counter may lose its tail to a power
     * failure, but its durable value can never regress (writes only
     * increase it and no log ever rolls it back) nor run ahead of
     * the attempts that wrote it.
     */
    void
    checkScratch(std::vector<std::string> &v)
    {
        std::uint64_t cur =
            w.dom.controller().persistedLoad(scratchOid);
        if (cur < lastDurableScratch) {
            std::ostringstream os;
            os << "scratch: durable counter regressed "
               << lastDurableScratch << " -> " << cur;
            v.push_back(os.str());
        }
        if (cur > attempts) {
            std::ostringstream os;
            os << "scratch: durable counter " << cur
               << " ahead of " << attempts << " attempts";
            v.push_back(os.str());
        }
        lastDurableScratch = cur;
    }

    /** Post-recovery liveness probe; feeds the atomicity ledger. */
    void
    probe(std::vector<std::string> &v)
    {
        sim::ThreadContext &tc = w.mach.thread(0);
        Cycles drained = w.nextHook - w.hookPeriod;
        if (tc.now() < drained)
            tc.syncTo(drained, sim::Charge::Other);
        check::runTxn(w, led, tc, 1,
                      {{pm::Oid(1, pmoBytes - 8),
                        0x900d0000ULL + res.powerCycles}});
        check::checkDurable(w, led, v);
        check::drainIdleWindows(w, "the probe transaction", v);
    }

    void
    audit(std::vector<std::string> &v)
    {
        auto sink = w.rt->traceSink();
        if (!sink)
            return;
        if (!sink->complete()) {
            v.push_back("trace ring wrapped before the audit; raise "
                        "traceCapacity or auditEvery");
            return;
        }
        trace::AuditReport rep = trace::auditTimeline(
            *sink, w.mach.maxClock(), w.rt->exposure());
        for (const std::string &m : rep.mismatches)
            v.push_back("trace audit: " + m);
        if (!rep.ok && rep.mismatches.empty())
            v.push_back("trace audit failed without detail");
    }

    /**
     * The power-fail / recharge / recover sequence, plus the
     * per-cycle oracle. Verification work (the idle drain, the probe
     * transaction, the audit) is the oracle's instrument, not
     * modeled execution: its cycles are excluded from the energy
     * account by re-anchoring the energy clock afterwards.
     */
    void
    powerFail()
    {
        pm::PersistController &ctl = w.dom.controller();
        // A fault plan armed for the execution that just died must
        // not fire inside recovery.
        if (ctl.faultArmed())
            ctl.disarmFault();

        Cycles at = w.mach.maxClock();
        for (unsigned i = 0; i < w.mach.threadCount(); ++i) {
            sim::ThreadContext &t = w.mach.thread(i);
            if (!t.done && !t.blocked() && t.now() < at)
                t.syncTo(at, sim::Charge::Other);
        }
        auto sink = w.rt->traceSink();
        if (sink) {
            sink->emit(trace::TraceSink::kernelTid,
                       trace::EventKind::PowerFail, at, trace::noPmo,
                       cap.storedUnits());
        }
        w.rt->crash(at);
        if (gStored)
            gStored->set(static_cast<double>(cap.storedUnits()));

        Cycles off = cap.rechargeCycles();
        cap.recharge();
        Cycles resume = at + off;
        res.offCycles += off;
        if (hOff)
            hOff->record(off);
        // The machine is dark: the hook grid advances over the gap
        // without firing.
        while (w.nextHook <= resume)
            w.nextHook += w.hookPeriod;
        if (sink) {
            sink->emit(trace::TraceSink::kernelTid,
                       trace::EventKind::Recharge, resume,
                       trace::noPmo, off);
        }

        sim::ThreadContext &rtc = w.mach.thread(0);
        if (rtc.now() < resume)
            rtc.syncTo(resume, sim::Charge::Other);
        energyClock = resume;
        // The capacitor is recharged: recovery-reopened windows are
        // the sweeper's to close again, not energy-dark. All windows
        // are closed here, so the flush inside is a no-op.
        w.rt->exposureMut().setEnergyDark(false, resume);
        unsigned n = w.rt->recover(rtc);
        res.recoveredLogs += n;
        settleEnergy(); // recovery dips into the fresh charge

        std::vector<std::string> v;
        check::drainIdleWindows(w, "recovery", v);
        if (hRecoveryEw) {
            // Recovery-reopened exposure: attach at resume, closed by
            // the idle drain — one sample per replayed PMO.
            Cycles closed = w.mach.maxClock();
            for (unsigned i = 0; i < n; ++i)
                hRecoveryEw->record(closed - resume);
        }
        if (opt.oracle) {
            check::checkLogsRetired(w, v);
            resolveFlights();
            check::checkDurable(w, led, v);
            checkWorkloadInvariant(v);
            checkScratch(v);
            probe(v);
        } else {
            resolveFlights();
        }
        ++res.powerCycles;
        if (cPowerCycles)
            cPowerCycles->inc();
        if (opt.oracle && opt.auditEvery &&
            res.powerCycles % opt.auditEvery == 0) {
            audit(v);
        }
        for (const std::string &m : v)
            addViolation(m);
        // Verification cycles are free.
        energyClock = w.mach.maxClock();
    }

    HarvestResult
    run()
    {
        sim::ThreadContext &tc = w.mach.thread(0);
        while (res.powerCycles < opt.powerCycles &&
               res.violations.size() <= opt.maxViolations) {
            if (cap.failed() || cap.runway() == 0) {
                powerFail();
                continue;
            }
            if (!runOneTxn(tc)) {
                powerFail();
                continue;
            }
            if (cap.failed())
                powerFail();
        }

        w.rt->finalize();
        if (opt.oracle && opt.auditEvery) {
            std::vector<std::string> v;
            audit(v);
            for (const std::string &m : v)
                addViolation(m);
        }
        res.simCycles = w.mach.maxClock();
        res.exposure = w.rt->exposure().metricsAll(
            res.simCycles, w.mach.threadCount());
        for (unsigned c = 0; c < semantics::numBlameCauses; ++c)
            res.blame[c] = w.rt->exposure().blameTotalAll(
                static_cast<semantics::BlameCause>(c));
        if (gStored)
            gStored->set(static_cast<double>(cap.storedUnits()));
        return std::move(res);
    }
};

} // namespace

HarvestResult
runHarvest(const HarvestOptions &opt)
{
    Harness h(opt);
    return h.run();
}

} // namespace energy
} // namespace terp
