/**
 * @file
 * Deterministic capacitor model for the intermittent-power regime.
 *
 * Energy-harvesting platforms (eh-sim/Clank-style) run off a small
 * storage capacitor: the harvester trickles charge in continuously,
 * execution drains it faster than it refills, and when the stored
 * level crosses the power-fail threshold the device dies, recharges
 * dark, and reboots into recovery — thousands of times per workload.
 * TERP cares because every reboot re-opens exposure windows, and the
 * sweeper / checkpoint machinery must fit inside the energy budget.
 *
 * The model is integer arithmetic end to end (no floats, no wall
 * clock) so a harvest run is bit-reproducible across hosts: levels
 * are tracked in thousandths of an energy unit, and rates are given
 * per kilocycle of the *simulated* clock, which makes the per-cycle
 * rate in scaled thousandths exact.
 */

#ifndef TERP_ENERGY_CAPACITOR_HH
#define TERP_ENERGY_CAPACITOR_HH

#include <cstdint>

#include "common/units.hh"

namespace terp {
namespace energy {

/** Capacitor + harvester parameters. All rates per 1000 sim cycles. */
struct CapacitorConfig
{
    std::uint64_t capacityUnits = 1000;    //!< full charge
    std::uint64_t harvestPerKcycle = 2;    //!< inflow, on and off
    std::uint64_t drainPerKcycle = 10;     //!< execution outflow
    /**
     * Backup-energy reserve: the device power-fails when the level
     * reaches this, leaving exactly the reserve to ride out the
     * failure (recovery after recharge may dip back into it).
     */
    std::uint64_t failThresholdUnits = 100;
    /** Checkpoint (flush pending write-backs) below this level. */
    std::uint64_t watermarkUnits = 250;
    /** Sweeper ticks are skipped below this level. */
    std::uint64_t sweepReserveUnits = 200;
};

/**
 * The capacitor: charge level, race-to-expiry accounting, and the
 * policy thresholds (checkpoint watermark, sweeper reserve).
 */
class Capacitor
{
  public:
    explicit Capacitor(const CapacitorConfig &config);

    /**
     * Powered execution cycles affordable before the level reaches
     * the fail threshold. ~0 when net drain is zero or negative (the
     * harvester keeps up; the device never dies).
     */
    Cycles runway() const;

    /**
     * Account @p cycles of powered execution (drain minus harvest).
     * Returns the powered prefix: less than @p cycles when the fail
     * threshold was crossed mid-interval, after which failed() is
     * true and the level sits at (or just under) the threshold.
     */
    Cycles drain(Cycles cycles);

    /** The level reached the fail threshold and power was lost. */
    bool failed() const { return failed_; }

    /** Dark recharge time from the current level back to full. */
    Cycles rechargeCycles() const;

    /** Recharge to full capacity and clear the failure latch. */
    void recharge();

    std::uint64_t storedUnits() const { return scaled / kScale; }

    bool belowWatermark() const
    {
        return scaled < cfg.watermarkUnits * kScale;
    }

    bool belowSweepReserve() const
    {
        return scaled < cfg.sweepReserveUnits * kScale;
    }

    const CapacitorConfig &config() const { return cfg; }

  private:
    static constexpr std::uint64_t kScale = 1000;

    /** Net outflow per cycle while powered, in scaled units. */
    std::uint64_t netPerCycle() const
    {
        return cfg.drainPerKcycle > cfg.harvestPerKcycle
                   ? cfg.drainPerKcycle - cfg.harvestPerKcycle
                   : 0;
    }

    CapacitorConfig cfg;
    std::uint64_t scaled; //!< stored level, thousandths of a unit
    bool failed_ = false;
};

} // namespace energy
} // namespace terp

#endif // TERP_ENERGY_CAPACITOR_HH
