#include "energy/capacitor.hh"

#include "common/logging.hh"

namespace terp {
namespace energy {

Capacitor::Capacitor(const CapacitorConfig &config)
    : cfg(config), scaled(config.capacityUnits * kScale)
{
    TERP_ASSERT(cfg.capacityUnits > cfg.failThresholdUnits,
                "capacitor: capacity ", cfg.capacityUnits,
                " must exceed the fail threshold ",
                cfg.failThresholdUnits);
    TERP_ASSERT(cfg.harvestPerKcycle > 0,
                "capacitor: harvest rate must be positive");
}

Cycles
Capacitor::runway() const
{
    std::uint64_t net = netPerCycle();
    if (net == 0)
        return ~Cycles(0);
    std::uint64_t floor = cfg.failThresholdUnits * kScale;
    if (scaled <= floor)
        return 0;
    // Smallest c with scaled - c*net <= floor fails; runway is one
    // less than that — the last cycle that still leaves margin.
    return (scaled - floor + net - 1) / net - 1;
}

Cycles
Capacitor::drain(Cycles cycles)
{
    std::uint64_t net = netPerCycle();
    if (net == 0) {
        // Harvest keeps up with execution: charge only accumulates
        // (bounded by capacity); the device never browns out.
        std::uint64_t gain =
            (cfg.harvestPerKcycle - cfg.drainPerKcycle) * cycles;
        std::uint64_t room = cfg.capacityUnits * kScale - scaled;
        scaled += gain < room ? gain : room;
        return cycles;
    }
    std::uint64_t floor = cfg.failThresholdUnits * kScale;
    std::uint64_t have = scaled > floor ? scaled - floor : 0;
    std::uint64_t toFail = (have + net - 1) / net; // cycles to cross
    if (cycles < toFail) {
        scaled -= cycles * net;
        return cycles;
    }
    scaled -= toFail * net <= scaled ? toFail * net : scaled;
    failed_ = true;
    return toFail;
}

Cycles
Capacitor::rechargeCycles() const
{
    std::uint64_t deficit = cfg.capacityUnits * kScale - scaled;
    return (deficit + cfg.harvestPerKcycle - 1) / cfg.harvestPerKcycle;
}

void
Capacitor::recharge()
{
    scaled = cfg.capacityUnits * kScale;
    failed_ = false;
}

} // namespace energy
} // namespace terp
