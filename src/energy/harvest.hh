/**
 * @file
 * The race-to-expiry harvest harness: run a persistent workload off
 * a capacitor, power-failing at the boundary the energy runs out at,
 * recharging dark, recovering, and repeating — for thousands of
 * consecutive power cycles — with the crash-enumeration oracle's
 * invariants (atomicity ledger, probe-transaction liveness, exposure
 * hygiene, trace audit) checked at every cycle, not just the first.
 *
 * This is the regime TERP's bounded exposure windows are most
 * stressed by: every recovery re-opens a window per replayed PMO,
 * the sweeper that must close them competes with checkpointing for
 * the same joules, and any state that survives a crash()/recover()
 * pair incorrectly compounds over the run instead of hiding behind
 * a single modeled crash.
 */

#ifndef TERP_ENERGY_HARVEST_HH
#define TERP_ENERGY_HARVEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "energy/capacitor.hh"
#include "semantics/ew_tracker.hh"

namespace terp {
namespace energy {

struct HarvestOptions
{
    std::string scheme = "tt";
    /**
     * "bank": single-PMO undo-log transfers (plus an unfenced scratch
     * counter the checkpoint watermark protects). "txmix": nested
     * TxManager transactions across two PMOs, alternating undo/redo
     * kinds with occasional aborts — power failures land inside
     * commit sequences, including the redo ambiguity window.
     */
    std::string workload = "bank";
    std::uint64_t seed = 0;
    unsigned powerCycles = 1000; //!< fail/recover cycles to run
    Cycles ewTarget = usToCycles(5);
    CapacitorConfig cap;
    bool oracle = true; //!< per-cycle invariant checks
    /**
     * Trace-audit stride: audit the full timeline every N power
     * cycles (and at the end). 0 disables the audit — required for
     * soaks long enough to wrap the trace ring.
     */
    unsigned auditEvery = 0;
    std::size_t traceCapacity = 1u << 20;
    unsigned maxViolations = 8; //!< stop collecting past this many
};

struct HarvestResult
{
    unsigned powerCycles = 0;        //!< completed fail/recover cycles
    std::uint64_t committed = 0;     //!< durable transaction commits
    std::uint64_t interrupted = 0;   //!< transactions killed mid-flight
    std::uint64_t aborted = 0;       //!< txmix voluntary aborts
    std::uint64_t checkpoints = 0;   //!< watermark-triggered flushes
    std::uint64_t sweepsRun = 0;     //!< sweeper ticks that fit the budget
    std::uint64_t sweepsSkipped = 0; //!< ticks gated by the reserve
    std::uint64_t recoveredLogs = 0; //!< per-PMO log replays
    Cycles simCycles = 0;            //!< final machine clock
    Cycles offCycles = 0;            //!< total dark recharge time
    semantics::ExposureMetrics exposure; //!< full-run EW/TEW metrics
    /** Full-run blame totals per cause, across every PMO. */
    Cycles blame[semantics::numBlameCauses] = {};
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

/** Run one harvest configuration to completion. */
HarvestResult runHarvest(const HarvestOptions &opt);

} // namespace energy
} // namespace terp

#endif // TERP_ENERGY_HARVEST_HH
