#include "metrics/sampler.hh"

#include "common/logging.hh"

namespace terp {
namespace metrics {

Sampler::Sampler(Registry &reg, Cycles p)
    : registry(reg), period(p), nextAt(p)
{
    TERP_ASSERT(p > 0, "Sampler: period must be positive");
}

void
Sampler::tick(Cycles now)
{
    if (now < nextAt)
        return;
    registry.snapshot(now);
    ++n;
    // One catch-up snapshot per gap; schedule the next boundary
    // strictly after now so a burst of late ticks samples once.
    nextAt += ((now - nextAt) / period + 1) * period;
}

} // namespace metrics
} // namespace terp
