/**
 * @file
 * The metrics registry: a named collection of Counter / Gauge /
 * Summary / LogHistogram instruments with label support, cross-run
 * merging, and an embedded snapshot time-series.
 *
 * Ownership and threading model: each Runtime owns one Registry and
 * is driven by one host thread, so registration and recording are
 * unsynchronized. The benchmark harness aggregates finished runs by
 * merging whole registries into a process-global one under its own
 * lock (bench::globalMetrics()); every merge operation is
 * commutative — counters/summaries/histograms add, gauges take the
 * max — so the aggregate is identical for every --jobs=N work-steal
 * order, preserving the suite's determinism invariant.
 *
 * Naming scheme (see DESIGN.md §11): dot-separated lowercase paths,
 * `subsystem.metric_name`, with optional labels appended in
 * Prometheus style: `exposure.ew_cycles{pmo="3"}`. The labeled()
 * helper inserts a label keeping keys sorted, so a name is a
 * canonical string key. Registry-wide labels (scheme, workload)
 * apply to every instrument at export time.
 */

#ifndef TERP_METRICS_REGISTRY_HH
#define TERP_METRICS_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "metrics/metric.hh"

namespace terp {
namespace metrics {

/** What an Entry holds. */
enum class Kind
{
    Counter,
    Gauge,
    Summary,
    Histogram,
};

const char *kindName(Kind k);

/**
 * Insert `key="value"` into @p name's label set, keeping label keys
 * sorted so equal label sets always produce the same string.
 * `labeled("a.b", "pmo", "3")` -> `a.b{pmo="3"}`;
 * `labeled("a.b{pmo=\"3\"}", "scheme", "tt")` ->
 * `a.b{pmo="3",scheme="tt"}`.
 */
std::string labeled(const std::string &name, const std::string &key,
                    const std::string &value);

/** The base part of @p name (everything before '{'). */
std::string baseName(const std::string &name);

/** The parsed label set of @p name (empty if unlabeled). */
std::map<std::string, std::string> nameLabels(const std::string &name);

/**
 * Is metrics collection enabled for this process? Reads the
 * TERP_METRICS environment variable once (first call): "0", "off" or
 * "false" disable every registry the runtime would create, turning
 * all instrument pointers into nulls on the hot paths.
 */
bool enabledByEnv();

/** A single-writer metrics registry. */
class Registry
{
  public:
    /** One named instrument. Exactly the member for `kind` is live. */
    struct Entry
    {
        Kind kind = Kind::Counter;
        Counter counter;
        Gauge gauge;
        Summary summary;
        std::unique_ptr<LogHistogram> hist; //!< only for Histogram
    };

    /** One snapshot row of the embedded time-series. */
    struct SeriesRow
    {
        Cycles at = 0;
        /** (name, value) of every counter/gauge at the instant. */
        std::vector<std::pair<std::string, double>> values;
    };

    Registry() = default;

    // ---- registration (get-or-create; panics on a kind clash) ------

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Summary &summary(const std::string &name);
    LogHistogram &
    histogram(const std::string &name,
              unsigned sub_bits = LogHistogram::defaultSubBits);

    // ---- lookup (null when absent or of another kind) ---------------

    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Summary *findSummary(const std::string &name) const;
    const LogHistogram *findHistogram(const std::string &name) const;

    /** All entries, ascending by name (deterministic export order). */
    const std::map<std::string, Entry> &entries() const { return map; }

    std::size_t size() const { return map.size(); }

    // ---- registry-wide labels ---------------------------------------

    void setLabel(const std::string &key, const std::string &value);
    const std::map<std::string, std::string> &labels() const
    {
        return tags;
    }

    // ---- cross-run aggregation --------------------------------------

    /**
     * Fold @p other into this registry. Same-named instruments merge
     * per their type (add / max); new names are created. @p keep, if
     * given, filters source entries by name; @p inject_labels lists
     * keys of @p other's registry labels to bake into each merged
     * name (e.g. "scheme", so runs of different schemes stay
     * distinct in the aggregate). The embedded time-series is
     * per-run and never merged.
     */
    void merge(const Registry &other,
               const std::function<bool(const std::string &)> &keep =
                   nullptr,
               const std::vector<std::string> &inject_labels = {});

    // ---- snapshot time-series ---------------------------------------

    /**
     * Append one time-series row capturing every counter and gauge
     * at simulated time @p at (histograms/summaries are cumulative
     * and cheap to query at the end; the series exists to show how
     * the scalar posture evolves).
     */
    void snapshot(Cycles at);

    const std::vector<SeriesRow> &series() const { return rows; }

  private:
    Entry &getOrCreate(const std::string &name, Kind kind);
    const Entry *find(const std::string &name, Kind kind) const;

    std::map<std::string, Entry> map;
    std::map<std::string, std::string> tags;
    std::vector<SeriesRow> rows;
};

/**
 * Scoped host-wall-clock timer recording elapsed nanoseconds into a
 * LogHistogram on destruction. Pass null to make it a no-op (the
 * disabled-metrics mode). Host time never feeds simulated state, so
 * profiling hooks cannot perturb simulation results.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(LogHistogram *h);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    LogHistogram *hist;
    std::uint64_t t0 = 0; //!< steady_clock ns at construction
};

} // namespace metrics
} // namespace terp

#endif // TERP_METRICS_REGISTRY_HH
