#include "metrics/registry.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace terp {
namespace metrics {

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Summary: return "summary";
      case Kind::Histogram: return "histogram";
      default: return "?";
    }
}

namespace {

/**
 * Escaping for label values inside serialized metric names: the
 * same scheme the Prometheus exposition format uses for quoted
 * strings (backslash, double quote, newline). Values come from PMO
 * / tenant names, which callers control — a hostile value must not
 * break the name's {k="v",...} structure.
 */
std::string
labelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

std::string
labeled(const std::string &name, const std::string &key,
        const std::string &value)
{
    std::map<std::string, std::string> ls = nameLabels(name);
    ls[key] = value;
    std::string out = baseName(name) + "{";
    bool first = true;
    for (const auto &[k, v] : ls) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + labelEscape(v) + "\"";
    }
    out += "}";
    return out;
}

std::string
baseName(const std::string &name)
{
    std::size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

std::map<std::string, std::string>
nameLabels(const std::string &name)
{
    std::map<std::string, std::string> ls;
    std::size_t brace = name.find('{');
    if (brace == std::string::npos)
        return ls;
    std::size_t i = brace + 1;
    while (i < name.size() && name[i] != '}') {
        std::size_t eq = name.find('=', i);
        TERP_ASSERT(eq != std::string::npos && eq + 1 < name.size() &&
                        name[eq + 1] == '"',
                    "malformed metric labels: ", name);
        std::string key = name.substr(i, eq - i);
        // Undo labelEscape: the closing quote is the first
        // *unescaped* double quote.
        std::string val;
        std::size_t j = eq + 2;
        for (; j < name.size() && name[j] != '"'; ++j) {
            if (name[j] == '\\' && j + 1 < name.size()) {
                char n = name[++j];
                val += n == 'n' ? '\n' : n;
            } else {
                val += name[j];
            }
        }
        TERP_ASSERT(j < name.size(),
                    "malformed metric labels: ", name);
        ls[key] = val;
        i = j + 1;
        if (i < name.size() && name[i] == ',')
            ++i;
    }
    return ls;
}

bool
enabledByEnv()
{
    static const bool enabled = [] {
        const char *v = std::getenv("TERP_METRICS");
        if (!v)
            return true;
        return std::strcmp(v, "0") != 0 &&
               std::strcmp(v, "off") != 0 &&
               std::strcmp(v, "false") != 0;
    }();
    return enabled;
}

Registry::Entry &
Registry::getOrCreate(const std::string &name, Kind kind)
{
    auto [it, inserted] = map.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
    } else {
        TERP_ASSERT(it->second.kind == kind, "metric '", name,
                    "' registered as ", kindName(it->second.kind),
                    ", requested as ", kindName(kind));
    }
    return it->second;
}

const Registry::Entry *
Registry::find(const std::string &name, Kind kind) const
{
    auto it = map.find(name);
    if (it == map.end() || it->second.kind != kind)
        return nullptr;
    return &it->second;
}

Counter &
Registry::counter(const std::string &name)
{
    return getOrCreate(name, Kind::Counter).counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    return getOrCreate(name, Kind::Gauge).gauge;
}

Summary &
Registry::summary(const std::string &name)
{
    return getOrCreate(name, Kind::Summary).summary;
}

LogHistogram &
Registry::histogram(const std::string &name, unsigned sub_bits)
{
    Entry &e = getOrCreate(name, Kind::Histogram);
    if (!e.hist)
        e.hist = std::make_unique<LogHistogram>(sub_bits);
    return *e.hist;
}

const Counter *
Registry::findCounter(const std::string &name) const
{
    const Entry *e = find(name, Kind::Counter);
    return e ? &e->counter : nullptr;
}

const Gauge *
Registry::findGauge(const std::string &name) const
{
    const Entry *e = find(name, Kind::Gauge);
    return e ? &e->gauge : nullptr;
}

const Summary *
Registry::findSummary(const std::string &name) const
{
    const Entry *e = find(name, Kind::Summary);
    return e ? &e->summary : nullptr;
}

const LogHistogram *
Registry::findHistogram(const std::string &name) const
{
    const Entry *e = find(name, Kind::Histogram);
    return e && e->hist ? e->hist.get() : nullptr;
}

void
Registry::setLabel(const std::string &key, const std::string &value)
{
    tags[key] = value;
}

void
Registry::merge(const Registry &other,
                const std::function<bool(const std::string &)> &keep,
                const std::vector<std::string> &inject_labels)
{
    for (const auto &[name, e] : other.map) {
        if (keep && !keep(name))
            continue;
        std::string dst = name;
        for (const std::string &key : inject_labels) {
            auto it = other.tags.find(key);
            if (it != other.tags.end())
                dst = labeled(dst, key, it->second);
        }
        switch (e.kind) {
          case Kind::Counter:
            counter(dst).merge(e.counter);
            break;
          case Kind::Gauge:
            gauge(dst).merge(e.gauge);
            break;
          case Kind::Summary:
            summary(dst).merge(e.summary);
            break;
          case Kind::Histogram:
            if (e.hist)
                histogram(dst, e.hist->subBucketBits())
                    .merge(*e.hist);
            break;
        }
    }
}

void
Registry::snapshot(Cycles at)
{
    SeriesRow row;
    row.at = at;
    for (const auto &[name, e] : map) {
        if (e.kind == Kind::Counter) {
            row.values.emplace_back(
                name, static_cast<double>(e.counter.value()));
        } else if (e.kind == Kind::Gauge) {
            row.values.emplace_back(name, e.gauge.value());
        }
    }
    rows.push_back(std::move(row));
}

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ScopedTimer::ScopedTimer(LogHistogram *h) : hist(h)
{
    if (hist)
        t0 = steadyNowNs();
}

ScopedTimer::~ScopedTimer()
{
    if (hist) {
        std::uint64_t t1 = steadyNowNs();
        hist->record(t1 > t0 ? t1 - t0 : 0);
    }
}

} // namespace metrics
} // namespace terp
