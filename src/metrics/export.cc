#include "metrics/export.hh"

#include <cstdio>
#include <sstream>

namespace terp {
namespace metrics {

namespace {

/** JSON string escaping (names are tame, but be correct anyway). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** The histogram quantiles every exporter and report agrees on. */
constexpr double kQuantiles[] = {0.5, 0.9, 0.99};
constexpr const char *kQuantileKeys[] = {"p50", "p90", "p99"};

void
emitSection(std::ostringstream &os, const std::string &ind,
            const char *key, const std::vector<std::string> &items,
            bool &first_section)
{
    if (items.empty())
        return;
    if (!first_section)
        os << ",\n";
    first_section = false;
    os << ind << "  \"" << key << "\": {\n";
    for (std::size_t i = 0; i < items.size(); ++i) {
        os << ind << "    " << items[i]
           << (i + 1 < items.size() ? "," : "") << "\n";
    }
    os << ind << "  }";
}

} // namespace

std::string
toJson(const Registry &reg, const std::string &indent)
{
    std::ostringstream os;
    const std::string &ind = indent;
    os << "{\n";
    bool firstSection = true;

    if (!reg.labels().empty()) {
        std::vector<std::string> items;
        for (const auto &[k, v] : reg.labels()) {
            items.push_back("\"" + jsonEscape(k) + "\": \"" +
                            jsonEscape(v) + "\"");
        }
        emitSection(os, ind, "labels", items, firstSection);
    }

    std::vector<std::string> counters, gauges, summaries, histograms;
    for (const auto &[name, e] : reg.entries()) {
        std::string key = "\"" + jsonEscape(name) + "\": ";
        switch (e.kind) {
          case Kind::Counter:
            counters.push_back(key +
                               std::to_string(e.counter.value()));
            break;
          case Kind::Gauge:
            gauges.push_back(key + "{\"value\": " +
                             fmtDouble(e.gauge.value()) +
                             ", \"hwm\": " +
                             fmtDouble(e.gauge.hwm()) + "}");
            break;
          case Kind::Summary: {
            const Summary &s = e.summary;
            summaries.push_back(
                key + "{\"count\": " + std::to_string(s.count()) +
                ", \"sum\": " + std::to_string(s.sum()) +
                ", \"min\": " + std::to_string(s.min()) +
                ", \"max\": " + std::to_string(s.max()) +
                ", \"mean\": " + fmtDouble(s.mean()) + "}");
            break;
          }
          case Kind::Histogram: {
            if (!e.hist)
                break;
            const LogHistogram &h = *e.hist;
            std::string v =
                key + "{\"count\": " + std::to_string(h.count()) +
                ", \"sum\": " + std::to_string(h.sum()) +
                ", \"min\": " + std::to_string(h.min()) +
                ", \"max\": " + std::to_string(h.max()) +
                ", \"mean\": " + fmtDouble(h.mean());
            for (std::size_t q = 0; q < 3; ++q) {
                v += std::string(", \"") + kQuantileKeys[q] +
                     "\": " + std::to_string(h.quantile(kQuantiles[q]));
            }
            v += "}";
            histograms.push_back(v);
            break;
          }
        }
    }
    emitSection(os, ind, "counters", counters, firstSection);
    emitSection(os, ind, "gauges", gauges, firstSection);
    emitSection(os, ind, "summaries", summaries, firstSection);
    emitSection(os, ind, "histograms", histograms, firstSection);

    if (!reg.series().empty()) {
        if (!firstSection)
            os << ",\n";
        firstSection = false;
        os << ind << "  \"series\": [\n";
        const auto &rows = reg.series();
        for (std::size_t i = 0; i < rows.size(); ++i) {
            os << ind << "    {\"at\": " << rows[i].at
               << ", \"values\": {";
            for (std::size_t j = 0; j < rows[i].values.size(); ++j) {
                const auto &[n, v] = rows[i].values[j];
                os << (j ? ", " : "") << "\"" << jsonEscape(n)
                   << "\": " << fmtDouble(v);
            }
            os << "}}" << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << ind << "  ]";
    }

    os << "\n" << ind << "}";
    return os.str();
}

namespace {

/** `exposure.ew_cycles{pmo="all"}` -> `terp_exposure_ew_cycles`. */
std::string
promName(const std::string &name)
{
    std::string out = "terp_";
    for (char c : baseName(name)) {
        out += (c == '.' || c == '-') ? '_' : c;
    }
    return out;
}

/**
 * Label-value escaping per the Prometheus exposition format:
 * backslash, double quote and newline must be escaped inside quoted
 * label values. Tenant labels come from PMO names, which callers
 * control — a hostile name must not corrupt the exposition.
 */
std::string
promEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Render the merged label set, optionally with one extra label. */
std::string
promLabels(const Registry &reg, const std::string &name,
           const std::string &extra_key = "",
           const std::string &extra_val = "")
{
    std::map<std::string, std::string> ls = reg.labels();
    for (const auto &[k, v] : nameLabels(name))
        ls[k] = v;
    if (!extra_key.empty())
        ls[extra_key] = extra_val;
    if (ls.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : ls) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + promEscape(v) + "\"";
    }
    return out + "}";
}

} // namespace

std::string
toPrometheus(const Registry &reg)
{
    std::ostringstream os;
    // One # TYPE line per base name, the first time it appears.
    std::map<std::string, bool> typed;

    auto typeLine = [&](const std::string &name, const char *type) {
        std::string pn = promName(name);
        if (!typed[pn]) {
            typed[pn] = true;
            os << "# TYPE " << pn << " " << type << "\n";
        }
        return pn;
    };

    for (const auto &[name, e] : reg.entries()) {
        switch (e.kind) {
          case Kind::Counter: {
            std::string pn = typeLine(name, "counter");
            os << pn << promLabels(reg, name) << " "
               << e.counter.value() << "\n";
            break;
          }
          case Kind::Gauge: {
            std::string pn = typeLine(name, "gauge");
            os << pn << promLabels(reg, name) << " "
               << fmtDouble(e.gauge.value()) << "\n";
            os << pn << "_hwm" << promLabels(reg, name) << " "
               << fmtDouble(e.gauge.hwm()) << "\n";
            break;
          }
          case Kind::Summary: {
            std::string pn = typeLine(name, "summary");
            const Summary &s = e.summary;
            std::string ls = promLabels(reg, name);
            os << pn << "_count" << ls << " " << s.count() << "\n";
            os << pn << "_sum" << ls << " " << s.sum() << "\n";
            os << pn << "_min" << ls << " " << s.min() << "\n";
            os << pn << "_max" << ls << " " << s.max() << "\n";
            break;
          }
          case Kind::Histogram: {
            if (!e.hist)
                break;
            std::string pn = typeLine(name, "summary");
            const LogHistogram &h = *e.hist;
            std::string ls = promLabels(reg, name);
            for (std::size_t q = 0; q < 3; ++q) {
                os << pn
                   << promLabels(reg, name, "quantile",
                                 fmtDouble(kQuantiles[q]))
                   << " " << h.quantile(kQuantiles[q]) << "\n";
            }
            os << pn << "_count" << ls << " " << h.count() << "\n";
            os << pn << "_sum" << ls << " " << h.sum() << "\n";
            os << pn << "_max" << ls << " " << h.max() << "\n";
            break;
          }
        }
    }
    return os.str();
}

} // namespace metrics
} // namespace terp
