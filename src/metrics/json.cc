#include "metrics/json.hh"

#include <cctype>
#include <cstdlib>

namespace terp {
namespace metrics {

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

std::uint64_t
JsonValue::asU64() const
{
    if (type != Type::Number)
        return 0;
    // Prefer the raw text: a 64-bit count round-trips exactly where
    // the double may have lost low bits.
    if (!raw.empty() && raw.find_first_of(".eE") == std::string::npos)
        return std::strtoull(raw.c_str(), nullptr, 10);
    return static_cast<std::uint64_t>(number);
}

namespace {

/** Recursive-descent parser over a string + cursor. */
struct Parser
{
    const std::string &s;
    std::size_t i = 0;
    std::string err;

    explicit Parser(const std::string &text) : s(text) {}

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(i);
        return false;
    }

    void
    skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                s[i] == '\r'))
            ++i;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (i >= s.size() || s[i] != c)
            return fail(std::string("expected '") + c + "'");
        ++i;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (i >= s.size() || s[i] != '"')
            return fail("expected string");
        ++i;
        out.clear();
        while (i < s.size() && s[i] != '"') {
            char c = s[i++];
            if (c == '\\') {
                if (i >= s.size())
                    return fail("bad escape");
                char e = s[i++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u':
                    // The repo's own exports never emit \u; accept
                    // and keep the escape verbatim.
                    out += "\\u";
                    break;
                  default: return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        if (i >= s.size())
            return fail("unterminated string");
        ++i; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &v)
    {
        skipWs();
        if (i >= s.size())
            return fail("unexpected end of input");
        char c = s[i];
        if (c == '{') {
            ++i;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (i < s.size() && s[i] == '}') {
                ++i;
                return true;
            }
            for (;;) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                v.object[key] = std::move(member);
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++i;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (i < s.size() && s[i] == ']') {
                ++i;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                v.array.push_back(std::move(item));
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            return parseString(v.str);
        }
        if (s.compare(i, 4, "true") == 0) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            i += 4;
            return true;
        }
        if (s.compare(i, 5, "false") == 0) {
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            i += 5;
            return true;
        }
        if (s.compare(i, 4, "null") == 0) {
            v.type = JsonValue::Type::Null;
            i += 4;
            return true;
        }
        // Number.
        std::size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '-' || s[i] == '+'))
            ++i;
        if (i == start)
            return fail("unexpected character");
        v.type = JsonValue::Type::Number;
        v.raw = s.substr(start, i - start);
        v.number = std::strtod(v.raw.c_str(), nullptr);
        return true;
    }
};

} // namespace

std::unique_ptr<JsonValue>
parseJson(const std::string &text, std::string &error)
{
    Parser p(text);
    auto v = std::make_unique<JsonValue>();
    if (!p.parseValue(*v)) {
        error = p.err.empty() ? "parse error" : p.err;
        return nullptr;
    }
    p.skipWs();
    if (p.i != text.size()) {
        error = "trailing data at offset " + std::to_string(p.i);
        return nullptr;
    }
    error.clear();
    return v;
}

} // namespace metrics
} // namespace terp
