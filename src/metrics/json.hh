/**
 * @file
 * Minimal JSON reader for terp-stats: enough of RFC 8259 to parse
 * the documents this repo itself emits (metrics exports and
 * BENCH_terp.json). Objects keep insertion order irrelevant — keys
 * land in a sorted map — and numbers are held as double plus the
 * raw text so exact integers survive.
 */

#ifndef TERP_METRICS_JSON_HH
#define TERP_METRICS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace terp {
namespace metrics {

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;  //!< exact source text of a Number
    std::string str;  //!< a String's content
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isNumber() const { return type == Type::Number; }

    /** Object member, or null when absent / not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Number as uint64 (exact for integer source text). */
    std::uint64_t asU64() const;
};

/**
 * Parse @p text. Returns null and sets @p error on malformed input;
 * @p error is cleared on success.
 */
std::unique_ptr<JsonValue> parseJson(const std::string &text,
                                     std::string &error);

} // namespace metrics
} // namespace terp

#endif // TERP_METRICS_JSON_HH
