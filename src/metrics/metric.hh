/**
 * @file
 * Core metric value types: cheap single-writer counters and gauges,
 * the canonical count/sum/min/max summary, and a log-bucketed
 * (HDR-style) histogram with bounded-relative-error quantiles.
 *
 * These are the primitive instruments every subsystem publishes
 * through the metrics::Registry. They are deliberately unsynchronized
 * — each simulated run is driven by exactly one host thread, so the
 * hot-path cost of recording is a handful of ALU ops and one or two
 * cache lines. Cross-run aggregation (tools/terp-bench --jobs=N)
 * happens by merging whole per-run registries under the registry's
 * lock, never by sharing instruments between host threads.
 *
 * Empty-sample conventions (unit-tested, relied on by the trace
 * auditor and the exporters): with no recorded samples, min() == 0,
 * max() == 0, mean() == 0.0 and quantile(q) == 0 for every q. The
 * old ad-hoc copies of these types (trace::WindowTally, the
 * common/stats Summary) disagreed on min(); they are now aliases of
 * the types here.
 */

#ifndef TERP_METRICS_METRIC_HH
#define TERP_METRICS_METRIC_HH

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace terp {
namespace metrics {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { v += by; }
    std::uint64_t value() const { return v; }
    void reset() { v = 0; }

    /** Fold another counter in (cross-run aggregation). */
    void merge(const Counter &o) { v += o.v; }

  private:
    std::uint64_t v = 0;
};

/**
 * Point-in-time level with a high-water mark. set() tracks the
 * maximum ever set, so occupancy-style metrics keep their peak even
 * after the level drops back.
 */
class Gauge
{
  public:
    void
    set(double x)
    {
        v = x;
        if (!any || x > hi)
            hi = x;
        any = true;
    }

    double value() const { return any ? v : 0.0; }
    double hwm() const { return any ? hi : 0.0; }

    /**
     * Gauges merge by maximum (of both level and high-water mark):
     * the only cross-run combination that is independent of merge
     * order, which the deterministic terp-bench aggregation requires.
     */
    void
    merge(const Gauge &o)
    {
        if (!o.any)
            return;
        if (!any || o.v > v)
            v = o.v;
        if (!any || o.hi > hi)
            hi = o.hi;
        any = true;
    }

  private:
    double v = 0.0;
    double hi = 0.0;
    bool any = false;
};

/**
 * Running scalar summary (count / sum / min / max / mean) over
 * uint64 samples such as exposure-window lengths in cycles.
 *
 * This is the one canonical Summary: semantics::EwTracker, the
 * Section-IV differential oracle and the trace auditor's per-PMO
 * window tallies all use this type, so their cross-checks compare
 * like with like.
 */
class Summary
{
  public:
    void
    add(std::uint64_t x)
    {
        ++n;
        total += x;
        lo = x < lo ? x : lo;
        hi = x > hi ? x : hi;
    }

    std::uint64_t count() const { return n; }
    std::uint64_t sum() const { return total; }
    std::uint64_t min() const { return n ? lo : 0; }
    std::uint64_t max() const { return n ? hi : 0; }

    double
    mean() const
    {
        return n ? static_cast<double>(total) / static_cast<double>(n)
                 : 0.0;
    }

    void
    reset()
    {
        n = 0;
        total = 0;
        lo = std::numeric_limits<std::uint64_t>::max();
        hi = 0;
    }

    void
    merge(const Summary &o)
    {
        n += o.n;
        total += o.total;
        lo = o.lo < lo ? o.lo : lo;
        hi = o.hi > hi ? o.hi : hi;
    }

  private:
    std::uint64_t n = 0;
    std::uint64_t total = 0;
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
};

/**
 * Log-bucketed histogram over uint64 samples (HDR-histogram style).
 *
 * Values below 2^subBits land in exact unit-width buckets; larger
 * values share one bucket per (octave, sub-bucket) pair, where each
 * octave [2^k, 2^(k+1)) is split into 2^subBits linear sub-buckets.
 * quantile() therefore has bounded relative error 2^-subBits
 * (~3.1% at the default subBits = 5), while count/sum/min/max are
 * exact — which is what lets the metrics-derived EW/TEW summaries be
 * cross-checked cycle-for-cycle against semantics::EwTracker.
 *
 * record() costs a handful of ALU ops (bit_width + shift + add) and
 * touches one counter slot; the bucket array grows lazily to the
 * largest octave seen (~2 KiB for full 64-bit range at subBits = 5).
 */
class LogHistogram
{
  public:
    /** Default sub-bucket resolution: 32 per octave, <=3.125% error. */
    static constexpr unsigned defaultSubBits = 5;

    explicit LogHistogram(unsigned sub_bits = defaultSubBits)
        : subBits(sub_bits), subCount(1u << sub_bits)
    {
        TERP_ASSERT(sub_bits >= 1 && sub_bits <= 16,
                    "LogHistogram: sub_bits out of range");
    }

    void
    record(std::uint64_t x)
    {
        const std::size_t i = bucketIndex(x);
        if (i >= counts.size())
            counts.resize(i + 1, 0);
        ++counts[i];
        stat.add(x);
    }

    std::uint64_t count() const { return stat.count(); }
    std::uint64_t sum() const { return stat.sum(); }
    std::uint64_t min() const { return stat.min(); }
    std::uint64_t max() const { return stat.max(); }
    double mean() const { return stat.mean(); }
    const Summary &summary() const { return stat; }
    unsigned subBucketBits() const { return subBits; }

    /**
     * Value at quantile @p q in [0, 1]: the smallest recorded-bucket
     * upper bound whose cumulative count reaches ceil(q * n), clamped
     * to the exact [min, max] — so quantile(0) >= min() and
     * quantile(1) == max() exactly. Returns 0 on an empty histogram.
     */
    std::uint64_t
    quantile(double q) const
    {
        TERP_ASSERT(q >= 0.0 && q <= 1.0,
                    "LogHistogram: quantile out of [0,1]");
        const std::uint64_t n = stat.count();
        if (n == 0)
            return 0;
        std::uint64_t rank = static_cast<std::uint64_t>(
            q * static_cast<double>(n) + 0.9999999);
        if (rank < 1)
            rank = 1;
        if (rank > n)
            rank = n;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            seen += counts[i];
            if (seen >= rank) {
                std::uint64_t v = bucketUpperBound(i);
                if (v > stat.max())
                    v = stat.max();
                if (v < stat.min())
                    v = stat.min();
                return v;
            }
        }
        return stat.max(); // unreachable: seen sums to n
    }

    void
    reset()
    {
        counts.clear();
        stat.reset();
    }

    /** Fold another histogram in (must share sub-bucket resolution). */
    void
    merge(const LogHistogram &o)
    {
        TERP_ASSERT(o.subBits == subBits,
                    "LogHistogram: merge with different resolution");
        if (o.counts.size() > counts.size())
            counts.resize(o.counts.size(), 0);
        for (std::size_t i = 0; i < o.counts.size(); ++i)
            counts[i] += o.counts[i];
        stat.merge(o.stat);
    }

  private:
    std::size_t
    bucketIndex(std::uint64_t x) const
    {
        if (x < subCount)
            return static_cast<std::size_t>(x);
        // 2^octave <= x < 2^(octave+1), octave >= subBits.
        const unsigned octave = std::bit_width(x) - 1;
        const unsigned shift = octave - subBits;
        // (x >> shift) is in [subCount, 2*subCount).
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(shift) << subBits) +
            (x >> shift));
    }

    /** Largest value mapping to bucket @p i. */
    std::uint64_t
    bucketUpperBound(std::size_t i) const
    {
        if (i < subCount)
            return static_cast<std::uint64_t>(i);
        // bucketIndex packs i = shift*subCount + (x >> shift) with
        // (x >> shift) in [subCount, 2*subCount), so i / subCount
        // overshoots the shift by exactly one.
        const unsigned shift = static_cast<unsigned>(i >> subBits) - 1;
        const std::uint64_t sub = subCount + (i & (subCount - 1));
        return ((sub + 1) << shift) - 1;
    }

    unsigned subBits;
    std::uint64_t subCount;
    std::vector<std::uint64_t> counts;
    Summary stat;
};

} // namespace metrics
} // namespace terp

#endif // TERP_METRICS_METRIC_HH
