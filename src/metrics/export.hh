/**
 * @file
 * Registry exporters: a flat JSON document (the format terp-stats
 * reads back and terp-bench embeds as BENCH_terp.json's "metrics"
 * section) and the Prometheus text exposition format.
 */

#ifndef TERP_METRICS_EXPORT_HH
#define TERP_METRICS_EXPORT_HH

#include <string>

#include "metrics/registry.hh"

namespace terp {
namespace metrics {

/**
 * JSON export. Layout:
 * {
 *   "labels": {"scheme": "tt", ...},
 *   "counters": {"runtime.attach_syscalls": 12, ...},
 *   "gauges": {"cb.occupancy": {"value": 2, "hwm": 7}, ...},
 *   "summaries": {name: {"count","sum","min","max","mean"}, ...},
 *   "histograms": {name: {"count","sum","min","max","mean",
 *                         "p50","p90","p99"}, ...},
 *   "series": [{"at": 12345, "values": {name: v, ...}}, ...]
 * }
 * Keys ascend; integers print exactly; doubles use %.17g (lossless
 * round-trip). @p indent prefixes every line (so the document can be
 * embedded inside another JSON object at the right depth).
 */
std::string toJson(const Registry &reg,
                   const std::string &indent = "");

/**
 * Prometheus text format. Metric names become
 * `terp_<base with . -> _>`; per-metric labels and registry labels
 * are merged (per-metric wins on a key clash). Histograms export
 * quantile series plus _count/_sum; gauges export the value and a
 * `_hwm` companion; summaries export _count/_sum/_min/_max.
 */
std::string toPrometheus(const Registry &reg);

} // namespace metrics
} // namespace terp

#endif // TERP_METRICS_EXPORT_HH
