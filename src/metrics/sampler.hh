/**
 * @file
 * Cycle-driven snapshot sampler: turns the sweeper's periodic tick
 * into a time-series of registry snapshots. The runtime calls
 * tick(now) from its onSweep hook; every @p period simulated cycles
 * the sampler appends one Registry::SeriesRow, giving terp-stats a
 * view of how the security posture (attach counts, CB occupancy,
 * silent fractions) evolved over the run. Sampling reads host-side
 * instruments only and never charges simulated cycles.
 */

#ifndef TERP_METRICS_SAMPLER_HH
#define TERP_METRICS_SAMPLER_HH

#include "common/units.hh"
#include "metrics/registry.hh"

namespace terp {
namespace metrics {

/** Periodic snapshotter over one registry. */
class Sampler
{
  public:
    /** @param period Simulated cycles between snapshots (> 0). */
    Sampler(Registry &reg, Cycles period);

    /**
     * Called at every sweeper tick. Samples once per elapsed period;
     * after a long gap it takes a single catch-up snapshot rather
     * than backfilling (intermediate instants are unrecoverable).
     */
    void tick(Cycles now);

    /** Snapshots taken so far. */
    std::size_t samples() const { return n; }

  private:
    Registry &registry;
    Cycles period;
    Cycles nextAt;
    std::size_t n = 0;
};

} // namespace metrics
} // namespace terp

#endif // TERP_METRICS_SAMPLER_HH
