/**
 * @file
 * Persistent pool allocator: pmalloc()/pfree() over the byte range of
 * one PMO (Table I of the paper). First-fit free list with
 * coalescing; all metadata is host-side for simplicity, as the paper
 * never measures allocator persistence itself.
 */

#ifndef TERP_PM_PALLOC_HH
#define TERP_PM_PALLOC_HH

#include <cstdint>
#include <map>

#include "pm/oid.hh"

namespace terp {
namespace pm {

class Pmo;

/** First-fit allocator over a single PMO's offset space. */
class PoolAllocator
{
  public:
    /**
     * @param pmo_id    Pool id used in returned ObjectIDs.
     * @param pool_size Bytes available (offsets [reserve, pool_size)).
     * @param reserve   Bytes at offset 0 kept for the root object.
     */
    PoolAllocator(PmoId pmo_id, std::uint64_t pool_size,
                  std::uint64_t reserve = 64);

    /**
     * Allocate @p size bytes (16-byte aligned).
     * @return ObjectID of the first byte, or nullOid if exhausted.
     */
    Oid pmalloc(std::uint64_t size);

    /** Free a block previously returned by pmalloc. */
    void pfree(Oid oid);

    /**
     * Permanently remove offsets below @p up_to from the free space,
     * reserving them for fixed data-structure layout (root objects,
     * bucket arrays, tables). Must be called before any pmalloc.
     */
    void reservePrefix(std::uint64_t up_to);

    /** Size of the live block at @p oid (0 if not live). */
    std::uint64_t blockSize(Oid oid) const;

    std::uint64_t liveBytes() const { return live; }
    std::uint64_t liveBlocks() const
    {
        return static_cast<std::uint64_t>(allocated.size());
    }
    std::uint64_t allocCount() const { return nAllocs; }
    std::uint64_t freeCount() const { return nFrees; }

  private:
    PmoId pool;
    std::uint64_t capacity;
    std::map<std::uint64_t, std::uint64_t> freeList;  //!< offset -> len
    std::map<std::uint64_t, std::uint64_t> allocated; //!< offset -> len
    std::uint64_t live = 0;
    std::uint64_t nAllocs = 0;
    std::uint64_t nFrees = 0;

    static std::uint64_t align(std::uint64_t v) { return (v + 15) & ~15ULL; }
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_PALLOC_HH
