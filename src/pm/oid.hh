/**
 * @file
 * Relocatable persistent pointers (ObjectIDs).
 *
 * Following PMDK-style pools (Table I of the paper), every pointer
 * stored inside a PMO is a 64-bit ObjectID consisting of a pool id
 * and an offset within that pool, so PMOs can be attached at a
 * different (randomized) virtual address on every attach.
 */

#ifndef TERP_PM_OID_HH
#define TERP_PM_OID_HH

#include <cstdint>
#include <functional>

namespace terp {
namespace pm {

/** Identifier of a PMO / pool. 10 bits in the paper's hardware. */
using PmoId = std::uint32_t;

/** Sentinel for "no PMO". */
constexpr PmoId invalidPmoId = 0xffffffffu;

/**
 * A relocatable persistent pointer: pool id (16 bits) + offset
 * (48 bits). ObjectID 0 (pool 0, offset 0) is reserved as null.
 */
struct Oid
{
    std::uint64_t raw = 0;

    Oid() = default;

    Oid(PmoId pool, std::uint64_t offset)
        : raw((static_cast<std::uint64_t>(pool) << 48) |
              (offset & offsetMask))
    {
    }

    static constexpr std::uint64_t offsetMask = (1ULL << 48) - 1;

    /** Reconstruct from a raw 64-bit pointer value. */
    static Oid
    fromRaw(std::uint64_t raw_value)
    {
        Oid o;
        o.raw = raw_value;
        return o;
    }

    PmoId pool() const { return static_cast<PmoId>(raw >> 48); }
    std::uint64_t offset() const { return raw & offsetMask; }

    bool isNull() const { return raw == 0; }

    /** Pointer arithmetic stays within the same pool. */
    Oid
    plus(std::uint64_t delta) const
    {
        return Oid(pool(), offset() + delta);
    }

    bool operator==(const Oid &o) const { return raw == o.raw; }
    bool operator!=(const Oid &o) const { return raw != o.raw; }
};

/** Null ObjectID constant. */
inline const Oid nullOid{};

} // namespace pm
} // namespace terp

template <>
struct std::hash<terp::pm::Oid>
{
    std::size_t
    operator()(const terp::pm::Oid &o) const noexcept
    {
        return std::hash<std::uint64_t>{}(o.raw);
    }
};

#endif // TERP_PM_OID_HH
