#include "pm/persist.hh"

#include "common/logging.hh"

namespace terp {
namespace pm {

// ------------------------------------------------- PersistController

void
PersistController::store(Oid oid, std::uint64_t value)
{
    vol.poke(oid.raw, value);
    dirty[lineKeyOf(oid.raw)][oid.raw] = value;
}

std::uint64_t
PersistController::load(Oid oid) const
{
    return vol.peek(oid.raw);
}

std::uint64_t
PersistController::persistedLoad(Oid oid) const
{
    return dur.peek(oid.raw);
}

void
PersistController::clwb(sim::ThreadContext &tc, Oid oid)
{
    tc.work(clwbCost);
    ++nClwb;
    auto it = dirty.find(lineKeyOf(oid.raw));
    if (it == dirty.end())
        return; // line already clean
    auto &dst = pending[it->first];
    for (const auto &[addr, val] : it->second)
        dst[addr] = val;
    dirty.erase(it);
}

void
PersistController::sfence(sim::ThreadContext &tc)
{
    ++nFence;
    tc.work(drainCostPerLine *
            static_cast<Cycles>(pending.size()));
    for (const auto &[line, words] : pending) {
        (void)line;
        for (const auto &[addr, val] : words)
            dur.poke(addr, val);
    }
    pending.clear();
}

void
PersistController::persistentStore(sim::ThreadContext &tc, Oid oid,
                                   std::uint64_t value)
{
    store(oid, value);
    clwb(tc, oid);
}

void
PersistController::crash()
{
    // Unflushed and unfenced updates are lost with power.
    dirty.clear();
    pending.clear();
    vol = dur;
}

// --------------------------------------------------------- UndoLog

// Log layout: header word 0 = number of valid entries (0 = no
// transaction in flight); entries are (address raw, old value)
// pairs. Every log update is made durable before the corresponding
// data update, and the header is cleared (durably) only after the
// data is durable — the textbook undo protocol.

UndoLog::UndoLog(PersistController &pc, PmoId pmo_,
                 std::uint64_t log_off)
    : ctl(pc), pmo(pmo_), logOff(log_off)
{
}

void
UndoLog::begin(sim::ThreadContext &tc)
{
    TERP_ASSERT(!active, "UndoLog: nested transaction");
    active = true;
    entries = 0;
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
}

void
UndoLog::write(sim::ThreadContext &tc, Oid oid, std::uint64_t value)
{
    TERP_ASSERT(active, "UndoLog: write outside a transaction");
    // 1. Persist the undo record.
    ctl.persistentStore(tc, entryOid(entries, 0), oid.raw);
    ctl.persistentStore(tc, entryOid(entries, 1), ctl.load(oid));
    ctl.sfence(tc);
    // 2. Publish the record durably before touching the data.
    ++entries;
    ctl.persistentStore(tc, headerOid(), entries);
    ctl.sfence(tc);
    // 3. Now the data update may proceed (durable at commit).
    ctl.store(oid, value);
}

void
UndoLog::commit(sim::ThreadContext &tc)
{
    TERP_ASSERT(active, "UndoLog: commit outside a transaction");
    // Make the transaction's data updates durable: the write-set is
    // exactly what the log recorded.
    for (std::uint64_t i = 0; i < entries; ++i) {
        Oid target = Oid::fromRaw(
            ctl.load(entryOid(i, 0)));
        ctl.clwb(tc, target);
    }
    ctl.sfence(tc);
    // Invalidate the log durably: the transaction is committed.
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    active = false;
    entries = 0;
}

void
UndoLog::recover(sim::ThreadContext &tc)
{
    active = false;
    entries = 0;
    std::uint64_t valid = ctl.persistedLoad(headerOid());
    if (valid == 0)
        return; // nothing in flight at the crash
    // Roll back in reverse order from the durable log.
    for (std::uint64_t i = valid; i-- > 0;) {
        Oid target =
            Oid::fromRaw(ctl.persistedLoad(entryOid(i, 0)));
        std::uint64_t old = ctl.persistedLoad(entryOid(i, 1));
        ctl.persistentStore(tc, target, old);
    }
    ctl.sfence(tc);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
}

} // namespace pm
} // namespace terp
