#include "pm/persist.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace terp {
namespace pm {

const char *
persistBoundaryName(PersistBoundary b)
{
    switch (b) {
      case PersistBoundary::Store: return "store";
      case PersistBoundary::Clwb: return "clwb";
      case PersistBoundary::Sfence: return "sfence";
      case PersistBoundary::LogHeader: return "log-header";
      default: return "?";
    }
}

namespace {

std::string
powerFailureMessage(std::uint64_t boundary, PersistBoundary kind)
{
    std::ostringstream os;
    os << "modeled power failure before boundary " << boundary
       << " (" << persistBoundaryName(kind) << ")";
    return os.str();
}

} // namespace

PowerFailure::PowerFailure(std::uint64_t boundary_,
                           PersistBoundary kind_)
    : std::runtime_error(powerFailureMessage(boundary_, kind_)),
      boundary(boundary_), kind(kind_)
{
}

// ------------------------------------------------- PersistController

void
PersistController::armFault(std::uint64_t nth)
{
    TERP_ASSERT(nth > nBoundary,
                "fault plan armed at an already-passed boundary ",
                nth, " (", nBoundary, " seen)");
    faultAt = nth;
}

void
PersistController::noteBoundary(PersistBoundary k)
{
    ++nBoundary;
    if (faultAt != 0 && nBoundary == faultAt) {
        std::uint64_t at = nBoundary;
        faultAt = 0;
        // Power fails before the boundary takes effect: whatever it
        // would have made visible/durable never happens.
        crash();
        throw PowerFailure(at, k);
    }
}

void
PersistController::store(Oid oid, std::uint64_t value)
{
    noteBoundary(PersistBoundary::Store);
    vol.poke(oid.raw, value);
    dirty[lineKeyOf(oid.raw)][oid.raw] = value;
}

std::uint64_t
PersistController::load(Oid oid) const
{
    return vol.peek(oid.raw);
}

std::uint64_t
PersistController::persistedLoad(Oid oid) const
{
    return dur.peek(oid.raw);
}

void
PersistController::clwb(sim::ThreadContext &tc, Oid oid)
{
    noteBoundary(PersistBoundary::Clwb);
    tc.work(clwbCost);
    ++nClwb;
    auto it = dirty.find(lineKeyOf(oid.raw));
    if (it == dirty.end())
        return; // line already clean
    auto &dst = pending[it->first];
    for (const auto &[addr, val] : it->second)
        dst[addr] = val;
    dirty.erase(it);
}

void
PersistController::sfence(sim::ThreadContext &tc)
{
    noteBoundary(PersistBoundary::Sfence);
    ++nFence;
    tc.work(drainCostPerLine *
            static_cast<Cycles>(pending.size()));
    for (const auto &[line, words] : pending) {
        (void)line;
        for (const auto &[addr, val] : words)
            dur.poke(addr, val);
    }
    pending.clear();
}

void
PersistController::persistentStore(sim::ThreadContext &tc, Oid oid,
                                   std::uint64_t value)
{
    store(oid, value);
    clwb(tc, oid);
}

void
PersistController::crash()
{
    // Unflushed and unfenced updates are lost with power.
    dirty.clear();
    pending.clear();
    vol = dur;
}

// --------------------------------------------------------- UndoLog

// Log layout: header word 0 = number of valid entries (0 = no
// transaction in flight); entries are (address raw, old value)
// pairs. Every log update is made durable before the corresponding
// data update, and the header is cleared (durably) only after the
// data is durable — the textbook undo protocol.

UndoLog::UndoLog(PersistController &pc, PmoId pmo_,
                 std::uint64_t log_off)
    : ctl(pc), pmo(pmo_), logOff(log_off)
{
}

void
UndoLog::begin(sim::ThreadContext &tc)
{
    TERP_ASSERT(!active, "UndoLog: nested transaction");
    active = true;
    entries = 0;
    writeSet.clear();
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
}

void
UndoLog::write(sim::ThreadContext &tc, Oid oid, std::uint64_t value)
{
    TERP_ASSERT(active, "UndoLog: write outside a transaction");
    // A location already logged this transaction keeps its original
    // undo record: the oldest value is the one rollback must
    // restore, and duplicate entries would make commit CLWB (and
    // the SFENCE drain pay for) the same line once per write.
    bool logged =
        std::find(writeSet.begin(), writeSet.end(), oid.raw) !=
        writeSet.end();
    if (!logged) {
        // 1. Persist the undo record.
        ctl.persistentStore(tc, entryOid(entries, 0), oid.raw);
        ctl.persistentStore(tc, entryOid(entries, 1), ctl.load(oid));
        ctl.sfence(tc);
        // 2. Publish the record durably before touching the data.
        ++entries;
        ++nEntriesLogged;
        nBytesLogged += 16; // (address, old value) pair
        ctl.noteBoundary(PersistBoundary::LogHeader);
        ctl.persistentStore(tc, headerOid(), entries);
        ctl.sfence(tc);
        writeSet.push_back(oid.raw);
    }
    // 3. Now the data update may proceed (durable at commit).
    ctl.store(oid, value);
}

void
UndoLog::commit(sim::ThreadContext &tc)
{
    TERP_ASSERT(active, "UndoLog: commit outside a transaction");
    // Make the transaction's data updates durable. The DRAM-side
    // write-set (not volatile re-reads of the log region) names the
    // touched locations; flush each distinct cache line once.
    std::vector<std::uint64_t> lines;
    for (std::uint64_t raw : writeSet) {
        std::uint64_t line = lineKeyOf(raw);
        if (std::find(lines.begin(), lines.end(), line) !=
            lines.end()) {
            continue;
        }
        lines.push_back(line);
        ctl.clwb(tc, Oid::fromRaw(line));
    }
    ctl.sfence(tc);
    // Invalidate the log durably: the transaction is committed.
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    active = false;
    entries = 0;
    writeSet.clear();
}

std::uint64_t
UndoLog::recover(sim::ThreadContext &tc)
{
    abortVolatile();
    std::uint64_t valid = ctl.persistedLoad(headerOid());
    if (valid == 0)
        return 0; // nothing in flight at the crash
    ++nRollbacks;
    nEntriesRolledBack += valid;
    // Roll back in reverse order from the durable log. A location
    // whose durable image already equals the logged old value needs
    // no store — the crash landed before its data update was ever
    // flushed — and re-applying it would bill the recovering thread
    // a second full persist for data that is already durable (the
    // common case for a crash between the commit fence and the
    // durable header clear: everything is durable, the whole walk
    // is no-ops).
    for (std::uint64_t i = valid; i-- > 0;) {
        Oid target =
            Oid::fromRaw(ctl.persistedLoad(entryOid(i, 0)));
        std::uint64_t old = ctl.persistedLoad(entryOid(i, 1));
        if (ctl.persistedLoad(target) == old &&
            ctl.load(target) == old) {
            continue;
        }
        ctl.persistentStore(tc, target, old);
    }
    ctl.sfence(tc);
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    return valid;
}

bool
UndoLog::recoveryPending() const
{
    return ctl.persistedLoad(headerOid()) != 0;
}

void
UndoLog::abortVolatile()
{
    active = false;
    entries = 0;
    writeSet.clear();
}

// ---------------------------------------------------- PersistDomain

UndoLog &
PersistDomain::openLog(PmoId pmo, std::uint64_t log_off)
{
    auto it = logs_.find(pmo);
    if (it != logs_.end())
        return *it->second;
    auto [pos, inserted] = logs_.emplace(
        pmo, std::make_unique<UndoLog>(ctl, pmo, log_off));
    (void)inserted;
    return *pos->second;
}

UndoLog *
PersistDomain::findLog(PmoId pmo)
{
    auto it = logs_.find(pmo);
    return it == logs_.end() ? nullptr : it->second.get();
}

void
PersistDomain::crash()
{
    ctl.crash();
    for (auto &[pmo, log] : logs_) {
        (void)pmo;
        log->abortVolatile();
    }
}

} // namespace pm
} // namespace terp
