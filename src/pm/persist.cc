#include "pm/persist.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace terp {
namespace pm {

const char *
persistBoundaryName(PersistBoundary b)
{
    switch (b) {
      case PersistBoundary::Store: return "store";
      case PersistBoundary::Clwb: return "clwb";
      case PersistBoundary::Sfence: return "sfence";
      case PersistBoundary::LogHeader: return "log-header";
      default: return "?";
    }
}

namespace {

std::string
powerFailureMessage(std::uint64_t boundary, PersistBoundary kind)
{
    std::ostringstream os;
    os << "modeled power failure before boundary " << boundary
       << " (" << persistBoundaryName(kind) << ")";
    return os.str();
}

} // namespace

PowerFailure::PowerFailure(std::uint64_t boundary_,
                           PersistBoundary kind_)
    : std::runtime_error(powerFailureMessage(boundary_, kind_)),
      boundary(boundary_), kind(kind_)
{
}

// ------------------------------------------------- PersistController

void
PersistController::armFault(std::uint64_t nth)
{
    TERP_ASSERT(nth > nBoundary,
                "fault plan armed at an already-passed boundary ",
                nth, " (", nBoundary, " seen)");
    faultAt = nth;
}

void
PersistController::noteBoundary(PersistBoundary k)
{
    ++nBoundary;
    if (faultAt != 0 && nBoundary == faultAt) {
        std::uint64_t at = nBoundary;
        faultAt = 0;
        // Power fails before the boundary takes effect: whatever it
        // would have made visible/durable never happens.
        crash();
        throw PowerFailure(at, k);
    }
}

void
PersistController::store(Oid oid, std::uint64_t value)
{
    noteBoundary(PersistBoundary::Store);
    vol.poke(oid.raw, value);
    dirty.upsert(lineKeyOf(oid.raw), oid.raw, value);
}

std::uint64_t
PersistController::load(Oid oid) const
{
    return vol.peek(oid.raw);
}

std::uint64_t
PersistController::persistedLoad(Oid oid) const
{
    return dur.peek(oid.raw);
}

void
PersistController::clwb(sim::ThreadContext &tc, Oid oid)
{
    noteBoundary(PersistBoundary::Clwb);
    tc.work(clwbCost);
    ++nClwb;
    // No-op when the line is already clean.
    dirty.moveLine(lineKeyOf(oid.raw), pending);
}

void
PersistController::sfence(sim::ThreadContext &tc)
{
    noteBoundary(PersistBoundary::Sfence);
    ++nFence;
    tc.work(drainCostPerLine *
            static_cast<Cycles>(pending.size()));
    pending.forEachWord(
        [this](std::uint64_t addr, std::uint64_t val) {
            dur.poke(addr, val);
        });
    pending.clear();
}

void
PersistController::persistentStore(sim::ThreadContext &tc, Oid oid,
                                   std::uint64_t value)
{
    store(oid, value);
    clwb(tc, oid);
}

void
PersistController::crash()
{
    // Unflushed and unfenced updates are lost with power.
    dirty.clear();
    pending.clear();
    vol = dur;
}

// --------------------------------------------------------- UndoLog

// Log layout: header word 0 = number of valid entries (0 = no
// transaction in flight); entries are (address raw, old value)
// pairs. Every log update is made durable before the corresponding
// data update, and the header is cleared (durably) only after the
// data is durable — the textbook undo protocol.

UndoLog::UndoLog(PersistController &pc, PmoId pmo_,
                 std::uint64_t log_off)
    : ctl(pc), pmo(pmo_), logOff(log_off)
{
}

void
UndoLog::begin(sim::ThreadContext &tc)
{
    TERP_ASSERT(!active, "UndoLog: nested transaction");
    active = true;
    entries = 0;
    writeSet.clear();
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
}

void
UndoLog::write(sim::ThreadContext &tc, Oid oid, std::uint64_t value)
{
    TERP_ASSERT(active, "UndoLog: write outside a transaction");
    // A location already logged this transaction keeps its original
    // undo record: the oldest value is the one rollback must
    // restore, and duplicate entries would make commit CLWB (and
    // the SFENCE drain pay for) the same line once per write.
    bool logged =
        std::find(writeSet.begin(), writeSet.end(), oid.raw) !=
        writeSet.end();
    if (!logged) {
        // 1. Persist the undo record.
        ctl.persistentStore(tc, entryOid(entries, 0), oid.raw);
        ctl.persistentStore(tc, entryOid(entries, 1), ctl.load(oid));
        ctl.sfence(tc);
        // 2. Publish the record durably before touching the data.
        ++entries;
        ++nEntriesLogged;
        nBytesLogged += 16; // (address, old value) pair
        ctl.noteBoundary(PersistBoundary::LogHeader);
        ctl.persistentStore(tc, headerOid(), entries);
        ctl.sfence(tc);
        writeSet.push_back(oid.raw);
    }
    // 3. Now the data update may proceed (durable at commit).
    ctl.store(oid, value);
}

void
UndoLog::commit(sim::ThreadContext &tc)
{
    TERP_ASSERT(active, "UndoLog: commit outside a transaction");
    // Make the transaction's data updates durable. The DRAM-side
    // write-set (not volatile re-reads of the log region) names the
    // touched locations; flush each distinct cache line once.
    std::vector<std::uint64_t> lines;
    for (std::uint64_t raw : writeSet) {
        std::uint64_t line = lineKeyOf(raw);
        if (std::find(lines.begin(), lines.end(), line) !=
            lines.end()) {
            continue;
        }
        lines.push_back(line);
        ctl.clwb(tc, Oid::fromRaw(line));
    }
    ctl.sfence(tc);
    // Invalidate the log durably: the transaction is committed.
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    active = false;
    entries = 0;
    writeSet.clear();
}

void
UndoLog::abort(sim::ThreadContext &tc)
{
    TERP_ASSERT(active, "UndoLog: abort outside a transaction");
    // Restore from the volatile image of the log, newest entry
    // first. Dedupe means each location appears once, holding the
    // value it had *before the first write* of the transaction —
    // exactly what abort must bring back. The stores are plain and
    // unconditional: the restored values equal the durable ones
    // (data write-backs only happen at commit), and skipping
    // already-equal locations would make the charge data-dependent.
    for (std::uint64_t i = entries; i-- > 0;) {
        Oid target = Oid::fromRaw(ctl.load(entryOid(i, 0)));
        ctl.store(target, ctl.load(entryOid(i, 1)));
    }
    // Durably invalidate the log: nothing in flight any more.
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    ++nAborts;
    active = false;
    entries = 0;
    writeSet.clear();
}

std::uint64_t
UndoLog::recover(sim::ThreadContext &tc)
{
    abortVolatile();
    std::uint64_t valid = ctl.persistedLoad(headerOid());
    if (valid == 0)
        return 0; // nothing in flight at the crash
    ++nRollbacks;
    nEntriesRolledBack += valid;
    // Roll back in reverse order from the durable log. A location
    // whose durable image already equals the logged old value needs
    // no store — the crash landed before its data update was ever
    // flushed — and re-applying it would bill the recovering thread
    // a second full persist for data that is already durable (the
    // common case for a crash between the commit fence and the
    // durable header clear: everything is durable, the whole walk
    // is no-ops).
    for (std::uint64_t i = valid; i-- > 0;) {
        Oid target =
            Oid::fromRaw(ctl.persistedLoad(entryOid(i, 0)));
        std::uint64_t old = ctl.persistedLoad(entryOid(i, 1));
        if (ctl.persistedLoad(target) == old &&
            ctl.load(target) == old) {
            continue;
        }
        ctl.persistentStore(tc, target, old);
    }
    ctl.sfence(tc);
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    return valid;
}

bool
UndoLog::recoveryPending() const
{
    return ctl.persistedLoad(headerOid()) != 0;
}

void
UndoLog::abortVolatile()
{
    active = false;
    entries = 0;
    writeSet.clear();
}

// ---------------------------------------------------------- RedoLog

RedoLog::RedoLog(PersistController &pc, PmoId pmo_,
                 std::uint64_t log_off)
    : ctl(pc), pmo(pmo_), logOff(log_off)
{
}

void
RedoLog::begin(sim::ThreadContext &tc)
{
    (void)tc;
    TERP_ASSERT(!active, "RedoLog: nested transaction");
    // The durable header is already 0 (construction or the last
    // retire): a crash from here simply discards the transaction.
    // No persist traffic, no charge — redo defers all durability
    // cost to commit.
    active = true;
    buf.clear();
}

void
RedoLog::write(sim::ThreadContext &tc, Oid oid, std::uint64_t value)
{
    TERP_ASSERT(active, "RedoLog: write outside a transaction");
    // One record per location: a repeated store updates the value
    // word in place (the header counts entries, and rollforward
    // applies records in order, so a stale duplicate would be
    // harmless but would waste log space and commit drain).
    for (std::uint64_t i = 0; i < buf.size(); ++i) {
        if (buf[i].first == oid.raw) {
            buf[i].second = value;
            ctl.persistentStore(tc, entryOid(i, 1), value);
            return;
        }
    }
    std::uint64_t i = buf.size();
    ctl.persistentStore(tc, entryOid(i, 0), oid.raw);
    ctl.persistentStore(tc, entryOid(i, 1), value);
    buf.emplace_back(oid.raw, value);
    ++nEntriesLogged;
    nBytesLogged += 16;
}

bool
RedoLog::lookup(Oid oid, std::uint64_t &value) const
{
    if (!active)
        return false;
    for (const auto &[raw, val] : buf) {
        if (raw == oid.raw) {
            value = val;
            return true;
        }
    }
    return false;
}

void
RedoLog::commit(sim::ThreadContext &tc)
{
    TERP_ASSERT(active, "RedoLog: commit outside a transaction");
    if (buf.empty()) {
        // Nothing written: no records to drain, nothing to apply,
        // and the durable header never left 0.
        active = false;
        return;
    }
    // 1. Drain the buffered redo records durable.
    ctl.sfence(tc);
    // 2. Durable commit record — THE durable point. A crash before
    //    this fence discards the transaction; after it, recovery
    //    rolls forward.
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), buf.size());
    ctl.sfence(tc);
    // 3. Apply in place and write back each distinct data line.
    std::vector<std::uint64_t> lines;
    for (const auto &[raw, val] : buf) {
        ctl.store(Oid::fromRaw(raw), val);
        std::uint64_t line = lineKeyOf(raw);
        if (std::find(lines.begin(), lines.end(), line) ==
            lines.end()) {
            lines.push_back(line);
        }
    }
    for (std::uint64_t line : lines)
        ctl.clwb(tc, Oid::fromRaw(line));
    ctl.sfence(tc);
    // 4. Retire the log durably.
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    active = false;
    buf.clear();
}

void
RedoLog::abort(sim::ThreadContext &tc)
{
    TERP_ASSERT(active, "RedoLog: abort outside a transaction");
    // The data image was never touched; only the log region may owe
    // the controller write-backs. One fence retires them so later
    // fences don't pay for this transaction's garbage records. The
    // rule is structural — fence iff any record was written — never
    // value-dependent.
    if (!buf.empty())
        ctl.sfence(tc);
    ++nAborts;
    active = false;
    buf.clear();
}

std::uint64_t
RedoLog::recover(sim::ThreadContext &tc)
{
    abortVolatile();
    std::uint64_t valid = ctl.persistedLoad(headerOid());
    if (valid == 0)
        return 0; // no durable commit record: nothing to apply
    ++nRollForwards;
    nEntriesApplied += valid;
    // Roll forward from the durable log, in order. Idempotent: a
    // location the torn apply already persisted is skipped (same
    // compare as UndoLog::recover — recovery may re-run after its
    // own crash).
    for (std::uint64_t i = 0; i < valid; ++i) {
        Oid target =
            Oid::fromRaw(ctl.persistedLoad(entryOid(i, 0)));
        std::uint64_t val = ctl.persistedLoad(entryOid(i, 1));
        if (ctl.persistedLoad(target) == val &&
            ctl.load(target) == val) {
            continue;
        }
        ctl.persistentStore(tc, target, val);
    }
    ctl.sfence(tc);
    ctl.noteBoundary(PersistBoundary::LogHeader);
    ctl.persistentStore(tc, headerOid(), 0);
    ctl.sfence(tc);
    return valid;
}

bool
RedoLog::recoveryPending() const
{
    return ctl.persistedLoad(headerOid()) != 0;
}

void
RedoLog::abortVolatile()
{
    active = false;
    buf.clear();
}

// ---------------------------------------------------- PersistDomain

UndoLog &
PersistDomain::openLog(PmoId pmo, std::uint64_t log_off)
{
    auto it = logs_.find(pmo);
    if (it != logs_.end())
        return *it->second;
    auto [pos, inserted] = logs_.emplace(
        pmo, std::make_unique<UndoLog>(ctl, pmo, log_off));
    (void)inserted;
    return *pos->second;
}

UndoLog *
PersistDomain::findLog(PmoId pmo)
{
    auto it = logs_.find(pmo);
    return it == logs_.end() ? nullptr : it->second.get();
}

RedoLog &
PersistDomain::openRedoLog(PmoId pmo, std::uint64_t log_off)
{
    auto it = redoLogs_.find(pmo);
    if (it != redoLogs_.end())
        return *it->second;
    auto [pos, inserted] = redoLogs_.emplace(
        pmo, std::make_unique<RedoLog>(ctl, pmo, log_off));
    (void)inserted;
    return *pos->second;
}

RedoLog *
PersistDomain::findRedoLog(PmoId pmo)
{
    auto it = redoLogs_.find(pmo);
    return it == redoLogs_.end() ? nullptr : it->second.get();
}

void
PersistDomain::crash()
{
    ctl.crash();
    for (auto &[pmo, log] : logs_) {
        (void)pmo;
        log->abortVolatile();
    }
    for (auto &[pmo, log] : redoLogs_) {
        (void)pmo;
        log->abortVolatile();
    }
}

} // namespace pm
} // namespace terp
