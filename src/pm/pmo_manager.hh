/**
 * @file
 * PMO manager: naming, creation, opening, and the randomized
 * virtual-address placement used by attach.
 *
 * Placement model: PMOs are mapped inside a 1 TB randomization arena
 * at 4 MB-aligned slots, giving 2^18 possible placements — the 18-bit
 * entropy the paper assumes for a 1 GB PMO in its security analysis
 * (Table V).
 */

#ifndef TERP_PM_PMO_MANAGER_HH
#define TERP_PM_PMO_MANAGER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "pm/oid.hh"
#include "pm/palloc.hh"
#include "pm/pmo.hh"
#include "sim/machine.hh"
#include "trace/trace_buffer.hh"

namespace terp {
namespace pm {

/** Result of mapping/randomizing: the mapping change, for shootdown. */
struct MapChange
{
    std::uint64_t oldBase = 0; //!< 0 if previously unmapped
    std::uint64_t newBase = 0; //!< 0 if now unmapped
    std::uint64_t size = 0;
};

/**
 * Creates and tracks PMOs, assigns physical NVM placement, and
 * performs the (re)randomized virtual mapping on attach.
 */
class PmoManager
{
  public:
    /** Virtual randomization arena: 1 TB starting at 16 TB. */
    static constexpr std::uint64_t arenaBase = 1ULL << 44;
    static constexpr std::uint64_t arenaSize = 1ULL << 40;
    /** Placement alignment: 4 MB slots -> 2^18 slots of entropy. */
    static constexpr std::uint64_t slotAlign = 4 * MiB;

    explicit PmoManager(std::uint64_t seed = 42);

    /** PMO_create: new PMO; the caller becomes the owner. */
    Pmo &create(const std::string &name, std::uint64_t size,
                Mode mode = Mode::ReadWrite);

    /** PMO_open: look up an existing PMO by name. */
    Pmo *open(const std::string &name, Mode mode);

    /** PMO_close: drop the name binding (PMO storage persists). */
    void close(Pmo &pmo);

    Pmo &pmo(PmoId id);
    const Pmo &pmo(PmoId id) const;
    bool exists(PmoId id) const;
    std::size_t count() const { return pmos.size(); }

    /** The allocator bound to a PMO (pmalloc/pfree). */
    PoolAllocator &allocator(PmoId id);

    /**
     * Map the PMO at a fresh random slot (the "real attach" mapping
     * step). Does not charge time; callers charge Table II costs.
     */
    MapChange mapRandomized(Pmo &pmo);

    /** Unmap (the "real detach" mapping step). */
    MapChange unmap(Pmo &pmo);

    /** Move to a new random slot while staying attached. */
    MapChange rerandomize(Pmo &pmo);

    /**
     * Process-exit cleanup: unmap every attached PMO. The PMOs and
     * their contents persist (they are persistent memory); only the
     * address-space state of the exiting process is discarded.
     */
    void resetMappings();

    /** oid_direct: translate an ObjectID to a virtual address. */
    std::uint64_t oidDirect(const Oid &oid) const;

    /**
     * Reverse translation: the attached PMO containing @p vaddr, or
     * nullptr. Used to resolve attacker-style raw-pointer accesses.
     */
    const Pmo *findByVaddr(std::uint64_t vaddr) const;

    /** Build the simulator access record for a data reference. */
    sim::MemAccess accessFor(const Oid &oid, bool write) const;

    /** Entropy bits of the placement randomization. */
    static constexpr unsigned entropyBits = 18;

    /**
     * Attach (or detach, with nullptr) an event sink. Mapping-table
     * changes — map, unmap, move — are recorded on the kernel
     * pseudo-track with the affected virtual base address.
     */
    void setTraceSink(trace::TraceSink *sink) { traceSink = sink; }

  private:
    Rng rng;
    trace::TraceSink *traceSink = nullptr;
    std::vector<std::unique_ptr<Pmo>> pmos;
    std::vector<std::unique_ptr<PoolAllocator>> allocs;
    std::map<std::string, PmoId> names;
    std::uint64_t nextPhys = 1ULL << 33; //!< NVM physical bump pointer

    std::uint64_t pickFreeSlot(std::uint64_t size);
    bool overlapsAttached(std::uint64_t base, std::uint64_t size) const;
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_PMO_MANAGER_HH
