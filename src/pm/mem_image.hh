/**
 * @file
 * Word-granularity backing store for simulated program data.
 *
 * Words are keyed by location-independent pointer values: ObjectIDs
 * for PMO data (pool id in the top 16 bits) and arena offsets for
 * DRAM data. Because the key is the ObjectID rather than the mapped
 * virtual address, PMO re-randomization is transparent to programs —
 * exactly the property relocatable PMO pointers give real TERP
 * applications. Persistence across "runs" is modeled by reusing the
 * same image in a new simulation.
 */

#ifndef TERP_PM_MEM_IMAGE_HH
#define TERP_PM_MEM_IMAGE_HH

#include <cstdint>
#include <unordered_map>

namespace terp {
namespace pm {

/** Shared word-addressed memory image. */
class MemImage
{
  public:
    /** Physical base of the simulated DRAM arena. */
    static constexpr std::uint64_t dramPhysBase = 1ULL << 42;
    /** Virtual base of the simulated DRAM arena. */
    static constexpr std::uint64_t dramVirtBase = 0x7f0000000000ULL;

    void
    poke(std::uint64_t addr, std::uint64_t value)
    {
        words[addr] = value;
    }

    std::uint64_t
    peek(std::uint64_t addr) const
    {
        auto it = words.find(addr);
        return it == words.end() ? 0 : it->second;
    }

    std::size_t wordCount() const { return words.size(); }

    /** Is this pointer value a PMO ObjectID (pool id != 0)? */
    static bool
    isPmoPointer(std::uint64_t v)
    {
        return (v >> 48) != 0;
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> words;
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_MEM_IMAGE_HH
