/**
 * @file
 * Word-granularity backing store for simulated program data.
 *
 * Words are keyed by location-independent pointer values: ObjectIDs
 * for PMO data (pool id in the top 16 bits) and arena offsets for
 * DRAM data. Because the key is the ObjectID rather than the mapped
 * virtual address, PMO re-randomization is transparent to programs —
 * exactly the property relocatable PMO pointers give real TERP
 * applications. Persistence across "runs" is modeled by reusing the
 * same image in a new simulation.
 *
 * The store is a linear-probing open-addressing table (peek/poke sit
 * directly on the interpreter's Load/Store path, where the previous
 * std::unordered_map's bucket chasing and prime rehashing showed up
 * in profiles). Slots never move between grows and values don't
 * depend on insertion order, so the substitution is observationally
 * identical.
 */

#ifndef TERP_PM_MEM_IMAGE_HH
#define TERP_PM_MEM_IMAGE_HH

#include <cstdint>
#include <vector>

namespace terp {
namespace pm {

/** Shared word-addressed memory image. */
class MemImage
{
  public:
    /** Physical base of the simulated DRAM arena. */
    static constexpr std::uint64_t dramPhysBase = 1ULL << 42;
    /** Virtual base of the simulated DRAM arena. */
    static constexpr std::uint64_t dramVirtBase = 0x7f0000000000ULL;

    // Sized so typical workload footprints need at most a couple of
    // rehashes; table geometry is host-side only (peek of an unused
    // slot is 0 at any capacity).
    MemImage() { grow(1u << 16); }

    void
    poke(std::uint64_t addr, std::uint64_t value)
    {
        std::size_t i = slotOf(addr);
        if (!used[i]) {
            if ((nUsed + 1) * 10 > cap * 7) { // keep load below 0.7
                grow(cap * 2);
                i = slotOf(addr);
            }
            used[i] = 1;
            keys[i] = addr;
            ++nUsed;
        }
        vals[i] = value;
    }

    std::uint64_t
    peek(std::uint64_t addr) const
    {
        std::size_t i = slotOf(addr);
        return used[i] ? vals[i] : 0;
    }

    std::size_t wordCount() const { return nUsed; }

    /** Is this pointer value a PMO ObjectID (pool id != 0)? */
    static bool
    isPmoPointer(std::uint64_t v)
    {
        return (v >> 48) != 0;
    }

  private:
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return x;
    }

    /** First slot holding @p addr, or the empty slot to claim. */
    std::size_t
    slotOf(std::uint64_t addr) const
    {
        std::size_t i = mix(addr) & (cap - 1);
        while (used[i] && keys[i] != addr)
            i = (i + 1) & (cap - 1);
        return i;
    }

    void
    grow(std::size_t new_cap)
    {
        std::vector<std::uint64_t> ok = std::move(keys);
        std::vector<std::uint64_t> ov = std::move(vals);
        std::vector<std::uint8_t> ou = std::move(used);
        cap = new_cap;
        keys.assign(cap, 0);
        vals.assign(cap, 0);
        used.assign(cap, 0);
        for (std::size_t i = 0; i < ok.size(); ++i) {
            if (!ou[i])
                continue;
            std::size_t j = slotOf(ok[i]);
            used[j] = 1;
            keys[j] = ok[i];
            vals[j] = ov[i];
        }
    }

    std::size_t cap = 0;
    std::size_t nUsed = 0;
    std::vector<std::uint64_t> keys;
    std::vector<std::uint64_t> vals;
    std::vector<std::uint8_t> used;
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_MEM_IMAGE_HH
