#include "pm/pmo_manager.hh"

#include "common/logging.hh"

namespace terp {
namespace pm {

PmoManager::PmoManager(std::uint64_t seed) : rng(seed)
{
    // PmoId 0 is reserved so that Oid{0,0} can act as null.
    pmos.push_back(nullptr);
    allocs.push_back(nullptr);
}

Pmo &
PmoManager::create(const std::string &name, std::uint64_t size,
                   Mode mode)
{
    TERP_ASSERT(!names.count(name), "PMO name exists: ", name);
    TERP_ASSERT(size > 0 && size <= arenaSize / 4,
                "PMO size unsupported");
    auto id = static_cast<PmoId>(pmos.size());
    std::uint64_t aligned =
        (size + pageSize - 1) / pageSize * pageSize;
    pmos.push_back(
        std::make_unique<Pmo>(id, name, aligned, mode, nextPhys));
    allocs.push_back(std::make_unique<PoolAllocator>(id, aligned));
    nextPhys += aligned;
    names[name] = id;
    return *pmos.back();
}

Pmo *
PmoManager::open(const std::string &name, Mode mode)
{
    auto it = names.find(name);
    if (it == names.end())
        return nullptr;
    Pmo &p = pmo(it->second);
    // OS permission check: the open mode must be a subset of the
    // PMO's mode.
    auto want = static_cast<unsigned>(mode);
    auto have = static_cast<unsigned>(p.mode());
    if ((want & have) != want)
        return nullptr;
    return &p;
}

void
PmoManager::close(Pmo &p)
{
    names.erase(p.name());
}

Pmo &
PmoManager::pmo(PmoId id)
{
    TERP_ASSERT(id > 0 && id < pmos.size(), "bad PmoId ", id);
    return *pmos[id];
}

const Pmo &
PmoManager::pmo(PmoId id) const
{
    TERP_ASSERT(id > 0 && id < pmos.size(), "bad PmoId ", id);
    return *pmos[id];
}

bool
PmoManager::exists(PmoId id) const
{
    return id > 0 && id < pmos.size();
}

PoolAllocator &
PmoManager::allocator(PmoId id)
{
    TERP_ASSERT(id > 0 && id < allocs.size());
    return *allocs[id];
}

bool
PmoManager::overlapsAttached(std::uint64_t base,
                             std::uint64_t size) const
{
    for (const auto &p : pmos) {
        if (!p || !p->attached())
            continue;
        std::uint64_t lo = p->vaddrBase();
        std::uint64_t hi = lo + p->size();
        if (base < hi && base + size > lo)
            return true;
    }
    return false;
}

std::uint64_t
PmoManager::pickFreeSlot(std::uint64_t size)
{
    const std::uint64_t slots = arenaSize / slotAlign;
    for (int tries = 0; tries < 1024; ++tries) {
        std::uint64_t base =
            arenaBase + rng.nextBelow(slots) * slotAlign;
        if (base + size <= arenaBase + arenaSize &&
            !overlapsAttached(base, size)) {
            return base;
        }
    }
    TERP_PANIC("randomization arena exhausted");
}

MapChange
PmoManager::mapRandomized(Pmo &p)
{
    TERP_ASSERT(!p.attached(), "mapRandomized on attached PMO");
    MapChange ch;
    ch.size = p.size();
    ch.newBase = pickFreeSlot(p.size());
    p.mapAt(ch.newBase);
    ++p.mapCount;
    if (traceSink) {
        traceSink->emitKernel(trace::EventKind::PmoMap, p.id(),
                              ch.newBase);
    }
    return ch;
}

MapChange
PmoManager::unmap(Pmo &p)
{
    TERP_ASSERT(p.attached(), "unmap on detached PMO");
    MapChange ch;
    ch.size = p.size();
    ch.oldBase = p.vaddrBase();
    p.unmap();
    if (traceSink) {
        traceSink->emitKernel(trace::EventKind::PmoUnmap, p.id(),
                              ch.oldBase);
    }
    return ch;
}

MapChange
PmoManager::rerandomize(Pmo &p)
{
    TERP_ASSERT(p.attached(), "rerandomize on detached PMO");
    MapChange ch;
    ch.size = p.size();
    ch.oldBase = p.vaddrBase();
    p.unmap();
    ch.newBase = pickFreeSlot(p.size());
    p.mapAt(ch.newBase);
    ++p.mapCount;
    if (traceSink) {
        traceSink->emitKernel(trace::EventKind::PmoRemap, p.id(),
                              ch.newBase);
    }
    return ch;
}

const Pmo *
PmoManager::findByVaddr(std::uint64_t vaddr) const
{
    for (const auto &p : pmos) {
        if (!p || !p->attached())
            continue;
        if (vaddr >= p->vaddrBase() &&
            vaddr < p->vaddrBase() + p->size()) {
            return p.get();
        }
    }
    return nullptr;
}

void
PmoManager::resetMappings()
{
    for (auto &p : pmos) {
        if (p && p->attached())
            p->unmap();
    }
}

std::uint64_t
PmoManager::oidDirect(const Oid &oid) const
{
    const Pmo &p = pmo(oid.pool());
    return p.vaddrOf(oid.offset());
}

sim::MemAccess
PmoManager::accessFor(const Oid &oid, bool write) const
{
    const Pmo &p = pmo(oid.pool());
    return sim::MemAccess{p.vaddrOf(oid.offset()),
                          p.paddrOf(oid.offset()), write,
                          sim::MemKind::Nvm};
}

} // namespace pm
} // namespace terp
