#include "pm/palloc.hh"

#include "common/logging.hh"

namespace terp {
namespace pm {

PoolAllocator::PoolAllocator(PmoId pmo_id, std::uint64_t pool_size,
                             std::uint64_t reserve)
    : pool(pmo_id), capacity(pool_size)
{
    TERP_ASSERT(pool_size > reserve);
    freeList[align(reserve)] = pool_size - align(reserve);
}

Oid
PoolAllocator::pmalloc(std::uint64_t size)
{
    if (size == 0)
        size = 1;
    size = align(size);

    for (auto it = freeList.begin(); it != freeList.end(); ++it) {
        if (it->second < size)
            continue;
        std::uint64_t off = it->first;
        std::uint64_t len = it->second;
        freeList.erase(it);
        if (len > size)
            freeList[off + size] = len - size;
        allocated[off] = size;
        live += size;
        ++nAllocs;
        return Oid(pool, off);
    }
    return nullOid; // pool exhausted
}

void
PoolAllocator::pfree(Oid oid)
{
    TERP_ASSERT(oid.pool() == pool, "pfree: wrong pool");
    auto it = allocated.find(oid.offset());
    TERP_ASSERT(it != allocated.end(), "pfree: not a live block");
    std::uint64_t off = it->first;
    std::uint64_t len = it->second;
    allocated.erase(it);
    live -= len;
    ++nFrees;

    // Insert and coalesce with neighbours.
    auto [fit, inserted] = freeList.emplace(off, len);
    TERP_ASSERT(inserted);
    // Coalesce with next.
    auto next = std::next(fit);
    if (next != freeList.end() && fit->first + fit->second == next->first) {
        fit->second += next->second;
        freeList.erase(next);
    }
    // Coalesce with previous.
    if (fit != freeList.begin()) {
        auto prev = std::prev(fit);
        if (prev->first + prev->second == fit->first) {
            prev->second += fit->second;
            freeList.erase(fit);
        }
    }
}

void
PoolAllocator::reservePrefix(std::uint64_t up_to)
{
    TERP_ASSERT(nAllocs == 0, "reservePrefix after pmalloc");
    up_to = align(up_to);
    for (auto it = freeList.begin(); it != freeList.end();) {
        std::uint64_t off = it->first;
        std::uint64_t len = it->second;
        if (off >= up_to) {
            ++it;
            continue;
        }
        it = freeList.erase(it);
        if (off + len > up_to)
            freeList[up_to] = off + len - up_to;
    }
}

std::uint64_t
PoolAllocator::blockSize(Oid oid) const
{
    auto it = allocated.find(oid.offset());
    return it == allocated.end() ? 0 : it->second;
}

} // namespace pm
} // namespace terp
