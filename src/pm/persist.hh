/**
 * @file
 * Crash-consistency substrate for PMOs.
 *
 * The PMO abstraction the paper builds on requires crash consistency
 * ("a PMO remains in a consistent state even upon software crashes
 * or system power failures", Section II). This module models the
 * x86-style persistence path — stores land in volatile caches and
 * only become durable after an explicit cache-line write-back (CLWB)
 * followed by a store fence (SFENCE) — plus an undo-log transaction
 * layer on top.
 *
 * The PersistController keeps two images: the volatile view every
 * access sees, and the persisted view that survives a crash().
 * Recovery rolls incomplete transactions back from the persisted
 * undo log.
 */

#ifndef TERP_PM_PERSIST_HH
#define TERP_PM_PERSIST_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hh"
#include "pm/mem_image.hh"
#include "pm/oid.hh"
#include "sim/thread.hh"

namespace terp {
namespace pm {

/** Cache-line key of a word address. */
inline std::uint64_t
lineKeyOf(std::uint64_t addr)
{
    return addr & ~(lineSize - 1);
}

/**
 * Models the volatile-cache / persistent-media boundary at
 * cache-line granularity.
 */
class PersistController
{
  public:
    /** Cost of one CLWB issue (cycles). */
    static constexpr Cycles clwbCost = 5;
    /** Cost per line drained by an SFENCE (NVM write bandwidth). */
    static constexpr Cycles drainCostPerLine = 100;

    /** A store: visible immediately, durable only after clwb+fence. */
    void store(Oid oid, std::uint64_t value);

    /** Read the volatile view. */
    std::uint64_t load(Oid oid) const;

    /** Read the persisted view (what a crash would preserve). */
    std::uint64_t persistedLoad(Oid oid) const;

    /** CLWB: schedule the line holding @p oid for write-back. */
    void clwb(sim::ThreadContext &tc, Oid oid);

    /** SFENCE: block until all scheduled write-backs are durable. */
    void sfence(sim::ThreadContext &tc);

    /** Convenience: store + clwb + (deferred) fence by the caller. */
    void persistentStore(sim::ThreadContext &tc, Oid oid,
                         std::uint64_t value);

    /**
     * Power failure: the volatile view is reset to the persisted
     * one; scheduled-but-unfenced write-backs are lost.
     */
    void crash();

    /** Dirty (stored, not yet written back) lines. */
    std::size_t dirtyLines() const { return dirty.size(); }
    /** Lines written back but not yet fenced durable. */
    std::size_t pendingLines() const { return pending.size(); }

    std::uint64_t clwbCount() const { return nClwb; }
    std::uint64_t fenceCount() const { return nFence; }

    MemImage &volatileImage() { return vol; }

  private:
    MemImage vol;  //!< what loads see
    MemImage dur;  //!< what survives a crash
    //! line -> words written since the last write-back of that line.
    std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>>
        dirty;
    //! write-backs issued but not yet fenced.
    std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>>
        pending;
    std::uint64_t nClwb = 0;
    std::uint64_t nFence = 0;
};

/**
 * A classic undo-log giving single-threaded transactional updates to
 * one PMO: old values are persisted to a log region before the data
 * is touched; recovery after a crash rolls back any transaction
 * whose commit record never became durable.
 */
class UndoLog
{
  public:
    /**
     * @param pc      The persistence controller.
     * @param pmo     The PMO being protected.
     * @param log_off Offset of the log region inside the PMO.
     */
    UndoLog(PersistController &pc, PmoId pmo,
            std::uint64_t log_off);

    /** Begin a transaction (must not be nested). */
    void begin(sim::ThreadContext &tc);

    /** Transactional store: logs the old value first. */
    void write(sim::ThreadContext &tc, Oid oid, std::uint64_t value);

    /** Commit: persist data, then mark the log invalid. */
    void commit(sim::ThreadContext &tc);

    /** After a crash: undo any uncommitted transaction. */
    void recover(sim::ThreadContext &tc);

    bool inTransaction() const { return active; }

  private:
    PersistController &ctl;
    PmoId pmo;
    std::uint64_t logOff;
    bool active = false;
    std::uint64_t entries = 0;

    Oid headerOid() const { return Oid(pmo, logOff); }
    Oid entryOid(std::uint64_t i, unsigned word) const
    {
        return Oid(pmo, logOff + 64 + i * 16 + word * 8);
    }
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_PERSIST_HH
