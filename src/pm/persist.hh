/**
 * @file
 * Crash-consistency substrate for PMOs.
 *
 * The PMO abstraction the paper builds on requires crash consistency
 * ("a PMO remains in a consistent state even upon software crashes
 * or system power failures", Section II). This module models the
 * x86-style persistence path — stores land in volatile caches and
 * only become durable after an explicit cache-line write-back (CLWB)
 * followed by a store fence (SFENCE) — plus an undo-log transaction
 * layer on top.
 *
 * The PersistController keeps two images: the volatile view every
 * access sees, and the persisted view that survives a crash().
 * Recovery rolls incomplete transactions back from the persisted
 * undo log.
 */

#ifndef TERP_PM_PERSIST_HH
#define TERP_PM_PERSIST_HH

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/units.hh"
#include "pm/mem_image.hh"
#include "pm/oid.hh"
#include "sim/thread.hh"

namespace terp {
namespace pm {

/** Cache-line key of a word address. */
inline std::uint64_t
lineKeyOf(std::uint64_t addr)
{
    return addr & ~(lineSize - 1);
}

/**
 * Crash-point taxonomy: the persist-boundary events a fault plan can
 * interrupt. Every durability-relevant transition of the substrate
 * is exactly one of these, so enumerating boundaries 1..N covers
 * every distinguishable crash window of a run.
 */
enum class PersistBoundary : std::uint8_t
{
    Store,     //!< a store became visible in the volatile image
    Clwb,      //!< a cache-line write-back was issued
    Sfence,    //!< a fence drained pending write-backs durable
    LogHeader, //!< an undo-log header update is about to start
};

const char *persistBoundaryName(PersistBoundary b);

/**
 * Thrown by an armed FaultPlan at its trigger boundary, after the
 * controller performed the modeled power failure (crash()). Not a
 * TERP_ASSERT/logic_error: a planned power failure is an injected
 * event, not an invariant violation.
 */
class PowerFailure : public std::runtime_error
{
  public:
    PowerFailure(std::uint64_t boundary_, PersistBoundary kind_);

    std::uint64_t boundary; //!< 1-based index of the fatal boundary
    PersistBoundary kind;   //!< what the boundary would have been
};

/**
 * Per-line word sets for the persist queues (dirty, pending),
 * replacing the nested std::map<line, std::map<addr, val>> whose
 * double red-black walk plus node allocation dominated the store
 * fast path. Layout mirrors MemImage's open addressing: a pow-2
 * hash index of line keys probed linearly, pointing into a dense
 * bucket vector iterated in insertion order. A 64-byte line holds at
 * most 8 aligned words, so each bucket keeps 8 (addr, value) slots
 * inline; unaligned word keys (more than 8 distinct addrs per line)
 * spill to a per-bucket vector that stays empty in practice.
 *
 * Observational equivalence with the nested map: size() is the
 * distinct-line count (the fence charge operand), upsert keeps one
 * slot per distinct addr (last value wins), and every effect
 * downstream of iteration — dur.poke per (addr, value), merging a
 * line into the other queue — is commutative over distinct addrs, so
 * insertion-order iteration is indistinguishable from key order.
 */
class LineTable
{
  public:
    LineTable() { index.assign(kMinCap, empty); }

    /** Distinct lines held (the SFENCE drain-charge operand). */
    std::size_t size() const { return buckets.size(); }

    /** Insert or overwrite one word of @p line. */
    void
    upsert(std::uint64_t line, std::uint64_t addr, std::uint64_t value)
    {
        Bucket &b = bucketFor(line);
        for (unsigned i = 0; i < b.n; ++i) {
            if (b.addr[i] == addr) {
                b.val[i] = value;
                return;
            }
        }
        if (b.n < kInline) {
            b.addr[b.n] = addr;
            b.val[b.n] = value;
            ++b.n;
            return;
        }
        for (auto &sp : b.spill) {
            if (sp.first == addr) {
                sp.second = value;
                return;
            }
        }
        b.spill.emplace_back(addr, value);
    }

    /**
     * Merge every word of @p line into @p dst and drop the line from
     * this table (the CLWB dirty -> pending hand-off). No-op when
     * the line is absent.
     */
    void
    moveLine(std::uint64_t line, LineTable &dst)
    {
        const std::size_t slot = findSlot(line);
        if (index[slot] == empty || index[slot] == dead)
            return;
        const std::uint32_t pos = index[slot];
        {
            Bucket &b = buckets[pos];
            for (unsigned i = 0; i < b.n; ++i)
                dst.upsert(line, b.addr[i], b.val[i]);
            for (const auto &sp : b.spill)
                dst.upsert(line, sp.first, sp.second);
        }
        // Swap-pop the bucket and repoint the moved bucket's index.
        index[slot] = dead;
        if (pos != buckets.size() - 1) {
            buckets[pos] = std::move(buckets.back());
            index[findSlot(buckets[pos].line)] = pos;
        }
        buckets.pop_back();
    }

    /** Visit every (addr, value) word, in line insertion order. */
    template <typename Fn>
    void
    forEachWord(Fn &&fn) const
    {
        for (const Bucket &b : buckets) {
            for (unsigned i = 0; i < b.n; ++i)
                fn(b.addr[i], b.val[i]);
            for (const auto &sp : b.spill)
                fn(sp.first, sp.second);
        }
    }

    void
    clear()
    {
        buckets.clear();
        index.assign(kMinCap, empty);
    }

  private:
    static constexpr unsigned kInline = 8;
    static constexpr std::size_t kMinCap = 64;
    static constexpr std::uint32_t empty = 0xffffffffu;
    static constexpr std::uint32_t dead = 0xfffffffeu;

    struct Bucket
    {
        std::uint64_t line = 0;
        std::uint8_t n = 0;
        std::uint64_t addr[kInline];
        std::uint64_t val[kInline];
        std::vector<std::pair<std::uint64_t, std::uint64_t>> spill;
    };

    /** MemImage's finalizer-style scramble of the line key. */
    static std::size_t
    mix(std::uint64_t k)
    {
        k ^= k >> 33;
        k *= 0xff51afd7ed558ccdULL;
        k ^= k >> 33;
        k *= 0xc4ceb9fe1a85ec53ULL;
        k ^= k >> 33;
        return static_cast<std::size_t>(k);
    }

    /**
     * Probe for @p line: returns the slot holding it, or the first
     * reusable (empty/dead) slot of its probe chain.
     */
    std::size_t
    findSlot(std::uint64_t line) const
    {
        const std::size_t mask = index.size() - 1;
        std::size_t slot = mix(line) & mask;
        std::size_t firstFree = index.size(); // none yet
        for (;;) {
            const std::uint32_t v = index[slot];
            if (v == empty)
                return firstFree != index.size() ? firstFree : slot;
            if (v == dead) {
                if (firstFree == index.size())
                    firstFree = slot;
            } else if (buckets[v].line == line) {
                return slot;
            }
            slot = (slot + 1) & mask;
        }
    }

    Bucket &
    bucketFor(std::uint64_t line)
    {
        std::size_t slot = findSlot(line);
        std::uint32_t v = index[slot];
        if (v != empty && v != dead)
            return buckets[v];
        // Grow when live + tombstones pass 0.7 load (rehash drops the
        // tombstones), then re-probe for the fresh slot.
        if ((used + 1) * 10 > index.size() * 7) {
            rehash(index.size() * 2);
            slot = findSlot(line);
            v = empty;
        }
        if (v == empty)
            ++used;
        Bucket b;
        b.line = line;
        buckets.push_back(std::move(b));
        index[slot] =
            static_cast<std::uint32_t>(buckets.size() - 1);
        return buckets.back();
    }

    void
    rehash(std::size_t cap)
    {
        index.assign(cap, empty);
        used = buckets.size();
        const std::size_t mask = cap - 1;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            std::size_t slot = mix(buckets[i].line) & mask;
            while (index[slot] != empty)
                slot = (slot + 1) & mask;
            index[slot] = static_cast<std::uint32_t>(i);
        }
    }

    std::vector<Bucket> buckets;       //!< dense, insertion order
    std::vector<std::uint32_t> index;  //!< open-addressed line index
    std::size_t used = 0; //!< occupied index slots incl. tombstones
};

/**
 * Models the volatile-cache / persistent-media boundary at
 * cache-line granularity.
 *
 * Fault injection: armFault(n) plants a modeled power failure at the
 * n-th persist-boundary event (1-based, counted from controller
 * construction). The fatal boundary never takes effect — the crash
 * happens *before* it — so "crash after boundary k" is the same
 * point as "crash before boundary k+1" and enumerating n = 1..B
 * (B = boundaryCount() of an uninterrupted run) covers every crash
 * window exactly once.
 */
class PersistController
{
  public:
    /** Cost of one CLWB issue (cycles). */
    static constexpr Cycles clwbCost = 5;
    /** Cost per line drained by an SFENCE (NVM write bandwidth). */
    static constexpr Cycles drainCostPerLine = 100;

    /** A store: visible immediately, durable only after clwb+fence. */
    void store(Oid oid, std::uint64_t value);

    /** Read the volatile view. */
    std::uint64_t load(Oid oid) const;

    /** Read the persisted view (what a crash would preserve). */
    std::uint64_t persistedLoad(Oid oid) const;

    /** CLWB: schedule the line holding @p oid for write-back. */
    void clwb(sim::ThreadContext &tc, Oid oid);

    /** SFENCE: block until all scheduled write-backs are durable. */
    void sfence(sim::ThreadContext &tc);

    /** Convenience: store + clwb + (deferred) fence by the caller. */
    void persistentStore(sim::ThreadContext &tc, Oid oid,
                         std::uint64_t value);

    /**
     * Power failure: the volatile view is reset to the persisted
     * one; scheduled-but-unfenced write-backs are lost.
     */
    void crash();

    /** Dirty (stored, not yet written back) lines. */
    std::size_t dirtyLines() const { return dirty.size(); }
    /** Lines written back but not yet fenced durable. */
    std::size_t pendingLines() const { return pending.size(); }

    std::uint64_t clwbCount() const { return nClwb; }
    std::uint64_t fenceCount() const { return nFence; }

    MemImage &volatileImage() { return vol; }

    // ---- fault plan ---------------------------------------------------

    /** Crash before the @p nth boundary (1-based, from creation). */
    void armFault(std::uint64_t nth);
    /** Cancel a pending fault plan (e.g. before recovery persists). */
    void disarmFault() { faultAt = 0; }
    bool faultArmed() const { return faultAt != 0; }
    /** Boundaries counted so far (B of a finished baseline run). */
    std::uint64_t boundaryCount() const { return nBoundary; }

    /**
     * Record a boundary event of kind @p k; fires the fault plan
     * when armed. UndoLog calls this with LogHeader ahead of header
     * updates; the substrate itself notes Store/Clwb/Sfence.
     */
    void noteBoundary(PersistBoundary k);

  private:
    MemImage vol;  //!< what loads see
    MemImage dur;  //!< what survives a crash
    //! words written since the last write-back of their line.
    LineTable dirty;
    //! write-backs issued but not yet fenced.
    LineTable pending;
    std::uint64_t nClwb = 0;
    std::uint64_t nFence = 0;
    std::uint64_t nBoundary = 0; //!< persist-boundary events seen
    std::uint64_t faultAt = 0;   //!< fatal boundary; 0 = disarmed
};

/**
 * A classic undo-log giving single-threaded transactional updates to
 * one PMO: old values are persisted to a log region before the data
 * is touched; recovery after a crash rolls back any transaction
 * whose commit record never became durable.
 */
class UndoLog
{
  public:
    /**
     * @param pc      The persistence controller.
     * @param pmo     The PMO being protected.
     * @param log_off Offset of the log region inside the PMO.
     */
    UndoLog(PersistController &pc, PmoId pmo,
            std::uint64_t log_off);

    /** Begin a transaction (must not be nested). */
    void begin(sim::ThreadContext &tc);

    /** Transactional store: logs the old value first. */
    void write(sim::ThreadContext &tc, Oid oid, std::uint64_t value);

    /** Commit: persist data, then mark the log invalid. */
    void commit(sim::ThreadContext &tc);

    /**
     * Abort: restore every logged location to its logged (oldest)
     * value in the volatile image, then durably invalidate the log.
     * The durable data was never touched — data write-backs happen
     * only at commit — so the restores are plain stores; the restored
     * values already equal the durable ones and no write-back is
     * owed. The restores are unconditional (no compare-and-skip):
     * abort cost must be a function of the write-set shape only,
     * never of the data values, so the spec oracle can predict it.
     */
    void abort(sim::ThreadContext &tc);

    /**
     * After a crash: undo any uncommitted transaction. Returns the
     * number of durable log entries examined (0 = log was clean).
     */
    std::uint64_t recover(sim::ThreadContext &tc);

    bool inTransaction() const { return active; }

    /** The PMO this log protects. */
    PmoId pmoId() const { return pmo; }

    /**
     * Does the durable image hold an in-flight (uncommitted)
     * transaction that recover() would roll back?
     */
    bool recoveryPending() const;

    /**
     * Drop the volatile transaction state without touching the
     * durable log — what a power failure does to the DRAM-side
     * write-set. The durable header still marks the transaction
     * in-flight; recover() rolls it back.
     */
    void abortVolatile();

    // Lifetime totals (monotonic; survive commit/abort/recovery —
    // the metrics exporter reads them once at finalize).

    /** Bytes of undo records ever appended (16 per entry). */
    std::uint64_t bytesLogged() const { return nBytesLogged; }
    /** Undo records ever appended. */
    std::uint64_t entriesLogged() const { return nEntriesLogged; }
    /** recover() calls that found a transaction to roll back. */
    std::uint64_t rollbacks() const { return nRollbacks; }
    /** Durable entries examined across all rollbacks. */
    std::uint64_t entriesRolledBack() const
    {
        return nEntriesRolledBack;
    }
    /** Explicit abort() calls (not crashes). */
    std::uint64_t aborts() const { return nAborts; }

  private:
    PersistController &ctl;
    PmoId pmo;
    std::uint64_t logOff;
    bool active = false;
    std::uint64_t entries = 0;
    std::uint64_t nBytesLogged = 0;
    std::uint64_t nEntriesLogged = 0;
    std::uint64_t nRollbacks = 0;
    std::uint64_t nEntriesRolledBack = 0;
    std::uint64_t nAborts = 0;
    /**
     * DRAM-side write-set of the open transaction: the raw Oid of
     * every *distinct* logged location, in log order. write()
     * consults it to dedupe repeated stores to one location (one
     * undo record per location is enough — the log keeps the oldest
     * value) and commit() walks it instead of re-reading the log
     * through volatile loads.
     */
    std::vector<std::uint64_t> writeSet;

    Oid headerOid() const { return Oid(pmo, logOff); }
    Oid entryOid(std::uint64_t i, unsigned word) const
    {
        return Oid(pmo, logOff + 64 + i * 16 + word * 8);
    }
};

/**
 * A redo log: new values are buffered in the log region and applied
 * to the data in place only after a durable commit record lands.
 *
 * Protocol (mirrors the undo log's layout: header word at logOff =
 * count of committed entries, 0 = clean; entries are (address raw,
 * new value) pairs at logOff + 64 + i*16):
 *
 *  - begin: volatile arming only — no persist traffic, the durable
 *    header is already 0 from construction/last retire.
 *  - write: append (or update in place) a redo record and CLWB it;
 *    no fence. The data image — volatile or durable — is untouched,
 *    so an abort is nearly free and a crash discards the
 *    transaction (durable header still 0).
 *  - commit: SFENCE (drain the records durable), persist header = n
 *    and fence — THE durable point — then apply the buffered values
 *    to the data in place, write back each distinct data line, fence,
 *    and durably retire the header to 0.
 *  - recover: header != 0 means the commit record landed but the
 *    in-place apply may be torn; roll *forward* (idempotent) and
 *    retire the header.
 *
 * Compared to undo: writes cost one unfenced CLWB instead of two
 *  fenced persists (cheap speculation), commit pays the deferred
 * drain of every record plus the data write-back (expensive durable
 * point), and until commit the transaction reads its own writes out
 * of the DRAM-side buffer, not the data image.
 */
class RedoLog
{
  public:
    RedoLog(PersistController &pc, PmoId pmo,
            std::uint64_t log_off);

    /** Begin a transaction (must not be nested). Zero charge. */
    void begin(sim::ThreadContext &tc);

    /** Buffer a transactional store (record persisted, unfenced). */
    void write(sim::ThreadContext &tc, Oid oid, std::uint64_t value);

    /**
     * Read-your-writes lookup: true and sets @p value if @p oid was
     * written by the open transaction (the data image still holds
     * the pre-transaction value until commit).
     */
    bool lookup(Oid oid, std::uint64_t &value) const;

    /** Commit: durable commit record, then in-place apply. */
    void commit(sim::ThreadContext &tc);

    /**
     * Abort: discard the buffered write-set. The data was never
     * touched; one fence retires the records' pending write-backs
     * (when any were issued) so the log region owes the controller
     * nothing afterwards.
     */
    void abort(sim::ThreadContext &tc);

    /**
     * After a crash: if a durable commit record is present, roll the
     * transaction *forward* (the apply may have torn) and retire the
     * log. Returns the number of durable entries applied (0 = clean:
     * an uncommitted redo transaction simply evaporates).
     */
    std::uint64_t recover(sim::ThreadContext &tc);

    /** Does the durable image hold a committed-but-unapplied log? */
    bool recoveryPending() const;

    bool inTransaction() const { return active; }
    PmoId pmoId() const { return pmo; }

    /** Power failure: drop the DRAM-side write-set. */
    void abortVolatile();

    // Lifetime totals, as for UndoLog.
    std::uint64_t bytesLogged() const { return nBytesLogged; }
    std::uint64_t entriesLogged() const { return nEntriesLogged; }
    /** recover() calls that found a commit record to roll forward. */
    std::uint64_t rollForwards() const { return nRollForwards; }
    std::uint64_t entriesApplied() const { return nEntriesApplied; }
    std::uint64_t aborts() const { return nAborts; }

  private:
    PersistController &ctl;
    PmoId pmo;
    std::uint64_t logOff;
    bool active = false;
    //! (raw Oid, new value) in log order; one slot per location.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buf;
    std::uint64_t nBytesLogged = 0;
    std::uint64_t nEntriesLogged = 0;
    std::uint64_t nRollForwards = 0;
    std::uint64_t nEntriesApplied = 0;
    std::uint64_t nAborts = 0;

    Oid headerOid() const { return Oid(pmo, logOff); }
    Oid entryOid(std::uint64_t i, unsigned word) const
    {
        return Oid(pmo, logOff + 64 + i * 16 + word * 8);
    }
};

/**
 * One process's persistence context: the controller plus the undo
 * log of every PMO opened transactionally. Runtime::recover() walks
 * the registry after a modeled power failure so every registered
 * PMO is rolled back to its last committed image.
 */
class PersistDomain
{
  public:
    PersistController &controller() { return ctl; }
    const PersistController &controller() const { return ctl; }

    /**
     * The undo log of @p pmo, created on first use with its log
     * region at @p log_off. Reopening must use the same offset (the
     * log location is part of the PMO's layout).
     */
    UndoLog &openLog(PmoId pmo, std::uint64_t log_off);

    /** The registered log of @p pmo, or null. */
    UndoLog *findLog(PmoId pmo);

    /** Registered logs, ascending PmoId (recovery walk order). */
    const std::map<PmoId, std::unique_ptr<UndoLog>> &logs() const
    {
        return logs_;
    }

    /**
     * The redo log of @p pmo, created on first use with its log
     * region at @p log_off (must not overlap the undo region).
     */
    RedoLog &openRedoLog(PmoId pmo, std::uint64_t log_off);

    /** The registered redo log of @p pmo, or null. */
    RedoLog *findRedoLog(PmoId pmo);

    /** Registered redo logs, ascending PmoId. */
    const std::map<PmoId, std::unique_ptr<RedoLog>> &redoLogs() const
    {
        return redoLogs_;
    }

    /**
     * Modeled power failure over the whole domain: volatile images
     * and every log's DRAM-side write-set are lost; durable state
     * (including in-flight log records) survives for recovery.
     */
    void crash();

  private:
    PersistController ctl;
    std::map<PmoId, std::unique_ptr<UndoLog>> logs_;
    std::map<PmoId, std::unique_ptr<RedoLog>> redoLogs_;
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_PERSIST_HH
