/**
 * @file
 * Transactional PM API over the persistence substrate.
 *
 * pm::TxManager grows the per-PMO UndoLog/RedoLog primitives into a
 * transaction layer with PMDK TX_BEGIN semantics ("Intel PMDK
 * Transactions: Specification, Validation and Concurrency"):
 *
 *  - Nested transactions are flattened into the outermost one. An
 *    inner commit is just a nesting-depth decrement; only the
 *    outermost commit is a durable point. An abort at any depth
 *    rolls the *whole* transaction back immediately and poisons the
 *    enclosing levels: their commits unwind without doing work and
 *    the outermost commit reports failure.
 *  - Concurrent transactions from different threads are isolated by
 *    per-PMO locks. A transaction names its PMO set at begin();
 *    locks are acquired in ascending PmoId order and the acquisition
 *    never blocks — any conflict fails the begin with nothing
 *    acquired (Busy). Non-blocking acquisition in a global order is
 *    what makes the scheme deadlock-free. Locks are held until the
 *    outermost commit (or the crash), including across an abort —
 *    exactly PMDK's "locks are released at the end of the outermost
 *    transaction".
 *  - The logging variant is selectable per transaction: Undo (old
 *    values persisted before each data update; cheap commit,
 *    expensive writes) or Redo (new values buffered in the log;
 *    cheap writes and near-free abort, one big durable point at
 *    commit). A transaction anchors one log — on its lowest locked
 *    PmoId — and since log records carry full Oid raws (pool id in
 *    the top 16 bits), that single log protects writes to every PMO
 *    in the transaction's lock set.
 *
 * All persistence traffic goes through the PersistController, so
 * every durable commit point is charged through the Table-2 cost
 * model (clwbCost per write-back, drainCostPerLine per fenced line)
 * and interrupted by the same crash-point fault plans as raw stores.
 */

#ifndef TERP_PM_TX_MANAGER_HH
#define TERP_PM_TX_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "pm/persist.hh"

namespace terp {
namespace pm {

/** Which log protocol a transaction runs under. */
enum class TxKind : std::uint8_t
{
    Undo, //!< log old values; data updated in place during the tx
    Redo, //!< buffer new values; data untouched until commit
};

/** Observable state of a thread's transaction. */
enum class TxStatus : std::uint8_t
{
    None,    //!< no transaction open
    Active,  //!< open and healthy
    Aborted, //!< rolled back, unwinding towards the outermost end
};

const char *txKindName(TxKind k);

/**
 * Per-process transaction manager. One instance per PersistDomain
 * (Runtime::attachPersistence creates it); threads are identified by
 * their simulated tid.
 */
class TxManager
{
  public:
    /** Default undo-log region offset (matches the crash harness). */
    static constexpr std::uint64_t undoLogOff = 1ULL << 32;
    /** Default redo-log region offset (disjoint from undo). */
    static constexpr std::uint64_t redoLogOff = 1ULL << 33;

    explicit TxManager(PersistDomain &domain,
                       std::uint64_t undo_off = undoLogOff,
                       std::uint64_t redo_off = redoLogOff);

    TxManager(const TxManager &) = delete;
    TxManager &operator=(const TxManager &) = delete;

    /**
     * Open a transaction level on @p tid.
     *
     * Outermost (no transaction open): @p pmos (non-empty) names the
     * lock set; duplicates are fine. All locks are try-acquired in
     * ascending PmoId order; if any is held by another thread the
     * begin fails with *nothing* acquired and returns false (Busy).
     * On success the transaction anchors its @p kind log on the
     * lowest locked PmoId and returns true.
     *
     * Nested (transaction already open): increments the nesting
     * depth; @p pmos may add PMOs to the lock set (same try-acquire
     * rule — a conflict fails the nested begin with the depth and
     * the outer lock set unchanged) and @p kind is ignored (the
     * flattened transaction keeps the outermost kind). A nested
     * begin inside an already-aborted transaction fails (PMDK's
     * TX_BEGIN after abort does not execute its body).
     */
    bool begin(sim::ThreadContext &tc, unsigned tid,
               std::vector<PmoId> pmos, TxKind kind = TxKind::Undo);

    /**
     * Transactional store of @p value at @p oid. The PMO must be in
     * the transaction's lock set. Returns false (and charges
     * nothing) when the transaction is already aborted.
     */
    bool write(sim::ThreadContext &tc, unsigned tid, Oid oid,
               std::uint64_t value);

    /**
     * Transactional load. Undo reads the (in-place updated)
     * volatile image; Redo reads its own buffered writes first.
     * Outside a transaction this is a plain volatile load.
     */
    std::uint64_t read(unsigned tid, Oid oid) const;

    /**
     * Close the innermost level. Nested: depth decrement only, no
     * persist traffic. Outermost of a healthy transaction: the
     * durable point — the anchor log commits and all locks release;
     * returns true. Outermost of an aborted transaction: the
     * rollback already happened at abort time, so this just releases
     * the locks and returns false. A nested commit returns whether
     * the transaction is still healthy.
     */
    bool commit(sim::ThreadContext &tc, unsigned tid);

    /**
     * Abort the transaction from any nesting depth: immediate full
     * rollback (undo: restore logged values, retire the log; redo:
     * discard the buffer) and the transaction is poisoned until the
     * outermost commit unwinds it. Idempotent at deeper levels —
     * aborting an already-aborted transaction is a no-op.
     */
    void abort(sim::ThreadContext &tc, unsigned tid);

    // ---- state probes (for oracles and tests) ------------------------

    TxStatus status(unsigned tid) const;
    /** Nesting depth of @p tid's transaction (0 = none open). */
    unsigned depth(unsigned tid) const;
    /** Kind of @p tid's open transaction (Undo when none). */
    TxKind kind(unsigned tid) const;
    /** Lock holder of @p pmo, or -1 when free. */
    int lockOwner(PmoId pmo) const;
    bool holdsLock(unsigned tid, PmoId pmo) const;
    /** Any transaction open on any thread? */
    bool anyActive() const { return !txs.empty(); }

    /**
     * Power failure: every open transaction's volatile state and all
     * locks evaporate (the logs' own volatile loss is handled by
     * PersistDomain::crash). Durable in-flight undo records are
     * rolled back by Runtime::recover; durable redo commit records
     * are rolled forward.
     */
    void onCrash();

    // ---- lifetime totals (monotonic, for metrics) --------------------

    std::uint64_t outermostBegins() const { return nOutermost; }
    std::uint64_t nestedBegins() const { return nNested; }
    /** begin() calls that failed on a lock conflict. */
    std::uint64_t busyRejections() const { return nBusy; }
    /** Outermost commits that were durable points. */
    std::uint64_t durableCommits() const { return nDurableCommits; }
    /** Outermost commits that unwound an aborted transaction. */
    std::uint64_t abortedCommits() const { return nAbortedCommits; }
    std::uint64_t aborts() const { return nAborts; }

    /**
     * Lock-contention observer: (pmo, time, onset). Fired with
     * onset=true for each lock a Busy begin conflicted on, and with
     * onset=false for each lock the outermost commit releases, so
     * the exposure tracker can attribute contended spans to
     * txn_lock_wait. Never fired from onCrash (the crash path resets
     * attribution wholesale). Purely observational — no charges.
     */
    using ContentionHook =
        std::function<void(PmoId, Cycles, bool)>;
    void setContentionHook(ContentionHook h)
    {
        contention = std::move(h);
    }

  private:
    struct Tx
    {
        unsigned depth = 0;
        TxKind kind = TxKind::Undo;
        bool aborted = false;
        std::vector<PmoId> locks; //!< ascending
        UndoLog *ulog = nullptr;  //!< anchor (kind == Undo)
        RedoLog *rlog = nullptr;  //!< anchor (kind == Redo)
    };

    PersistDomain &dom;
    std::uint64_t undoOff;
    std::uint64_t redoOff;
    std::map<unsigned, Tx> txs;       //!< tid -> open transaction
    std::map<PmoId, unsigned> owner_; //!< pmo -> locking tid

    std::uint64_t nOutermost = 0;
    std::uint64_t nNested = 0;
    std::uint64_t nBusy = 0;
    std::uint64_t nDurableCommits = 0;
    std::uint64_t nAbortedCommits = 0;
    std::uint64_t nAborts = 0;

    ContentionHook contention; //!< null = nobody listening

    /**
     * Try to acquire every PMO in @p want (sorted, deduped) for
     * @p tid that it doesn't already hold. All-or-nothing; returns
     * false on any conflict with nothing acquired (reporting each
     * conflicting lock to the contention hook at @p now).
     */
    bool acquire(unsigned tid, Tx &tx, std::vector<PmoId> want,
                 Cycles now);
    void releaseAll(unsigned tid, Tx &tx, Cycles now);
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_TX_MANAGER_HH
