#include "pm/page_table.hh"

#include "common/logging.hh"

namespace terp {
namespace pm {

EmbeddedSubtree::EmbeddedSubtree(std::uint64_t size)
{
    TERP_ASSERT(size > 0);

    // Leaf PTEs: one per 4 KB page.
    std::uint64_t leaves = (size + pageSize - 1) / pageSize;
    std::uint64_t ptes = leaves;

    // Interior nodes up to the level whose single entry covers the
    // whole PMO.
    std::uint64_t nodes = leaves;
    level = 1;
    while (nodes > 1) {
        nodes = (nodes + PageTableGeometry::entriesPerTable - 1) /
                PageTableGeometry::entriesPerTable;
        ptes += nodes;
        ++level;
    }
    nSubtreePtes = ptes;
}

} // namespace pm
} // namespace terp
