#include "pm/pmo.hh"

#include "common/logging.hh"

namespace terp {
namespace pm {

Pmo::Pmo(PmoId id, std::string name, std::uint64_t size, Mode mode,
         std::uint64_t phys_base)
    : pmoId(id), pmoName(std::move(name)), pmoSize(size),
      pmoMode(mode), phys(phys_base), pageSubtree(size)
{
}

std::uint64_t
Pmo::vaddrOf(std::uint64_t offset) const
{
    TERP_ASSERT(attached(), "vaddrOf on detached PMO ", pmoName);
    TERP_ASSERT(offset < pmoSize, "offset out of PMO bounds");
    return base + offset;
}

} // namespace pm
} // namespace terp
