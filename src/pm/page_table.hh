/**
 * @file
 * Embedded page-table subtree model (MERR / Fig 1a of the paper).
 *
 * A conventional attach initializes one PTE per 4 KB page, so its
 * cost grows linearly with PMO size. MERR embeds a page-table subtree
 * in the PMO itself as persistent metadata: an attach then installs a
 * single upper-level entry pointing at the subtree root, making
 * attach/detach O(1). This model counts the PTE writes each scheme
 * performs so the claim is measurable.
 */

#ifndef TERP_PM_PAGE_TABLE_HH
#define TERP_PM_PAGE_TABLE_HH

#include <cstdint>

#include "common/units.hh"

namespace terp {
namespace pm {

/** Four-level x86-64-style page-table geometry. */
struct PageTableGeometry
{
    static constexpr unsigned entriesPerTable = 512;
    static constexpr std::uint64_t l1Coverage = pageSize;          // 4 KB
    static constexpr std::uint64_t l2Coverage = l1Coverage * 512;  // 2 MB
    static constexpr std::uint64_t l3Coverage = l2Coverage * 512;  // 1 GB
};

/**
 * The page-table subtree embedded in a PMO. Built once at PMO
 * creation; an attach installs a single entry in the process table.
 */
class EmbeddedSubtree
{
  public:
    /** Build the subtree for a PMO of @p size bytes. */
    explicit EmbeddedSubtree(std::uint64_t size);

    /** Number of PTEs materialized inside the PMO (persistent). */
    std::uint64_t subtreePteCount() const { return nSubtreePtes; }

    /**
     * PTE writes a conventional (non-embedded) attach would perform:
     * one per 4 KB page plus interior nodes.
     */
    std::uint64_t conventionalAttachPtes() const { return nSubtreePtes; }

    /** PTE writes an embedded attach performs: exactly one. */
    static constexpr std::uint64_t embeddedAttachPtes = 1;

    /**
     * Depth of the subtree root under the process root (how many
     * levels the single installed entry shortcuts).
     */
    unsigned rootLevel() const { return level; }

  private:
    std::uint64_t nSubtreePtes = 0;
    unsigned level = 0;
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_PAGE_TABLE_HH
