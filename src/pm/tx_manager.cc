#include "pm/tx_manager.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace pm {

const char *
txKindName(TxKind k)
{
    switch (k) {
      case TxKind::Undo: return "undo";
      case TxKind::Redo: return "redo";
      default: return "?";
    }
}

TxManager::TxManager(PersistDomain &domain, std::uint64_t undo_off,
                     std::uint64_t redo_off)
    : dom(domain), undoOff(undo_off), redoOff(redo_off)
{
    TERP_ASSERT(undo_off != redo_off,
                "TxManager: undo and redo log regions overlap");
}

bool
TxManager::acquire(unsigned tid, Tx &tx, std::vector<PmoId> want,
                   Cycles now)
{
    std::sort(want.begin(), want.end());
    want.erase(std::unique(want.begin(), want.end()), want.end());
    // All-or-nothing: scan for conflicts before taking anything, so
    // a Busy begin leaves no partial lock set behind. Acquisition
    // never blocks, and the scan/take order is ascending PmoId —
    // together these rule out deadlock by construction.
    bool conflict = false;
    for (PmoId pmo : want) {
        auto it = owner_.find(pmo);
        if (it != owner_.end() && it->second != tid) {
            conflict = true;
            if (contention)
                contention(pmo, now, true);
        }
    }
    if (conflict)
        return false;
    for (PmoId pmo : want) {
        if (owner_.emplace(pmo, tid).second) {
            tx.locks.insert(std::lower_bound(tx.locks.begin(),
                                             tx.locks.end(), pmo),
                            pmo);
        }
    }
    return true;
}

void
TxManager::releaseAll(unsigned tid, Tx &tx, Cycles now)
{
    for (PmoId pmo : tx.locks) {
        auto it = owner_.find(pmo);
        TERP_ASSERT(it != owner_.end() && it->second == tid,
                    "TxManager: releasing a lock not held by tid ",
                    tid);
        owner_.erase(it);
        if (contention)
            contention(pmo, now, false);
    }
    tx.locks.clear();
}

bool
TxManager::begin(sim::ThreadContext &tc, unsigned tid,
                 std::vector<PmoId> pmos, TxKind kind)
{
    auto it = txs.find(tid);
    if (it != txs.end()) {
        // Nested level of the flattened transaction.
        Tx &tx = it->second;
        if (tx.aborted)
            return false; // the body after an abort never runs
        if (!acquire(tid, tx, std::move(pmos), tc.now())) {
            ++nBusy;
            return false;
        }
        ++tx.depth;
        ++nNested;
        return true;
    }

    TERP_ASSERT(!pmos.empty(),
                "TxManager: outermost begin with an empty PMO set");
    Tx tx;
    tx.kind = kind;
    if (!acquire(tid, tx, std::move(pmos), tc.now())) {
        ++nBusy;
        return false;
    }
    tx.depth = 1;
    PmoId anchor = tx.locks.front();
    if (kind == TxKind::Undo) {
        tx.ulog = &dom.openLog(anchor, undoOff);
        tx.ulog->begin(tc);
    } else {
        tx.rlog = &dom.openRedoLog(anchor, redoOff);
        tx.rlog->begin(tc);
    }
    ++nOutermost;
    txs.emplace(tid, std::move(tx));
    return true;
}

bool
TxManager::write(sim::ThreadContext &tc, unsigned tid, Oid oid,
                 std::uint64_t value)
{
    auto it = txs.find(tid);
    TERP_ASSERT(it != txs.end(),
                "TxManager: write outside a transaction (tid ", tid,
                ")");
    Tx &tx = it->second;
    if (tx.aborted)
        return false;
    TERP_ASSERT(std::binary_search(tx.locks.begin(), tx.locks.end(),
                                   oid.pool()),
                "TxManager: write to PMO ", oid.pool(),
                " outside the transaction's lock set");
    if (tx.kind == TxKind::Undo)
        tx.ulog->write(tc, oid, value);
    else
        tx.rlog->write(tc, oid, value);
    return true;
}

std::uint64_t
TxManager::read(unsigned tid, Oid oid) const
{
    auto it = txs.find(tid);
    if (it != txs.end() && it->second.kind == TxKind::Redo &&
        !it->second.aborted) {
        std::uint64_t buffered;
        if (it->second.rlog->lookup(oid, buffered))
            return buffered;
    }
    return dom.controller().load(oid);
}

bool
TxManager::commit(sim::ThreadContext &tc, unsigned tid)
{
    auto it = txs.find(tid);
    TERP_ASSERT(it != txs.end(),
                "TxManager: commit outside a transaction (tid ", tid,
                ")");
    Tx &tx = it->second;
    if (--tx.depth > 0)
        return !tx.aborted; // inner level: unwind only

    bool healthy = !tx.aborted;
    if (healthy) {
        // The durable point of the whole flattened transaction.
        if (tx.kind == TxKind::Undo)
            tx.ulog->commit(tc);
        else
            tx.rlog->commit(tc);
        ++nDurableCommits;
    } else {
        // The rollback already ran at abort(); the log is retired.
        ++nAbortedCommits;
    }
    releaseAll(tid, tx, tc.now());
    txs.erase(it);
    return healthy;
}

void
TxManager::abort(sim::ThreadContext &tc, unsigned tid)
{
    auto it = txs.find(tid);
    TERP_ASSERT(it != txs.end(),
                "TxManager: abort outside a transaction (tid ", tid,
                ")");
    Tx &tx = it->second;
    if (tx.aborted)
        return; // already rolled back; keep unwinding
    // Immediate full rollback of the flattened transaction; the
    // depth and the lock set stay until the outermost commit
    // unwinds (PMDK holds locks to the outermost TX_END).
    if (tx.kind == TxKind::Undo)
        tx.ulog->abort(tc);
    else
        tx.rlog->abort(tc);
    tx.aborted = true;
    ++nAborts;
}

TxStatus
TxManager::status(unsigned tid) const
{
    auto it = txs.find(tid);
    if (it == txs.end())
        return TxStatus::None;
    return it->second.aborted ? TxStatus::Aborted : TxStatus::Active;
}

unsigned
TxManager::depth(unsigned tid) const
{
    auto it = txs.find(tid);
    return it == txs.end() ? 0 : it->second.depth;
}

TxKind
TxManager::kind(unsigned tid) const
{
    auto it = txs.find(tid);
    return it == txs.end() ? TxKind::Undo : it->second.kind;
}

int
TxManager::lockOwner(PmoId pmo) const
{
    auto it = owner_.find(pmo);
    return it == owner_.end() ? -1 : static_cast<int>(it->second);
}

bool
TxManager::holdsLock(unsigned tid, PmoId pmo) const
{
    auto it = owner_.find(pmo);
    return it != owner_.end() && it->second == tid;
}

void
TxManager::onCrash()
{
    txs.clear();
    owner_.clear();
}

} // namespace pm
} // namespace terp
