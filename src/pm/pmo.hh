/**
 * @file
 * The persistent memory object (PMO) abstraction.
 *
 * A PMO wraps one or more data structures that live in persistent
 * memory without file backing: it has a name, a size, OS-level
 * permissions, an embedded page-table subtree for O(1) attach, and a
 * current (possibly randomized) attach address. Data inside a PMO is
 * addressed by relocatable ObjectIDs.
 */

#ifndef TERP_PM_PMO_HH
#define TERP_PM_PMO_HH

#include <cstdint>
#include <string>

#include "common/units.hh"
#include "pm/oid.hh"
#include "pm/page_table.hh"

namespace terp {
namespace pm {

/** Requested access mode for create/open/attach. */
enum class Mode : unsigned
{
    None = 0,
    Read = 1,
    Write = 2,
    ReadWrite = 3,
};

inline bool
modeAllows(Mode granted, bool write)
{
    auto g = static_cast<unsigned>(granted);
    return write ? (g & static_cast<unsigned>(Mode::Write)) != 0
                 : (g & static_cast<unsigned>(Mode::Read)) != 0;
}

/** One persistent memory object. Created via PmoManager. */
class Pmo
{
  public:
    Pmo(PmoId id, std::string name, std::uint64_t size, Mode mode,
        std::uint64_t phys_base);

    PmoId id() const { return pmoId; }
    const std::string &name() const { return pmoName; }
    std::uint64_t size() const { return pmoSize; }
    Mode mode() const { return pmoMode; }

    /** Fixed physical placement in the simulated NVM. */
    std::uint64_t physBase() const { return phys; }

    /** True while mapped into the process address space. */
    bool attached() const { return base != 0; }

    /** Current virtual base; 0 when detached. */
    std::uint64_t vaddrBase() const { return base; }

    /** Map at @p vbase (performed by PmoManager only). */
    void mapAt(std::uint64_t vbase) { base = vbase; }
    void unmap() { base = 0; }

    /** Virtual address of an offset; PMO must be attached. */
    std::uint64_t vaddrOf(std::uint64_t offset) const;

    /** Physical address of an offset (always valid). */
    std::uint64_t
    paddrOf(std::uint64_t offset) const
    {
        return phys + offset;
    }

    const EmbeddedSubtree &subtree() const { return pageSubtree; }

    /** Number of times this PMO was (re)mapped, incl. randomization. */
    std::uint64_t mapCount = 0;

  private:
    PmoId pmoId;
    std::string pmoName;
    std::uint64_t pmoSize;
    Mode pmoMode;
    std::uint64_t phys;
    std::uint64_t base = 0;
    EmbeddedSubtree pageSubtree;
};

} // namespace pm
} // namespace terp

#endif // TERP_PM_PMO_HH
