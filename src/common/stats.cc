#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace terp {

Histogram::Histogram(std::vector<double> upper_bounds)
    : ubs(std::move(upper_bounds))
{
    TERP_ASSERT(!ubs.empty());
    for (std::size_t i = 1; i < ubs.size(); ++i)
        TERP_ASSERT(ubs[i] > ubs[i - 1], "bounds must ascend");
    counts.assign(ubs.size() + 1, 0); // +1 overflow bucket
}

Histogram
Histogram::log2Buckets(double lo, double hi)
{
    TERP_ASSERT(lo > 0 && hi > lo);
    std::vector<double> b;
    for (double v = lo; v <= hi * 1.0000001; v *= 2.0)
        b.push_back(v);
    return Histogram(std::move(b));
}

void
Histogram::add(double v)
{
    std::size_t i = 0;
    while (i < ubs.size() && v > ubs[i])
        ++i;
    ++counts[i];
    ++total;
    samples.push_back(v);
}

double
Histogram::fraction(std::size_t i) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(counts.at(i)) / static_cast<double>(total);
}

double
Histogram::fractionAbove(double v) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (double s : samples)
        if (s > v)
            ++above;
    return static_cast<double>(above) / static_cast<double>(total);
}

double
Histogram::percentile(double p) const
{
    TERP_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    auto idx = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (idx > 0)
        --idx;
    return sorted[idx];
}

} // namespace terp
