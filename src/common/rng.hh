/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every source of randomness in the reproduction (PMO placement
 * randomization, Zipfian key selection, workload jitter, Monte-Carlo
 * attack probes) draws from a seeded Rng stream so that tests and
 * benchmark tables are exactly reproducible.
 */

#ifndef TERP_COMMON_RNG_HH
#define TERP_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace terp {

/**
 * A small, fast, splittable PRNG (SplitMix64-seeded xoshiro256**).
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x5eed'c0de'd00d'f00dULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound). bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric-ish positive jitter: uniform in
     * [mean*(1-spread), mean*(1+spread)].
     */
    std::uint64_t jitter(std::uint64_t mean, double spread);

    /** Fork an independent stream (for per-thread determinism). */
    Rng split();

  private:
    std::uint64_t s[4];
};

/**
 * Zipfian sampler over [0, n) with skew theta, as used by YCSB-style
 * key-value workloads. Uses the Gray et al. rejection-free method.
 */
class ZipfGenerator
{
  public:
    /**
     * @param n     Number of distinct items.
     * @param theta Skew (0 = uniform; 0.99 = YCSB default).
     * @param seed  Seed for the internal generator.
     */
    ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed);

    /** Sample one item index in [0, n). */
    std::uint64_t next();

    std::uint64_t itemCount() const { return n; }

  private:
    std::uint64_t n;
    double theta;
    double alpha;
    double zetan;
    double eta;
    Rng rng;

    static double zeta(std::uint64_t n, double theta);
};

} // namespace terp

#endif // TERP_COMMON_RNG_HH
