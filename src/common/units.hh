/**
 * @file
 * Basic time/size units and the simulation latency constants of the
 * TERP evaluation (Table II of the paper).
 *
 * All simulated time is kept in core clock cycles of the 2.2 GHz
 * simulated processor. Helpers convert between cycles and micro- or
 * nanoseconds where the paper quotes wall-clock targets (e.g. the
 * 40 us exposure-window target).
 */

#ifndef TERP_COMMON_UNITS_HH
#define TERP_COMMON_UNITS_HH

#include <cstdint>

namespace terp {

/** Simulated core-clock cycles. */
using Cycles = std::uint64_t;

/** Simulated core frequency (Table II: 4-core, each 2.2 GHz). */
constexpr double coreFreqGHz = 2.2;

/** Cycles per microsecond at the simulated core frequency. */
constexpr Cycles cyclesPerUs = 2200;

/** Convert microseconds to cycles (rounds down). */
constexpr Cycles
usToCycles(double us)
{
    return static_cast<Cycles>(us * static_cast<double>(cyclesPerUs));
}

/** Convert cycles to microseconds. */
constexpr double
cyclesToUs(Cycles c)
{
    return static_cast<double>(c) / static_cast<double>(cyclesPerUs);
}

/** Convert cycles to nanoseconds. */
constexpr double
cyclesToNs(Cycles c)
{
    return static_cast<double>(c) / coreFreqGHz;
}

/** Size units. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Simulated page size (4 KB pages, Table II). */
constexpr std::uint64_t pageSize = 4 * KiB;
constexpr std::uint64_t pageShift = 12;

/** Cache line size (bytes). */
constexpr std::uint64_t lineSize = 64;
constexpr std::uint64_t lineShift = 6;

/**
 * Fixed event latencies from Table II of the paper. These are the
 * microbenchmarked costs the paper charges for each privileged or
 * TERP-specific operation.
 */
namespace latency {

/** DRAM access latency (cycles). */
constexpr Cycles dram = 120;
/** NVM (persistent memory) access latency (cycles). */
constexpr Cycles nvm = 360;
/** L1D hit time (cycles). */
constexpr Cycles l1Hit = 1;
/** Shared L2 hit time (cycles). */
constexpr Cycles l2Hit = 8;
/** L1 TLB hit time (cycles; folded into the 1-cycle L1 access). */
constexpr Cycles tlbL1 = 0;
/** L2 TLB access time (cycles). */
constexpr Cycles tlbL2 = 4;
/** Page-walk penalty charged on a full TLB miss (cycles). */
constexpr Cycles tlbMiss = 30;
/** Permission-matrix check or update (cycles). */
constexpr Cycles permMatrix = 1;
/** Silent conditional attach/detach (MPK permission toggle; cycles). */
constexpr Cycles silentCond = 27;
/**
 * Kernel-mediated thread-permission toggle (the TM scheme performs
 * every lowered conditional attach/detach as a system call): mode
 * switch + PKRU update + fences, microbenchmarked like the other
 * system-call costs.
 */
constexpr Cycles permSyscall = 1200;
/** Full attach() system call (cycles). */
constexpr Cycles attachSyscall = 4422;
/** Full detach() system call (cycles). */
constexpr Cycles detachSyscall = 3058;
/** PMO layout re-randomization (cycles). */
constexpr Cycles randomize = 3718;
/** TLB invalidation / shootdown (cycles). */
constexpr Cycles tlbInvalidate = 550;

} // namespace latency

/**
 * Default protection targets used throughout the paper's evaluation:
 * a 40 us process-level exposure window and a 2 us thread exposure
 * window.
 */
namespace target {

constexpr Cycles defaultEw = 40 * cyclesPerUs;
constexpr Cycles defaultTew = 2 * cyclesPerUs;

} // namespace target

} // namespace terp

#endif // TERP_COMMON_UNITS_HH
