/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for internal
 * invariant violations, fatal() for user/configuration errors, plus
 * warn() and inform() for non-fatal diagnostics.
 */

#ifndef TERP_COMMON_LOGGING_HH
#define TERP_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace terp {

namespace detail {

/** Stream-concatenate arbitrary arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort: something happened that indicates a bug in this library. */
#define TERP_PANIC(...) \
    ::terp::detail::panicImpl(__FILE__, __LINE__, \
                              ::terp::detail::concat(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user error. */
#define TERP_FATAL(...) \
    ::terp::detail::fatalImpl(__FILE__, __LINE__, \
                              ::terp::detail::concat(__VA_ARGS__))

/** Non-fatal warning. */
#define TERP_WARN(...) \
    ::terp::detail::warnImpl(::terp::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define TERP_INFORM(...) \
    ::terp::detail::informImpl(::terp::detail::concat(__VA_ARGS__))

/** Assert an invariant; panics with a message on failure. */
#define TERP_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::terp::detail::panicImpl(__FILE__, __LINE__, \
                ::terp::detail::concat("assertion failed: ", #cond, \
                                       " ", ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace terp

#endif // TERP_COMMON_LOGGING_HH
