/**
 * @file
 * Lightweight statistics: scalar counters, interval accumulators and
 * bucketed histograms used by the runtime, simulator and benchmark
 * harnesses.
 */

#ifndef TERP_COMMON_STATS_HH
#define TERP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/metric.hh"

namespace terp {

/**
 * Running scalar summary (count / sum / min / max / mean) over
 * uint64 samples such as exposure-window lengths in cycles.
 *
 * Canonically defined in metrics/metric.hh so every consumer — the
 * EwTracker, the trace auditor's window tallies, the differential
 * oracle and the metrics registry — shares one implementation with
 * one set of empty-sample conventions (min()==0, mean()==0.0 on
 * n==0). This alias keeps the historical spelling.
 */
using Summary = metrics::Summary;

/**
 * Histogram over explicit bucket upper bounds. A sample lands in the
 * first bucket whose upper bound is >= the sample; larger samples land
 * in the overflow bucket.
 */
class Histogram
{
  public:
    /** @param upper_bounds Ascending inclusive bucket upper bounds. */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Build log2-spaced bounds lo, 2lo, 4lo, ..., covering up to hi. */
    static Histogram log2Buckets(double lo, double hi);

    void add(double v);

    std::size_t bucketCount() const { return counts.size(); }
    const std::vector<double> &bounds() const { return ubs; }
    std::uint64_t bucket(std::size_t i) const { return counts.at(i); }
    std::uint64_t totalCount() const { return total; }

    /** Fraction of samples in bucket i. */
    double fraction(std::size_t i) const;

    /** Fraction of samples strictly above value v. */
    double fractionAbove(double v) const;

    /** All raw samples retained for percentile queries. */
    double percentile(double p) const;

  private:
    std::vector<double> ubs;     //!< bucket upper bounds; last = overflow
    std::vector<std::uint64_t> counts;
    std::vector<double> samples; //!< retained for percentiles
    std::uint64_t total = 0;
};

/**
 * A named bag of counters. Modules register additive counters under
 * string keys; harnesses pretty-print or diff them.
 */
class CounterSet
{
  public:
    void
    inc(const std::string &key, std::uint64_t by = 1)
    {
        vals[key] += by;
    }

    std::uint64_t
    get(const std::string &key) const
    {
        auto it = vals.find(key);
        return it == vals.end() ? 0 : it->second;
    }

    const std::map<std::string, std::uint64_t> &all() const { return vals; }

    void reset() { vals.clear(); }

  private:
    std::map<std::string, std::uint64_t> vals;
};

} // namespace terp

#endif // TERP_COMMON_STATS_HH
