#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace terp {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    TERP_ASSERT(bound > 0);
    // Lemire-style unbiased bounded generation (64x64 -> 128).
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    TERP_ASSERT(lo <= hi);
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::jitter(std::uint64_t mean, double spread)
{
    if (mean == 0 || spread <= 0.0)
        return mean;
    double lo = static_cast<double>(mean) * (1.0 - spread);
    double hi = static_cast<double>(mean) * (1.0 + spread);
    if (lo < 0)
        lo = 0;
    return static_cast<std::uint64_t>(lo + nextDouble() * (hi - lo));
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa02'51ca'715eULL);
}

double
ZipfGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n_, double theta_,
                             std::uint64_t seed)
    : n(n_), theta(theta_), rng(seed)
{
    TERP_ASSERT(n > 0);
    zetan = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    alpha = 1.0 / (1.0 - theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfGenerator::next()
{
    double u = rng.nextDouble();
    double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n) *
        std::pow(eta * u - eta + 1.0, alpha));
    return idx >= n ? n - 1 : idx;
}

} // namespace terp
