/**
 * @file
 * IR interpreter bound to the timing simulator and the protection
 * runtime.
 *
 * Each simulated thread runs one Interpreter as its Job; all threads
 * of a program share one MemoryImage, whose words are keyed by
 * location-independent pointer values (ObjectIDs for PMO data, arena
 * offsets for DRAM), so PMO re-randomization is transparent to the
 * program — exactly the property relocatable PMO pointers give real
 * TERP programs.
 *
 * The interpreter is resumable: when a region entry blocks under the
 * basic-semantics ablation, the program counter stays put and the
 * instruction retries after the thread is woken.
 */

#ifndef TERP_COMPILER_INTERP_HH
#define TERP_COMPILER_INTERP_HH

#include <cstdint>
#include <vector>

#include "compiler/ir.hh"
#include "core/runtime.hh"
#include "pm/mem_image.hh"
#include "sim/machine.hh"

namespace terp {
namespace compiler {

/** Word-granularity memory shared by all threads of a program. */
using MemoryImage = pm::MemImage;

/** Executes one function (and its callees) on a simulated thread. */
class Interpreter : public sim::Job
{
  public:
    /**
     * @param m       The (instrumented) module. Not owned.
     * @param rt      Protection runtime handling TERP constructs.
     * @param mach    The machine charging instruction/memory time.
     * @param mem     Shared memory image.
     * @param entry   Index of the function to run.
     * @param args    Argument values (bound to registers 0..n-1).
     * @param quantum Instructions per scheduler step.
     */
    Interpreter(const Module &m, core::Runtime &rt,
                sim::Machine &mach, MemoryImage &mem,
                std::uint32_t entry,
                std::vector<std::uint64_t> args = {},
                std::uint64_t quantum = 256);

    bool step(sim::ThreadContext &tc) override;

    /**
     * When true, access faults (permission denials, segfaults from
     * stale attacker pointers) are recorded and the faulting
     * instruction is skipped instead of panicking. Used by the
     * security experiments; well-formed programs keep the default.
     */
    bool trapFaults = false;

    bool finished() const { return doneFlag; }
    std::uint64_t result() const { return retValue; }
    std::uint64_t instructionsExecuted() const { return nExec; }

    /** Faults observed (well-formed programs should have none). */
    std::uint64_t faultCount() const { return nFaults; }

    // ---- fusion effectiveness (host-side diagnostics) ---------------

    /** Fusion kinds the decoder can emit (add-run + peepholes). */
    static constexpr unsigned kFusionKinds = 10;

    /** Short label of fusion kind @p k (e.g. "addr4", "addrun"). */
    static const char *fusionKindName(unsigned k);

    /** Dispatches that entered the fused handler of kind @p k. */
    std::uint64_t fusedDispatches(unsigned k) const
    {
        return fuseHits[k];
    }

    /** Total fused dispatches across all kinds. */
    std::uint64_t fusedDispatches() const;

    /**
     * Decode-time sites matched by a fusion rule (counted only when
     * fusion is enabled; each run of self-adds counts once).
     */
    std::uint64_t fusionCandidates() const { return fuseSites; }

  private:
    /**
     * A decoded instruction: the hot subset of Instr packed into 32
     * bytes so the dispatch loop streams through cache lines instead
     * of hopping across 88-byte Instr records (whose std::vector
     * member also ruins locality). Field reuse: `ra` holds the PmoId
     * for PmoBase and the conditional/manual attach-detach ops, and
     * the callee index for Call; `rb` holds a Call's offset into
     * DFunc::callArgs; `aux` holds the immediate or the packed
     * branch targets (lo = taken / jump target, hi = fall-through).
     */
    struct DInstr
    {
        Op op = Op::Nop;
        std::uint16_t nArgs = 0; //!< Call argument count
        Reg dst = noReg;
        Reg ra = noReg;
        Reg rb = noReg;
        pm::Mode mode = pm::Mode::ReadWrite;
        std::int64_t aux = 0;
    };

    /**
     * Interpreter-private pseudo-op marking a run of k identical
     * self-adds (add d, d, d — the shape FunctionBuilder::compute
     * emits for busy work). k self-adds double d k times, i.e.
     * d <<= k (0 once k reaches 64), with the same per-instruction
     * charge sum, so the run executes in O(1) instead of k
     * dispatches. With fusion enabled (TERP_FUSE!=0) *every* member
     * of the run carries the pseudo-op with `aux` = the run length
     * remaining from that member, so a quantum boundary that splits
     * a run resumes into another O(1) dispatch instead of decaying
     * to one-add-per-dispatch for the rest of the run (the dominant
     * pair in the TERP_FUSE_PROFILE histogram — 89% of dispatches —
     * was exactly that decay). Under TERP_FUSE=0 only the head is
     * rewritten, which is the pre-fusion behaviour.
     */
    static constexpr Op opAddRun =
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 1);

    /**
     * Fused superinstructions: decode-time peephole rewrites of the
     * dominant adjacent opcode sequences of the SPEC surrogates,
     * selected from the TERP_FUSE_PROFILE pair histogram (DESIGN.md
     * §14). Only the head of a matched sequence is rewritten; the
     * constituents keep their original opcodes, so every mid-sequence
     * resume point (quantum boundary, fault) stays addressable and
     * the fused handler falls back to them by committing idx at the
     * split. Each fused handler replays the constituent handlers
     * verbatim — same register writes, same `pending` charges, same
     * flush points — so cycle accounting is bit-identical.
     */
    static constexpr Op opFuseAddr4 = // PmoBase; Const; Mul; Add
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 2);
    static constexpr Op opFuseIncJump = // Const; Add; Jump (latch)
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 3);
    static constexpr Op opFuseConstMul =
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 4);
    static constexpr Op opFuseMulAdd =
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 5);
    static constexpr Op opFuseConstAdd =
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 6);
    static constexpr Op opFuseAddLoad =
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 7);
    static constexpr Op opFuseAddStore =
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 8);
    static constexpr Op opFuseDramAdd =
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 9);
    static constexpr Op opFuseCmpltBr = // CmpLt; Branch (loop header)
        static_cast<Op>(static_cast<unsigned>(Op::Nop) + 10);

    /**
     * One function, decoded: all blocks concatenated. Frames carry
     * one extra "phantom zero" register at index nRegs; the decoder
     * rewrites every noReg *operand* to it, so the hot loop reads
     * regs[r] unconditionally instead of branching on the sentinel.
     * (noReg *destinations* — a Call whose result is dropped — keep
     * the sentinel and the explicit check on the Ret path.)
     */
    struct DFunc
    {
        std::vector<DInstr> code;
        /** (offset, length) into code, per block id. */
        std::vector<std::pair<std::uint32_t, std::uint32_t>> blocks;
        std::vector<Reg> callArgs; //!< flattened Call argument lists
        std::uint32_t nRegs = 0;   //!< real registers (phantom extra)
    };

    struct Frame
    {
        std::uint32_t fn;
        BlockId block = 0;
        std::size_t idx = 0;
        std::vector<std::uint64_t> regs;
        Reg retDst = noReg;
        /**
         * Cached pointer to the current block's decoded instructions
         * (into dfuncs, which never changes during a run). Refreshed
         * by bindBlock() on every control transfer.
         */
        const DInstr *code = nullptr;
        std::size_t codeLen = 0;
    };

    /** Decode one module function into dfuncs[i]. */
    void decodeFunction(std::uint32_t i);

    /** Refresh fr.code/codeLen after fn/block changed. */
    void bindBlock(Frame &fr);

    const Module *mod;
    std::vector<DFunc> dfuncs; //!< decoded image of *mod
    core::Runtime *rt;
    sim::Machine *mach;
    MemoryImage *mem;
    std::uint64_t quantum;

    std::vector<Frame> stack;
    bool doneFlag = false;
    std::uint64_t retValue = 0;
    std::uint64_t nExec = 0;
    std::uint64_t nFaults = 0;
    std::uint64_t fuseHits[kFusionKinds] = {};
    std::uint64_t fuseSites = 0;

    /** Timed + checked access; false if it faulted (trapFaults). */
    bool memAccess(sim::ThreadContext &tc, std::uint64_t addr,
                   bool write);

    /** Backing-store key for a pointer (raw vaddrs -> ObjectIDs). */
    std::uint64_t storageKey(std::uint64_t addr) const;
};

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_INTERP_HH
