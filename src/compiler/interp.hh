/**
 * @file
 * IR interpreter bound to the timing simulator and the protection
 * runtime.
 *
 * Each simulated thread runs one Interpreter as its Job; all threads
 * of a program share one MemoryImage, whose words are keyed by
 * location-independent pointer values (ObjectIDs for PMO data, arena
 * offsets for DRAM), so PMO re-randomization is transparent to the
 * program — exactly the property relocatable PMO pointers give real
 * TERP programs.
 *
 * The interpreter is resumable: when a region entry blocks under the
 * basic-semantics ablation, the program counter stays put and the
 * instruction retries after the thread is woken.
 */

#ifndef TERP_COMPILER_INTERP_HH
#define TERP_COMPILER_INTERP_HH

#include <cstdint>
#include <vector>

#include "compiler/ir.hh"
#include "core/runtime.hh"
#include "pm/mem_image.hh"
#include "sim/machine.hh"

namespace terp {
namespace compiler {

/** Word-granularity memory shared by all threads of a program. */
using MemoryImage = pm::MemImage;

/** Executes one function (and its callees) on a simulated thread. */
class Interpreter : public sim::Job
{
  public:
    /**
     * @param m       The (instrumented) module. Not owned.
     * @param rt      Protection runtime handling TERP constructs.
     * @param mach    The machine charging instruction/memory time.
     * @param mem     Shared memory image.
     * @param entry   Index of the function to run.
     * @param args    Argument values (bound to registers 0..n-1).
     * @param quantum Instructions per scheduler step.
     */
    Interpreter(const Module &m, core::Runtime &rt,
                sim::Machine &mach, MemoryImage &mem,
                std::uint32_t entry,
                std::vector<std::uint64_t> args = {},
                std::uint64_t quantum = 256);

    bool step(sim::ThreadContext &tc) override;

    /**
     * When true, access faults (permission denials, segfaults from
     * stale attacker pointers) are recorded and the faulting
     * instruction is skipped instead of panicking. Used by the
     * security experiments; well-formed programs keep the default.
     */
    bool trapFaults = false;

    bool finished() const { return doneFlag; }
    std::uint64_t result() const { return retValue; }
    std::uint64_t instructionsExecuted() const { return nExec; }

    /** Faults observed (well-formed programs should have none). */
    std::uint64_t faultCount() const { return nFaults; }

  private:
    struct Frame
    {
        std::uint32_t fn;
        BlockId block = 0;
        std::size_t idx = 0;
        std::vector<std::uint64_t> regs;
        Reg retDst = noReg;
    };

    const Module *mod;
    core::Runtime *rt;
    sim::Machine *mach;
    MemoryImage *mem;
    std::uint64_t quantum;

    std::vector<Frame> stack;
    bool doneFlag = false;
    std::uint64_t retValue = 0;
    std::uint64_t nExec = 0;
    std::uint64_t nFaults = 0;

    /** Timed + checked access; false if it faulted (trapFaults). */
    bool memAccess(sim::ThreadContext &tc, std::uint64_t addr,
                   bool write);

    /** Backing-store key for a pointer (raw vaddrs -> ObjectIDs). */
    std::uint64_t storageKey(std::uint64_t addr) const;
};

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_INTERP_HH
