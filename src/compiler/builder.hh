/**
 * @file
 * Structured construction of IR functions.
 *
 * The builder keeps an insertion point and offers both raw block
 * wiring (for irregular CFGs in tests) and structured helpers
 * (if/else, bounded and unbounded loops) that record loop trip
 * metadata for the LET estimator. Workload surrogates (SPEC kernels,
 * the data-only-attack FTP example) are written against this API.
 */

#ifndef TERP_COMPILER_BUILDER_HH
#define TERP_COMPILER_BUILDER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "compiler/ir.hh"

namespace terp {
namespace compiler {

/** Builds one function inside a module. */
class FunctionBuilder
{
  public:
    /**
     * Start a new function; registers 0..n_params-1 hold arguments.
     */
    FunctionBuilder(Module &mod, const std::string &name,
                    std::uint32_t n_params = 0);

    /** Finish: validate and return the function's index. */
    std::uint32_t finish();

    // ---- registers and simple instructions ---------------------------

    Reg newReg() { return func().nRegs++; }
    Reg param(std::uint32_t i) const;

    Reg constant(std::int64_t v);
    Reg arith(Op op, Reg a, Reg b);
    Reg add(Reg a, Reg b) { return arith(Op::Add, a, b); }
    Reg sub(Reg a, Reg b) { return arith(Op::Sub, a, b); }
    Reg mul(Reg a, Reg b) { return arith(Op::Mul, a, b); }
    Reg cmpLt(Reg a, Reg b) { return arith(Op::CmpLt, a, b); }
    Reg cmpEq(Reg a, Reg b) { return arith(Op::CmpEq, a, b); }
    Reg cmpNe(Reg a, Reg b) { return arith(Op::CmpNe, a, b); }

    /** Burn @p n arithmetic instructions (models plain compute). */
    void compute(std::uint64_t n);

    /** Pointer to offset @p off inside PMO @p pmo. */
    Reg pmoBase(pm::PmoId pmo, std::int64_t off = 0);

    /** Pointer to offset @p off of the DRAM arena. */
    Reg dramBase(std::int64_t off);

    Reg load(Reg addr);
    void store(Reg addr, Reg value);

    Reg call(std::uint32_t callee, const std::vector<Reg> &args = {});

    /** Explicit TERP constructs (the pass inserts these normally). */
    void condAttach(pm::PmoId pmo, pm::Mode mode = pm::Mode::ReadWrite);
    void condDetach(pm::PmoId pmo);

    /** MERR-style manual bookends (honored only by the MM scheme). */
    void manualAttach(pm::PmoId pmo,
                      pm::Mode mode = pm::Mode::ReadWrite);
    void manualDetach(pm::PmoId pmo);

    void ret(Reg value = noReg);

    // ---- raw control flow --------------------------------------------

    BlockId newBlock(const std::string &label = "");
    BlockId currentBlock() const { return cur; }
    void setBlock(BlockId b) { cur = b; }
    void jump(BlockId target);
    void branch(Reg cond, BlockId if_true, BlockId if_false);

    // ---- structured control flow -------------------------------------

    using BodyFn = std::function<void()>;
    using LoopBodyFn = std::function<void(Reg /*induction*/)>;

    /** if (cond) { then_fn() } else { else_fn() }; else may be null. */
    void ifThenElse(Reg cond, const BodyFn &then_fn,
                    const BodyFn &else_fn = nullptr);

    /**
     * for (i = 0; i < trips; ++i) body(i). @p known_bound controls
     * whether the trip count is recorded for LET estimation.
     */
    void forLoop(std::uint64_t trips, const LoopBodyFn &body,
                 bool known_bound = true);

    /** while (cond_fn()) body(); trip count statically unknown. */
    void whileLoop(const std::function<Reg()> &cond_fn,
                   const BodyFn &body);

    Function &func() { return mod.functions[fidx]; }
    const Function &func() const { return mod.functions[fidx]; }

  private:
    Module &mod;
    std::uint32_t fidx;
    BlockId cur;
    bool finished = false;

    Instr &emit(Instr in);
};

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_BUILDER_HH
