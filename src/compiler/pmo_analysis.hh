/**
 * @file
 * PMO pointer analysis: a flow-insensitive, interprocedural taint
 * analysis that determines, for every Load/Store, which PMOs its
 * address may point into.
 *
 * Rules follow the paper's PM programming assumptions: pointers into
 * a PMO originate from PmoBase (the oid_direct handler); arithmetic
 * propagates PMO-ness; values loaded from PMO p may themselves be
 * pointers into p (no inter-PMO pointers); call arguments flow into
 * parameters and return values flow back.
 */

#ifndef TERP_COMPILER_PMO_ANALYSIS_HH
#define TERP_COMPILER_PMO_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "compiler/ir.hh"

namespace terp {
namespace compiler {

/** Result of the analysis for one module. */
class PmoFacts
{
  public:
    /** Mask (bit i = PmoId i) a register may point into. */
    std::uint64_t regMask(std::uint32_t func, Reg r) const;

    /** Mask of PMOs an instruction may access (Load/Store only). */
    std::uint64_t instrMask(std::uint32_t func, BlockId b,
                            std::size_t instr_idx) const;

    /** Union of instrMask over a whole block. */
    std::uint64_t blockMask(std::uint32_t func, BlockId b) const;

    /** Per-block masks for one function (Analysis input). */
    std::vector<std::uint64_t> blockMasks(std::uint32_t func) const;

    /** Run the analysis over a module. */
    static PmoFacts analyze(const Module &m);

  private:
    const Module *mod = nullptr;
    // masks[f][r] = PMO mask of register r in function f.
    std::vector<std::vector<std::uint64_t>> masks;
    // retMask[f] = mask of values function f may return.
    std::vector<std::uint64_t> retMask;
};

/** Mask bit for one PMO id. */
inline std::uint64_t
pmoBit(pm::PmoId id)
{
    return id < 64 ? (1ULL << id) : 0;
}

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_PMO_ANALYSIS_HH
