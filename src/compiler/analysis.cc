#include "compiler/analysis.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace compiler {

// ----------------------------------------------------------- BlockSet

BlockSet::BlockSet(std::uint32_t n_, bool ones) : n(n_)
{
    w.assign((n + 63) / 64, ones ? ~0ULL : 0ULL);
    if (ones && n % 64 != 0 && !w.empty())
        w.back() &= (1ULL << (n % 64)) - 1;
}

void
BlockSet::set(std::uint32_t i)
{
    w[i / 64] |= 1ULL << (i % 64);
}

void
BlockSet::reset(std::uint32_t i)
{
    w[i / 64] &= ~(1ULL << (i % 64));
}

bool
BlockSet::test(std::uint32_t i) const
{
    return (w[i / 64] >> (i % 64)) & 1;
}

void
BlockSet::intersectWith(const BlockSet &o)
{
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] &= o.w[i];
}

void
BlockSet::unionWith(const BlockSet &o)
{
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] |= o.w[i];
}

std::uint32_t
BlockSet::count() const
{
    std::uint32_t c = 0;
    for (std::uint64_t word : w)
        c += static_cast<std::uint32_t>(__builtin_popcountll(word));
    return c;
}

// -------------------------------------------------------- instr costs

Cycles
instrCost(const Instr &in)
{
    switch (in.op) {
      case Op::Load:
      case Op::Store:
        // Conservative: assume an uncached NVM access (Table II), so
        // LET never underestimates the exposure a region creates.
        return latency::nvm;
      case Op::CondAttach:
      case Op::CondDetach:
        return latency::silentCond;
      case Op::Call:
        return 20; // call overhead; callee LET added by Analysis
      case Op::Div:
      case Op::Rem:
        return 10;
      default:
        return 1;
    }
}

// ------------------------------------------------------------ Analysis

Analysis::Analysis(const Function &f,
                   std::vector<std::uint64_t> block_pmo,
                   const std::map<std::uint32_t, Cycles> &call_let)
    : func(&f), pmoMask(std::move(block_pmo)), calleeLet(call_let),
      reach(f.blockCount())
{
    TERP_ASSERT(pmoMask.size() == f.blockCount(),
                "pmo mask size mismatch");
    computePreds();
    computeReach();
    computeDom();
    computePdom();
    computeLoops();
    computeCosts();
}

void
Analysis::computePreds()
{
    predecessors.assign(func->blockCount(), {});
    for (BlockId b = 0; b < func->blockCount(); ++b)
        for (BlockId s : func->successors(b))
            predecessors[s].push_back(b);
}

void
Analysis::computeReach()
{
    std::vector<BlockId> stack{0};
    reach.set(0);
    while (!stack.empty()) {
        BlockId b = stack.back();
        stack.pop_back();
        for (BlockId s : func->successors(b)) {
            if (!reach.test(s)) {
                reach.set(s);
                stack.push_back(s);
            }
        }
    }
}

void
Analysis::computeDom()
{
    const std::uint32_t n = func->blockCount();
    dom.assign(n, BlockSet(n, true));
    dom[0] = BlockSet(n);
    dom[0].set(0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 1; b < n; ++b) {
            if (!reach.test(b))
                continue;
            BlockSet nd(n, true);
            bool any = false;
            for (BlockId p : predecessors[b]) {
                if (!reach.test(p))
                    continue;
                nd.intersectWith(dom[p]);
                any = true;
            }
            if (!any)
                nd = BlockSet(n);
            nd.set(b);
            if (!(nd == dom[b])) {
                dom[b] = nd;
                changed = true;
            }
        }
    }
}

void
Analysis::computePdom()
{
    const std::uint32_t n = func->blockCount();
    pdom.assign(n, BlockSet(n, true));
    for (BlockId b = 0; b < n; ++b) {
        if (func->successors(b).empty()) {
            pdom[b] = BlockSet(n);
            pdom[b].set(b);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < n; ++b) {
            if (!reach.test(b) || func->successors(b).empty())
                continue;
            BlockSet np(n, true);
            for (BlockId s : func->successors(b))
                np.intersectWith(pdom[s]);
            np.set(b);
            if (!(np == pdom[b])) {
                pdom[b] = np;
                changed = true;
            }
        }
    }
}

void
Analysis::computeLoops()
{
    for (BlockId b = 0; b < func->blockCount(); ++b) {
        if (!reach.test(b))
            continue;
        for (BlockId s : func->successors(b)) {
            if (dom[b].test(s)) { // s dominates b: back edge b -> s
                backEdges.insert({b, s});
                loopHeaders.insert(s);
            }
        }
    }
}

void
Analysis::computeCosts()
{
    blockCost.assign(func->blockCount(), 0);
    for (BlockId b = 0; b < func->blockCount(); ++b) {
        Cycles c = 0;
        for (const Instr &in : func->block(b).instrs) {
            c += instrCost(in);
            if (in.op == Op::Call) {
                auto it = calleeLet.find(in.callee);
                if (it != calleeLet.end())
                    c += it->second;
            }
        }
        blockCost[b] = c;
    }
}

bool
Analysis::dominates(BlockId a, BlockId b) const
{
    return dom[b].test(a);
}

bool
Analysis::postdominates(BlockId a, BlockId b) const
{
    return pdom[b].test(a);
}

BlockId
Analysis::idom(BlockId b) const
{
    BlockId best = noBlock;
    std::uint32_t best_sz = 0;
    for (BlockId c = 0; c < func->blockCount(); ++c) {
        if (c == b || !dom[b].test(c))
            continue;
        std::uint32_t sz = dom[c].count();
        if (best == noBlock || sz > best_sz) {
            best = c;
            best_sz = sz;
        }
    }
    return best;
}

BlockId
Analysis::ipdom(BlockId b) const
{
    BlockId best = noBlock;
    std::uint32_t best_sz = 0;
    for (BlockId c = 0; c < func->blockCount(); ++c) {
        if (c == b || !pdom[b].test(c))
            continue;
        std::uint32_t sz = pdom[c].count();
        if (best == noBlock || sz > best_sz) {
            best = c;
            best_sz = sz;
        }
    }
    return best;
}

BlockId
Analysis::nearestCommonDominator(const std::vector<BlockId> &s) const
{
    TERP_ASSERT(!s.empty());
    BlockSet common = dom[s[0]];
    for (std::size_t i = 1; i < s.size(); ++i)
        common.intersectWith(dom[s[i]]);
    BlockId best = noBlock;
    std::uint32_t best_sz = 0;
    for (BlockId c = 0; c < func->blockCount(); ++c) {
        if (!common.test(c))
            continue;
        std::uint32_t sz = dom[c].count();
        if (best == noBlock || sz > best_sz) {
            best = c;
            best_sz = sz;
        }
    }
    return best;
}

BlockId
Analysis::nearestCommonPostdominator(
    const std::vector<BlockId> &s) const
{
    TERP_ASSERT(!s.empty());
    BlockSet common = pdom[s[0]];
    for (std::size_t i = 1; i < s.size(); ++i)
        common.intersectWith(pdom[s[i]]);
    BlockId best = noBlock;
    std::uint32_t best_sz = 0;
    for (BlockId c = 0; c < func->blockCount(); ++c) {
        if (!common.test(c))
            continue;
        std::uint32_t sz = pdom[c].count();
        if (best == noBlock || sz > best_sz) {
            best = c;
            best_sz = sz;
        }
    }
    return best;
}

bool
Analysis::isLoopHeader(BlockId b) const
{
    return loopHeaders.count(b) != 0;
}

bool
Analysis::isBackEdge(BlockId from, BlockId to) const
{
    return backEdges.count({from, to}) != 0;
}

std::uint64_t
Analysis::tripCount(BlockId header) const
{
    auto it = func->loopBound.find(header);
    return it == func->loopBound.end() ? assumedLoopTrips : it->second;
}

std::vector<BlockId>
Analysis::regionBlocks(BlockId h) const
{
    BlockId x = ipdom(h);
    std::vector<BlockId> out;
    for (BlockId b = 0; b < func->blockCount(); ++b) {
        if (!reach.test(b) || b == x)
            continue;
        if (!dom[b].test(h))
            continue;
        if (x != noBlock && !pdom[b].test(x))
            continue;
        out.push_back(b);
    }
    return out;
}

std::uint64_t
Analysis::regionPmoMask(BlockId h) const
{
    std::uint64_t m = 0;
    for (BlockId b : regionBlocks(h))
        m |= pmoMask[b];
    return m;
}

bool
Analysis::regionHasCall(BlockId h) const
{
    for (BlockId b : regionBlocks(h))
        for (const Instr &in : func->block(b).instrs)
            if (in.op == Op::Call)
                return true;
    return false;
}

Cycles
Analysis::blockLet(BlockId b) const
{
    return blockCost[b];
}

Cycles
Analysis::iterCost(BlockId h) const
{
    // Longest path from h through its loop body back to a latch,
    // following forward edges only; nested loop headers collapse.
    std::map<BlockId, Cycles> memo;
    // pathCost ends at back edges, which is exactly a latch-bounded
    // walk when started from the header with target noBlock but
    // constrained to the loop; approximate by walking until a back
    // edge to h is the only continuation.
    struct Walker
    {
        const Analysis &an;
        BlockId h;
        std::map<BlockId, Cycles> memo;
        std::set<BlockId> visiting;

        Cycles
        walk(BlockId b)
        {
            auto it = memo.find(b);
            if (it != memo.end())
                return it->second;
            if (visiting.count(b))
                return 0; // irreducible cycle: cut the path
            visiting.insert(b);

            Cycles c;
            Cycles best;
            if (b != h && an.isLoopHeader(b)) {
                c = an.loopCost(b);
                BlockId nxt = an.ipdom(b);
                best = c;
                if (nxt != noBlock && nxt != h &&
                    an.dominates(h, nxt)) {
                    best = c + walk(nxt);
                }
            } else {
                c = an.blockCost[b];
                best = c;
                for (BlockId s : an.func->successors(b)) {
                    if (s == h)
                        continue; // reached the latch edge
                    if (an.isBackEdge(b, s))
                        continue;
                    if (!an.dominates(h, s))
                        continue; // left the loop
                    best = std::max(best, c + walk(s));
                }
            }
            visiting.erase(b);
            memo[b] = best;
            return best;
        }
    };
    Walker w{*this, h, {}, {}};
    return w.walk(h);
}

Cycles
Analysis::loopCost(BlockId h) const
{
    return tripCount(h) * iterCost(h);
}

Cycles
Analysis::pathCost(BlockId b, BlockId to,
                   std::map<BlockId, Cycles> &memo) const
{
    if (b == to)
        return 0;
    auto it = memo.find(b);
    if (it != memo.end())
        return it->second;
    memo[b] = 0; // cycle guard

    Cycles best;
    if (isLoopHeader(b)) {
        Cycles c = loopCost(b);
        BlockId nxt = ipdom(b);
        best = c;
        if (nxt != noBlock)
            best = c + pathCost(nxt, to, memo);
    } else {
        Cycles c = blockCost[b];
        best = c;
        for (BlockId s : func->successors(b)) {
            if (isBackEdge(b, s))
                continue;
            best = std::max(best, c + pathCost(s, to, memo));
        }
    }
    memo[b] = best;
    return best;
}

Cycles
Analysis::letBetween(BlockId from, BlockId to) const
{
    std::map<BlockId, Cycles> memo;
    return pathCost(from, to, memo);
}

Cycles
Analysis::regionLet(BlockId h) const
{
    return letBetween(h, ipdom(h));
}

} // namespace compiler
} // namespace terp
