/**
 * @file
 * Per-function CFG analysis: predecessors, reachability, dominators
 * and post-dominators (iterative bit-vector dataflow), natural-loop
 * detection, and the longest-execution-time (LET) estimator of
 * Section V-A, which assumes 1000 iterations for loops whose trip
 * count is statically unknown.
 */

#ifndef TERP_COMPILER_ANALYSIS_HH
#define TERP_COMPILER_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/units.hh"
#include "compiler/ir.hh"

namespace terp {
namespace compiler {

/** Dense bitset over block ids. */
class BlockSet
{
  public:
    explicit BlockSet(std::uint32_t n = 0, bool ones = false);

    void set(std::uint32_t i);
    void reset(std::uint32_t i);
    bool test(std::uint32_t i) const;
    void intersectWith(const BlockSet &o);
    void unionWith(const BlockSet &o);
    bool operator==(const BlockSet &o) const { return w == o.w; }
    std::uint32_t count() const;
    std::uint32_t size() const { return n; }

  private:
    std::uint32_t n;
    std::vector<std::uint64_t> w;
};

/** Trip count assumed for loops with unknown static bounds. */
constexpr std::uint64_t assumedLoopTrips = 1000;

/** Per-instruction LET costs (conservative cycles). */
Cycles instrCost(const Instr &in);

/** All derived facts about one function's CFG. */
class Analysis
{
  public:
    /**
     * @param f          The function (not owned; must outlive this).
     * @param block_pmo  Per-block mask of PMOs accessed (bit i =
     *                   PmoId i), from the module pointer analysis.
     * @param call_let   LET of each callee function (by index), used
     *                   to cost Call instructions.
     */
    Analysis(const Function &f,
             std::vector<std::uint64_t> block_pmo,
             const std::map<std::uint32_t, Cycles> &call_let = {});

    const Function &function() const { return *func; }

    // ---- CFG facts ----------------------------------------------------

    const std::vector<std::vector<BlockId>> &preds() const
    {
        return predecessors;
    }
    bool reachable(BlockId b) const { return reach.test(b); }

    // ---- dominance ------------------------------------------------------

    bool dominates(BlockId a, BlockId b) const;
    bool postdominates(BlockId a, BlockId b) const;

    /** Immediate dominator (noBlock for the entry). */
    BlockId idom(BlockId b) const;

    /** Immediate postdominator (noBlock if b ends the function). */
    BlockId ipdom(BlockId b) const;

    /** Nearest common dominator of a nonempty set. */
    BlockId nearestCommonDominator(const std::vector<BlockId> &s) const;

    /** Nearest common postdominator; noBlock = function end. */
    BlockId
    nearestCommonPostdominator(const std::vector<BlockId> &s) const;

    // ---- loops ----------------------------------------------------------

    bool isLoopHeader(BlockId b) const;
    bool isBackEdge(BlockId from, BlockId to) const;

    /** Trip count of a loop header (assumedLoopTrips if unknown). */
    std::uint64_t tripCount(BlockId header) const;

    // ---- regions (dominance-based, cf. Section V-A) ---------------------

    /**
     * The code region headed by @p h: blocks dominated by h and
     * postdominated by ipdom(h) (all dominated blocks when h has no
     * ipdom). h itself is included; the exit block is not.
     */
    std::vector<BlockId> regionBlocks(BlockId h) const;

    /** PMO-access mask of the whole region headed by h. */
    std::uint64_t regionPmoMask(BlockId h) const;

    /** Does the region headed by h contain any Call instruction? */
    bool regionHasCall(BlockId h) const;

    // ---- LET -------------------------------------------------------------

    /** LET of one basic block's straight-line body. */
    Cycles blockLet(BlockId b) const;

    /**
     * Longest execution time from the entry of @p from to the entry
     * of @p to (noBlock = function end), collapsing inner loops via
     * their trip counts.
     */
    Cycles letBetween(BlockId from, BlockId to) const;

    /** LET of the region headed by h (entry of h to its exit). */
    Cycles regionLet(BlockId h) const;

    /** PMO mask of a single block. */
    std::uint64_t blockPmo(BlockId b) const { return pmoMask.at(b); }

  private:
    const Function *func;
    std::vector<std::uint64_t> pmoMask;
    std::map<std::uint32_t, Cycles> calleeLet;

    std::vector<std::vector<BlockId>> predecessors;
    BlockSet reach;
    std::vector<BlockSet> dom;  //!< dom[b] = dominators of b
    std::vector<BlockSet> pdom; //!< pdom[b] = postdominators of b
    std::set<BlockId> loopHeaders;
    std::set<std::pair<BlockId, BlockId>> backEdges;
    std::vector<Cycles> blockCost;

    void computePreds();
    void computeReach();
    void computeDom();
    void computePdom();
    void computeLoops();
    void computeCosts();

    /** Longest path helper; loop headers (except start) collapse. */
    Cycles pathCost(BlockId b, BlockId to,
                    std::map<BlockId, Cycles> &memo) const;

    /** One full execution of the loop headed by h. */
    Cycles loopCost(BlockId h) const;

    /** Longest single-iteration path from h back to a latch. */
    Cycles iterCost(BlockId h) const;
};

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_ANALYSIS_HH
