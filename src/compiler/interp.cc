#include "compiler/interp.hh"

#include "common/logging.hh"

namespace terp {
namespace compiler {

Interpreter::Interpreter(const Module &m, core::Runtime &rt_,
                         sim::Machine &mach_, MemoryImage &mem_,
                         std::uint32_t entry,
                         std::vector<std::uint64_t> args,
                         std::uint64_t quantum_)
    : mod(&m), rt(&rt_), mach(&mach_), mem(&mem_), quantum(quantum_)
{
    const Function &f = m.function(entry);
    TERP_ASSERT(args.size() <= f.nParams, "too many arguments");
    Frame fr;
    fr.fn = entry;
    fr.regs.assign(f.nRegs, 0);
    for (std::size_t i = 0; i < args.size(); ++i)
        fr.regs[i] = args[i];
    stack.push_back(std::move(fr));
}

std::uint64_t
Interpreter::storageKey(std::uint64_t addr) const
{
    if (addr >= pm::PmoManager::arenaBase &&
        addr < pm::PmoManager::arenaBase + pm::PmoManager::arenaSize) {
        const pm::Pmo *p = rt->pmoManager().findByVaddr(addr);
        if (p)
            return pm::Oid(p->id(), addr - p->vaddrBase()).raw;
    }
    return addr;
}

bool
Interpreter::memAccess(sim::ThreadContext &tc, std::uint64_t addr,
                       bool write)
{
    core::AccessOutcome o = core::AccessOutcome::Ok;
    if (addr >= pm::PmoManager::arenaBase &&
        addr < pm::PmoManager::arenaBase + pm::PmoManager::arenaSize) {
        // A raw virtual address — the shape attacker-injected
        // pointers take. Goes through the full matrix/MPK checks and
        // fails if the mapping moved or permissions are closed.
        o = rt->tryAccessVaddr(tc, addr, write);
    } else if (MemoryImage::isPmoPointer(addr)) {
        o = rt->tryAccess(tc, pm::Oid::fromRaw(addr), write);
    } else {
        mach->access(tc, sim::MemAccess{
                             MemoryImage::dramVirtBase + addr,
                             MemoryImage::dramPhysBase + addr, write,
                             sim::MemKind::Dram});
        return true;
    }
    if (o != core::AccessOutcome::Ok) {
        ++nFaults;
        if (!trapFaults) {
            TERP_PANIC("IR program PMO access fault: ",
                       core::accessOutcomeName(o), " at ", addr);
        }
        return false;
    }
    return true;
}

bool
Interpreter::step(sim::ThreadContext &tc)
{
    if (doneFlag)
        return false;

    for (std::uint64_t budget = 0; budget < quantum; ++budget) {
        if (stack.empty()) {
            doneFlag = true;
            return false;
        }

        Frame &fr = stack.back();
        const Function &f = mod->function(fr.fn);
        const Instr &in = f.block(fr.block).instrs.at(fr.idx);
        auto val = [&](Reg r) -> std::uint64_t {
            return r == noReg ? 0 : fr.regs.at(r);
        };

        switch (in.op) {
          case Op::Const:
            fr.regs[in.dst] = static_cast<std::uint64_t>(in.imm);
            mach->execute(tc, 1);
            break;
          case Op::Mov:
            fr.regs[in.dst] = val(in.ra);
            mach->execute(tc, 1);
            break;
          case Op::Add:
            fr.regs[in.dst] = val(in.ra) + val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::Sub:
            fr.regs[in.dst] = val(in.ra) - val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::Mul:
            fr.regs[in.dst] = val(in.ra) * val(in.rb);
            mach->execute(tc, 3);
            break;
          case Op::Div:
            fr.regs[in.dst] =
                val(in.rb) ? val(in.ra) / val(in.rb) : 0;
            mach->execute(tc, 10);
            break;
          case Op::Rem:
            fr.regs[in.dst] =
                val(in.rb) ? val(in.ra) % val(in.rb) : 0;
            mach->execute(tc, 10);
            break;
          case Op::And:
            fr.regs[in.dst] = val(in.ra) & val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::Or:
            fr.regs[in.dst] = val(in.ra) | val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::Xor:
            fr.regs[in.dst] = val(in.ra) ^ val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::Shl:
            fr.regs[in.dst] = val(in.ra) << (val(in.rb) & 63);
            mach->execute(tc, 1);
            break;
          case Op::Shr:
            fr.regs[in.dst] = val(in.ra) >> (val(in.rb) & 63);
            mach->execute(tc, 1);
            break;
          case Op::CmpEq:
            fr.regs[in.dst] = val(in.ra) == val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::CmpNe:
            fr.regs[in.dst] = val(in.ra) != val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::CmpLt:
            fr.regs[in.dst] = val(in.ra) < val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::CmpLe:
            fr.regs[in.dst] = val(in.ra) <= val(in.rb);
            mach->execute(tc, 1);
            break;
          case Op::PmoBase:
            fr.regs[in.dst] =
                pm::Oid(in.pmo,
                        static_cast<std::uint64_t>(in.imm)).raw;
            mach->execute(tc, 1);
            break;
          case Op::DramBase:
            fr.regs[in.dst] = static_cast<std::uint64_t>(in.imm);
            mach->execute(tc, 1);
            break;
          case Op::Load: {
            std::uint64_t addr = val(in.ra);
            bool ok = memAccess(tc, addr, false);
            fr.regs[in.dst] = ok ? mem->peek(storageKey(addr)) : 0;
            mach->execute(tc, 1);
            break;
          }
          case Op::Store: {
            std::uint64_t addr = val(in.ra);
            bool ok = memAccess(tc, addr, true);
            if (ok)
                mem->poke(storageKey(addr), val(in.rb));
            mach->execute(tc, 1);
            break;
          }
          case Op::CondAttach: {
            core::GuardResult r =
                rt->regionBegin(tc, in.pmo, in.mode);
            if (r == core::GuardResult::Blocked) {
                // Retry this instruction when the thread is woken.
                return true;
            }
            break;
          }
          case Op::CondDetach:
            rt->regionEnd(tc, in.pmo);
            break;
          case Op::ManualAttach:
            rt->manualBegin(tc, in.pmo, in.mode);
            break;
          case Op::ManualDetach:
            rt->manualEnd(tc, in.pmo);
            break;
          case Op::Jump:
            fr.block = in.target[0];
            fr.idx = 0;
            mach->execute(tc, 1);
            ++nExec;
            continue;
          case Op::Branch:
            fr.block = val(in.ra) ? in.target[0] : in.target[1];
            fr.idx = 0;
            mach->execute(tc, 1);
            ++nExec;
            continue;
          case Op::Ret: {
            std::uint64_t rv = val(in.ra);
            Reg dst = fr.retDst;
            stack.pop_back();
            mach->execute(tc, 1);
            ++nExec;
            if (stack.empty()) {
                retValue = rv;
                doneFlag = true;
                return false;
            }
            if (dst != noReg)
                stack.back().regs[dst] = rv;
            continue;
          }
          case Op::Call: {
            const Function &callee = mod->function(in.callee);
            Frame nf;
            nf.fn = in.callee;
            nf.regs.assign(callee.nRegs, 0);
            TERP_ASSERT(in.args.size() <= callee.nParams,
                        "call argument count mismatch");
            for (std::size_t a = 0; a < in.args.size(); ++a)
                nf.regs[a] = val(in.args[a]);
            nf.retDst = in.dst;
            ++fr.idx; // return to the next instruction
            mach->execute(tc, 2);
            ++nExec;
            stack.push_back(std::move(nf));
            continue;
          }
          case Op::Nop:
            mach->execute(tc, 1);
            break;
          default:
            TERP_PANIC("unhandled opcode in interpreter");
        }

        ++fr.idx;
        ++nExec;
    }
    return true;
}

} // namespace compiler
} // namespace terp
