#include "compiler/interp.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace terp {
namespace compiler {

namespace {

/** Env flag: unset/empty -> @p dflt; "0" -> false; anything else on. */
bool
envFlag(const char *name, bool dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    return !(v[0] == '0' && v[1] == '\0');
}

/** Opcode universe of the pair profiler (real ops + opAddRun). */
constexpr unsigned kPairOps = static_cast<unsigned>(Op::Nop) + 2;

/**
 * TERP_FUSE_PROFILE=1: dynamic adjacent-opcode-pair histogram — the
 * measurement behind the superinstruction selection (DESIGN.md §14).
 * Every dispatched instruction with a predecessor in the same decoded
 * block counts the (predecessor, self) pair; totals aggregate over
 * all interpreters of the process and dump to stderr at exit.
 * Profiling forces fusion off so the counts describe the unfused
 * instruction stream.
 */
struct PairProfile
{
    std::atomic<std::uint64_t> count[kPairOps][kPairOps] = {};

    ~PairProfile()
    {
        struct Row
        {
            std::uint64_t n;
            unsigned a, b;
        };
        std::vector<Row> rows;
        std::uint64_t total = 0;
        for (unsigned a = 0; a < kPairOps; ++a) {
            for (unsigned b = 0; b < kPairOps; ++b) {
                std::uint64_t n =
                    count[a][b].load(std::memory_order_relaxed);
                if (n) {
                    rows.push_back({n, a, b});
                    total += n;
                }
            }
        }
        std::sort(rows.begin(), rows.end(),
                  [](const Row &x, const Row &y) { return x.n > y.n; });
        auto name = [](unsigned o) {
            return o < static_cast<unsigned>(Op::Nop) + 1
                       ? opName(static_cast<Op>(o))
                       : "AddRun";
        };
        std::fprintf(stderr,
                     "TERP_FUSE_PROFILE: %llu adjacent pairs\n",
                     static_cast<unsigned long long>(total));
        for (std::size_t i = 0; i < rows.size() && i < 24; ++i) {
            std::fprintf(
                stderr, "  %12llu  %5.2f%%  %s,%s\n",
                static_cast<unsigned long long>(rows[i].n),
                100.0 * static_cast<double>(rows[i].n) /
                    static_cast<double>(total ? total : 1),
                name(rows[i].a), name(rows[i].b));
        }
    }
};

PairProfile &
pairProfile()
{
    static PairProfile p;
    return p;
}

bool
pairProfileEnabled()
{
    static const bool on = envFlag("TERP_FUSE_PROFILE", false);
    return on;
}

void
notePair(Op a, Op b)
{
    pairProfile()
        .count[static_cast<unsigned>(a)][static_cast<unsigned>(b)]
        .fetch_add(1, std::memory_order_relaxed);
}

/**
 * TERP_FUSE=0 keeps the unfused interpreter alive for differential
 * testing (and is implied by profiling, whose histogram must
 * describe the unfused stream). Decode-time only: existing decoded
 * images are unaffected by later env changes.
 */
bool
fusionEnabled()
{
    // Re-read per call (decode-time only, so this is cold): the
    // differential tests flip TERP_FUSE between in-process runs.
    return envFlag("TERP_FUSE", true) && !pairProfileEnabled();
}

} // namespace

const char *
Interpreter::fusionKindName(unsigned k)
{
    static const char *const names[kFusionKinds] = {
        "addrun",  "addr4",   "incjump",  "constmul", "muladd",
        "constadd", "addload", "addstore", "dramadd",  "cmpltbranch",
    };
    return k < kFusionKinds ? names[k] : "?";
}

std::uint64_t
Interpreter::fusedDispatches() const
{
    std::uint64_t n = 0;
    for (unsigned k = 0; k < kFusionKinds; ++k)
        n += fuseHits[k];
    return n;
}

Interpreter::Interpreter(const Module &m, core::Runtime &rt_,
                         sim::Machine &mach_, MemoryImage &mem_,
                         std::uint32_t entry,
                         std::vector<std::uint64_t> args,
                         std::uint64_t quantum_)
    : mod(&m), rt(&rt_), mach(&mach_), mem(&mem_), quantum(quantum_)
{
    dfuncs.resize(m.functions.size());
    for (std::uint32_t i = 0; i < m.functions.size(); ++i)
        decodeFunction(i);

    const Function &f = m.function(entry);
    TERP_ASSERT(args.size() <= f.nParams, "too many arguments");
    Frame fr;
    fr.fn = entry;
    fr.regs.assign(f.nRegs + 1, 0); // +1: phantom zero register
    for (std::size_t i = 0; i < args.size(); ++i)
        fr.regs[i] = args[i];
    bindBlock(fr);
    stack.push_back(std::move(fr));
}

void
Interpreter::decodeFunction(std::uint32_t i)
{
    const Function &f = mod->function(i);
    DFunc &df = dfuncs[i];
    df.nRegs = f.nRegs;
    // Phantom always-zero register (see DFunc doc): rewriting noReg
    // operands to it lets the dispatch loop index regs[] without a
    // sentinel branch.
    const Reg zr = f.nRegs;
    auto z = [zr](Reg r) { return r == noReg ? zr : r; };
    df.blocks.reserve(f.blocks.size());
    for (const BasicBlock &bb : f.blocks) {
        // Proven here so the dispatch loop needs no per-instruction
        // bounds check: execution can only leave a block through its
        // terminator (a Call resumes at idx+1, which stays inside
        // the block because Call is not a terminator).
        TERP_ASSERT(!bb.instrs.empty() &&
                        isTerminator(bb.instrs.back().op),
                    "unterminated basic block reached the ",
                    "interpreter in function ", f.name);
        df.blocks.emplace_back(
            static_cast<std::uint32_t>(df.code.size()),
            static_cast<std::uint32_t>(bb.instrs.size()));
        for (const Instr &in : bb.instrs) {
            DInstr d;
            d.op = in.op;
            d.dst = in.dst;
            d.ra = in.ra;
            d.rb = in.rb;
            d.mode = in.mode;
            d.aux = in.imm;
            switch (in.op) {
              case Op::PmoBase:
              case Op::CondAttach:
              case Op::CondDetach:
              case Op::ManualAttach:
              case Op::ManualDetach:
                d.ra = in.pmo;
                break;
              case Op::Jump:
                d.aux = in.target[0];
                break;
              case Op::Call: {
                const Function &callee = mod->function(in.callee);
                TERP_ASSERT(in.args.size() <= callee.nParams,
                            "call argument count mismatch");
                d.ra = in.callee;
                d.rb = static_cast<Reg>(df.callArgs.size());
                d.nArgs = static_cast<std::uint16_t>(in.args.size());
                for (Reg a : in.args)
                    df.callArgs.push_back(z(a));
                break;
              }
              case Op::Mov:
              case Op::Load:
              case Op::Ret:
                d.ra = z(d.ra);
                break;
              case Op::Branch:
                d.ra = z(d.ra);
                d.aux = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(in.target[0]) |
                    (static_cast<std::uint64_t>(in.target[1]) << 32));
                break;
              default:
                d.ra = z(d.ra);
                d.rb = z(d.rb);
                break;
            }
            df.code.push_back(d);
        }

        // Run-length-fuse self-add busy work (see opAddRun): mark
        // each run of identical `add d, d, d`. Runs never cross a
        // block boundary (blocks end in a terminator, which is not
        // an Add). With fusion on, every member becomes a resume
        // head carrying the remaining run length, so a quantum
        // boundary mid-run costs one extra dispatch instead of one
        // per remaining add.
        const bool fuseOn = fusionEnabled();
        const std::size_t start = df.blocks.back().first;
        const std::size_t end = df.code.size();
        for (std::size_t a = start; a < end;) {
            const DInstr &h = df.code[a];
            if (h.op != Op::Add || h.ra != h.dst || h.rb != h.dst) {
                ++a;
                continue;
            }
            std::size_t b = a + 1;
            while (b < end && df.code[b].op == Op::Add &&
                   df.code[b].dst == h.dst &&
                   df.code[b].ra == h.dst && df.code[b].rb == h.dst)
                ++b;
            if (b - a > 1) {
                if (fuseOn) {
                    ++fuseSites;
                    for (std::size_t p = a; p < b; ++p) {
                        df.code[p].op = opAddRun;
                        df.code[p].aux =
                            static_cast<std::int64_t>(b - p);
                    }
                } else {
                    df.code[a].op = opAddRun;
                    df.code[a].aux = static_cast<std::int64_t>(b - a);
                }
            }
            a = b;
        }

        // Superinstruction peephole (DESIGN.md §14): rewrite the head
        // of each matched sequence to its fused opcode; constituents
        // stay in place, keyed by their original opcodes, as resume
        // targets. Rules are tried longest-first so the 4-wide
        // address-compute chain beats its constituent pairs. Matching
        // is on opcodes alone — the fused handlers replicate the
        // constituent semantics from the constituents' own operand
        // fields, so no data-flow precondition is required.
        if (fuseOn) {
            struct FuseRule
            {
                Op fused;
                unsigned len;
                Op seq[4];
            };
            static const FuseRule rules[] = {
                {opFuseAddr4, 4,
                 {Op::PmoBase, Op::Const, Op::Mul, Op::Add}},
                {opFuseIncJump, 3,
                 {Op::Const, Op::Add, Op::Jump, Op::Nop}},
                {opFuseConstMul, 2,
                 {Op::Const, Op::Mul, Op::Nop, Op::Nop}},
                {opFuseMulAdd, 2,
                 {Op::Mul, Op::Add, Op::Nop, Op::Nop}},
                {opFuseConstAdd, 2,
                 {Op::Const, Op::Add, Op::Nop, Op::Nop}},
                {opFuseAddLoad, 2,
                 {Op::Add, Op::Load, Op::Nop, Op::Nop}},
                {opFuseAddStore, 2,
                 {Op::Add, Op::Store, Op::Nop, Op::Nop}},
                {opFuseDramAdd, 2,
                 {Op::DramBase, Op::Add, Op::Nop, Op::Nop}},
                {opFuseCmpltBr, 2,
                 {Op::CmpLt, Op::Branch, Op::Nop, Op::Nop}},
            };
            for (std::size_t a = start; a < end;) {
                const FuseRule *hit = nullptr;
                for (const FuseRule &r : rules) {
                    if (a + r.len > end)
                        continue;
                    bool m = true;
                    for (unsigned i = 0; i < r.len; ++i) {
                        if (df.code[a + i].op != r.seq[i]) {
                            m = false;
                            break;
                        }
                    }
                    if (m) {
                        hit = &r;
                        break;
                    }
                }
                if (hit) {
                    ++fuseSites;
                    df.code[a].op = hit->fused;
                    a += hit->len;
                } else {
                    ++a;
                }
            }
        }
    }
}

void
Interpreter::bindBlock(Frame &fr)
{
    const DFunc &df = dfuncs[fr.fn];
    const auto &span = df.blocks.at(fr.block);
    fr.code = df.code.data() + span.first;
    fr.codeLen = span.second;
}

std::uint64_t
Interpreter::storageKey(std::uint64_t addr) const
{
    if (addr >= pm::PmoManager::arenaBase &&
        addr < pm::PmoManager::arenaBase + pm::PmoManager::arenaSize) {
        const pm::Pmo *p = rt->pmoManager().findByVaddr(addr);
        if (p)
            return pm::Oid(p->id(), addr - p->vaddrBase()).raw;
    }
    return addr;
}

bool
Interpreter::memAccess(sim::ThreadContext &tc, std::uint64_t addr,
                       bool write)
{
    core::AccessOutcome o = core::AccessOutcome::Ok;
    if (addr >= pm::PmoManager::arenaBase &&
        addr < pm::PmoManager::arenaBase + pm::PmoManager::arenaSize) {
        // A raw virtual address — the shape attacker-injected
        // pointers take. Goes through the full matrix/MPK checks and
        // fails if the mapping moved or permissions are closed.
        o = rt->tryAccessVaddr(tc, addr, write);
    } else if (MemoryImage::isPmoPointer(addr)) {
        o = rt->tryAccess(tc, pm::Oid::fromRaw(addr), write);
    } else {
        mach->access(tc, sim::MemAccess{
                             MemoryImage::dramVirtBase + addr,
                             MemoryImage::dramPhysBase + addr, write,
                             sim::MemKind::Dram});
        return true;
    }
    if (o != core::AccessOutcome::Ok) {
        ++nFaults;
        if (!trapFaults) {
            TERP_PANIC("IR program PMO access fault: ",
                       core::accessOutcomeName(o), " at ", addr);
        }
        return false;
    }
    return true;
}

bool
Interpreter::step(sim::ThreadContext &tc)
{
    if (doneFlag)
        return false;
    if (stack.empty()) {
        doneFlag = true;
        return false;
    }

    // Deferred instruction-time accounting. Pure ALU / control-flow
    // instructions only ever add n*cpi cycles of Work to the thread;
    // nothing observes the clock between two of them, so their
    // charges accumulate here and flush in one Machine::execute call
    // at the next observation point (memory access, region op, or
    // quantum end). With a dyadic cpi (the 0.5 of the 4-wide model)
    // every intermediate value is exactly representable, so
    // execute(a); execute(b) and execute(a+b) produce bit-identical
    // clocks and carries — verified against the per-instruction
    // charging by the bench oracles and the differential fuzzer.
    std::uint64_t pending = 0;
#define TERP_FLUSH()                                                   \
    do {                                                               \
        if (pending) {                                                 \
            mach->execute(tc, pending);                                \
            pending = 0;                                               \
        }                                                              \
    } while (0)

    // Hot interpreter state lives in locals: the top frame, program
    // counter, and the current block's code / register file pointers.
    // The executed-instruction count is derived from `budget` at the
    // exits (each dispatch runs one instruction to completion, bar a
    // blocked region entry). Locals are committed back to (or
    // reloaded from) the frame only when something could observe or
    // change them —
    // control transfers, blocking, quantum end. Register buffers
    // never move while their frame is live (Frame moves transfer the
    // heap allocation), so the cached pointers stay valid until
    // TERP_RELOAD() refreshes them after a frame or block switch.
    Frame *frp = &stack.back();
    std::size_t idx = frp->idx;
    std::uint64_t budget = 0;
    const DInstr *code = frp->code;
    std::uint64_t *regs = frp->regs.data();
    const DInstr *inp = nullptr;
    const bool prof = pairProfileEnabled();

#define TERP_RELOAD()                                                  \
    do {                                                               \
        code = frp->code;                                              \
        regs = frp->regs.data();                                       \
    } while (0)

    // Advance to the next constituent inside a fused handler. Mirrors
    // one TERP_NEXT + dispatch preamble: step the pc, and if the
    // quantum is exhausted exit through quantum_end — idx then points
    // at the next, not-yet-executed constituent, whose slot still
    // carries its *original* opcode, so the resumed step() re-enters
    // the sequence mid-way with exactly the unfused semantics. The
    // budget increment mirrors the one TERP_DISPATCH charges per
    // instruction.
#define TERP_FUSE_STEP()                                               \
    do {                                                               \
        ++idx;                                                         \
        ++inp;                                                         \
        if (budget == quantum)                                         \
            goto quantum_end;                                          \
        ++budget;                                                      \
    } while (0)

#if defined(__GNUC__)
    // Threaded dispatch (GNU labels-as-values): each handler jumps
    // straight to the next handler through a per-site indirect
    // branch, which predicts far better on the long ALU runs of the
    // synthetic kernels than one shared switch branch. The #else
    // branch keeps a portable switch with the exact same handler
    // bodies (shared via the TERP_CASE / TERP_NEXT / TERP_DISPATCH
    // macros).
    static const void *const jt[] = {
        &&op_Const, &&op_Mov, &&op_Add, &&op_Sub, &&op_Mul,
        &&op_Div, &&op_Rem, &&op_And, &&op_Or, &&op_Xor,
        &&op_Shl, &&op_Shr, &&op_CmpEq, &&op_CmpNe, &&op_CmpLt,
        &&op_CmpLe, &&op_Load, &&op_Store, &&op_PmoBase,
        &&op_DramBase, &&op_Jump, &&op_Branch, &&op_Ret, &&op_Call,
        &&op_CondAttach, &&op_CondDetach, &&op_ManualAttach,
        &&op_ManualDetach, &&op_Nop, &&op_AddRun,
        &&op_FuseAddr4, &&op_FuseIncJump, &&op_FuseConstMul,
        &&op_FuseMulAdd, &&op_FuseConstAdd, &&op_FuseAddLoad,
        &&op_FuseAddStore, &&op_FuseDramAdd, &&op_FuseCmpltBr,
    };
    static_assert(sizeof(jt) / sizeof(jt[0]) ==
                      static_cast<unsigned>(opFuseCmpltBr) + 1,
                  "jump table must cover every opcode");

#define TERP_CASE(name) op_##name:
#define TERP_DISPATCH()                                                \
    do {                                                               \
        if (budget == quantum)                                         \
            goto quantum_end;                                          \
        ++budget;                                                      \
        inp = &code[idx];                                              \
        if (__builtin_expect(prof, 0) && idx != 0)                     \
            notePair(code[idx - 1].op, inp->op);                       \
        goto *jt[static_cast<unsigned>(inp->op)];                      \
    } while (0)
#define TERP_NEXT()                                                    \
    do {                                                               \
        ++idx;                                                         \
        TERP_DISPATCH();                                               \
    } while (0)

    TERP_DISPATCH();
#else
#define TERP_CASE(name) case Op::name:
#define TERP_DISPATCH() continue
#define TERP_NEXT()                                                    \
    do {                                                               \
        ++idx;                                                         \
        continue;                                                      \
    } while (0)

    for (;;) {
        if (budget == quantum)
            goto quantum_end;
        ++budget;
        inp = &code[idx];
        if (prof && idx != 0)
            notePair(code[idx - 1].op, inp->op);
        switch (inp->op) {
#endif

    // Decode rewrote noReg operands to the phantom zero register, so
    // operand reads index regs[] unconditionally.
    TERP_CASE(Const)
    {
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Mov)
    {
        regs[inp->dst] = regs[inp->ra];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Add)
    {
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Sub)
    {
        regs[inp->dst] = regs[inp->ra] - regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Mul)
    {
        regs[inp->dst] = regs[inp->ra] * regs[inp->rb];
        pending += 3;
        TERP_NEXT();
    }
    TERP_CASE(Div)
    {
        regs[inp->dst] =
            regs[inp->rb] ? regs[inp->ra] / regs[inp->rb] : 0;
        pending += 10;
        TERP_NEXT();
    }
    TERP_CASE(Rem)
    {
        regs[inp->dst] =
            regs[inp->rb] ? regs[inp->ra] % regs[inp->rb] : 0;
        pending += 10;
        TERP_NEXT();
    }
    TERP_CASE(And)
    {
        regs[inp->dst] = regs[inp->ra] & regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Or)
    {
        regs[inp->dst] = regs[inp->ra] | regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Xor)
    {
        regs[inp->dst] = regs[inp->ra] ^ regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Shl)
    {
        regs[inp->dst] = regs[inp->ra] << (regs[inp->rb] & 63);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Shr)
    {
        regs[inp->dst] = regs[inp->ra] >> (regs[inp->rb] & 63);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpEq)
    {
        regs[inp->dst] = regs[inp->ra] == regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpNe)
    {
        regs[inp->dst] = regs[inp->ra] != regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpLt)
    {
        regs[inp->dst] = regs[inp->ra] < regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpLe)
    {
        regs[inp->dst] = regs[inp->ra] <= regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Load)
    {
        std::uint64_t addr = regs[inp->ra];
        TERP_FLUSH(); // fault emits carry tc.now() timestamps
        bool ok = memAccess(tc, addr, false);
        regs[inp->dst] = ok ? mem->peek(storageKey(addr)) : 0;
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Store)
    {
        std::uint64_t addr = regs[inp->ra];
        TERP_FLUSH();
        bool ok = memAccess(tc, addr, true);
        if (ok)
            mem->poke(storageKey(addr), regs[inp->rb]);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(PmoBase)
    {
        regs[inp->dst] =
            pm::Oid(inp->ra,
                    static_cast<std::uint64_t>(inp->aux)).raw;
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(DramBase)
    {
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Jump)
    {
        frp->block = static_cast<BlockId>(inp->aux);
        idx = 0;
        bindBlock(*frp);
        TERP_RELOAD();
        pending += 1;
        TERP_DISPATCH();
    }
    TERP_CASE(Branch)
    {
        const auto packed = static_cast<std::uint64_t>(inp->aux);
        frp->block = regs[inp->ra]
                         ? static_cast<BlockId>(packed)
                         : static_cast<BlockId>(packed >> 32);
        idx = 0;
        bindBlock(*frp);
        TERP_RELOAD();
        pending += 1;
        TERP_DISPATCH();
    }
    TERP_CASE(Ret)
    {
        std::uint64_t rv = regs[inp->ra];
        Reg dst = frp->retDst;
        stack.pop_back();
        pending += 1;
        if (stack.empty()) {
            retValue = rv;
            doneFlag = true;
            nExec += budget; // every dispatched instr completed
            TERP_FLUSH();
            return false;
        }
        frp = &stack.back();
        idx = frp->idx; // resume after the Call
        TERP_RELOAD();
        if (dst != noReg)
            regs[dst] = rv;
        TERP_DISPATCH();
    }
    TERP_CASE(Call)
    {
        Frame nf;
        nf.fn = inp->ra;
        nf.regs.assign(dfuncs[inp->ra].nRegs + 1, 0);
        const Reg *cargs =
            dfuncs[frp->fn].callArgs.data() + inp->rb;
        for (std::uint16_t a = 0; a < inp->nArgs; ++a)
            nf.regs[a] = regs[cargs[a]];
        nf.retDst = inp->dst;
        frp->idx = idx + 1; // return to the next instruction
        bindBlock(nf);
        pending += 2;
        stack.push_back(std::move(nf));
        frp = &stack.back();
        idx = 0;
        TERP_RELOAD();
        TERP_DISPATCH();
    }
    TERP_CASE(CondAttach)
    {
        TERP_FLUSH(); // region ops read and stamp tc.now()
        core::GuardResult r =
            rt->regionBegin(tc, inp->ra, inp->mode);
        if (r == core::GuardResult::Blocked) {
            // Retry this instruction when the thread is woken.
            frp->idx = idx;
            nExec += budget - 1; // this instruction did not execute
            return true;
        }
        TERP_NEXT();
    }
    TERP_CASE(CondDetach)
    {
        TERP_FLUSH();
        rt->regionEnd(tc, inp->ra);
        TERP_NEXT();
    }
    TERP_CASE(ManualAttach)
    {
        TERP_FLUSH();
        rt->manualBegin(tc, inp->ra, inp->mode);
        TERP_NEXT();
    }
    TERP_CASE(ManualDetach)
    {
        TERP_FLUSH();
        rt->manualEnd(tc, inp->ra);
        TERP_NEXT();
    }
    TERP_CASE(Nop)
    {
        pending += 1;
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_AddRun:
#else
          case opAddRun:
#endif
    {
        // Head of a fused self-add run (see opAddRun): k doublings of
        // regs[dst] are one shift. The dispatch already counted one
        // instruction toward the quantum; extend by the rest of the
        // run or the remaining quantum, whichever is smaller, so the
        // step still executes exactly `quantum` instructions.
        std::uint64_t t = static_cast<std::uint64_t>(inp->aux);
        const std::uint64_t room = quantum - budget;
        if (t - 1 > room)
            t = room + 1;
        regs[inp->dst] = t < 64 ? regs[inp->dst] << t : 0;
        pending += t;
        budget += t - 1;
        idx += t;
        ++fuseHits[0];
        TERP_DISPATCH();
    }

    // ---- fused superinstructions (DESIGN.md §14) --------------------
    // Each handler is the literal concatenation of its constituent
    // handler bodies with TERP_FUSE_STEP() between them: identical
    // register writes, identical `pending` charges, identical flush
    // points, identical quantum/fault behaviour — only the dispatch
    // overhead between constituents is gone.
#if defined(__GNUC__)
    op_FuseAddr4: // PmoBase; Const; Mul; Add (pmoAddr chain)
#else
          case opFuseAddr4:
#endif
    {
        ++fuseHits[1];
        regs[inp->dst] =
            pm::Oid(inp->ra,
                    static_cast<std::uint64_t>(inp->aux)).raw;
        pending += 1;
        TERP_FUSE_STEP();
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_FUSE_STEP();
        regs[inp->dst] = regs[inp->ra] * regs[inp->rb];
        pending += 3;
        TERP_FUSE_STEP();
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_FuseIncJump: // Const; Add; Jump (loop latch)
#else
          case opFuseIncJump:
#endif
    {
        ++fuseHits[2];
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_FUSE_STEP();
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_FUSE_STEP();
        frp->block = static_cast<BlockId>(inp->aux);
        idx = 0;
        bindBlock(*frp);
        TERP_RELOAD();
        pending += 1;
        TERP_DISPATCH();
    }
#if defined(__GNUC__)
    op_FuseConstMul:
#else
          case opFuseConstMul:
#endif
    {
        ++fuseHits[3];
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_FUSE_STEP();
        regs[inp->dst] = regs[inp->ra] * regs[inp->rb];
        pending += 3;
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_FuseMulAdd:
#else
          case opFuseMulAdd:
#endif
    {
        ++fuseHits[4];
        regs[inp->dst] = regs[inp->ra] * regs[inp->rb];
        pending += 3;
        TERP_FUSE_STEP();
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_FuseConstAdd:
#else
          case opFuseConstAdd:
#endif
    {
        ++fuseHits[5];
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_FUSE_STEP();
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_FuseAddLoad:
#else
          case opFuseAddLoad:
#endif
    {
        ++fuseHits[6];
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_FUSE_STEP();
        {
            std::uint64_t addr = regs[inp->ra];
            TERP_FLUSH();
            bool ok = memAccess(tc, addr, false);
            regs[inp->dst] = ok ? mem->peek(storageKey(addr)) : 0;
            pending += 1;
        }
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_FuseAddStore:
#else
          case opFuseAddStore:
#endif
    {
        ++fuseHits[7];
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_FUSE_STEP();
        {
            std::uint64_t addr = regs[inp->ra];
            TERP_FLUSH();
            bool ok = memAccess(tc, addr, true);
            if (ok)
                mem->poke(storageKey(addr), regs[inp->rb]);
            pending += 1;
        }
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_FuseDramAdd:
#else
          case opFuseDramAdd:
#endif
    {
        ++fuseHits[8];
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_FUSE_STEP();
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_FuseCmpltBr: // CmpLt; Branch (loop header)
#else
          case opFuseCmpltBr:
#endif
    {
        ++fuseHits[9];
        regs[inp->dst] = regs[inp->ra] < regs[inp->rb];
        pending += 1;
        TERP_FUSE_STEP();
        {
            const auto packed = static_cast<std::uint64_t>(inp->aux);
            frp->block = regs[inp->ra]
                             ? static_cast<BlockId>(packed)
                             : static_cast<BlockId>(packed >> 32);
        }
        idx = 0;
        bindBlock(*frp);
        TERP_RELOAD();
        pending += 1;
        TERP_DISPATCH();
    }

#if !defined(__GNUC__)
          default:
            TERP_PANIC("unhandled opcode in interpreter");
        }
    }
#endif

quantum_end:
    frp->idx = idx;
    nExec += budget;
    TERP_FLUSH();
    return true;

#undef TERP_FLUSH
#undef TERP_RELOAD
#undef TERP_FUSE_STEP
#undef TERP_CASE
#undef TERP_DISPATCH
#undef TERP_NEXT
}

} // namespace compiler
} // namespace terp
