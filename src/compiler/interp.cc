#include "compiler/interp.hh"

#include "common/logging.hh"

namespace terp {
namespace compiler {

Interpreter::Interpreter(const Module &m, core::Runtime &rt_,
                         sim::Machine &mach_, MemoryImage &mem_,
                         std::uint32_t entry,
                         std::vector<std::uint64_t> args,
                         std::uint64_t quantum_)
    : mod(&m), rt(&rt_), mach(&mach_), mem(&mem_), quantum(quantum_)
{
    dfuncs.resize(m.functions.size());
    for (std::uint32_t i = 0; i < m.functions.size(); ++i)
        decodeFunction(i);

    const Function &f = m.function(entry);
    TERP_ASSERT(args.size() <= f.nParams, "too many arguments");
    Frame fr;
    fr.fn = entry;
    fr.regs.assign(f.nRegs + 1, 0); // +1: phantom zero register
    for (std::size_t i = 0; i < args.size(); ++i)
        fr.regs[i] = args[i];
    bindBlock(fr);
    stack.push_back(std::move(fr));
}

void
Interpreter::decodeFunction(std::uint32_t i)
{
    const Function &f = mod->function(i);
    DFunc &df = dfuncs[i];
    df.nRegs = f.nRegs;
    // Phantom always-zero register (see DFunc doc): rewriting noReg
    // operands to it lets the dispatch loop index regs[] without a
    // sentinel branch.
    const Reg zr = f.nRegs;
    auto z = [zr](Reg r) { return r == noReg ? zr : r; };
    df.blocks.reserve(f.blocks.size());
    for (const BasicBlock &bb : f.blocks) {
        // Proven here so the dispatch loop needs no per-instruction
        // bounds check: execution can only leave a block through its
        // terminator (a Call resumes at idx+1, which stays inside
        // the block because Call is not a terminator).
        TERP_ASSERT(!bb.instrs.empty() &&
                        isTerminator(bb.instrs.back().op),
                    "unterminated basic block reached the ",
                    "interpreter in function ", f.name);
        df.blocks.emplace_back(
            static_cast<std::uint32_t>(df.code.size()),
            static_cast<std::uint32_t>(bb.instrs.size()));
        for (const Instr &in : bb.instrs) {
            DInstr d;
            d.op = in.op;
            d.dst = in.dst;
            d.ra = in.ra;
            d.rb = in.rb;
            d.mode = in.mode;
            d.aux = in.imm;
            switch (in.op) {
              case Op::PmoBase:
              case Op::CondAttach:
              case Op::CondDetach:
              case Op::ManualAttach:
              case Op::ManualDetach:
                d.ra = in.pmo;
                break;
              case Op::Jump:
                d.aux = in.target[0];
                break;
              case Op::Call: {
                const Function &callee = mod->function(in.callee);
                TERP_ASSERT(in.args.size() <= callee.nParams,
                            "call argument count mismatch");
                d.ra = in.callee;
                d.rb = static_cast<Reg>(df.callArgs.size());
                d.nArgs = static_cast<std::uint16_t>(in.args.size());
                for (Reg a : in.args)
                    df.callArgs.push_back(z(a));
                break;
              }
              case Op::Mov:
              case Op::Load:
              case Op::Ret:
                d.ra = z(d.ra);
                break;
              case Op::Branch:
                d.ra = z(d.ra);
                d.aux = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(in.target[0]) |
                    (static_cast<std::uint64_t>(in.target[1]) << 32));
                break;
              default:
                d.ra = z(d.ra);
                d.rb = z(d.rb);
                break;
            }
            df.code.push_back(d);
        }

        // Run-length-fuse self-add busy work (see opAddRun): mark
        // the head of each run of identical `add d, d, d` with the
        // pseudo-op and the run length. Runs never cross a block
        // boundary (blocks end in a terminator, which is not an Add).
        const std::size_t start = df.blocks.back().first;
        const std::size_t end = df.code.size();
        for (std::size_t a = start; a < end;) {
            const DInstr &h = df.code[a];
            if (h.op != Op::Add || h.ra != h.dst || h.rb != h.dst) {
                ++a;
                continue;
            }
            std::size_t b = a + 1;
            while (b < end && df.code[b].op == Op::Add &&
                   df.code[b].dst == h.dst &&
                   df.code[b].ra == h.dst && df.code[b].rb == h.dst)
                ++b;
            if (b - a > 1) {
                df.code[a].op = opAddRun;
                df.code[a].aux = static_cast<std::int64_t>(b - a);
            }
            a = b;
        }
    }
}

void
Interpreter::bindBlock(Frame &fr)
{
    const DFunc &df = dfuncs[fr.fn];
    const auto &span = df.blocks.at(fr.block);
    fr.code = df.code.data() + span.first;
    fr.codeLen = span.second;
}

std::uint64_t
Interpreter::storageKey(std::uint64_t addr) const
{
    if (addr >= pm::PmoManager::arenaBase &&
        addr < pm::PmoManager::arenaBase + pm::PmoManager::arenaSize) {
        const pm::Pmo *p = rt->pmoManager().findByVaddr(addr);
        if (p)
            return pm::Oid(p->id(), addr - p->vaddrBase()).raw;
    }
    return addr;
}

bool
Interpreter::memAccess(sim::ThreadContext &tc, std::uint64_t addr,
                       bool write)
{
    core::AccessOutcome o = core::AccessOutcome::Ok;
    if (addr >= pm::PmoManager::arenaBase &&
        addr < pm::PmoManager::arenaBase + pm::PmoManager::arenaSize) {
        // A raw virtual address — the shape attacker-injected
        // pointers take. Goes through the full matrix/MPK checks and
        // fails if the mapping moved or permissions are closed.
        o = rt->tryAccessVaddr(tc, addr, write);
    } else if (MemoryImage::isPmoPointer(addr)) {
        o = rt->tryAccess(tc, pm::Oid::fromRaw(addr), write);
    } else {
        mach->access(tc, sim::MemAccess{
                             MemoryImage::dramVirtBase + addr,
                             MemoryImage::dramPhysBase + addr, write,
                             sim::MemKind::Dram});
        return true;
    }
    if (o != core::AccessOutcome::Ok) {
        ++nFaults;
        if (!trapFaults) {
            TERP_PANIC("IR program PMO access fault: ",
                       core::accessOutcomeName(o), " at ", addr);
        }
        return false;
    }
    return true;
}

bool
Interpreter::step(sim::ThreadContext &tc)
{
    if (doneFlag)
        return false;
    if (stack.empty()) {
        doneFlag = true;
        return false;
    }

    // Deferred instruction-time accounting. Pure ALU / control-flow
    // instructions only ever add n*cpi cycles of Work to the thread;
    // nothing observes the clock between two of them, so their
    // charges accumulate here and flush in one Machine::execute call
    // at the next observation point (memory access, region op, or
    // quantum end). With a dyadic cpi (the 0.5 of the 4-wide model)
    // every intermediate value is exactly representable, so
    // execute(a); execute(b) and execute(a+b) produce bit-identical
    // clocks and carries — verified against the per-instruction
    // charging by the bench oracles and the differential fuzzer.
    std::uint64_t pending = 0;
#define TERP_FLUSH()                                                   \
    do {                                                               \
        if (pending) {                                                 \
            mach->execute(tc, pending);                                \
            pending = 0;                                               \
        }                                                              \
    } while (0)

    // Hot interpreter state lives in locals: the top frame, program
    // counter, and the current block's code / register file pointers.
    // The executed-instruction count is derived from `budget` at the
    // exits (each dispatch runs one instruction to completion, bar a
    // blocked region entry). Locals are committed back to (or
    // reloaded from) the frame only when something could observe or
    // change them —
    // control transfers, blocking, quantum end. Register buffers
    // never move while their frame is live (Frame moves transfer the
    // heap allocation), so the cached pointers stay valid until
    // TERP_RELOAD() refreshes them after a frame or block switch.
    Frame *frp = &stack.back();
    std::size_t idx = frp->idx;
    std::uint64_t budget = 0;
    const DInstr *code = frp->code;
    std::uint64_t *regs = frp->regs.data();
    const DInstr *inp = nullptr;

#define TERP_RELOAD()                                                  \
    do {                                                               \
        code = frp->code;                                              \
        regs = frp->regs.data();                                       \
    } while (0)

#if defined(__GNUC__)
    // Threaded dispatch (GNU labels-as-values): each handler jumps
    // straight to the next handler through a per-site indirect
    // branch, which predicts far better on the long ALU runs of the
    // synthetic kernels than one shared switch branch. The #else
    // branch keeps a portable switch with the exact same handler
    // bodies (shared via the TERP_CASE / TERP_NEXT / TERP_DISPATCH
    // macros).
    static const void *const jt[] = {
        &&op_Const, &&op_Mov, &&op_Add, &&op_Sub, &&op_Mul,
        &&op_Div, &&op_Rem, &&op_And, &&op_Or, &&op_Xor,
        &&op_Shl, &&op_Shr, &&op_CmpEq, &&op_CmpNe, &&op_CmpLt,
        &&op_CmpLe, &&op_Load, &&op_Store, &&op_PmoBase,
        &&op_DramBase, &&op_Jump, &&op_Branch, &&op_Ret, &&op_Call,
        &&op_CondAttach, &&op_CondDetach, &&op_ManualAttach,
        &&op_ManualDetach, &&op_Nop, &&op_AddRun,
    };
    static_assert(sizeof(jt) / sizeof(jt[0]) ==
                      static_cast<unsigned>(opAddRun) + 1,
                  "jump table must cover every opcode");

#define TERP_CASE(name) op_##name:
#define TERP_DISPATCH()                                                \
    do {                                                               \
        if (budget == quantum)                                         \
            goto quantum_end;                                          \
        ++budget;                                                      \
        inp = &code[idx];                                              \
        goto *jt[static_cast<unsigned>(inp->op)];                      \
    } while (0)
#define TERP_NEXT()                                                    \
    do {                                                               \
        ++idx;                                                         \
        TERP_DISPATCH();                                               \
    } while (0)

    TERP_DISPATCH();
#else
#define TERP_CASE(name) case Op::name:
#define TERP_DISPATCH() continue
#define TERP_NEXT()                                                    \
    do {                                                               \
        ++idx;                                                         \
        continue;                                                      \
    } while (0)

    for (;;) {
        if (budget == quantum)
            goto quantum_end;
        ++budget;
        inp = &code[idx];
        switch (inp->op) {
#endif

    // Decode rewrote noReg operands to the phantom zero register, so
    // operand reads index regs[] unconditionally.
    TERP_CASE(Const)
    {
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Mov)
    {
        regs[inp->dst] = regs[inp->ra];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Add)
    {
        regs[inp->dst] = regs[inp->ra] + regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Sub)
    {
        regs[inp->dst] = regs[inp->ra] - regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Mul)
    {
        regs[inp->dst] = regs[inp->ra] * regs[inp->rb];
        pending += 3;
        TERP_NEXT();
    }
    TERP_CASE(Div)
    {
        regs[inp->dst] =
            regs[inp->rb] ? regs[inp->ra] / regs[inp->rb] : 0;
        pending += 10;
        TERP_NEXT();
    }
    TERP_CASE(Rem)
    {
        regs[inp->dst] =
            regs[inp->rb] ? regs[inp->ra] % regs[inp->rb] : 0;
        pending += 10;
        TERP_NEXT();
    }
    TERP_CASE(And)
    {
        regs[inp->dst] = regs[inp->ra] & regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Or)
    {
        regs[inp->dst] = regs[inp->ra] | regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Xor)
    {
        regs[inp->dst] = regs[inp->ra] ^ regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Shl)
    {
        regs[inp->dst] = regs[inp->ra] << (regs[inp->rb] & 63);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Shr)
    {
        regs[inp->dst] = regs[inp->ra] >> (regs[inp->rb] & 63);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpEq)
    {
        regs[inp->dst] = regs[inp->ra] == regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpNe)
    {
        regs[inp->dst] = regs[inp->ra] != regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpLt)
    {
        regs[inp->dst] = regs[inp->ra] < regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(CmpLe)
    {
        regs[inp->dst] = regs[inp->ra] <= regs[inp->rb];
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Load)
    {
        std::uint64_t addr = regs[inp->ra];
        TERP_FLUSH(); // fault emits carry tc.now() timestamps
        bool ok = memAccess(tc, addr, false);
        regs[inp->dst] = ok ? mem->peek(storageKey(addr)) : 0;
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Store)
    {
        std::uint64_t addr = regs[inp->ra];
        TERP_FLUSH();
        bool ok = memAccess(tc, addr, true);
        if (ok)
            mem->poke(storageKey(addr), regs[inp->rb]);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(PmoBase)
    {
        regs[inp->dst] =
            pm::Oid(inp->ra,
                    static_cast<std::uint64_t>(inp->aux)).raw;
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(DramBase)
    {
        regs[inp->dst] = static_cast<std::uint64_t>(inp->aux);
        pending += 1;
        TERP_NEXT();
    }
    TERP_CASE(Jump)
    {
        frp->block = static_cast<BlockId>(inp->aux);
        idx = 0;
        bindBlock(*frp);
        TERP_RELOAD();
        pending += 1;
        TERP_DISPATCH();
    }
    TERP_CASE(Branch)
    {
        const auto packed = static_cast<std::uint64_t>(inp->aux);
        frp->block = regs[inp->ra]
                         ? static_cast<BlockId>(packed)
                         : static_cast<BlockId>(packed >> 32);
        idx = 0;
        bindBlock(*frp);
        TERP_RELOAD();
        pending += 1;
        TERP_DISPATCH();
    }
    TERP_CASE(Ret)
    {
        std::uint64_t rv = regs[inp->ra];
        Reg dst = frp->retDst;
        stack.pop_back();
        pending += 1;
        if (stack.empty()) {
            retValue = rv;
            doneFlag = true;
            nExec += budget; // every dispatched instr completed
            TERP_FLUSH();
            return false;
        }
        frp = &stack.back();
        idx = frp->idx; // resume after the Call
        TERP_RELOAD();
        if (dst != noReg)
            regs[dst] = rv;
        TERP_DISPATCH();
    }
    TERP_CASE(Call)
    {
        Frame nf;
        nf.fn = inp->ra;
        nf.regs.assign(dfuncs[inp->ra].nRegs + 1, 0);
        const Reg *cargs =
            dfuncs[frp->fn].callArgs.data() + inp->rb;
        for (std::uint16_t a = 0; a < inp->nArgs; ++a)
            nf.regs[a] = regs[cargs[a]];
        nf.retDst = inp->dst;
        frp->idx = idx + 1; // return to the next instruction
        bindBlock(nf);
        pending += 2;
        stack.push_back(std::move(nf));
        frp = &stack.back();
        idx = 0;
        TERP_RELOAD();
        TERP_DISPATCH();
    }
    TERP_CASE(CondAttach)
    {
        TERP_FLUSH(); // region ops read and stamp tc.now()
        core::GuardResult r =
            rt->regionBegin(tc, inp->ra, inp->mode);
        if (r == core::GuardResult::Blocked) {
            // Retry this instruction when the thread is woken.
            frp->idx = idx;
            nExec += budget - 1; // this instruction did not execute
            return true;
        }
        TERP_NEXT();
    }
    TERP_CASE(CondDetach)
    {
        TERP_FLUSH();
        rt->regionEnd(tc, inp->ra);
        TERP_NEXT();
    }
    TERP_CASE(ManualAttach)
    {
        TERP_FLUSH();
        rt->manualBegin(tc, inp->ra, inp->mode);
        TERP_NEXT();
    }
    TERP_CASE(ManualDetach)
    {
        TERP_FLUSH();
        rt->manualEnd(tc, inp->ra);
        TERP_NEXT();
    }
    TERP_CASE(Nop)
    {
        pending += 1;
        TERP_NEXT();
    }
#if defined(__GNUC__)
    op_AddRun:
#else
          case opAddRun:
#endif
    {
        // Head of a fused self-add run (see opAddRun): k doublings of
        // regs[dst] are one shift. The dispatch already counted one
        // instruction toward the quantum; extend by the rest of the
        // run or the remaining quantum, whichever is smaller, so the
        // step still executes exactly `quantum` instructions.
        std::uint64_t t = static_cast<std::uint64_t>(inp->aux);
        const std::uint64_t room = quantum - budget;
        if (t - 1 > room)
            t = room + 1;
        regs[inp->dst] = t < 64 ? regs[inp->dst] << t : 0;
        pending += t;
        budget += t - 1;
        idx += t;
        TERP_DISPATCH();
    }

#if !defined(__GNUC__)
          default:
            TERP_PANIC("unhandled opcode in interpreter");
        }
    }
#endif

quantum_end:
    frp->idx = idx;
    nExec += budget;
    TERP_FLUSH();
    return true;

#undef TERP_FLUSH
#undef TERP_RELOAD
#undef TERP_CASE
#undef TERP_DISPATCH
#undef TERP_NEXT
}

} // namespace compiler
} // namespace terp
