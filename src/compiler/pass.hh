/**
 * @file
 * The TERP instrumentation pass — Algorithm 1 of the paper.
 *
 * Pipeline per function:
 *  1. PMO pointer analysis marks the basic blocks with PMO accesses.
 *  2. PMO-WFG construction: starting from each unvisited PMO-access
 *     block, grow a code region up the dominance hierarchy while the
 *     region's longest execution time (LET) stays below the
 *     EW-derived threshold (unknown loop trip counts assume 1000
 *     iterations).
 *  3. Localized path-sensitive insertion inside each WFG region:
 *     group a PMO's access blocks under one CONDAT/CONDDT pair when
 *     the group's LET fits the TEW threshold (validated by the
 *     strict verifier on a speculative copy), otherwise fall back to
 *     per-block (per-segment around calls) pairs. With a zero TEW
 *     threshold, a single pair brackets the region entrance/exit.
 */

#ifndef TERP_COMPILER_PASS_HH
#define TERP_COMPILER_PASS_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "compiler/analysis.hh"
#include "compiler/ir.hh"
#include "compiler/pmo_analysis.hh"

namespace terp {
namespace compiler {

/** Pass configuration. */
struct PassConfig
{
    /** LET ceiling for growing a WFG region (from the EW target). */
    Cycles ewLetThreshold = target::defaultEw;
    /**
     * LET ceiling for grouping accesses under one pair (from the
     * TEW target). Zero selects entrance/exit insertion
     * (Algorithm 1, line 15).
     */
    Cycles tewLetThreshold = target::defaultTew;
};

/** One region of the PMO window flow graph. */
struct WfgRegion
{
    std::uint32_t func;
    BlockId header;
    BlockId exit; //!< noBlock = function end
    std::uint32_t blockCount;
    std::uint64_t pmoMask;
    Cycles let;
};

/** Outcome statistics of a pass run. */
struct PassResult
{
    std::vector<WfgRegion> regions;
    std::uint64_t condAttach = 0;   //!< CONDAT instructions inserted
    std::uint64_t condDetach = 0;   //!< CONDDT instructions inserted
    std::uint64_t grouped = 0;      //!< groups placed as one pair
    std::uint64_t perBlock = 0;     //!< per-block/segment pairs
    std::uint64_t fallbacks = 0;    //!< grouped attempts that failed
};

/** Run the instrumentation pass over a module, mutating it. */
PassResult runInsertionPass(Module &m, const PassConfig &cfg);

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_PASS_HH
