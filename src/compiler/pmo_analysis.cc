#include "compiler/pmo_analysis.hh"

#include "common/logging.hh"

namespace terp {
namespace compiler {

std::uint64_t
PmoFacts::regMask(std::uint32_t func, Reg r) const
{
    if (r == noReg)
        return 0;
    return masks.at(func).at(r);
}

std::uint64_t
PmoFacts::instrMask(std::uint32_t func, BlockId b,
                    std::size_t instr_idx) const
{
    const Instr &in = mod->function(func).block(b).instrs.at(instr_idx);
    if (!in.isMem())
        return 0;
    return regMask(func, in.addrReg());
}

std::uint64_t
PmoFacts::blockMask(std::uint32_t func, BlockId b) const
{
    std::uint64_t m = 0;
    const BasicBlock &bb = mod->function(func).block(b);
    for (std::size_t i = 0; i < bb.instrs.size(); ++i)
        m |= instrMask(func, b, i);
    return m;
}

std::vector<std::uint64_t>
PmoFacts::blockMasks(std::uint32_t func) const
{
    const Function &f = mod->function(func);
    std::vector<std::uint64_t> out(f.blockCount());
    for (BlockId b = 0; b < f.blockCount(); ++b)
        out[b] = blockMask(func, b);
    return out;
}

PmoFacts
PmoFacts::analyze(const Module &m)
{
    PmoFacts facts;
    facts.mod = &m;
    facts.masks.resize(m.functions.size());
    facts.retMask.assign(m.functions.size(), 0);
    for (std::size_t f = 0; f < m.functions.size(); ++f)
        facts.masks[f].assign(m.functions[f].nRegs, 0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t fi = 0; fi < m.functions.size(); ++fi) {
            const Function &f = m.functions[fi];
            auto &mk = facts.masks[fi];

            auto update = [&](Reg r, std::uint64_t add) {
                if (r == noReg || add == 0)
                    return;
                if ((mk[r] | add) != mk[r]) {
                    mk[r] |= add;
                    changed = true;
                }
            };
            auto val = [&](Reg r) -> std::uint64_t {
                return r == noReg ? 0 : mk[r];
            };

            for (const BasicBlock &bb : f.blocks) {
                for (const Instr &in : bb.instrs) {
                    switch (in.op) {
                      case Op::PmoBase:
                        update(in.dst, pmoBit(in.pmo));
                        break;
                      case Op::Mov:
                        update(in.dst, val(in.ra));
                        break;
                      case Op::Add:
                      case Op::Sub:
                      case Op::Mul:
                      case Op::Div:
                      case Op::Rem:
                      case Op::And:
                      case Op::Or:
                      case Op::Xor:
                      case Op::Shl:
                      case Op::Shr:
                        update(in.dst, val(in.ra) | val(in.rb));
                        break;
                      case Op::Load:
                        // Pointers stored in PMO p point into p
                        // (no inter-PMO pointers).
                        update(in.dst, val(in.ra));
                        break;
                      case Op::Call: {
                        const Function &callee =
                            m.function(in.callee);
                        auto &cmk = facts.masks[in.callee];
                        for (std::size_t a = 0;
                             a < in.args.size() &&
                             a < callee.nParams;
                             ++a) {
                            std::uint64_t av = val(in.args[a]);
                            if ((cmk[a] | av) != cmk[a]) {
                                cmk[a] |= av;
                                changed = true;
                            }
                        }
                        update(in.dst, facts.retMask[in.callee]);
                        break;
                      }
                      case Op::Ret:
                        if (in.ra != noReg) {
                            std::uint64_t rv = val(in.ra);
                            if ((facts.retMask[fi] | rv) !=
                                facts.retMask[fi]) {
                                facts.retMask[fi] |= rv;
                                changed = true;
                            }
                        }
                        break;
                      default:
                        break;
                    }
                }
            }
        }
    }
    return facts;
}

} // namespace compiler
} // namespace terp
