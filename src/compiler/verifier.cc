#include "compiler/verifier.hh"

#include <deque>
#include <map>
#include <optional>
#include <sstream>

#include "common/logging.hh"

namespace terp {
namespace compiler {

namespace {

/** Per-PMO open-pair depth at a program point. */
using State = std::map<pm::PmoId, int>;

std::string
describe(const State &s)
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[pmo, d] : s) {
        if (d == 0)
            continue;
        if (!first)
            os << ", ";
        os << "pmo" << pmo << ":" << d;
        first = false;
    }
    os << "}";
    return os.str();
}

bool
sameState(const State &a, const State &b)
{
    // Compare ignoring zero entries.
    for (const auto &[pmo, d] : a) {
        auto it = b.find(pmo);
        int bd = it == b.end() ? 0 : it->second;
        if (d != bd)
            return false;
    }
    for (const auto &[pmo, d] : b) {
        auto it = a.find(pmo);
        int ad = it == a.end() ? 0 : it->second;
        if (d != ad)
            return false;
    }
    return true;
}

} // namespace

VerifyResult
verifyProtection(const Function &f, std::uint32_t fi,
                 const PmoFacts &facts, bool strict,
                 std::uint64_t pmo_filter)
{
    VerifyResult res;
    std::vector<std::optional<State>> in(f.blockCount());
    std::deque<BlockId> worklist;

    in[0] = State{};
    worklist.push_back(0);

    while (!worklist.empty()) {
        BlockId b = worklist.front();
        worklist.pop_front();
        State st = *in[b];

        const BasicBlock &bb = f.block(b);
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            const Instr &ins = bb.instrs[i];
            switch (ins.op) {
              case Op::CondAttach: {
                if (!(pmo_filter & pmoBit(ins.pmo)))
                    break;
                int &d = st[ins.pmo];
                ++d;
                if (strict && d > 1) {
                    res.fail("overlapping CONDAT for pmo" +
                             std::to_string(ins.pmo) + " in " +
                             f.name + " bb" + std::to_string(b));
                }
                break;
              }
              case Op::CondDetach: {
                if (!(pmo_filter & pmoBit(ins.pmo)))
                    break;
                int &d = st[ins.pmo];
                --d;
                if (d < 0) {
                    res.fail("CONDDT without matching CONDAT for pmo" +
                             std::to_string(ins.pmo) + " in " +
                             f.name + " bb" + std::to_string(b));
                    d = 0; // recover to limit error cascades
                }
                break;
              }
              case Op::Load:
              case Op::Store: {
                std::uint64_t mask =
                    facts.regMask(fi, ins.addrReg()) & pmo_filter;
                for (pm::PmoId p = 0; p < 64; ++p) {
                    if (!(mask & pmoBit(p)))
                        continue;
                    auto it = st.find(p);
                    if (it == st.end() || it->second <= 0) {
                        res.fail("unprotected access to pmo" +
                                 std::to_string(p) + " in " +
                                 f.name + " bb" +
                                 std::to_string(b) + " instr " +
                                 std::to_string(i));
                    }
                }
                break;
              }
              case Op::Ret: {
                for (const auto &[pmo, d] : st) {
                    if (d != 0) {
                        res.fail("pair open at return: pmo" +
                                 std::to_string(pmo) + " depth " +
                                 std::to_string(d) + " in " +
                                 f.name);
                    }
                }
                break;
              }
              default:
                break;
            }
        }

        for (BlockId s : f.successors(b)) {
            if (!in[s]) {
                in[s] = st;
                worklist.push_back(s);
            } else if (!sameState(*in[s], st)) {
                res.fail("inconsistent pair state at join bb" +
                         std::to_string(s) + " in " + f.name + ": " +
                         describe(*in[s]) + " vs " + describe(st));
            }
        }
    }
    return res;
}

VerifyResult
verifyModule(const Module &m, const PmoFacts &facts, bool strict)
{
    VerifyResult all;
    for (std::uint32_t fi = 0; fi < m.functions.size(); ++fi) {
        VerifyResult r =
            verifyProtection(m.functions[fi], fi, facts, strict);
        if (!r.ok) {
            all.ok = false;
            for (auto &e : r.errors)
                all.errors.push_back(std::move(e));
        }
    }
    return all;
}

} // namespace compiler
} // namespace terp
