#include "compiler/pass.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "compiler/verifier.hh"

namespace terp {
namespace compiler {

namespace {

/** A pending instruction insertion. */
struct Insertion
{
    BlockId block;
    std::size_t index;
    Instr instr;
};

Instr
makeCondAttach(pm::PmoId pmo)
{
    Instr in;
    in.op = Op::CondAttach;
    in.pmo = pmo;
    in.mode = pm::Mode::ReadWrite;
    return in;
}

Instr
makeCondDetach(pm::PmoId pmo)
{
    Instr in;
    in.op = Op::CondDetach;
    in.pmo = pmo;
    return in;
}

/** Apply insertions, highest index first so indices stay valid. */
void
apply(Function &f, std::vector<Insertion> ins)
{
    std::stable_sort(ins.begin(), ins.end(),
                     [](const Insertion &a, const Insertion &b) {
                         if (a.block != b.block)
                             return a.block < b.block;
                         return a.index > b.index;
                     });
    for (const Insertion &i : ins) {
        auto &v = f.block(i.block).instrs;
        TERP_ASSERT(i.index <= v.size(), "bad insertion index");
        v.insert(v.begin() + static_cast<std::ptrdiff_t>(i.index),
                 i.instr);
    }
}

/** Does this instruction access PMO p (per the pointer analysis)? */
bool
accessesPmo(const Instr &in, const PmoFacts &facts, std::uint32_t fi,
            pm::PmoId p)
{
    return in.isMem() &&
           (facts.regMask(fi, in.addrReg()) & pmoBit(p)) != 0;
}

/** Index of the first / last access to p in a block (or npos). */
std::size_t
firstAccess(const BasicBlock &bb, const PmoFacts &facts,
            std::uint32_t fi, pm::PmoId p)
{
    for (std::size_t i = 0; i < bb.instrs.size(); ++i)
        if (accessesPmo(bb.instrs[i], facts, fi, p))
            return i;
    return bb.instrs.size();
}

std::size_t
lastAccess(const BasicBlock &bb, const PmoFacts &facts,
           std::uint32_t fi, pm::PmoId p)
{
    for (std::size_t i = bb.instrs.size(); i-- > 0;)
        if (accessesPmo(bb.instrs[i], facts, fi, p))
            return i;
    return bb.instrs.size();
}

/**
 * Per-block insertion: bracket the segments of p-accesses in block
 * b, closing and reopening around Call instructions so callees with
 * their own pairs never nest.
 */
std::vector<Insertion>
perBlockInsertions(const Function &f, const PmoFacts &facts,
                   std::uint32_t fi, pm::PmoId p, BlockId b)
{
    std::vector<Insertion> out;
    const BasicBlock &bb = f.block(b);
    std::size_t seg_start = bb.instrs.size();
    std::size_t seg_last = bb.instrs.size();

    auto flush = [&]() {
        if (seg_start >= bb.instrs.size())
            return;
        out.push_back({b, seg_start, makeCondAttach(p)});
        out.push_back({b, seg_last + 1, makeCondDetach(p)});
        seg_start = bb.instrs.size();
        seg_last = bb.instrs.size();
    };

    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
        const Instr &in = bb.instrs[i];
        if (in.op == Op::Call) {
            flush(); // calls act as pair barriers
            continue;
        }
        if (accessesPmo(in, facts, fi, p)) {
            if (seg_start >= bb.instrs.size())
                seg_start = i;
            seg_last = i;
        }
    }
    flush();
    return out;
}

/** Insert a CONDDT before every Ret in the given blocks. */
std::vector<Insertion>
detachBeforeRets(const Function &f, const std::vector<BlockId> &blocks,
                 pm::PmoId p)
{
    std::vector<Insertion> out;
    for (BlockId b : blocks) {
        const BasicBlock &bb = f.block(b);
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            if (bb.instrs[i].op == Op::Ret)
                out.push_back({b, i, makeCondDetach(p)});
        }
    }
    return out;
}

} // namespace

PassResult
runInsertionPass(Module &m, const PassConfig &cfg)
{
    PassResult result;
    PmoFacts facts = PmoFacts::analyze(m);

    // Fixpoint-ish estimate of per-function LETs so Call costs are
    // reflected in region LETs (3 rounds handle realistic nesting).
    std::map<std::uint32_t, Cycles> fnLet;
    for (int round = 0; round < 3; ++round) {
        for (std::uint32_t fi = 0; fi < m.functions.size(); ++fi) {
            Analysis an(m.functions[fi], facts.blockMasks(fi), fnLet);
            fnLet[fi] = an.letBetween(0, noBlock);
        }
    }

    for (std::uint32_t fi = 0; fi < m.functions.size(); ++fi) {
        Function &f = m.functions[fi];
        Analysis an(f, facts.blockMasks(fi), fnLet);

        std::vector<bool> visited(f.blockCount(), false);

        for (BlockId seed = 0; seed < f.blockCount(); ++seed) {
            if (visited[seed] || an.blockPmo(seed) == 0)
                continue;
            if (!an.reachable(seed))
                continue;

            // Grow the region up the dominance hierarchy while its
            // LET stays below the EW threshold and it claims no
            // block another region already claimed.
            BlockId h = seed;
            for (;;) {
                BlockId p = an.idom(h);
                if (p == noBlock)
                    break;
                if (an.regionLet(p) >= cfg.ewLetThreshold)
                    break;
                std::vector<BlockId> pr = an.regionBlocks(p);
                // The grown region must still contain the seed (the
                // seed may be the larger region's exit block) and
                // must not claim blocks another region already owns.
                bool contains_seed = false;
                bool clash = false;
                for (BlockId rb : pr) {
                    if (rb == seed)
                        contains_seed = true;
                    if (visited[rb] && (an.blockPmo(rb) != 0))
                        clash = true;
                }
                if (!contains_seed || clash)
                    break;
                h = p;
            }

            std::vector<BlockId> region = an.regionBlocks(h);
            std::vector<BlockId> claimed;
            for (BlockId rb : region) {
                if (!visited[rb] && an.blockPmo(rb) != 0) {
                    visited[rb] = true;
                    claimed.push_back(rb);
                }
            }
            if (claimed.empty())
                continue;

            std::uint64_t mask = 0;
            for (BlockId rb : claimed)
                mask |= an.blockPmo(rb);
            result.regions.push_back(
                {fi, h, an.ipdom(h),
                 static_cast<std::uint32_t>(region.size()), mask,
                 an.regionLet(h)});

            // Insert pairs for every PMO the region touches.
            for (pm::PmoId p = 0; p < 64; ++p) {
                if (!(mask & pmoBit(p)))
                    continue;
                std::vector<BlockId> S;
                for (BlockId rb : claimed)
                    if (an.blockPmo(rb) & pmoBit(p))
                        S.push_back(rb);
                if (S.empty())
                    continue;

                // Candidate grouped placement.
                std::vector<Insertion> grouped;
                bool try_grouped = false;
                if (cfg.tewLetThreshold == 0) {
                    // Entrance/exit insertion (Algorithm 1 line 15).
                    BlockId x = an.ipdom(h);
                    grouped.push_back({h, 0, makeCondAttach(p)});
                    if (x != noBlock) {
                        grouped.push_back({x, 0, makeCondDetach(p)});
                    } else {
                        auto rets = detachBeforeRets(f, region, p);
                        grouped.insert(grouped.end(), rets.begin(),
                                       rets.end());
                    }
                    try_grouped = true;
                } else {
                    BlockId d = an.nearestCommonDominator(S);
                    BlockId e = an.nearestCommonPostdominator(S);
                    if (d != noBlock && e != noBlock && d != e &&
                        an.letBetween(d, e) <= cfg.tewLetThreshold &&
                        !an.regionHasCall(h)) {
                        std::size_t ai =
                            (an.blockPmo(d) & pmoBit(p))
                                ? firstAccess(f.block(d), facts, fi, p)
                                : 0;
                        if (ai >= f.block(d).instrs.size())
                            ai = 0;
                        grouped.push_back({d, ai, makeCondAttach(p)});
                        std::size_t di = 0;
                        if (an.blockPmo(e) & pmoBit(p)) {
                            std::size_t la =
                                lastAccess(f.block(e), facts, fi, p);
                            if (la < f.block(e).instrs.size())
                                di = la + 1;
                        }
                        grouped.push_back({e, di, makeCondDetach(p)});
                        try_grouped = true;
                    }
                }

                bool committed = false;
                if (try_grouped) {
                    // Verify on a speculative copy before committing.
                    Function copy = f;
                    apply(copy, grouped);
                    VerifyResult vr = verifyProtection(
                        copy, fi, facts, true, pmoBit(p));
                    if (vr.ok) {
                        apply(f, grouped);
                        committed = true;
                        ++result.grouped;
                    } else {
                        ++result.fallbacks;
                    }
                }

                if (!committed) {
                    std::vector<Insertion> all;
                    for (BlockId b : S) {
                        auto ins = perBlockInsertions(f, facts, fi,
                                                      p, b);
                        all.insert(all.end(), ins.begin(), ins.end());
                    }
                    apply(f, all);
                    ++result.perBlock;
                }
            }
        }
    }

    // Safety net: any reachable PMO-access block that no region
    // claimed (a structural corner case) gets conservative per-block
    // pairs, so the strict verifier always holds on pass output.
    for (std::uint32_t fi = 0; fi < m.functions.size(); ++fi) {
        Function &f = m.functions[fi];
        PmoFacts post = PmoFacts::analyze(m);
        VerifyResult vr = verifyProtection(f, fi, post, true);
        if (vr.ok)
            continue;
        Analysis an(f, post.blockMasks(fi), fnLet);
        // Re-derive coverage: bracket every access segment that is
        // not already inside a pair, block by block, per PMO.
        for (BlockId b = 0; b < f.blockCount(); ++b) {
            if (!an.reachable(b))
                continue;
            std::uint64_t mask = an.blockPmo(b);
            if (mask == 0)
                continue;
            for (pm::PmoId p = 0; p < 64; ++p) {
                if (!(mask & pmoBit(p)))
                    continue;
                // Patch only when the per-PMO verifier reports a
                // violation in this specific block.
                VerifyResult pv =
                    verifyProtection(f, fi, post, true, pmoBit(p));
                if (pv.ok)
                    continue;
                bool mentions_block = false;
                for (const std::string &e : pv.errors) {
                    if (e.find(" bb" + std::to_string(b) + " ") !=
                        std::string::npos) {
                        mentions_block = true;
                    }
                }
                if (!mentions_block)
                    continue;
                auto ins = perBlockInsertions(f, post, fi, p, b);
                apply(f, ins);
                ++result.perBlock;
            }
        }
    }

    // Recount inserted instructions exactly.
    result.condAttach = 0;
    result.condDetach = 0;
    for (const Function &f : m.functions) {
        for (const BasicBlock &bb : f.blocks) {
            for (const Instr &in : bb.instrs) {
                if (in.op == Op::CondAttach)
                    ++result.condAttach;
                if (in.op == Op::CondDetach)
                    ++result.condDetach;
            }
        }
    }
    return result;
}

} // namespace compiler
} // namespace terp
