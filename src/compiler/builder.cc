#include "compiler/builder.hh"

#include "common/logging.hh"

namespace terp {
namespace compiler {

FunctionBuilder::FunctionBuilder(Module &mod_, const std::string &name,
                                 std::uint32_t n_params)
    : mod(mod_)
{
    fidx = static_cast<std::uint32_t>(mod.functions.size());
    mod.functions.emplace_back();
    Function &f = func();
    f.name = name;
    f.nParams = n_params;
    f.nRegs = n_params;
    f.blocks.emplace_back();
    f.blocks[0].label = "entry";
    cur = 0;
}

std::uint32_t
FunctionBuilder::finish()
{
    TERP_ASSERT(!finished, "finish() called twice");
    finished = true;
    func().validate();
    return fidx;
}

Instr &
FunctionBuilder::emit(Instr in)
{
    BasicBlock &bb = func().block(cur);
    TERP_ASSERT(!bb.terminated(),
                "emitting into terminated block in ", func().name);
    bb.instrs.push_back(std::move(in));
    return bb.instrs.back();
}

Reg
FunctionBuilder::param(std::uint32_t i) const
{
    TERP_ASSERT(i < func().nParams, "bad param index");
    return i;
}

Reg
FunctionBuilder::constant(std::int64_t v)
{
    Reg d = newReg();
    Instr in;
    in.op = Op::Const;
    in.dst = d;
    in.imm = v;
    emit(in);
    return d;
}

Reg
FunctionBuilder::arith(Op op, Reg a, Reg b)
{
    Reg d = newReg();
    Instr in;
    in.op = op;
    in.dst = d;
    in.ra = a;
    in.rb = b;
    emit(in);
    return d;
}

void
FunctionBuilder::compute(std::uint64_t n)
{
    // A register self-add per unit of work keeps the block's
    // instruction count (and hence LET) proportional to n.
    if (n == 0)
        return;
    Reg d = constant(1);
    for (std::uint64_t i = 1; i < n; ++i) {
        Instr in;
        in.op = Op::Add;
        in.dst = d;
        in.ra = d;
        in.rb = d;
        emit(in);
    }
}

Reg
FunctionBuilder::pmoBase(pm::PmoId pmo, std::int64_t off)
{
    Reg d = newReg();
    Instr in;
    in.op = Op::PmoBase;
    in.dst = d;
    in.imm = off;
    in.pmo = pmo;
    emit(in);
    return d;
}

Reg
FunctionBuilder::dramBase(std::int64_t off)
{
    Reg d = newReg();
    Instr in;
    in.op = Op::DramBase;
    in.dst = d;
    in.imm = off;
    emit(in);
    return d;
}

Reg
FunctionBuilder::load(Reg addr)
{
    Reg d = newReg();
    Instr in;
    in.op = Op::Load;
    in.dst = d;
    in.ra = addr;
    emit(in);
    return d;
}

void
FunctionBuilder::store(Reg addr, Reg value)
{
    Instr in;
    in.op = Op::Store;
    in.ra = addr;
    in.rb = value;
    emit(in);
}

Reg
FunctionBuilder::call(std::uint32_t callee, const std::vector<Reg> &args)
{
    Reg d = newReg();
    Instr in;
    in.op = Op::Call;
    in.dst = d;
    in.callee = callee;
    in.args = args;
    emit(in);
    return d;
}

void
FunctionBuilder::condAttach(pm::PmoId pmo, pm::Mode mode)
{
    Instr in;
    in.op = Op::CondAttach;
    in.pmo = pmo;
    in.mode = mode;
    emit(in);
}

void
FunctionBuilder::condDetach(pm::PmoId pmo)
{
    Instr in;
    in.op = Op::CondDetach;
    in.pmo = pmo;
    emit(in);
}

void
FunctionBuilder::manualAttach(pm::PmoId pmo, pm::Mode mode)
{
    Instr in;
    in.op = Op::ManualAttach;
    in.pmo = pmo;
    in.mode = mode;
    emit(in);
}

void
FunctionBuilder::manualDetach(pm::PmoId pmo)
{
    Instr in;
    in.op = Op::ManualDetach;
    in.pmo = pmo;
    emit(in);
}

void
FunctionBuilder::ret(Reg value)
{
    Instr in;
    in.op = Op::Ret;
    in.ra = value;
    emit(in);
}

BlockId
FunctionBuilder::newBlock(const std::string &label)
{
    Function &f = func();
    f.blocks.emplace_back();
    f.blocks.back().label = label;
    return static_cast<BlockId>(f.blocks.size() - 1);
}

void
FunctionBuilder::jump(BlockId target)
{
    Instr in;
    in.op = Op::Jump;
    in.target[0] = target;
    emit(in);
}

void
FunctionBuilder::branch(Reg cond, BlockId if_true, BlockId if_false)
{
    Instr in;
    in.op = Op::Branch;
    in.ra = cond;
    in.target[0] = if_true;
    in.target[1] = if_false;
    emit(in);
}

void
FunctionBuilder::ifThenElse(Reg cond, const BodyFn &then_fn,
                            const BodyFn &else_fn)
{
    BlockId then_b = newBlock("then");
    BlockId else_b = else_fn ? newBlock("else") : noBlock;
    BlockId join_b = newBlock("join");

    branch(cond, then_b, else_fn ? else_b : join_b);

    setBlock(then_b);
    then_fn();
    if (!func().block(cur).terminated())
        jump(join_b);

    if (else_fn) {
        setBlock(else_b);
        else_fn();
        if (!func().block(cur).terminated())
            jump(join_b);
    }

    setBlock(join_b);
}

void
FunctionBuilder::forLoop(std::uint64_t trips, const LoopBodyFn &body,
                         bool known_bound)
{
    Reg idx = constant(0);
    Reg bound = constant(static_cast<std::int64_t>(trips));
    BlockId header = newBlock("loop.header");
    BlockId body_b = newBlock("loop.body");
    BlockId exit_b = newBlock("loop.exit");

    jump(header);
    setBlock(header);
    Reg c = cmpLt(idx, bound);
    branch(c, body_b, exit_b);

    setBlock(body_b);
    body(idx);
    // idx = idx + 1 (in-place so the header sees the update).
    Reg one = constant(1);
    Instr inc;
    inc.op = Op::Add;
    inc.dst = idx;
    inc.ra = idx;
    inc.rb = one;
    func().block(cur).instrs.push_back(inc);
    jump(header);

    if (known_bound)
        func().loopBound[header] = trips;
    setBlock(exit_b);
}

void
FunctionBuilder::whileLoop(const std::function<Reg()> &cond_fn,
                           const BodyFn &body)
{
    BlockId header = newBlock("while.header");
    BlockId body_b = newBlock("while.body");
    BlockId exit_b = newBlock("while.exit");

    jump(header);
    setBlock(header);
    Reg c = cond_fn();
    branch(c, body_b, exit_b);

    setBlock(body_b);
    body();
    if (!func().block(cur).terminated())
        jump(header);

    setBlock(exit_b);
}

} // namespace compiler
} // namespace terp
