#include "compiler/dot.hh"

#include <set>
#include <sstream>

#include "compiler/analysis.hh"

namespace terp {
namespace compiler {

std::string
cfgToDot(const Function &f, std::uint32_t fi, const PmoFacts &facts,
         const std::vector<WfgRegion> &regions)
{
    Analysis an(f, facts.blockMasks(fi));

    std::ostringstream os;
    os << "digraph \"" << f.name << "\" {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";

    // Region clusters (the PMO-WFG).
    std::set<BlockId> clustered;
    unsigned cluster_id = 0;
    for (const WfgRegion &r : regions) {
        if (r.func != fi)
            continue;
        os << "  subgraph cluster_" << cluster_id++ << " {\n"
           << "    label=\"region bb" << r.header << " (LET "
           << r.let << ")\";\n"
           << "    style=dashed;\n";
        Analysis ran(f, facts.blockMasks(fi));
        for (BlockId b : ran.regionBlocks(r.header)) {
            os << "    bb" << b << ";\n";
            clustered.insert(b);
        }
        os << "  }\n";
    }

    for (BlockId b = 0; b < f.blockCount(); ++b) {
        if (!an.reachable(b))
            continue;
        std::uint64_t mask = an.blockPmo(b);
        os << "  bb" << b << " [label=\"bb" << b;
        if (!f.block(b).label.empty())
            os << "\\n" << f.block(b).label;
        unsigned pairs = 0;
        for (const Instr &in : f.block(b).instrs) {
            if (in.op == Op::CondAttach || in.op == Op::CondDetach)
                ++pairs;
        }
        if (pairs > 0)
            os << "\\n(" << pairs << " cond op"
               << (pairs > 1 ? "s" : "") << ")";
        os << "\"";
        if (mask != 0) {
            // Fig 5 shades blocks with PMO accesses.
            os << ", style=filled, fillcolor=gray80";
        }
        os << "];\n";
    }

    for (BlockId b = 0; b < f.blockCount(); ++b) {
        if (!an.reachable(b))
            continue;
        for (BlockId s : f.successors(b)) {
            os << "  bb" << b << " -> bb" << s;
            if (an.isBackEdge(b, s))
                os << " [style=dashed, constraint=false]";
            os << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace compiler
} // namespace terp
