#include "compiler/ir.hh"

#include <sstream>

#include "common/logging.hh"

namespace terp {
namespace compiler {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Rem: return "rem";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpNe: return "cmpne";
      case Op::CmpLt: return "cmplt";
      case Op::CmpLe: return "cmple";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::PmoBase: return "pmobase";
      case Op::DramBase: return "drambase";
      case Op::Jump: return "jump";
      case Op::Branch: return "branch";
      case Op::Ret: return "ret";
      case Op::Call: return "call";
      case Op::CondAttach: return "condat";
      case Op::CondDetach: return "conddt";
      case Op::ManualAttach: return "attach";
      case Op::ManualDetach: return "detach";
      case Op::Nop: return "nop";
      default: return "?";
    }
}

bool
isTerminator(Op op)
{
    return op == Op::Jump || op == Op::Branch || op == Op::Ret;
}

std::vector<BlockId>
Function::successors(BlockId b) const
{
    const Instr &t = block(b).terminator();
    switch (t.op) {
      case Op::Jump:
        return {t.target[0]};
      case Op::Branch:
        return {t.target[0], t.target[1]};
      case Op::Ret:
        return {};
      default:
        TERP_PANIC("block ", b, " of ", name,
                   " lacks a terminator");
    }
}

void
Function::validate() const
{
    TERP_ASSERT(!blocks.empty(), "function ", name, " has no blocks");
    for (BlockId b = 0; b < blockCount(); ++b) {
        TERP_ASSERT(block(b).terminated(), "block ", b, " of ", name,
                    " not terminated");
        for (std::size_t i = 0; i + 1 < block(b).instrs.size(); ++i) {
            TERP_ASSERT(!isTerminator(block(b).instrs[i].op),
                        "terminator mid-block in ", name);
        }
        for (BlockId s : successors(b)) {
            TERP_ASSERT(s < blockCount(), "bad successor in ", name);
        }
    }
}

std::string
Module::dump() const
{
    std::ostringstream os;
    for (std::uint32_t fi = 0; fi < functions.size(); ++fi) {
        const Function &f = functions[fi];
        os << "func @" << f.name << " (params=" << f.nParams
           << ", regs=" << f.nRegs << ")\n";
        for (BlockId b = 0; b < f.blockCount(); ++b) {
            os << "  bb" << b;
            if (!f.block(b).label.empty())
                os << " <" << f.block(b).label << ">";
            auto lb = f.loopBound.find(b);
            if (lb != f.loopBound.end())
                os << " [loop x" << lb->second << "]";
            os << ":\n";
            for (const Instr &in : f.block(b).instrs) {
                os << "    " << opName(in.op);
                if (in.dst != noReg)
                    os << " r" << in.dst << " <-";
                if (in.ra != noReg)
                    os << " r" << in.ra;
                if (in.rb != noReg)
                    os << " r" << in.rb;
                if (in.op == Op::Const || in.op == Op::DramBase ||
                    in.op == Op::PmoBase) {
                    os << " #" << in.imm;
                }
                if (in.pmo != pm::invalidPmoId)
                    os << " pmo" << in.pmo;
                if (in.op == Op::Jump)
                    os << " bb" << in.target[0];
                if (in.op == Op::Branch) {
                    os << " ? bb" << in.target[0] << " : bb"
                       << in.target[1];
                }
                if (in.op == Op::Call)
                    os << " @f" << in.callee;
                os << "\n";
            }
        }
    }
    return os.str();
}

} // namespace compiler
} // namespace terp
