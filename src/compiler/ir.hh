/**
 * @file
 * A small register-based intermediate representation.
 *
 * This is the reproduction's stand-in for LLVM IR (see DESIGN.md):
 * it exposes exactly what the paper's Algorithm 1 needs — a CFG of
 * basic blocks, loads/stores whose PMO-ness a pointer analysis can
 * establish, loop trip-count metadata for LET estimation, and the
 * two TERP instructions (CONDAT / CONDDT) the pass inserts.
 *
 * Values are 64-bit integers. Pointers into a PMO are relocatable
 * ObjectIDs (pool id in the top 16 bits); DRAM pointers live below
 * 2^48 with pool id 0, so the two never collide.
 */

#ifndef TERP_COMPILER_IR_HH
#define TERP_COMPILER_IR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pm/oid.hh"
#include "pm/pmo.hh"

namespace terp {
namespace compiler {

/** Register index within a function. */
using Reg = std::uint32_t;
constexpr Reg noReg = 0xffffffffu;

/** Basic-block index within a function. */
using BlockId = std::uint32_t;
constexpr BlockId noBlock = 0xffffffffu;

/** Instruction opcodes. */
enum class Op : std::uint8_t
{
    // Data movement / arithmetic (dst = a OP b, or dst = imm).
    Const, Mov,
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe,

    // Memory (8-byte granularity).
    Load,     //!< dst = mem[ra]
    Store,    //!< mem[ra] = rb
    PmoBase,  //!< dst = ObjectID(pmo, imm): pointer into a PMO
    DramBase, //!< dst = imm: pointer into the DRAM arena

    // Terminators.
    Jump,   //!< goto target[0]
    Branch, //!< ra != 0 ? target[0] : target[1]
    Ret,    //!< return ra (ra may be noReg)

    // Calls.
    Call, //!< dst = callee(args...)

    // TERP constructs (inserted by the pass or written explicitly).
    CondAttach, //!< CONDAT pmo, mode
    CondDetach, //!< CONDDT pmo

    // MERR-style manual bookends written by the programmer; they map
    // to full attach()/detach() system calls under the MM scheme and
    // are ignored by schemes using automatic insertion.
    ManualAttach,
    ManualDetach,

    Nop,
};

const char *opName(Op op);

/** Is this opcode a basic-block terminator? */
bool isTerminator(Op op);

/** One IR instruction. */
struct Instr
{
    Op op = Op::Nop;
    Reg dst = noReg;
    Reg ra = noReg;
    Reg rb = noReg;
    std::int64_t imm = 0;
    pm::PmoId pmo = pm::invalidPmoId; //!< PmoBase/CondAttach/CondDetach
    pm::Mode mode = pm::Mode::ReadWrite; //!< CondAttach
    BlockId target[2] = {noBlock, noBlock};
    std::uint32_t callee = 0;  //!< function index (Call)
    std::vector<Reg> args;     //!< call arguments

    bool isMem() const { return op == Op::Load || op == Op::Store; }

    /** The register holding the address of a Load/Store. */
    Reg addrReg() const { return ra; }
};

/** A basic block: non-terminator instructions plus one terminator. */
struct BasicBlock
{
    std::string label;
    std::vector<Instr> instrs;

    const Instr &terminator() const { return instrs.back(); }
    bool terminated() const
    {
        return !instrs.empty() && isTerminator(instrs.back().op);
    }
};

/** A function: blocks (entry = block 0), register count, params. */
struct Function
{
    std::string name;
    std::uint32_t nParams = 0;
    std::uint32_t nRegs = 0; //!< registers 0..nParams-1 are params
    std::vector<BasicBlock> blocks;

    /**
     * Known loop trip counts, keyed by loop-header block. Headers
     * missing from the map have statically unknown trip counts; the
     * LET estimator then assumes the paper's large constant (1000).
     */
    std::map<BlockId, std::uint64_t> loopBound;

    BasicBlock &block(BlockId b) { return blocks.at(b); }
    const BasicBlock &block(BlockId b) const { return blocks.at(b); }
    std::uint32_t blockCount() const
    {
        return static_cast<std::uint32_t>(blocks.size());
    }

    /** Successor block ids of b, from its terminator. */
    std::vector<BlockId> successors(BlockId b) const;

    /** Validate structural invariants (terminated blocks, targets). */
    void validate() const;
};

/** A module: functions (index 0 = entry point by convention). */
struct Module
{
    std::vector<Function> functions;

    Function &function(std::uint32_t i) { return functions.at(i); }
    const Function &function(std::uint32_t i) const
    {
        return functions.at(i);
    }

    /** Pretty-print the module for debugging / examples. */
    std::string dump() const;
};

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_IR_HH
