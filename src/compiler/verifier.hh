/**
 * @file
 * Protection-construct verifier.
 *
 * Checks the well-formedness guarantees the EW-conscious semantics
 * expects from compiler output: along every path, each PMO's
 * CONDAT/CONDDT pairs match (no detach before attach, no open pair
 * at function exit), every PMO access executes under an open pair,
 * and the pair state agrees at control-flow joins. Strict mode also
 * rejects same-thread pair overlap (the pass must never create it);
 * tolerant mode permits nesting, matching the runtime's depth-based
 * lowering for function composability.
 */

#ifndef TERP_COMPILER_VERIFIER_HH
#define TERP_COMPILER_VERIFIER_HH

#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "compiler/pmo_analysis.hh"

namespace terp {
namespace compiler {

/** Verification outcome with human-readable diagnostics. */
struct VerifyResult
{
    bool ok = true;
    std::vector<std::string> errors;

    void fail(std::string msg)
    {
        ok = false;
        errors.push_back(std::move(msg));
    }
};

/**
 * Verify one function's protection constructs.
 *
 * @param f          The function to check.
 * @param fi         Its index in the module (for PmoFacts queries).
 * @param facts      Module pointer-analysis results.
 * @param strict     Reject same-thread pair overlap (depth > 1).
 * @param pmo_filter Only consider PMOs whose bit is set (default:
 *                   all); used for per-PMO speculative checks.
 */
VerifyResult verifyProtection(const Function &f, std::uint32_t fi,
                              const PmoFacts &facts, bool strict,
                              std::uint64_t pmo_filter = ~0ULL);

/** Verify every function of a module. */
VerifyResult verifyModule(const Module &m, const PmoFacts &facts,
                          bool strict);

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_VERIFIER_HH
