/**
 * @file
 * Graphviz export of function CFGs, in the style of the paper's
 * Fig 5: basic blocks with PMO accesses are shaded, back edges are
 * dashed, and PMO-WFG regions can be drawn as clusters so the
 * localized path-sensitive insertion is visible.
 */

#ifndef TERP_COMPILER_DOT_HH
#define TERP_COMPILER_DOT_HH

#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "compiler/pass.hh"
#include "compiler/pmo_analysis.hh"

namespace terp {
namespace compiler {

/**
 * Render one function's CFG as Graphviz dot.
 *
 * @param f       The function.
 * @param fi      Its module index (for PMO facts).
 * @param facts   Pointer-analysis results (shades access blocks).
 * @param regions Optional WFG regions to draw as clusters (only
 *                those belonging to function @p fi are used).
 */
std::string cfgToDot(const Function &f, std::uint32_t fi,
                     const PmoFacts &facts,
                     const std::vector<WfgRegion> &regions = {});

} // namespace compiler
} // namespace terp

#endif // TERP_COMPILER_DOT_HH
