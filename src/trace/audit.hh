/**
 * @file
 * Timeline auditor: an independent, trace-driven recomputation of
 * the paper's central metric.
 *
 * The auditor replays the event stream — real attach/detach opens
 * and closes process exposure windows (EW), sweeper randomization
 * splits them, thread grant/revoke opens and closes thread exposure
 * windows (TEW) — and cross-checks the recomputed window counts,
 * sums and maxima cycle-for-cycle against the runtime's live
 * `semantics::EwTracker`. A disagreement means either the trace or
 * the tracker (or the runtime wiring between them) is wrong, which
 * turns the trace into a differential validator rather than a
 * second opinion derived from the same code path.
 */

#ifndef TERP_TRACE_AUDIT_HH
#define TERP_TRACE_AUDIT_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "metrics/metric.hh"
#include "semantics/ew_tracker.hh"
#include "trace/trace_buffer.hh"

namespace terp {
namespace trace {

/**
 * Recomputed window statistics for one PMO. The replay accumulates
 * the same canonical summary type the EwTracker and the metrics
 * registry use, so the three observability paths compare counts,
 * sums, minima and maxima cycle-for-cycle with no convention skew
 * (the old hand-rolled tally reported min as ~0ULL when empty; the
 * shared type pins empty min to 0).
 */
using WindowTally = metrics::Summary;

/** Outcome of one audit. */
struct AuditReport
{
    bool ok = false;       //!< replay clean and everything matched
    bool complete = true;  //!< the trace lost no events to wrap
    std::vector<std::string> mismatches;

    std::map<std::uint64_t, WindowTally> ew;  //!< recomputed, per PMO
    std::map<std::uint64_t, WindowTally> tew; //!< recomputed, per PMO

    /**
     * Recomputed blame attribution, per PMO: total cycles per
     * BlameCause, rebuilt from BlameSegment events. The replay also
     * enforces the tiling invariant — the segments of every closed
     * window must cover [open, close) exactly, gap- and overlap-free.
     */
    std::map<std::uint64_t,
             std::array<Cycles, semantics::numBlameCauses>>
        blame;

    /** One-line verdict for logs. */
    std::string summary() const;
};

/**
 * Replay @p events (must be in emission order) and recompute the
 * exposure windows, closing any still-open window at @p t_end. Replay
 * invariant violations (detach without attach, double grant, ...)
 * are reported as mismatches.
 */
AuditReport replayTimeline(const std::vector<Event> &events,
                           Cycles t_end);

/**
 * Replay @p events and cross-check against @p expected. @p complete
 * marks whether the stream retained every emitted event; an
 * incomplete stream cannot be audited and fails with an explanatory
 * mismatch.
 */
AuditReport auditEvents(const std::vector<Event> &events,
                        bool complete, Cycles t_end,
                        const semantics::EwTracker &expected);

/** Audit a whole sink (the common entry point). */
AuditReport auditTimeline(const TraceSink &sink, Cycles t_end,
                          const semantics::EwTracker &expected);

} // namespace trace
} // namespace terp

#endif // TERP_TRACE_AUDIT_HH
