#include "trace/export.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace terp {
namespace trace {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::RealAttach: return "real_attach";
      case EventKind::SilentAttach: return "silent_attach";
      case EventKind::RealDetach: return "real_detach";
      case EventKind::SilentDetach: return "silent_detach";
      case EventKind::Randomize: return "randomize";
      case EventKind::SweepTick: return "sweep_tick";
      case EventKind::DelayedDetach: return "delayed_detach";
      case EventKind::RegionBegin: return "region_begin";
      case EventKind::RegionEnd: return "region_end";
      case EventKind::ThreadGrant: return "thread_grant";
      case EventKind::ThreadRevoke: return "thread_revoke";
      case EventKind::AccessFault: return "access_fault";
      case EventKind::ThreadStart: return "thread_start";
      case EventKind::ThreadFinish: return "thread_finish";
      case EventKind::PmoMap: return "pmo_map";
      case EventKind::PmoUnmap: return "pmo_unmap";
      case EventKind::PmoRemap: return "pmo_remap";
      case EventKind::Crash: return "crash";
      case EventKind::Recover: return "recover";
      case EventKind::SessionStart: return "session_start";
      case EventKind::SessionEnd: return "session_end";
      case EventKind::RequestStart: return "request_start";
      case EventKind::RequestDone: return "request_done";
      case EventKind::RequestShed: return "request_shed";
      case EventKind::PowerFail: return "power_fail";
      case EventKind::Recharge: return "recharge";
      case EventKind::BlameSegment: return "blame_segment";
      default: return "?";
    }
}

namespace {

/** Human label of a (pseudo-)thread track. */
std::string
threadName(std::uint32_t tid)
{
    if (tid == TraceSink::sweeperTid)
        return "hw sweeper";
    if (tid == TraceSink::kernelTid)
        return "kernel (mappings)";
    return "thread " + std::to_string(tid);
}

/** Chrome wants monotonically usable sort indices, not raw ~0 tids. */
std::uint32_t
trackTid(std::uint32_t tid)
{
    if (tid == TraceSink::sweeperTid)
        return 1000;
    if (tid == TraceSink::kernelTid)
        return 1001;
    return tid;
}

void
printTs(std::ostream &os, Cycles ts)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", cyclesToUs(ts));
    os << buf;
}

} // namespace

void
writeChromeTrace(const TraceSink &sink, std::ostream &os,
                 const std::string &process_name)
{
    const int pid = 1;
    std::vector<Event> events = sink.merged();

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\""
       << process_name << "\"}}";

    for (const auto &[tid, buf] : sink.buffers()) {
        (void)buf;
        os << ",\n{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":"
           << trackTid(tid)
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << threadName(tid) << "\"}}";
    }

    for (const Event &e : events) {
        os << ",\n";
        switch (e.kind) {
          case EventKind::RegionBegin:
          case EventKind::RegionEnd: {
            // Nestable async span per (thread, PMO): regions on the
            // same thread for different PMOs may interleave without
            // nesting, so plain B/E duration events would misrender.
            std::uint64_t id =
                (static_cast<std::uint64_t>(trackTid(e.tid)) << 20) |
                (e.pmo & 0xfffff);
            os << "{\"ph\":\""
               << (e.kind == EventKind::RegionBegin ? 'b' : 'e')
               << "\",\"cat\":\"region\",\"id\":" << id
               << ",\"pid\":" << pid << ",\"tid\":" << trackTid(e.tid)
               << ",\"name\":\"region pmo" << e.pmo << " t" << e.tid
               << "\",\"ts\":";
            printTs(os, e.ts);
            os << "}";
            break;
          }
          case EventKind::RealAttach:
          case EventKind::RealDetach: {
            // Async span per PMO: its mapped window (= the exposure
            // window). The arg carries the virtual base address.
            os << "{\"ph\":\""
               << (e.kind == EventKind::RealAttach ? 'b' : 'e')
               << "\",\"cat\":\"pmo\",\"id\":" << e.pmo
               << ",\"pid\":" << pid << ",\"tid\":" << trackTid(e.tid)
               << ",\"name\":\"pmo" << e.pmo
               << " mapped\",\"ts\":";
            printTs(os, e.ts);
            os << ",\"args\":{\"base\":\"0x" << std::hex << e.arg
               << std::dec << "\"}},\n";
            // ... plus an instant on the emitting thread's track.
            os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
               << ",\"tid\":" << trackTid(e.tid) << ",\"name\":\""
               << eventKindName(e.kind) << " pmo" << e.pmo
               << "\",\"ts\":";
            printTs(os, e.ts);
            os << "}";
            break;
          }
          default: {
            os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
               << ",\"tid\":" << trackTid(e.tid) << ",\"name\":\""
               << eventKindName(e.kind);
            if (e.pmo != noPmo)
                os << " pmo" << e.pmo;
            os << "\",\"ts\":";
            printTs(os, e.ts);
            os << ",\"args\":{\"arg\":" << e.arg << ",\"seq\":"
               << e.seq << "}}";
            break;
          }
        }
    }
    os << "\n]}\n";
}

void
writeJsonl(const TraceSink &sink, std::ostream &os)
{
    for (const Event &e : sink.merged()) {
        os << "{\"seq\":" << e.seq << ",\"ts\":" << e.ts
           << ",\"tid\":" << e.tid << ",\"kind\":\""
           << eventKindName(e.kind) << "\"";
        if (e.pmo != noPmo)
            os << ",\"pmo\":" << e.pmo;
        os << ",\"arg\":" << e.arg << "}\n";
    }
}

bool
writeChromeTraceFile(const TraceSink &sink, const std::string &path,
                     const std::string &process_name)
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeChromeTrace(sink, f, process_name);
    return static_cast<bool>(f);
}

bool
writeJsonlFile(const TraceSink &sink, const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJsonl(sink, f);
    return static_cast<bool>(f);
}

} // namespace trace
} // namespace terp
