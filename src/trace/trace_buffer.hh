/**
 * @file
 * Per-thread fixed-capacity ring-buffer event log and the process
 * sink that owns one buffer per thread.
 *
 * Design constraints:
 *   - cheap enough to leave on: emit() is a bounds-checked array
 *     store plus two counter increments, fully inlined here so that
 *     emitting modules (sim, pm) need no link dependency on the
 *     trace library;
 *   - bounded memory: when a buffer wraps, the oldest events are
 *     overwritten and counted in an explicit drop counter — recent
 *     history survives, and consumers (the auditor) can tell a
 *     complete trace from a truncated one;
 *   - a true no-op when disabled: modules hold a nullable sink
 *     pointer and emit nothing (and charge nothing) without one.
 */

#ifndef TERP_TRACE_TRACE_BUFFER_HH
#define TERP_TRACE_TRACE_BUFFER_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "trace/event.hh"

namespace terp {
namespace trace {

/** Fixed-capacity overwrite-oldest ring buffer of events. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity)
        : slots(capacity ? capacity : 1)
    {
    }

    /** Append; overwrites the oldest retained event when full. */
    void
    push(const Event &e)
    {
        slots[static_cast<std::size_t>(writes % slots.size())] = e;
        ++writes;
    }

    /** Total events ever pushed. */
    std::uint64_t written() const { return writes; }

    /** Events lost to wrap-around (written - retained). */
    std::uint64_t
    dropped() const
    {
        return writes > slots.size() ? writes - slots.size() : 0;
    }

    /** Events currently retained. */
    std::size_t
    size() const
    {
        return writes < slots.size() ? static_cast<std::size_t>(writes)
                                     : slots.size();
    }

    std::size_t capacity() const { return slots.size(); }

    /** Retained events, oldest first. */
    std::vector<Event>
    events() const
    {
        std::vector<Event> out;
        out.reserve(size());
        std::uint64_t first = dropped();
        for (std::uint64_t i = first; i < writes; ++i)
            out.push_back(
                slots[static_cast<std::size_t>(i % slots.size())]);
        return out;
    }

  private:
    std::vector<Event> slots;
    std::uint64_t writes = 0;
};

/**
 * The process-wide sink: one ring buffer per emitting thread (plus
 * pseudo-threads for the hardware sweeper and the kernel's
 * address-space operations), a global sequence counter giving a
 * total emission order, and aggregate drop accounting.
 */
class TraceSink
{
  public:
    /** Pseudo-tid for sweeper-timer events. */
    static constexpr std::uint32_t sweeperTid = 0xfffffffeu;
    /** Pseudo-tid for kernel address-space (map/unmap) events. */
    static constexpr std::uint32_t kernelTid = 0xffffffffu;

    static constexpr std::size_t defaultCapacity = 1u << 16;

    explicit TraceSink(std::size_t per_thread_capacity = defaultCapacity)
        : cap(per_thread_capacity ? per_thread_capacity : 1)
    {
    }

    /** Record one event. The hot path; fully inline. */
    void
    emit(std::uint32_t tid, EventKind kind, Cycles ts,
         std::uint64_t pmo = noPmo, std::uint64_t arg = 0)
    {
        Event e;
        e.ts = ts;
        e.seq = nextSeq++;
        e.pmo = pmo;
        e.arg = arg;
        e.tid = tid;
        e.kind = kind;
        bufferFor(tid).push(e);
        if (ts > lastTs)
            lastTs = ts;
    }

    /**
     * Record a kernel address-space event. The kernel module has no
     * clock of its own; the event is stamped with the latest
     * timestamp seen, and the sequence number preserves its true
     * position between the caller's surrounding events.
     */
    void
    emitKernel(EventKind kind, std::uint64_t pmo, std::uint64_t arg = 0)
    {
        emit(kernelTid, kind, lastTs, pmo, arg);
    }

    /** Per-thread buffers, keyed by (pseudo-)tid. */
    const std::map<std::uint32_t, TraceBuffer> &
    buffers() const
    {
        return perThread;
    }

    /** All retained events merged into emission (seq) order. */
    std::vector<Event>
    merged() const
    {
        std::vector<Event> out;
        for (const auto &[tid, buf] : perThread) {
            (void)tid;
            std::vector<Event> es = buf.events();
            out.insert(out.end(), es.begin(), es.end());
        }
        std::sort(out.begin(), out.end(),
                  [](const Event &a, const Event &b) {
                      return a.seq < b.seq;
                  });
        return out;
    }

    std::uint64_t
    totalEmitted() const
    {
        std::uint64_t n = 0;
        for (const auto &[tid, buf] : perThread) {
            (void)tid;
            n += buf.written();
        }
        return n;
    }

    std::uint64_t
    totalDropped() const
    {
        std::uint64_t n = 0;
        for (const auto &[tid, buf] : perThread) {
            (void)tid;
            n += buf.dropped();
        }
        return n;
    }

    /** The trace retains every emitted event (nothing wrapped). */
    bool complete() const { return totalDropped() == 0; }

    /** Latest timestamp emitted so far. */
    Cycles lastTimestamp() const { return lastTs; }

    std::size_t perThreadCapacity() const { return cap; }

  private:
    TraceBuffer &
    bufferFor(std::uint32_t tid)
    {
        auto it = perThread.find(tid);
        if (it == perThread.end())
            it = perThread.emplace(tid, TraceBuffer(cap)).first;
        return it->second;
    }

    std::size_t cap;
    std::map<std::uint32_t, TraceBuffer> perThread;
    std::uint64_t nextSeq = 0;
    Cycles lastTs = 0;
};

} // namespace trace
} // namespace terp

#endif // TERP_TRACE_TRACE_BUFFER_HH
