/**
 * @file
 * Trace event taxonomy and the compact binary event record.
 *
 * The paper's central claims are temporal — exposure windows open and
 * close, silent operations elide syscalls, the sweeper force-detaches
 * — so the tracer records *when* every protection-relevant transition
 * happened, not just how often. Each record is a fixed-size POD
 * (cycle timestamp, global sequence number, PMO id, kind-specific
 * argument, thread id, event kind) cheap enough to emit on every
 * protection operation.
 */

#ifndef TERP_TRACE_EVENT_HH
#define TERP_TRACE_EVENT_HH

#include <cstdint>

#include "common/units.hh"

namespace terp {
namespace trace {

/**
 * What happened. The taxonomy mirrors the paper's event vocabulary:
 * real operations perform mapping-changing system calls; silent ones
 * are elided by window combining (TT), the EW-conscious closing rule
 * (TM), or dynamic region nesting.
 */
enum class EventKind : std::uint8_t
{
    RealAttach = 0,  //!< attach() syscall; arg = new vaddr base
    SilentAttach,    //!< begin elided (already mapped / nested); arg = reason
    RealDetach,      //!< detach() syscall; arg = old vaddr base
    SilentDetach,    //!< end elided (delayed / partial / nested); arg = reason
    Randomize,       //!< sweeper in-place re-randomization; arg = new base
    SweepTick,       //!< periodic hardware sweep timer fired
    DelayedDetach,   //!< sweeper applies a pending delayed detach
    RegionBegin,     //!< protection-region entry (manual or inserted); arg = mode
    RegionEnd,       //!< protection-region exit
    ThreadGrant,     //!< thread gained access permission; arg = mode
    ThreadRevoke,    //!< thread lost access permission
    AccessFault,     //!< checked access denied; arg = AccessOutcome
    ThreadStart,     //!< simulated thread entered the scheduler
    ThreadFinish,    //!< simulated thread's job completed
    PmoMap,          //!< address space: PMO mapped; arg = vaddr base
    PmoUnmap,        //!< address space: PMO unmapped; arg = old base
    PmoRemap,        //!< address space: PMO moved; arg = new base
    Crash,           //!< modeled power failure; arg = persist boundary
    Recover,         //!< post-crash recovery pass over a PMO's log
    SessionStart,    //!< serve: client session issued its first request; arg = session id
    SessionEnd,      //!< serve: client session completed/cancelled; arg = session id
    RequestStart,    //!< serve: request dequeued onto a worker; arg = session id
    RequestDone,     //!< serve: request completed; arg = session id
    RequestShed,     //!< serve: bounded queue full, request shed; arg = session id
    PowerFail,       //!< energy: capacitor crossed the fail threshold; arg = stored units
    Recharge,        //!< energy: capacitor recharged, execution resumes; arg = off-time cycles
    BlameSegment,    //!< exposure blame span ends at ts; arg = BlameCause
    NumKinds
};

/** Printable name of an event kind (stable, snake_case). */
const char *eventKindName(EventKind k);

/** Reason codes carried in the arg of Silent{Attach,Detach}. */
namespace silent {

constexpr std::uint64_t nested = 1;   //!< inner pair of a dynamic nest
constexpr std::uint64_t combined = 2; //!< CB case 2/3: window combined
constexpr std::uint64_t mapped = 3;   //!< already mapped (TM / +Cond)
constexpr std::uint64_t partial = 4;  //!< other threads still attached
constexpr std::uint64_t delayed = 5;  //!< DD bit set / EW-conscious defer

} // namespace silent

/** Sentinel PMO id for events not tied to a PMO. */
constexpr std::uint64_t noPmo = ~0ULL;

/** One trace record. POD, fixed size, no ownership. */
struct Event
{
    Cycles ts = 0;          //!< thread-virtual cycle timestamp
    std::uint64_t seq = 0;  //!< global emission order (total order)
    std::uint64_t pmo = noPmo;
    std::uint64_t arg = 0;  //!< kind-specific payload
    std::uint32_t tid = 0;  //!< emitting thread (or pseudo-tid)
    EventKind kind = EventKind::NumKinds;
};

} // namespace trace
} // namespace terp

#endif // TERP_TRACE_EVENT_HH
