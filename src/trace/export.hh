/**
 * @file
 * Trace exporters: Chrome-trace/Perfetto JSON and JSONL.
 *
 * The Chrome format (open with https://ui.perfetto.dev or
 * chrome://tracing) lays the run out as one track per simulated
 * thread — instant events for attaches/detaches/faults and nestable
 * async spans for protection regions — plus one async track per PMO
 * showing the windows during which it was mapped, i.e. the exposure
 * windows the paper measures.
 */

#ifndef TERP_TRACE_EXPORT_HH
#define TERP_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>

#include "trace/trace_buffer.hh"

namespace terp {
namespace trace {

/** Write the whole trace as Chrome-trace JSON. */
void writeChromeTrace(const TraceSink &sink, std::ostream &os,
                      const std::string &process_name = "terp");

/** Write one JSON object per event, one per line (JSONL). */
void writeJsonl(const TraceSink &sink, std::ostream &os);

/** Convenience: write either format to a file path. Returns false on
 *  I/O failure. */
bool writeChromeTraceFile(const TraceSink &sink,
                          const std::string &path,
                          const std::string &process_name = "terp");
bool writeJsonlFile(const TraceSink &sink, const std::string &path);

} // namespace trace
} // namespace terp

#endif // TERP_TRACE_EXPORT_HH
