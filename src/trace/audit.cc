#include "trace/audit.hh"

#include <set>
#include <sstream>

namespace terp {
namespace trace {

namespace {

/** Replay scratch state for one PMO. */
struct PmoReplay
{
    bool open = false;
    Cycles openSince = 0;
    std::map<std::uint32_t, Cycles> threadOpenSince;
    /** Start of the next blame segment of the current window. */
    Cycles blameCursor = 0;
};

void
mismatch(AuditReport &r, const std::string &msg)
{
    r.mismatches.push_back(msg);
}

std::string
describe(const Event &e)
{
    std::ostringstream os;
    os << "seq " << e.seq << " ts " << e.ts << " tid " << e.tid
       << " " << eventKindName(e.kind) << " pmo " << e.pmo;
    return os.str();
}

void
compareTally(AuditReport &r, const char *what, std::uint64_t pmo,
             const WindowTally &got, const Summary *want)
{
    std::uint64_t wc = want ? want->count() : 0;
    std::uint64_t ws = want ? want->sum() : 0;
    std::uint64_t wlo = want ? want->min() : 0;
    std::uint64_t wm = want ? want->max() : 0;
    if (got.count() == wc && got.sum() == ws && got.min() == wlo &&
        got.max() == wm) {
        return;
    }
    std::ostringstream os;
    os << what << " pmo " << pmo << ": trace replay {n=" << got.count()
       << " sum=" << got.sum() << " min=" << got.min() << " max="
       << got.max() << "} vs EwTracker {n=" << wc << " sum="
       << ws << " min=" << wlo << " max=" << wm << "}";
    mismatch(r, os.str());
}

/**
 * Closed window of recomputed length @p len: its blame segments
 * (which advanced blameCursor from openSince) must tile it exactly.
 */
void
checkBlameTiling(AuditReport &r, std::uint64_t pmo, PmoReplay &s,
                 Cycles len)
{
    if (s.blameCursor == s.openSince + len)
        return;
    std::ostringstream os;
    os << "blame segments don't tile window: pmo " << pmo
       << " open " << s.openSince << " len " << len
       << " segments cover " << (s.blameCursor - s.openSince);
    mismatch(r, os.str());
}

} // namespace

std::string
AuditReport::summary() const
{
    std::ostringstream os;
    if (ok) {
        os << "audit OK: " << ew.size() << " PMO(s), EW/TEW match "
           << "EwTracker exactly";
        return os.str();
    }
    os << "audit FAILED (" << mismatches.size() << " mismatch(es)";
    if (!complete)
        os << "; trace incomplete";
    os << ")";
    if (!mismatches.empty())
        os << ": " << mismatches.front();
    return os.str();
}

AuditReport
replayTimeline(const std::vector<Event> &events, Cycles t_end)
{
    AuditReport r;
    std::map<std::uint64_t, PmoReplay> state;

    for (const Event &e : events) {
        switch (e.kind) {
          case EventKind::RealAttach: {
            PmoReplay &s = state[e.pmo];
            if (s.open) {
                mismatch(r, "attach of already-open window: " +
                                describe(e));
                break;
            }
            s.open = true;
            s.openSince = e.ts;
            s.blameCursor = e.ts;
            break;
          }
          case EventKind::RealDetach: {
            PmoReplay &s = state[e.pmo];
            if (!s.open) {
                mismatch(r, "detach without open window: " +
                                describe(e));
                break;
            }
            Cycles len =
                e.ts >= s.openSince ? e.ts - s.openSince : 0;
            r.ew[e.pmo].add(len);
            checkBlameTiling(r, e.pmo, s, len);
            s.open = false;
            break;
          }
          case EventKind::Randomize: {
            // Sweeper in-place re-randomization: the location dies,
            // so the runtime closes the window and opens a new one
            // at the same instant.
            PmoReplay &s = state[e.pmo];
            if (!s.open) {
                mismatch(r, "randomize of unmapped PMO: " +
                                describe(e));
                break;
            }
            Cycles len =
                e.ts >= s.openSince ? e.ts - s.openSince : 0;
            r.ew[e.pmo].add(len);
            checkBlameTiling(r, e.pmo, s, len);
            s.openSince = e.ts;
            s.blameCursor = e.ts;
            break;
          }
          case EventKind::BlameSegment: {
            // Emitted at window close, one per final segment; ts is
            // the segment's end, the previous end (or the window
            // open) its start.
            PmoReplay &s = state[e.pmo];
            if (!s.open) {
                mismatch(r, "blame segment outside a window: " +
                                describe(e));
                break;
            }
            if (e.arg >= semantics::numBlameCauses ||
                e.ts <= s.blameCursor) {
                mismatch(r, "malformed blame segment: " +
                                describe(e));
                break;
            }
            auto &sums = r.blame[e.pmo];
            sums[e.arg] += e.ts - s.blameCursor;
            s.blameCursor = e.ts;
            break;
          }
          case EventKind::ThreadGrant: {
            PmoReplay &s = state[e.pmo];
            if (s.threadOpenSince.count(e.tid)) {
                mismatch(r, "double thread grant: " + describe(e));
                break;
            }
            s.threadOpenSince[e.tid] = e.ts;
            break;
          }
          case EventKind::ThreadRevoke: {
            PmoReplay &s = state[e.pmo];
            auto it = s.threadOpenSince.find(e.tid);
            if (it == s.threadOpenSince.end()) {
                mismatch(r, "revoke without grant: " + describe(e));
                break;
            }
            r.tew[e.pmo].add(e.ts >= it->second ? e.ts - it->second
                                                : 0);
            s.threadOpenSince.erase(it);
            break;
          }
          default:
            break; // other kinds don't move exposure state
        }
    }

    // End of run: close every still-open window, as finalize() does.
    for (auto &[pmo, s] : state) {
        if (s.open) {
            Cycles len =
                t_end >= s.openSince ? t_end - s.openSince : 0;
            r.ew[pmo].add(len);
            // finalize() emits the final window's segments; a trace
            // cut before finalize legitimately has none, so only a
            // partial tiling is a replay error here.
            if (s.blameCursor != s.openSince)
                checkBlameTiling(r, pmo, s, len);
        }
        for (const auto &[tid, since] : s.threadOpenSince) {
            (void)tid;
            r.tew[pmo].add(t_end >= since ? t_end - since : 0);
        }
    }

    r.ok = r.mismatches.empty();
    return r;
}

AuditReport
auditEvents(const std::vector<Event> &events, bool complete,
            Cycles t_end, const semantics::EwTracker &expected)
{
    AuditReport r = replayTimeline(events, t_end);
    r.complete = complete;
    if (!complete) {
        mismatch(r, "trace incomplete: ring buffers dropped events, "
                    "cannot audit");
    }

    // Every PMO either side saw must agree on both window kinds.
    std::set<std::uint64_t> pmos;
    for (const auto &[pmo, t] : r.ew) {
        (void)t;
        pmos.insert(pmo);
    }
    for (const auto &[pmo, t] : r.tew) {
        (void)t;
        pmos.insert(pmo);
    }
    for (pm::PmoId pmo : expected.pmosSeen())
        pmos.insert(pmo);

    for (std::uint64_t pmo : pmos) {
        auto id = static_cast<pm::PmoId>(pmo);
        auto eit = r.ew.find(pmo);
        auto tit = r.tew.find(pmo);
        compareTally(r, "EW", pmo,
                     eit != r.ew.end() ? eit->second : WindowTally{},
                     expected.ewSummaryFor(id));
        compareTally(r, "TEW", pmo,
                     tit != r.tew.end() ? tit->second : WindowTally{},
                     expected.tewSummaryFor(id));

        // Blame attribution: the recomputed per-cause totals must
        // equal the tracker's bit-exactly (third independent copy of
        // the blame-sum == EW invariant).
        auto bit = r.blame.find(pmo);
        for (unsigned c = 0; c < semantics::numBlameCauses; ++c) {
            Cycles got = bit != r.blame.end() ? bit->second[c] : 0;
            Cycles want = expected.blameTotal(
                id, static_cast<semantics::BlameCause>(c));
            if (got == want)
                continue;
            std::ostringstream os;
            os << "blame pmo " << pmo << " cause "
               << semantics::blameCauseName(
                      static_cast<semantics::BlameCause>(c))
               << ": trace replay " << got << " vs EwTracker "
               << want;
            mismatch(r, os.str());
        }
    }

    r.ok = r.mismatches.empty();
    return r;
}

AuditReport
auditTimeline(const TraceSink &sink, Cycles t_end,
              const semantics::EwTracker &expected)
{
    return auditEvents(sink.merged(), sink.complete(), t_end,
                       expected);
}

} // namespace trace
} // namespace terp
