#include "security/dead_time.hh"

namespace terp {
namespace security {

DeadTimeAnalysis::DeadTimeAnalysis()
    : hist(Histogram::log2Buckets(0.5, 1024.0))
{
}

void
DeadTimeAnalysis::add(double dead_time_us)
{
    hist.add(dead_time_us);
}

void
DeadTimeAnalysis::addAll(const std::vector<double> &samples_us)
{
    for (double s : samples_us)
        hist.add(s);
}

double
DeadTimeAnalysis::surfaceReduction(double tew_us) const
{
    return hist.fractionAbove(tew_us);
}

double
DeadTimeAnalysis::recommendTew(double target) const
{
    // The largest TEW (coarsest, cheapest insertion) that still
    // removes the target share of the attack surface.
    double best = 0.0;
    for (double bound : hist.bounds()) {
        if (surfaceReduction(bound) + 1e-12 >= target)
            best = bound;
    }
    return best;
}

} // namespace security
} // namespace terp
