/**
 * @file
 * The data-only attack case study of Section VII-D / Fig 12.
 *
 * A vulnerable FTP-server-like program processes requests in a
 * dispatcher loop; a buffer overflow in readData() lets the attacker
 * control three local pointers each round. By chaining the
 * program's own dereference / assignment / addition gadgets, the
 * attacker increments every node of a linked list stored in a PMO
 * (the attack goal of Fig 12b) without touching control flow.
 *
 * The simulation runs the same vulnerable program under different
 * protection schemes:
 *  - Unprotected: the attack corrupts the whole list.
 *  - MM (MERR with a coarse, whole-loop manual window): corruption
 *    proceeds until the first re-randomization invalidates the
 *    attacker's leaked addresses.
 *  - TT (TERP): the gadgets execute outside any thread exposure
 *    window, so every attacker access is denied.
 *
 * The attacker is granted a one-time leak of the PMO's base address
 * in the first exposure window (the strongest realistic starting
 * point); all later placements are unknown.
 */

#ifndef TERP_SECURITY_DOP_HH
#define TERP_SECURITY_DOP_HH

#include <cstdint>
#include <string>

#include "core/config.hh"

namespace terp {
namespace security {

/** Outcome of one attack run. */
struct DopResult
{
    std::string scheme;
    std::uint64_t listLength = 0;
    std::uint64_t roundsExecuted = 0;
    std::uint64_t nodesCorrupted = 0; //!< props changed by the value
    std::uint64_t accessFaults = 0;   //!< denied attacker accesses
    std::uint64_t randomizations = 0; //!< placement changes observed
    double totalUs = 0;               //!< simulated run time
    bool attackGoalAchieved = false;  //!< every node corrupted
};

/**
 * Run the Fig 12 attack under a scheme.
 *
 * @param cfg      Protection scheme configuration.
 * @param list_len Linked-list length (one attack per node, two
 *                 dispatcher rounds each).
 * @param value    The increment the attacker tries to apply.
 */
DopResult runFtpAttack(const core::RuntimeConfig &cfg,
                       unsigned list_len = 64,
                       std::uint64_t value = 7);

} // namespace security
} // namespace terp

#endif // TERP_SECURITY_DOP_HH
