/**
 * @file
 * Data-only gadget analysis (Table VI of the paper).
 *
 * A gadget is a load/store whose address an attacker who controls
 * local variables could redirect at a PMO. TERP disarms a gadget
 * when it sits at a program point where the executing thread holds
 * no open PMO permission; MERR only disarms gadgets outside its
 * (much coarser) process-wide attach/detach windows.
 *
 * Two complementary measures are provided:
 *  - a static census over the instrumented IR: the fraction of
 *    memory instructions at points with no open pair;
 *  - the time-weighted rate from runtime exposure metrics, which is
 *    what the paper's 96.6% / 89.98% numbers correspond to
 *    (1 - thread exposure rate for TERP; exposure rate for MERR).
 */

#ifndef TERP_SECURITY_GADGET_HH
#define TERP_SECURITY_GADGET_HH

#include <cstdint>

#include "compiler/ir.hh"
#include "compiler/pmo_analysis.hh"

namespace terp {
namespace security {

/** Static gadget census over one instrumented module. */
struct GadgetCensus
{
    std::uint64_t totalGadgets = 0; //!< all load/store instructions
    /** Gadgets inside an open CONDAT..CONDDT pair (TERP-exposed). */
    std::uint64_t terpExposed = 0;
    /** Gadgets inside a manual attach..detach window (MERR-exposed). */
    std::uint64_t merrExposed = 0;

    double
    terpDisarmRate() const
    {
        return totalGadgets == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(terpExposed) /
                               static_cast<double>(totalGadgets);
    }

    double
    merrDisarmRate() const
    {
        return totalGadgets == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(merrExposed) /
                               static_cast<double>(totalGadgets);
    }
};

/** Walk every function and classify each memory instruction. */
GadgetCensus analyzeGadgets(const compiler::Module &m);

/** Time-weighted gadget disarm rate under TERP (1 - TER). */
double terpTimeWeightedDisarmRate(double thread_exposure_rate);

/** Time-weighted gadget exposure under MERR (= ER). */
double merrTimeWeightedKeptRate(double exposure_rate);

} // namespace security
} // namespace terp

#endif // TERP_SECURITY_GADGET_HH
