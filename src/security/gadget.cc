#include "security/gadget.hh"

#include <deque>
#include <map>
#include <optional>

#include "common/logging.hh"

namespace terp {
namespace security {

namespace {

using compiler::BasicBlock;
using compiler::BlockId;
using compiler::Function;
using compiler::Instr;
using compiler::Op;

/** Open-pair counts at a program point: (cond pairs, manual pairs). */
struct PairState
{
    std::map<pm::PmoId, int> cond;
    std::map<pm::PmoId, int> manual;

    bool
    anyCondOpen() const
    {
        for (const auto &[p, d] : cond)
            if (d > 0)
                return true;
        return false;
    }

    bool
    anyManualOpen() const
    {
        for (const auto &[p, d] : manual)
            if (d > 0)
                return true;
        return false;
    }

    bool
    operator==(const PairState &o) const
    {
        auto nonzero_equal = [](const std::map<pm::PmoId, int> &a,
                                const std::map<pm::PmoId, int> &b) {
            for (const auto &[k, v] : a) {
                auto it = b.find(k);
                if (v != (it == b.end() ? 0 : it->second))
                    return false;
            }
            for (const auto &[k, v] : b) {
                auto it = a.find(k);
                if (v != (it == a.end() ? 0 : it->second))
                    return false;
            }
            return true;
        };
        return nonzero_equal(cond, o.cond) &&
               nonzero_equal(manual, o.manual);
    }
};

void
censusFunction(const Function &f, GadgetCensus &census)
{
    std::vector<std::optional<PairState>> in(f.blockCount());
    std::deque<BlockId> wl;
    in[0] = PairState{};
    wl.push_back(0);

    while (!wl.empty()) {
        BlockId b = wl.front();
        wl.pop_front();
        PairState st = *in[b];

        for (const Instr &ins : f.block(b).instrs) {
            switch (ins.op) {
              case Op::CondAttach:
                ++st.cond[ins.pmo];
                break;
              case Op::CondDetach:
                --st.cond[ins.pmo];
                break;
              case Op::ManualAttach:
                ++st.manual[ins.pmo];
                break;
              case Op::ManualDetach:
                --st.manual[ins.pmo];
                break;
              case Op::Load:
              case Op::Store:
                ++census.totalGadgets;
                if (st.anyCondOpen())
                    ++census.terpExposed;
                if (st.anyManualOpen())
                    ++census.merrExposed;
                break;
              default:
                break;
            }
        }

        for (BlockId s : f.successors(b)) {
            if (!in[s]) {
                in[s] = st;
                wl.push_back(s);
            }
            // Joins with inconsistent states would be verifier
            // errors; for the census we keep the first-seen state.
        }
    }
}

} // namespace

GadgetCensus
analyzeGadgets(const compiler::Module &m)
{
    GadgetCensus census;
    for (const Function &f : m.functions)
        censusFunction(f, census);
    return census;
}

double
terpTimeWeightedDisarmRate(double thread_exposure_rate)
{
    return 1.0 - thread_exposure_rate;
}

double
merrTimeWeightedKeptRate(double exposure_rate)
{
    return exposure_rate;
}

} // namespace security
} // namespace terp
