#include "security/attack_model.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace terp {
namespace security {

double
probesPerWindow(const AttackScenario &s)
{
    TERP_ASSERT(s.attackTimeUs > 0.0);
    return s.ewUs * s.accessibleFraction / s.attackTimeUs;
}

double
successProbabilityPercent(const AttackScenario &s)
{
    double slots = std::pow(2.0, static_cast<double>(s.entropyBits));
    double p = probesPerWindow(s) / slots;
    if (p > 1.0)
        p = 1.0;
    return p * 100.0;
}

double
monteCarloSuccessPercent(const AttackScenario &s,
                         std::uint64_t windows, Rng &rng)
{
    const std::uint64_t slots = 1ULL << s.entropyBits;
    const auto probes =
        static_cast<std::uint64_t>(probesPerWindow(s));
    std::uint64_t hits = 0;
    for (std::uint64_t w = 0; w < windows; ++w) {
        std::uint64_t target = rng.nextBelow(slots);
        for (std::uint64_t i = 0; i < probes; ++i) {
            if (rng.nextBelow(slots) == target) {
                ++hits;
                break;
            }
        }
    }
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(windows);
}

double
expectedWindowsToBreach(const AttackScenario &s)
{
    double p = successProbabilityPercent(s) / 100.0;
    if (p <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / p;
}

} // namespace security
} // namespace terp
