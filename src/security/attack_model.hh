/**
 * @file
 * Quantitative attack model for Table V of the paper.
 *
 * An attacker who can issue one probe per "attack time" x must find
 * the PMO's randomized placement among 2^entropy slots before the
 * exposure window closes and the placement changes. With MERR the
 * whole EW is usable; with TERP the compromised thread only holds
 * access permission for a small fraction of the EW (the thread
 * exposure rate), shrinking the probe budget ~30x.
 *
 * successProbability = (ewUs * accessibleFraction / attackTimeUs)
 *                      / 2^entropyBits
 *
 * A Monte-Carlo probing simulation validates the closed form.
 */

#ifndef TERP_SECURITY_ATTACK_MODEL_HH
#define TERP_SECURITY_ATTACK_MODEL_HH

#include <cstdint>

#include "common/rng.hh"

namespace terp {
namespace security {

/** One attack scenario (a row/column of Table V). */
struct AttackScenario
{
    unsigned entropyBits = 18;  //!< 1 GB PMO placement entropy
    double ewUs = 40.0;         //!< exposure-window size
    double attackTimeUs = 1.0;  //!< x: time per probe/attempt
    /**
     * Fraction of the window during which the compromised thread
     * actually holds access permission: 1.0 for MERR; the measured
     * thread exposure rate divided by exposure rate for TERP.
     */
    double accessibleFraction = 1.0;
};

/** Probes the attacker can issue within one exposure window. */
double probesPerWindow(const AttackScenario &s);

/** Closed-form per-window success probability, in percent. */
double successProbabilityPercent(const AttackScenario &s);

/**
 * Monte-Carlo estimate: simulate @p windows exposure windows, each
 * with a freshly randomized placement, the attacker probing
 * uniformly random slots. Returns the measured percent of windows
 * in which the placement was found.
 */
double monteCarloSuccessPercent(const AttackScenario &s,
                                std::uint64_t windows, Rng &rng);

/**
 * Expected exposure windows until an attack succeeds (the
 * "longevity" of protection under sustained attack).
 */
double expectedWindowsToBreach(const AttackScenario &s);

} // namespace security
} // namespace terp

#endif // TERP_SECURITY_ATTACK_MODEL_HH
