/**
 * @file
 * Dead-time analysis (Section VII-A / Fig 8 of the paper).
 *
 * The object dead time — from the last write to a heap object until
 * its deallocation — is the window during which a data-only attack
 * can plant a corruption that persists (earlier corruptions would be
 * overwritten by the victim). The distribution of dead times
 * therefore sets the TEW target: choosing a TEW below the p-th
 * percentile removes p percent of the attack surface.
 */

#ifndef TERP_SECURITY_DEAD_TIME_HH
#define TERP_SECURITY_DEAD_TIME_HH

#include <vector>

#include "common/stats.hh"

namespace terp {
namespace security {

/** Aggregates dead-time samples and answers TEW-selection queries. */
class DeadTimeAnalysis
{
  public:
    DeadTimeAnalysis();

    /** Record one dead time (microseconds). */
    void add(double dead_time_us);

    /** Record a batch of samples. */
    void addAll(const std::vector<double> &samples_us);

    /**
     * Fraction of the attack surface a TEW of @p tew_us removes:
     * the share of dead times at or above the TEW (corruptions need
     * the permission to stay open into the dead window).
     */
    double surfaceReduction(double tew_us) const;

    /**
     * Smallest TEW (from the Fig 8 bucket boundaries) whose surface
     * reduction reaches @p target (e.g. 0.95 -> 2 us in the paper).
     */
    double recommendTew(double target) const;

    /** The Fig 8 histogram (log2 buckets, 0.5 us .. 1024 us). */
    const Histogram &histogram() const { return hist; }

    std::uint64_t sampleCount() const { return hist.totalCount(); }
    double medianUs() const { return hist.percentile(50.0); }

  private:
    Histogram hist;
};

} // namespace security
} // namespace terp

#endif // TERP_SECURITY_DEAD_TIME_HH
