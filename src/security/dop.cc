#include "security/dop.hh"

#include "common/logging.hh"
#include "compiler/builder.hh"
#include "compiler/interp.hh"
#include "compiler/pass.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

namespace terp {
namespace security {

namespace {

using compiler::FunctionBuilder;
using compiler::Reg;

// PMO layout: server struct at 0, list nodes from nodeBase.
constexpr std::uint64_t nodeBase = 256;
constexpr std::uint64_t nodeSize = 16; // {next(oid), prop}

// DRAM layout: attacker-visible locals and the request buffer.
constexpr std::uint64_t inputOff = 0x1000; //!< 3 words per round
constexpr std::uint64_t streamSlot = 0x100; //!< holds the tag 1
constexpr std::uint64_t addSlot = 0x108;    //!< holds the tag 2
constexpr std::uint64_t valueSlot = 0x110;  //!< attacker's increment
constexpr std::uint64_t listSlot = 0x118;   //!< 'list' local
constexpr std::uint64_t scratchSlot = 0x120;

/**
 * Build the vulnerable dispatcher program (Fig 12a). The manual
 * attach wraps the whole request loop — the kind of coarse,
 * error-prone MERR insertion the paper warns about.
 */
std::uint32_t
buildVictim(compiler::Module &mod, pm::PmoId pmo, unsigned rounds)
{
    FunctionBuilder b(mod, "ftp_server", 0);

    b.manualAttach(pmo);
    b.forLoop(rounds, [&](Reg r) {
        // Legitimate server work: touch the list head through
        // relocatable ObjectIDs (the pass brackets these accesses).
        Reg head = b.load(b.pmoBase(pmo, nodeBase + 8));
        Reg stat = b.add(head, r);
        b.store(b.dramBase(scratchSlot), stat);
        b.compute(2400);

        // readData(socket, buf): the overflow hands the attacker
        // three local pointers for this round.
        Reg in_base = b.dramBase(static_cast<std::int64_t>(inputOff));
        Reg stride = b.constant(24);
        Reg roff = b.add(in_base, b.mul(r, stride));
        Reg type_p = b.load(roff);
        Reg size_p = b.load(b.add(roff, b.constant(8)));
        Reg srv_p = b.load(b.add(roff, b.constant(16)));

        // if (*type == NONE) break;  (modelled as a benign round)
        Reg t = b.load(type_p); // attacker-controlled dereference
        Reg is_stream = b.cmpEq(t, b.constant(1));
        b.ifThenElse(
            is_stream,
            [&]() {
                // *size = *(srv->cur_max);  — pointer-move gadget
                Reg cur_max = b.load(srv_p);
                Reg nx = b.load(cur_max);
                b.store(size_p, nx);
            },
            [&]() {
                // srv->typ = *type; srv->total += *size;
                // — assignment + addition gadgets
                Reg sv = b.load(size_p);
                Reg old = b.load(srv_p);
                b.store(srv_p, b.add(old, sv));
            });
        b.compute(1600);
    });
    b.manualDetach(pmo);
    b.ret();
    return b.finish();
}

} // namespace

DopResult
runFtpAttack(const core::RuntimeConfig &cfg, unsigned list_len,
             std::uint64_t value)
{
    const unsigned rounds = 2 * list_len;
    const std::uint64_t seed = 20220402;

    sim::Machine mach;
    pm::PmoManager pmos(seed);
    pm::Pmo &p = pmos.create("ftp.data", 8 * MiB);
    core::Runtime rt(mach, pmos, cfg);
    pm::MemImage img;

    // Victim state: a linked list of (next, prop) nodes, linked by
    // relocatable ObjectIDs.
    for (unsigned i = 0; i < list_len; ++i) {
        std::uint64_t off = nodeBase + i * nodeSize;
        std::uint64_t next =
            (i + 1 < list_len)
                ? pm::Oid(p.id(), nodeBase + (i + 1) * nodeSize).raw
                : 0;
        img.poke(pm::Oid(p.id(), off).raw, next);
        img.poke(pm::Oid(p.id(), off + 8).raw, 1000 + i);
    }

    // One-time leak: the base address the PMO will get in its first
    // exposure window. A scratch manager with the same seed and
    // creation sequence reproduces the placement choice the attacker
    // observed through an info leak.
    std::uint64_t leaked_base;
    {
        pm::PmoManager oracle(seed);
        pm::Pmo &op = oracle.create("ftp.data", 8 * MiB);
        leaked_base = oracle.mapRandomized(op).newBase;
    }

    // Attacker-controlled request stream (Fig 12c): even rounds move
    // the list pointer, odd rounds add `value` to the node's prop
    // via addresses computed from the leaked base.
    img.poke(streamSlot, 1);
    img.poke(addSlot, 2);
    img.poke(valueSlot, value);
    for (unsigned r = 0; r < rounds; ++r) {
        std::uint64_t base = inputOff + r * 24;
        unsigned node = r / 2;
        std::uint64_t node_vaddr =
            leaked_base + nodeBase + node * nodeSize;
        if (r % 2 == 0) {
            // Pointer-move round: listSlot <- *(node.next).
            img.poke(scratchSlot + 64 + r * 8, node_vaddr); // cur_max
            img.poke(base + 0, streamSlot);
            img.poke(base + 8, listSlot);
            img.poke(base + 16, scratchSlot + 64 + r * 8);
        } else {
            // Addition round: node.prop += *valueSlot.
            img.poke(base + 0, addSlot);
            img.poke(base + 8, valueSlot);
            img.poke(base + 16, node_vaddr + 8);
        }
    }

    // Build, instrument and run the victim.
    compiler::Module mod;
    std::uint32_t entry = buildVictim(mod, p.id(), rounds);
    compiler::PassConfig pc;
    pc.ewLetThreshold = cfg.ewTarget;
    pc.tewLetThreshold = cfg.tewTarget;
    compiler::runInsertionPass(mod, pc);

    compiler::Interpreter interp(mod, rt, mach, img, entry);
    interp.trapFaults = true;
    mach.spawnThread();
    std::vector<sim::Job *> jobs{&interp};
    mach.run(jobs, [&](Cycles now) { rt.onSweep(now); });
    rt.finalize();

    // Inspect the list.
    DopResult res;
    res.scheme = cfg.describe();
    res.listLength = list_len;
    res.roundsExecuted = rounds;
    res.accessFaults = interp.faultCount();
    res.randomizations = rt.counters().get("randomizations");
    res.totalUs = cyclesToUs(mach.maxClock());
    for (unsigned i = 0; i < list_len; ++i) {
        std::uint64_t prop =
            img.peek(pm::Oid(p.id(), nodeBase + i * nodeSize + 8).raw);
        if (prop == 1000 + i + value)
            ++res.nodesCorrupted;
    }
    res.attackGoalAchieved = res.nodesCorrupted == list_len;
    return res;
}

} // namespace security
} // namespace terp
