#include "sim/tlb.hh"

namespace terp {
namespace sim {

TlbHierarchy::TlbHierarchy()
    // 64 entries, 4-way; 1536 entries, 6-way. Capacity in "bytes" is
    // entries * lineSize for the tag-only Cache model. The L2 TLB is
    // 1536 = 256 sets * 6 ways; 256 is a power of two so geometry is
    // valid.
    : l1(64 * lineSize, 4), l2(1536 * lineSize, 6)
{
}

void
TlbHierarchy::shootdownAll()
{
    l1.invalidateAll();
    l2.invalidateAll();
}

void
TlbHierarchy::shootdownRange(std::uint64_t lo, std::uint64_t hi)
{
    l1.invalidateRange(pageKey(lo), pageKey(hi - 1) + lineSize);
    l2.invalidateRange(pageKey(lo), pageKey(hi - 1) + lineSize);
}

} // namespace sim
} // namespace terp
