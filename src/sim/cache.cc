#include "sim/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace terp {
namespace sim {

Cache::Cache(std::uint64_t size_bytes, unsigned ways,
             std::uint64_t line_bytes)
    : nWays(ways)
{
    TERP_ASSERT(std::has_single_bit(line_bytes));
    TERP_ASSERT(ways > 0);
    lineShiftBits = static_cast<std::uint64_t>(
        std::countr_zero(line_bytes));
    nSets = size_bytes / (line_bytes * ways);
    TERP_ASSERT(nSets > 0 && std::has_single_bit(nSets),
                "cache geometry must give a power-of-two set count");
    lines.assign(nSets * ways, Line{});
}

bool
Cache::access(std::uint64_t paddr)
{
    const std::uint64_t line_addr = paddr >> lineShiftBits;
    const std::uint64_t set_idx = line_addr & (nSets - 1);
    const std::uint64_t tag = line_addr >> std::countr_zero(nSets);
    Line *s = set(set_idx);
    ++useClock;

    Line *victim = &s[0];
    for (unsigned w = 0; w < nWays; ++w) {
        if (s[w].valid && s[w].tag == tag) {
            s[w].lru = useClock;
            ++nHits;
            return true;
        }
        if (!s[w].valid) {
            victim = &s[w];
        } else if (victim->valid && s[w].lru < victim->lru) {
            victim = &s[w];
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = useClock;
    ++nMisses;
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &l : lines)
        l.valid = false;
}

void
Cache::invalidateRange(std::uint64_t lo, std::uint64_t hi)
{
    const std::uint64_t first_line = lo >> lineShiftBits;
    const std::uint64_t last_line = (hi - 1) >> lineShiftBits;
    for (std::uint64_t set_idx = 0; set_idx < nSets; ++set_idx) {
        Line *s = set(set_idx);
        for (unsigned w = 0; w < nWays; ++w) {
            if (!s[w].valid)
                continue;
            std::uint64_t line_addr =
                (s[w].tag << std::countr_zero(nSets)) | set_idx;
            if (line_addr >= first_line && line_addr <= last_line)
                s[w].valid = false;
        }
    }
}

} // namespace sim
} // namespace terp
