#include "sim/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace terp {
namespace sim {

Cache::Cache(std::uint64_t size_bytes, unsigned ways,
             std::uint64_t line_bytes)
    : nWays(ways)
{
    TERP_ASSERT(std::has_single_bit(line_bytes));
    TERP_ASSERT(ways > 0);
    lineShiftBits = static_cast<std::uint64_t>(
        std::countr_zero(line_bytes));
    nSets = size_bytes / (line_bytes * ways);
    TERP_ASSERT(nSets > 0 && std::has_single_bit(nSets),
                "cache geometry must give a power-of-two set count");
    setShiftBits = static_cast<unsigned>(std::countr_zero(nSets));
    const std::size_t n = nSets * ways;
    tags.assign(n, 0);
    lru.assign(n, 0);
    validBits.assign((n + 63) / 64, 0);
}

bool
Cache::accessSlow(std::uint64_t line_addr)
{
    const std::uint64_t set_idx = line_addr & (nSets - 1);
    const std::uint64_t tag = line_addr >> setShiftBits;
    const std::size_t base = set_idx * nWays;
    ++useClock;

    std::size_t victim = base;
    bool victimValid = isValid(base);
    for (unsigned w = 0; w < nWays; ++w) {
        const std::size_t i = base + w;
        const bool v = isValid(i);
        if (v && tags[i] == tag) {
            lru[i] = useClock;
            ++nHits;
            mruIdx = i;
            mruLineAddr = line_addr;
            mruTag = tag;
            return true;
        }
        if (!v) {
            victim = i;
            victimValid = false;
        } else if (victimValid && lru[i] < lru[victim]) {
            victim = i;
        }
    }
    if (!victimValid) {
        ++nValid;
        setValid(victim);
    }
    tags[victim] = tag;
    lru[victim] = useClock;
    ++nMisses;
    mruIdx = victim;
    mruLineAddr = line_addr;
    mruTag = tag;
    return false;
}

void
Cache::invalidateAll()
{
    if (nValid > 0)
        for (auto &w : validBits)
            w = 0;
    nValid = 0;
    mruLineAddr = ~0ULL;
}

void
Cache::invalidateRange(std::uint64_t lo, std::uint64_t hi)
{
    const std::uint64_t line_bytes = 1ULL << lineShiftBits;
    TERP_ASSERT((lo & (line_bytes - 1)) == 0 &&
                    (hi & (line_bytes - 1)) == 0,
                "invalidateRange bounds must be line-aligned");
    if (hi <= lo || nValid == 0)
        return;
    mruLineAddr = ~0ULL;

    const std::uint64_t first_line = lo >> lineShiftBits;
    const std::uint64_t last_line = (hi - 1) >> lineShiftBits;
    const std::uint64_t span = last_line - first_line + 1;

    if (span < nSets) {
        // Narrow range: only the sets the range maps to can hold a
        // matching line, so probe those directly by set index.
        for (std::uint64_t la = first_line; la <= last_line; ++la) {
            const std::size_t base = (la & (nSets - 1)) * nWays;
            const std::uint64_t tag = la >> setShiftBits;
            for (unsigned w = 0; w < nWays; ++w) {
                const std::size_t i = base + w;
                if (isValid(i) && tags[i] == tag) {
                    clearValid(i);
                    --nValid;
                }
            }
        }
        return;
    }

    // Wide range: every set is in play. Walk the validity bitmap so
    // only live lines are visited — 64 empty lines cost one word
    // test.
    for (std::size_t wi = 0; wi < validBits.size(); ++wi) {
        std::uint64_t word = validBits[wi];
        while (word) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(word));
            word &= word - 1;
            const std::size_t i = (wi << 6) | b;
            const std::uint64_t set_idx = i / nWays;
            const std::uint64_t line_addr =
                (tags[i] << setShiftBits) | set_idx;
            if (line_addr >= first_line && line_addr <= last_line) {
                clearValid(i);
                --nValid;
            }
        }
    }
}

} // namespace sim
} // namespace terp
