#include "sim/thread.hh"

#include "common/logging.hh"

namespace terp {
namespace sim {

const char *
chargeName(Charge c)
{
    switch (c) {
      case Charge::Work: return "Work";
      case Charge::Attach: return "Attach";
      case Charge::Detach: return "Detach";
      case Charge::Rand: return "Rand";
      case Charge::Cond: return "Cond";
      case Charge::Other: return "Other";
      default: return "?";
    }
}

Cycles
ThreadContext::overheadTotal() const
{
    Cycles sum = 0;
    for (unsigned i = 1; i < static_cast<unsigned>(Charge::NumCharges);
         ++i) {
        sum += buckets[i];
    }
    return sum;
}

void
ThreadContext::syncTo(Cycles t, Charge c)
{
    if (t > clock)
        charge(c, t - clock);
}

void
ThreadContext::blockOn(std::uint64_t token)
{
    TERP_ASSERT(!isBlocked, "thread double-blocked");
    isBlocked = true;
    blockedToken = token;
}

void
ThreadContext::unblock()
{
    isBlocked = false;
    blockedToken = 0;
}

} // namespace sim
} // namespace terp
