#include "sim/machine.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace terp {
namespace sim {

Machine::Machine(const MachineConfig &cfg_)
    : cfg(cfg_), l2(cfg_.l2Size, cfg_.l2Ways)
{
    TERP_ASSERT(cfg.cores > 0);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        l1d.emplace_back(cfg.l1Size, cfg.l1Ways);
        tlbs.emplace_back();
    }
}

ThreadContext &
Machine::spawnThread()
{
    unsigned tid = static_cast<unsigned>(threads.size());
    threads.push_back(
        std::make_unique<ThreadContext>(tid, tid % cfg.cores));
    return *threads.back();
}

void
Machine::run(const std::vector<Job *> &jobs,
             const std::function<void(Cycles)> &hook)
{
    TERP_ASSERT(jobs.size() == threads.size(),
                "one job per spawned thread required");
    for (auto &t : threads)
        t->done = false;

    if (traceSink) {
        for (auto &t : threads) {
            traceSink->emit(t->tid(), trace::EventKind::ThreadStart,
                            t->now());
        }
    }

    Cycles next_hook = cfg.hookPeriod;
    for (;;) {
        // Pick the runnable (not done, not blocked) thread with the
        // smallest clock.
        ThreadContext *next = nullptr;
        bool any_live = false;
        for (auto &t : threads) {
            if (t->done)
                continue;
            any_live = true;
            if (t->blocked())
                continue;
            if (!next || t->now() < next->now())
                next = t.get();
        }
        if (!any_live)
            break;
        TERP_ASSERT(next != nullptr,
                    "all live threads blocked: PMO deadlock");

        // Fire the periodic hardware hook up to the current time.
        if (hook) {
            while (next_hook <= next->now()) {
                if (traceSink) {
                    traceSink->emit(trace::TraceSink::sweeperTid,
                                    trace::EventKind::SweepTick,
                                    next_hook);
                }
                hook(next_hook);
                next_hook += cfg.hookPeriod;
            }
        }

        if (!jobs[next->tid()]->step(*next)) {
            next->done = true;
            if (traceSink) {
                traceSink->emit(next->tid(),
                                trace::EventKind::ThreadFinish,
                                next->now());
            }
        }
    }
}

void
Machine::shootdownRange(std::uint64_t lo, std::uint64_t hi)
{
    for (auto &tlb : tlbs)
        tlb.shootdownRange(lo, hi);
}

Cycles
Machine::maxClock() const
{
    Cycles m = 0;
    for (const auto &t : threads)
        m = std::max(m, t->now());
    return m;
}

Cycles
Machine::minClock() const
{
    Cycles m = std::numeric_limits<Cycles>::max();
    for (const auto &t : threads)
        if (!t->done)
            m = std::min(m, t->now());
    return m == std::numeric_limits<Cycles>::max() ? maxClock() : m;
}

void
Machine::suspendAllUntil(Cycles t, Charge c)
{
    for (auto &tc : threads)
        if (!tc->done)
            tc->syncTo(t, c);
}

void
Machine::wake(std::uint64_t token, Cycles t)
{
    for (auto &tc : threads) {
        if (tc->blocked() && tc->blockToken() == token) {
            tc->unblock();
            tc->syncTo(t, Charge::Other);
        }
    }
}

std::uint64_t
Machine::totalWalks() const
{
    std::uint64_t sum = 0;
    for (const auto &tlb : tlbs)
        sum += tlb.walkCount();
    return sum;
}

} // namespace sim
} // namespace terp
