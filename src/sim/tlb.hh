/**
 * @file
 * Two-level TLB model (Table II: L1 DTLB 64-entry 4-way, L2 TLB
 * 1536-entry 6-way, 30-cycle walk penalty on a full miss).
 *
 * Keyed by virtual page number, so PMO layout re-randomization must
 * shoot down the translations of the old mapping range.
 */

#ifndef TERP_SIM_TLB_HH
#define TERP_SIM_TLB_HH

#include <cstdint>

#include "common/units.hh"
#include "sim/cache.hh"

namespace terp {
namespace sim {

/** Result of a TLB lookup: where it hit and the cycles it cost. */
struct TlbResult
{
    enum class Where { L1, L2, Walk };
    Where where;
    Cycles cycles;
};

/** L1 + L2 TLB pair with a fixed page-walk penalty. */
class TlbHierarchy
{
  public:
    TlbHierarchy();

    /** Translate the page containing vaddr, filling on misses. */
    TlbResult
    lookup(std::uint64_t vaddr)
    {
        const std::uint64_t key = pageKey(vaddr);
        if (l1.access(key))
            return {TlbResult::Where::L1, latency::tlbL1};
        if (l2.access(key))
            return {TlbResult::Where::L2, latency::tlbL2};
        ++nWalks;
        return {TlbResult::Where::Walk,
                latency::tlbL2 + latency::tlbMiss};
    }

    /** Invalidate every entry (full shootdown). */
    void shootdownAll();

    /** Invalidate translations for virtual range [lo, hi). */
    void shootdownRange(std::uint64_t lo, std::uint64_t hi);

    std::uint64_t walkCount() const { return nWalks; }

  private:
    // Map a virtual address to a pseudo-address whose cache line is
    // the page number, so a Cache of N entries with line size
    // 1<<lineShift behaves as an N-entry TLB.
    static std::uint64_t
    pageKey(std::uint64_t vaddr)
    {
        return (vaddr >> pageShift) << lineShift;
    }

    // Reuse the tag-only cache as a TLB structure: "addresses" are
    // virtual page numbers shifted so that the line index equals the
    // page number.
    Cache l1;
    Cache l2;
    std::uint64_t nWalks = 0;
};

} // namespace sim
} // namespace terp

#endif // TERP_SIM_TLB_HH
