/**
 * @file
 * Simulated thread context: a per-thread virtual clock plus
 * category-attributed overhead accounting.
 *
 * The evaluation figures break protection overhead into Attach,
 * Detach, Rand(omization), Cond(itional instruction) and Other
 * components; every cycle charged to a thread carries one of those
 * labels (or Work for the application's own time).
 */

#ifndef TERP_SIM_THREAD_HH
#define TERP_SIM_THREAD_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/units.hh"

namespace terp {
namespace sim {

/** Overhead attribution categories used by the paper's figures. */
enum class Charge : unsigned
{
    Work = 0,  //!< application work (not overhead)
    Attach,    //!< full attach() system calls
    Detach,    //!< full detach() system calls
    Rand,      //!< PMO layout re-randomization + shootdowns
    Cond,      //!< conditional attach/detach instruction execution
    Other,     //!< permission matrix, misc runtime bookkeeping
    NumCharges
};

/** Printable name of a charge category. */
const char *chargeName(Charge c);

/** One simulated thread of execution. */
class ThreadContext
{
  public:
    explicit ThreadContext(unsigned tid, unsigned core_id)
        : id(tid), core(core_id)
    {
    }

    unsigned tid() const { return id; }
    unsigned coreId() const { return core; }

    /** Current virtual time of this thread. */
    Cycles now() const { return clock; }

    /** Advance the clock, attributing the cycles to a category. */
    void
    charge(Charge c, Cycles cycles)
    {
        clock += cycles;
        buckets[static_cast<unsigned>(c)] += cycles;
    }

    /** Plain application work. */
    void work(Cycles cycles) { charge(Charge::Work, cycles); }

    /** Total cycles attributed to a category. */
    Cycles
    charged(Charge c) const
    {
        return buckets[static_cast<unsigned>(c)];
    }

    /** Sum of all non-Work categories. */
    Cycles overheadTotal() const;

    /**
     * Jump the clock forward to at least @p t (used when the thread
     * is released from a block or suspended during randomization);
     * the skipped span is attributed to @p c.
     */
    void syncTo(Cycles t, Charge c);

    /** Block this thread until another event wakes it. */
    void blockOn(std::uint64_t token);
    void unblock();
    bool blocked() const { return isBlocked; }
    std::uint64_t blockToken() const { return blockedToken; }

    /** True once the job driving this thread finished. */
    bool done = false;

    /** Fractional-cycle carry for sub-cycle CPI charging. */
    double cpiCarry = 0.0;

  private:
    unsigned id;
    unsigned core;
    Cycles clock = 0;
    std::array<Cycles, static_cast<unsigned>(Charge::NumCharges)>
        buckets{};
    bool isBlocked = false;
    std::uint64_t blockedToken = 0;
};

} // namespace sim
} // namespace terp

#endif // TERP_SIM_THREAD_HH
