/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The model tracks tags only (no data) and answers hit/miss queries;
 * the Machine composes an L1D per core with a shared L2 and charges
 * the Table II latencies.
 *
 * Host-side fast paths keep the model cycle-exact while cutting the
 * work per simulated access (see DESIGN.md §9):
 *  - a one-entry MRU hint in front of the set scan: a repeat access
 *    to the most recently hit line performs exactly the same state
 *    transition (LRU stamp, hit count) without walking the ways;
 *  - structure-of-arrays storage with a packed validity bitmap, so
 *    wide invalidations scan 1 bit per line (skipping 64 empty lines
 *    per word) instead of a 24-byte record per line;
 *  - invalidateRange only probes the sets a narrow range can map to,
 *    and skips entirely when no lines are valid.
 */

#ifndef TERP_SIM_CACHE_HH
#define TERP_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace terp {
namespace sim {

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity in bytes.
     * @param ways       Associativity.
     * @param line_bytes Line size in bytes (default 64).
     */
    Cache(std::uint64_t size_bytes, unsigned ways,
          std::uint64_t line_bytes = lineSize);

    /**
     * Access one line by physical address.
     * @return true on hit; on miss the line is filled.
     */
    bool
    access(std::uint64_t paddr)
    {
        const std::uint64_t line_addr = paddr >> lineShiftBits;
        // MRU fast path: same line as the last hit, still resident.
        if (line_addr == mruLineAddr && isValid(mruIdx) &&
            tags[mruIdx] == mruTag) {
            lru[mruIdx] = ++useClock;
            ++nHits;
            return true;
        }
        return accessSlow(line_addr);
    }

    /** Drop every line. */
    void invalidateAll();

    /**
     * Drop lines whose physical address falls in [lo, hi). Both
     * bounds must be line-aligned.
     */
    void invalidateRange(std::uint64_t lo, std::uint64_t hi);

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t sets() const { return nSets; }

  private:
    std::uint64_t lineShiftBits;
    std::uint64_t nSets;
    unsigned setShiftBits; //!< log2(nSets)
    unsigned nWays;

    // Structure-of-arrays line storage, row-major by set: line i is
    // way (i % nWays) of set (i / nWays). Validity is one bit per
    // line so range invalidations can skip 64 lines per word.
    std::vector<std::uint64_t> tags;
    std::vector<std::uint64_t> lru; //!< larger = more recently used
    std::vector<std::uint64_t> validBits;

    std::uint64_t nValid = 0; //!< currently valid lines
    std::uint64_t useClock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;

    // One-entry MRU hint (host-side shortcut only; no model state).
    std::size_t mruIdx = 0;
    std::uint64_t mruLineAddr = ~0ULL;
    std::uint64_t mruTag = 0;

    bool isValid(std::size_t i) const
    {
        return (validBits[i >> 6] >> (i & 63)) & 1;
    }
    void setValid(std::size_t i)
    {
        validBits[i >> 6] |= 1ULL << (i & 63);
    }
    void clearValid(std::size_t i)
    {
        validBits[i >> 6] &= ~(1ULL << (i & 63));
    }

    bool accessSlow(std::uint64_t line_addr);
};

} // namespace sim
} // namespace terp

#endif // TERP_SIM_CACHE_HH
