/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The model tracks tags only (no data) and answers hit/miss queries;
 * the Machine composes an L1D per core with a shared L2 and charges
 * the Table II latencies.
 */

#ifndef TERP_SIM_CACHE_HH
#define TERP_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace terp {
namespace sim {

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity in bytes.
     * @param ways       Associativity.
     * @param line_bytes Line size in bytes (default 64).
     */
    Cache(std::uint64_t size_bytes, unsigned ways,
          std::uint64_t line_bytes = lineSize);

    /**
     * Access one line by physical address.
     * @return true on hit; on miss the line is filled.
     */
    bool access(std::uint64_t paddr);

    /** Drop every line. */
    void invalidateAll();

    /** Drop lines whose physical address falls in [lo, hi). */
    void invalidateRange(std::uint64_t lo, std::uint64_t hi);

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t sets() const { return nSets; }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; //!< larger = more recently used
    };

    std::uint64_t lineShiftBits;
    std::uint64_t nSets;
    unsigned nWays;
    std::vector<Line> lines; //!< nSets * nWays, row-major by set
    std::uint64_t useClock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;

    Line *set(std::uint64_t idx) { return &lines[idx * nWays]; }
};

} // namespace sim
} // namespace terp

#endif // TERP_SIM_CACHE_HH
