/**
 * @file
 * The simulated machine: per-core L1D caches and TLBs, a shared L2,
 * DRAM/NVM latencies and a min-clock-first cooperative scheduler for
 * multi-threaded workloads.
 *
 * This is the reproduction's substitute for the paper's Sniper-based
 * simulator (see DESIGN.md): the evaluation only observes event
 * frequencies multiplied by the Table II latencies, which this model
 * reproduces exactly.
 */

#ifndef TERP_SIM_MACHINE_HH
#define TERP_SIM_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hh"
#include "sim/cache.hh"
#include "sim/thread.hh"
#include "sim/tlb.hh"
#include "trace/trace_buffer.hh"

namespace terp {
namespace sim {

/** Backing medium of an access (Table II: DRAM 120cyc, NVM 360cyc). */
enum class MemKind { Dram, Nvm };

/** A single memory reference issued by a thread. */
struct MemAccess
{
    std::uint64_t vaddr; //!< virtual address (drives the TLB)
    std::uint64_t paddr; //!< physical address (drives the caches)
    bool write;
    MemKind kind;
};

/**
 * A simulated thread's program. The scheduler repeatedly calls step()
 * on the runnable thread with the smallest clock; step() performs a
 * small quantum of work (typically one operation or transaction) and
 * returns false when the program finished.
 */
class Job
{
  public:
    virtual ~Job() = default;
    virtual bool step(ThreadContext &tc) = 0;
};

/** Configuration of the simulated machine (defaults = Table II). */
struct MachineConfig
{
    unsigned cores = 4;
    double cpi = 0.5;                     //!< 4-wide OoO base CPI
    std::uint64_t l1Size = 32 * KiB;      //!< 8-way L1D
    unsigned l1Ways = 8;
    std::uint64_t l2Size = 1 * MiB;       //!< 16-way shared L2
    unsigned l2Ways = 16;
    Cycles hookPeriod = 1 * cyclesPerUs;  //!< sweeper timer granularity
};

/**
 * The machine. Owns per-core L1/TLB, shared L2 and the scheduler.
 * Protection runtimes layer permission checks on top via hooks.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg = MachineConfig{});

    /** Create a thread pinned to core (tid % cores). */
    ThreadContext &spawnThread();

    ThreadContext &thread(unsigned tid) { return *threads.at(tid); }
    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /**
     * Charge one memory access on the thread: TLB, then L1/L2/memory
     * latency. Returns the cycles charged (attributed as Work).
     */
    Cycles
    access(ThreadContext &tc, const MemAccess &a)
    {
        Cycles cycles = tlbs[tc.coreId()].lookup(a.vaddr).cycles;

        if (l1d[tc.coreId()].access(a.paddr)) {
            cycles += latency::l1Hit;
        } else if (l2.access(a.paddr)) {
            cycles += latency::l1Hit + latency::l2Hit;
        } else {
            cycles += latency::l1Hit + latency::l2Hit +
                      (a.kind == MemKind::Nvm ? latency::nvm
                                              : latency::dram);
        }

        tc.work(cycles);
        return cycles;
    }

    /** Charge n instructions of pure compute at the base CPI. */
    void
    execute(ThreadContext &tc, std::uint64_t n_instr)
    {
        double cycles = static_cast<double>(n_instr) * cfg.cpi +
                        tc.cpiCarry;
        auto whole = static_cast<Cycles>(cycles);
        tc.cpiCarry = cycles - static_cast<double>(whole);
        tc.work(whole);
    }

    /**
     * Run jobs[i] on thread i until all are done. @p hook (if set) is
     * invoked at every hookPeriod boundary of the minimum thread
     * clock — this drives the TERP hardware sweeper.
     */
    void run(const std::vector<Job *> &jobs,
             const std::function<void(Cycles)> &hook = nullptr);

    /** Invalidate the virtual range in every TLB (shootdown). */
    void shootdownRange(std::uint64_t lo, std::uint64_t hi);

    /** Latest clock across all threads (total runtime when done). */
    Cycles maxClock() const;

    /** Earliest clock across runnable threads. */
    Cycles minClock() const;

    /** Suspend every thread up to time @p t, charging category @p c. */
    void suspendAllUntil(Cycles t, Charge c);

    /** Wake threads blocked on @p token at time @p t. */
    void wake(std::uint64_t token, Cycles t);

    /** Sum of TLB page walks across cores. */
    std::uint64_t totalWalks() const;

    const MachineConfig &config() const { return cfg; }

    /**
     * Attach (or detach, with nullptr) an event sink. The machine
     * emits thread start/finish markers and one SweepTick per firing
     * of the periodic hook; with no sink every site is a single
     * pointer test and the simulation is untouched.
     */
    void setTraceSink(trace::TraceSink *sink) { traceSink = sink; }

  private:
    MachineConfig cfg;
    trace::TraceSink *traceSink = nullptr;
    std::vector<std::unique_ptr<ThreadContext>> threads;
    std::vector<Cache> l1d;          //!< one per core
    std::vector<TlbHierarchy> tlbs;  //!< one per core
    Cache l2;
};

} // namespace sim
} // namespace terp

#endif // TERP_SIM_MACHINE_HH
