#include "check/recovery_oracle.hh"

#include <set>
#include <sstream>
#include <utility>

#include "trace/audit.hh"

namespace terp {
namespace check {

CrashWorld::CrashWorld(const core::RuntimeConfig &config,
                       unsigned pmoCount, unsigned threads,
                       std::uint64_t pmo_bytes, std::uint64_t log_off)
    : cfg(config), nPmos(pmoCount), pmoBytes(pmo_bytes),
      hookPeriod(mach.config().hookPeriod), nextHook(hookPeriod)
{
    for (unsigned p = 0; p < nPmos; ++p) {
        std::ostringstream name;
        name << "crash-p" << p;
        pmos.create(name.str(), pmoBytes);
    }
    rt = std::make_unique<core::Runtime>(mach, pmos, cfg);
    rt->attachPersistence(&dom);
    for (unsigned p = 1; p <= nPmos; ++p)
        dom.openLog(p, log_off);
    for (unsigned t = 0; t < threads; ++t)
        mach.spawnThread();
}

void
CrashWorld::advanceSweeps(Cycles t)
{
    while (nextHook <= t) {
        if (!sweepGate || sweepGate(nextHook))
            rt->onSweep(nextHook);
        nextHook += hookPeriod;
    }
}

void
runTxn(CrashWorld &w, Ledger &led, sim::ThreadContext &tc,
       pm::PmoId pmo,
       const std::vector<std::pair<pm::Oid, std::uint64_t>> &writes,
       bool touchData)
{
    led.inFlight.clear();
    for (const auto &[oid, v] : writes) {
        (void)v;
        led.inFlight.push_back(oid.raw);
    }

    bool manual = w.cfg.insertion == core::Insertion::Manual;
    bool autoIns = w.cfg.insertion == core::Insertion::Auto;
    if (manual)
        w.rt->manualBegin(tc, pmo, pm::Mode::ReadWrite);
    else if (autoIns)
        w.rt->regionBegin(tc, pmo, pm::Mode::ReadWrite);

    pm::UndoLog *log = w.dom.findLog(pmo);
    log->begin(tc);
    for (const auto &[oid, v] : writes) {
        if (touchData)
            w.rt->access(tc, oid, /*write=*/true);
        log->write(tc, oid, v);
    }
    log->commit(tc);

    if (manual)
        w.rt->manualEnd(tc, pmo);
    else if (autoIns)
        w.rt->regionEnd(tc, pmo);

    // Only reached when the commit became durable.
    for (const auto &[oid, v] : writes)
        led.image[oid.raw] = v;
    led.inFlight.clear();
    ++led.done;
    w.advanceSweeps(tc.now());
}

void
checkDurable(CrashWorld &w, const Ledger &led,
             std::vector<std::string> &out)
{
    const pm::PersistController &ctl = w.dom.controller();
    // Keys of open TxManager transactions are judged by the flight
    // rule below (which still pins them to the committed value for
    // an undo transaction, but admits all-new for a redo one whose
    // commit was in flight), not by the strict committed-image scan.
    std::set<std::uint64_t> flightKeys;
    for (const auto &[tid, fl] : led.flight) {
        (void)tid;
        flightKeys.insert(fl.keys.begin(), fl.keys.end());
    }
    for (const auto &[raw, want] : led.image) {
        if (flightKeys.count(raw))
            continue;
        std::uint64_t got = ctl.persistedLoad(pm::Oid::fromRaw(raw));
        if (got != want) {
            std::ostringstream os;
            os << "atomicity: durable word at pmo "
               << pm::Oid::fromRaw(raw).pool() << " offset 0x"
               << std::hex << pm::Oid::fromRaw(raw).offset()
               << " = 0x" << got << ", committed image says 0x"
               << want << " (after " << std::dec << led.done
               << " commits)";
            out.push_back(os.str());
        }
    }
    for (std::uint64_t raw : led.inFlight) {
        if (led.image.count(raw))
            continue; // checked against the committed value above
        std::uint64_t got = ctl.persistedLoad(pm::Oid::fromRaw(raw));
        if (got != 0) {
            std::ostringstream os;
            os << "atomicity: in-flight write at offset 0x"
               << std::hex << pm::Oid::fromRaw(raw).offset()
               << " leaked into the durable image (0x" << got << ")";
            out.push_back(os.str());
        }
    }
    // TxManager transactions open at the crash: all-or-nothing. Undo
    // must recover to all-old; a redo whose commit was in progress
    // may land on either side of its durable point, but never mixed.
    for (const auto &[tid, fl] : led.flight) {
        bool allOld = true, allNew = true;
        for (std::uint64_t raw : fl.keys) {
            auto it = led.image.find(raw);
            std::uint64_t oldv = it == led.image.end() ? 0 : it->second;
            std::uint64_t got =
                ctl.persistedLoad(pm::Oid::fromRaw(raw));
            if (got != oldv)
                allOld = false;
            if (got != fl.newv.at(raw))
                allNew = false;
        }
        if (!(allOld || (fl.ambiguous && allNew))) {
            std::ostringstream os;
            os << "atomicity: transaction of tid " << tid
               << " recovered torn (not all-old"
               << (fl.ambiguous ? ", not all-new" : "") << ")";
            out.push_back(os.str());
        }
    }
}

void
armFlight(Ledger &led, unsigned tid, bool ambiguous,
          const std::vector<std::pair<pm::Oid, std::uint64_t>> &writes)
{
    TxFlight fl;
    fl.ambiguous = ambiguous;
    for (const auto &[oid, v] : writes) {
        fl.keys.push_back(oid.raw);
        fl.newv[oid.raw] = v;
    }
    led.flight[tid] = std::move(fl);
}

void
settleFlight(Ledger &led, unsigned tid, bool committed)
{
    if (committed) {
        for (const auto &[raw, v] : led.flight.at(tid).newv)
            led.image[raw] = v;
        ++led.done;
    }
    led.flight.erase(tid);
}

void
protOpen(CrashWorld &w, sim::ThreadContext &tc, pm::PmoId pmo)
{
    if (w.cfg.insertion == core::Insertion::Manual)
        w.rt->manualBegin(tc, pmo, pm::Mode::ReadWrite);
    else if (w.cfg.insertion == core::Insertion::Auto)
        w.rt->regionBegin(tc, pmo, pm::Mode::ReadWrite);
}

void
protClose(CrashWorld &w, sim::ThreadContext &tc, pm::PmoId pmo)
{
    if (w.cfg.insertion == core::Insertion::Manual)
        w.rt->manualEnd(tc, pmo);
    else if (w.cfg.insertion == core::Insertion::Auto)
        w.rt->regionEnd(tc, pmo);
}

void
drainIdleWindows(CrashWorld &w, const char *when,
                 std::vector<std::string> &out)
{
    // The recovery attach must be closed by the scheme's normal idle
    // path: once every window is past the target, the sweeper has no
    // excuse to leave a PMO mapped. The drain is time-targeted, not
    // hook-counted: a fault that fired mid-op leaves the hook grid
    // behind the thread clocks, and every lastRealAttach is bounded
    // by maxClock, so sweeping to maxClock + target (plus slack for
    // the delayed-detach grace) provably covers every idle window.
    Cycles target = w.mach.maxClock() + w.cfg.ewTarget +
                    16 * w.hookPeriod;
    while (w.nextHook <= target) {
        w.rt->onSweep(w.nextHook);
        w.nextHook += w.hookPeriod;
    }
    for (unsigned p = 1; p <= w.nPmos; ++p) {
        if (w.rt->mapped(p)) {
            std::ostringstream os;
            os << "exposure: PMO " << p
               << " still mapped after the idle sweeper drained "
               << "a full window target past " << when;
            out.push_back(os.str());
        }
    }
}

void
checkLogsRetired(CrashWorld &w, std::vector<std::string> &out)
{
    for (const auto &[pmo, log] : w.dom.logs()) {
        (void)pmo;
        if (log->recoveryPending())
            out.push_back("recovery left an in-flight log record");
    }
    for (const auto &[pmo, log] : w.dom.redoLogs()) {
        (void)pmo;
        if (log->recoveryPending())
            out.push_back("recovery left an in-flight redo record");
    }
}

void
probeAndDrain(CrashWorld &w, Ledger &led,
              std::vector<std::string> &out)
{
    checkLogsRetired(w, out);

    // This runs before the probe transaction — recovery's mapping is
    // idle, not a span the application may nest inside.
    drainIdleWindows(w, "recovery", out);

    // Liveness: the recovered image must accept a new transaction.
    // Sync the probe thread past the fired hooks first so its window
    // opens after any the sweeper just closed.
    sim::ThreadContext &tc = w.mach.thread(0);
    Cycles drained = w.nextHook - w.hookPeriod;
    if (tc.now() < drained)
        tc.syncTo(drained, sim::Charge::Other);
    runTxn(w, led, tc, 1,
           {{pm::Oid(1, w.pmoBytes - 8), 0x900d900dULL}});
    checkDurable(w, led, out);

    // The probe's own window must drain the same way.
    drainIdleWindows(w, "the probe transaction", out);

    Cycles tEnd = w.mach.maxClock();
    w.rt->finalize();
    if (auto sink = w.rt->traceSink()) {
        trace::AuditReport rep =
            trace::auditTimeline(*sink, tEnd, w.rt->exposure());
        for (const std::string &m : rep.mismatches)
            out.push_back("trace audit: " + m);
        if (!rep.ok && rep.mismatches.empty())
            out.push_back("trace audit failed without detail");
    }
}

} // namespace check
} // namespace terp
