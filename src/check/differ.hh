/**
 * @file
 * The differential replayer: executes one fuzz schedule against a
 * real core::Runtime and the SpecOracle in lockstep, cross-checking
 * after every event.
 *
 * Checked per op: real-vs-silent decision (spec verdict vs observed
 * syscall-counter deltas), the exact cycle charge on the acting
 * thread, access outcomes against the mirrored permission state,
 * mapped/holder/blocked state probes, and the accessRange line count
 * (via the Other charge bucket, whose only per-op source is the
 * 1-cycle permission-matrix check). Sweeper boundaries are fired
 * explicitly between ops and their thread-clock effects simulated
 * independently. After the run: EW/TEW window summaries, the
 * reported silent fraction, and the PR-1 trace audit as a third
 * opinion.
 *
 * A runtime assertion (TERP_ASSERT throws) is caught and reported as
 * a "crash" divergence, so the shrinker can minimize those too.
 */

#ifndef TERP_CHECK_DIFFER_HH
#define TERP_CHECK_DIFFER_HH

#include <string>
#include <vector>

#include "check/schedule.hh"
#include "core/config.hh"

namespace terp {
namespace check {

/** Outcome of one differential run. */
struct DiffResult
{
    bool ok = false;
    std::vector<std::string> complaints;
};

/** Replay @p s against a runtime with @p cfg and the spec oracle. */
DiffResult runSchedule(const Schedule &s,
                       const core::RuntimeConfig &cfg);

} // namespace check
} // namespace terp

#endif // TERP_CHECK_DIFFER_HH
