#include "check/differ.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "check/oracle.hh"
#include "check/tx_oracle.hh"
#include "common/units.hh"
#include "core/runtime.hh"
#include "pm/persist.hh"
#include "pm/pmo_manager.hh"
#include "pm/tx_manager.hh"
#include "sim/machine.hh"
#include "trace/audit.hh"

namespace terp {
namespace check {

namespace {

class Replay
{
  public:
    Replay(const Schedule &sched, const core::RuntimeConfig &config,
           std::vector<std::string> &complaints)
        : s(sched), cfg(config), out(complaints),
          rt(mach, pmos, cfg.withTrace()),
          oracle(cfg, sched.threads),
          hookPeriod(mach.config().hookPeriod), nextHook(hookPeriod)
    {
        for (unsigned p = 0; p < s.pmos; ++p) {
            std::ostringstream name;
            name << "fuzz-p" << p;
            pmos.create(name.str(), s.pmoSize);
        }
        for (unsigned t = 0; t < s.threads; ++t)
            mach.spawnThread();
        rt.attachPersistence(&dom);
        // The log region lives far above the data range the
        // schedule's accesses can reach (offsets < pmoSize).
        for (unsigned p = 1; p <= s.pmos; ++p)
            dom.openLog(p, logOff);
    }

    void
    run()
    {
        for (opIdx = 0; opIdx < s.ops.size(); ++opIdx) {
            const Op &op = s.ops[opIdx];
            if (op.kind == OpKind::Sweep) {
                // Force the next sweeper boundary to fire now.
                fireSweep(nextHook);
                nextHook += hookPeriod;
                continue;
            }
            sim::ThreadContext &tc = mach.thread(op.tid);
            advanceSweeps(tc.now());
            if (oracle.isBlocked(op.tid) != tc.blocked()) {
                complain(oracle.isBlocked(op.tid)
                             ? "oracle blocked, simulator runnable"
                             : "simulator blocked, oracle runnable");
                continue;
            }
            if (tc.blocked())
                continue; // every op of a blocked thread is skipped
            execute(op, tc);
            probe(op);
            checkBlockedMirror();
        }
        drain();
    }

    std::size_t currentOp() const { return opIdx; }

  private:
    struct Probe
    {
        Cycles t0 = 0;
        std::uint64_t att0 = 0;
        std::uint64_t det0 = 0;
    };

    static constexpr std::uint64_t logOff =
        pm::TxManager::undoLogOff;

    const Schedule &s;
    core::RuntimeConfig cfg;
    std::vector<std::string> &out;
    sim::Machine mach;
    pm::PmoManager pmos;
    core::Runtime rt;
    SpecOracle oracle;
    pm::PersistDomain dom;
    /** Transaction-layer spec mirror (durable image included). */
    TxOracle txo{pm::TxManager::undoLogOff,
                 pm::TxManager::redoLogOff};
    Cycles hookPeriod;
    Cycles nextHook;
    std::size_t opIdx = 0;
    bool draining = false;

    std::string
    context() const
    {
        std::ostringstream os;
        if (draining)
            os << "[drain] ";
        else if (opIdx < s.ops.size())
            os << "[op " << opIdx << ": " << describeOp(s.ops[opIdx])
               << "] ";
        return os.str();
    }

    void
    complain(const std::string &msg)
    {
        out.push_back(context() + msg);
    }

    /** Merge oracle complaints, prefixed with the op context. */
    void
    flush(std::vector<std::string> &tmp)
    {
        for (auto &m : tmp)
            complain(m);
        tmp.clear();
    }

    Probe
    preOp(const sim::ThreadContext &tc) const
    {
        return {tc.now(), rt.counters().get("attach_syscalls"),
                rt.counters().get("detach_syscalls")};
    }

    Observed
    postOp(const sim::ThreadContext &tc, const Probe &p) const
    {
        return {p.t0, tc.now(),
                rt.counters().get("attach_syscalls") - p.att0,
                rt.counters().get("detach_syscalls") - p.det0};
    }

    void
    advanceSweeps(Cycles t)
    {
        while (nextHook <= t) {
            fireSweep(nextHook);
            nextHook += hookPeriod;
        }
    }

    /**
     * Fire one sweeper boundary: plan with the oracle, simulate the
     * thread-clock charges independently, run the real sweep, then
     * compare clocks and mapped state.
     */
    void
    fireSweep(Cycles now)
    {
        std::vector<std::string> tmp;
        std::vector<PlannedSweep> plan = oracle.planSweep(now, tmp);
        flush(tmp);

        // The CB applies actions in entry order; the software timer
        // (and the oracle) in ascending PMO id.
        std::vector<PlannedSweep> ordered;
        if (cfg.windowCombining) {
            for (pm::PmoId pmo : rt.circularBuffer().residentPmos())
                for (const PlannedSweep &a : plan)
                    if (a.pmo == pmo)
                        ordered.push_back(a);
            if (ordered.size() != plan.size()) {
                std::ostringstream os;
                os << "sweep@" << now << ": oracle plans "
                   << plan.size() << " actions but only "
                   << ordered.size() << " PMOs are CB-resident";
                complain(os.str());
                return;
            }
        } else {
            ordered = plan;
        }

        // Simulate the charges: a forced detach syncs the
        // earliest-running live thread to the boundary and bills it
        // the detach syscall; a forced randomization suspends every
        // live thread for the remap + shootdown.
        unsigned n = mach.threadCount();
        std::vector<Cycles> clk(n);
        std::vector<bool> live(n);
        for (unsigned i = 0; i < n; ++i) {
            clk[i] = mach.thread(i).now();
            live[i] = !mach.thread(i).done;
        }
        for (const PlannedSweep &a : ordered) {
            if (a.detach) {
                int best = -1;
                for (unsigned i = 0; i < n; ++i)
                    if (live[i] && (best < 0 || clk[i] < clk[best]))
                        best = static_cast<int>(i);
                Cycles closeAt = now;
                if (best >= 0) {
                    clk[best] = std::max(clk[best], now) +
                                latency::detachSyscall +
                                latency::tlbInvalidate;
                    closeAt = clk[best];
                }
                oracle.applySweepDetach(a.pmo, closeAt);
            } else {
                for (unsigned i = 0; i < n; ++i)
                    if (live[i])
                        clk[i] += latency::randomize +
                                  latency::tlbInvalidate;
                oracle.applySweepRandomize(a.pmo, now);
            }
        }

        rt.onSweep(now);

        for (unsigned i = 0; i < n; ++i) {
            if (mach.thread(i).now() != clk[i]) {
                std::ostringstream os;
                os << "sweep@" << now << ": thread " << i
                   << " clock expected " << clk[i] << ", got "
                   << mach.thread(i).now();
                complain(os.str());
            }
        }
        for (pm::PmoId p = 1; p <= s.pmos; ++p) {
            if (rt.mapped(p) != oracle.mappedView(p)) {
                std::ostringstream os;
                os << "sweep@" << now << ": PMO " << p
                   << " mapped=" << rt.mapped(p) << ", oracle says "
                   << oracle.mappedView(p);
                complain(os.str());
            }
        }
        oracle.checkSweepInvariant(now, tmp);
        flush(tmp);
    }

    void
    execute(const Op &op, sim::ThreadContext &tc)
    {
        std::vector<std::string> tmp;
        switch (op.kind) {
          case OpKind::Work:
            tc.work(op.work);
            break;

          case OpKind::Begin: {
            if (cfg.insertion != core::Insertion::Auto)
                break;
            if (cfg.basicBlocking && oracle.ownsBasic(op.tid, op.pmo))
                break; // nested basic attach is invalid: skip
            Probe pr = preOp(tc);
            bool expectBlock =
                cfg.basicBlocking && oracle.willBlock(op.tid, op.pmo);
            core::GuardResult g = rt.regionBegin(tc, op.pmo, op.mode);
            if (expectBlock) {
                if (g != core::GuardResult::Blocked)
                    complain("begin should have blocked");
                Observed o = postOp(tc, pr);
                if (o.tPost != o.tPre || o.attaches || o.detaches)
                    complain("blocked begin had side effects");
                oracle.noteBlocked(op.tid, op.pmo, tmp);
            } else {
                if (g != core::GuardResult::Ok)
                    complain("begin blocked unexpectedly");
                else
                    oracle.checkBegin(op.tid, op.pmo, op.mode,
                                      postOp(tc, pr), tmp);
            }
            break;
          }

          case OpKind::End: {
            if (cfg.insertion != core::Insertion::Auto)
                break;
            if (!oracle.canEnd(op.tid, op.pmo))
                break; // unmatched end: skip
            if (!oracle.endSafeAt(op.tid, op.pmo, tc.now()))
                break; // would rewind the exposure tracker
            Probe pr = preOp(tc);
            rt.regionEnd(tc, op.pmo);
            oracle.checkEnd(op.tid, op.pmo, postOp(tc, pr), tmp);
            break;
          }

          case OpKind::ManualBegin: {
            if (cfg.insertion != core::Insertion::Manual)
                break;
            if (!oracle.canManualBegin(op.pmo))
                break;
            Probe pr = preOp(tc);
            rt.manualBegin(tc, op.pmo, op.mode);
            oracle.checkManualBegin(op.tid, op.pmo, op.mode,
                                    postOp(tc, pr), tmp);
            break;
          }

          case OpKind::ManualEnd: {
            if (cfg.insertion != core::Insertion::Manual)
                break;
            if (!oracle.canManualEnd(op.pmo))
                break;
            if (!oracle.endSafeAt(op.tid, op.pmo, tc.now()))
                break; // would rewind the exposure tracker
            Probe pr = preOp(tc);
            rt.manualEnd(tc, op.pmo);
            oracle.checkManualEnd(op.tid, op.pmo, postOp(tc, pr),
                                  tmp);
            break;
          }

          case OpKind::Access:
            access(op.tid, tc, op.pmo, op.offset, op.write, tmp);
            break;

          case OpKind::Range: {
            if (op.bytes == 0)
                break;
            // accessRange panics on faults, so only replay it when
            // the oracle predicts a clean run.
            if (oracle.expectedAccess(op.tid, op.pmo, op.write) !=
                core::AccessOutcome::Ok) {
                break;
            }
            std::uint64_t first = op.offset / lineSize;
            std::uint64_t last =
                (op.offset + op.bytes - 1) / lineSize;
            std::uint64_t lines = last - first + 1;
            Cycles other0 = tc.charged(sim::Charge::Other);
            rt.accessRange(tc, pm::Oid(op.pmo, op.offset), op.bytes,
                           op.write);
            // The only Other charge inside an op is the 1-cycle
            // permission-matrix check, one per touched line.
            Cycles other = tc.charged(sim::Charge::Other) - other0;
            if (other != lines) {
                std::ostringstream os;
                os << "range touched " << other
                   << " lines, expected " << lines;
                complain(os.str());
            }
            break;
          }

          case OpKind::Guarded: {
            if (cfg.insertion != core::Insertion::Auto)
                break;
            if (cfg.basicBlocking && oracle.ownsBasic(op.tid, op.pmo))
                break;
            bool expectBlock =
                cfg.basicBlocking && oracle.willBlock(op.tid, op.pmo);
            Probe pr = preOp(tc);
            Probe endPr{};
            // On the heap so a guard that wrongly claims to have
            // entered a blocked region can be leaked instead of
            // destroyed: its (noexcept) destructor would lower a
            // non-owner regionEnd, and the resulting panic would
            // terminate the fuzzer instead of being reported.
            auto guard = std::make_unique<core::RegionGuard>(
                rt, tc, op.pmo, op.mode);
            bool entered = guard->entered();
            if (entered == expectBlock)
                complain(expectBlock ? "guard should have blocked"
                                     : "guard blocked unexpectedly");
            if (entered && expectBlock) {
                (void)guard.release();
                break;
            }
            if (entered) {
                oracle.checkBegin(op.tid, op.pmo, op.mode,
                                  postOp(tc, pr), tmp);
                flush(tmp);
                for (unsigned j = 0; j < op.accesses; ++j) {
                    access(op.tid, tc, op.pmo,
                           op.offset + j * lineSize, op.write, tmp);
                    flush(tmp);
                }
                endPr = preOp(tc);
            } else {
                Observed o = postOp(tc, pr);
                if (o.tPost != o.tPre)
                    complain("blocked guard charged cycles");
                oracle.noteBlocked(op.tid, op.pmo, tmp);
            }
            guard.reset(); // destructor skips regionEnd iff blocked
            if (entered)
                oracle.checkEnd(op.tid, op.pmo, postOp(tc, endPr),
                                tmp);
            break;
          }

          case OpKind::TxPut: {
            // A raw undo-log burst would collide with an open
            // TxManager transaction holding this PMO (the anchor
            // log is busy and isolation would break): skip, like
            // any other ill-formed op.
            if (txo.locked(op.pmo))
                break;
            txPut(op, tc);
            break;
          }

          case OpKind::CrashRecover: {
            // Transactions are atomic ops in this harness; a crash
            // with one open would make recovery do real work the
            // differ doesn't model (terp-crash enumerates those).
            // The generator only emits idle-point crashes; shrunken
            // subsequences may not be, so skip.
            if (!txo.idle())
                break;
            crashRecover(tc);
            break;
          }

          case OpKind::TxBegin:
          case OpKind::TxWrite:
          case OpKind::TxCommit:
          case OpKind::TxAbort: {
            txOp(op, tc);
            break;
          }

          case OpKind::Sweep:
            break; // handled in run()
        }
        flush(tmp);
    }

    /**
     * Compare one transaction op's observed behavior against the
     * oracle's predicted TxEffects: return value, exact cycle
     * charge, CLWB/fence counts, and no protection syscalls.
     */
    void
    checkTxEffects(const char *what, const TxEffects &e, bool ok,
                   const Observed &o, std::uint64_t clwbs,
                   std::uint64_t fences)
    {
        if (ok != e.ok) {
            std::ostringstream os;
            os << what << " returned " << ok << ", oracle expects "
               << e.ok;
            complain(os.str());
        }
        if (o.tPost - o.tPre != e.charge) {
            std::ostringstream os;
            os << what << " charged " << (o.tPost - o.tPre)
               << " cycles, oracle expects " << e.charge;
            complain(os.str());
        }
        if (clwbs != e.clwbs || fences != e.fences) {
            std::ostringstream os;
            os << what << " issued " << clwbs << " clwbs / "
               << fences << " fences, oracle expects " << e.clwbs
               << " / " << e.fences;
            complain(os.str());
        }
        if (o.attaches || o.detaches)
            complain(std::string(what) +
                     " issued attach/detach syscalls");
    }

    /** Cross-check the TxManager's semantic state for one thread. */
    void
    probeTxState(unsigned tid)
    {
        pm::TxManager &txm = *rt.tx();
        if (txm.depth(tid) != txo.depthView(tid)) {
            std::ostringstream os;
            os << "tx depth=" << txm.depth(tid) << ", oracle says "
               << txo.depthView(tid);
            complain(os.str());
        }
        bool aborted = txm.status(tid) == pm::TxStatus::Aborted;
        if (aborted != txo.abortedView(tid)) {
            std::ostringstream os;
            os << "tx aborted=" << aborted << ", oracle says "
               << txo.abortedView(tid);
            complain(os.str());
        }
        for (pm::PmoId p = 1; p <= s.pmos; ++p) {
            if (txm.lockOwner(p) != txo.ownerView(p)) {
                std::ostringstream os;
                os << "tx lock on p" << p << " held by "
                   << txm.lockOwner(p) << ", oracle says "
                   << txo.ownerView(p);
                complain(os.str());
            }
        }
    }

    /** Replay one TxManager op in lockstep with the oracle. */
    void
    txOp(const Op &op, sim::ThreadContext &tc)
    {
        pm::TxManager &txm = *rt.tx();
        pm::PersistController &ctl = dom.controller();
        std::uint64_t clwb0 = ctl.clwbCount();
        std::uint64_t fence0 = ctl.fenceCount();
        Probe pr = preOp(tc);

        switch (op.kind) {
          case OpKind::TxBegin: {
            std::vector<pm::PmoId> lockSet{op.pmo};
            if (op.pmo2)
                lockSet.push_back(op.pmo2);
            TxEffects e = txo.onBegin(op.tid, lockSet, op.redo);
            bool ok = txm.begin(tc, op.tid, lockSet,
                                op.redo ? pm::TxKind::Redo
                                        : pm::TxKind::Undo);
            checkTxEffects("tx-begin", e, ok, postOp(tc, pr),
                           ctl.clwbCount() - clwb0,
                           ctl.fenceCount() - fence0);
            break;
          }
          case OpKind::TxWrite: {
            if (!txo.canWrite(op.tid, op.pmo))
                break; // no txn / outside the lock set: skip
            pm::Oid oid(op.pmo, op.offset);
            std::uint64_t val =
                (static_cast<std::uint64_t>(opIdx) << 8) | 0xA5;
            TxEffects e = txo.onWrite(op.tid, oid.raw, val);
            bool ok = txm.write(tc, op.tid, oid, val);
            checkTxEffects("tx-write", e, ok, postOp(tc, pr),
                           ctl.clwbCount() - clwb0,
                           ctl.fenceCount() - fence0);
            // Read-your-writes: undo reads the in-place volatile
            // image, redo its own buffer; both must see the value
            // the oracle expects (the pre-txn one after an abort).
            std::uint64_t got = txm.read(op.tid, oid);
            std::uint64_t want = txo.expectedRead(op.tid, oid.raw);
            if (got != want) {
                std::ostringstream os;
                os << "tx-read saw 0x" << std::hex << got
                   << ", oracle expects 0x" << want;
                complain(os.str());
            }
            break;
          }
          case OpKind::TxCommit: {
            if (!txo.canCommit(op.tid))
                break; // unmatched commit: skip
            TxEffects e = txo.onCommit(op.tid);
            bool ok = txm.commit(tc, op.tid);
            checkTxEffects("tx-commit", e, ok, postOp(tc, pr),
                           ctl.clwbCount() - clwb0,
                           ctl.fenceCount() - fence0);
            break;
          }
          case OpKind::TxAbort: {
            if (!txo.canAbort(op.tid))
                break; // unmatched abort: skip
            TxEffects e = txo.onAbort(op.tid);
            txm.abort(tc, op.tid);
            checkTxEffects("tx-abort", e, true, postOp(tc, pr),
                           ctl.clwbCount() - clwb0,
                           ctl.fenceCount() - fence0);
            break;
          }
          default:
            break;
        }
        probeTxState(op.tid);
    }

    /**
     * Run one undo-log transaction burst and verify its exact cycle
     * charge, CLWB/fence counts and the durable image it leaves
     * behind, all predicted by the oracle's persist mirror (a
     * closed form no longer exists once redo transactions can leave
     * unfenced write-backs for this burst's fences to drain).
     */
    void
    txPut(const Op &op, sim::ThreadContext &tc)
    {
        pm::UndoLog *log = dom.findLog(op.pmo);
        pm::PersistController &ctl = dom.controller();

        std::vector<std::pair<std::uint64_t, std::uint64_t>> writes;
        for (unsigned j = 0; j < op.accesses; ++j) {
            std::uint64_t raw =
                pm::Oid(op.pmo, op.offset + j * op.bytes).raw;
            std::uint64_t val =
                (static_cast<std::uint64_t>(opIdx) << 8) | j;
            writes.emplace_back(raw, val);
        }

        std::uint64_t clwb0 = ctl.clwbCount();
        std::uint64_t fence0 = ctl.fenceCount();
        Probe pr = preOp(tc);
        TxEffects e = txo.onTxPut(op.pmo, writes);

        log->begin(tc);
        for (const auto &[raw, val] : writes)
            log->write(tc, pm::Oid::fromRaw(raw), val);
        log->commit(tc);

        checkTxEffects("txn", e, true, postOp(tc, pr),
                       ctl.clwbCount() - clwb0,
                       ctl.fenceCount() - fence0);
        if (log->inTransaction() || log->recoveryPending())
            complain("txn left the log open");
        for (const auto &[raw, val] : writes) {
            pm::Oid oid = pm::Oid::fromRaw(raw);
            std::uint64_t want = txo.committed().at(raw);
            (void)val;
            if (ctl.load(oid) != want ||
                ctl.persistedLoad(oid) != want) {
                std::ostringstream os;
                os << "committed value not durable at offset 0x"
                   << std::hex << oid.offset();
                complain(os.str());
            }
        }
    }

    /**
     * Modeled power failure + restart. In this harness transactions
     * are atomic schedule ops, so the crash never lands inside one
     * and recovery must be a no-op with no side effects (crash-point
     * enumeration *inside* transactions is terp-crash's job); what
     * the differ checks is that the crash tears down every mapping,
     * window and blocked thread identically in runtime and oracle,
     * and that committed data survives.
     */
    void
    crashRecover(sim::ThreadContext &tc)
    {
        // Let the sweeper catch up first (its charges can push
        // clocks forward), then take the crash instant: the failure
        // hits the whole machine at once, so every live thread's
        // clock jumps there (wall-clock, not work).
        advanceSweeps(mach.maxClock());
        Cycles at = mach.maxClock();
        for (unsigned i = 0; i < mach.threadCount(); ++i) {
            sim::ThreadContext &t = mach.thread(i);
            if (!t.done && !t.blocked() && t.now() < at)
                t.syncTo(at, sim::Charge::Other);
        }
        rt.crash(at);
        oracle.noteCrash(at);
        txo.onCrash();

        Probe pr = preOp(tc);
        unsigned n = rt.recover(tc);
        Observed o = postOp(tc, pr);
        if (n != 0) {
            std::ostringstream os;
            os << "recovery rolled back " << n
               << " PMOs, but every txn committed before the crash";
            complain(os.str());
        }
        if (o.tPost != o.tPre || o.attaches || o.detaches)
            complain("clean recovery had side effects");

        for (pm::PmoId p = 1; p <= s.pmos; ++p) {
            if (rt.mapped(p))
                complain("PMO left mapped across a crash");
            if (oracle.mappedView(p))
                complain("oracle left a PMO mapped across a crash");
        }
        pm::PersistController &ctl = dom.controller();
        for (const auto &[raw, val] : txo.committed()) {
            pm::Oid oid = pm::Oid::fromRaw(raw);
            if (ctl.persistedLoad(oid) != val || ctl.load(oid) != val)
                complain("committed data lost across a crash");
        }
    }

    void
    access(unsigned tid, sim::ThreadContext &tc, pm::PmoId pmo,
           std::uint64_t offset, bool write,
           std::vector<std::string> &tmp)
    {
        core::AccessOutcome want =
            oracle.expectedAccess(tid, pmo, write);
        Cycles at = tc.now();
        core::AccessOutcome got =
            rt.tryAccess(tc, pm::Oid(pmo, offset), write);
        if (got != want) {
            std::ostringstream os;
            os << "access outcome " << core::accessOutcomeName(got)
               << ", oracle expects "
               << core::accessOutcomeName(want);
            complain(os.str());
        }
        oracle.checkAccessVerdict(tid, pmo, write, at, got, tmp);
    }

    /** Cross-check runtime-visible state against the mirror. */
    void
    probe(const Op &op)
    {
        if (op.kind == OpKind::Work || op.kind == OpKind::Sweep ||
            op.kind == OpKind::CrashRecover ||
            op.kind == OpKind::TxCommit || op.kind == OpKind::TxAbort)
            return; // CrashRecover checks all PMOs itself;
                    // commit/abort carry no PMO operand

        if (rt.mapped(op.pmo) != oracle.mappedView(op.pmo)) {
            std::ostringstream os;
            os << "mapped=" << rt.mapped(op.pmo) << ", oracle says "
               << oracle.mappedView(op.pmo);
            complain(os.str());
        }
        if (cfg.threadPerms &&
            rt.threadHolds(op.tid, op.pmo) !=
                oracle.holdsView(op.tid, op.pmo)) {
            std::ostringstream os;
            os << "threadHolds=" << rt.threadHolds(op.tid, op.pmo)
               << ", oracle says "
               << oracle.holdsView(op.tid, op.pmo);
            complain(os.str());
        }
        if (cfg.windowCombining &&
            rt.circularBuffer().counter(op.pmo) !=
                oracle.holderCountView(op.pmo)) {
            std::ostringstream os;
            os << "CB counter=" << rt.circularBuffer().counter(op.pmo)
               << ", oracle holder count="
               << oracle.holderCountView(op.pmo);
            complain(os.str());
        }
    }

    void
    checkBlockedMirror()
    {
        for (unsigned i = 0; i < mach.threadCount(); ++i) {
            if (mach.thread(i).blocked() != oracle.isBlocked(i)) {
                std::ostringstream os;
                os << "thread " << i << " blocked="
                   << mach.thread(i).blocked() << ", oracle says "
                   << oracle.isBlocked(i);
                complain(os.str());
            }
        }
    }

    /**
     * End of run: mark every thread done, let the sweeper drain
     * delayed detaches up to the final clock (nobody may be charged
     * any more), then close the books and compare them.
     */
    void
    drain()
    {
        draining = true;
        unsigned n = mach.threadCount();
        std::vector<Cycles> clk(n);
        for (unsigned i = 0; i < n; ++i) {
            clk[i] = mach.thread(i).now();
            mach.thread(i).done = true;
        }
        Cycles tEnd = mach.maxClock();
        while (nextHook <= tEnd) {
            fireSweep(nextHook);
            nextHook += hookPeriod;
        }
        for (unsigned i = 0; i < n; ++i) {
            if (mach.thread(i).now() != clk[i]) {
                std::ostringstream os;
                os << "drain sweep charged finished thread " << i
                   << " (" << clk[i] << " -> "
                   << mach.thread(i).now() << ")";
                complain(os.str());
            }
        }

        rt.finalize();
        oracle.finalize(tEnd);

        bool hasTxLocks = false;
        for (const Op &op : s.ops) {
            if (op.kind == OpKind::TxBegin ||
                op.kind == OpKind::TxWrite ||
                op.kind == OpKind::TxCommit ||
                op.kind == OpKind::TxAbort) {
                hasTxLocks = true;
                break;
            }
        }
        for (pm::PmoId p = 1; p <= s.pmos; ++p) {
            compareSummary("EW", p, rt.exposure().ewSummaryFor(p),
                           oracle.ewSummary(p));
            compareSummary("TEW", p, rt.exposure().tewSummaryFor(p),
                           oracle.tewSummary(p));
            // Blame attribution: the oracle's mirror must predict
            // the tracker's per-cause totals exactly. TxManager lock
            // contention installs hold-cause overrides the mirror
            // does not model, so schedules with locking txn ops only
            // get the (always-on) trace-audit recomputation below.
            if (hasTxLocks)
                continue;
            for (unsigned c = 0; c < semantics::numBlameCauses; ++c) {
                auto cause = static_cast<semantics::BlameCause>(c);
                Cycles got = rt.exposure().blameTotal(p, cause);
                Cycles want = oracle.blameTotal(p, cause);
                if (got == want)
                    continue;
                std::ostringstream os;
                os << "blame for PMO " << p << " cause "
                   << semantics::blameCauseName(cause)
                   << ": runtime " << got << ", oracle " << want;
                complain(os.str());
            }
        }

        double got = rt.report().silentFraction;
        double want = oracle.expectedSilentFraction();
        if (std::fabs(got - want) > 1e-9) {
            std::ostringstream os;
            os << "silent fraction " << got << ", oracle expects "
               << want;
            complain(os.str());
        }

        // Every value a committed transaction wrote must be durable.
        // Open (shrinker-truncated) transactions only dirty the
        // volatile image, so the persisted image is checkable even
        // when the schedule ends mid-transaction.
        pm::PersistController &ctl = dom.controller();
        for (const auto &[raw, val] : txo.committed()) {
            if (ctl.persistedLoad(pm::Oid::fromRaw(raw)) != val) {
                std::ostringstream os;
                os << "committed value not durable at end of run "
                      "(raw 0x"
                   << std::hex << raw << ")";
                complain(os.str());
            }
        }

        if (auto sink = rt.traceSink()) {
            trace::AuditReport rep =
                trace::auditTimeline(*sink, tEnd, rt.exposure());
            for (const std::string &m : rep.mismatches)
                complain("trace audit: " + m);
            if (!rep.ok && rep.mismatches.empty())
                complain("trace audit failed without detail");
        }
    }

    void
    compareSummary(const char *what, pm::PmoId pmo,
                   const Summary *got, const Summary *want)
    {
        Summary empty;
        const Summary &g = got ? *got : empty;
        const Summary &w = want ? *want : empty;
        if (g.count() == w.count() && g.sum() == w.sum() &&
            g.min() == w.min() && g.max() == w.max()) {
            return;
        }
        std::ostringstream os;
        os << what << " summary for PMO " << pmo << ": runtime {n="
           << g.count() << ", sum=" << g.sum() << ", min=" << g.min()
           << ", max=" << g.max() << "}, oracle {n=" << w.count()
           << ", sum=" << w.sum() << ", min=" << w.min()
           << ", max=" << w.max() << "}";
        complain(os.str());
    }
};

} // namespace

DiffResult
runSchedule(const Schedule &s, const core::RuntimeConfig &cfgIn)
{
    DiffResult res;
    core::RuntimeConfig cfg = cfgIn;
    cfg.ewTarget = s.ewTarget;
    std::unique_ptr<Replay> replay;
    try {
        replay = std::make_unique<Replay>(s, cfg, res.complaints);
        replay->run();
    } catch (const std::exception &e) {
        std::ostringstream os;
        os << "crash";
        if (replay && replay->currentOp() < s.ops.size())
            os << " [op " << replay->currentOp() << ": "
               << describeOp(s.ops[replay->currentOp()]) << "]";
        os << ": " << e.what();
        res.complaints.push_back(os.str());
    }
    res.ok = res.complaints.empty();
    return res;
}

} // namespace check
} // namespace terp
