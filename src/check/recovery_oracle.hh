/**
 * @file
 * The reusable half of the crash-point machinery: a simulated
 * process (machine + runtime + persistence domain), the committed-
 * image ledger, and the recovery invariants —
 *
 *   - atomicity: the durable image equals the image after exactly
 *     the transactions whose commit completed;
 *   - liveness: a probe transaction commits durably after recovery;
 *   - exposure hygiene: recovery attaches are closed by the scheme's
 *     normal idle path within the window target and no PMO stays
 *     mapped.
 *
 * Historically these lived inside check/crash.cc's anonymous
 * namespace and were exercised once per World (single modeled crash
 * per run). The energy-harvesting harness (src/energy) re-runs them
 * at *every* cycle of a thousands-of-power-cycles run, so they are
 * hoisted here, unchanged in behaviour, for both drivers to share.
 */

#ifndef TERP_CHECK_RECOVERY_ORACLE_HH
#define TERP_CHECK_RECOVERY_ORACLE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "core/runtime.hh"
#include "pm/persist.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

namespace terp {
namespace check {

/**
 * One simulated process: machine, runtime, persistence domain. The
 * free-running sweeper is driven through advanceSweeps() on a
 * hook-period grid, exactly as the batch harnesses wire it.
 */
struct CrashWorld
{
    sim::Machine mach;
    pm::PmoManager pmos;
    core::RuntimeConfig cfg;
    pm::PersistDomain dom;
    std::unique_ptr<core::Runtime> rt;
    unsigned nPmos;
    std::uint64_t pmoBytes;
    Cycles hookPeriod;
    Cycles nextHook;

    /**
     * Optional per-tick gate consulted by advanceSweeps(): return
     * false to skip that tick (the hook grid still advances). The
     * energy harness uses this for sweeper energy budgeting — a tick
     * the backup reserve cannot afford simply doesn't fire. Unset
     * (the default), every tick fires, as the single-crash driver
     * expects. drainIdleWindows() deliberately bypasses the gate:
     * the drain is the oracle's verification instrument, not part of
     * the modeled execution.
     */
    std::function<bool(Cycles)> sweepGate;

    /**
     * Create @p pmoCount PMOs of @p pmo_bytes each (named
     * "crash-p<i>"), attach a persistence domain with an undo log at
     * @p log_off per PMO, and spawn @p threads threads.
     */
    CrashWorld(const core::RuntimeConfig &config, unsigned pmoCount,
               unsigned threads, std::uint64_t pmo_bytes,
               std::uint64_t log_off);

    /** Fire the free-running sweeper up to time @p t. */
    void advanceSweeps(Cycles t);
};

/**
 * One open TxManager transaction's expected post-recovery outcome.
 *
 * Undo transactions must recover to all-old at every crash point:
 * recovery rolls the logged old values back. Redo transactions are
 * *ambiguous* while their outermost commit is the next thing the
 * workload does: the durable commit record is written mid-commit, so
 * a crash inside commit recovers to all-old (record not yet durable)
 * or all-new (record durable, recovery rolls forward) — but never a
 * mix. An aborted transaction of either kind never reaches its
 * durable point, so it pins `ambiguous` false (all-old only).
 */
struct TxFlight
{
    bool ambiguous = false;
    std::vector<std::uint64_t> keys;              //!< raw Oids
    std::map<std::uint64_t, std::uint64_t> newv;  //!< raw -> new val
};

/**
 * The recovery oracle's committed-image ledger: what the durable
 * image must look like after the transactions whose commit returned,
 * plus the write-set of the (at most one per thread) in-flight
 * transaction. Commit durability coincides with commit() returning:
 * the last persist boundary inside commit is the fence that makes
 * the header update durable, so a crash can never land after the
 * transaction is durable but before the host-side ledger update.
 */
struct Ledger
{
    std::map<std::uint64_t, std::uint64_t> image; //!< raw Oid -> val
    std::vector<std::uint64_t> inFlight;          //!< current txn keys
    std::map<unsigned, TxFlight> flight;          //!< per-tid TxManager txn
    unsigned done = 0;                            //!< commits returned
};

/**
 * One transaction: scheme-appropriate protection bookends around
 * begin / write* / commit. Explicit bookends only — a PowerFailure
 * unwinding through a RegionGuard destructor would lower a region
 * end on a dead machine.
 */
void runTxn(CrashWorld &w, Ledger &led, sim::ThreadContext &tc,
            pm::PmoId pmo,
            const std::vector<std::pair<pm::Oid, std::uint64_t>> &writes,
            bool touchData = true);

/**
 * The atomicity oracle: every committed transaction's effects are
 * durable, and the in-flight one (if any) left no partial effects —
 * the durable image is exactly the image after `led.done` commits.
 */
void checkDurable(CrashWorld &w, const Ledger &led,
                  std::vector<std::string> &out);

/** Register tid's open transaction with the atomicity oracle. */
void armFlight(Ledger &led, unsigned tid, bool ambiguous,
               const std::vector<std::pair<pm::Oid, std::uint64_t>> &writes);

/** Commit returned: settle tid's flight into the committed image. */
void settleFlight(Ledger &led, unsigned tid, bool committed);

/** Scheme-appropriate protection bookends for TxManager workloads. */
void protOpen(CrashWorld &w, sim::ThreadContext &tc, pm::PmoId pmo);
void protClose(CrashWorld &w, sim::ThreadContext &tc, pm::PmoId pmo);

/**
 * Exposure hygiene: drive the idle sweeper a full window target
 * (plus delayed-detach grace) past every thread clock and report any
 * PMO still mapped. @p when labels the violation message.
 */
void drainIdleWindows(CrashWorld &w, const char *when,
                      std::vector<std::string> &out);

/**
 * Recovery must leave no durable in-flight undo record or
 * committed-but-unapplied redo record behind.
 */
void checkLogsRetired(CrashWorld &w, std::vector<std::string> &out);

/**
 * Post-recovery liveness + exposure-hygiene checks: drain, run a
 * probe transaction against PMO 1, re-check atomicity, drain again,
 * finalize and audit the trace. Single-crash drivers call this once
 * at the end of a run; multi-cycle drivers compose the pieces above
 * instead (finalize/audit only once per world).
 */
void probeAndDrain(CrashWorld &w, Ledger &led,
                   std::vector<std::string> &out);

} // namespace check
} // namespace terp

#endif // TERP_CHECK_RECOVERY_ORACLE_HH
