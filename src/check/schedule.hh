/**
 * @file
 * Randomized schedules for the differential fuzzer.
 *
 * A schedule is a global interleaving of protection-construct calls,
 * data accesses, plain work and explicit sweeper ticks over a small
 * set of PMOs and threads. Generation is seed-deterministic and
 * scheme-aware: manual schemes get exclusive manualBegin/manualEnd
 * pairs, automatic schemes get (possibly nested, possibly
 * overlapping) regionBegin/regionEnd pairs and RAII guarded regions,
 * and the basic-blocking ablation additionally exercises the
 * block-on-attach path.
 *
 * The replayer (differ.hh) skips ops that are ill-formed in the
 * state the run actually reached (e.g. an End whose Begin blocked),
 * so any op sequence — including every subsequence, which is what
 * the shrinker relies on — is a valid schedule.
 */

#ifndef TERP_CHECK_SCHEDULE_HH
#define TERP_CHECK_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "core/config.hh"
#include "pm/oid.hh"
#include "pm/pmo.hh"

namespace terp {
namespace check {

/** One event of a fuzz schedule. */
enum class OpKind
{
    Work,        //!< tid runs `work` cycles of application work
    Begin,       //!< regionBegin(tid, pmo, mode)
    End,         //!< regionEnd(tid, pmo)
    ManualBegin, //!< manualBegin(tid, pmo, mode)
    ManualEnd,   //!< manualEnd(tid, pmo)
    Access,      //!< tryAccess(tid, {pmo, offset}, write)
    Range,       //!< accessRange(tid, {pmo, offset}, bytes, write)
    Guarded,     //!< RAII RegionGuard + `accesses` accesses inside
    Sweep,       //!< force the next sweeper boundary to fire now
    TxPut,       //!< undo-log txn: begin, `accesses` writes, commit
    CrashRecover, //!< modeled power failure + restart + recovery
    TxBegin,     //!< TxManager begin (outermost or nested level)
    TxWrite,     //!< TxManager transactional store
    TxCommit,    //!< TxManager commit (durable iff outermost)
    TxAbort,     //!< TxManager abort (poisons the whole txn)
};

const char *opKindName(OpKind k);

struct Op
{
    OpKind kind = OpKind::Work;
    unsigned tid = 0;
    pm::PmoId pmo = 0;
    pm::Mode mode = pm::Mode::ReadWrite;
    bool write = false;
    std::uint64_t offset = 0; //!< Access/Range/TxPut byte offset
    std::uint64_t bytes = 0;  //!< Range length; TxPut write stride
                              //!< (0 = every write hits one word)
    Cycles work = 0;          //!< Work amount
    unsigned accesses = 0;    //!< Guarded/TxPut: accesses / writes
    pm::PmoId pmo2 = 0;       //!< TxBegin: second lock (0 = none)
    bool redo = false;        //!< TxBegin: redo-log transaction
};

struct Schedule
{
    unsigned threads = 2;
    unsigned pmos = 1;
    std::uint64_t pmoSize = 64 * KiB;
    Cycles ewTarget = 5 * cyclesPerUs;
    std::vector<Op> ops;
};

/** Generation knobs (CLI-exposed via tools/terp-fuzz). */
struct GenParams
{
    unsigned threads = 3;
    unsigned pmos = 2;
    unsigned events = 40;
    /**
     * Exposure-window target for generated runs. Must stay above the
     * attach-path latency (~8.2k cycles) so sweeper-driven window
     * closes always land after the window open; the generator
     * clamps to a 5 us floor.
     */
    Cycles ewTarget = 5 * cyclesPerUs;
    std::uint64_t pmoSize = 64 * KiB;
    /**
     * Mix undo-log transactions (TxPut) and crash/recover steps into
     * the schedule. Off by default so pre-existing seeds generate
     * byte-identical schedules.
     */
    bool persistOps = false;
    /**
     * Mix TxManager transactions into the schedule: nested
     * begin/commit, aborts, cross-thread lock conflicts, undo and
     * redo variants, and crash/recover at transaction-idle points.
     * Off by default (same seed-stability rule as persistOps).
     */
    bool txnOps = false;
};

/** Deterministically generate a schedule for @p cfg from @p seed. */
Schedule generate(std::uint64_t seed, const core::RuntimeConfig &cfg,
                  const GenParams &p);

/** One-line rendering of an op, for divergence reports. */
std::string describeOp(const Op &op);

/**
 * A paste-ready C++ snippet that replays the schedule against a
 * runtime with the given scheme — the fuzzer prints this for the
 * shrunken schedule of every divergence.
 */
std::string reproducerSnippet(const Schedule &s,
                              const std::string &scheme,
                              std::uint64_t seed);

} // namespace check
} // namespace terp

#endif // TERP_CHECK_SCHEDULE_HH
