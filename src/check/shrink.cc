#include "check/shrink.hh"

namespace terp {
namespace check {

namespace {

/**
 * Try deleting every window of @p chunk consecutive ops from
 * @p best, keeping any deletion that preserves the divergence.
 * Returns true when at least one window was removed.
 */
bool
deletionPass(Schedule &best, const core::RuntimeConfig &cfg,
             std::size_t chunk)
{
    bool progress = false;
    std::size_t i = 0;
    while (i + chunk <= best.ops.size()) {
        Schedule trial = best;
        trial.ops.erase(
            trial.ops.begin() + static_cast<std::ptrdiff_t>(i),
            trial.ops.begin() + static_cast<std::ptrdiff_t>(i + chunk));
        if (!runSchedule(trial, cfg).ok) {
            // Deletion kept the divergence; the next window slid
            // into slot i, so retry the same index.
            best = std::move(trial);
            progress = true;
        } else {
            ++i;
        }
    }
    return progress;
}

} // namespace

Schedule
shrink(const Schedule &s, const core::RuntimeConfig &cfg)
{
    if (runSchedule(s, cfg).ok)
        return s;

    // ddmin-style: single-op deletion alone gets stuck when the
    // divergence depends on correlated ops (a begin whose matching
    // end only fails when both go), so sweep chunk sizes from half
    // the schedule down to 1 and repeat until a full round makes no
    // progress.
    Schedule best = s;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t chunk = best.ops.size() / 2; chunk >= 1;
             chunk /= 2)
            progress |= deletionPass(best, cfg, chunk);
    }
    return best;
}

} // namespace check
} // namespace terp
