#include "check/crash.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/fuzzer.hh"
#include "check/recovery_oracle.hh"
#include "check/schedule.hh"
#include "common/rng.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "pm/tx_manager.hh"
#include "sim/machine.hh"
#include "trace/audit.hh"

namespace terp {
namespace check {

namespace {

constexpr std::uint64_t logOff = 1ULL << 32;
constexpr std::uint64_t pmoSize = 64 * KiB;

/**
 * The world, ledger, transaction driver, and recovery invariants live
 * in check/recovery_oracle.{hh,cc}, shared with the energy-harvesting
 * harness. The enumeration below is their single-crash driver.
 */
using World = CrashWorld;

World
makeWorld(const CrashOptions &opt, unsigned pmoCount, unsigned threads)
{
    return World(schemeConfig(opt.scheme, opt.ewTarget).withTrace(),
                 pmoCount, threads, pmoSize, logOff);
}

// ------------------------------------------------------- workloads

/** Account i of the transfer ledger. */
pm::Oid
acct(unsigned i)
{
    return pm::Oid(1, 0x1000 + 64ULL * i);
}

/**
 * bank: 8 accounts initialized to 1000, then `txns` random
 * transfers. Each transaction also bumps a sequence word so no two
 * committed images are ever equal (keeps the atomicity oracle sharp
 * even for a transfer of an amount that round-trips).
 */
void
bankWorkload(World &w, Ledger &led, const CrashOptions &opt)
{
    sim::ThreadContext &tc = w.mach.thread(0);
    const pm::Oid seq(1, 0x800);

    std::vector<std::pair<pm::Oid, std::uint64_t>> init;
    for (unsigned i = 0; i < 8; ++i)
        init.push_back({acct(i), 1000});
    init.push_back({seq, 1});
    runTxn(w, led, tc, 1, init);

    Rng rng(99 + opt.seed);
    const pm::PersistController &ctl = w.dom.controller();
    for (unsigned t = 0; t < opt.txns; ++t) {
        unsigned a = static_cast<unsigned>(rng.nextBelow(8));
        unsigned b = static_cast<unsigned>(rng.nextBelow(7));
        if (b >= a)
            ++b;
        std::uint64_t amt = 1 + rng.nextBelow(200);
        // Two's-complement arithmetic keeps the sum invariant even
        // through a (harmless) negative balance.
        std::uint64_t newA = ctl.load(acct(a)) - amt;
        std::uint64_t newB = ctl.load(acct(b)) + amt;
        runTxn(w, led, tc, 1,
               {{acct(a), newA}, {acct(b), newB}, {seq, t + 2}});
    }
}

/** bank's global invariant, checked on the recovered durable image. */
void
checkBankInvariant(World &w, std::vector<std::string> &out)
{
    const pm::PersistController &ctl = w.dom.controller();
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < 8; ++i)
        sum += ctl.persistedLoad(acct(i));
    // Before the init transaction commits, every account is 0.
    if (sum != 0 && sum != 8 * 1000) {
        std::ostringstream os;
        os << "bank: recovered balances sum to " << sum
           << ", expected 8000 (or 0 pre-init)";
        out.push_back(os.str());
    }
}

/**
 * hashmap: WHISPER-style chained-bucket inserts. One insert writes
 * the record's key/value/next fields plus the bucket-head pointer in
 * a single transaction — the classic multi-line update that is
 * inconsistent (a half-linked record) if torn by a crash.
 */
void
hashmapWorkload(World &w, Ledger &led, const CrashOptions &opt)
{
    sim::ThreadContext &tc = w.mach.thread(0);
    constexpr std::uint64_t bucketsOff = 4096;
    constexpr unsigned nBuckets = 16;
    constexpr std::uint64_t heapOff = 8192;

    const pm::PersistController &ctl = w.dom.controller();
    Rng rng(7 + opt.seed);
    for (unsigned t = 0; t < opt.txns; ++t) {
        std::uint64_t key = 0x1000 + t;
        std::uint64_t rec = heapOff + 64ULL * t;
        pm::Oid head(1, bucketsOff +
                            64ULL * (key % nBuckets));
        std::uint64_t oldHead = ctl.load(head);
        runTxn(w, led, tc, 1,
               {{pm::Oid(1, rec), key},
                {pm::Oid(1, rec + 8), rng.next() | 1},
                {pm::Oid(1, rec + 16), oldHead},
                {head, rec}});
    }
}

/**
 * hashmap's structural invariant on the recovered durable image:
 * every bucket chain must be walkable, cycle-free, and end at records
 * whose key hashes to that bucket — a torn insert breaks one of
 * these.
 */
void
checkHashmapInvariant(World &w, std::vector<std::string> &out)
{
    const pm::PersistController &ctl = w.dom.controller();
    constexpr std::uint64_t bucketsOff = 4096;
    constexpr unsigned nBuckets = 16;
    for (unsigned b = 0; b < nBuckets; ++b) {
        std::uint64_t rec =
            ctl.persistedLoad(pm::Oid(1, bucketsOff + 64ULL * b));
        unsigned steps = 0;
        while (rec != 0) {
            if (++steps > 4096) {
                out.push_back("hashmap: bucket chain cycle");
                return;
            }
            std::uint64_t key = ctl.persistedLoad(pm::Oid(1, rec));
            std::uint64_t val =
                ctl.persistedLoad(pm::Oid(1, rec + 8));
            if (key % nBuckets != b || val == 0) {
                std::ostringstream os;
                os << "hashmap: torn record in bucket " << b
                   << " (key 0x" << std::hex << key << ", val 0x"
                   << val << ")";
                out.push_back(os.str());
                return;
            }
            rec = ctl.persistedLoad(pm::Oid(1, rec + 16));
        }
    }
}

/**
 * txnest: nested TxManager transactions transferring between two
 * accounts that live in *different* PMOs — one flattened transaction
 * under two ordered locks, with the anchor PMO's log recording the
 * cross-PMO write-set. The outer level debits, a nested level
 * credits and bumps the sequence word, and ~20% of transfers abort
 * at the inner level, poisoning the outer commit, which must then
 * leave no trace. Transactions alternate seeded between the undo and
 * redo variants, so crash points land in both protocols' commit
 * sequences (including the redo ambiguity window).
 */
void
txnestWorkload(World &w, Ledger &led, const CrashOptions &opt)
{
    sim::ThreadContext &tc = w.mach.thread(0);
    pm::TxManager &txm = *w.rt->tx();
    const pm::PersistController &ctl = w.dom.controller();
    const pm::Oid acctA(1, 0x1000), acctB(2, 0x1000), seq(1, 0x800);

    Rng rng(41 + opt.seed);
    for (unsigned t = 0; t < opt.txns; ++t) {
        bool init = t == 0;
        bool redo = !init && rng.nextBelow(2) == 1;
        bool doAbort = !init && rng.nextBelow(100) < 20;
        std::uint64_t amt = 1 + rng.nextBelow(200);
        // Values are computed before begin: a redo transaction's
        // in-place image is stale until its commit applies.
        std::uint64_t newA =
            init ? 1000 : ctl.load(acctA) - amt;
        std::uint64_t newB =
            init ? 1000 : ctl.load(acctB) + amt;
        std::vector<std::pair<pm::Oid, std::uint64_t>> writes = {
            {acctA, newA}, {acctB, newB}, {seq, t + 1}};

        armFlight(led, 0, redo && !doAbort, writes);
        protOpen(w, tc, 1);
        protOpen(w, tc, 2);
        txm.begin(tc, 0, {1, 2},
                  redo ? pm::TxKind::Redo : pm::TxKind::Undo);
        w.rt->access(tc, acctA, /*write=*/true);
        txm.write(tc, 0, acctA, newA);
        txm.begin(tc, 0, {2}); // nested level: locks already held
        w.rt->access(tc, acctB, /*write=*/true);
        txm.write(tc, 0, acctB, newB);
        txm.write(tc, 0, seq, t + 1);
        if (doAbort)
            txm.abort(tc, 0);
        txm.commit(tc, 0); // inner: unwind only
        bool ok = txm.commit(tc, 0); // outermost: the durable point
        protClose(w, tc, 2);
        protClose(w, tc, 1);
        settleFlight(led, 0, ok);
        w.advanceSweeps(tc.now());
    }
}

/** txnest's invariant: the cross-PMO balance sum is conserved. */
void
checkTxnestInvariant(World &w, std::vector<std::string> &out)
{
    const pm::PersistController &ctl = w.dom.controller();
    std::uint64_t sum = ctl.persistedLoad(pm::Oid(1, 0x1000)) +
                        ctl.persistedLoad(pm::Oid(2, 0x1000));
    // Before the init transaction commits, both accounts are 0.
    if (sum != 0 && sum != 2000) {
        std::ostringstream os;
        os << "txnest: recovered cross-PMO balances sum to " << sum
           << ", expected 2000 (or 0 pre-init)";
        out.push_back(os.str());
    }
}

/**
 * txpair: two threads running transactions over disjoint PMOs —
 * thread 0 locks PMO 1, thread 1 locks PMO 2 — with their writes
 * interleaved boundary-by-boundary and their commits staggered, so
 * enumeration crashes between one thread's durable point and the
 * other's. Each transaction writes a split pair (x, 2000 - x) plus
 * a sequence word; recovery must treat the two transactions
 * independently (each all-or-nothing on its own).
 */
void
txpairWorkload(World &w, Ledger &led, const CrashOptions &opt)
{
    sim::ThreadContext &tc0 = w.mach.thread(0);
    sim::ThreadContext &tc1 = w.mach.thread(1);
    pm::TxManager &txm = *w.rt->tx();
    const pm::PersistController &ctl = w.dom.controller();
    auto xOf = [](pm::PmoId p) { return pm::Oid(p, 0x1000); };
    auto yOf = [](pm::PmoId p) { return pm::Oid(p, 0x1040); };
    auto seqOf = [](pm::PmoId p) { return pm::Oid(p, 0x800); };

    Rng rng(17 + opt.seed);
    for (unsigned t = 0; t < opt.txns; ++t) {
        bool init = t == 0;
        bool redo0 = !init && rng.nextBelow(2) == 1;
        bool redo1 = !init && rng.nextBelow(2) == 1;
        bool abort0 = !init && rng.nextBelow(100) < 15;
        bool abort1 = !init && rng.nextBelow(100) < 15;
        std::uint64_t d0 = 1 + rng.nextBelow(500);
        std::uint64_t d1 = 1 + rng.nextBelow(500);
        std::uint64_t x0 = init ? 1000 : ctl.load(xOf(1)) + d0;
        std::uint64_t x1 = init ? 1000 : ctl.load(xOf(2)) + d1;
        std::vector<std::pair<pm::Oid, std::uint64_t>> w0 = {
            {xOf(1), x0}, {yOf(1), 2000 - x0}, {seqOf(1), t + 1}};
        std::vector<std::pair<pm::Oid, std::uint64_t>> w1 = {
            {xOf(2), x1}, {yOf(2), 2000 - x1}, {seqOf(2), t + 1}};

        armFlight(led, 0, redo0 && !abort0, w0);
        armFlight(led, 1, redo1 && !abort1, w1);
        protOpen(w, tc0, 1);
        protOpen(w, tc1, 2);
        txm.begin(tc0, 0, {1},
                  redo0 ? pm::TxKind::Redo : pm::TxKind::Undo);
        txm.begin(tc1, 1, {2},
                  redo1 ? pm::TxKind::Redo : pm::TxKind::Undo);
        // Interleave the two write-sets boundary-by-boundary.
        for (unsigned j = 0; j < 3; ++j) {
            w.rt->access(tc0, w0[j].first, /*write=*/true);
            txm.write(tc0, 0, w0[j].first, w0[j].second);
            w.rt->access(tc1, w1[j].first, /*write=*/true);
            txm.write(tc1, 1, w1[j].first, w1[j].second);
        }
        if (abort0)
            txm.abort(tc0, 0);
        if (abort1)
            txm.abort(tc1, 1);
        // Staggered durable points: thread 0 settles first, so a
        // crash inside thread 1's commit sees thread 0 committed.
        bool ok0 = txm.commit(tc0, 0);
        settleFlight(led, 0, ok0);
        bool ok1 = txm.commit(tc1, 1);
        settleFlight(led, 1, ok1);
        protClose(w, tc0, 1);
        protClose(w, tc1, 2);
        w.advanceSweeps(std::max(tc0.now(), tc1.now()));
    }
}

/** txpair's invariant: each PMO's split pair is conserved. */
void
checkTxpairInvariant(World &w, std::vector<std::string> &out)
{
    const pm::PersistController &ctl = w.dom.controller();
    for (pm::PmoId p = 1; p <= 2; ++p) {
        std::uint64_t sum =
            ctl.persistedLoad(pm::Oid(p, 0x1000)) +
            ctl.persistedLoad(pm::Oid(p, 0x1040));
        if (sum != 0 && sum != 2000) {
            std::ostringstream os;
            os << "txpair: recovered pair on PMO " << p
               << " sums to " << sum
               << ", expected 2000 (or 0 pre-init)";
            out.push_back(os.str());
        }
    }
}

/**
 * schedule: replay a generated fuzz schedule (persistOps on) with a
 * deliberately conservative skip policy — the goal is reaching crash
 * points from many protection states, not differential precision
 * (that is the differ's job). All bookends are explicit; RAII guards
 * are banned on this path.
 */
struct ScheduleReplay
{
    World &w;
    Ledger &led;
    const Schedule &s;
    //! region nesting we opened, per [tid][pmo]
    std::vector<std::vector<unsigned>> depth;
    std::vector<bool> manualActive; //!< per pmo (1-based)
    /**
     * Earliest time an End may close each PMO: a lagging thread's
     * close below the latest window (re)open would rewind the
     * exposure tracker. Sweeper hooks may reopen at the hook time,
     * so every fired hook raises the floor for all PMOs.
     */
    std::vector<Cycles> endFloor;

    ScheduleReplay(World &world, Ledger &ledger, const Schedule &sched)
        : w(world), led(ledger), s(sched),
          depth(sched.threads,
                std::vector<unsigned>(sched.pmos + 1, 0)),
          manualActive(sched.pmos + 1, false),
          endFloor(sched.pmos + 1, 0)
    {
    }

    void
    raiseFloors(Cycles t)
    {
        for (Cycles &f : endFloor)
            f = std::max(f, t);
    }

    void
    sweeps(Cycles t)
    {
        Cycles before = w.nextHook;
        w.advanceSweeps(t);
        if (w.nextHook != before)
            raiseFloors(w.nextHook - w.hookPeriod);
    }

    bool
    tryBegin(sim::ThreadContext &tc, unsigned tid, pm::PmoId pmo,
             pm::Mode mode)
    {
        if (w.cfg.basicBlocking && depth[tid][pmo] > 0)
            return false; // nested basic attach is invalid
        if (w.rt->regionBegin(tc, pmo, mode) ==
            core::GuardResult::Blocked)
            return false;
        ++depth[tid][pmo];
        endFloor[pmo] = std::max(endFloor[pmo], tc.now());
        return true;
    }

    void
    tryEnd(sim::ThreadContext &tc, unsigned tid, pm::PmoId pmo)
    {
        if (depth[tid][pmo] == 0 || tc.now() < endFloor[pmo])
            return;
        w.rt->regionEnd(tc, pmo);
        --depth[tid][pmo];
    }

    void
    run()
    {
        for (const Op &op : s.ops) {
            if (op.kind == OpKind::Sweep) {
                w.rt->onSweep(w.nextHook);
                raiseFloors(w.nextHook);
                w.nextHook += w.hookPeriod;
                continue;
            }
            sim::ThreadContext &tc = w.mach.thread(op.tid);
            sweeps(tc.now());
            if (tc.blocked())
                continue;
            step(op, tc);
        }
    }

    void
    step(const Op &op, sim::ThreadContext &tc)
    {
        switch (op.kind) {
          case OpKind::Work:
            tc.work(op.work);
            break;

          case OpKind::Begin:
            if (w.cfg.insertion == core::Insertion::Auto)
                tryBegin(tc, op.tid, op.pmo, op.mode);
            break;

          case OpKind::End:
            if (w.cfg.insertion == core::Insertion::Auto)
                tryEnd(tc, op.tid, op.pmo);
            break;

          case OpKind::ManualBegin:
            if (w.cfg.insertion == core::Insertion::Manual &&
                !manualActive[op.pmo]) {
                w.rt->manualBegin(tc, op.pmo, op.mode);
                manualActive[op.pmo] = true;
                endFloor[op.pmo] =
                    std::max(endFloor[op.pmo], tc.now());
            }
            break;

          case OpKind::ManualEnd:
            if (w.cfg.insertion == core::Insertion::Manual &&
                manualActive[op.pmo] &&
                tc.now() >= endFloor[op.pmo]) {
                w.rt->manualEnd(tc, op.pmo);
                manualActive[op.pmo] = false;
            }
            break;

          case OpKind::Access:
            (void)w.rt->tryAccess(tc, pm::Oid(op.pmo, op.offset),
                                  op.write);
            break;

          case OpKind::Range:
            for (std::uint64_t off = op.offset;
                 off < op.offset + op.bytes; off += lineSize) {
                (void)w.rt->tryAccess(tc, pm::Oid(op.pmo, off),
                                      op.write);
            }
            break;

          case OpKind::Guarded: {
            if (w.cfg.insertion != core::Insertion::Auto)
                break;
            if (!tryBegin(tc, op.tid, op.pmo, op.mode))
                break;
            for (unsigned j = 0; j < op.accesses; ++j)
                (void)w.rt->tryAccess(
                    tc, pm::Oid(op.pmo, op.offset + j * lineSize),
                    op.write);
            tryEnd(tc, op.tid, op.pmo);
            break;
          }

          case OpKind::TxPut: {
            std::vector<std::pair<pm::Oid, std::uint64_t>> writes;
            for (unsigned j = 0; j < op.accesses; ++j)
                writes.push_back(
                    {pm::Oid(op.pmo, op.offset + j * op.bytes),
                     (static_cast<std::uint64_t>(led.done) << 8) |
                         j});
            // Bookend with the region we can, but never touch the
            // data through the protection path: the protection state
            // at an arbitrary schedule point is not ours to assume.
            bool opened =
                w.cfg.insertion == core::Insertion::Auto
                    ? tryBegin(tc, op.tid, op.pmo,
                               pm::Mode::ReadWrite)
                    : false;
            if (w.cfg.basicBlocking &&
                w.cfg.insertion == core::Insertion::Auto &&
                !opened && tc.blocked())
                break; // begin blocked: the txn never starts
            pm::UndoLog *log = w.dom.findLog(op.pmo);
            led.inFlight.clear();
            for (const auto &[oid, v] : writes) {
                (void)v;
                led.inFlight.push_back(oid.raw);
            }
            log->begin(tc);
            for (const auto &[oid, v] : writes)
                log->write(tc, oid, v);
            log->commit(tc);
            for (const auto &[oid, v] : writes)
                led.image[oid.raw] = v;
            led.inFlight.clear();
            ++led.done;
            if (opened)
                tryEnd(tc, op.tid, op.pmo);
            break;
          }

          case OpKind::CrashRecover: {
            sweeps(w.mach.maxClock());
            Cycles at = w.mach.maxClock();
            for (unsigned i = 0; i < w.mach.threadCount(); ++i) {
                sim::ThreadContext &t = w.mach.thread(i);
                if (!t.done && !t.blocked() && t.now() < at)
                    t.syncTo(at, sim::Charge::Other);
            }
            w.rt->crash(at);
            (void)w.rt->recover(tc);
            for (auto &d : depth)
                std::fill(d.begin(), d.end(), 0u);
            std::fill(manualActive.begin(), manualActive.end(),
                      false);
            raiseFloors(at);
            break;
          }

          case OpKind::Sweep:
            break; // handled in run()

          case OpKind::TxBegin:
          case OpKind::TxWrite:
          case OpKind::TxCommit:
          case OpKind::TxAbort:
            // The schedule workload generates with txnOps off (its
            // transactions are the self-contained TxPut above, which
            // the crash ledger can account); manager ops only appear
            // in differ-driven schedules.
            break;
        }
    }
};

void
scheduleWorkload(World &w, Ledger &led, const Schedule &s)
{
    ScheduleReplay r(w, led, s);
    r.run();
}

void
runWorkload(World &w, Ledger &led, const CrashOptions &opt,
            const Schedule *sched)
{
    if (opt.workload == "bank")
        bankWorkload(w, led, opt);
    else if (opt.workload == "hashmap")
        hashmapWorkload(w, led, opt);
    else if (opt.workload == "txnest")
        txnestWorkload(w, led, opt);
    else if (opt.workload == "txpair")
        txpairWorkload(w, led, opt);
    else
        scheduleWorkload(w, led, *sched);
}

void
checkWorkloadInvariant(World &w, const CrashOptions &opt,
                       std::vector<std::string> &out)
{
    if (opt.workload == "bank")
        checkBankInvariant(w, out);
    else if (opt.workload == "hashmap")
        checkHashmapInvariant(w, out);
    else if (opt.workload == "txnest")
        checkTxnestInvariant(w, out);
    else if (opt.workload == "txpair")
        checkTxpairInvariant(w, out);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

CrashResult
enumerateCrashPoints(const CrashOptions &opt)
{
    if (opt.workload != "bank" && opt.workload != "hashmap" &&
        opt.workload != "txnest" && opt.workload != "txpair" &&
        opt.workload != "schedule")
        throw std::invalid_argument("unknown workload: " +
                                    opt.workload);

    CrashResult res;
    Schedule sched;
    unsigned pmoCount = 1, threads = 1;
    if (opt.workload == "txnest") {
        pmoCount = 2;
    } else if (opt.workload == "txpair") {
        pmoCount = 2;
        threads = 2;
    }
    if (opt.workload == "schedule") {
        GenParams gp;
        gp.persistOps = true;
        gp.events = opt.events;
        gp.ewTarget = opt.ewTarget;
        gp.pmoSize = pmoSize;
        sched =
            generate(opt.seed, schemeConfig(opt.scheme, opt.ewTarget),
                     gp);
        pmoCount = sched.pmos;
        threads = sched.threads;
    }

    // Baseline: no fault. Counts the boundaries and sanity-checks
    // the oracle machinery against an uninterrupted run.
    {
        World w = makeWorld(opt, pmoCount, threads);
        Ledger led;
        std::vector<std::string> v;
        try {
            runWorkload(w, led, opt, &sched);
            res.boundaries = w.dom.controller().boundaryCount();
            checkDurable(w, led, v);
            checkWorkloadInvariant(w, opt, v);
        } catch (const std::exception &e) {
            v.push_back(std::string("baseline run died: ") +
                        e.what());
        }
        for (const std::string &m : v)
            res.violations.push_back(
                {0, pm::PersistBoundary::Store, m});
        if (!res.violations.empty() || res.boundaries == 0)
            return res;
    }

    for (std::uint64_t n = 1; n <= res.boundaries; ++n) {
        World w = makeWorld(opt, pmoCount, threads);
        Ledger led;
        std::vector<std::string> v;
        bool crashed = false;
        pm::PersistBoundary kind = pm::PersistBoundary::Store;

        w.dom.controller().armFault(n);
        try {
            runWorkload(w, led, opt, &sched);
        } catch (const pm::PowerFailure &pf) {
            crashed = true;
            kind = pf.kind;
        } catch (const std::exception &e) {
            v.push_back(std::string("workload died: ") + e.what());
        }
        ++res.pointsRun;

        if (v.empty() && !crashed) {
            // A scheduled CrashRecover op can disarm nothing — the
            // plan stays armed across it — so reaching the end means
            // the boundary count regressed between runs.
            v.push_back("armed fault never fired (non-deterministic "
                        "boundary count?)");
        }

        if (v.empty()) {
            try {
                Cycles at = w.mach.maxClock();
                w.rt->crash(at);
                // Recovery runs after the failure instant.
                sim::ThreadContext &rtc = w.mach.thread(0);
                if (rtc.now() < at)
                    rtc.syncTo(at, sim::Charge::Other);
                (void)w.rt->recover(rtc);
                checkDurable(w, led, v);
                checkWorkloadInvariant(w, opt, v);
                probeAndDrain(w, led, v);
            } catch (const std::exception &e) {
                v.push_back(std::string("recovery died: ") +
                            e.what());
            }
        }
        for (const std::string &m : v)
            res.violations.push_back({n, kind, m});
    }
    return res;
}

std::string
crashResultJson(const CrashOptions &opt, const CrashResult &r)
{
    std::ostringstream os;
    os << "{\"scheme\":\"" << opt.scheme << "\",\"workload\":\""
       << opt.workload << "\",\"seed\":" << opt.seed
       << ",\"boundaries\":" << r.boundaries
       << ",\"points_run\":" << r.pointsRun << ",\"ok\":"
       << (r.ok() ? "true" : "false");
    if (!r.violations.empty())
        os << ",\"earliest_violation\":" << r.violations.front().point;
    os << ",\"violations\":[";
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
        const CrashViolation &cv = r.violations[i];
        if (i)
            os << ",";
        os << "{\"point\":" << cv.point << ",\"kind\":\""
           << pm::persistBoundaryName(cv.kind) << "\",\"detail\":\""
           << jsonEscape(cv.detail) << "\"}";
    }
    os << "]}";
    return os.str();
}

} // namespace check
} // namespace terp
