/**
 * @file
 * Lockstep spec oracle for the transaction layer (pm::TxManager).
 *
 * Two pieces:
 *
 *  - PersistMirror replays the PersistController's cache-state
 *    machine at line granularity: stores dirty a line, CLWBs move it
 *    to pending (charging clwbCost whether or not the line was
 *    dirty), fences drain *every* pending line at drainCostPerLine
 *    each. The mirror is global — exactly like the controller — so
 *    a fence issued by one transaction pays for write-backs another
 *    transaction left unfenced (redo writes do exactly that). This
 *    is why per-op charges can't be closed-form once redo is in the
 *    mix: they depend on the global pending set, which the mirror
 *    tracks and a formula can't.
 *
 *  - TxOracle mirrors TxManager's semantic state (per-thread nesting
 *    depth, abort poisoning, per-PMO locks, anchor log write-sets)
 *    and, for each transaction op, simulates the exact persist
 *    sequence the undo/redo protocol performs against the mirror.
 *    The returned TxEffects — expected success, cycle charge, CLWB
 *    and fence counts — are compared by the differ against the real
 *    run. The simulation is structural: it depends on the shape of
 *    the write-set (distinct locations, distinct lines, log-entry
 *    addresses), never on data values, which is the design rule the
 *    pm layer's abort/commit paths follow so this prediction can be
 *    exact.
 */

#ifndef TERP_CHECK_TX_ORACLE_HH
#define TERP_CHECK_TX_ORACLE_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/units.hh"
#include "pm/oid.hh"
#include "pm/persist.hh"

namespace terp {
namespace check {

/** Line-granularity mirror of the PersistController cache state. */
class PersistMirror
{
  public:
    void
    store(std::uint64_t raw)
    {
        dirty.insert(pm::lineKeyOf(raw));
    }

    void
    clwb(std::uint64_t raw)
    {
        ++nClwb;
        charge_ += pm::PersistController::clwbCost;
        auto it = dirty.find(pm::lineKeyOf(raw));
        if (it == dirty.end())
            return; // clean line: the issue still costs
        pending.insert(*it);
        dirty.erase(it);
    }

    void
    sfence()
    {
        ++nFence;
        charge_ += pm::PersistController::drainCostPerLine *
                   static_cast<Cycles>(pending.size());
        pending.clear();
    }

    void
    persistentStore(std::uint64_t raw)
    {
        store(raw);
        clwb(raw);
    }

    /** Power failure: unfenced state is lost. */
    void
    crash()
    {
        dirty.clear();
        pending.clear();
    }

    Cycles charge() const { return charge_; }
    std::uint64_t clwbs() const { return nClwb; }
    std::uint64_t fences() const { return nFence; }

  private:
    std::set<std::uint64_t> dirty;
    std::set<std::uint64_t> pending;
    Cycles charge_ = 0;
    std::uint64_t nClwb = 0;
    std::uint64_t nFence = 0;
};

/** What the oracle expects one transaction op to do and cost. */
struct TxEffects
{
    bool ok = true; //!< expected return of the TxManager call
    Cycles charge = 0;
    std::uint64_t clwbs = 0;
    std::uint64_t fences = 0;
};

/** Spec mirror of pm::TxManager plus the two log protocols. */
class TxOracle
{
  public:
    TxOracle(std::uint64_t undo_off, std::uint64_t redo_off)
        : undoOff(undo_off), redoOff(redo_off)
    {
    }

    // ---- skip predicates (shrinker-safe replay rules) ----------------

    /** Can a TxWrite to @p pmo be replayed on @p tid? */
    bool canWrite(unsigned tid, pm::PmoId pmo) const;
    bool canCommit(unsigned tid) const { return depthView(tid) > 0; }
    bool canAbort(unsigned tid) const { return depthView(tid) > 0; }
    /** No transaction open anywhere (CrashRecover's gate). */
    bool idle() const { return txs.empty(); }
    /** Is @p pmo in any open transaction's lock set (TxPut gate)? */
    bool locked(pm::PmoId pmo) const { return owner_.count(pmo); }

    // ---- lockstep ops ------------------------------------------------

    TxEffects onBegin(unsigned tid, std::vector<pm::PmoId> pmos,
                      bool redo);
    TxEffects onWrite(unsigned tid, std::uint64_t raw,
                      std::uint64_t value);
    TxEffects onCommit(unsigned tid);
    TxEffects onAbort(unsigned tid);

    /**
     * The legacy TxPut op: a begin / N writes / commit burst on
     * @p pmo's undo log, with @p writes the issued (raw, value)
     * stores in order.
     */
    TxEffects onTxPut(pm::PmoId pmo,
                      const std::vector<
                          std::pair<std::uint64_t, std::uint64_t>>
                          &writes);

    /** Power failure: open transactions and locks evaporate. */
    void onCrash();

    // ---- state views -------------------------------------------------

    unsigned depthView(unsigned tid) const;
    bool abortedView(unsigned tid) const;
    /** Lock holder of @p pmo, or -1. */
    int ownerView(pm::PmoId pmo) const;

    /**
     * What TxManager::read must return for @p tid at @p raw: the
     * transaction's own write when one is buffered (and the tx is
     * healthy), else the last committed value (0 if never written).
     */
    std::uint64_t expectedRead(unsigned tid,
                               std::uint64_t raw) const;

    /** Expected durable image: raw -> last committed value. */
    const std::map<std::uint64_t, std::uint64_t> &
    committed() const
    {
        return committed_;
    }

  private:
    struct Tx
    {
        unsigned depth = 0;
        bool redo = false;
        bool aborted = false;
        std::vector<pm::PmoId> locks; //!< ascending
        pm::PmoId anchor = 0;
        //! distinct logged raws, in log-entry order
        std::vector<std::uint64_t> entries;
        //! raw -> value the tx would commit
        std::map<std::uint64_t, std::uint64_t> values;
    };

    std::uint64_t undoOff;
    std::uint64_t redoOff;
    PersistMirror mirror;
    std::map<unsigned, Tx> txs;
    std::map<pm::PmoId, unsigned> owner_;
    std::map<std::uint64_t, std::uint64_t> committed_;

    std::uint64_t entryRaw(pm::PmoId anchor, std::uint64_t logOff,
                           std::uint64_t i, unsigned word) const
    {
        return pm::Oid(anchor, logOff + 64 + i * 16 + word * 8).raw;
    }

    /** Snapshot-and-delta helper around a protocol simulation. */
    template <typename Fn>
    TxEffects
    measure(bool ok, Fn &&fn)
    {
        Cycles c0 = mirror.charge();
        std::uint64_t w0 = mirror.clwbs(), f0 = mirror.fences();
        fn();
        TxEffects e;
        e.ok = ok;
        e.charge = mirror.charge() - c0;
        e.clwbs = mirror.clwbs() - w0;
        e.fences = mirror.fences() - f0;
        return e;
    }

    void simulateUndoCommit(Tx &tx);
    void simulateRedoCommit(Tx &tx);
};

} // namespace check
} // namespace terp

#endif // TERP_CHECK_TX_ORACLE_HH
